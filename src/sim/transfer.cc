#include "sim/transfer.h"

#include <cstdint>
#include <utility>

#include "common/random.h"
#include "sim/simulator.h"

namespace spire {

namespace {

/// Appends one group-at-a-reader window [begin, end) to `site`. The RNG is
/// consumed for every window epoch regardless of the trace horizon, so a
/// window straddling the end of the trace never shifts later draws.
void EmitGroupReadings(const SimConfig& config,
                       const std::vector<ObjectId>& group, Pcg32* rng,
                       ReaderId reader, Epoch begin, Epoch end,
                       SiteTrace* site) {
  const auto horizon = static_cast<Epoch>(site->epochs.size());
  for (Epoch epoch = begin; epoch < end; ++epoch) {
    for (int tick = 0; tick < config.nonshelf_ticks_per_epoch; ++tick) {
      for (ObjectId tag : group) {
        const bool responds = rng->NextBool(config.read_rate);
        if (!responds || epoch < 0 || epoch >= horizon) continue;
        site->epochs[epoch].push_back(
            RfidReading{tag, reader, epoch, static_cast<std::uint16_t>(tick)});
        ++site->total_readings;
      }
    }
  }
}

/// Builds one truck's cargo in leaf-up order (items, cases, pallet) under
/// the reserved transfer tag-site index.
std::vector<ObjectId> TruckCargo(const SimConfig& config, int truck) {
  const auto prefix =
      static_cast<std::uint32_t>(truck) & kEpcSitePrefixMask;
  std::vector<ObjectId> group;
  group.reserve(static_cast<std::size_t>(config.transfer_cases) *
                    config.transfer_items +
                config.transfer_cases + 1);
  for (int c = 0; c < config.transfer_cases; ++c) {
    for (int i = 0; i < config.transfer_items; ++i) {
      EpcFields f{PackagingLevel::kItem, prefix,
                  static_cast<std::uint32_t>(c + 1),
                  static_cast<std::uint32_t>(i + 1)};
      group.push_back(PlantEpcSite(kTransferTagSite, EncodeEpcUnchecked(f)));
    }
  }
  for (int c = 0; c < config.transfer_cases; ++c) {
    EpcFields f{PackagingLevel::kCase, prefix,
                static_cast<std::uint32_t>(c + 1), 0};
    group.push_back(PlantEpcSite(kTransferTagSite, EncodeEpcUnchecked(f)));
  }
  EpcFields f{PackagingLevel::kPallet, prefix, 0, 0};
  group.push_back(PlantEpcSite(kTransferTagSite, EncodeEpcUnchecked(f)));
  return group;
}

/// Overlays one truck's legs: readings at the origin's outgoing belt while
/// loading, a TransferHop per leg, readings at the destination's entry
/// door while unloading. Legs stop once a departure falls past the trace;
/// a hop whose *arrival* falls past the trace is still recorded (its state
/// is captured but never spliced in — the runtime must cope).
void AppendTruck(const SimConfig& config, int truck, TransferTrace* trace) {
  const int num_sites = config.transfer_sites;
  const std::vector<ObjectId> group = TruckCargo(config, truck);
  Pcg32 rng(config.seed ^ (0x7472756bULL + static_cast<std::uint64_t>(truck)),
            0x5d15717aULL + static_cast<std::uint64_t>(truck));
  const Epoch dwell = config.transfer_dwell;
  Epoch depart = config.transfer_interval * (truck + 1) + dwell;
  const int legs = 2 * config.transfer_round_trips;
  for (int leg = 0; leg < legs; ++leg) {
    if (depart >= trace->num_epochs) break;
    const int from = (truck + leg) % num_sites;
    const int to = (truck + leg + 1) % num_sites;
    const Epoch arrive = depart + config.transfer_transit;
    EmitGroupReadings(config, group, &rng,
                      trace->sites[from].layout.outgoing_belt_reader,
                      depart - dwell, depart, &trace->sites[from]);
    TransferHop hop;
    hop.from_site = from;
    hop.to_site = to;
    hop.depart_epoch = depart;
    hop.arrive_epoch = arrive;
    hop.objects = group;
    trace->hops.push_back(std::move(hop));
    EmitGroupReadings(config, group, &rng,
                      trace->sites[to].layout.entry_reader, arrive,
                      arrive + dwell, &trace->sites[to]);
    depart = arrive + 2 * dwell;
  }
}

}  // namespace

Result<TransferTrace> BuildTransferTrace(const SimConfig& config) {
  SPIRE_RETURN_NOT_OK(config.Validate());
  if (config.transfer_sites < 2) {
    return Status::InvalidArgument(
        "BuildTransferTrace needs transfer_sites >= 2");
  }
  TransferTrace trace;
  trace.num_epochs = config.duration_epochs;
  trace.sites.reserve(config.transfer_sites);
  for (int site = 0; site < config.transfer_sites; ++site) {
    SimConfig site_config = config;
    // Distinct organic traffic per site; the mixing constant keeps nearby
    // fuzz seeds from aliasing onto each other's site streams.
    site_config.seed =
        config.seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(site);
    auto sim = WarehouseSimulator::Create(site_config);
    SPIRE_RETURN_NOT_OK(sim.status());
    WarehouseSimulator& simulator = *sim.value();
    SiteTrace site_trace;
    site_trace.name = "site" + std::to_string(site);
    site_trace.layout = simulator.layout();
    site_trace.epochs.resize(config.duration_epochs);
    for (Epoch epoch = 0; epoch < config.duration_epochs; ++epoch) {
      EpochReadings readings = simulator.Step();
      for (RfidReading& reading : readings) {
        reading.tag = PlantEpcSite(site, reading.tag);
      }
      site_trace.total_readings += readings.size();
      site_trace.epochs[epoch] = std::move(readings);
    }
    trace.sites.push_back(std::move(site_trace));
  }
  for (int truck = 0;; ++truck) {
    const Epoch start = config.transfer_interval * (truck + 1);
    if (start + config.transfer_dwell >= config.duration_epochs) break;
    AppendTruck(config, truck, &trace);
  }
  return trace;
}

Result<MergedDeployment> MergeToSingleDeployment(const TransferTrace& trace) {
  MergedDeployment merged;
  merged.epochs.resize(trace.num_epochs);
  std::size_t reader_offset = 0;
  std::size_t location_offset = 0;
  for (const SiteTrace& site : trace.sites) {
    const ReaderRegistry& registry = site.layout.registry;
    for (LocationId l = 0;
         l < static_cast<LocationId>(registry.num_locations()); ++l) {
      merged.registry.AddLocation(site.name + "/" + registry.LocationName(l));
    }
    for (const ReaderInfo& info : registry.readers()) {
      ReaderInfo remapped = info;
      remapped.id = static_cast<ReaderId>(info.id + reader_offset);
      remapped.location =
          static_cast<LocationId>(info.location + location_offset);
      remapped.name = site.name + "/" + info.name;
      SPIRE_RETURN_NOT_OK(merged.registry.AddReader(remapped));
      const std::vector<LocationId>& route = registry.PatrolRouteOf(info.id);
      if (!route.empty()) {
        std::vector<LocationId> shifted;
        shifted.reserve(route.size());
        for (LocationId stop : route) {
          shifted.push_back(static_cast<LocationId>(stop + location_offset));
        }
        SPIRE_RETURN_NOT_OK(merged.registry.SetPatrol(
            remapped.id, std::move(shifted), registry.PatrolDwellOf(info.id)));
      }
    }
    const auto site_epochs =
        std::min(static_cast<Epoch>(site.epochs.size()), trace.num_epochs);
    for (Epoch epoch = 0; epoch < site_epochs; ++epoch) {
      for (RfidReading reading : site.epochs[epoch]) {
        reading.reader = static_cast<ReaderId>(reading.reader + reader_offset);
        merged.epochs[epoch].push_back(reading);
      }
    }
    merged.total_readings += site.total_readings;
    if (merged.entry_door == kUnknownLocation) {
      merged.entry_door = site.layout.entry_door;
    }
    reader_offset += registry.readers().size();
    location_offset += registry.num_locations();
  }
  return merged;
}

}  // namespace spire
