// Wire-format size accounting and on-disk format identifiers.
//
// The paper reports compression ratio = (bytes of the compressed event
// stream) / (bytes of the raw RFID reading stream). We fix a concrete byte
// layout for both streams so the ratio is well-defined and reproducible.
//
// This header is also the single home of every SPIRE file-format magic
// number and version, so the serde layer, the archive store, and the tools
// share one definition (see DESIGN.md "On-disk formats").
#pragma once

#include <cstddef>
#include <cstdint>

namespace spire {

/// A raw RFID reading on the wire: 12-byte EPC (96-bit tag), 2-byte reader
/// id, 2-byte epoch-relative timestamp.
inline constexpr std::size_t kReadingWireBytes = 16;

/// An output event message on the wire, packed:
/// type(1) + object EPC(12) + target(8: container EPC prefix or padded
/// location id) + timestamp(4) + flags(1) = 26 bytes. Every message
/// (Start*/End*/Missing) is charged one full record.
inline constexpr std::size_t kEventWireBytes = 26;

/// Bytes of every file-format magic below.
inline constexpr std::size_t kMagicBytes = 4;

/// Flat event file (compress/serde): magic + u16 version, then (version 2)
/// a u64 record count, then the kEventWireBytes records.
inline constexpr char kEventFileMagic[kMagicBytes] = {'S', 'P', 'E', 'V'};
/// Current event-file version: header carries the record count so a file
/// truncated at a record boundary is still detected.
inline constexpr std::uint16_t kEventFileVersion = 2;
/// Legacy event-file version without the record count (still readable).
inline constexpr std::uint16_t kEventFileLegacyVersion = 1;

/// Segmented block-compressed event archive (store/archive_writer).
inline constexpr char kArchiveMagic[kMagicBytes] = {'S', 'P', 'A', 'R'};
/// Current segment version: 40-byte block headers carrying a per-block
/// codec id (store/format.h). New segments are written at this version.
inline constexpr std::uint16_t kArchiveVersion = 2;
/// Legacy segment version: 36-byte block headers, implicit zigzag-varint
/// codec. Still readable, and still writable for compatibility tests.
inline constexpr std::uint16_t kArchiveVersionV1 = 1;

/// Archive index sidecar (block directory + per-object postings).
/// Version 2 adds the per-block codec id and a fingerprint of the last
/// covered block header, so a sidecar cannot describe a segment that was
/// truncated and rewritten to the same byte count. Version 3 adds
/// per-location and per-container posting lists (segment-direct serving of
/// ObjectsAt / ContentsAt, src/query/segment_log). Sidecars are rebuildable
/// caches: readers fall back to a segment scan on any other version.
inline constexpr char kArchiveIndexMagic[kMagicBytes] = {'S', 'P', 'I', 'X'};
inline constexpr std::uint16_t kArchiveIndexVersion = 3;

/// Marker leading every archive block header; recovery scans for it.
inline constexpr std::uint32_t kArchiveBlockMarker = 0x53504232;  // "SPB2"

/// Distributed serving frames (dist/wire.h): every frame starts with a
/// 16-byte header = this marker, a type byte, a flags byte, the protocol
/// version, the payload length, and a CRC-32 covering header + payload.
inline constexpr std::uint32_t kDistFrameMarker = 0x53504446;  // "SPDF"
/// Version 1: Hello / EpochWork / SiteBatch / Barrier / Handoff payloads
/// (dist/wire.h). Version 2 adds the StatsReport frame and the fleet
/// observability fields: clock sync + stats cadence in Hello, a heartbeat
/// stamp in Barrier, and a trace span id in Handoff. Peers reject any
/// other version at the frame layer.
inline constexpr std::uint16_t kDistProtocolVersion = 2;

}  // namespace spire
