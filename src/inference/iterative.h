// Iterative inference (Section IV-C/D): sweeping edge and node inference
// across the graph in increasing distance from the colored nodes.
//
// Inference starts at the observed (colored) nodes and proceeds in BFS
// waves: nodes at distance d are processed only after every node at a
// smaller distance, so colors and edge probabilities established closer to
// the observations feed the inference further out. Within a wave, edge
// inference runs first (also pruning low-confidence edges), then node
// inference; wave results are committed together so same-wave nodes do not
// see each other's fresh estimates.
//
// Complete inference covers the entire graph; partial inference (run in
// epochs where some readers are silent) is restricted to nodes within
// `partial_hops` of a colored node and withholds "unknown" verdicts, since
// they may merely reflect a reader that was not scheduled to read.
//
// Delta-driven complete passes (DESIGN.md §10): with
// InferenceParams::incremental on, a complete pass recomputes only the
// connected components that contain a *seed* — a node whose color,
// adjacency or confirmation state changed since the last complete pass
// (Graph's dirty set), or a node whose fade-flip deadline arrived (the fade
// wheel) — and replays cached estimates for every untouched component.
// Because estimates are a per-component function of inputs that are all
// either constant or deadline-scheduled, the emitted event stream is
// byte-identical to a full recompute (the incremental_equivalence oracle
// proves it on every fuzz seed); only the cached posteriors served to the
// explain channel may be stale. All per-pass state (visited set, committed
// colors, wave buffers) lives in epoch-stamped scratch arrays indexed by
// NodeId, so steady-state passes allocate nothing.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "stream/reader.h"
#include "inference/edge_inference.h"
#include "inference/estimate.h"
#include "inference/node_inference.h"
#include "inference/params.h"

namespace spire {

/// Runs iterative inference passes over one graph.
class IterativeInference {
 public:
  /// `registry` (optional) supplies reader periods for normalized fading
  /// ages (InferenceParams::normalize_age_by_reader_period).
  IterativeInference(Graph* graph, const InferenceParams& params,
                     const ReaderRegistry* registry = nullptr)
      : graph_(graph),
        params_(params),
        edge_inferencer_(graph, &params_),
        node_inferencer_(graph, &params_, &edge_inferencer_,
                         LocationPeriods(registry)) {}

  /// Per-location reader periods from a registry (empty without one).
  static std::vector<Epoch> LocationPeriods(const ReaderRegistry* registry);

  /// Complete inference: every live node receives an estimate. Incremental
  /// when enabled and the cache is primed; a full pass otherwise (first
  /// pass, incremental off, or a scheduled resync boundary).
  InferenceResult RunComplete(Epoch now);

  /// Partial inference over the `partial_hops`-neighborhood of the colored
  /// nodes.
  InferenceResult RunPartial(Epoch now);

  const InferenceParams& params() const { return params_; }
  InferenceParams& mutable_params() { return params_; }

  /// Cross-site handoff support (spire/handoff.h). CaptureHandoff reads
  /// the node's cached complete-pass estimate and scheduled fade deadline;
  /// returns false when the cache holds no valid entry for the node (the
  /// deadline is still reported). ImplantHandoff restores both on the
  /// receiving side. The caller must also mark the implanted node dirty:
  /// the next complete pass then recomputes its component, so the shipped
  /// estimate is never replayed into the output — it only keeps the
  /// incremental cache and fade schedule shaped as if the object had lived
  /// here all along.
  bool CaptureHandoff(NodeId slot, ObjectEstimate* estimate,
                      Epoch* deadline) const;
  void ImplantHandoff(NodeId slot, const ObjectEstimate& estimate,
                      Epoch deadline);

 private:
  /// Epochs ahead that fade-flip deadlines are searched; nodes whose argmax
  /// is stable through the horizon but not in the fade -> 0 limit get a
  /// recheck at the horizon.
  static constexpr Epoch kFadeHorizon = 1 << 14;

  /// Timer wheel of per-node fade-flip deadlines. A node may be scheduled
  /// many times (each recompute reschedules); only the entry matching the
  /// latest Schedule() fires, the rest are dropped lazily on collection.
  class FadeWheel {
   public:
    void Resize(std::size_t slots);
    /// Sets the node's next wake-up (kNeverEpoch cancels a pending one).
    void Schedule(NodeId slot, Epoch deadline);
    /// Appends every node whose scheduled deadline lies in (prev, now] to
    /// `out` and unschedules it.
    void Collect(Epoch prev, Epoch now, std::vector<NodeId>* out);
    void Clear();
    /// The node's pending wake-up (kNeverEpoch when none or out of range).
    Epoch ScheduledAt(NodeId slot) const {
      return slot < wake_.size() ? wake_[slot] : kNeverEpoch;
    }

   private:
    static constexpr std::size_t kBuckets = 1024;
    struct Entry {
      Epoch deadline;
      NodeId slot;
    };
    void Drain(std::vector<Entry>& bucket, Epoch now,
               std::vector<NodeId>* out);
    std::array<std::vector<Entry>, kBuckets> ring_;
    /// Authoritative next wake-up per node slot; kNeverEpoch when none.
    std::vector<Epoch> wake_;
  };

  /// One inference pass. `restrict` limits complete passes to the given
  /// node set (a union of whole connected components); nullptr = whole
  /// graph.
  InferenceResult RunPass(Epoch now, bool complete,
                          const std::vector<NodeId>* restrict_to);
  InferenceResult RunFullComplete(Epoch now);
  InferenceResult RunIncrementalComplete(Epoch now);

  /// Grows the epoch-stamped scratch arrays to the graph's slot count.
  void EnsureScratch();

  /// Edge inference + pruning at one node; returns the container choice.
  EdgeInferenceResult InferEdgesAndPrune(const Node& node,
                                         InferenceResult* result);

  /// Caches a complete-pass estimate and (re)schedules the node's fade
  /// deadline; `model` is null for observed nodes (their next change is the
  /// color loss, which dirties them).
  void StoreCache(NodeId slot, const ObjectEstimate& estimate,
                  const ScoreModel* model, Epoch now);

  Graph* graph_;
  InferenceParams params_;
  EdgeInferencer edge_inferencer_;
  NodeInferencer node_inferencer_;

  // --- Epoch-stamped scratch (allocation-free steady-state passes) ---
  std::uint64_t pass_ = 0;
  std::vector<std::uint64_t> visited_stamp_;
  std::vector<std::uint64_t> known_stamp_;
  std::vector<LocationId> known_value_;
  std::uint64_t reach_round_ = 0;
  std::vector<std::uint64_t> reach_stamp_;
  std::vector<NodeId> wave_, next_, rest_, reach_, due_;
  std::vector<EdgeInferenceResult> wave_edges_;
  std::vector<ObjectEstimate> pending_;
  std::vector<ScoreModel> wave_models_;

  // --- Estimate cache + fade wheel (incremental mode) ---
  std::vector<ObjectEstimate> cache_;
  std::vector<std::uint8_t> cache_valid_;
  bool cache_primed_ = false;
  bool store_cache_ = false;
  int passes_since_full_ = 0;
  Epoch last_complete_ = kNeverEpoch;
  FadeWheel wheel_;
};

}  // namespace spire
