#include "cep/pattern.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "stream/reader.h"

namespace spire::cep {

const char* ToString(PredKind kind) {
  switch (kind) {
    case PredKind::kAt: return "At";
    case PredKind::kIn: return "In";
    case PredKind::kContains: return "Contains";
    case PredKind::kMissing: return "Missing";
  }
  return "?";
}

namespace {

/// Hand-rolled scanner over the expression text. Tokens are identifiers
/// (with an optional glued trailing '*' for location globs), integers, and
/// the punctuation `( ) , !`.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  /// Consumes one punctuation character if it is next.
  bool Eat(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Reads an identifier ([A-Za-z_][A-Za-z0-9_]*, optionally ending in a
  /// glued '*'); "" if the next token is not one.
  std::string Ident() {
    SkipSpace();
    std::size_t start = pos_;
    if (pos_ >= text_.size()) return "";
    char c = text_[pos_];
    if (!std::isalpha(static_cast<unsigned char>(c)) && c != '_') return "";
    while (pos_ < text_.size()) {
      c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '*') ++pos_;
    return text_.substr(start, pos_ - start);
  }

  /// Reads a nonnegative decimal integer; -1 if the next token is not one.
  std::int64_t Integer() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return -1;
    return std::stoll(text_.substr(start, pos_ - start));
  }

  /// True if the next token is exactly the keyword (consumed on match).
  bool Keyword(const std::string& word) {
    SkipSpace();
    std::size_t save = pos_;
    if (Ident() == word) return true;
    pos_ = save;
    return false;
  }

  std::string Context() const {
    return "near position " + std::to_string(pos_) + " in '" + text_ + "'";
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

Status ParseError(const std::string& name, Scanner& scan,
                  const std::string& what) {
  return Status::InvalidArgument("pattern '" + name + "': " + what + " " +
                                 scan.Context());
}

/// A plain variable: an identifier with no glob star.
bool IsVarName(const std::string& ident) {
  return !ident.empty() && ident.back() != '*';
}

Result<Step> ParseStep(const std::string& name, Scanner& scan) {
  Step step;
  step.negated = scan.Eat('!');
  const std::string head = scan.Ident();
  if (head == "At") {
    step.pred.kind = PredKind::kAt;
  } else if (head == "In") {
    step.pred.kind = PredKind::kIn;
  } else if (head == "Contains") {
    step.pred.kind = PredKind::kContains;
  } else if (head == "Missing") {
    step.pred.kind = PredKind::kMissing;
  } else {
    return ParseError(name, scan,
                      "expected a predicate (At/In/Contains/Missing)");
  }
  if (!scan.Eat('(')) return ParseError(name, scan, "expected '('");
  step.pred.var = scan.Ident();
  if (!IsVarName(step.pred.var)) {
    return ParseError(name, scan, "expected a variable");
  }
  if (step.pred.kind != PredKind::kMissing) {
    if (!scan.Eat(',')) return ParseError(name, scan, "expected ','");
    if (step.pred.kind == PredKind::kAt) {
      step.pred.loc_spec = scan.Ident();
      if (step.pred.loc_spec.empty()) {
        const std::int64_t id = scan.Integer();
        if (id < 0) {
          return ParseError(name, scan, "expected a location spec");
        }
        step.pred.loc_spec = std::to_string(id);
      }
    } else {
      step.pred.var2 = scan.Ident();
      if (!IsVarName(step.pred.var2)) {
        return ParseError(name, scan, "expected a second variable");
      }
    }
  }
  if (!scan.Eat(')')) return ParseError(name, scan, "expected ')'");
  if (scan.Keyword("WITHIN")) {
    const std::int64_t window = scan.Integer();
    if (window <= 0) {
      return ParseError(name, scan, "WITHIN needs a positive epoch count");
    }
    step.within = window;
  }
  return step;
}

}  // namespace

Result<Pattern> ParsePattern(const std::string& text,
                             const std::string& name) {
  Scanner scan(text);
  Pattern pattern;
  pattern.name = name;
  if (scan.Keyword("SEQ")) {
    if (!scan.Eat('(')) return ParseError(name, scan, "expected '(' after SEQ");
    do {
      auto step = ParseStep(name, scan);
      if (!step.ok()) return step.status();
      pattern.steps.push_back(std::move(step).value());
    } while (scan.Eat(','));
    if (!scan.Eat(')')) return ParseError(name, scan, "expected ')' or ','");
  } else {
    auto step = ParseStep(name, scan);
    if (!step.ok()) return step.status();
    pattern.steps.push_back(std::move(step).value());
  }
  if (!scan.AtEnd()) {
    return ParseError(name, scan, "trailing input");
  }
  return pattern;
}

std::string Pattern::ToString() const {
  std::ostringstream out;
  if (steps.size() != 1) out << "SEQ(";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const Step& step = steps[i];
    if (i > 0) out << ", ";
    if (step.negated) out << "!";
    out << cep::ToString(step.pred.kind) << "(" << step.pred.var;
    if (step.pred.kind == PredKind::kAt) {
      out << ", " << step.pred.loc_spec;
    } else if (step.pred.kind != PredKind::kMissing) {
      out << ", " << step.pred.var2;
    }
    out << ")";
    if (step.within > 0) out << " WITHIN " << step.within;
  }
  if (steps.size() != 1) out << ")";
  return out.str();
}

Result<std::vector<LocationId>> ResolveLocationSpec(
    const std::string& spec, const ReaderRegistry* registry) {
  if (spec.empty()) return Status::InvalidArgument("empty location spec");
  if (std::all_of(spec.begin(), spec.end(), [](unsigned char c) {
        return std::isdigit(c);
      })) {
    const std::int64_t id = std::stoll(spec);
    if (id < 0 || id >= kUnknownLocation) {
      return Status::InvalidArgument("location id out of range: " + spec);
    }
    return std::vector<LocationId>{static_cast<LocationId>(id)};
  }
  if (registry == nullptr) {
    return Status::InvalidArgument(
        "location name '" + spec +
        "' needs a deployment (only numeric ids resolve without one)");
  }
  std::vector<LocationId> out;
  const std::size_t num = registry->num_locations();
  if (!spec.empty() && spec.back() == '*') {
    const std::string prefix = spec.substr(0, spec.size() - 1);
    for (std::size_t id = 0; id < num; ++id) {
      const LocationId location = static_cast<LocationId>(id);
      if (registry->LocationName(location).starts_with(prefix)) {
        out.push_back(location);
      }
    }
    if (out.empty()) {
      return Status::NotFound("location glob '" + spec +
                              "' matches no registered location");
    }
    return out;
  }
  for (std::size_t id = 0; id < num; ++id) {
    const LocationId location = static_cast<LocationId>(id);
    if (registry->LocationName(location) == spec) {
      out.push_back(location);
      return out;
    }
  }
  return Status::NotFound("unknown location '" + spec + "'");
}

}  // namespace spire::cep
