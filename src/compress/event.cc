#include "compress/event.h"

#include <sstream>

#include "common/epc.h"

namespace spire {

const char* ToString(EventType type) {
  switch (type) {
    case EventType::kStartLocation:
      return "StartLocation";
    case EventType::kEndLocation:
      return "EndLocation";
    case EventType::kStartContainment:
      return "StartContainment";
    case EventType::kEndContainment:
      return "EndContainment";
    case EventType::kMissing:
      return "Missing";
  }
  return "invalid";
}

Event Event::StartLocation(ObjectId object, LocationId location, Epoch start) {
  Event e;
  e.type = EventType::kStartLocation;
  e.object = object;
  e.location = location;
  e.start = start;
  e.end = kInfiniteEpoch;
  return e;
}

Event Event::EndLocation(ObjectId object, LocationId location, Epoch start,
                         Epoch end) {
  Event e;
  e.type = EventType::kEndLocation;
  e.object = object;
  e.location = location;
  e.start = start;
  e.end = end;
  return e;
}

Event Event::StartContainment(ObjectId object, ObjectId container,
                              Epoch start) {
  Event e;
  e.type = EventType::kStartContainment;
  e.object = object;
  e.container = container;
  e.start = start;
  e.end = kInfiniteEpoch;
  return e;
}

Event Event::EndContainment(ObjectId object, ObjectId container, Epoch start,
                            Epoch end) {
  Event e;
  e.type = EventType::kEndContainment;
  e.object = object;
  e.container = container;
  e.start = start;
  e.end = end;
  return e;
}

Event Event::Missing(ObjectId object, LocationId missing_from, Epoch at) {
  Event e;
  e.type = EventType::kMissing;
  e.object = object;
  e.location = missing_from;
  e.start = at;
  e.end = at;
  return e;
}

namespace {

/// True for the three message kinds that describe an object's location.
bool IsLocationEvent(EventType type) { return !IsContainmentEvent(type); }

}  // namespace

std::vector<ChurnSplice> CancelLocationChurn(EventStream* events,
                                             std::size_t first) {
  const std::size_t n = events->size();
  std::vector<bool> removed(n - first, false);

  // Pass 1: zero-length stays superseded by another stay at the same epoch.
  for (std::size_t i = first; i < n; ++i) {
    const Event& start_event = (*events)[i];
    if (removed[i - first] || start_event.type != EventType::kStartLocation) {
      continue;
    }
    // The stay's close must be its very next location message...
    std::size_t close = n;
    for (std::size_t j = i + 1; j < n; ++j) {
      const Event& later = (*events)[j];
      if (removed[j - first] || later.object != start_event.object ||
          !IsLocationEvent(later.type)) {
        continue;
      }
      if (later.type == EventType::kEndLocation &&
          later.location == start_event.location &&
          later.start == start_event.start &&
          later.end == start_event.start) {
        close = j;
      }
      break;
    }
    if (close == n) continue;
    // ...and a replacement stay must open at the same epoch afterwards.
    // Without one the zero-length stay is a genuine visit (e.g. an exit
    // sighting) and stays; a Missing in between is a real departure.
    for (std::size_t k = close + 1; k < n; ++k) {
      const Event& later = (*events)[k];
      if (removed[k - first] || later.object != start_event.object ||
          !IsLocationEvent(later.type)) {
        continue;
      }
      if (later.type == EventType::kStartLocation &&
          later.start == start_event.start) {
        removed[i - first] = true;
        removed[close - first] = true;
      }
      break;
    }
  }

  // Pass 2: End immediately re-opened in place — the stay never ended.
  std::vector<ChurnSplice> splices;
  for (std::size_t i = first; i < n; ++i) {
    const Event& end_event = (*events)[i];
    if (removed[i - first] || end_event.type != EventType::kEndLocation) {
      continue;
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      const Event& later = (*events)[j];
      if (removed[j - first] || later.object != end_event.object ||
          !IsLocationEvent(later.type)) {
        continue;
      }
      if (later.type == EventType::kMissing) break;  // Keep a real departure.
      if (later.type == EventType::kStartLocation) {
        if (later.location == end_event.location &&
            later.start == end_event.end) {
          removed[i - first] = true;
          removed[j - first] = true;
          // The reopened stay may itself have ended later in this same
          // epoch; then the splice runs *through* the pair: the surviving
          // End inherits the original start instead of the stay being left
          // open.
          bool closed_later = false;
          for (std::size_t k = j + 1; k < n; ++k) {
            Event& after = (*events)[k];
            if (removed[k - first] || after.object != end_event.object ||
                !IsLocationEvent(after.type)) {
              continue;
            }
            if (after.type == EventType::kEndLocation &&
                after.location == end_event.location &&
                after.start == later.start) {
              after.start = end_event.start;
              closed_later = true;
            }
            break;
          }
          if (!closed_later) {
            splices.push_back(ChurnSplice{end_event.object,
                                          end_event.location,
                                          end_event.start});
          }
        }
        break;  // Only the immediately following stay can cancel the end.
      }
      if (later.type == EventType::kEndLocation) break;
    }
  }

  std::size_t write = first;
  for (std::size_t i = first; i < n; ++i) {
    if (!removed[i - first]) {
      if (write != i) (*events)[write] = (*events)[i];
      ++write;
    }
  }
  events->resize(write);
  return splices;
}

std::string Event::ToString() const {
  std::ostringstream out;
  out << spire::ToString(type) << "(" << EpcToString(object);
  if (IsContainmentEvent(type)) {
    out << ", in " << EpcToString(container);
  } else {
    out << ", loc " << location;
  }
  out << ", [" << start << ", ";
  if (end == kInfiniteEpoch) {
    out << "inf";
  } else {
    out << end;
  }
  out << "))";
  return out.str();
}

}  // namespace spire
