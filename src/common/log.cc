#include "common/log.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace spire {

namespace {

struct LogState {
  std::mutex mu;
  std::ostream* sink = nullptr;  // nullptr -> stderr (std::cerr).
  bool json = false;
  LogLevel min_level = LogLevel::kInfo;
  std::chrono::steady_clock::time_point origin;

  LogState() {
    origin = std::chrono::steady_clock::now();
    const char* json_env = std::getenv("SPIRE_LOG_JSON");
    json = json_env != nullptr && std::strcmp(json_env, "1") == 0;
    if (const char* level_env = std::getenv("SPIRE_LOG_LEVEL")) {
      if (std::strcmp(level_env, "debug") == 0) min_level = LogLevel::kDebug;
      if (std::strcmp(level_env, "info") == 0) min_level = LogLevel::kInfo;
      if (std::strcmp(level_env, "warn") == 0) min_level = LogLevel::kWarn;
      if (std::strcmp(level_env, "error") == 0) min_level = LogLevel::kError;
    }
  }
};

LogState& State() {
  static LogState state;
  return state;
}

}  // namespace

const char* ToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "invalid";
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void Log(LogLevel level, const std::string& component,
         const std::string& message) {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (static_cast<int>(level) < static_cast<int>(state.min_level)) return;
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - state.origin)
                           .count();
  std::ostream& out = state.sink != nullptr ? *state.sink : std::cerr;
  if (state.json) {
    out << "{\"ts_us\":" << elapsed << ",\"level\":\"" << ToString(level)
        << "\",\"component\":\"" << JsonEscape(component) << "\",\"msg\":\""
        << JsonEscape(message) << "\"}\n";
  } else {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "%.6f",
                  static_cast<double>(elapsed) / 1e6);
    out << "[" << stamp << "] "
        << static_cast<char>(std::toupper(ToString(level)[0])) << " "
        << component << ": " << message << "\n";
  }
  out.flush();
}

bool LogJsonMode() {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.json;
}

void SetLogJsonMode(bool json) {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.json = json;
}

LogLevel MinLogLevel() {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.min_level;
}

void SetMinLogLevel(LogLevel level) {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.min_level = level;
}

void SetLogSink(std::ostream* sink) {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.sink = sink;
}

}  // namespace spire
