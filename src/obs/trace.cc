#include "obs/trace.h"

#include <fstream>
#include <sstream>

namespace spire::obs {

namespace {

/// Small dense per-thread id: Perfetto tracks sort and label nicely.
int ThisThreadId() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void AppendEvent(std::ostream& out, const TraceEvent& event) {
  out << "{\"name\":\"" << event.name << "\",\"cat\":\"" << event.category
      << "\",\"ph\":\"" << event.phase << "\",\"ts\":" << event.ts_us;
  if (event.phase == 'X') {
    out << ",\"dur\":" << event.dur_us;
  }
  out << ",\"pid\":1,\"tid\":" << event.tid;
  if (event.phase == 'b' || event.phase == 'e') {
    out << ",\"id\":\"" << event.async_id << "\"";
  }
  if (event.epoch >= 0) {
    out << ",\"args\":{\"epoch\":" << event.epoch << "}";
  }
  out << "}";
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* instance = new Tracer();  // Never destroyed (see Registry).
  return *instance;
}

Status Tracer::Start(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("tracer: session already active");
  }
  events_.clear();
  path_ = path;
  origin_ = std::chrono::steady_clock::now();
  process_label_.clear();
  clock_offset_us_ = 0;
  active_.store(true, std::memory_order_release);
  return Status::OK();
}

void Tracer::AppendJson(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) out << ",\n";
    AppendEvent(out, events_[i]);
  }
  const auto origin_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          origin_.time_since_epoch())
          .count();
  out << "],\"spire\":{\"origin_us\":" << origin_us
      << ",\"offset_us\":" << clock_offset_us_ << ",\"process\":\""
      << process_label_ << "\"}}";
}

Status Tracer::Stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_.load(std::memory_order_acquire)) return Status::OK();
  active_.store(false, std::memory_order_release);
  std::ofstream out(path_);
  if (!out) {
    events_.clear();
    return Status::NotFound("cannot open for writing: " + path_);
  }
  AppendJson(out);
  out << "\n";
  events_.clear();
  if (!out.good()) return Status::Internal("write failed: " + path_);
  return Status::OK();
}

void Tracer::Record(const char* category, const char* name,
                    std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end,
                    std::int64_t epoch) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.tid = ThisThreadId();
  event.epoch = epoch;
  std::lock_guard<std::mutex> lock(mutex_);
  // The session may have stopped between the span's start and end; spans
  // racing a Stop() are dropped rather than written into the next session.
  if (!active_.load(std::memory_order_acquire)) return;
  // A span armed under a previous session can outlive it into this one;
  // clamp so the timestamp math never underflows.
  if (start < origin_) start = origin_;
  if (end < start) end = start;
  event.ts_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(start - origin_)
          .count());
  event.dur_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count());
  events_.push_back(event);
}

void Tracer::RecordAsync(const char* category, const char* name, char phase,
                         std::uint64_t id, std::int64_t epoch) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.tid = ThisThreadId();
  event.epoch = epoch;
  event.phase = phase;
  event.async_id = id;
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_.load(std::memory_order_acquire)) return;
  const auto start = now < origin_ ? origin_ : now;
  event.ts_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(start - origin_)
          .count());
  events_.push_back(event);
}

void Tracer::SetProcessLabel(const std::string& label) {
  std::lock_guard<std::mutex> lock(mutex_);
  process_label_ = label;
}

void Tracer::SetClockOffsetMicros(std::int64_t offset_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_offset_us_ = offset_us;
}

std::string Tracer::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  AppendJson(out);
  return out.str();
}

std::size_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

}  // namespace spire::obs
