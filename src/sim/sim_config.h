// Simulation parameters (Table II of the paper).
#pragma once

#include <cstdint>

#include "common/config.h"
#include "common/status.h"
#include "common/types.h"

namespace spire {

/// All knobs of the warehouse trace generator. Defaults follow the paper's
/// accuracy experiments (Section VI-B): 6 pallets injected per hour, 5 cases
/// per pallet, 20 items per case, 1-hour average shelving period, 3-hour
/// simulation, read rate 0.85, shelf readers once per minute, non-shelf
/// readers every epoch (2 interrogations per second).
struct SimConfig {
  /// Total simulated epochs (1 epoch = 1 second). Paper: 3-24 hours.
  Epoch duration_epochs = 3 * 3600;

  /// A new pallet enters every `pallet_interval` epochs. Paper: 1/4s-600s.
  Epoch pallet_interval = 600;

  /// Cases per arriving pallet, uniform in [min, max]. Paper: 5-8.
  int min_cases_per_pallet = 5;
  int max_cases_per_pallet = 5;

  /// Items per case. Paper: 20.
  int items_per_case = 20;

  /// Probability that a present tag responds to one interrogation.
  /// Paper: 0.5-1, default 0.85.
  double read_rate = 0.85;

  /// Non-shelf readers interrogate this many times per epoch. Paper: 2/sec.
  int nonshelf_ticks_per_epoch = 2;

  /// Shelf readers interrogate once every `shelf_period` epochs.
  /// Paper: 1/sec to 1/min, default 1/min.
  Epoch shelf_period = 60;

  /// Number of distinct shelf locations cases are spread over.
  int num_shelves = 8;

  /// Average shelving period in epochs (uniform in [0.5x, 1.5x]).
  /// Paper: ~1 hour.
  Epoch mean_shelf_stay = 3600;

  /// Dwell times (epochs) in the non-shelf stages.
  Epoch entry_dwell = 10;
  Epoch belt_dwell = 4;
  Epoch packaging_dwell = 30;
  Epoch exit_dwell = 4;

  /// An under-filled outgoing pallet is sealed anyway once its first case
  /// has waited this long in the packaging area (keeps sparse traffic
  /// flowing; a full batch seals immediately).
  Epoch packaging_timeout = 900;

  /// Travel time between consecutive stages; objects in transit are at the
  /// unknown location and unreadable.
  Epoch transit_time = 5;

  /// Unexpected removals (theft / misplacement): one stolen object every
  /// `theft_interval` epochs; 0 disables. Paper (Expt 4): every 100 s.
  Epoch theft_interval = 0;

  /// Deploy a mobile reader patrolling all shelves (the paper's future-work
  /// extension), dwelling `patrol_dwell` epochs per shelf and reading every
  /// epoch while there. Off by default.
  bool patrol_reader = false;
  Epoch patrol_dwell = 10;

  /// Cross-site truck transfers (sim/transfer.h). With `transfer_sites`
  /// >= 2, BuildTransferTrace runs that many independent warehouses and
  /// overlays trucks that carry a closed pallet group from one site's
  /// outgoing belt to the next site's entry door. 1 disables transfers.
  int transfer_sites = 1;

  /// A new truck enters service every `transfer_interval` epochs.
  Epoch transfer_interval = 120;

  /// Epochs a truck spends being loaded at the outgoing belt (readings
  /// before departure) and unloaded at the entry door (readings after
  /// arrival); also the parking gap between consecutive legs.
  Epoch transfer_dwell = 4;

  /// Epochs in transit between sites. Must be >= 1: a handoff has to
  /// arrive strictly after it departs so the distributed feed protocol can
  /// forward the captured state ahead of the arrival epoch.
  Epoch transfer_transit = 5;

  /// Round trips per truck; each round trip is two legs.
  int transfer_round_trips = 1;

  /// Truck cargo: one pallet carrying `transfer_cases` cases with
  /// `transfer_items` items each.
  int transfer_cases = 2;
  int transfer_items = 3;

  /// RNG seed; identical seeds reproduce identical traces.
  std::uint64_t seed = 42;

  /// Applies `key=value` overrides (keys match field names) on top of
  /// `base`, which supplies the defaults for keys not present.
  static Result<SimConfig> FromConfig(const Config& config,
                                      const SimConfig& base);
  static Result<SimConfig> FromConfig(const Config& config);

  /// Sanity-checks ranges.
  Status Validate() const;
};

}  // namespace spire
