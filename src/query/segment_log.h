// Segment-direct historical query serving: EventLog's answers straight from
// an archive segment, without materializing the stream.
//
// EventLog::FromArchive decodes every intersecting block and folds the whole
// selection up front — fine for analytics, wasteful when millions of point
// queries each need one object at one epoch. SegmentLog instead resolves
// each query from the `.spix` sidecar indexes:
//
//   1. Look up the posting list for the query's key — per-object for
//      LocationAt / ContainerAt / TrajectoryOf / IsMissingAt, per-location
//      for ObjectsAt, per-container for ContentsAt (sidecar v3).
//   2. For point queries at epoch t, cut the list to candidate blocks with
//      min_epoch <= t. Blocks past the cut hold only events whose primary
//      timestamps exceed t: suffix Starts open after t, and suffix Ends
//      only *extend* stays past t — neither changes which stays cover t,
//      so the prefix folds to the same answer as the full stream
//      (binary-searched when block min-epochs are monotone, the compressor
//      emission order; linearly filtered otherwise — same selection).
//   3. Decode only those blocks — through the shared BlockCache when one is
//      attached, so hot blocks skip the codec entirely — filter to the
//      query's key, and fold just that slice (compress/fold) into stays.
//
// Filtered folds are exact because archived streams are well-formed
// (compress/well_formed): an End names its Start's location/container, so
// restricting the stream to one object, one location, or one container
// keeps Start/End pairs together and the slice folds to the identical stays
// the full fold would produce. Answers therefore equal EventLog's on the
// archived (level-as-stored) stream — the `query_equivalence` oracle in
// src/check enforces this on fuzzed traces.
//
// Thread safety: all queries are const and safe to call concurrently from
// many threads over one SegmentLog (ArchiveReader's decode paths are
// concurrent-safe; the cache takes per-shard locks). Segments are immutable
// after Close and `compact` replaces rather than rewrites, so an open
// SegmentLog is a stable snapshot: cache keys carry a per-open segment tag,
// never aliasing entries across a replaced file.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/block_cache.h"
#include "query/event_log.h"
#include "store/archive_reader.h"

namespace spire {

class SegmentLog {
 public:
  /// Opens a segment for direct serving. `cache` may be null (every block
  /// access decodes) or shared with other SegmentLogs and threads.
  static Result<std::unique_ptr<SegmentLog>> Open(
      const std::string& path, ReaderOptions options = {},
      std::shared_ptr<BlockCache> cache = nullptr);

  // Point and set queries match EventLog's on the archived stream (i.e.
  // EventLog::FromArchive(reader, 0, kInfiniteEpoch, /*decompress=*/false)).

  /// resides(object, ?, epoch): the reported location, or kUnknownLocation.
  Result<LocationId> LocationAt(ObjectId object, Epoch epoch) const;

  /// contained(object, ?, epoch): the direct container, or kNoObject.
  Result<ObjectId> ContainerAt(ObjectId object, Epoch epoch) const;

  /// Objects reported directly inside `container` at `epoch`, ascending;
  /// `transitive` descends the containment tree.
  Result<std::vector<ObjectId>> ContentsAt(ObjectId container, Epoch epoch,
                                           bool transitive = false) const;

  /// Objects reported at `location` at `epoch`, ascending.
  Result<std::vector<ObjectId>> ObjectsAt(LocationId location,
                                          Epoch epoch) const;

  /// The object's full location history, in time order.
  Result<std::vector<Stay>> TrajectoryOf(ObjectId object) const;

  /// True when a Missing report covers the epoch.
  Result<bool> IsMissingAt(ObjectId object, Epoch epoch) const;

  /// The underlying reader (directory stats, posting universes for
  /// workload generation).
  const ArchiveReader& reader() const { return reader_; }

  /// Blocks actually decoded (cache misses or uncached access) — the
  /// `decodes <= cache misses` reconciliation stat.
  std::uint64_t blocks_decoded() const {
    return blocks_decoded_.load(std::memory_order_relaxed);
  }

  /// The tag this view's cache entries are keyed under.
  std::uint64_t segment_tag() const { return segment_tag_; }

 private:
  SegmentLog(ArchiveReader reader, std::shared_ptr<BlockCache> cache);

  /// The posting-list prefix of blocks with min_epoch <= epoch.
  std::vector<std::uint32_t> CandidateBlocks(
      const std::vector<std::uint32_t>& postings, Epoch epoch) const;

  /// One decoded block, through the cache when attached.
  Result<BlockCache::BlockPtr> FetchBlock(std::uint32_t index) const;

  /// Concatenation of the listed blocks' events passing `keep`, in stream
  /// order.
  template <typename Keep>
  Result<EventStream> Collect(const std::vector<std::uint32_t>& blocks,
                              Keep keep) const;

  Status AppendContents(ObjectId container, Epoch epoch, bool transitive,
                        std::vector<ObjectId>* out,
                        std::vector<ObjectId>* visited) const;

  ArchiveReader reader_;
  std::shared_ptr<BlockCache> cache_;
  std::uint64_t segment_tag_ = 0;
  /// True when block min-epochs are non-decreasing in directory order —
  /// then CandidateBlocks binary-searches instead of filtering.
  bool monotone_min_epochs_ = false;
  mutable std::atomic<std::uint64_t> blocks_decoded_{0};
};

}  // namespace spire
