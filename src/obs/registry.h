// Process-wide observability registry (DESIGN.md §9).
//
// Every module registers named instruments — counters, gauges, and
// fixed-bucket histograms — under its module name (`common`, `stream`,
// `smurf`, `graph`, `inference`, `compress`, `store`, `serve`). Instruments
// are allocated once, never move, and record through relaxed atomics, so
// any thread may bump them and any thread may sample them live.
//
// Observability is off by default. Instrumented code follows one pattern:
//
//   const Instruments* obs = GetInstruments();   // nullptr while disabled
//   if (obs != nullptr) obs->readings->Add(n);
//
// so the whole cost of a disabled build is one branch on a pointer (the
// pointer itself is resolved from one atomic bool). Enable() is called by
// entry points that want metrics (spire_cli statusz / run / serve, tests,
// benches) before the instrumented objects start working.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace spire::obs {

struct RegistrySnapshot;

/// True when observability instruments are active (default: false).
bool Enabled();

/// Turns the instrument layer on or off, process-wide. Instruments already
/// handed out stay valid either way; disabled code paths simply stop
/// fetching them.
void SetEnabled(bool enabled);

/// Monotonic event count.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level; also usable as a running maximum via SetMax.
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  /// Folds an observation into a running maximum.
  void SetMax(std::int64_t v) {
    std::int64_t seen = value_.load(std::memory_order_relaxed);
    while (v > seen &&
           !value_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over non-negative integer samples: bucket i
/// counts samples in [2^i, 2^(i+1)); samples below 1 clamp to 1. Quantiles
/// interpolate linearly inside the bucket holding the target rank, so a
/// bucket's reported quantile never exceeds its upper bound. Values are
/// unit-agnostic; the latency users record microseconds.
class Histogram {
 public:
  static constexpr int kBuckets = 40;

  /// Lower / upper bound of bucket i: [2^i, 2^(i+1)).
  static std::uint64_t BucketLowerBound(int i) {
    return std::uint64_t{1} << i;
  }
  static std::uint64_t BucketUpperBound(int i) {
    return std::uint64_t{1} << (i + 1);
  }
  /// Bucket index a value lands in.
  static int BucketOf(std::uint64_t value);

  void Record(std::uint64_t value);
  /// Records a duration in microseconds (negative clamps to 1 us).
  void RecordSeconds(double seconds);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double mean() const;
  std::uint64_t total() const {
    return total_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_sample() const {
    return max_.load(std::memory_order_relaxed);
  }
  double max() const { return static_cast<double>(max_sample()); }
  /// Interpolated value at quantile `q` in [0, 1]; 0 when empty.
  double Quantile(double q) const;

  /// Quantile interpolation over a plain bucket array (shared by the live
  /// histogram and merged snapshots): rank-interpolates inside the bucket
  /// holding the target, falling back to `max_value` past the last bucket.
  static double QuantileOverBuckets(const std::uint64_t buckets[kBuckets],
                                    std::uint64_t count, double max_value,
                                    double q);

  /// {"count":..,"mean<unit>":..,"p50<unit>":..,"p95<unit>":..,
  ///  "p99<unit>":..,"max<unit>":..} — `unit` is a key suffix ("_us" for
  /// the latency histograms).
  std::string ToJson(const std::string& unit = "_us") const;

  void Reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// One histogram's sampled state: the plain-value mirror of Histogram,
/// mergeable and wire-serializable (dist/wire.h StatsReport frames).
struct HistogramSnapshot {
  std::uint64_t buckets[Histogram::kBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t total = 0;
  std::uint64_t max = 0;

  /// Bucket-wise merge: buckets, count, and total add; max takes the max.
  /// Because both operands bucket with the same boundaries, the merged
  /// quantiles are exactly what one histogram fed both sample streams
  /// would report.
  void Merge(const HistogramSnapshot& other);

  double mean() const;
  double Quantile(double q) const;
  /// Same shape as Histogram::ToJson.
  std::string ToJson(const std::string& unit = "_us") const;

  bool operator==(const HistogramSnapshot&) const = default;
};

/// One registry's sampled state, keyed module -> instrument name. This is
/// what a dist node ships to its coordinator in a StatsReport frame and
/// what fleet aggregation merges.
struct RegistrySnapshot {
  struct Module {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
    bool operator==(const Module&) const = default;
  };

  std::map<std::string, Module> modules;

  /// Fleet merge: counters add, gauges take the max (a gauge is a level —
  /// the fleet view reports the worst node), histograms merge bucket-wise.
  void Merge(const RegistrySnapshot& other);

  /// Same shape as Registry::ToJson: {"modules":{..}}.
  std::string ToJson() const;

  bool empty() const { return modules.empty(); }

  bool operator==(const RegistrySnapshot&) const = default;
};

/// The process-wide instrument registry. Get* registers on first use and
/// returns the same stable pointer afterwards; registration takes a mutex,
/// recording never does. Dump methods sample live values (individually
/// consistent, not a snapshot).
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& module, const std::string& name);
  Gauge* GetGauge(const std::string& module, const std::string& name);
  Histogram* GetHistogram(const std::string& module, const std::string& name);

  /// Samples every instrument into a plain-value snapshot. Serialized
  /// against Reset() on the registry mutex, so a snapshot racing a reset
  /// sees each histogram either before or after zeroing — never a torn
  /// bucket array (count wiped, buckets not). Writers recording through
  /// the relaxed atomics are not blocked, so a snapshot's count can trail
  /// its bucket sum by at most the number of concurrently recording
  /// threads.
  RegistrySnapshot TakeSnapshot() const;

  /// {"modules":{"<module>":{"counters":{..},"gauges":{..},
  ///  "histograms":{..}},..}} with modules and instruments in name order.
  std::string ToJson() const;

  /// Human-readable dump: one "module.name value" line per instrument,
  /// prefixed by a summary of the modules with non-zero activity.
  std::string ToText() const;

  /// Number of modules with at least one non-zero instrument.
  std::size_t NumActiveModules() const;

  /// Zeroes every instrument (pointers stay valid). Tests and statusz runs
  /// use this to isolate themselves from earlier activity. Serialized
  /// against TakeSnapshot() and the dump methods on the registry mutex
  /// (see TakeSnapshot for the exact guarantee).
  void Reset();

 private:
  struct Module {
    // Node-based maps: instrument addresses are stable for the registry's
    // lifetime (atomics are neither movable nor copyable anyway).
    std::map<std::string, Counter> counters;
    std::map<std::string, Gauge> gauges;
    std::map<std::string, Histogram> histograms;
  };

  bool ModuleActive(const Module& module) const;

  mutable std::mutex mutex_;
  std::map<std::string, Module> modules_;
};

}  // namespace spire::obs
