// Expt 12: delta-driven inference (DESIGN.md §10) vs full recomputation.
//
// Two pipelines consume identical readings under
// InferenceMode::kAlwaysComplete (a complete pass every epoch — the setting
// where the scheduler matters most); one runs with
// InferenceParams::incremental on, the other recomputes the whole graph
// each pass. Their event streams are required to be byte-identical — the
// run aborts otherwise — so the numbers compare equal outputs.
//
// Two workloads bound the win:
//  * stationary — the expt5 shape: pallets park on shelves and stay, so an
//    epoch's dirty set is a thin slice of a large graph. This is where
//    delta-driven inference pays (target: >= 3x complete-pass throughput).
//  * churny — short shelf stays and fast injection keep most of the graph
//    moving; there is little to skip and the question is how much the
//    bookkeeping costs (target: within ~10% of full recomputation).
//
//   ./expt12_incremental [full=true] [key=value ...]
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "eval/table.h"
#include "sim/simulator.h"

using namespace spire;
using namespace spire::bench;

namespace {

struct ModeCosts {
  double update_s = 0.0;
  double inference_s = 0.0;
  double total() const { return update_s + inference_s; }
};

struct WorkloadResult {
  std::size_t objects = 0;
  std::size_t edges = 0;
  Epoch epochs = 0;
  ModeCosts full;
  ModeCosts incremental;
  bool identical = false;
};

/// Runs one workload through both modes, feeding byte-identical readings,
/// and checks the output streams agree event for event.
Status RunWorkload(const SimConfig& sim_config, Epoch warmup, Epoch measure,
                   WorkloadResult* result) {
  auto sim = WarehouseSimulator::Create(sim_config);
  if (!sim.ok()) return sim.status();
  WarehouseSimulator& s = *sim.value();

  PipelineOptions base;
  base.inference_mode = InferenceMode::kAlwaysComplete;
  PipelineOptions full_options = base;
  full_options.inference.incremental = false;
  PipelineOptions incremental_options = base;
  incremental_options.inference.incremental = true;

  SpirePipeline full(&s.registry(), full_options);
  SpirePipeline incremental(&s.registry(), incremental_options);
  EventStream full_out, incremental_out;

  for (Epoch e = 0; e < warmup + measure && !s.Done(); ++e) {
    EpochReadings readings = s.Step();
    EpochReadings copy = readings;  // Same bytes into both pipelines.
    const Epoch epoch = s.current_epoch();
    full.ProcessEpoch(epoch, std::move(readings), &full_out);
    incremental.ProcessEpoch(epoch, std::move(copy), &incremental_out);
    if (full_out != incremental_out) {
      return Status::Internal(
          "incremental output diverged from full recomputation at epoch " +
          std::to_string(epoch));
    }
    full_out.clear();
    incremental_out.clear();
    if (e >= warmup) {
      result->full.update_s += full.last_costs().update_seconds;
      result->full.inference_s += full.last_costs().inference_seconds;
      result->incremental.update_s += incremental.last_costs().update_seconds;
      result->incremental.inference_s +=
          incremental.last_costs().inference_seconds;
      ++result->epochs;
    }
  }
  result->objects = full.graph().NumNodes();
  result->edges = full.graph().NumEdges();
  result->identical = true;
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  const bool full_mode = args.GetBool("full", false).value_or(false);

  // Stationary: the expt5 shape — the graph grows and parks.
  SimConfig stationary;
  stationary.pallet_interval = 8;
  stationary.belt_dwell = 1;
  stationary.transit_time = 1;
  stationary.min_cases_per_pallet = 5;
  stationary.max_cases_per_pallet = 8;
  stationary.items_per_case = 20;
  stationary.num_shelves = 64;
  stationary.shelf_period = 60;
  stationary.mean_shelf_stay = 1000000;  // Park: the graph only grows.
  stationary.duration_epochs = 1000000;

  // Churny: everything keeps moving, so most components are dirty.
  SimConfig churny;
  churny.pallet_interval = 4;
  churny.belt_dwell = 1;
  churny.transit_time = 1;
  churny.min_cases_per_pallet = 2;
  churny.max_cases_per_pallet = 4;
  churny.items_per_case = 5;
  churny.num_shelves = 16;
  churny.shelf_period = 2;  // Fast shelves: colors arrive constantly.
  churny.mean_shelf_stay = 8;
  churny.duration_epochs = 1000000;

  const Epoch warmup = full_mode ? 800 : 250;
  const Epoch measure = full_mode ? 800 : 250;

  PrintHeader("Expt 12: delta-driven vs full complete inference",
              "DESIGN.md §10");

  BenchReport report("incremental");
  TextTable table({"workload", "objects", "edges", "full (s/epoch)",
                   "incremental (s/epoch)", "speedup"});
  bool ok = true;
  for (auto& [name, config] :
       std::vector<std::pair<std::string, SimConfig>>{
           {"stationary", stationary}, {"churny", churny}}) {
    auto overridden = SimConfig::FromConfig(args, config);
    if (overridden.ok()) config = overridden.value();
    WorkloadResult result;
    Status status = RunWorkload(config, warmup, measure, &result);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    const double full_epoch = result.full.total() / result.epochs;
    const double inc_epoch = result.incremental.total() / result.epochs;
    const double speedup = inc_epoch > 0.0 ? full_epoch / inc_epoch : 0.0;
    table.AddRow({name, std::to_string(result.objects),
                  std::to_string(result.edges),
                  TextTable::Num(full_epoch, 6), TextTable::Num(inc_epoch, 6),
                  TextTable::Num(speedup, 2)});
    report.Add(name + ".full_s_per_epoch", full_epoch);
    report.Add(name + ".incremental_s_per_epoch", inc_epoch);
    report.Add(name + ".full_epochs_per_sec",
               full_epoch > 0.0 ? 1.0 / full_epoch : 0.0);
    report.Add(name + ".incremental_epochs_per_sec",
               inc_epoch > 0.0 ? 1.0 / inc_epoch : 0.0);
    report.Add(name + ".speedup", speedup);
    // Update cost is mode-independent; the inference-only ratio isolates
    // what the scheduler actually changed.
    const double full_inf = result.full.inference_s / result.epochs;
    const double inc_inf = result.incremental.inference_s / result.epochs;
    report.Add(name + ".full_inference_s_per_epoch", full_inf);
    report.Add(name + ".incremental_inference_s_per_epoch", inc_inf);
    report.Add(name + ".inference_speedup",
               inc_inf > 0.0 ? full_inf / inc_inf : 0.0);
    ok = ok && result.identical;
  }
  table.Print();
  if (!ok) return 1;
  Status status = report.Write();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
