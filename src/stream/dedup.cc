#include "stream/dedup.h"

#include <unordered_map>

namespace spire {

DedupStats Deduplicate(EpochReadings* readings) {
  DedupStats stats;
  stats.input_readings = readings->size();
  if (readings->size() <= 1) return stats;

  // First pass: for each (epoch, tag), find the index of the winning reading
  // (highest tick; later arrival wins a tie).
  struct Winner {
    std::size_t index;
    std::uint16_t tick;
  };
  std::unordered_map<ObjectId, Winner> winners;
  winners.reserve(readings->size());
  for (std::size_t i = 0; i < readings->size(); ++i) {
    const RfidReading& r = (*readings)[i];
    auto [it, inserted] = winners.try_emplace(r.tag, Winner{i, r.tick});
    if (!inserted && r.tick >= it->second.tick) {
      it->second = Winner{i, r.tick};
    }
  }

  // Second pass: keep only the winners, preserving arrival order.
  EpochReadings kept;
  kept.reserve(winners.size());
  for (std::size_t i = 0; i < readings->size(); ++i) {
    if (winners.at((*readings)[i].tag).index == i) {
      kept.push_back((*readings)[i]);
    }
  }
  stats.duplicates_dropped = readings->size() - kept.size();
  *readings = std::move(kept);
  return stats;
}

}  // namespace spire
