#include "stream/trace_io.h"

#include <array>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

#include "common/wire.h"

namespace spire {

namespace {

constexpr char kMagic[4] = {'S', 'P', 'T', 'R'};
constexpr std::uint16_t kVersion = 1;

template <typename T>
void PutBE(T value, std::ostream* out) {
  using U = std::make_unsigned_t<T>;
  U bits = static_cast<U>(value);
  for (int shift = static_cast<int>(sizeof(U)) * 8 - 8; shift >= 0;
       shift -= 8) {
    char byte = static_cast<char>((bits >> shift) & 0xff);
    out->write(&byte, 1);
  }
}

template <typename T>
bool GetBE(std::istream* in, T* value) {
  using U = std::make_unsigned_t<T>;
  U bits = 0;
  for (std::size_t i = 0; i < sizeof(U); ++i) {
    int byte = in->get();
    if (byte == std::char_traits<char>::eof()) return false;
    bits = bits << 8 | static_cast<U>(byte & 0xff);
  }
  *value = static_cast<T>(bits);
  return true;
}

}  // namespace

Status TraceWriter::WriteHeader() {
  out_->write(kMagic, sizeof(kMagic));
  PutBE<std::uint16_t>(kVersion, out_);
  if (!out_->good()) return Status::Internal("trace header write failed");
  return Status::OK();
}

Status TraceWriter::WriteEpoch(Epoch epoch, const EpochReadings& readings) {
  if (readings.empty()) return Status::OK();
  if (epoch <= last_epoch_) {
    return Status::InvalidArgument("epoch blocks must strictly increase");
  }
  if (readings.size() > std::numeric_limits<std::uint32_t>::max()) {
    return Status::InvalidArgument("too many readings in one epoch");
  }
  last_epoch_ = epoch;
  PutBE<std::int64_t>(epoch, out_);
  PutBE<std::uint32_t>(static_cast<std::uint32_t>(readings.size()), out_);
  for (const RfidReading& reading : readings) {
    if (reading.epoch != epoch) {
      return Status::InvalidArgument("reading from a different epoch");
    }
    PutBE<std::uint32_t>(0, out_);  // EPC header bytes.
    PutBE<std::uint64_t>(reading.tag, out_);
    PutBE<std::uint16_t>(reading.reader, out_);
    PutBE<std::uint16_t>(reading.tick, out_);
  }
  if (!out_->good()) return Status::Internal("trace block write failed");
  return Status::OK();
}

Status TraceReader::ReadHeader() {
  std::array<char, sizeof(kMagic)> magic{};
  in_->read(magic.data(), magic.size());
  if (!in_->good() || std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a SPIRE trace file (bad magic)");
  }
  std::uint16_t version = 0;
  if (!GetBE(in_, &version) || version != kVersion) {
    return Status::NotSupported("unsupported trace version");
  }
  return Status::OK();
}

Result<bool> TraceReader::NextEpoch(Epoch* epoch, EpochReadings* readings) {
  readings->clear();
  std::int64_t epoch_value = 0;
  if (!GetBE(in_, &epoch_value)) {
    return false;  // Clean end of file.
  }
  std::uint32_t count = 0;
  if (!GetBE(in_, &count)) {
    return Status::Corruption("truncated epoch block header");
  }
  *epoch = epoch_value;
  readings->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t epc_header = 0;
    std::uint64_t tag = 0;
    std::uint16_t reader = 0;
    std::uint16_t tick = 0;
    if (!GetBE(in_, &epc_header) || !GetBE(in_, &tag) ||
        !GetBE(in_, &reader) || !GetBE(in_, &tick)) {
      return Status::Corruption("truncated reading record");
    }
    if (epc_header != 0) {
      return Status::Corruption("nonzero EPC header bytes");
    }
    RfidReading reading;
    reading.tag = tag;
    reading.reader = reader;
    reading.epoch = epoch_value;
    reading.tick = tick;
    readings->push_back(reading);
  }
  return true;
}

}  // namespace spire
