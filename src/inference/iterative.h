// Iterative inference (Section IV-C/D): sweeping edge and node inference
// across the graph in increasing distance from the colored nodes.
//
// Inference starts at the observed (colored) nodes and proceeds in BFS
// waves: nodes at distance d are processed only after every node at a
// smaller distance, so colors and edge probabilities established closer to
// the observations feed the inference further out. Within a wave, edge
// inference runs first (also pruning low-confidence edges), then node
// inference; wave results are committed together so same-wave nodes do not
// see each other's fresh estimates.
//
// Complete inference covers the entire graph; partial inference (run in
// epochs where some readers are silent) is restricted to nodes within
// `partial_hops` of a colored node and withholds "unknown" verdicts, since
// they may merely reflect a reader that was not scheduled to read.
#pragma once

#include <unordered_map>

#include "graph/graph.h"
#include "stream/reader.h"
#include "inference/edge_inference.h"
#include "inference/estimate.h"
#include "inference/node_inference.h"
#include "inference/params.h"

namespace spire {

/// Runs iterative inference passes over one graph.
class IterativeInference {
 public:
  /// `registry` (optional) supplies reader periods for normalized fading
  /// ages (InferenceParams::normalize_age_by_reader_period).
  IterativeInference(Graph* graph, const InferenceParams& params,
                     const ReaderRegistry* registry = nullptr)
      : graph_(graph),
        params_(params),
        edge_inferencer_(graph, &params_),
        node_inferencer_(graph, &params_, &edge_inferencer_,
                         LocationPeriods(registry)) {}

  /// Per-location reader periods from a registry (empty without one).
  static std::vector<Epoch> LocationPeriods(const ReaderRegistry* registry);

  /// Complete inference over the entire graph.
  InferenceResult RunComplete(Epoch now) { return Run(now, true); }

  /// Partial inference over the `partial_hops`-neighborhood of the colored
  /// nodes.
  InferenceResult RunPartial(Epoch now) { return Run(now, false); }

  const InferenceParams& params() const { return params_; }
  InferenceParams& mutable_params() { return params_; }

 private:
  InferenceResult Run(Epoch now, bool complete);

  /// Edge inference + pruning at one node; returns the container choice.
  EdgeInferenceResult InferEdgesAndPrune(const Node& node,
                                         InferenceResult* result);

  Graph* graph_;
  InferenceParams params_;
  EdgeInferencer edge_inferencer_;
  NodeInferencer node_inferencer_;
};

}  // namespace spire
