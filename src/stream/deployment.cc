#include "stream/deployment.h"

#include <map>
#include <sstream>

namespace spire {

namespace {

Result<ReaderType> TypeFromName(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(ReaderType::kMobile); ++i) {
    ReaderType type = static_cast<ReaderType>(i);
    if (name == ToString(type)) return type;
  }
  return Status::InvalidArgument("unknown reader type: " + name);
}

}  // namespace

Result<ReaderRegistry> ParseDeployment(
    const std::vector<std::string>& lines) {
  ReaderRegistry registry;
  std::map<std::string, LocationId> locations;
  std::map<std::string, ReaderId> readers_by_name;
  for (const std::string& line : lines) {
    std::istringstream in(line);
    std::string keyword;
    if (!(in >> keyword) || keyword[0] == '#') continue;
    if (keyword == "location") {
      std::string name;
      if (!(in >> name)) {
        return Status::InvalidArgument("malformed location line: " + line);
      }
      auto [it, inserted] = locations.try_emplace(
          name, static_cast<LocationId>(locations.size()));
      if (inserted) registry.AddLocation(name);
      continue;
    }
    if (keyword == "patrol") {
      std::string name;
      Epoch dwell = 0;
      if (!(in >> name >> dwell)) {
        return Status::InvalidArgument("malformed patrol line: " + line);
      }
      auto reader_it = readers_by_name.find(name);
      if (reader_it == readers_by_name.end()) {
        return Status::InvalidArgument("patrol for unknown reader: " + name);
      }
      std::vector<LocationId> route;
      std::string stop;
      while (in >> stop) {
        auto loc_it = locations.find(stop);
        if (loc_it == locations.end()) {
          return Status::InvalidArgument("patrol stop is not a location: " +
                                         stop);
        }
        route.push_back(loc_it->second);
      }
      if (route.empty()) {
        return Status::InvalidArgument("patrol without stops: " + line);
      }
      SPIRE_RETURN_NOT_OK(
          registry.SetPatrol(reader_it->second, std::move(route), dwell));
      continue;
    }
    if (keyword != "reader") {
      return Status::InvalidArgument("unknown deployment keyword: " + keyword);
    }
    std::string name, location_name, type_name;
    Epoch period = 0;
    if (!(in >> name >> location_name >> type_name >> period)) {
      return Status::InvalidArgument("malformed reader line: " + line);
    }
    auto type = TypeFromName(type_name);
    if (!type.ok()) return type.status();

    auto [it, inserted] = locations.try_emplace(
        location_name, static_cast<LocationId>(locations.size()));
    if (inserted) registry.AddLocation(location_name);

    ReaderInfo info;
    info.id = static_cast<ReaderId>(registry.readers().size());
    info.location = it->second;
    info.type = type.value();
    info.period_epochs = period;
    info.name = name;
    SPIRE_RETURN_NOT_OK(registry.AddReader(info));
    readers_by_name[name] = info.id;
  }
  return registry;
}

std::vector<std::string> SerializeDeployment(const ReaderRegistry& registry) {
  std::vector<std::string> lines;
  lines.push_back("# SPIRE reader deployment");
  for (std::size_t id = 0; id < registry.num_locations(); ++id) {
    lines.push_back("location " +
                    registry.LocationName(static_cast<LocationId>(id)));
  }
  for (const ReaderInfo& reader : registry.readers()) {
    std::ostringstream out;
    std::string name = reader.name.empty()
                           ? "reader_" + std::to_string(reader.id)
                           : reader.name;
    out << "reader " << name << " " << registry.LocationName(reader.location)
        << " " << ToString(reader.type) << " " << reader.period_epochs;
    lines.push_back(out.str());
    const std::vector<LocationId>& route = registry.PatrolRouteOf(reader.id);
    if (!route.empty()) {
      std::ostringstream patrol;
      patrol << "patrol " << name << " " << registry.PatrolDwellOf(reader.id);
      for (LocationId stop : route) {
        patrol << " " << registry.LocationName(stop);
      }
      lines.push_back(patrol.str());
    }
  }
  return lines;
}

}  // namespace spire
