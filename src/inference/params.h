// Tunable parameters of the probabilistic inference (Section IV).
#pragma once

namespace spire {

/// Knobs of edge and node inference. Defaults are the paper's recommended
/// operating point (Section VI-B): S=32, alpha=0, beta=0.4, gamma=0.4,
/// theta=1.25, prune threshold 0.25, partial-inference radius l=1.
struct InferenceParams {
  /// Zipf exponent weighting the co-location history (Eq. 1): 0 weighs all
  /// recent instances equally; >0 favors the most recent ones.
  double alpha = 0.0;

  /// Partition of belief between recent co-location history (beta) and the
  /// last special-reader confirmation (1 - beta) in Eq. 2.
  double beta = 0.4;

  /// When true, beta is set per node to the fraction of conflicting
  /// observations since the last confirmation (the adaptive heuristic of
  /// Expt 1); `beta` is ignored for nodes with a confirmation.
  bool adaptive_beta = false;

  /// Weight of colors propagated through containment edges against the
  /// node's own fading color (Eq. 3). The paper favors 0.15-0.45 and
  /// defaults to 0.4; our belt confirmations are more reliable than the
  /// paper's testbed (several interrogations per belt pass), so our Expt-2
  /// sweep puts the optimum at the top of that band.
  double gamma = 0.45;

  /// Fading exponent of the most recent color, (now - seen_at)^-theta
  /// (Eqs. 3-4). Higher values decay belief in continued presence faster.
  double theta = 1.25;

  /// When true, the fading age (now - seen_at) is measured in *missed
  /// reading opportunities* — epochs divided by the period of the reader at
  /// the object's last location — instead of raw epochs. A slow shelf
  /// reader then needs several silent periods before "unknown" wins, which
  /// matches the paper's reported accuracy at moderate read rates and its
  /// anomaly-detection delays across reader frequencies. Requires a reader
  /// registry; falls back to raw epochs without one.
  bool normalize_age_by_reader_period = true;

  /// Edges whose unnormalized confidence (Eq. 2 numerator) falls below this
  /// threshold are pruned after edge inference; <= 0 disables pruning.
  double prune_threshold = 0.25;

  /// Partial inference is restricted to nodes at most this many hops from a
  /// colored node (Section IV-D).
  int partial_hops = 1;

  /// Delta-driven complete passes (DESIGN.md §10): recompute only the
  /// connected components containing dirty or fade-due nodes and serve the
  /// rest from the estimate cache. Off = recompute the whole graph every
  /// complete pass. The emitted event stream is byte-identical either way
  /// (the incremental_equivalence oracle); only the explain channel's
  /// posterior values may be served stale.
  bool incremental = true;

  /// Every Nth complete pass is forced to a full recompute, re-priming the
  /// cache and the fade wheel (a bounded-staleness safety net; it does not
  /// change the output). <= 0 disables forced resyncs.
  int full_resync_passes = 64;
};

}  // namespace spire
