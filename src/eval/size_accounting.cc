#include "eval/size_accounting.h"

namespace spire {

std::size_t CountLocationMessages(const EventStream& stream) {
  std::size_t n = 0;
  for (const Event& event : stream) {
    if (!IsContainmentEvent(event.type)) ++n;
  }
  return n;
}

std::size_t CountContainmentMessages(const EventStream& stream) {
  std::size_t n = 0;
  for (const Event& event : stream) {
    if (IsContainmentEvent(event.type)) ++n;
  }
  return n;
}

}  // namespace spire
