// Tests for the warehouse simulator, its configuration, the layout, and the
// ground-truth recorder.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/epc.h"
#include "compress/well_formed.h"
#include "sim/ground_truth.h"
#include "sim/layout.h"
#include "sim/sim_config.h"
#include "sim/simulator.h"

namespace spire {
namespace {

SimConfig SmallConfig() {
  SimConfig config;
  config.duration_epochs = 1200;
  config.pallet_interval = 200;
  config.min_cases_per_pallet = 2;
  config.max_cases_per_pallet = 3;
  config.items_per_case = 4;
  config.mean_shelf_stay = 300;
  config.shelf_period = 20;
  config.num_shelves = 3;
  return config;
}

// ------------------------------------------------------------- SimConfig --

TEST(SimConfigTest, DefaultsValidate) {
  EXPECT_TRUE(SimConfig().Validate().ok());
}

TEST(SimConfigTest, RejectsBadRanges) {
  SimConfig config;
  config.read_rate = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = SimConfig();
  config.min_cases_per_pallet = 5;
  config.max_cases_per_pallet = 3;
  EXPECT_FALSE(config.Validate().ok());
  config = SimConfig();
  config.duration_epochs = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SimConfig();
  config.shelf_period = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(SimConfigTest, FromConfigOverridesSelectedKeys) {
  Config overrides;
  overrides.Set("read_rate", "0.7");
  overrides.Set("shelf_period", "30");
  SimConfig base = SmallConfig();
  auto result = SimConfig::FromConfig(overrides, base);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().read_rate, 0.7);
  EXPECT_EQ(result.value().shelf_period, 30);
  EXPECT_EQ(result.value().duration_epochs, base.duration_epochs);
}

TEST(SimConfigTest, FromConfigRejectsMalformedValues) {
  Config overrides;
  overrides.Set("read_rate", "fast");
  EXPECT_FALSE(SimConfig::FromConfig(overrides).ok());
  Config invalid;
  invalid.Set("read_rate", "2.0");
  EXPECT_FALSE(SimConfig::FromConfig(invalid).ok());
}

// ---------------------------------------------------------------- Layout --

TEST(LayoutTest, BuildsSixReaderGroups) {
  auto layout = WarehouseLayout::Build(SmallConfig());
  ASSERT_TRUE(layout.ok());
  const WarehouseLayout& l = layout.value();
  EXPECT_EQ(l.registry.readers().size(), 3u + 5u);  // 3 shelves + 5 others.
  EXPECT_EQ(l.shelves.size(), 3u);
  EXPECT_EQ(l.registry.GetReader(l.entry_reader).value().type,
            ReaderType::kEntryDoor);
  EXPECT_EQ(l.registry.GetReader(l.exit_reader).value().type,
            ReaderType::kExitDoor);
  EXPECT_EQ(l.registry.GetReader(l.shelf_readers[0]).value().period_epochs,
            SmallConfig().shelf_period);
  // The schedule's complete-inference cadence follows the shelf period.
  EXPECT_EQ(l.registry.PeriodLcm(), SmallConfig().shelf_period);
}

// ------------------------------------------------------------- Simulator --

TEST(SimulatorTest, DeterministicForSeed) {
  auto a = WarehouseSimulator::Create(SmallConfig());
  auto b = WarehouseSimulator::Create(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 600; ++i) {
    EpochReadings ra = a.value()->Step();
    EpochReadings rb = b.value()->Step();
    ASSERT_EQ(ra, rb) << "diverged at epoch " << i;
  }
}

TEST(SimulatorTest, DifferentSeedsDiffer) {
  SimConfig config = SmallConfig();
  auto a = WarehouseSimulator::Create(config);
  config.seed = 43;
  auto b = WarehouseSimulator::Create(config);
  bool any_difference = false;
  for (int i = 0; i < 600 && !any_difference; ++i) {
    any_difference = a.value()->Step() != b.value()->Step();
  }
  EXPECT_TRUE(any_difference);
}

TEST(SimulatorTest, ObjectsFlowThroughAllStages) {
  auto sim = WarehouseSimulator::Create(SmallConfig());
  auto& s = *sim.value();
  std::set<LocationId> seen_locations;
  while (!s.Done()) {
    for (const RfidReading& r : s.Step()) {
      seen_locations.insert(s.registry().LocationOf(r.reader));
    }
  }
  const WarehouseLayout& l = s.layout();
  EXPECT_TRUE(seen_locations.contains(l.entry_door));
  EXPECT_TRUE(seen_locations.contains(l.receiving_belt));
  EXPECT_TRUE(seen_locations.contains(l.packaging));
  EXPECT_TRUE(seen_locations.contains(l.outgoing_belt));
  EXPECT_TRUE(seen_locations.contains(l.exit_door));
  bool any_shelf = false;
  for (LocationId shelf : l.shelves) any_shelf |= seen_locations.contains(shelf);
  EXPECT_TRUE(any_shelf);
}

TEST(SimulatorTest, ReceivingBeltScansOneCaseAtATime) {
  // The belt is a special reader: at any epoch its location holds at most
  // one case (plus that case's items).
  auto sim = WarehouseSimulator::Create(SmallConfig());
  auto& s = *sim.value();
  while (!s.Done()) {
    s.Step();
    int cases_on_belt = 0;
    for (ObjectId id : s.world().ObjectsAt(s.layout().receiving_belt)) {
      if (EpcLevel(id) == PackagingLevel::kCase) ++cases_on_belt;
    }
    ASSERT_LE(cases_on_belt, 1) << "epoch " << s.current_epoch();
  }
}

TEST(SimulatorTest, OutgoingBeltScansOnePalletAtATime) {
  auto sim = WarehouseSimulator::Create(SmallConfig());
  auto& s = *sim.value();
  while (!s.Done()) {
    s.Step();
    int pallets_on_belt = 0;
    for (ObjectId id : s.world().ObjectsAt(s.layout().outgoing_belt)) {
      if (EpcLevel(id) == PackagingLevel::kPallet) ++pallets_on_belt;
    }
    ASSERT_LE(pallets_on_belt, 1) << "epoch " << s.current_epoch();
  }
}

TEST(SimulatorTest, ItemsStayWithTheirCases) {
  auto sim = WarehouseSimulator::Create(SmallConfig());
  auto& s = *sim.value();
  while (!s.Done()) {
    s.Step();
    if (s.current_epoch() % 50 != 0) continue;
    for (const auto& [id, state] : s.world().objects()) {
      if (state.level != PackagingLevel::kItem || state.stolen) continue;
      if (state.parent == kNoObject) continue;
      ASSERT_EQ(state.location, s.world().LocationOf(state.parent))
          << "item strayed from its case at epoch " << s.current_epoch();
    }
  }
}

TEST(SimulatorTest, PerfectReadRateReadsEveryPresentObject) {
  SimConfig config = SmallConfig();
  config.read_rate = 1.0;
  config.duration_epochs = 400;
  auto sim = WarehouseSimulator::Create(config);
  auto& s = *sim.value();
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    std::set<ObjectId> read_tags;
    for (const RfidReading& r : readings) read_tags.insert(r.tag);
    for (const ReaderInfo& reader : s.registry().readers()) {
      if (s.current_epoch() % reader.period_epochs != 0) continue;
      for (ObjectId id : s.world().ObjectsAt(reader.location)) {
        ASSERT_TRUE(read_tags.contains(id))
            << "present object missed at read rate 1.0";
      }
    }
  }
}

TEST(SimulatorTest, ZeroReadRateProducesNoReadings) {
  SimConfig config = SmallConfig();
  config.read_rate = 0.0;
  config.duration_epochs = 300;
  auto sim = WarehouseSimulator::Create(config);
  auto& s = *sim.value();
  std::size_t total = 0;
  while (!s.Done()) total += s.Step().size();
  EXPECT_EQ(total, 0u);
  EXPECT_EQ(s.total_readings(), 0u);
}

TEST(SimulatorTest, ObjectsEventuallyExit) {
  SimConfig config = SmallConfig();
  config.duration_epochs = 1200;
  config.pallet_interval = 1000;  // One pallet only.
  config.mean_shelf_stay = 100;
  auto sim = WarehouseSimulator::Create(config);
  auto& s = *sim.value();
  std::size_t peak = 0;
  while (!s.Done()) {
    s.Step();
    peak = std::max(peak, s.objects_alive());
  }
  EXPECT_GT(peak, 0u);
  // The single pallet's group re-exited (a new inbound pallet at 1000 may
  // be in flight, so alive < peak rather than zero).
  EXPECT_LT(s.objects_alive(), peak);
}

TEST(SimulatorTest, TheftsAreRecordedAndHideObjects) {
  SimConfig config = SmallConfig();
  config.theft_interval = 100;
  auto sim = WarehouseSimulator::Create(config);
  auto& s = *sim.value();
  while (!s.Done()) s.Step();
  ASSERT_FALSE(s.thefts().empty());
  for (const Theft& theft : s.thefts()) {
    const ObjectState* state = s.world().Find(theft.object);
    if (state != nullptr) {
      EXPECT_TRUE(state->stolen);
      EXPECT_EQ(state->location, kUnknownLocation);
    }
  }
}

TEST(SimulatorTest, StolenObjectsAreNeverReadAgain) {
  SimConfig config = SmallConfig();
  config.theft_interval = 100;
  auto sim = WarehouseSimulator::Create(config);
  auto& s = *sim.value();
  std::map<ObjectId, Epoch> stolen_at;
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    for (const Theft& theft : s.thefts()) {
      stolen_at.emplace(theft.object, theft.epoch);
    }
    for (const RfidReading& r : readings) {
      auto it = stolen_at.find(r.tag);
      if (it != stolen_at.end()) {
        ASSERT_GT(it->second, s.current_epoch())
            << "stolen object read after the theft";
      }
    }
  }
}

TEST(SimulatorTest, TruthStreamWellFormed) {
  SimConfig config = SmallConfig();
  config.theft_interval = 150;
  auto sim = WarehouseSimulator::Create(config);
  auto& s = *sim.value();
  while (!s.Done()) s.Step();
  s.FinishTruth();
  EXPECT_TRUE(ValidateWellFormed(s.truth_events()).ok());
  EXPECT_FALSE(s.truth_events().empty());
}

TEST(SimulatorTest, TruthHasMissingOnlyForThefts) {
  // Transits between stages must not appear as Missing in the truth.
  auto clean = WarehouseSimulator::Create(SmallConfig());
  while (!clean.value()->Done()) clean.value()->Step();
  clean.value()->FinishTruth();
  for (const Event& e : clean.value()->truth_events()) {
    EXPECT_NE(e.type, EventType::kMissing);
  }

  SimConfig config = SmallConfig();
  config.theft_interval = 150;
  auto with_theft = WarehouseSimulator::Create(config);
  while (!with_theft.value()->Done()) with_theft.value()->Step();
  with_theft.value()->FinishTruth();
  int missing = 0;
  for (const Event& e : with_theft.value()->truth_events()) {
    if (e.type == EventType::kMissing) ++missing;
  }
  EXPECT_GT(missing, 0);
}

TEST(SimulatorTest, TouchedRecordingMatchesFullDiff) {
  // The incremental (touched-id) ground-truth recorder must produce the
  // same stream as the O(world) full-diff reference.
  SimConfig config = SmallConfig();
  config.duration_epochs = 800;
  config.theft_interval = 120;
  auto sim = WarehouseSimulator::Create(config);
  auto& s = *sim.value();
  GroundTruthRecorder reference;
  while (!s.Done()) {
    s.Step();
    reference.Observe(s.world(), s.current_epoch());
  }
  Epoch end = s.current_epoch() + 1;
  s.FinishTruth();
  reference.Finish(end);
  EXPECT_EQ(s.truth_events(), reference.events());
}

TEST(SimulatorTest, RawReadingCountMatchesEmissions) {
  auto sim = WarehouseSimulator::Create(SmallConfig());
  auto& s = *sim.value();
  std::size_t counted = 0;
  while (!s.Done()) counted += s.Step().size();
  EXPECT_EQ(counted, s.total_readings());
}

TEST(SimulatorTest, NonShelfTicksMultiplyReadings) {
  SimConfig one = SmallConfig();
  one.nonshelf_ticks_per_epoch = 1;
  one.read_rate = 1.0;
  one.duration_epochs = 300;
  SimConfig two = one;
  two.nonshelf_ticks_per_epoch = 2;
  auto sim1 = WarehouseSimulator::Create(one);
  auto sim2 = WarehouseSimulator::Create(two);
  while (!sim1.value()->Done()) sim1.value()->Step();
  while (!sim2.value()->Done()) sim2.value()->Step();
  EXPECT_GT(sim2.value()->total_readings(),
            sim1.value()->total_readings() * 3 / 2);
}

}  // namespace
}  // namespace spire
