// Folding a message stream into ranged events.
#pragma once

#include <vector>

#include "compress/event.h"

namespace spire {

/// A Start/End pair folded into one interval (or a Missing point event).
struct RangedEvent {
  /// kStartLocation, kStartContainment, or kMissing.
  EventType type = EventType::kStartLocation;
  ObjectId object = kNoObject;
  LocationId location = kUnknownLocation;
  ObjectId container = kNoObject;
  Epoch start = kNeverEpoch;
  Epoch end = kInfiniteEpoch;

  bool operator==(const RangedEvent&) const = default;
};

/// Folds a well-formed message stream into ranged events, ordered by
/// (object, start). Unclosed trailing events keep end = infinity.
std::vector<RangedEvent> FoldEvents(const EventStream& stream);

}  // namespace spire
