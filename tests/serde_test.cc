// Tests for binary serialization: event records (compress/serde), trace
// files (stream/trace_io), and deployment text (stream/deployment).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/epc.h"
#include "common/wire.h"
#include "compress/serde.h"
#include "stream/deployment.h"
#include "stream/trace_io.h"

namespace spire {
namespace {

ObjectId Obj(PackagingLevel level, std::uint32_t serial) {
  EpcFields fields;
  fields.level = level;
  fields.serial = serial;
  return EncodeEpcUnchecked(fields);
}

const ObjectId kItem = Obj(PackagingLevel::kItem, 1);
const ObjectId kCase = Obj(PackagingLevel::kCase, 2);

// ------------------------------------------------------------ Event serde --

TEST(EventSerdeTest, RecordSizeMatchesWireConstant) {
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(
      EventEncoder::Encode(Event::StartLocation(kItem, 4, 10), &bytes).ok());
  EXPECT_EQ(bytes.size(), kEventWireBytes);
}

TEST(EventSerdeTest, StreamRoundTrips) {
  EventStream stream{
      Event::StartContainment(kItem, kCase, 5),
      Event::StartLocation(kItem, 4, 10),
      Event::EndLocation(kItem, 4, 10, 20),
      Event::StartLocation(kItem, 7, 25),
      Event::Missing(kCase, 3, 30),
      Event::EndContainment(kItem, kCase, 5, 40),
      Event::EndLocation(kItem, 7, 25, 41),
  };
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(EventEncoder::EncodeStream(stream, &bytes).ok());
  EXPECT_EQ(bytes.size(), stream.size() * kEventWireBytes);
  EventDecoder decoder;
  auto decoded = decoder.DecodeStream(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), stream);
}

TEST(EventSerdeTest, EndRecoversStartFromOpenEvent) {
  // The wire carries only V_e for End messages (Section V-A); the decoder
  // reconstructs V_s from the open event it closes.
  EventStream stream{
      Event::StartLocation(kItem, 4, 123),
      Event::EndLocation(kItem, 4, 123, 456),
  };
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(EventEncoder::EncodeStream(stream, &bytes).ok());
  EventDecoder decoder;
  auto decoded = decoder.DecodeStream(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value()[1].start, 123);
  EXPECT_EQ(decoded.value()[1].end, 456);
}

TEST(EventSerdeTest, EndWithoutOpenRejected) {
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(
      EventEncoder::Encode(Event::EndLocation(kItem, 4, 1, 2), &bytes).ok());
  EventDecoder decoder;
  EXPECT_FALSE(decoder.DecodeStream(bytes).ok());
}

TEST(EventSerdeTest, RejectsCorruption) {
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(
      EventEncoder::Encode(Event::StartLocation(kItem, 4, 10), &bytes).ok());
  // Truncated record.
  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 1);
  EventDecoder decoder;
  EXPECT_FALSE(decoder.DecodeStream(truncated).ok());
  // Unknown type byte.
  std::vector<std::uint8_t> bad_type = bytes;
  bad_type[0] = 99;
  EXPECT_FALSE(EventDecoder().DecodeStream(bad_type).ok());
  // Nonzero EPC header bytes.
  std::vector<std::uint8_t> bad_header = bytes;
  bad_header[2] = 1;
  EXPECT_FALSE(EventDecoder().DecodeStream(bad_header).ok());
  // Container flag inconsistent with the type.
  std::vector<std::uint8_t> bad_flag = bytes;
  bad_flag[25] |= 0x01;
  EXPECT_FALSE(EventDecoder().DecodeStream(bad_flag).ok());
}

TEST(EventSerdeTest, RejectsUnrepresentableTimestamps) {
  std::vector<std::uint8_t> bytes;
  Event event = Event::StartLocation(kItem, 4, Epoch{1} << 40);
  EXPECT_FALSE(EventEncoder::Encode(event, &bytes).ok());
  event = Event::StartLocation(kItem, 4, -5);
  EXPECT_FALSE(EventEncoder::Encode(event, &bytes).ok());
}

TEST(EventSerdeTest, EventFileRoundTrip) {
  EventStream stream{
      Event::StartLocation(kItem, 4, 10),
      Event::StartContainment(kItem, kCase, 12),
      Event::EndLocation(kItem, 4, 10, 20),
      Event::Missing(kItem, 4, 20),
  };
  std::string path = ::testing::TempDir() + "/serde_roundtrip.spev";
  ASSERT_TRUE(WriteEventFile(path, stream).ok());
  auto loaded = ReadEventFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), stream);
}

TEST(EventSerdeTest, EventFileRejectsGarbage) {
  EXPECT_FALSE(ReadEventFile("/nonexistent/nowhere.spev").ok());
  std::string path = ::testing::TempDir() + "/serde_garbage.spev";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not an event file at all";
  }
  EXPECT_FALSE(ReadEventFile(path).ok());
}

std::vector<std::uint8_t> FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(EventSerdeTest, EventFileSurvivesByteFlipsAtEveryOffset) {
  const EventStream stream{
      Event::StartLocation(kItem, 4, 10),
      Event::StartContainment(kItem, kCase, 12),
      Event::EndContainment(kItem, kCase, 12, 18),
      Event::EndLocation(kItem, 4, 10, 20),
      Event::Missing(kItem, 4, 20),
  };
  const std::string path = ::testing::TempDir() + "/serde_flip.spev";
  ASSERT_TRUE(WriteEventFile(path, stream).ok());
  const std::vector<std::uint8_t> pristine = FileBytes(path);
  ASSERT_GT(pristine.size(), kMagicBytes + 10u);

  for (std::size_t offset = 0; offset < pristine.size(); ++offset) {
    std::vector<std::uint8_t> flipped = pristine;
    flipped[offset] ^= 0xff;
    WriteBytes(path, flipped);
    auto loaded = ReadEventFile(path);
    if (loaded.ok()) {
      // A flip may yield a different but decodable stream — it must still
      // carry the full record count, never silently drop records.
      EXPECT_EQ(loaded.value().size(), stream.size()) << "offset " << offset;
    } else {
      EXPECT_FALSE(loaded.status().message().empty()) << "offset " << offset;
    }
  }
}

TEST(EventSerdeTest, EventFileRejectsTruncationAtEveryLength) {
  const EventStream stream{
      Event::StartLocation(kItem, 4, 10),
      Event::EndLocation(kItem, 4, 10, 20),
      Event::Missing(kItem, 4, 20),
  };
  const std::string path = ::testing::TempDir() + "/serde_truncate.spev";
  ASSERT_TRUE(WriteEventFile(path, stream).ok());
  const std::vector<std::uint8_t> pristine = FileBytes(path);

  // The version-2 record count makes every proper prefix detectable, even
  // ones cut exactly at a record boundary.
  for (std::size_t length = 0; length < pristine.size(); ++length) {
    WriteBytes(path, std::vector<std::uint8_t>(pristine.begin(),
                                               pristine.begin() + length));
    auto loaded = ReadEventFile(path);
    EXPECT_FALSE(loaded.ok()) << "length " << length;
  }
}

TEST(EventSerdeTest, ReadsLegacyVersionOneFiles) {
  const EventStream stream{
      Event::StartLocation(kItem, 4, 10),
      Event::EndLocation(kItem, 4, 10, 20),
  };
  const std::string path = ::testing::TempDir() + "/serde_v1.spev";
  ASSERT_TRUE(WriteEventFile(path, stream).ok());
  // Rewrite as a version-1 file: same records, no count field.
  std::vector<std::uint8_t> v2 = FileBytes(path);
  std::vector<std::uint8_t> v1(v2.begin(), v2.begin() + kMagicBytes);
  v1.push_back(static_cast<std::uint8_t>(kEventFileLegacyVersion >> 8));
  v1.push_back(static_cast<std::uint8_t>(kEventFileLegacyVersion & 0xff));
  v1.insert(v1.end(), v2.begin() + kMagicBytes + 2 + 8, v2.end());
  WriteBytes(path, v1);

  auto loaded = ReadEventFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), stream);
}

// -------------------------------------------------------------- Trace I/O --

RfidReading MakeReading(ObjectId tag, ReaderId reader, Epoch epoch,
                        std::uint16_t tick) {
  RfidReading r;
  r.tag = tag;
  r.reader = reader;
  r.epoch = epoch;
  r.tick = tick;
  return r;
}

TEST(TraceIoTest, RoundTripsEpochBlocks) {
  std::stringstream buffer;
  TraceWriter writer(&buffer);
  ASSERT_TRUE(writer.WriteHeader().ok());
  EpochReadings first{MakeReading(kItem, 0, 5, 0),
                      MakeReading(kCase, 1, 5, 1)};
  EpochReadings second{MakeReading(kItem, 2, 9, 0)};
  ASSERT_TRUE(writer.WriteEpoch(5, first).ok());
  ASSERT_TRUE(writer.WriteEpoch(7, {}).ok());  // Empty: skipped.
  ASSERT_TRUE(writer.WriteEpoch(9, second).ok());

  TraceReader reader(&buffer);
  ASSERT_TRUE(reader.ReadHeader().ok());
  Epoch epoch = 0;
  EpochReadings readings;
  auto more = reader.NextEpoch(&epoch, &readings);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(more.value());
  EXPECT_EQ(epoch, 5);
  EXPECT_EQ(readings, first);
  more = reader.NextEpoch(&epoch, &readings);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(more.value());
  EXPECT_EQ(epoch, 9);
  EXPECT_EQ(readings, second);
  more = reader.NextEpoch(&epoch, &readings);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(more.value());  // Clean EOF.
}

TEST(TraceIoTest, RejectsNonMonotonicEpochs) {
  std::stringstream buffer;
  TraceWriter writer(&buffer);
  ASSERT_TRUE(writer.WriteHeader().ok());
  ASSERT_TRUE(writer.WriteEpoch(5, {MakeReading(kItem, 0, 5, 0)}).ok());
  EXPECT_FALSE(writer.WriteEpoch(5, {MakeReading(kItem, 0, 5, 0)}).ok());
  EXPECT_FALSE(writer.WriteEpoch(4, {MakeReading(kItem, 0, 4, 0)}).ok());
}

TEST(TraceIoTest, RejectsMismatchedReadingEpoch) {
  std::stringstream buffer;
  TraceWriter writer(&buffer);
  ASSERT_TRUE(writer.WriteHeader().ok());
  EXPECT_FALSE(writer.WriteEpoch(5, {MakeReading(kItem, 0, 6, 0)}).ok());
}

TEST(TraceIoTest, RejectsBadMagicAndTruncation) {
  std::stringstream bad("not a trace");
  TraceReader reader(&bad);
  EXPECT_FALSE(reader.ReadHeader().ok());

  std::stringstream buffer;
  TraceWriter writer(&buffer);
  ASSERT_TRUE(writer.WriteHeader().ok());
  ASSERT_TRUE(writer.WriteEpoch(5, {MakeReading(kItem, 0, 5, 0)}).ok());
  std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() - 3));
  TraceReader truncated_reader(&truncated);
  ASSERT_TRUE(truncated_reader.ReadHeader().ok());
  Epoch epoch;
  EpochReadings readings;
  EXPECT_FALSE(truncated_reader.NextEpoch(&epoch, &readings).ok());
}

// ------------------------------------------------------------- Deployment --

TEST(DeploymentTest, RoundTripsRegistry) {
  ReaderRegistry registry;
  LocationId dock = registry.AddLocation("dock");
  LocationId shelf = registry.AddLocation("shelf_0");
  ReaderInfo a;
  a.id = 0;
  a.location = dock;
  a.type = ReaderType::kEntryDoor;
  a.period_epochs = 1;
  a.name = "door";
  ReaderInfo b;
  b.id = 1;
  b.location = shelf;
  b.type = ReaderType::kShelf;
  b.period_epochs = 60;
  b.name = "shelf0";
  ASSERT_TRUE(registry.AddReader(a).ok());
  ASSERT_TRUE(registry.AddReader(b).ok());

  auto parsed = ParseDeployment(SerializeDeployment(registry));
  ASSERT_TRUE(parsed.ok());
  const ReaderRegistry& round = parsed.value();
  ASSERT_EQ(round.readers().size(), 2u);
  EXPECT_EQ(round.readers()[0].type, ReaderType::kEntryDoor);
  EXPECT_EQ(round.readers()[1].period_epochs, 60);
  EXPECT_EQ(round.LocationName(round.readers()[1].location), "shelf_0");
  EXPECT_EQ(round.PeriodLcm(), registry.PeriodLcm());
}

TEST(DeploymentTest, SkipsCommentsAndBlanks) {
  auto parsed = ParseDeployment(
      {"# header", "", "reader r0 dock packaging 1"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().readers().size(), 1u);
}

TEST(DeploymentTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseDeployment({"reader r0 dock packaging"}).ok());
  EXPECT_FALSE(ParseDeployment({"reader r0 dock flying_drone 1"}).ok());
  EXPECT_FALSE(ParseDeployment({"antenna r0 dock shelf 1"}).ok());
  EXPECT_FALSE(ParseDeployment({"reader r0 dock shelf 0"}).ok());  // Period.
}

TEST(DeploymentTest, SharedLocationRegisteredOnce) {
  auto parsed = ParseDeployment({
      "reader r0 dock packaging 1",
      "reader r1 dock packaging 2",
  });
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().num_locations(), 1u);
  EXPECT_EQ(parsed.value().readers()[0].location,
            parsed.value().readers()[1].location);
}

}  // namespace
}  // namespace spire
