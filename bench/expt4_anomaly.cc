// Expt 4 (Fig. 9(e) and 9(f)): accuracy and delay of anomaly detection.
// Objects are removed unexpectedly (one theft every 100 s in the paper);
// the sweep varies theta and reports the location-inference error rate and
// the delay until the first Missing event for each stolen object, for two
// shelf-reader frequencies.
//
// The detector itself is the library `theft` pattern (src/cep): a Missing
// onset IS a theft alarm. The final section re-runs one representative
// configuration, flags thefts both with the hard-wired first-Missing-event
// scan (EvaluateDetectionDelay's rule) and with the compiled pattern over
// the compressed output, and aborts if they disagree on any (object, epoch)
// pair or on the aggregate delay statistics.
//
//   ./expt4_anomaly [full=true] [key=value ...]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "cep/compressed_log.h"
#include "cep/library.h"
#include "cep/nfa.h"
#include "eval/table.h"

using namespace spire;
using namespace spire::bench;

namespace {

/// First flagged epoch per theft under EvaluateDetectionDelay's rule: the
/// earliest epoch in `alarms[object]` at or after the theft, within the
/// horizon. `alarms` values must be sorted ascending.
std::set<std::pair<ObjectId, Epoch>> FlaggedPairs(
    const std::vector<Theft>& thefts,
    const std::map<ObjectId, std::vector<Epoch>>& alarms, Epoch horizon) {
  std::set<std::pair<ObjectId, Epoch>> flagged;
  for (const Theft& theft : thefts) {
    auto it = alarms.find(theft.object);
    if (it == alarms.end()) continue;
    auto first = std::lower_bound(it->second.begin(), it->second.end(),
                                  theft.epoch);
    if (first == it->second.end() || *first - theft.epoch > horizon) continue;
    flagged.emplace(theft.object, *first);
  }
  return flagged;
}

/// Cross-checks the hard-wired Missing-event detector against the compiled
/// `theft` pattern on one captured run; exits nonzero on any divergence.
void CheckTheftPatternAgreement(const EventStream& output,
                                const std::vector<Theft>& thefts,
                                const DelayStats& reference) {
  constexpr Epoch kHorizon = 3600;
  std::map<ObjectId, std::vector<Epoch>> event_alarms;
  for (const Event& event : output) {
    if (event.type == EventType::kMissing) {
      event_alarms[event.object].push_back(event.start);
    }
  }
  for (auto& [object, epochs] : event_alarms) {
    std::sort(epochs.begin(), epochs.end());
  }

  auto pattern = cep::LibraryPattern("theft");
  auto compiled = pattern.ok()
                      ? cep::Compile(pattern.value(), nullptr)
                      : pattern.status();
  auto log = cep::CompressedLog::Build(output);
  if (!compiled.ok() || !log.ok()) {
    std::fprintf(stderr, "theft pattern setup failed: %s\n",
                 (!compiled.ok() ? compiled.status() : log.status())
                     .ToString()
                     .c_str());
    std::exit(1);
  }
  std::map<ObjectId, std::vector<Epoch>> pattern_alarms;
  for (const cep::Match& match :
       cep::EvaluateCompressed(compiled.value(), &log.value(),
                               cep::BoundsOf(output))) {
    pattern_alarms[match.binding.front()].push_back(match.completion);
  }

  const auto by_events = FlaggedPairs(thefts, event_alarms, kHorizon);
  const auto by_pattern = FlaggedPairs(thefts, pattern_alarms, kHorizon);
  if (by_events != by_pattern) {
    std::fprintf(stderr,
                 "theft detector divergence: %zu event-flagged vs %zu "
                 "pattern-flagged (object, epoch) pairs\n",
                 by_events.size(), by_pattern.size());
    std::exit(1);
  }

  // The aggregate statistics must be reproducible from the pattern's
  // alarms alone, per theft (two thefts may share a flagged pair).
  std::vector<Epoch> delays;
  for (const Theft& theft : thefts) {
    auto it = pattern_alarms.find(theft.object);
    if (it == pattern_alarms.end()) continue;
    auto first = std::lower_bound(it->second.begin(), it->second.end(),
                                  theft.epoch);
    if (first == it->second.end() || *first - theft.epoch > kHorizon) continue;
    delays.push_back(*first - theft.epoch);
  }
  std::sort(delays.begin(), delays.end());
  DelayStats from_pattern;
  from_pattern.thefts = thefts.size();
  from_pattern.detected = delays.size();
  if (!delays.empty()) {
    double sum = 0.0;
    for (Epoch d : delays) sum += static_cast<double>(d);
    from_pattern.mean_delay = sum / static_cast<double>(delays.size());
    from_pattern.median_delay = static_cast<double>(delays[delays.size() / 2]);
    from_pattern.max_delay = delays.back();
  }
  if (from_pattern.thefts != reference.thefts ||
      from_pattern.detected != reference.detected ||
      from_pattern.mean_delay != reference.mean_delay ||
      from_pattern.median_delay != reference.median_delay ||
      from_pattern.max_delay != reference.max_delay) {
    std::fprintf(stderr,
                 "theft delay stats divergence: pattern %zu/%zu mean %.3f "
                 "max %lld vs reference %zu/%zu mean %.3f max %lld\n",
                 from_pattern.detected, from_pattern.thefts,
                 from_pattern.mean_delay,
                 static_cast<long long>(from_pattern.max_delay),
                 reference.detected, reference.thefts, reference.mean_delay,
                 static_cast<long long>(reference.max_delay));
    std::exit(1);
  }
  std::printf("\ntheft pattern agreement: %zu thefts, %zu flagged, "
              "identical (object, epoch) pairs and delay stats\n",
              thefts.size(), by_pattern.size());
}

}  // namespace

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  bool full = args.GetBool("full", false).value_or(false);
  SimConfig base = SweepConfig(full);
  base.theft_interval = 100;
  auto overridden = SimConfig::FromConfig(args, base);
  if (overridden.ok()) base = overridden.value();

  PrintHeader("Expt 4: anomaly detection vs theta",
              "Fig. 9(e) error rate, Fig. 9(f) detection delay");

  const std::vector<Epoch> shelf_periods{1, 60};
  const std::vector<double> thetas{0.15, 0.35, 0.75, 1.0, 1.25,
                                   1.5,  2.0,  3.0,  4.0};

  TextTable table([&] {
    std::vector<std::string> header{"theta"};
    for (Epoch period : shelf_periods) {
      std::string label = "1/" + std::to_string(period) + "s";
      header.push_back("err " + label);
      header.push_back("delay " + label);
      header.push_back("detected " + label);
    }
    return header;
  }());

  for (double theta : thetas) {
    std::vector<std::string> row{TextTable::Num(theta, 2)};
    for (Epoch period : shelf_periods) {
      RunOptions options;
      options.sim = base;
      options.sim.shelf_period = period;
      options.pipeline.inference.theta = theta;
      RunMetrics metrics = RunSpireTrace(options);
      row.push_back(TextTable::Num(metrics.accuracy.LocationErrorRate(), 4));
      row.push_back(TextTable::Num(metrics.delay.mean_delay, 1));
      row.push_back(TextTable::Num(metrics.delay.DetectionRate(), 2));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n(delay in epochs = seconds; thefts every %lld s)\n",
              static_cast<long long>(base.theft_interval));

  // Cross-check the hard-wired detector against the `theft` CEP pattern on
  // one representative configuration.
  RunOptions options;
  options.sim = base;
  options.sim.shelf_period = 60;
  options.pipeline.inference.theta = 1.25;
  EventStream output;
  std::vector<Theft> thefts;
  options.capture_output = &output;
  options.capture_thefts = &thefts;
  RunMetrics metrics = RunSpireTrace(options);
  CheckTheftPatternAgreement(output, thefts, metrics.delay);
  return 0;
}
