#include "store/block.h"

#include <limits>

#include "store/varint.h"

namespace spire {

/// Archive-representability check; mirrors EventEncoder's validation but
/// without the flat format's 32-bit timestamp ceiling.
Status ValidateArchivable(const Event& event) {
  const Epoch primary = PrimaryEpoch(event);
  if (primary < 0) {
    return Status::InvalidArgument("negative event timestamp: " +
                                   event.ToString());
  }
  switch (event.type) {
    case EventType::kStartLocation:
    case EventType::kStartContainment:
      if (event.end != kInfiniteEpoch) {
        return Status::InvalidArgument("Start event with a closed interval: " +
                                       event.ToString());
      }
      break;
    case EventType::kEndLocation:
    case EventType::kEndContainment:
      if (event.start < 0 || event.end < event.start) {
        return Status::InvalidArgument(
            "End event without a reconstructed interval: " + event.ToString());
      }
      break;
    case EventType::kMissing:
      if (event.start != event.end) {
        return Status::InvalidArgument("Missing event is not a point: " +
                                       event.ToString());
      }
      break;
    default:
      return Status::InvalidArgument("unknown event type");
  }
  return Status::OK();
}

namespace {

/// Wraparound-safe delta append: the decoder adds the zigzag delta back
/// modulo 2^64, so id spaces near the top of the range (kNoObject) are fine.
void PutDelta(std::uint64_t value, std::uint64_t* prev,
              std::vector<std::uint8_t>* out) {
  PutVarint64(ZigzagEncode(static_cast<std::int64_t>(value - *prev)), out);
  *prev = value;
}

Result<std::uint64_t> GetDelta(const std::vector<std::uint8_t>& in,
                               std::size_t* offset, std::uint64_t* prev) {
  auto delta = GetVarint64(in, offset);
  if (!delta.ok()) return delta.status();
  *prev += static_cast<std::uint64_t>(ZigzagDecode(delta.value()));
  return *prev;
}

}  // namespace

Result<EncodedBlock> EncodeBlock(const EventStream& events, std::size_t first,
                                 std::size_t count) {
  if (first + count > events.size()) {
    return Status::InvalidArgument("block range exceeds the stream");
  }
  if (count == 0 ||
      count > std::numeric_limits<std::uint32_t>::max()) {
    return Status::InvalidArgument("block event count out of range");
  }
  EncodedBlock block;
  block.count = static_cast<std::uint32_t>(count);

  // Types column (plus validation and the epoch bounds).
  for (std::size_t i = 0; i < count; ++i) {
    const Event& event = events[first + i];
    SPIRE_RETURN_NOT_OK(ValidateArchivable(event));
    const Epoch primary = PrimaryEpoch(event);
    if (block.min_epoch == kNeverEpoch || primary < block.min_epoch) {
      block.min_epoch = primary;
    }
    if (block.max_epoch == kNeverEpoch || primary > block.max_epoch) {
      block.max_epoch = primary;
    }
    block.payload.push_back(static_cast<std::uint8_t>(event.type));
  }
  // Objects column.
  std::uint64_t prev_object = 0;
  for (std::size_t i = 0; i < count; ++i) {
    PutDelta(events[first + i].object, &prev_object, &block.payload);
  }
  // Targets column: independent delta chains per id space.
  std::uint64_t prev_container = 0;
  std::uint64_t prev_location = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const Event& event = events[first + i];
    if (IsContainmentEvent(event.type)) {
      PutDelta(event.container, &prev_container, &block.payload);
    } else {
      PutDelta(event.location, &prev_location, &block.payload);
    }
  }
  // Primary timestamps.
  std::uint64_t prev_epoch = 0;
  for (std::size_t i = 0; i < count; ++i) {
    PutDelta(static_cast<std::uint64_t>(PrimaryEpoch(events[first + i])),
             &prev_epoch, &block.payload);
  }
  // Durations of End* events (V_e - V_s >= 0 by validation).
  for (std::size_t i = 0; i < count; ++i) {
    const Event& event = events[first + i];
    if (event.type == EventType::kEndLocation ||
        event.type == EventType::kEndContainment) {
      PutVarint64(static_cast<std::uint64_t>(event.end - event.start),
                  &block.payload);
    }
  }
  return block;
}

Status DecodeBlock(const std::vector<std::uint8_t>& payload,
                   std::uint32_t count, EventStream* out) {
  if (payload.size() < count) {
    return Status::Corruption("block payload shorter than its type column");
  }
  std::size_t offset = 0;
  std::vector<EventType> types(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t byte = payload[offset++];
    if (byte > static_cast<std::uint8_t>(EventType::kMissing)) {
      return Status::Corruption("unknown event type byte in block");
    }
    types[i] = static_cast<EventType>(byte);
  }

  std::vector<std::uint64_t> objects(count);
  std::uint64_t prev_object = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    auto object = GetDelta(payload, &offset, &prev_object);
    if (!object.ok()) return object.status();
    objects[i] = object.value();
  }

  std::vector<std::uint64_t> targets(count);
  std::uint64_t prev_container = 0;
  std::uint64_t prev_location = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const bool containment = IsContainmentEvent(types[i]);
    auto target = GetDelta(payload, &offset,
                           containment ? &prev_container : &prev_location);
    if (!target.ok()) return target.status();
    if (!containment &&
        target.value() > std::numeric_limits<LocationId>::max()) {
      return Status::Corruption("location id out of range in block");
    }
    targets[i] = target.value();
  }

  std::vector<Epoch> primaries(count);
  std::uint64_t prev_epoch = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    auto primary = GetDelta(payload, &offset, &prev_epoch);
    if (!primary.ok()) return primary.status();
    primaries[i] = static_cast<Epoch>(primary.value());
    if (primaries[i] < 0) {
      return Status::Corruption("negative event timestamp in block");
    }
  }

  const std::size_t base = out->size();
  out->resize(base + count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Event& event = (*out)[base + i];
    event.type = types[i];
    event.object = objects[i];
    if (IsContainmentEvent(types[i])) {
      event.container = targets[i];
    } else {
      event.location = static_cast<LocationId>(targets[i]);
    }
    switch (types[i]) {
      case EventType::kStartLocation:
      case EventType::kStartContainment:
        event.start = primaries[i];
        event.end = kInfiniteEpoch;
        break;
      case EventType::kEndLocation:
      case EventType::kEndContainment: {
        auto duration = GetVarint64(payload, &offset);
        if (!duration.ok()) return duration.status();
        const std::uint64_t start =
            static_cast<std::uint64_t>(primaries[i]) - duration.value();
        event.end = primaries[i];
        event.start = static_cast<Epoch>(start);
        if (event.start < 0 || event.start > event.end) {
          return Status::Corruption("End event duration out of range in block");
        }
        break;
      }
      case EventType::kMissing:
        event.start = primaries[i];
        event.end = primaries[i];
        break;
    }
  }
  if (offset != payload.size()) {
    return Status::Corruption("trailing bytes after the block columns");
  }
  return Status::OK();
}

}  // namespace spire
