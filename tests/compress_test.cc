// Unit tests for src/compress: event model, level-1 and level-2 compressors,
// well-formedness validation, and the level-2 -> level-1 decompressor.
#include <gtest/gtest.h>

#include "common/epc.h"
#include "compress/compressor.h"
#include "compress/decompress.h"
#include "compress/event.h"
#include "compress/well_formed.h"

namespace spire {
namespace {

ObjectId Obj(PackagingLevel level, std::uint32_t serial) {
  EpcFields fields;
  fields.level = level;
  fields.serial = serial;
  return EncodeEpcUnchecked(fields);
}

const ObjectId kItem = Obj(PackagingLevel::kItem, 1);
const ObjectId kCase = Obj(PackagingLevel::kCase, 2);
const ObjectId kPallet = Obj(PackagingLevel::kPallet, 3);

ObjectStateEstimate At(ObjectId object, LocationId location,
                       ObjectId container = kNoObject) {
  ObjectStateEstimate state;
  state.object = object;
  state.location = location;
  state.container = container;
  return state;
}

ObjectStateEstimate Away(ObjectId object, bool missing = true) {
  ObjectStateEstimate state;
  state.object = object;
  state.location = kUnknownLocation;
  state.missing = missing;
  return state;
}

// ------------------------------------------------------------- Event model --

TEST(EventTest, ConstructorsFillFields) {
  Event start = Event::StartLocation(kItem, 4, 10);
  EXPECT_EQ(start.type, EventType::kStartLocation);
  EXPECT_EQ(start.end, kInfiniteEpoch);
  Event end = Event::EndLocation(kItem, 4, 10, 20);
  EXPECT_EQ(end.start, 10);
  EXPECT_EQ(end.end, 20);
  Event missing = Event::Missing(kItem, 4, 30);
  EXPECT_EQ(missing.start, missing.end);
  Event sc = Event::StartContainment(kItem, kCase, 5);
  EXPECT_EQ(sc.container, kCase);
  EXPECT_TRUE(IsContainmentEvent(sc.type));
  EXPECT_FALSE(IsContainmentEvent(missing.type));
}

TEST(EventTest, ToStringIsReadable) {
  EXPECT_EQ(Event::StartLocation(kItem, 4, 10).ToString(),
            "StartLocation(item:0.0.1, loc 4, [10, inf))");
  EXPECT_EQ(Event::EndContainment(kItem, kCase, 5, 9).ToString(),
            "EndContainment(item:0.0.1, in case:0.0.2, [5, 9))");
}

TEST(EventTest, WireBytes) {
  EventStream stream{Event::StartLocation(kItem, 4, 10),
                     Event::Missing(kItem, 4, 30)};
  EXPECT_EQ(WireBytes(stream), 2 * kEventWireBytes);
}

// ------------------------------------------------------ Level-1 compressor --

TEST(RangeCompressorTest, FirstReportOpensEvents) {
  RangeCompressor compressor;
  EventStream out;
  compressor.Report(At(kItem, 4, kCase), 10, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Event::StartContainment(kItem, kCase, 10));
  EXPECT_EQ(out[1], Event::StartLocation(kItem, 4, 10));
}

TEST(RangeCompressorTest, UnchangedStateIsSilent) {
  RangeCompressor compressor;
  EventStream out;
  compressor.Report(At(kItem, 4, kCase), 10, &out);
  std::size_t base = out.size();
  for (Epoch e = 11; e < 100; ++e) compressor.Report(At(kItem, 4, kCase), e, &out);
  EXPECT_EQ(out.size(), base);  // That is the compression.
}

TEST(RangeCompressorTest, LocationChangeEmitsEndThenStart) {
  RangeCompressor compressor;
  EventStream out;
  compressor.Report(At(kItem, 4), 10, &out);
  out.clear();
  compressor.Report(At(kItem, 7), 25, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Event::EndLocation(kItem, 4, 10, 25));
  EXPECT_EQ(out[1], Event::StartLocation(kItem, 7, 25));
}

TEST(RangeCompressorTest, MissingEmitsEndPlusSingleton) {
  RangeCompressor compressor;
  EventStream out;
  compressor.Report(At(kItem, 4), 10, &out);
  out.clear();
  compressor.Report(Away(kItem), 30, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Event::EndLocation(kItem, 4, 10, 30));
  EXPECT_EQ(out[1], Event::Missing(kItem, 4, 30));
  // Staying missing adds nothing.
  compressor.Report(Away(kItem), 31, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(RangeCompressorTest, TransitWithoutMissingFlagOnlyCloses) {
  RangeCompressor compressor;
  EventStream out;
  compressor.Report(At(kItem, 4), 10, &out);
  out.clear();
  compressor.Report(Away(kItem, /*missing=*/false), 30, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, EventType::kEndLocation);
}

TEST(RangeCompressorTest, ReappearanceAfterMissing) {
  RangeCompressor compressor;
  EventStream out;
  compressor.Report(At(kItem, 4), 10, &out);
  compressor.Report(Away(kItem), 30, &out);
  out.clear();
  compressor.Report(At(kItem, 4), 50, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Event::StartLocation(kItem, 4, 50));
}

TEST(RangeCompressorTest, ContainmentChangeEmitsEndThenStart) {
  RangeCompressor compressor;
  EventStream out;
  compressor.Report(At(kItem, 4, kCase), 10, &out);
  out.clear();
  compressor.Report(At(kItem, 4, kPallet), 40, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Event::EndContainment(kItem, kCase, 10, 40));
  EXPECT_EQ(out[1], Event::StartContainment(kItem, kPallet, 40));
}

TEST(RangeCompressorTest, ContainmentSpansLocationChanges) {
  // A start-end containment pair may span several location pairs
  // (Section V-A nesting).
  RangeCompressor compressor;
  EventStream out;
  compressor.Report(At(kItem, 4, kCase), 10, &out);
  compressor.Report(At(kItem, 5, kCase), 20, &out);
  compressor.Report(At(kItem, 6, kCase), 30, &out);
  compressor.Finish(40, &out);
  int containment_events = 0;
  for (const Event& e : out) {
    if (IsContainmentEvent(e.type)) ++containment_events;
  }
  EXPECT_EQ(containment_events, 2);  // One Start + one End only.
  EXPECT_TRUE(ValidateWellFormed(out).ok());
}

TEST(RangeCompressorTest, RetireClosesEverything) {
  RangeCompressor compressor;
  EventStream out;
  compressor.Report(At(kItem, 4, kCase), 10, &out);
  out.clear();
  compressor.Retire(kItem, 60, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Event::EndContainment(kItem, kCase, 10, 60));
  EXPECT_EQ(out[1], Event::EndLocation(kItem, 4, 10, 60));
  EXPECT_EQ(compressor.tracked_objects(), 0u);
  // Retiring an unknown object is a no-op.
  compressor.Retire(kItem, 61, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(RangeCompressorTest, FinishClosesAllTrackedObjects) {
  RangeCompressor compressor;
  EventStream out;
  compressor.Report(At(kItem, 4), 10, &out);
  compressor.Report(At(kCase, 5), 10, &out);
  compressor.Finish(99, &out);
  EXPECT_TRUE(ValidateWellFormed(out).ok());
  EXPECT_EQ(compressor.tracked_objects(), 0u);
}

TEST(RangeCompressorTest, EmitFlagsSuppressStreams) {
  CompressorOptions location_only;
  location_only.emit_containment = false;
  RangeCompressor compressor(location_only);
  EventStream out;
  compressor.Report(At(kItem, 4, kCase), 10, &out);
  compressor.Finish(20, &out);
  for (const Event& e : out) EXPECT_FALSE(IsContainmentEvent(e.type));
  EXPECT_FALSE(out.empty());
}

// ------------------------------------------------------ Level-2 compressor --

TEST(ContainmentCompressorTest, SuppressesContainedChildLocations) {
  ContainmentCompressor compressor;
  EventStream out;
  compressor.Report(At(kCase, 4, kPallet), 10, &out);
  compressor.Report(At(kPallet, 4), 10, &out);
  // The first sighting is explicit; the end-of-epoch handover closes it
  // (zero-length tail) and the stay carries on derived from the pallet's.
  compressor.CancelEpochChurn(10, &out, 0);
  std::size_t after_first = out.size();
  // Moving the group (container reported first, as the pipeline orders it):
  // the case's move is implied by the pallet's — no case events at all.
  compressor.Report(At(kPallet, 5), 20, &out);
  compressor.Report(At(kCase, 5, kPallet), 20, &out);
  compressor.CancelEpochChurn(20, &out, after_first);
  for (std::size_t i = after_first; i < out.size(); ++i) {
    EXPECT_NE(out[i].object, kCase) << out[i].ToString();
  }
  int case_location_events = 0;
  for (const Event& e : out) {
    if (!IsContainmentEvent(e.type) && e.object == kCase) {
      ++case_location_events;
    }
  }
  EXPECT_EQ(case_location_events, 2);  // The explicit Start + handover End.
}

TEST(ContainmentCompressorTest, PaperFigure8Sequence) {
  // Reproduces Fig. 8: P with C1, C2 at L1; group moves to L2; C2 splits at
  // T3; C2 then moves alone to L4. Reports arrive in pipeline order
  // (containment enders first, then containers before contents) and the
  // end-of-epoch churn pass runs after each epoch, exactly as the pipeline
  // drives the compressor.
  ObjectId p = kPallet, c1 = kCase, c2 = Obj(PackagingLevel::kCase, 9);
  ContainmentCompressor compressor;
  EventStream out;
  // T1: first sightings are always explicit; the end-of-epoch handover
  // closes both cases' stays (zero-length tails) and hands them to derived
  // tracking, restoring the paper's steady state.
  compressor.Report(At(p, 1), 1, &out);
  compressor.Report(At(c1, 1, p), 1, &out);
  compressor.Report(At(c2, 1, p), 1, &out);
  compressor.CancelEpochChurn(1, &out, 0);
  EXPECT_EQ(out.size(), 7u);
  std::size_t t1 = out.size();
  // T2: group moves to L2 — End + Start for P only.
  compressor.Report(At(p, 2), 2, &out);
  compressor.Report(At(c1, 2, p), 2, &out);
  compressor.Report(At(c2, 2, p), 2, &out);
  compressor.CancelEpochChurn(2, &out, t1);
  ASSERT_EQ(out.size(), t1 + 2);
  EXPECT_EQ(out[t1].object, p);
  EXPECT_EQ(out[t1 + 1].object, p);
  // T3: C2 stays at L2, P and C1 move to L3.
  std::size_t t2 = out.size();
  compressor.Report(At(c2, 2), 3, &out);  // No longer contained.
  compressor.Report(At(p, 3), 3, &out);
  compressor.Report(At(c1, 3, p), 3, &out);
  compressor.CancelEpochChurn(3, &out, t2);
  ASSERT_EQ(out.size(), t2 + 4);
  EXPECT_EQ(out[t2 + 0], Event::EndContainment(c2, p, 1, 3));
  EXPECT_EQ(out[t2 + 1], Event::StartLocation(c2, 2, 3));
  EXPECT_EQ(out[t2 + 2], Event::EndLocation(p, 2, 2, 3));
  EXPECT_EQ(out[t2 + 3], Event::StartLocation(p, 3, 3));
  // T4: C2 moves alone to L4.
  std::size_t t3 = out.size();
  compressor.Report(At(c2, 4), 4, &out);
  compressor.CancelEpochChurn(4, &out, t3);
  ASSERT_EQ(out.size(), t3 + 2);
  EXPECT_EQ(out[t3 + 0], Event::EndLocation(c2, 2, 3, 4));
  EXPECT_EQ(out[t3 + 1], Event::StartLocation(c2, 4, 4));
}

TEST(ContainmentCompressorTest, ContainmentStartClosesChildLocation) {
  ContainmentCompressor compressor;
  EventStream out;
  compressor.Report(At(kPallet, 4), 10, &out);  // Container located first.
  compressor.Report(At(kCase, 4), 10, &out);  // Uncontained: location opens.
  out.clear();
  // Entering a container whose chain root shows the same location closes the
  // explicit stay — the decompressor re-derives it from the pallet's.
  compressor.Report(At(kCase, 4, kPallet), 20, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Event::StartContainment(kCase, kPallet, 20));
  EXPECT_EQ(out[1], Event::EndLocation(kCase, 4, 10, 20));
}

TEST(ContainmentCompressorTest, MissingInsideContainment) {
  // Missing does not end containment (Section V-A).
  ContainmentCompressor compressor;
  EventStream out;
  compressor.Report(At(kCase, 4, kPallet), 10, &out);
  ASSERT_EQ(out.size(), 2u);  // StartContainment + explicit first sighting.
  ObjectStateEstimate away = Away(kCase);
  away.container = kPallet;
  compressor.Report(away, 30, &out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[2], Event::EndLocation(kCase, 4, 10, 30));
  EXPECT_EQ(out[3], Event::Missing(kCase, 4, 30));
  // The containment survives the disappearance.
  for (const Event& e : out) EXPECT_NE(e.type, EventType::kEndContainment);
  compressor.Finish(50, &out);
  EXPECT_TRUE(ValidateWellFormed(out).ok());
}

TEST(ContainmentCompressorTest, NeverLocatedObjectEmitsNoMissing) {
  // Regression: an object only ever known through a containment edge has no
  // location to be missing *from*; emitting Missing(unknown) produced an
  // event the decompressor could not anchor. The singleton is withheld
  // until a first sighting provides a location.
  ContainmentCompressor compressor;
  EventStream out;
  ObjectStateEstimate contained_only = At(kCase, kUnknownLocation, kPallet);
  compressor.Report(contained_only, 10, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Event::StartContainment(kCase, kPallet, 10));
  ObjectStateEstimate away = Away(kCase);
  away.container = kPallet;
  compressor.Report(away, 20, &out);
  for (const Event& e : out) EXPECT_NE(e.type, EventType::kMissing);
  // Once located and then lost, the Missing singleton appears as usual.
  compressor.Report(At(kCase, 4, kPallet), 30, &out);
  compressor.Report(Away(kCase), 40, &out);
  EXPECT_EQ(out.back(), Event::Missing(kCase, 4, 40));
}

// ----------------------------------------------------------- Well-formed ---

TEST(WellFormedTest, EmptyStreamOk) {
  EXPECT_TRUE(ValidateWellFormed({}).ok());
}

TEST(WellFormedTest, MatchedPairsOk) {
  EventStream stream{
      Event::StartLocation(kItem, 4, 10),
      Event::EndLocation(kItem, 4, 10, 20),
      Event::StartContainment(kItem, kCase, 12),
      Event::EndContainment(kItem, kCase, 12, 18),
  };
  EXPECT_TRUE(ValidateWellFormed(stream).ok());
}

TEST(WellFormedTest, NestedStartRejected) {
  EventStream stream{
      Event::StartLocation(kItem, 4, 10),
      Event::StartLocation(kItem, 5, 12),
  };
  EXPECT_FALSE(ValidateWellFormed(stream).ok());
}

TEST(WellFormedTest, EndWithoutStartRejected) {
  EXPECT_FALSE(ValidateWellFormed({Event::EndLocation(kItem, 4, 1, 2)}).ok());
  EXPECT_FALSE(
      ValidateWellFormed({Event::EndContainment(kItem, kCase, 1, 2)}).ok());
}

TEST(WellFormedTest, MismatchedEndRejected) {
  EventStream stream{
      Event::StartLocation(kItem, 4, 10),
      Event::EndLocation(kItem, 5, 10, 20),  // Wrong location.
  };
  EXPECT_FALSE(ValidateWellFormed(stream).ok());
  stream[1] = Event::EndLocation(kItem, 4, 11, 20);  // Wrong V_s.
  EXPECT_FALSE(ValidateWellFormed(stream).ok());
  stream[1] = Event::EndLocation(kItem, 4, 10, 5);  // V_e < V_s.
  EXPECT_FALSE(ValidateWellFormed(stream).ok());
}

TEST(WellFormedTest, MissingInsideLocationPairRejected) {
  EventStream stream{
      Event::StartLocation(kItem, 4, 10),
      Event::Missing(kItem, 4, 15),
      Event::EndLocation(kItem, 4, 10, 20),
  };
  EXPECT_FALSE(ValidateWellFormed(stream).ok());
}

TEST(WellFormedTest, MissingInsideContainmentPairAccepted) {
  EventStream stream{
      Event::StartContainment(kItem, kCase, 10),
      Event::Missing(kItem, 4, 15),
      Event::EndContainment(kItem, kCase, 10, 20),
  };
  EXPECT_TRUE(ValidateWellFormed(stream).ok());
}

TEST(WellFormedTest, OpenAtEndPolicy) {
  EventStream stream{Event::StartLocation(kItem, 4, 10)};
  EXPECT_FALSE(ValidateWellFormed(stream).ok());
  EXPECT_TRUE(ValidateWellFormed(stream, /*allow_open_at_end=*/true).ok());
}

TEST(WellFormedTest, StartAtUnknownLocationRejected) {
  EventStream stream{Event::StartLocation(kItem, kUnknownLocation, 10)};
  EXPECT_FALSE(ValidateWellFormed(stream).ok());
}

// ----------------------------------------------------------- Decompressor --

TEST(DecompressorTest, PassesThroughLevel1Stream) {
  EventStream level1{
      Event::StartLocation(kItem, 4, 10),
      Event::EndLocation(kItem, 4, 10, 20),
  };
  EventStream out = Decompressor::DecompressAll(level1);
  EXPECT_EQ(out, level1);
}

TEST(DecompressorTest, ReconstructsChildLocationFromContainment) {
  // Level-2: the case's first sighting is explicit, the end-of-epoch
  // handover closes it (zero-length tail), and from then on its location is
  // implied by the pallet's.
  EventStream level2{
      Event::StartContainment(kCase, kPallet, 1),
      Event::StartLocation(kCase, 1, 1),
      Event::StartLocation(kPallet, 1, 1),
      Event::EndLocation(kCase, 1, 1, 1),
      Event::EndLocation(kPallet, 1, 1, 5),
      Event::StartLocation(kPallet, 2, 5),
  };
  EventStream out = Decompressor::DecompressAll(level2);
  EXPECT_TRUE(ValidateWellFormed(out, /*allow_open_at_end=*/true).ok());
  // The case must have reconstructed stays at locations 1 and 2.
  bool case_at_1 = false, case_at_2 = false;
  for (const Event& e : out) {
    if (e.type == EventType::kStartLocation && e.object == kCase) {
      if (e.location == 1) case_at_1 = true;
      if (e.location == 2) case_at_2 = true;
    }
  }
  EXPECT_TRUE(case_at_1);
  EXPECT_TRUE(case_at_2);
}

TEST(DecompressorTest, RecursiveDescent) {
  // pallet -> case -> item: a pallet move propagates two levels down. The
  // contained objects' first sightings are explicit and handed over to
  // derived tracking at the end of their first epoch.
  EventStream level2{
      Event::StartContainment(kCase, kPallet, 1),
      Event::StartContainment(kItem, kCase, 1),
      Event::StartLocation(kPallet, 1, 1),
      Event::StartLocation(kCase, 1, 1),
      Event::StartLocation(kItem, 1, 1),
      Event::EndLocation(kCase, 1, 1, 1),
      Event::EndLocation(kItem, 1, 1, 1),
      Event::EndLocation(kPallet, 1, 1, 9),
      Event::StartLocation(kPallet, 3, 9),
  };
  EventStream out = Decompressor::DecompressAll(level2);
  bool item_at_3 = false;
  for (const Event& e : out) {
    if (e.type == EventType::kStartLocation && e.object == kItem &&
        e.location == 3) {
      item_at_3 = true;
    }
  }
  EXPECT_TRUE(item_at_3);
}

TEST(DecompressorTest, SuppressesDuplicateStart) {
  // The paper's T2/T3 example: the stream's StartLocation(C2, L2, T3) is a
  // duplicate of the propagated location and must be removed.
  EventStream level2{
      Event::StartContainment(kCase, kPallet, 1),
      Event::StartLocation(kPallet, 2, 2),
      Event::EndContainment(kCase, kPallet, 1, 3),
      Event::StartLocation(kCase, 2, 3),  // Duplicate: already at 2.
  };
  EventStream out = Decompressor::DecompressAll(level2);
  int case_starts_at_2 = 0;
  for (const Event& e : out) {
    if (e.type == EventType::kStartLocation && e.object == kCase &&
        e.location == 2) {
      ++case_starts_at_2;
    }
  }
  EXPECT_EQ(case_starts_at_2, 1);
}

TEST(DecompressorTest, LateContainmentInheritsCurrentLocation) {
  // Containment starting after the container settled: the child picks up
  // the container's current location immediately.
  EventStream level2{
      Event::StartLocation(kPallet, 5, 1),
      Event::EndLocation(kCase, 5, 1, 10),        // Level-2 closes the child.
      Event::StartContainment(kCase, kPallet, 10),
  };
  // Give the child its own pre-containment stay first.
  EventStream input;
  input.push_back(Event::StartLocation(kCase, 5, 1));
  for (const Event& e : level2) input.push_back(e);
  EventStream out = Decompressor::DecompressAll(input);
  EXPECT_TRUE(ValidateWellFormed(out, true).ok());
  // The churn canceller splices the End/Start at epoch 10 away: the case's
  // stay at 5 is continuous.
  int case_events_at_10 = 0;
  for (const Event& e : out) {
    if (e.object == kCase && !IsContainmentEvent(e.type) &&
        (e.start == 10 || e.end == 10)) {
      ++case_events_at_10;
    }
  }
  EXPECT_EQ(case_events_at_10, 0);
}

TEST(DecompressorTest, MissingClosesReconstructedStay) {
  // The case's stay is derived from the pallet's after the handover; the
  // Missing singleton must still close it so the output stays well-formed.
  EventStream level2{
      Event::StartContainment(kCase, kPallet, 1),
      Event::StartLocation(kCase, 2, 2),
      Event::StartLocation(kPallet, 2, 2),
      Event::EndLocation(kCase, 2, 2, 2),
      Event::Missing(kCase, 2, 7),
  };
  EventStream out = Decompressor::DecompressAll(level2);
  EXPECT_TRUE(ValidateWellFormed(out, true).ok());
  bool closed = false;
  for (const Event& e : out) {
    if (e.type == EventType::kEndLocation && e.object == kCase) closed = true;
  }
  EXPECT_TRUE(closed);
}

TEST(DecompressorTest, StreamingMatchesBatch) {
  EventStream level2{
      Event::StartContainment(kCase, kPallet, 1),
      Event::StartLocation(kPallet, 1, 1),
      Event::EndLocation(kPallet, 1, 1, 5),
      Event::StartLocation(kPallet, 2, 5),
      Event::EndContainment(kCase, kPallet, 1, 8),
      Event::StartLocation(kCase, 2, 8),
  };
  Decompressor streaming;
  EventStream incremental;
  for (const Event& e : level2) streaming.Push(e, &incremental);
  streaming.Finish(&incremental);
  EXPECT_EQ(incremental, Decompressor::DecompressAll(level2));
}

}  // namespace
}  // namespace spire
