// The SPIRE complex-event pattern language (DESIGN.md §11).
//
// Patterns describe sequences of predicate onsets over the interpreted
// object timelines — the SASE-style SEQ/negation/WITHIN fragment the paper
// alludes to when it calls the compressed output "directly queriable using
// recently developed event processors" (§V-B). The grammar (whitespace-
// insensitive, keywords case-sensitive):
//
//   pattern   := "SEQ" "(" step ("," step)* ")" | step
//   step      := ["!"] predicate ["WITHIN" <epochs>]
//   predicate := "At" "(" var "," locspec ")"      object at a location
//              | "In" "(" var "," var ")"          1st var directly inside 2nd
//              | "Contains" "(" var "," var ")"    2nd var directly inside 1st
//              | "Missing" "(" var ")"             object reported missing
//   locspec   := location-name | prefix "*" | <decimal location id>
//
// Example: SEQ(At(x, entry_door), !At(x, receiving_belt) WITHIN 50,
//              At(x, exit_door)) — x entered and reached the exit within 50
// epochs without ever crossing the receiving belt in between.
//
// Parsing produces the plain AST below; `Compile` (cep/nfa.h) validates
// step structure and variable introduction and resolves location specs
// against a ReaderRegistry.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace spire {

class ReaderRegistry;

namespace cep {

/// Predicate kind, evaluated per (binding, epoch).
enum class PredKind : std::uint8_t { kAt, kIn, kContains, kMissing };

const char* ToString(PredKind kind);

struct Predicate {
  PredKind kind = PredKind::kAt;
  std::string var;       ///< Subject variable.
  std::string var2;      ///< Second variable (kIn / kContains).
  std::string loc_spec;  ///< kAt: name, `prefix*` glob, or decimal id.

  bool operator==(const Predicate&) const = default;
};

struct Step {
  bool negated = false;
  Predicate pred;
  /// Time window in epochs bounding this step's distance to the previous
  /// positive step (for trailing negations: the guarded span). 0 = none.
  Epoch within = 0;

  bool operator==(const Step&) const = default;
};

/// A parsed pattern. Structural validity (first step positive, windows on
/// trailing negations, variable introduction order) is checked by Compile.
struct Pattern {
  std::string name = "pattern";
  std::vector<Step> steps;

  /// Renders the pattern in the grammar above; parses back equal.
  std::string ToString() const;

  bool operator==(const Pattern& other) const { return steps == other.steps; }
};

/// Parses one pattern expression. `name` labels matches and errors.
Result<Pattern> ParsePattern(const std::string& text,
                             const std::string& name = "pattern");

/// Expands a location spec: an exact registered name, a `prefix*` glob
/// (all registered names with the prefix), or a decimal location id (the
/// only form usable with a null registry). Unknown names and globs that
/// match nothing are errors.
Result<std::vector<LocationId>> ResolveLocationSpec(
    const std::string& spec, const ReaderRegistry* registry);

}  // namespace cep
}  // namespace spire
