#include "inference/edge_inference.h"

#include <cmath>

namespace spire {

void EdgeInferencer::BeginPass() {
  probabilities_.assign(graph_->EdgeCapacity(), 0.0);
}

double EdgeInferencer::Weight(const Edge& edge) const {
  const ShiftRegister& bits = edge.recent_colocations;
  const int n = bits.size();
  if (n == 0) return 0.0;
  double numerator = 0.0;
  double denominator = 0.0;
  for (int i = 0; i < n; ++i) {
    // The paper's Eq. 1 indexes 1/i^alpha from i = 0; we use (i+1)^alpha to
    // keep the most recent term finite (see DESIGN.md).
    double zipf = params_->alpha == 0.0
                      ? 1.0
                      : 1.0 / std::pow(static_cast<double>(i + 1),
                                       params_->alpha);
    if (bits.Get(i)) numerator += zipf;
    denominator += zipf;
  }
  return numerator / denominator;
}

double EdgeInferencer::EffectiveBeta(const Node& child) const {
  if (!params_->adaptive_beta) return params_->beta;
  const ConfirmedParent& confirmed = child.confirmed;
  if (confirmed.confirmed_at == kNeverEpoch) return params_->beta;
  if (confirmed.observations == 0) return 0.0;
  return static_cast<double>(confirmed.conflicts) /
         static_cast<double>(confirmed.observations);
}

double EdgeInferencer::Confidence(const Edge& edge, const Node& child) const {
  const double beta = EffectiveBeta(child);
  const bool is_confirmed_edge =
      child.confirmed.confirmed_at != kNeverEpoch &&
      child.confirmed.parent == edge.parent;
  const double memory = is_confirmed_edge ? 1.0 : 0.0;
  return (1.0 - beta) * memory + beta * Weight(edge);
}

EdgeInferenceResult EdgeInferencer::InferAt(const Node& node,
                                            std::vector<EdgeId>* prunable) {
  EdgeInferenceResult result;
  if (node.parent_edges.empty()) return result;

  double total = 0.0;
  double best_confidence = -1.0;
  double second_confidence = -1.0;
  for (EdgeId id : node.parent_edges) {
    const Edge& edge = graph_->edge(id);
    const double confidence = Confidence(edge, node);
    // Stash the unnormalized confidence; normalized below.
    if (id >= probabilities_.size()) probabilities_.resize(id + 1, 0.0);
    probabilities_[id] = confidence;
    total += confidence;
    if (confidence > best_confidence) {
      second_confidence = best_confidence;
      best_confidence = confidence;
      result.best_edge = id;
      result.best_parent = edge.parent;
    } else if (confidence > second_confidence) {
      second_confidence = confidence;
    }
    if (prunable != nullptr && params_->prune_threshold > 0.0 &&
        confidence < params_->prune_threshold) {
      prunable->push_back(id);
    }
  }
  if (total > 0.0) {
    for (EdgeId id : node.parent_edges) probabilities_[id] /= total;
    result.best_prob = probabilities_[result.best_edge];
    if (second_confidence >= 0.0) {
      result.runner_up_prob = second_confidence / total;
    }
  } else {
    // No edge carries any evidence: fall back to a uniform distribution.
    const double uniform = 1.0 / static_cast<double>(node.parent_edges.size());
    for (EdgeId id : node.parent_edges) probabilities_[id] = uniform;
    result.best_prob = uniform;
    if (node.parent_edges.size() > 1) result.runner_up_prob = uniform;
  }
  return result;
}

}  // namespace spire
