// Little-endian fixed-width field helpers for the archive's headers.
#pragma once

#include <cstdint>
#include <vector>

namespace spire {

inline void PutLE16(std::uint16_t value, std::vector<std::uint8_t>* out) {
  out->push_back(static_cast<std::uint8_t>(value));
  out->push_back(static_cast<std::uint8_t>(value >> 8));
}

inline void PutLE32(std::uint32_t value, std::vector<std::uint8_t>* out) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

inline void PutLE64(std::uint64_t value, std::vector<std::uint8_t>* out) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

inline std::uint16_t GetLE16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | p[1] << 8);
}

inline std::uint32_t GetLE32(const std::uint8_t* p) {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) value = value << 8 | p[i];
  return value;
}

inline std::uint64_t GetLE64(const std::uint8_t* p) {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) value = value << 8 | p[i];
  return value;
}

}  // namespace spire
