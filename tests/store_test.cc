// Tests for the persistent block-compressed event archive (src/store):
// strict varint/CRC/bitpack primitives, both column-wise block codecs,
// block-header validation (codec ids, sentinel epoch ranges), writer/reader
// round trips over hand-built and simulated streams, the access paths
// (mmap and buffered), torn-tail crash recovery, format-v1 compatibility,
// and index-sidecar staleness handling (grown, shrunk, and rewritten
// same-size segments).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/epc.h"
#include "compress/well_formed.h"
#include "sim/simulator.h"
#include "spire/pipeline.h"
#include "store/archive_reader.h"
#include "store/archive_writer.h"
#include "store/bitpack.h"
#include "store/block.h"
#include "store/crc32.h"
#include "store/little_endian.h"
#include "store/segment.h"
#include "store/varint.h"

namespace spire {
namespace {

ObjectId Obj(PackagingLevel level, std::uint32_t serial) {
  EpcFields fields;
  fields.level = level;
  fields.serial = serial;
  return EncodeEpcUnchecked(fields);
}

const ObjectId kItem = Obj(PackagingLevel::kItem, 1);
const ObjectId kItem2 = Obj(PackagingLevel::kItem, 2);
const ObjectId kCase = Obj(PackagingLevel::kCase, 3);

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveArchive(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(IndexPathFor(path), ec);
}

/// A canonical mixed stream: every message kind, several objects, epochs
/// near-sorted the way the pipeline emits them.
EventStream SampleStream() {
  return {
      Event::StartLocation(kItem, 4, 10),
      Event::StartLocation(kCase, 4, 10),
      Event::StartContainment(kItem, kCase, 12),
      Event::EndLocation(kItem, 4, 10, 20),
      Event::Missing(kItem, 4, 20),
      Event::StartLocation(kItem, 7, 25),
      Event::StartLocation(kItem2, 7, 26),
      Event::EndContainment(kItem, kCase, 12, 40),
      Event::EndLocation(kItem, 7, 25, 50),
      Event::EndLocation(kItem2, 7, 26, 55),
      Event::EndLocation(kCase, 4, 10, 60),
  };
}

/// `rounds` copies of the sample pattern shifted in time, to fill many
/// blocks.
EventStream LongStream(int rounds) {
  EventStream stream;
  for (int round = 0; round < rounds; ++round) {
    const Epoch base = 100 * round;
    for (Event event : SampleStream()) {
      if (event.start != kNeverEpoch && event.start != kInfiniteEpoch) {
        event.start += base;
      }
      if (event.end != kInfiniteEpoch) event.end += base;
      stream.push_back(event);
    }
  }
  return stream;
}

EventStream FilterByPrimary(const EventStream& stream, Epoch lo, Epoch hi) {
  EventStream filtered;
  for (const Event& event : stream) {
    const Epoch primary = PrimaryEpoch(event);
    if (lo <= primary && primary <= hi) filtered.push_back(event);
  }
  return filtered;
}

// ------------------------------------------------------------- primitives --

TEST(VarintTest, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ull << 32) - 1,
                                  1ull << 62,
                                  ~0ull};
  std::vector<std::uint8_t> bytes;
  for (std::uint64_t value : values) PutVarint64(value, &bytes);
  std::size_t offset = 0;
  for (std::uint64_t value : values) {
    auto decoded = GetVarint64(bytes, &offset);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), value);
  }
  EXPECT_EQ(offset, bytes.size());
}

TEST(VarintTest, RejectsTruncation) {
  std::vector<std::uint8_t> bytes;
  PutVarint64(1ull << 40, &bytes);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    std::size_t offset = 0;
    EXPECT_FALSE(GetVarint64(truncated, &offset).ok());
  }
}

TEST(VarintTest, RejectsTenthByteOverflow) {
  // Nine continuation bytes supply 63 bits, so only the lowest bit of the
  // tenth byte is payload. 0xff x9 + 0x01 is the canonical ~0ull encoding...
  std::vector<std::uint8_t> max_encoding(9, 0xff);
  max_encoding.push_back(0x01);
  std::size_t offset = 0;
  auto max_decoded = GetVarint64(max_encoding, &offset);
  ASSERT_TRUE(max_decoded.ok());
  EXPECT_EQ(max_decoded.value(), ~0ull);
  EXPECT_EQ(offset, 10u);

  // ...and any tenth byte with higher bits set would silently shift value
  // bits out in a lenient decoder. Strict decode calls it corruption.
  for (int tenth : {0x02, 0x03, 0x42, 0x7f}) {
    std::vector<std::uint8_t> bytes(9, 0x80);
    bytes.push_back(static_cast<std::uint8_t>(tenth));
    offset = 0;
    auto decoded = GetVarint64(bytes, &offset);
    ASSERT_FALSE(decoded.ok()) << "tenth byte " << tenth;
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
  }

  // An eleventh byte never decodes, continuation or not.
  std::vector<std::uint8_t> eleven(10, 0x80);
  eleven.push_back(0x00);
  offset = 0;
  EXPECT_FALSE(GetVarint64(eleven, &offset).ok());
}

TEST(VarintTest, RejectsNonCanonicalPadding) {
  // Each of these pads a short value with a trailing 0x00 terminator —
  // decoding to the same value as a shorter encoding. A lenient decoder
  // accepts them, which breaks the one-encoding-per-value property the
  // byte-identical fuzz oracles rely on.
  const std::vector<std::vector<std::uint8_t>> padded = {
      {0x80, 0x00},                    // 0 padded to two bytes
      {0xff, 0x80, 0x00},              // 127 padded to three
      {0x81, 0x80, 0x80, 0x00},        // 1 padded to four
      {0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00},
  };
  for (const auto& bytes : padded) {
    std::size_t offset = 0;
    auto decoded = GetVarint64(bytes, &offset);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
    // The skip primitive is length-checked only; it must still advance.
    offset = 0;
    EXPECT_TRUE(SkipVarint64(bytes.data(), bytes.size(), &offset).ok());
    EXPECT_EQ(offset, bytes.size());
  }
  // A lone 0x00 is the canonical encoding of zero, not padding.
  const std::vector<std::uint8_t> zero = {0x00};
  std::size_t offset = 0;
  auto decoded = GetVarint64(zero, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), 0u);
}

TEST(VarintTest, ZigzagRoundTrips) {
  const std::int64_t values[] = {0, -1, 1, -2, 1000, -1000,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (std::int64_t value : values) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(value)), value);
  }
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
}

TEST(Crc32Test, MatchesKnownVector) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xcbf43926u);
}

TEST(Crc32Test, SeedChainsAcrossCalls) {
  EXPECT_EQ(Crc32("56789", 5, Crc32("1234", 4)), Crc32("123456789", 9));
}

// ---------------------------------------------------------------- bitpack --

/// Packs `values` and returns the packed bytes followed by the payload pad,
/// the shape UnpackColumn expects to read from.
std::vector<std::uint8_t> PackWithPad(const std::vector<std::uint64_t>& values) {
  std::vector<std::uint8_t> bytes;
  PackColumn(values.data(), values.size(), &bytes);
  bytes.insert(bytes.end(), kBitpackPadBytes, 0);
  return bytes;
}

TEST(BitpackTest, RoundTripsEveryWidth) {
  for (unsigned width = 0; width <= 64; ++width) {
    // 300 values spanning full, full, and partial miniblocks, each
    // miniblock genuinely needing `width` bits (top bit set).
    std::vector<std::uint64_t> values(300);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = width == 0
                      ? 0
                      : (1ull << (width - 1)) |
                            (i & bitpack_internal::Mask(width - 1));
    }
    const std::vector<std::uint8_t> bytes = PackWithPad(values);
    std::vector<std::uint64_t> decoded(values.size());
    std::size_t offset = 0;
    ASSERT_TRUE(UnpackColumn(bytes.data(), bytes.size(), &offset,
                             values.size(), decoded.data())
                    .ok())
        << "width " << width;
    EXPECT_EQ(decoded, values) << "width " << width;
    EXPECT_EQ(offset, bytes.size() - kBitpackPadBytes);

    // Skip lands exactly where decode does.
    std::size_t skip_offset = 0;
    ASSERT_TRUE(
        SkipColumn(bytes.data(), bytes.size(), &skip_offset, values.size())
            .ok());
    EXPECT_EQ(skip_offset, offset);
  }
}

TEST(BitpackTest, RejectsNonMinimalWidth) {
  // One value of 1 declared at width 2: decodes fine in a lenient reader,
  // but violates the canonical minimal-width rule.
  const std::vector<std::uint8_t> bytes = {0x02, 0x01, 0, 0, 0, 0, 0, 0, 0, 0};
  std::uint64_t out = 0;
  std::size_t offset = 0;
  auto status = UnpackColumn(bytes.data(), bytes.size(), &offset, 1, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(BitpackTest, RejectsNonzeroTailBits) {
  // One value at width 1 uses one bit of its packed byte; the other seven
  // must be zero.
  const std::vector<std::uint8_t> bytes = {0x01, 0x03, 0, 0, 0, 0, 0, 0, 0, 0};
  std::uint64_t out = 0;
  std::size_t offset = 0;
  auto status = UnpackColumn(bytes.data(), bytes.size(), &offset, 1, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(BitpackTest, RejectsOverwideAndTruncatedMiniblocks) {
  // Width byte 65 can never be valid for 64-bit values.
  const std::vector<std::uint8_t> overwide = {65, 0, 0, 0, 0, 0, 0, 0, 0};
  std::uint64_t out = 0;
  std::size_t offset = 0;
  EXPECT_FALSE(
      UnpackColumn(overwide.data(), overwide.size(), &offset, 1, &out).ok());

  // A full column that loses its pad (or any tail bytes) is truncation —
  // the decoder must refuse rather than read past the buffer.
  std::vector<std::uint64_t> values(kMiniblockValues, 0xabcd);
  std::vector<std::uint8_t> bytes = PackWithPad(values);
  std::vector<std::uint64_t> decoded(values.size());
  for (std::size_t cut = 1; cut <= kBitpackPadBytes + 2; ++cut) {
    offset = 0;
    EXPECT_FALSE(UnpackColumn(bytes.data(), bytes.size() - cut, &offset,
                              values.size(), decoded.data())
                     .ok())
        << "cut " << cut;
    offset = 0;
    EXPECT_FALSE(SkipColumn(bytes.data(), bytes.size() - cut, &offset,
                            values.size())
                     .ok())
        << "cut " << cut;
  }
}

// ------------------------------------------------------------ block header --

BlockHeader SampleHeader() {
  BlockHeader header;
  header.count = 7;
  header.codec = BlockCodec::kBitpack;
  header.min_epoch = 10;
  header.max_epoch = 60;
  header.payload_size = 123;
  header.payload_crc = 0xdeadbeef;
  return header;
}

TEST(BlockHeaderTest, RoundTripsBothVersions) {
  for (std::uint16_t version : {kArchiveVersionV1, kArchiveVersion}) {
    BlockHeader header = SampleHeader();
    if (version == kArchiveVersionV1) header.codec = BlockCodec::kVarint;
    std::vector<std::uint8_t> bytes;
    AppendBlockHeader(header, version, &bytes);
    ASSERT_EQ(bytes.size(), BlockHeaderBytes(version));
    auto parsed = ParseBlockHeader(bytes.data(), version);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().count, header.count);
    EXPECT_EQ(parsed.value().codec, header.codec);
    EXPECT_EQ(parsed.value().min_epoch, header.min_epoch);
    EXPECT_EQ(parsed.value().max_epoch, header.max_epoch);
    EXPECT_EQ(parsed.value().payload_size, header.payload_size);
    EXPECT_EQ(parsed.value().payload_crc, header.payload_crc);
  }
  EXPECT_EQ(BlockHeaderBytes(kArchiveVersionV1), kBlockHeaderBytesV1);
  EXPECT_EQ(BlockHeaderBytes(kArchiveVersion), kBlockHeaderBytesV2);
}

/// Serializes `header`, applies `mutate` to the raw bytes, re-stamps the
/// header CRC so only the semantic check under test can fire, and parses.
template <typename Mutate>
Status ParseMutatedHeader(const BlockHeader& header, Mutate mutate) {
  std::vector<std::uint8_t> bytes;
  AppendBlockHeader(header, kArchiveVersion, &bytes);
  mutate(bytes.data());
  const std::uint32_t crc = Crc32(bytes.data(), kBlockHeaderBytesV2 - 4);
  bytes[36] = static_cast<std::uint8_t>(crc);
  bytes[37] = static_cast<std::uint8_t>(crc >> 8);
  bytes[38] = static_cast<std::uint8_t>(crc >> 16);
  bytes[39] = static_cast<std::uint8_t>(crc >> 24);
  return ParseBlockHeader(bytes.data(), kArchiveVersion).status();
}

TEST(BlockHeaderTest, RejectsSentinelAndInvertedEpochRanges) {
  // A sealed block holds >= 1 validated events, so 0 <= min <= max always;
  // the kNeverEpoch sentinel reads back as a huge epoch that would make
  // Intersects match every range and defeat the range-scan skip.
  BlockHeader sentinel_min = SampleHeader();
  sentinel_min.min_epoch = kNeverEpoch;
  BlockHeader sentinel_max = SampleHeader();
  sentinel_max.max_epoch = kNeverEpoch;
  BlockHeader sentinel_both = SampleHeader();
  sentinel_both.min_epoch = kNeverEpoch;
  sentinel_both.max_epoch = kNeverEpoch;
  BlockHeader inverted = SampleHeader();
  inverted.min_epoch = 60;
  inverted.max_epoch = 10;
  for (const BlockHeader& bad :
       {sentinel_min, sentinel_max, sentinel_both, inverted}) {
    Status status = ParseMutatedHeader(bad, [](std::uint8_t*) {});
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kCorruption);
  }
  // The boundary cases stay valid.
  BlockHeader zero = SampleHeader();
  zero.min_epoch = 0;
  zero.max_epoch = 0;
  EXPECT_TRUE(ParseMutatedHeader(zero, [](std::uint8_t*) {}).ok());
}

TEST(BlockHeaderTest, RejectsUnknownCodecZeroCountAndOversizedPayload) {
  // Codec ids this build does not know are corruption even under a valid
  // CRC — decoding with the wrong codec would be worse than failing.
  EXPECT_FALSE(ParseMutatedHeader(SampleHeader(), [](std::uint8_t* bytes) {
                 bytes[32] = 2;
               }).ok());
  EXPECT_FALSE(ParseMutatedHeader(SampleHeader(), [](std::uint8_t* bytes) {
                 bytes[33] = 1;  // Reserved codec-word bytes must be zero.
               }).ok());
  BlockHeader empty = SampleHeader();
  empty.count = 0;
  EXPECT_FALSE(ParseMutatedHeader(empty, [](std::uint8_t*) {}).ok());
  BlockHeader fat = SampleHeader();
  fat.payload_size = kMaxBlockPayloadBytes + 1;
  EXPECT_FALSE(ParseMutatedHeader(fat, [](std::uint8_t*) {}).ok());
  // Flipping any CRC-covered byte without re-stamping must fail too.
  std::vector<std::uint8_t> bytes;
  AppendBlockHeader(SampleHeader(), kArchiveVersion, &bytes);
  bytes[8] ^= 0xff;
  EXPECT_FALSE(ParseBlockHeader(bytes.data(), kArchiveVersion).ok());
}

// ------------------------------------------------------------ block codec --

TEST(BlockCodecTest, RoundTripsMixedEvents) {
  const EventStream stream = SampleStream();
  auto encoded = EncodeBlock(stream, 0, stream.size());
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded.value().count, stream.size());
  EXPECT_EQ(encoded.value().min_epoch, 10);
  EXPECT_EQ(encoded.value().max_epoch, 60);
  // Far below the 26-byte flat record.
  EXPECT_LT(encoded.value().payload.size(), stream.size() * kEventWireBytes / 2);

  EventStream decoded;
  ASSERT_TRUE(
      DecodeBlock(encoded.value().payload, encoded.value().count, &decoded)
          .ok());
  EXPECT_EQ(decoded, stream);
}

TEST(BlockCodecTest, RejectsNonCanonicalEvents) {
  Event closed_start = Event::StartLocation(kItem, 4, 10);
  closed_start.end = 20;
  Event negative = Event::StartLocation(kItem, 4, -3);
  Event inverted_end = Event::EndLocation(kItem, 4, 30, 20);
  Event fat_missing = Event::Missing(kItem, 4, 10);
  fat_missing.end = 12;
  for (const Event& event : {closed_start, negative, inverted_end,
                             fat_missing}) {
    EXPECT_FALSE(ValidateArchivable(event).ok()) << event.ToString();
    EXPECT_FALSE(EncodeBlock({event}, 0, 1).ok()) << event.ToString();
  }
}

TEST(BlockCodecTest, DecodeRejectsCorruptionAtEveryOffset) {
  const EventStream stream = SampleStream();
  auto encoded = EncodeBlock(stream, 0, stream.size());
  ASSERT_TRUE(encoded.ok());
  const std::vector<std::uint8_t>& payload = encoded.value().payload;
  // Flipping any byte must fail, or decode the full event count — never
  // crash, never silently drop records.
  for (std::size_t offset = 0; offset < payload.size(); ++offset) {
    std::vector<std::uint8_t> flipped = payload;
    flipped[offset] ^= 0xff;
    EventStream decoded;
    Status status = DecodeBlock(flipped, encoded.value().count, &decoded);
    if (status.ok()) {
      EXPECT_EQ(decoded.size(), stream.size()) << "offset " << offset;
    } else {
      EXPECT_FALSE(status.message().empty()) << "offset " << offset;
    }
  }
  // Any truncation must fail.
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<std::uint8_t> truncated(payload.begin(),
                                        payload.begin() + cut);
    EventStream decoded;
    EXPECT_FALSE(
        DecodeBlock(truncated, encoded.value().count, &decoded).ok())
        << "cut " << cut;
  }
}

TEST(BlockCodecTest, BitpackRoundTripsMixedEvents) {
  const EventStream stream = LongStream(5);
  auto encoded = EncodeBlock(stream, 0, stream.size(), BlockCodec::kBitpack);
  ASSERT_TRUE(encoded.ok());
  const EncodedBlock& block = encoded.value();
  EXPECT_EQ(block.codec, BlockCodec::kBitpack);
  EXPECT_EQ(block.count, stream.size());
  EXPECT_EQ(block.min_epoch, 10);
  EXPECT_EQ(block.max_epoch, 460);

  EventStream decoded;
  ASSERT_TRUE(DecodeBlock(block.payload.data(), block.payload.size(),
                          block.count, BlockCodec::kBitpack, &decoded)
                  .ok());
  EXPECT_EQ(decoded, stream);
}

TEST(BlockCodecTest, BothCodecsReencodeByteIdentical) {
  // Canonical encodings (strict varints, minimal bit widths, zero pads)
  // mean decode-then-reencode reproduces the exact payload — the property
  // the fuzz oracle asserts across the whole corpus.
  const EventStream stream = LongStream(5);
  for (BlockCodec codec : {BlockCodec::kVarint, BlockCodec::kBitpack}) {
    auto encoded = EncodeBlock(stream, 0, stream.size(), codec);
    ASSERT_TRUE(encoded.ok());
    EventStream decoded;
    ASSERT_TRUE(DecodeBlock(encoded.value().payload.data(),
                            encoded.value().payload.size(),
                            encoded.value().count, codec, &decoded)
                    .ok());
    auto reencoded = EncodeBlock(decoded, 0, decoded.size(), codec);
    ASSERT_TRUE(reencoded.ok());
    EXPECT_EQ(reencoded.value().payload, encoded.value().payload)
        << ToString(codec);
  }
}

TEST(BlockCodecTest, BitpackDecodeRejectsCorruptionAtEveryOffset) {
  const EventStream stream = SampleStream();
  auto encoded = EncodeBlock(stream, 0, stream.size(), BlockCodec::kBitpack);
  ASSERT_TRUE(encoded.ok());
  const std::vector<std::uint8_t>& payload = encoded.value().payload;
  for (std::size_t offset = 0; offset < payload.size(); ++offset) {
    std::vector<std::uint8_t> flipped = payload;
    flipped[offset] ^= 0xff;
    EventStream decoded;
    Status status = DecodeBlock(flipped.data(), flipped.size(),
                                encoded.value().count, BlockCodec::kBitpack,
                                &decoded);
    if (status.ok()) {
      EXPECT_EQ(decoded.size(), stream.size()) << "offset " << offset;
    } else {
      EXPECT_FALSE(status.message().empty()) << "offset " << offset;
    }
  }
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EventStream decoded;
    EXPECT_FALSE(DecodeBlock(payload.data(), cut, encoded.value().count,
                             BlockCodec::kBitpack, &decoded)
                     .ok())
        << "cut " << cut;
  }
}

TEST(BlockCodecTest, EpochColumnMatchesFullDecode) {
  const EventStream stream = LongStream(5);
  for (BlockCodec codec : {BlockCodec::kVarint, BlockCodec::kBitpack}) {
    auto encoded = EncodeBlock(stream, 0, stream.size(), codec);
    ASSERT_TRUE(encoded.ok());
    std::vector<Epoch> epochs;
    ASSERT_TRUE(DecodeBlockEpochs(encoded.value().payload.data(),
                                  encoded.value().payload.size(),
                                  encoded.value().count, codec, &epochs)
                    .ok());
    ASSERT_EQ(epochs.size(), stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
      EXPECT_EQ(epochs[i], PrimaryEpoch(stream[i])) << "event " << i;
    }
  }
}

// --------------------------------------------------------- writer/reader --

TEST(ArchiveTest, RoundTripsAcrossManyBlocks) {
  const std::string path = TempPath("roundtrip.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(40);

  ArchiveOptions options;
  options.block_events = 32;  // Force many blocks.
  auto writer = ArchiveWriter::Open(path, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(stream).ok());
  ASSERT_TRUE(writer.value()->Close().ok());
  EXPECT_GT(writer.value()->num_blocks(), 10u);
  EXPECT_EQ(writer.value()->events_written(), stream.size());

  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.value().index_rebuilt());
  EXPECT_EQ(reader.value().num_events(), stream.size());
  auto scanned = reader.value().ScanAll();
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned.value(), stream);
}

TEST(ArchiveTest, TimeRangeScanEqualsFilteredFullDecode) {
  const std::string path = TempPath("range.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(40);
  ArchiveOptions options;
  options.block_events = 32;
  auto writer = ArchiveWriter::Open(path, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(stream).ok());
  ASSERT_TRUE(writer.value()->Close().ok());

  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  for (auto [lo, hi] : {std::pair<Epoch, Epoch>{0, 99},
                        {150, 430},
                        {1000, 2000},
                        {3990, 100000},
                        {700, 700}}) {
    auto ranged = reader.value().ScanRange(lo, hi);
    ASSERT_TRUE(ranged.ok());
    EXPECT_EQ(ranged.value(), FilterByPrimary(stream, lo, hi))
        << "[" << lo << ", " << hi << "]";
  }
  // A narrow window must skip most blocks.
  EXPECT_LT(reader.value().BlocksInRange(150, 430),
            reader.value().num_blocks() / 2);
  EXPECT_EQ(reader.value().BlocksInRange(1 << 20, 2 << 20), 0u);
}

TEST(ArchiveTest, PerObjectScanUsesPostings) {
  const std::string path = TempPath("object.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(40);
  ArchiveOptions options;
  options.block_events = 32;
  auto writer = ArchiveWriter::Open(path, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(stream).ok());
  ASSERT_TRUE(writer.value()->Close().ok());

  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  for (ObjectId object : {kItem, kItem2, kCase}) {
    auto scanned = reader.value().ScanObject(object);
    ASSERT_TRUE(scanned.ok());
    EventStream expected;
    for (const Event& event : stream) {
      if (event.object == object) expected.push_back(event);
    }
    EXPECT_EQ(scanned.value(), expected);
    EXPECT_LE(reader.value().BlocksForObject(object),
              reader.value().num_blocks());
  }
  EXPECT_TRUE(reader.value()
                  .ScanObject(Obj(PackagingLevel::kItem, 999))
                  .value()
                  .empty());
}

TEST(ArchiveTest, ReopenAppendsAfterClose) {
  const std::string path = TempPath("reopen.sparc");
  RemoveArchive(path);
  const EventStream first = LongStream(10);
  const EventStream second = LongStream(20);

  ArchiveOptions options;
  options.block_events = 32;
  {
    auto writer = ArchiveWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(first).ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  {
    auto writer = ArchiveWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ(writer.value()->recovery().recovered_events, first.size());
    EXPECT_EQ(writer.value()->recovery().truncated_bytes, 0u);
    ASSERT_TRUE(writer.value()->Append(second).ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EventStream expected = first;
  expected.insert(expected.end(), second.begin(), second.end());
  EXPECT_EQ(reader.value().ScanAll().value(), expected);
}

TEST(ArchiveTest, TornTailRecoveryLosesAtMostLastBlock) {
  const std::string path = TempPath("torn.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(40);
  ArchiveOptions options;
  options.block_events = 32;
  std::uint64_t full_bytes = 0;
  std::size_t full_blocks = 0;
  {
    auto writer = ArchiveWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(stream).ok());
    ASSERT_TRUE(writer.value()->Close().ok());
    full_bytes = writer.value()->segment_bytes();
    full_blocks = writer.value()->num_blocks();
  }
  // Tear the file mid-way through the last block.
  std::filesystem::resize_file(path, full_bytes - 20);

  auto recovered = ArchiveWriter::Open(path, options);
  ASSERT_TRUE(recovered.ok());
  ArchiveWriter& w = *recovered.value();
  EXPECT_EQ(w.num_blocks(), full_blocks - 1);
  EXPECT_GT(w.recovery().truncated_bytes, 0u);
  // At most one block of events was lost.
  EXPECT_GE(w.recovery().recovered_events,
            stream.size() - options.block_events);

  // Appending after recovery works, and the result validates end to end.
  const std::size_t lost = stream.size() -
                           static_cast<std::size_t>(w.events_written());
  EventStream tail(stream.end() - static_cast<std::ptrdiff_t>(lost),
                   stream.end());
  ASSERT_TRUE(w.Append(tail).ok());
  ASSERT_TRUE(w.Close().ok());

  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.value().index_rebuilt());
  EXPECT_EQ(reader.value().ScanAll().value(), stream);
}

TEST(ArchiveTest, ReaderRebuildsWhenIndexStaleOrMissing) {
  const std::string path = TempPath("stale.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(10);
  ArchiveOptions options;
  options.block_events = 32;
  {
    auto writer = ArchiveWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(stream).ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  {
    // Append without Close: sealed blocks land, the sidecar goes stale —
    // exactly the crash-before-Close shape.
    auto writer = ArchiveWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(stream).ok());
    ASSERT_TRUE(writer.value()->Flush().ok());
  }
  auto stale = ArchiveReader::Open(path);
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(stale.value().index_rebuilt());
  EXPECT_EQ(stale.value().num_events(), 2 * stream.size());

  std::filesystem::remove(IndexPathFor(path));
  auto missing = ArchiveReader::Open(path);
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing.value().index_rebuilt());
  EventStream expected = stream;
  expected.insert(expected.end(), stream.begin(), stream.end());
  EXPECT_EQ(missing.value().ScanAll().value(), expected);
}

TEST(ArchiveTest, CorruptBlockPayloadIsDetected) {
  const std::string path = TempPath("bitrot.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(40);
  ArchiveOptions options;
  options.block_events = 32;
  auto writer = ArchiveWriter::Open(path, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(stream).ok());
  ASSERT_TRUE(writer.value()->Close().ok());
  const BlockMeta middle =
      writer.value()->num_blocks() > 2
          ? ArchiveReader::Open(path).value().blocks()[2]
          : BlockMeta{};
  ASSERT_GT(middle.offset, 0u);

  // Flip one payload byte of a middle block.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    const std::streamoff payload_start =
        static_cast<std::streamoff>(middle.offset) +
        static_cast<std::streamoff>(kBlockHeaderBytesV2);
    file.seekp(payload_start);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(payload_start);
    byte = static_cast<char>(byte ^ 0xff);
    file.write(&byte, 1);
  }
  // The sidecar still matches the file size, so Open succeeds; the scan
  // hits the checksum.
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto scanned = reader.value().ScanAll();
  ASSERT_FALSE(scanned.ok());
  EXPECT_EQ(scanned.status().code(), StatusCode::kCorruption);

  // Writer recovery truncates at the corrupt block.
  auto recovered = ArchiveWriter::Open(path, options);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value()->num_blocks(), 2u);
  EXPECT_GT(recovered.value()->recovery().truncated_bytes, 0u);
}

/// Writes `stream` in 32-event bitpack blocks (the scan-optimized codec the
/// corruption-injection tests below should cover) and returns the sealed
/// block directory (via a fresh reader).
std::vector<BlockMeta> WriteStandardSegment(const std::string& path,
                                            const EventStream& stream) {
  ArchiveOptions options;
  options.block_events = 32;
  options.codec = BlockCodec::kBitpack;
  auto writer = ArchiveWriter::Open(path, options);
  EXPECT_TRUE(writer.ok());
  EXPECT_TRUE(writer.value()->Append(stream).ok());
  EXPECT_TRUE(writer.value()->Close().ok());
  auto reader = ArchiveReader::Open(path);
  EXPECT_TRUE(reader.ok());
  return reader.value().blocks();
}

/// Overwrites 8 bytes at `field_offset` inside the v2 block header at
/// `block_offset` and re-stamps the header CRC, so only semantic validation
/// can reject the block.
void PatchHeaderField(const std::string& path, std::uint64_t block_offset,
                      std::size_t field_offset, std::uint64_t value) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.good());
  std::uint8_t header[kBlockHeaderBytesV2] = {};
  file.seekg(static_cast<std::streamoff>(block_offset));
  file.read(reinterpret_cast<char*>(header), sizeof(header));
  ASSERT_TRUE(file.good());
  std::vector<std::uint8_t> le;
  PutLE64(value, &le);
  std::memcpy(header + field_offset, le.data(), 8);
  le.clear();
  PutLE32(Crc32(header, kBlockHeaderBytesV2 - 4), &le);
  std::memcpy(header + kBlockHeaderBytesV2 - 4, le.data(), 4);
  file.seekp(static_cast<std::streamoff>(block_offset));
  file.write(reinterpret_cast<const char*>(header), sizeof(header));
  ASSERT_TRUE(file.good());
}

TEST(ArchiveTest, SentinelEpochHeaderIsTreatedAsTornTail) {
  const std::string path = TempPath("sentinel.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(40);
  const std::vector<BlockMeta> blocks = WriteStandardSegment(path, stream);
  ASSERT_GT(blocks.size(), 3u);

  // Stamp kNeverEpoch into block 2's min-epoch field (header offset 8) with
  // a valid CRC — the shape a buggy writer would produce. The sentinel reads
  // back as a huge epoch, so if accepted it would defeat every range skip.
  PatchHeaderField(path, blocks[2].offset, 8,
                   static_cast<std::uint64_t>(kNeverEpoch));
  std::filesystem::remove(IndexPathFor(path));

  // The rebuild scan must stop at the poisoned block, not index it.
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader.value().index_rebuilt());
  EXPECT_EQ(reader.value().num_blocks(), 2u);
  EXPECT_TRUE(reader.value().ScanAll().ok());
}

TEST(ArchiveTest, HeaderEpochBoundsMustMatchDecodedEvents) {
  const std::string path = TempPath("bounds.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(40);
  const std::vector<BlockMeta> blocks = WriteStandardSegment(path, stream);
  ASSERT_GT(blocks.size(), 3u);

  // A plausible-looking but wrong max epoch (header offset 16) would make
  // range scans skip blocks that actually hold matching events. The rebuild
  // scan cross-checks decoded bounds and truncates there.
  PatchHeaderField(path, blocks[1].offset, 16,
                   static_cast<std::uint64_t>(blocks[1].max_epoch + 1000));
  std::filesystem::remove(IndexPathFor(path));

  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().num_blocks(), 1u);
}

TEST(ArchiveTest, IndexDetectsShrunkSegment) {
  const std::string path = TempPath("shrunk.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(40);
  const std::vector<BlockMeta> blocks = WriteStandardSegment(path, stream);
  ASSERT_GT(blocks.size(), 2u);

  // Shrink the segment to an exact block boundary — every remaining byte is
  // valid, so only the sidecar's covered-bytes accounting can notice that
  // it describes blocks past the end of the file.
  std::filesystem::resize_file(path, blocks.back().offset);

  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader.value().index_rebuilt());
  EXPECT_EQ(reader.value().num_blocks(), blocks.size() - 1);
  auto scanned = reader.value().ScanAll();
  ASSERT_TRUE(scanned.ok());
  // The surviving events are an exact prefix of the original stream.
  ASSERT_LT(scanned.value().size(), stream.size());
  EXPECT_TRUE(std::equal(scanned.value().begin(), scanned.value().end(),
                         stream.begin()));
}

TEST(ArchiveTest, IndexDetectsRewrittenTailOfSameSize) {
  const std::string path = TempPath("rewritten.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(40);
  const std::vector<BlockMeta> blocks = WriteStandardSegment(path, stream);
  ASSERT_GT(blocks.size(), 2u);

  // Rewrite the last block header in place (valid CRC, same file size, max
  // epoch nudged): a size-only staleness check would trust the sidecar and
  // serve the old directory over different bytes. The sidecar's tail
  // fingerprint (CRC of the last covered block header) catches it.
  PatchHeaderField(path, blocks.back().offset, 16,
                   static_cast<std::uint64_t>(blocks.back().max_epoch + 1));

  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader.value().index_rebuilt());
  // The rebuild scan then drops the tampered block (header bounds no longer
  // match the decoded events).
  EXPECT_EQ(reader.value().num_blocks(), blocks.size() - 1);
}

TEST(ArchiveTest, WriterDeletesSidecarWhileAppending) {
  const std::string path = TempPath("midappend.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(10);
  WriteStandardSegment(path, stream);
  ASSERT_TRUE(std::filesystem::exists(IndexPathFor(path)));

  // Between Open and Close the on-disk sidecar describes a stale prefix —
  // and a crash here must not leave it behind for a reader to trust.
  ArchiveOptions options;
  options.block_events = 32;
  auto writer = ArchiveWriter::Open(path, options);
  ASSERT_TRUE(writer.ok());
  EXPECT_FALSE(std::filesystem::exists(IndexPathFor(path)));
  ASSERT_TRUE(writer.value()->Close().ok());
  EXPECT_TRUE(std::filesystem::exists(IndexPathFor(path)));
}

// ------------------------------------------------------- v1 compatibility --

TEST(ArchiveTest, WritesAndReadsV1Segments) {
  const std::string path = TempPath("v1.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(10);

  ArchiveOptions options;
  options.block_events = 32;
  options.format_version = kArchiveVersionV1;
  options.codec = BlockCodec::kBitpack;  // Must be coerced: v1 is varint-only.
  {
    auto writer = ArchiveWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ(writer.value()->format_version(), kArchiveVersionV1);
    EXPECT_EQ(writer.value()->codec(), BlockCodec::kVarint);
    ASSERT_TRUE(writer.value()->Append(stream).ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  {
    // The file header says version 1.
    std::ifstream in(path, std::ios::binary);
    std::uint8_t header[kArchiveHeaderBytes] = {};
    in.read(reinterpret_cast<char*>(header), sizeof(header));
    ASSERT_TRUE(in.good());
    EXPECT_EQ(GetLE16(header + 4), kArchiveVersionV1);
  }
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().format_version(), kArchiveVersionV1);
  EXPECT_FALSE(reader.value().index_rebuilt());
  for (const BlockMeta& block : reader.value().blocks()) {
    EXPECT_EQ(block.codec, BlockCodec::kVarint);
  }
  EXPECT_EQ(reader.value().ScanAll().value(), stream);

  // Appending to a v1 segment keeps it v1 (and varint) even when the
  // options ask for v2 bitpack.
  {
    ArchiveOptions v2_options;
    v2_options.codec = BlockCodec::kBitpack;
    auto writer = ArchiveWriter::Open(path, v2_options);
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ(writer.value()->format_version(), kArchiveVersionV1);
    EXPECT_EQ(writer.value()->codec(), BlockCodec::kVarint);
    ASSERT_TRUE(writer.value()->Append(stream).ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  auto reopened = ArchiveReader::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().num_events(), 2 * stream.size());
}

TEST(ArchiveTest, TranscodesV1ToV2Bitpack) {
  const std::string v1_path = TempPath("transcode_v1.sparc");
  const std::string v2_path = TempPath("transcode_v2.sparc");
  RemoveArchive(v1_path);
  RemoveArchive(v2_path);
  const EventStream stream = LongStream(20);

  ArchiveOptions v1_options;
  v1_options.block_events = 32;
  v1_options.format_version = kArchiveVersionV1;
  auto v1_writer = ArchiveWriter::Open(v1_path, v1_options);
  ASSERT_TRUE(v1_writer.ok());
  ASSERT_TRUE(v1_writer.value()->Append(stream).ok());
  ASSERT_TRUE(v1_writer.value()->Close().ok());

  // The compaction shape: decode the v1 segment, re-archive as v2 bitpack.
  auto v1_reader = ArchiveReader::Open(v1_path);
  ASSERT_TRUE(v1_reader.ok());
  auto events = v1_reader.value().ScanAll();
  ASSERT_TRUE(events.ok());
  ArchiveOptions v2_options;
  v2_options.block_events = 32;
  v2_options.codec = BlockCodec::kBitpack;
  auto v2_writer = ArchiveWriter::Open(v2_path, v2_options);
  ASSERT_TRUE(v2_writer.ok());
  ASSERT_TRUE(v2_writer.value()->Append(events.value()).ok());
  ASSERT_TRUE(v2_writer.value()->Close().ok());

  auto v2_reader = ArchiveReader::Open(v2_path);
  ASSERT_TRUE(v2_reader.ok());
  EXPECT_EQ(v2_reader.value().format_version(), kArchiveVersion);
  for (const BlockMeta& block : v2_reader.value().blocks()) {
    EXPECT_EQ(block.codec, BlockCodec::kBitpack);
  }
  EXPECT_EQ(v2_reader.value().ScanAll().value(), stream);
}

// --------------------------------------------------------- mmap vs buffered --

TEST(ArchiveTest, MmapAndBufferedScansAgree) {
  const std::string path = TempPath("mmap.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(40);
  WriteStandardSegment(path, stream);

  ReaderOptions mapped_options;
  mapped_options.use_mmap = true;
  ReaderOptions buffered_options;
  buffered_options.use_mmap = false;
  auto mapped = ArchiveReader::Open(path, mapped_options);
  auto buffered = ArchiveReader::Open(path, buffered_options);
  ASSERT_TRUE(mapped.ok());
  ASSERT_TRUE(buffered.ok());
  EXPECT_TRUE(mapped.value().mapped());
  EXPECT_FALSE(buffered.value().mapped());

  const auto all_mapped = mapped.value().ScanAll();
  const auto all_buffered = buffered.value().ScanAll();
  ASSERT_TRUE(all_mapped.ok());
  ASSERT_TRUE(all_buffered.ok());
  EXPECT_EQ(all_mapped.value(), stream);
  EXPECT_EQ(all_mapped.value(), all_buffered.value());

  EXPECT_EQ(mapped.value().ScanRange(150, 430).value(),
            buffered.value().ScanRange(150, 430).value());
  EXPECT_EQ(mapped.value().ScanObject(kItem).value(),
            buffered.value().ScanObject(kItem).value());

  // The epoch column equals PrimaryEpoch mapped over the full scan, on
  // both paths.
  const auto epochs_mapped = mapped.value().ScanEpochColumn();
  const auto epochs_buffered = buffered.value().ScanEpochColumn();
  ASSERT_TRUE(epochs_mapped.ok());
  ASSERT_TRUE(epochs_buffered.ok());
  ASSERT_EQ(epochs_mapped.value().size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(epochs_mapped.value()[i], PrimaryEpoch(stream[i]));
  }
  EXPECT_EQ(epochs_mapped.value(), epochs_buffered.value());
}

TEST(ArchiveTest, RejectsGarbageFiles) {
  EXPECT_FALSE(ArchiveReader::Open("/nonexistent/nowhere.sparc").ok());
  const std::string path = TempPath("garbage.sparc");
  RemoveArchive(path);
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not an archive";
  }
  EXPECT_FALSE(ArchiveReader::Open(path).ok());
  EXPECT_FALSE(ArchiveWriter::Open(path).ok());
}

TEST(ArchiveTest, RepairedRestrictedStreamIsWellFormed) {
  const std::string path = TempPath("repair.sparc");
  RemoveArchive(path);
  const EventStream stream = LongStream(40);
  ArchiveOptions options;
  options.block_events = 32;
  auto writer = ArchiveWriter::Open(path, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(stream).ok());
  ASSERT_TRUE(writer.value()->Close().ok());

  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto ranged = reader.value().ScanRange(135, 460);
  ASSERT_TRUE(ranged.ok());
  // The raw selection opens with unmatched End messages...
  EXPECT_FALSE(
      ValidateWellFormed(ranged.value(), /*allow_open_at_end=*/true).ok());
  // ...and the repair re-materializes their Starts.
  EXPECT_TRUE(ValidateWellFormed(RepairRestrictedStream(ranged.value()),
                                 /*allow_open_at_end=*/true)
                  .ok());
}

// -------------------------------------------------------------- end to end --

/// Runs the pipeline over a simulated trace with the archive attached as a
/// sink, returning the in-memory output stream.
EventStream RunPipelineWithArchive(const SimConfig& config,
                                   CompressionLevel level,
                                   ArchiveWriter* archive) {
  auto sim = WarehouseSimulator::Create(config);
  EXPECT_TRUE(sim.ok());
  WarehouseSimulator& s = *sim.value();
  PipelineOptions options;
  options.level = level;
  SpirePipeline pipeline(&s.registry(), options);
  pipeline.SetArchiveSink(archive);
  EventStream events;
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &events);
  }
  pipeline.Finish(s.current_epoch() + 1, &events);
  EXPECT_TRUE(pipeline.archive_status().ok())
      << pipeline.archive_status().ToString();
  return events;
}

TEST(ArchiveEndToEndTest, SimulatorScenariosRoundTripLossless) {
  SimConfig small;
  small.duration_epochs = 900;
  small.pallet_interval = 300;
  small.min_cases_per_pallet = 2;
  small.max_cases_per_pallet = 3;
  small.items_per_case = 4;
  small.mean_shelf_stay = 300;
  small.shelf_period = 20;
  small.read_rate = 0.9;

  SimConfig lossy = small;
  lossy.read_rate = 0.6;

  int scenario = 0;
  for (const SimConfig& config : {small, lossy}) {
    for (CompressionLevel level :
         {CompressionLevel::kLevel1, CompressionLevel::kLevel2}) {
      const std::string path =
          TempPath("e2e_" + std::to_string(scenario) + ".sparc");
      RemoveArchive(path);
      ArchiveOptions options;
      options.block_events = 256;
      // Alternate codecs so the end-to-end scenarios cover both.
      options.codec = scenario % 2 == 0 ? BlockCodec::kVarint
                                        : BlockCodec::kBitpack;
      ++scenario;
      auto writer = ArchiveWriter::Open(path, options);
      ASSERT_TRUE(writer.ok());
      EventStream events =
          RunPipelineWithArchive(config, level, writer.value().get());
      ASSERT_TRUE(writer.value()->Close().ok());

      auto reader = ArchiveReader::Open(path);
      ASSERT_TRUE(reader.ok());
      auto scanned = reader.value().ScanAll();
      ASSERT_TRUE(scanned.ok());
      EXPECT_EQ(scanned.value(), events);  // Lossless round trip.

      // Time-range scan == filtered full decode, on a middle window.
      const Epoch lo = 300;
      const Epoch hi = 500;
      auto ranged = reader.value().ScanRange(lo, hi);
      ASSERT_TRUE(ranged.ok());
      EXPECT_EQ(ranged.value(), FilterByPrimary(events, lo, hi));
    }
  }
}

TEST(ArchiveEndToEndTest, ArchiveIsSmallerThanFlatRecords) {
  SimConfig config;
  config.duration_epochs = 900;
  config.pallet_interval = 300;
  config.items_per_case = 4;
  config.mean_shelf_stay = 300;
  config.shelf_period = 20;
  config.read_rate = 0.9;

  const std::string path = TempPath("size.sparc");
  RemoveArchive(path);
  auto writer = ArchiveWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  EventStream events = RunPipelineWithArchive(
      config, CompressionLevel::kLevel2, writer.value().get());
  ASSERT_TRUE(writer.value()->Close().ok());
  ASSERT_GT(events.size(), 100u);

  // The acceptance target: at most half of the flat 26-byte records.
  EXPECT_LE(writer.value()->segment_bytes(),
            events.size() * kEventWireBytes / 2);
}

}  // namespace
}  // namespace spire
