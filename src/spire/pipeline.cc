#include "spire/pipeline.h"

#include <algorithm>
#include <chrono>

#include "store/archive_writer.h"

namespace spire {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

SpirePipeline::SpirePipeline(const ReaderRegistry* registry,
                             PipelineOptions options)
    : registry_(registry),
      options_(options),
      graph_(options.history_size),
      updater_(&graph_, registry),
      inference_(&graph_, options.inference, registry),
      schedule_(InferenceSchedule::FromRegistry(*registry)) {
  if (options_.level == CompressionLevel::kLevel1) {
    compressor_ = std::make_unique<RangeCompressor>(options_.compressor);
  } else {
    compressor_ = std::make_unique<ContainmentCompressor>(options_.compressor);
  }
  if (options_.suppress_warmup_output) {
    for (const ReaderInfo& reader : registry_->readers()) {
      if (reader.type == ReaderType::kEntryDoor) {
        warmup_locations_.push_back(reader.location);
      }
    }
  }
}

bool SpirePipeline::IsWarmupLocation(LocationId location) const {
  return std::find(warmup_locations_.begin(), warmup_locations_.end(),
                   location) != warmup_locations_.end();
}

bool SpirePipeline::IsRetired(ObjectId id, Epoch epoch) const {
  auto it = retired_.find(id);
  return it != retired_.end() &&
         epoch - it->second <= options_.exit_grace_epochs;
}

void SpirePipeline::MirrorToArchive(const EventStream& out,
                                    std::size_t first) {
  if (archive_ == nullptr || !archive_status_.ok()) return;
  for (std::size_t i = first; i < out.size(); ++i) {
    Status status = archive_->Append(out[i]);
    if (!status.ok()) {
      archive_status_ = status;
      return;
    }
  }
}

void SpirePipeline::ProcessEpoch(Epoch epoch, EpochReadings readings,
                                 EventStream* out) {
  ++epochs_processed_;
  const std::size_t first_output = out->size();

  // Device-level cleaning: deduplicate multi-reader/multi-tick readings and
  // drop readings of objects inside their exit grace window.
  Deduplicate(&readings);
  std::erase_if(readings, [&](const RfidReading& r) {
    return IsRetired(r.tag, epoch);
  });
  EpochBatch batch = GroupByReader(readings, epoch);

  // Data capture: stream-driven graph update.
  auto t0 = std::chrono::steady_clock::now();
  updater_.ApplyEpoch(batch);
  last_costs_.update_seconds = SecondsSince(t0);

  // Interpretation: complete inference when every reader group read this
  // epoch, partial inference otherwise; then conflict resolution.
  auto t1 = std::chrono::steady_clock::now();
  const bool complete =
      options_.inference_mode == InferenceMode::kAlwaysComplete ||
      schedule_.IsCompleteEpoch(epoch);
  if (complete) {
    last_result_ = inference_.RunComplete(epoch);
  } else if (options_.inference_mode == InferenceMode::kCompleteOnly) {
    last_result_ = InferenceResult{};
    last_result_.epoch = epoch;
  } else {
    last_result_ = inference_.RunPartial(epoch);
  }
  if (options_.resolve_conflicts) ResolveConflicts(&last_result_);
  last_costs_.inference_seconds = SecondsSince(t1);
  total_costs_.update_seconds += last_costs_.update_seconds;
  total_costs_.inference_seconds += last_costs_.inference_seconds;

  // Proper exits: close the objects' events and drop their nodes.
  for (ObjectId id : updater_.exited_this_epoch()) {
    // Report the exit-door sighting first so the output stream (like the
    // physical truth) shows the stay at the exit before it closes. The exit
    // ends any containment, which also resumes the object's own location
    // output under level-2 compression — otherwise the final stay of a
    // contained object would be unrecoverable once its container retires.
    auto it = last_result_.estimates.find(id);
    if (it != last_result_.estimates.end() && !it->second.withheld) {
      ObjectStateEstimate state;
      state.object = id;
      state.location = it->second.location;
      state.container = kNoObject;
      compressor_->Report(state, epoch, out);
      last_result_.estimates.erase(it);
    }
    compressor_->Retire(id, epoch, out);
    graph_.RemoveNode(id);
    retired_[id] = epoch;
  }

  // Output: report every non-withheld estimate; the compressor discards
  // everything that does not change the reported state.
  std::vector<ObjectId> ids;
  ids.reserve(last_result_.estimates.size());
  for (const auto& [id, estimate] : last_result_.estimates) {
    if (estimate.withheld) continue;
    // No inference output for objects in the warm-up (entry door) area.
    if (IsWarmupLocation(estimate.location)) continue;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (ObjectId id : ids) {
    const ObjectEstimate& estimate = last_result_.estimates.at(id);
    ObjectStateEstimate state;
    state.object = id;
    state.location = estimate.location;
    state.container = estimate.container;
    compressor_->Report(state, epoch, out);
  }

  // Expire old entries of the retirement set to bound its size.
  if (epochs_processed_ % 1024 == 0) {
    std::erase_if(retired_, [&](const auto& entry) {
      return epoch - entry.second > options_.exit_grace_epochs;
    });
  }

  MirrorToArchive(*out, first_output);
}

void SpirePipeline::Finish(Epoch epoch, EventStream* out) {
  const std::size_t first_output = out->size();
  compressor_->Finish(epoch, out);
  MirrorToArchive(*out, first_output);
}

}  // namespace spire
