#include "store/format.h"

#include "store/crc32.h"
#include "store/little_endian.h"

namespace spire {

const char* ToString(BlockCodec codec) {
  switch (codec) {
    case BlockCodec::kVarint:
      return "varint";
    case BlockCodec::kBitpack:
      return "bitpack";
  }
  return "unknown";
}

Result<BlockHeader> ParseBlockHeader(const std::uint8_t* bytes,
                                     std::uint16_t version) {
  const std::size_t size = BlockHeaderBytes(version);
  if (GetLE32(bytes) != kArchiveBlockMarker) {
    return Status::Corruption("bad block marker");
  }
  if (Crc32(bytes, size - 4) != GetLE32(bytes + size - 4)) {
    return Status::Corruption("block header checksum mismatch");
  }
  BlockHeader header;
  header.count = GetLE32(bytes + 4);
  header.min_epoch = static_cast<Epoch>(GetLE64(bytes + 8));
  header.max_epoch = static_cast<Epoch>(GetLE64(bytes + 16));
  header.payload_size = GetLE32(bytes + 24);
  header.payload_crc = GetLE32(bytes + 28);
  if (version >= kArchiveVersion) {
    const std::uint32_t codec_word = GetLE32(bytes + 32);
    if (codec_word > 0xff || !KnownBlockCodec(
                                 static_cast<std::uint8_t>(codec_word))) {
      return Status::Corruption("unknown block codec id");
    }
    header.codec = static_cast<BlockCodec>(codec_word);
  }
  if (header.count == 0) {
    return Status::Corruption("empty block");
  }
  if (header.payload_size > kMaxBlockPayloadBytes) {
    return Status::Corruption("block payload size out of bounds");
  }
  // A sealed block's epoch bounds come from >= 1 validated events, so the
  // kNeverEpoch sentinel (huge when read unsigned, negative as an Epoch)
  // and inverted ranges can only mean corruption — and either would defeat
  // the range-scan skip test if let through.
  if (header.min_epoch < 0 || header.max_epoch < header.min_epoch) {
    return Status::Corruption("block epoch range invalid");
  }
  return header;
}

void AppendBlockHeader(const BlockHeader& header, std::uint16_t version,
                       std::vector<std::uint8_t>* out) {
  const std::size_t start = out->size();
  PutLE32(kArchiveBlockMarker, out);
  PutLE32(header.count, out);
  PutLE64(static_cast<std::uint64_t>(header.min_epoch), out);
  PutLE64(static_cast<std::uint64_t>(header.max_epoch), out);
  PutLE32(header.payload_size, out);
  PutLE32(header.payload_crc, out);
  if (version >= kArchiveVersion) {
    PutLE32(static_cast<std::uint32_t>(header.codec), out);
  }
  PutLE32(Crc32(out->data() + start, out->size() - start), out);
}

}  // namespace spire
