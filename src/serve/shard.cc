#include "serve/shard.h"

#include <chrono>
#include <string>

#include "common/log.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace spire::serve {

namespace {

/// Global "serve" module aggregates across all shards of the process
/// (the per-run numbers live in ShardMetrics).
struct GlobalInstruments {
  obs::Counter* epochs;
  obs::Counter* events;
  obs::Counter* readings;
  obs::Histogram* process_latency;
};

const GlobalInstruments* GetGlobalInstruments() {
  if (!obs::Enabled()) return nullptr;
  auto& registry = obs::Registry::Global();
  static const GlobalInstruments instruments{
      registry.GetCounter("serve", "shard_epochs"),
      registry.GetCounter("serve", "shard_events"),
      registry.GetCounter("serve", "shard_readings"),
      registry.GetHistogram("serve", "shard_process_latency"),
  };
  return &instruments;
}

std::uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// Shifts a site-local event into the global location id space.
void RemapLocations(EventStream* events, std::size_t first,
                    LocationId offset) {
  if (offset == 0) return;
  for (std::size_t i = first; i < events->size(); ++i) {
    Event& event = (*events)[i];
    if (event.location != kUnknownLocation) {
      event.location = static_cast<LocationId>(event.location + offset);
    }
  }
}

}  // namespace

PipelineShard::PipelineShard(int shard_id, const Workload* workload,
                             std::vector<int> sites,
                             const PipelineOptions& options,
                             std::size_t queue_capacity, ShardMetrics* metrics)
    : shard_id_(shard_id),
      metrics_(metrics),
      input_(queue_capacity, metrics != nullptr ? &metrics->input_queue
                                                : nullptr),
      output_(queue_capacity, metrics != nullptr ? &metrics->output_queue
                                                 : nullptr) {
  sites_.reserve(sites.size());
  for (int site : sites) {
    const SiteWorkload& s = workload->sites[static_cast<std::size_t>(site)];
    SiteState state;
    state.site = site;
    state.location_offset = s.location_offset;
    state.pipeline = std::make_unique<SpirePipeline>(&s.registry, options);
    sites_.push_back(std::move(state));
  }
}

PipelineShard::~PipelineShard() {
  // Closing both queues unblocks the worker wherever it is stuck (waiting
  // for input or pushing into a full, undrained output).
  input_.Close();
  output_.Close();
  Join();
}

void PipelineShard::Start() {
  thread_ = std::thread([this] { Run(); });
}

void PipelineShard::Join() {
  if (thread_.joinable()) thread_.join();
}

void PipelineShard::Run() {
  LogDebug("serve", "shard " + std::to_string(shard_id_) + " running " +
                        std::to_string(sites_.size()) + " site pipeline(s)");
  while (std::optional<EpochWork> work = input_.Pop()) {
    obs::ScopedSpan round_span("serve", "shard_epoch", work->epoch);
    const auto round_start = std::chrono::steady_clock::now();
    std::size_t readings = 0;
    std::size_t events = 0;
    // One batch per owned site, ascending — work->site_readings comes from
    // the router in that order and FIFO queues preserve it for the merger.
    for (auto& [site, site_readings] : work->site_readings) {
      SiteState* state = nullptr;
      for (SiteState& candidate : sites_) {
        if (candidate.site == site) {
          state = &candidate;
          break;
        }
      }
      if (state == nullptr) continue;  // Misrouted site: drop, not crash.
      SiteBatch batch;
      batch.epoch = work->epoch;
      batch.site = site;
      batch.finish = work->finish;
      readings += site_readings.size();
      if (work->finish) {
        state->pipeline->Finish(work->epoch, &batch.events);
      } else {
        state->pipeline->ProcessEpoch(work->epoch, std::move(site_readings),
                                      &batch.events);
      }
      RemapLocations(&batch.events, 0, state->location_offset);
      if (metrics_ != nullptr && !work->finish) {
        const EpochCosts& costs = state->pipeline->last_costs();
        metrics_->update_us.Add(
            static_cast<std::uint64_t>(costs.update_seconds * 1e6));
        metrics_->inference_us.Add(
            static_cast<std::uint64_t>(costs.inference_seconds * 1e6));
      }
      events += batch.events.size();
      if (!output_.Push(std::move(batch))) {
        // Output closed (abort path): stop producing.
        input_.Close();
        output_.Close();
        return;
      }
    }
    const std::uint64_t us = MicrosSince(round_start);
    if (metrics_ != nullptr) {
      metrics_->busy_us.Add(us);
      metrics_->process_latency.Record(us);
      metrics_->readings.Add(readings);
      metrics_->events.Add(events);
      if (!work->finish) metrics_->epochs.Add(1);
    }
    if (const GlobalInstruments* global = GetGlobalInstruments()) {
      global->process_latency->Record(us);
      global->readings->Add(readings);
      global->events->Add(events);
      if (!work->finish) global->epochs->Add(1);
    }
  }
  output_.Close();
}

}  // namespace spire::serve
