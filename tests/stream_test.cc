// Unit tests for src/stream: reader registry, deduplication, epoch batching.
#include <gtest/gtest.h>

#include "common/epc.h"
#include "stream/dedup.h"
#include "stream/epoch_stream.h"
#include "stream/reader.h"
#include "stream/reading.h"

namespace spire {
namespace {

ObjectId Tag(std::uint32_t serial) {
  EpcFields fields;
  fields.level = PackagingLevel::kItem;
  fields.serial = serial;
  return EncodeEpcUnchecked(fields);
}

RfidReading MakeReading(std::uint32_t serial, ReaderId reader, Epoch epoch,
                        std::uint16_t tick = 0) {
  RfidReading r;
  r.tag = Tag(serial);
  r.reader = reader;
  r.epoch = epoch;
  r.tick = tick;
  return r;
}

// -------------------------------------------------------- ReaderRegistry --

class ReaderRegistryTest : public ::testing::Test {
 protected:
  ReaderRegistry registry_;
};

TEST_F(ReaderRegistryTest, AddAndLookup) {
  LocationId dock = registry_.AddLocation("dock");
  ReaderInfo info;
  info.id = 0;
  info.location = dock;
  info.type = ReaderType::kEntryDoor;
  info.period_epochs = 1;
  info.name = "door";
  ASSERT_TRUE(registry_.AddReader(info).ok());

  auto fetched = registry_.GetReader(0);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value().name, "door");
  EXPECT_EQ(registry_.LocationOf(0), dock);
  EXPECT_EQ(registry_.LocationName(dock), "dock");
}

TEST_F(ReaderRegistryTest, RejectsSparseIds) {
  registry_.AddLocation("a");
  ReaderInfo info;
  info.id = 5;  // Not the next dense id.
  info.location = 0;
  EXPECT_FALSE(registry_.AddReader(info).ok());
}

TEST_F(ReaderRegistryTest, RejectsUnknownLocation) {
  ReaderInfo info;
  info.id = 0;
  info.location = 3;  // Never registered.
  EXPECT_FALSE(registry_.AddReader(info).ok());
}

TEST_F(ReaderRegistryTest, RejectsNonPositivePeriod) {
  registry_.AddLocation("a");
  ReaderInfo info;
  info.id = 0;
  info.location = 0;
  info.period_epochs = 0;
  EXPECT_FALSE(registry_.AddReader(info).ok());
}

TEST_F(ReaderRegistryTest, UnknownLookups) {
  EXPECT_FALSE(registry_.GetReader(9).ok());
  EXPECT_EQ(registry_.LocationOf(9), kUnknownLocation);
  EXPECT_EQ(registry_.LocationName(kUnknownLocation), "unknown");
  EXPECT_EQ(registry_.LocationName(250), "invalid");
}

TEST_F(ReaderRegistryTest, ReadsInEpochFollowsPeriod) {
  LocationId shelf = registry_.AddLocation("shelf");
  ReaderInfo info;
  info.id = 0;
  info.location = shelf;
  info.period_epochs = 10;
  ASSERT_TRUE(registry_.AddReader(info).ok());
  EXPECT_TRUE(registry_.ReadsInEpoch(0, 0));
  EXPECT_FALSE(registry_.ReadsInEpoch(0, 5));
  EXPECT_TRUE(registry_.ReadsInEpoch(0, 20));
  EXPECT_FALSE(registry_.ReadsInEpoch(9, 0));  // Unknown reader.
}

TEST_F(ReaderRegistryTest, PeriodLcm) {
  EXPECT_EQ(registry_.PeriodLcm(), 1);  // Empty registry.
  LocationId a = registry_.AddLocation("a");
  LocationId b = registry_.AddLocation("b");
  ReaderInfo fast;
  fast.id = 0;
  fast.location = a;
  fast.period_epochs = 4;
  ReaderInfo slow;
  slow.id = 1;
  slow.location = b;
  slow.period_epochs = 6;
  ASSERT_TRUE(registry_.AddReader(fast).ok());
  ASSERT_TRUE(registry_.AddReader(slow).ok());
  EXPECT_EQ(registry_.PeriodLcm(), 12);
}

TEST(ReaderTypeTest, SpecialAndExitClassification) {
  EXPECT_TRUE(IsSpecialReader(ReaderType::kReceivingBelt));
  EXPECT_TRUE(IsSpecialReader(ReaderType::kOutgoingBelt));
  EXPECT_FALSE(IsSpecialReader(ReaderType::kShelf));
  EXPECT_FALSE(IsSpecialReader(ReaderType::kEntryDoor));
  EXPECT_TRUE(IsExitReader(ReaderType::kExitDoor));
  EXPECT_FALSE(IsExitReader(ReaderType::kReceivingBelt));
}

TEST(ReaderTypeTest, Names) {
  EXPECT_STREQ(ToString(ReaderType::kEntryDoor), "entry_door");
  EXPECT_STREQ(ToString(ReaderType::kShelf), "shelf");
  EXPECT_STREQ(ToString(ReaderType::kExitDoor), "exit_door");
}

// ----------------------------------------------------------------- Dedup --

TEST(DedupTest, EmptyAndSingleton) {
  EpochReadings readings;
  DedupStats stats = Deduplicate(&readings);
  EXPECT_EQ(stats.input_readings, 0u);
  EXPECT_EQ(stats.duplicates_dropped, 0u);

  readings.push_back(MakeReading(1, 0, 5));
  stats = Deduplicate(&readings);
  EXPECT_EQ(stats.input_readings, 1u);
  EXPECT_EQ(readings.size(), 1u);
}

TEST(DedupTest, KeepsMostRecentTickAcrossReaders) {
  EpochReadings readings{
      MakeReading(1, 0, 5, 0),
      MakeReading(1, 1, 5, 3),  // Most recent interrogation wins.
      MakeReading(1, 2, 5, 1),
  };
  DedupStats stats = Deduplicate(&readings);
  EXPECT_EQ(stats.duplicates_dropped, 2u);
  ASSERT_EQ(readings.size(), 1u);
  EXPECT_EQ(readings[0].reader, 1);
  EXPECT_EQ(readings[0].tick, 3);
}

TEST(DedupTest, TieBreaksTowardLaterArrival) {
  EpochReadings readings{
      MakeReading(1, 0, 5, 2),
      MakeReading(1, 1, 5, 2),  // Same tick, arrived later.
  };
  Deduplicate(&readings);
  ASSERT_EQ(readings.size(), 1u);
  EXPECT_EQ(readings[0].reader, 1);
}

TEST(DedupTest, DistinctTagsUntouched) {
  EpochReadings readings{
      MakeReading(1, 0, 5),
      MakeReading(2, 0, 5),
      MakeReading(3, 1, 5),
  };
  DedupStats stats = Deduplicate(&readings);
  EXPECT_EQ(stats.duplicates_dropped, 0u);
  EXPECT_EQ(readings.size(), 3u);
}

TEST(DedupTest, PreservesArrivalOrderOfSurvivors) {
  EpochReadings readings{
      MakeReading(3, 0, 5),
      MakeReading(1, 0, 5, 0),
      MakeReading(2, 0, 5),
      MakeReading(1, 1, 5, 4),
  };
  Deduplicate(&readings);
  ASSERT_EQ(readings.size(), 3u);
  EXPECT_EQ(readings[0].tag, Tag(3));
  EXPECT_EQ(readings[1].tag, Tag(2));
  EXPECT_EQ(readings[2].tag, Tag(1));
  EXPECT_EQ(readings[2].reader, 1);
}

TEST(DedupTest, EqualTickTiesKeepLaterArrivalPerTag) {
  // The graph updater depends on both halves of the tie rule at once: with
  // every tick equal, each tag keeps its last-arriving reading (the reader
  // that interrogated it most recently), and the winners come out in their
  // original relative arrival order.
  EpochReadings readings{
      MakeReading(1, 0, 5, 2),
      MakeReading(2, 0, 5, 2),
      MakeReading(1, 1, 5, 2),  // Tag 1's later arrival: reader 1 wins.
      MakeReading(3, 1, 5, 2),
      MakeReading(2, 2, 5, 2),  // Tag 2's later arrival: reader 2 wins.
      MakeReading(1, 2, 5, 2),  // Tag 1's latest arrival: reader 2 wins.
  };
  DedupStats stats = Deduplicate(&readings);
  EXPECT_EQ(stats.duplicates_dropped, 3u);
  ASSERT_EQ(readings.size(), 3u);
  // Winner order follows the surviving readings' arrival positions.
  EXPECT_EQ(readings[0].tag, Tag(3));
  EXPECT_EQ(readings[1].tag, Tag(2));
  EXPECT_EQ(readings[1].reader, 2);
  EXPECT_EQ(readings[2].tag, Tag(1));
  EXPECT_EQ(readings[2].reader, 2);
}

TEST(DedupTest, ManyDuplicatesOneSurvivor) {
  EpochReadings readings;
  for (std::uint16_t tick = 0; tick < 50; ++tick) {
    readings.push_back(MakeReading(7, tick % 3, 9, tick));
  }
  DedupStats stats = Deduplicate(&readings);
  EXPECT_EQ(stats.input_readings, 50u);
  EXPECT_EQ(stats.duplicates_dropped, 49u);
  ASSERT_EQ(readings.size(), 1u);
  EXPECT_EQ(readings[0].tick, 49);
}

// --------------------------------------------------------- GroupByReader --

TEST(GroupByReaderTest, GroupsInFirstAppearanceOrder) {
  EpochReadings readings{
      MakeReading(1, 2, 7),
      MakeReading(2, 0, 7),
      MakeReading(3, 2, 7),
      MakeReading(4, 1, 7),
  };
  EpochBatch batch = GroupByReader(readings, 7);
  EXPECT_EQ(batch.epoch, 7);
  ASSERT_EQ(batch.per_reader.size(), 3u);
  EXPECT_EQ(batch.per_reader[0].reader, 2);
  EXPECT_EQ(batch.per_reader[0].tags.size(), 2u);
  EXPECT_EQ(batch.per_reader[1].reader, 0);
  EXPECT_EQ(batch.per_reader[2].reader, 1);
  EXPECT_EQ(batch.TotalReadings(), 4u);
}

TEST(GroupByReaderTest, EmptyInput) {
  EpochBatch batch = GroupByReader({}, 3);
  EXPECT_EQ(batch.epoch, 3);
  EXPECT_TRUE(batch.per_reader.empty());
  EXPECT_EQ(batch.TotalReadings(), 0u);
}

TEST(GroupByReaderTest, TagOrderWithinReaderPreserved) {
  EpochReadings readings{
      MakeReading(5, 0, 2),
      MakeReading(4, 0, 2),
      MakeReading(6, 0, 2),
  };
  EpochBatch batch = GroupByReader(readings, 2);
  ASSERT_EQ(batch.per_reader.size(), 1u);
  ASSERT_EQ(batch.per_reader[0].tags.size(), 3u);
  EXPECT_EQ(batch.per_reader[0].tags[0], Tag(5));
  EXPECT_EQ(batch.per_reader[0].tags[1], Tag(4));
  EXPECT_EQ(batch.per_reader[0].tags[2], Tag(6));
}

}  // namespace
}  // namespace spire
