#include "inference/node_inference.h"

#include <cmath>
#include <map>

namespace spire {

double NodeInferencer::FadingAge(const Node& node, Epoch now) const {
  double age = static_cast<double>(now - node.seen_at);
  if (params_->normalize_age_by_reader_period &&
      node.recent_color < location_periods_.size()) {
    // Measure absence in missed reading opportunities: a silent slow reader
    // carries less evidence per epoch than a silent fast one.
    Epoch period = location_periods_[node.recent_color];
    if (period > 1) age /= static_cast<double>(period);
  }
  return age < 1.0 ? 1.0 : age;
}

NodeInferenceResult NodeInferencer::InferAt(const Node& node, Epoch now,
                                            const ColorOracle& color_of) const {
  const double gamma = params_->gamma;

  // Fading belief in the most recent color: 1 / (now - seen_at)^theta.
  // Nodes are created on first observation, so seen_at is always valid and
  // (now - seen_at) >= 1 for an uncolored node.
  double fade = 0.0;
  if (node.seen_at != kNeverEpoch && node.recent_color != kUnknownLocation) {
    fade = 1.0 / std::pow(FadingAge(node, now), params_->theta);
  }

  // Colors propagated through the edges: sum of edge probabilities per
  // color, normalized by Z2 over all propagating edges (Eq. 3).
  std::map<LocationId, double> propagated;
  double z2 = 0.0;
  auto consider = [&](EdgeId id, ObjectId neighbor_id) {
    const Node* neighbor = graph_->FindNode(neighbor_id);
    if (neighbor == nullptr) return;
    LocationId color = color_of(*neighbor);
    if (color == kUnknownLocation) return;
    const double p = edges_->ProbabilityOf(id);
    if (p <= 0.0) return;
    propagated[color] += p;
    z2 += p;
  };
  for (EdgeId id : node.parent_edges) {
    consider(id, graph_->edge(id).parent);
  }
  for (EdgeId id : node.child_edges) {
    consider(id, graph_->edge(id).child);
  }

  // Assemble the distribution. When no edge propagates a color, the gamma
  // mass is unavailable and the remaining terms are compared directly
  // (renormalization does not change the argmax).
  std::map<LocationId, double> scores;
  double total = 0.0;
  if (node.recent_color != kUnknownLocation) {
    scores[node.recent_color] += (1.0 - gamma) * fade;
  }
  double unknown_score = (1.0 - gamma) * (1.0 - fade);  // Eq. 4.
  if (z2 > 0.0) {
    for (const auto& [color, mass] : propagated) {
      scores[color] += gamma * mass / z2;
    }
  }
  for (const auto& [color, score] : scores) total += score;
  total += unknown_score;

  NodeInferenceResult result;
  result.location = kUnknownLocation;
  result.probability = unknown_score;
  for (const auto& [color, score] : scores) {
    if (score > result.probability) {
      result.runner_up = result.probability;
      result.probability = score;
      result.location = color;
    } else if (score > result.runner_up) {
      result.runner_up = score;
    }
  }
  if (total > 0.0) {
    result.probability /= total;
    result.runner_up /= total;
  }
  return result;
}

}  // namespace spire
