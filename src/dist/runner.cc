#include "dist/runner.h"

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "dist/node.h"
#include "dist/transport.h"

namespace spire::dist {

namespace {

int ClampNodes(int num_nodes, std::size_t num_sites) {
  const int max_nodes = static_cast<int>(num_sites);
  return std::max(1, std::min(num_nodes, max_nodes));
}

void RemapLocations(EventStream* events, std::size_t first,
                    LocationId offset) {
  if (offset == 0) return;
  for (std::size_t i = first; i < events->size(); ++i) {
    Event& event = (*events)[i];
    if (event.location != kUnknownLocation) {
      event.location = static_cast<LocationId>(event.location + offset);
    }
  }
}

}  // namespace

Result<serve::Workload> ToWorkload(const TransferTrace& trace) {
  serve::Workload workload;
  workload.num_epochs = trace.num_epochs;
  std::size_t next_location = 0;
  for (const SiteTrace& site : trace.sites) {
    serve::SiteWorkload sw;
    sw.name = site.name;
    sw.registry = site.layout.registry;
    sw.epochs = site.epochs;
    sw.total_readings = site.total_readings;
    sw.location_offset = static_cast<LocationId>(next_location);
    next_location += sw.registry.num_locations();
    if (next_location >= kUnknownLocation) {
      return Status::InvalidArgument(
          "combined site location spaces overflow LocationId");
    }
    workload.num_epochs = std::max(
        workload.num_epochs, static_cast<Epoch>(sw.epochs.size()));
    workload.sites.push_back(std::move(sw));
  }
  return workload;
}

EventStream RunDistReference(const serve::Workload& workload,
                             const std::vector<TransferHop>& hops,
                             const PipelineOptions& options) {
  std::vector<std::unique_ptr<SpirePipeline>> pipelines;
  pipelines.reserve(workload.sites.size());
  for (const serve::SiteWorkload& site : workload.sites) {
    pipelines.push_back(
        std::make_unique<SpirePipeline>(&site.registry, options));
  }

  // Captured objects per hop, and hop indexes by departure / arrival
  // epoch (schedule order) — the in-memory form of the wire handoff.
  std::vector<std::vector<ObjectHandoff>> captured(hops.size());
  std::map<std::pair<Epoch, int>, std::vector<std::size_t>> departures;
  std::map<std::pair<Epoch, int>, std::vector<std::size_t>> arrivals;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (hops[i].depart_epoch >= workload.num_epochs) continue;
    departures[{hops[i].depart_epoch, hops[i].from_site}].push_back(i);
    if (hops[i].arrive_epoch < workload.num_epochs) {
      arrivals[{hops[i].arrive_epoch, hops[i].to_site}].push_back(i);
    }
  }

  EventStream out;
  EventStream scratch;
  for (Epoch epoch = 0; epoch < workload.num_epochs; ++epoch) {
    for (std::size_t site = 0; site < workload.sites.size(); ++site) {
      const serve::SiteWorkload& sw = workload.sites[site];
      SpirePipeline& pipeline = *pipelines[site];

      auto arriving = arrivals.find({epoch, static_cast<int>(site)});
      if (arriving != arrivals.end()) {
        for (std::size_t hop_index : arriving->second) {
          for (const ObjectHandoff& handoff : captured[hop_index]) {
            pipeline.ImplantHandoff(handoff);
          }
        }
      }
      auto departing = departures.find({epoch, static_cast<int>(site)});
      if (departing != departures.end()) {
        for (std::size_t hop_index : departing->second) {
          pipeline.StageDeparture(hops[hop_index].objects,
                                  &captured[hop_index]);
        }
      }

      EpochReadings readings =
          epoch < static_cast<Epoch>(sw.epochs.size())
              ? sw.epochs[static_cast<std::size_t>(epoch)]
              : EpochReadings{};
      scratch.clear();
      pipeline.ProcessEpoch(epoch, std::move(readings), &scratch);
      RemapLocations(&scratch, 0, sw.location_offset);
      out.insert(out.end(), scratch.begin(), scratch.end());
    }
  }
  for (std::size_t site = 0; site < workload.sites.size(); ++site) {
    scratch.clear();
    pipelines[site]->Finish(workload.num_epochs, &scratch);
    RemapLocations(&scratch, 0, workload.sites[site].location_offset);
    out.insert(out.end(), scratch.begin(), scratch.end());
  }
  return out;
}

DistResult RunDistLoopback(const serve::Workload& workload,
                           const std::vector<TransferHop>& hops,
                           DistOptions options) {
  options.num_nodes = ClampNodes(options.num_nodes, workload.sites.size());
  const int num_nodes = options.num_nodes;

  std::vector<std::unique_ptr<Conn>> coordinator_ends;
  std::vector<std::unique_ptr<Conn>> node_ends;
  std::vector<Conn*> conns;
  for (int n = 0; n < num_nodes; ++n) {
    auto [coordinator_end, node_end] = MakeLoopbackPair();
    conns.push_back(coordinator_end.get());
    coordinator_ends.push_back(std::move(coordinator_end));
    node_ends.push_back(std::move(node_end));
  }

  std::vector<Status> node_status(static_cast<std::size_t>(num_nodes));
  std::vector<std::thread> node_threads;
  for (int n = 0; n < num_nodes; ++n) {
    node_threads.emplace_back([&, n] {
      NodeConfig config;
      config.node_id = n;
      config.sites =
          SitesOfNode(n, static_cast<int>(workload.sites.size()), num_nodes);
      config.workload = &workload;
      config.pipeline = options.pipeline;
      Conn* conn = node_ends[static_cast<std::size_t>(n)].get();
      node_status[static_cast<std::size_t>(n)] = RunDistNode(config, conn);
      conn->Close();
    });
  }

  DistResult result = RunDistCoordinator(workload, hops, options, conns);
  for (Conn* conn : conns) conn->Close();
  for (std::thread& thread : node_threads) thread.join();

  if (result.status.ok()) {
    for (const Status& status : node_status) {
      if (!status.ok()) {
        result.status = status;
        result.events.clear();
        break;
      }
    }
  }
  return result;
}

DistResult RunDistProcesses(const serve::Workload& workload,
                            const std::vector<TransferHop>& hops,
                            DistOptions options) {
  options.num_nodes = ClampNodes(options.num_nodes, workload.sites.size());
  const int num_nodes = options.num_nodes;

  DistResult result;
  std::vector<int> parent_fds;
  std::vector<pid_t> children;
  for (int n = 0; n < num_nodes; ++n) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      result.status = Status::Internal("socketpair failed");
      break;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      result.status = Status::Internal("fork failed");
      break;
    }
    if (pid == 0) {
      // Child: keep only this node's end, run the node, report via exit
      // status. _exit skips atexit handlers the parent still owns.
      ::close(sv[0]);
      for (int fd : parent_fds) ::close(fd);
      NodeConfig config;
      config.node_id = n;
      config.sites =
          SitesOfNode(n, static_cast<int>(workload.sites.size()), num_nodes);
      config.workload = &workload;
      config.pipeline = options.pipeline;
      Status status;
      {
        std::unique_ptr<Conn> conn = MakeFdConn(sv[1]);
        status = RunDistNode(config, conn.get());
      }
      ::_exit(status.ok() ? 0 : 1);
    }
    ::close(sv[1]);
    parent_fds.push_back(sv[0]);
    children.push_back(pid);
  }

  if (result.status.ok()) {
    std::vector<std::unique_ptr<Conn>> conn_owners;
    std::vector<Conn*> conns;
    for (int fd : parent_fds) {
      conn_owners.push_back(MakeFdConn(fd));
      conns.push_back(conn_owners.back().get());
    }
    result = RunDistCoordinator(workload, hops, options, conns);
    for (Conn* conn : conns) conn->Close();
  } else {
    for (int fd : parent_fds) ::close(fd);
  }

  for (pid_t pid : children) {
    int wstatus = 0;
    if (::waitpid(pid, &wstatus, 0) < 0) {
      if (result.status.ok()) {
        result.status = Status::Internal("waitpid failed");
      }
      continue;
    }
    if (result.status.ok() &&
        !(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)) {
      result.status =
          Status::Internal("node process exited with an error");
      result.events.clear();
    }
  }
  return result;
}

}  // namespace spire::dist
