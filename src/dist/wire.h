// The distributed serving wire protocol (DESIGN.md §12).
//
// Every message is one length-prefixed frame: a fixed 16-byte header
// followed by a varint-encoded payload. The header carries a marker, the
// frame type, the protocol version, the payload length, and a CRC-32 over
// the first twelve header bytes plus the payload — so a single corrupted
// byte anywhere in the frame (including the type and version fields) fails
// the checksum instead of being re-interpreted as a different valid
// message. Payload integers use the strict LEB128 varints of
// store/varint.h (signed values zigzag-coded); doubles travel as their
// 8-byte little-endian IEEE-754 bit pattern, which round-trips exactly.
//
// Six frame types carry the shard feed/merge protocol of src/serve plus
// the cross-site object handoff and fleet observability:
//
//   Hello       both directions; version/identity check at connection open,
//               plus the ClockSync exchange (each side's steady-clock "now"
//               at send) and the coordinator's stats cadence.
//   EpochWork   coordinator -> node; one epoch's raw readings for every
//               site the node owns, plus capture orders for hops departing
//               this epoch. A finish EpochWork closes the stream.
//   SiteBatch   node -> coordinator; one site's output events for one
//               epoch (serve::SiteBatch over the wire).
//   Barrier     node -> coordinator; "epoch done" for flow control, with a
//               heartbeat stamp for slow-node detection.
//   Handoff     both directions; the captured per-object inference state
//               of one hop (spire/handoff.h), shipped from the departure
//               node through the coordinator to the arrival node. Carries
//               the hop's trace span id end to end.
//   StatsReport node -> coordinator; the node's full obs registry snapshot
//               (counters, gauges, histogram bucket arrays), sent on the
//               coordinator's cadence and once more at shutdown.
#pragma once

#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/registry.h"

#include "common/status.h"
#include "common/types.h"
#include "common/wire.h"
#include "compress/event.h"
#include "spire/handoff.h"
#include "stream/reading.h"

namespace spire::dist {

/// Message kind of one frame (header byte 4).
enum class FrameType : std::uint8_t {
  kHello = 0,
  kEpochWork = 1,
  kSiteBatch = 2,
  kBarrier = 3,
  kHandoff = 4,
  kStatsReport = 5,
};

/// Number of frame types (per-type transport counters size to this).
inline constexpr int kNumFrameTypes = 6;

/// Human-readable frame type name.
const char* ToString(FrameType type);

/// Fixed header size: marker u32 | type u8 | flags u8 | version u16 |
/// payload length u32 | crc32 u32, all little-endian.
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// Upper bound on one frame's payload (a sanity bound against corrupted
/// length fields, far above any real epoch batch).
inline constexpr std::uint32_t kMaxFramePayloadBytes = 64u << 20;

/// The validated fixed header of one frame.
struct FrameHeader {
  FrameType type = FrameType::kHello;
  std::uint8_t flags = 0;
  std::uint16_t version = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t crc = 0;
};

/// A decoded frame: type plus raw payload bytes (decode with the typed
/// payload codec below).
struct Frame {
  FrameType type = FrameType::kHello;
  std::uint8_t flags = 0;
  std::vector<std::uint8_t> payload;
};

/// Encodes a complete frame (header + payload) at kDistProtocolVersion.
std::vector<std::uint8_t> EncodeFrame(FrameType type,
                                      const std::vector<std::uint8_t>& payload);

/// Parses and validates the 16-byte header: marker, known type, exact
/// version match, and payload length bound. The CRC field is returned but
/// only checkable once the payload is present (DecodeFrame).
Result<FrameHeader> ParseFrameHeader(const std::uint8_t* data,
                                     std::size_t size);

/// Decodes one complete frame, validating header and CRC.
Result<Frame> DecodeFrame(const std::vector<std::uint8_t>& bytes);

// --- Payloads ---------------------------------------------------------

/// The steady clock as microseconds since its (boot-global on Linux)
/// origin: the timestamp every wire-carried clock field uses, so stamps
/// from different processes on one machine are directly comparable.
inline std::uint64_t SteadyNowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Connection-open identity: which node this is and which global site
/// indexes it owns (ascending). The coordinator echoes the assignment.
///
/// ClockSync: each side stamps `steady_now_micros` at send. The node
/// brackets the exchange (t0 before its Hello, t1 after the coordinator's)
/// and estimates its offset onto the coordinator clock as
/// coord_steady_now - (t0 + t1) / 2 — the NTP half-round-trip estimate.
/// `stats_interval_epochs` is coordinator -> node only: send a StatsReport
/// every N epochs (0 = never; a final report still ships at shutdown when
/// N > 0).
struct HelloPayload {
  std::uint32_t node_id = 0;
  std::vector<std::uint32_t> sites;
  std::uint64_t steady_now_micros = 0;
  std::uint32_t stats_interval_epochs = 0;
};

/// One hop's capture order: which objects to stage for departure at the
/// hop's origin site this epoch. `hop` is the hop's index in the global
/// transfer schedule; it keys the handoff back to its arrival slot.
struct CaptureOrder {
  std::uint64_t hop = 0;
  std::uint32_t from_site = 0;
  std::uint32_t to_site = 0;
  Epoch arrive_epoch = kNeverEpoch;
  /// Leaf-up, as staged (see SpirePipeline::StageDeparture).
  std::vector<ObjectId> objects;
};

/// One epoch of work for one node. `site_readings` holds the raw readings
/// of every site the node owns (ascending site order; sites past their
/// stream end are omitted — an omitted site processes an empty epoch).
/// A finish message carries no readings or captures; the node flushes
/// every pipeline and exits after its finish barrier.
struct EpochWorkPayload {
  Epoch epoch = kNeverEpoch;
  bool finish = false;
  std::vector<std::pair<std::uint32_t, EpochReadings>> site_readings;
  std::vector<CaptureOrder> captures;
};

/// serve::SiteBatch over the wire. Events are self-contained records (not
/// the stateful SPEV archive encoding): the merge path re-encodes nothing.
struct SiteBatchPayload {
  Epoch epoch = kNeverEpoch;
  std::uint32_t site = 0;
  bool finish = false;
  EventStream events;
};

/// Node-side epoch completion marker (flow control). `steady_micros` is
/// the node's steady-clock stamp at send — the heartbeat the coordinator
/// folds into the fleet/heartbeat_gap_us histogram and its per-node
/// epoch-lag gauges (slow-node detection).
struct BarrierPayload {
  Epoch epoch = kNeverEpoch;
  bool finish = false;
  std::uint64_t steady_micros = 0;
};

/// One hop's captured objects, in capture (leaf-up) order.
/// `capture_micros` is the departure node's steady-clock stamp at send
/// time; the arrival side records now - capture_micros into the
/// dist/handoff_latency_us histogram (comparable across processes on one
/// machine — CLOCK_MONOTONIC is boot-global on Linux).
/// `span_id` names the hop's end-to-end trace span: the departure node
/// opens an async 'b' event under it at capture, the arrival node closes
/// it with the matching 'e' at implant, and merge-traces stitches the two
/// into one cross-process span. Nodes use the global hop index, which is
/// unique per run.
struct HandoffPayload {
  std::uint64_t hop = 0;
  std::uint32_t to_site = 0;
  Epoch arrive_epoch = kNeverEpoch;
  std::uint64_t capture_micros = 0;
  std::uint64_t span_id = 0;
  std::vector<ObjectHandoff> objects;
};

/// One node's full obs registry snapshot. `final_report` marks the
/// shutdown report (sent just before the finish Barrier); periodic
/// reports carry the cumulative state, so the coordinator keeps only the
/// latest per node.
struct StatsReportPayload {
  std::uint32_t node_id = 0;
  Epoch epoch = kNeverEpoch;
  bool final_report = false;
  obs::RegistrySnapshot snapshot;
};

void EncodeHello(const HelloPayload& payload, std::vector<std::uint8_t>* out);
Result<HelloPayload> DecodeHello(const std::vector<std::uint8_t>& payload);

void EncodeEpochWork(const EpochWorkPayload& payload,
                     std::vector<std::uint8_t>* out);
Result<EpochWorkPayload> DecodeEpochWork(
    const std::vector<std::uint8_t>& payload);

void EncodeSiteBatch(const SiteBatchPayload& payload,
                     std::vector<std::uint8_t>* out);
Result<SiteBatchPayload> DecodeSiteBatch(
    const std::vector<std::uint8_t>& payload);

void EncodeBarrier(const BarrierPayload& payload,
                   std::vector<std::uint8_t>* out);
Result<BarrierPayload> DecodeBarrier(const std::vector<std::uint8_t>& payload);

void EncodeHandoff(const HandoffPayload& payload,
                   std::vector<std::uint8_t>* out);
Result<HandoffPayload> DecodeHandoff(const std::vector<std::uint8_t>& payload);

void EncodeStatsReport(const StatsReportPayload& payload,
                       std::vector<std::uint8_t>* out);
Result<StatsReportPayload> DecodeStatsReport(
    const std::vector<std::uint8_t>& payload);

}  // namespace spire::dist
