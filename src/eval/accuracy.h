// Location and containment accuracy against the ground truth (Expts 1-4).
//
// An inference result is an error when it is inconsistent with the ground
// truth: the estimated location differs from the object's true location, or
// the estimated container differs from the true direct container. Objects
// truly at the warm-up location (entry door, where no inference runs) are
// excluded, as are withheld partial-inference results.
#pragma once

#include <cstddef>

#include "inference/estimate.h"
#include "sim/world.h"

namespace spire {

/// Accumulated error counts.
struct AccuracyStats {
  std::size_t location_total = 0;
  std::size_t location_errors = 0;
  std::size_t containment_total = 0;
  std::size_t containment_errors = 0;

  double LocationErrorRate() const {
    return location_total == 0
               ? 0.0
               : static_cast<double>(location_errors) /
                     static_cast<double>(location_total);
  }
  double ContainmentErrorRate() const {
    return containment_total == 0
               ? 0.0
               : static_cast<double>(containment_errors) /
                     static_cast<double>(containment_total);
  }

  AccuracyStats& operator+=(const AccuracyStats& other) {
    location_total += other.location_total;
    location_errors += other.location_errors;
    containment_total += other.containment_total;
    containment_errors += other.containment_errors;
    return *this;
  }
};

/// Scores one inference pass against the world. `exclude_location` removes
/// the warm-up area from scoring (pass kUnknownLocation to score everything).
AccuracyStats EvaluateEstimates(const InferenceResult& result,
                                const PhysicalWorld& world,
                                LocationId exclude_location);

}  // namespace spire
