#include "common/epc.h"

#include <sstream>

namespace spire {

namespace {
constexpr int kLevelShift = 61;
constexpr int kCompanyShift = 41;
constexpr int kItemRefShift = 21;
constexpr std::uint64_t kLevelMask = 0x3;
constexpr std::uint64_t kCompanyMask = (std::uint64_t{1} << 20) - 1;
constexpr std::uint64_t kItemRefMask = (std::uint64_t{1} << 20) - 1;
constexpr std::uint64_t kSerialMask = (std::uint64_t{1} << 21) - 1;
}  // namespace

Result<ObjectId> EncodeEpc(const EpcFields& fields) {
  if (static_cast<int>(fields.level) >= kNumPackagingLevels) {
    return Status::InvalidArgument("packaging level out of range");
  }
  if (fields.company_prefix > kCompanyMask) {
    return Status::InvalidArgument("company prefix exceeds 20 bits");
  }
  if (fields.item_reference > kItemRefMask) {
    return Status::InvalidArgument("item reference exceeds 20 bits");
  }
  if (fields.serial > kSerialMask) {
    return Status::InvalidArgument("serial exceeds 21 bits");
  }
  return EncodeEpcUnchecked(fields);
}

ObjectId EncodeEpcUnchecked(const EpcFields& fields) {
  return (static_cast<std::uint64_t>(fields.level) & kLevelMask) << kLevelShift |
         (static_cast<std::uint64_t>(fields.company_prefix) & kCompanyMask)
             << kCompanyShift |
         (static_cast<std::uint64_t>(fields.item_reference) & kItemRefMask)
             << kItemRefShift |
         (static_cast<std::uint64_t>(fields.serial) & kSerialMask);
}

EpcFields DecodeEpc(ObjectId id) {
  EpcFields fields;
  fields.level = static_cast<PackagingLevel>((id >> kLevelShift) & kLevelMask);
  fields.company_prefix =
      static_cast<std::uint32_t>((id >> kCompanyShift) & kCompanyMask);
  fields.item_reference =
      static_cast<std::uint32_t>((id >> kItemRefShift) & kItemRefMask);
  fields.serial = static_cast<std::uint32_t>(id & kSerialMask);
  return fields;
}

PackagingLevel EpcLevel(ObjectId id) {
  return static_cast<PackagingLevel>((id >> kLevelShift) & kLevelMask);
}

ObjectId PlantEpcSite(int site, ObjectId tag) {
  if (tag == kNoObject) return tag;
  EpcFields fields = DecodeEpc(tag);
  fields.company_prefix =
      (static_cast<std::uint32_t>(site) << kEpcSitePrefixBits) |
      (fields.company_prefix & kEpcSitePrefixMask);
  return EncodeEpcUnchecked(fields);
}

std::string EpcToString(ObjectId id) {
  EpcFields f = DecodeEpc(id);
  std::ostringstream out;
  out << ToString(f.level) << ":" << f.company_prefix << "." << f.item_reference
      << "." << f.serial;
  return out.str();
}

}  // namespace spire
