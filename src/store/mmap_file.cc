#include "store/mmap_file.h"

#if defined(__unix__) || defined(__APPLE__)
#define SPIRE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace spire {

MappedFile::MappedFile(void* map, std::uint64_t size)
    : data_(static_cast<std::uint8_t*>(map)), size_(size) {}

#if SPIRE_HAVE_MMAP

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path,
                                                     std::uint64_t size) {
  if (size == 0) {
    return Status::NotSupported("empty file, nothing to map: " + path);
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open for mapping: " + path);
  }
  void* map = ::mmap(nullptr, static_cast<std::size_t>(size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
  // The fd only anchors the mapping's creation; the mapping outlives it.
  ::close(fd);
  if (map == MAP_FAILED) {
    return Status::NotSupported("mmap failed: " + path);
  }
  return std::shared_ptr<MappedFile>(new MappedFile(map, size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(data_, static_cast<std::size_t>(size_));
  }
}

#else  // !SPIRE_HAVE_MMAP

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path,
                                                     std::uint64_t) {
  return Status::NotSupported("memory mapping unavailable on this platform: " +
                              path);
}

MappedFile::~MappedFile() = default;

#endif

}  // namespace spire
