// Read-side of the block-compressed event archive: access paths that never
// decode more blocks than they must.
//
//   ScanAll         every block, in order — reproduces the archived stream.
//   ScanRange       only blocks whose [min, max] epoch range intersects the
//                   query (block directory skip test), then filters events
//                   by primary timestamp.
//   ScanObject      only blocks on the object's posting list.
//   ScanObjectRange posting list ∩ epoch skip test — both prunes at once.
//   ScanEpochColumn only the primary-timestamp column of every block — the
//                   epoch-restricted-analytics fast path (for kBitpack
//                   blocks the other columns are skipped structurally).
//   DecodeOneBlock  exactly one block by directory index — the granule the
//                   segment-direct query path (src/query/segment_log) caches.
//
// Open() loads the index sidecar when it is present and consistent with
// the segment; otherwise (crash before Close, sidecar deleted or corrupt)
// it falls back to a validating full scan of the segment, honoring the
// same torn-tail rule as ArchiveWriter recovery. Startup cost is constant
// in the sidecar case (sparkey's reader model): the segment is mapped
// read-only once, blocks validate lazily — header and payload CRCs are
// checked only for the blocks a scan actually decodes, zero-copy out of
// the mapping, and a block's payload CRC is checked at most once per
// reader (the mapping pins the bytes, so a passed check stays valid for
// the reader's lifetime). Where mmap is unavailable (platform or
// filesystem), every scan falls back to buffered per-block reads — there
// each scan re-reads from the file, so every decode re-checks the CRC;
// results are identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "compress/event.h"
#include "store/mmap_file.h"
#include "store/segment.h"

namespace spire {

/// Archive reader knobs.
struct ReaderOptions {
  /// Map the segment and decode zero-copy (default). Off forces the
  /// buffered-read path — the bench shootout's comparison axis, and a
  /// rescue hatch for filesystems where mapping misbehaves.
  bool use_mmap = true;
};

/// Immutable view over one archive segment.
class ArchiveReader {
 public:
  /// Opens a segment, via its sidecar or a validating rebuild scan.
  static Result<ArchiveReader> Open(const std::string& path,
                                    ReaderOptions options = {});

  /// Decodes every block: the exact archived EventStream.
  Result<EventStream> ScanAll() const;

  /// Events whose primary timestamp (store/format.h) lies in [lo, hi],
  /// decoding only intersecting blocks. Equals the same filter applied to
  /// ScanAll().
  Result<EventStream> ScanRange(Epoch lo, Epoch hi) const;

  /// Every event of one object, decoding only its posting-list blocks.
  Result<EventStream> ScanObject(ObjectId object) const;

  /// Events of one object whose primary timestamp lies in [lo, hi],
  /// decoding only posting-list blocks that also pass the epoch skip test.
  /// Equals the epoch filter applied to ScanObject().
  Result<EventStream> ScanObjectRange(ObjectId object, Epoch lo,
                                      Epoch hi) const;

  /// The primary timestamp of every archived event, in stream order,
  /// without materializing events. Equals PrimaryEpoch mapped over
  /// ScanAll().
  Result<std::vector<Epoch>> ScanEpochColumn() const;

  /// Decodes exactly one block (by directory index) in full. The unit of
  /// the segment-direct query path's decoded-block cache.
  Result<EventStream> DecodeOneBlock(std::uint32_t index) const;

  // --- Directory ----------------------------------------------------------

  const std::vector<BlockMeta>& blocks() const { return info_.blocks; }
  std::size_t num_blocks() const { return info_.blocks.size(); }
  std::uint64_t num_events() const { return info_.events; }
  std::uint64_t segment_bytes() const { return info_.valid_bytes; }
  /// Segment format version (kArchiveVersionV1 segments stay readable).
  std::uint16_t format_version() const { return info_.version; }
  /// How many blocks a ScanRange(lo, hi) would decode (bench/CLI stat).
  std::size_t BlocksInRange(Epoch lo, Epoch hi) const;
  /// How many blocks a ScanObject(object) would decode.
  std::size_t BlocksForObject(ObjectId object) const;
  /// How many blocks a ScanObjectRange(object, lo, hi) would decode.
  std::size_t BlocksForObjectInRange(ObjectId object, Epoch lo,
                                     Epoch hi) const;
  /// Posting list of the object (blocks holding any of its events), or
  /// nullptr when the object never appears. Valid for the reader's lifetime.
  const std::vector<std::uint32_t>* PostingsForObject(ObjectId object) const;
  /// Posting list of a location (blocks holding location-kind events there),
  /// or nullptr. Sidecar-v3 index; always populated on open.
  const std::vector<std::uint32_t>* PostingsForLocation(
      LocationId location) const;
  /// Posting list of a container (blocks holding containment events inside
  /// it), or nullptr.
  const std::vector<std::uint32_t>* PostingsForContainer(
      ObjectId container) const;
  /// The full per-object posting index — the workload generator's universe
  /// of archived objects.
  const std::map<ObjectId, std::vector<std::uint32_t>>& object_postings()
      const {
    return info_.postings;
  }
  /// The full per-location posting index.
  const std::map<LocationId, std::vector<std::uint32_t>>& location_postings()
      const {
    return info_.location_postings;
  }
  /// True when the sidecar was missing or stale and the directory was
  /// rebuilt by scanning the segment.
  bool index_rebuilt() const { return index_rebuilt_; }
  /// True when scans decode zero-copy from a memory mapping (false: the
  /// buffered-read fallback is in effect).
  bool mapped() const { return map_ != nullptr; }
  const std::string& path() const { return path_; }

 private:
  ArchiveReader(std::string path, SegmentInfo info, bool index_rebuilt,
                std::shared_ptr<MappedFile> map);

  /// Reads, validates, and decodes the listed blocks in index order.
  /// `epochs_only` decodes just the primary-timestamp column into
  /// `epochs_out` instead of materializing events into `events_out`.
  Status DecodeBlockSet(const std::vector<std::uint32_t>& indexes,
                        bool epochs_only, EventStream* events_out,
                        std::vector<Epoch>* epochs_out) const;

  Result<EventStream> DecodeBlocks(
      const std::vector<std::uint32_t>& indexes) const;

  std::vector<std::uint32_t> AllBlockIndexes() const;

  std::string path_;
  SegmentInfo info_;
  bool index_rebuilt_ = false;
  std::shared_ptr<MappedFile> map_;  ///< Null on the buffered fallback.
  /// Per-block "payload CRC already passed" flags, mmap path only (null on
  /// the buffered fallback): the mapping pins the bytes, so each block pays
  /// its checksum once per reader, on first decode. Atomic so concurrent
  /// scans over one reader stay race-free; shared so reader copies share
  /// the validation state along with the mapping.
  std::shared_ptr<std::atomic<std::uint8_t>[]> payload_ok_;
};

/// Makes a range- or object-restricted selection well-formed again by
/// re-materializing, in place, the Start message of every End message whose
/// Start falls outside the selection (archived events are self-contained:
/// an End carries its reconstructed V_s). Needed before handing a
/// restricted scan to ValidateWellFormed, EventLog::Build, or
/// WriteEventFile readers.
EventStream RepairRestrictedStream(const EventStream& selection);

}  // namespace spire
