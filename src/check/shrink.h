// Counterexample minimization for the differential checking harness.
//
// Given a failing FuzzCase, the shrinker first truncates the trace (greedy
// binary descent on max_epochs), then removes tags (ddmin-style chunked
// exclusion, ending with single-tag passes). Any oracle failure — not
// necessarily the original one — keeps a shrink step; the final, smaller
// counterexample with its (possibly different) failure is returned.
#pragma once

#include <functional>

#include "check/oracles.h"
#include "check/trace_gen.h"

namespace spire {

/// Re-runs a candidate case; std::nullopt = all oracles green.
using CaseRunner =
    std::function<std::optional<OracleFailure>(const FuzzCase&)>;

/// Result of one minimization.
struct ShrinkOutcome {
  FuzzCase minimized;      ///< The smallest still-failing case found.
  OracleFailure failure;   ///< The failure the minimized case produces.
  int attempts = 0;        ///< Candidate cases executed.
};

/// Minimizes `failing` (which `run` must currently fail) within
/// `max_attempts` candidate executions. `original` is the failure the
/// unshrunk case produced.
ShrinkOutcome MinimizeCase(const FuzzCase& failing,
                           const OracleFailure& original,
                           const CaseRunner& run, int max_attempts = 200);

}  // namespace spire
