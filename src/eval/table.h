// Fixed-width text tables for the bench binaries' paper-style reports.
#pragma once

#include <string>
#include <vector>

namespace spire {

/// Accumulates rows and renders an aligned, pipe-separated table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Formats a double with fixed precision.
  static std::string Num(double value, int precision = 4);

  /// Renders header, separator, and rows.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spire
