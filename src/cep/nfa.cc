#include "cep/nfa.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <sstream>

#include "common/epc.h"
#include "stream/reader.h"

namespace spire::cep {

Epoch CompiledPattern::WindowInto(std::size_t i) const {
  Epoch window = steps[static_cast<std::size_t>(positive[i])].within;
  if (i < guard.size() && guard[i] >= 0) {
    const Epoch guard_window = steps[static_cast<std::size_t>(guard[i])].within;
    if (guard_window > 0 && (window == 0 || guard_window < window)) {
      window = guard_window;
    }
  }
  return window;
}

Result<CompiledPattern> Compile(const Pattern& pattern,
                                const ReaderRegistry* registry) {
  auto fail = [&](const std::string& what) {
    return Status::InvalidArgument("pattern '" + pattern.name + "': " + what);
  };
  if (pattern.steps.empty()) return fail("no steps");
  if (pattern.steps.front().negated) return fail("first step must be positive");
  if (pattern.steps.front().within > 0) {
    return fail("WITHIN on the first step has no preceding step to bound");
  }

  CompiledPattern out;
  out.name = pattern.name;
  auto var_index = [&out](const std::string& name) {
    for (std::size_t i = 0; i < out.vars.size(); ++i) {
      if (out.vars[i] == name) return static_cast<int>(i);
    }
    return -1;
  };

  int pending_guard = -1;
  for (std::size_t s = 0; s < pattern.steps.size(); ++s) {
    const Step& step = pattern.steps[s];
    if (step.negated && pattern.steps[s - 1].negated) {
      return fail("adjacent negative steps");
    }

    CompiledStep compiled;
    compiled.negated = step.negated;
    compiled.within = step.within;
    compiled.pred.kind = step.pred.kind;

    const bool pair_pred = step.pred.kind == PredKind::kIn ||
                           step.pred.kind == PredKind::kContains;
    int v = var_index(step.pred.var);
    int v2 = pair_pred ? var_index(step.pred.var2) : -1;
    if (step.negated) {
      if (v < 0 || (pair_pred && v2 < 0)) {
        return fail("negative step introduces variable '" +
                    (v < 0 ? step.pred.var : step.pred.var2) + "'");
      }
    } else if (s > 0) {
      // Later positive steps may only introduce a variable through a
      // containment link to an already-bound one; that keeps binding
      // enumeration index-driven instead of a cross product.
      if (!pair_pred && v < 0) {
        return fail("variable '" + step.pred.var +
                    "' must be introduced in the first step or via "
                    "In/Contains");
      }
      if (pair_pred && v < 0 && v2 < 0) {
        return fail("step introduces two unbound variables '" +
                    step.pred.var + "', '" + step.pred.var2 + "'");
      }
    }
    if (v < 0) {
      out.vars.push_back(step.pred.var);
      v = static_cast<int>(out.vars.size()) - 1;
    }
    if (pair_pred && v2 < 0) {
      out.vars.push_back(step.pred.var2);
      v2 = static_cast<int>(out.vars.size()) - 1;
    }
    compiled.pred.var = v;
    compiled.pred.var2 = v2;

    if (step.pred.kind == PredKind::kAt) {
      auto locations = ResolveLocationSpec(step.pred.loc_spec, registry);
      if (!locations.ok()) {
        return fail(locations.status().ToString());
      }
      compiled.pred.locations = std::move(locations).value();
      std::sort(compiled.pred.locations.begin(),
                compiled.pred.locations.end());
    }

    out.steps.push_back(std::move(compiled));
    if (step.negated) {
      pending_guard = static_cast<int>(s);
    } else {
      out.positive.push_back(static_cast<int>(s));
      out.guard.push_back(pending_guard);
      pending_guard = -1;
    }
  }
  out.trailing_guard = pending_guard;
  if (out.trailing_guard >= 0 &&
      out.steps[static_cast<std::size_t>(out.trailing_guard)].within <= 0) {
    return fail("a trailing negative step needs WITHIN (the absence must "
                "span a bounded, observable window)");
  }
  return out;
}

namespace {

// ------------------------------------------------------------ intervals

/// Half-open epoch interval [start, end).
struct Interval {
  Epoch start = 0;
  Epoch end = 0;
};

Epoch SatAdd(Epoch a, Epoch b) {
  return a > kInfiniteEpoch - b ? kInfiniteEpoch : a + b;
}

/// Sorts and coalesces (adjacent intervals merge: epochs are integers, so
/// [2,5)+[5,8) is one maximal run of true epochs — onset detection needs
/// maximal runs).
std::vector<Interval> Merged(std::vector<Interval> intervals) {
  std::erase_if(intervals,
                [](const Interval& i) { return i.start >= i.end; });
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.start < b.start;
            });
  std::vector<Interval> out;
  for (const Interval& interval : intervals) {
    if (!out.empty() && interval.start <= out.back().end) {
      out.back().end = std::max(out.back().end, interval.end);
    } else {
      out.push_back(interval);
    }
  }
  return out;
}

std::vector<Interval> Clipped(const std::vector<Interval>& intervals,
                              Epoch lo, Epoch end_exclusive) {
  std::vector<Interval> out;
  for (const Interval& interval : intervals) {
    const Epoch s = std::max(interval.start, lo);
    const Epoch e = std::min(interval.end, end_exclusive);
    if (s < e) out.push_back({s, e});
  }
  return out;
}

std::vector<Interval> Intersect(const std::vector<Interval>& a,
                                const std::vector<Interval>& b) {
  std::vector<Interval> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Epoch s = std::max(a[i].start, b[j].start);
    const Epoch e = std::min(a[i].end, b[j].end);
    if (s < e) out.push_back({s, e});
    if (a[i].end < b[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

/// First epoch strictly greater than `t` covered by `intervals`
/// (kInfiniteEpoch if none).
Epoch FirstAfter(const std::vector<Interval>& intervals, Epoch t) {
  for (const Interval& interval : intervals) {
    if (interval.end > t + 1) return std::max(interval.start, t + 1);
  }
  return kInfiniteEpoch;
}

/// Last epoch strictly less than `t` covered by `intervals` (kNeverEpoch
/// if none).
Epoch LastBefore(const std::vector<Interval>& intervals, Epoch t) {
  Epoch best = kNeverEpoch;
  for (const Interval& interval : intervals) {
    if (interval.start >= t) break;
    best = std::min(interval.end, t) - 1;
  }
  return best;
}

const Interval* Containing(const std::vector<Interval>& intervals, Epoch t) {
  for (const Interval& interval : intervals) {
    if (interval.start <= t && t < interval.end) return &interval;
  }
  return nullptr;
}

// ------------------------------------------------- binding enumeration

/// Candidate indexes a world view offers the enumerator. Both sides
/// provide sound supersets; evaluating a non-matching binding is harmless.
struct BindingSource {
  std::function<std::vector<ObjectId>(const std::vector<LocationId>&)>
      ever_at;
  std::function<std::vector<ObjectId>()> ever_missing;
  /// Distinct (child, container) pairs.
  std::function<std::vector<std::pair<ObjectId, ObjectId>>()> pairs;
  std::function<std::vector<ObjectId>(ObjectId)> containers_of;
  std::function<std::vector<ObjectId>(ObjectId)> contents_of;
};

std::vector<std::vector<ObjectId>> EnumerateBindings(
    const CompiledPattern& pattern, const BindingSource& source) {
  std::vector<std::vector<ObjectId>> partials = {
      std::vector<ObjectId>(pattern.vars.size(), kNoObject)};
  std::vector<bool> bound(pattern.vars.size(), false);

  auto expand_one = [&](int var, auto candidates_of) {
    std::vector<std::vector<ObjectId>> next;
    for (const std::vector<ObjectId>& partial : partials) {
      for (ObjectId candidate : candidates_of(partial)) {
        std::vector<ObjectId> grown = partial;
        grown[static_cast<std::size_t>(var)] = candidate;
        next.push_back(std::move(grown));
      }
    }
    partials = std::move(next);
    bound[static_cast<std::size_t>(var)] = true;
  };

  for (const CompiledStep& step : pattern.steps) {
    const CompiledPredicate& pred = step.pred;
    const bool v_bound = bound[static_cast<std::size_t>(pred.var)];
    switch (pred.kind) {
      case PredKind::kAt:
        if (!v_bound) {
          const std::vector<ObjectId> candidates =
              source.ever_at(pred.locations);
          expand_one(pred.var,
                     [&](const std::vector<ObjectId>&) { return candidates; });
        }
        break;
      case PredKind::kMissing:
        if (!v_bound) {
          const std::vector<ObjectId> candidates = source.ever_missing();
          expand_one(pred.var,
                     [&](const std::vector<ObjectId>&) { return candidates; });
        }
        break;
      case PredKind::kIn:
      case PredKind::kContains: {
        // kIn(child=var, container=var2); kContains(container=var,
        // child=var2).
        const int child = pred.kind == PredKind::kIn ? pred.var : pred.var2;
        const int container =
            pred.kind == PredKind::kIn ? pred.var2 : pred.var;
        const bool child_bound = bound[static_cast<std::size_t>(child)];
        const bool container_bound =
            bound[static_cast<std::size_t>(container)];
        if (!child_bound && !container_bound) {
          std::vector<std::vector<ObjectId>> next;
          for (const std::vector<ObjectId>& partial : partials) {
            for (const auto& [c, p] : source.pairs()) {
              std::vector<ObjectId> grown = partial;
              grown[static_cast<std::size_t>(child)] = c;
              grown[static_cast<std::size_t>(container)] = p;
              next.push_back(std::move(grown));
            }
          }
          partials = std::move(next);
          bound[static_cast<std::size_t>(child)] = true;
          bound[static_cast<std::size_t>(container)] = true;
        } else if (!container_bound) {
          expand_one(container, [&](const std::vector<ObjectId>& partial) {
            return source.containers_of(
                partial[static_cast<std::size_t>(child)]);
          });
        } else if (!child_bound) {
          expand_one(child, [&](const std::vector<ObjectId>& partial) {
            return source.contents_of(
                partial[static_cast<std::size_t>(container)]);
          });
        }
        break;
      }
    }
  }
  std::sort(partials.begin(), partials.end());
  partials.erase(std::unique(partials.begin(), partials.end()),
                 partials.end());
  return partials;
}

void SortMatches(std::vector<Match>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const Match& a, const Match& b) {
              if (a.binding != b.binding) return a.binding < b.binding;
              return a.completion < b.completion;
            });
}

// ------------------------------------------------------ naive evaluator

bool HoldsAt(const EventLog& log, const CompiledPredicate& pred,
             const std::vector<ObjectId>& binding, Epoch t) {
  switch (pred.kind) {
    case PredKind::kAt: {
      const LocationId location =
          log.LocationAt(binding[static_cast<std::size_t>(pred.var)], t);
      return std::binary_search(pred.locations.begin(), pred.locations.end(),
                                location);
    }
    case PredKind::kIn:
      return log.ContainerAt(binding[static_cast<std::size_t>(pred.var)],
                             t) ==
             binding[static_cast<std::size_t>(pred.var2)];
    case PredKind::kContains:
      return log.ContainerAt(binding[static_cast<std::size_t>(pred.var2)],
                             t) ==
             binding[static_cast<std::size_t>(pred.var)];
    case PredKind::kMissing:
      return log.IsMissingAt(binding[static_cast<std::size_t>(pred.var)], t);
  }
  return false;
}

/// Epoch-by-epoch NFA simulation for one binding (see nfa.h for the
/// semantics being implemented).
void ScanBindingNaive(const CompiledPattern& pattern, const EventLog& log,
                      const std::vector<ObjectId>& binding, EvalBounds bounds,
                      std::vector<Match>* out) {
  const std::size_t k = pattern.positive.size();
  struct Run {
    std::size_t next;          ///< Positive-step index awaited.
    Epoch prev;                ///< Epoch of the last matched positive.
    std::vector<Epoch> hist;   ///< Matched positive epochs so far.
    bool dead = false;
  };
  struct Pending {
    Epoch t_k;
    std::vector<Epoch> hist;
  };
  std::vector<Run> runs;
  std::vector<Pending> pendings;
  const Epoch trailing_window =
      pattern.trailing_guard >= 0
          ? pattern.steps[static_cast<std::size_t>(pattern.trailing_guard)]
                .within
          : 0;
  Epoch floor = bounds.lo - 1;
  bool first_held_before = false;
  std::vector<bool> truth(pattern.steps.size(), false);

  for (Epoch t = bounds.lo; t <= bounds.hi; ++t) {
    for (std::size_t s = 0; s < pattern.steps.size(); ++s) {
      truth[s] = HoldsAt(log, pattern.steps[s].pred, binding, t);
    }
    std::optional<std::vector<Epoch>> completed;
    std::vector<Run> spawned;
    auto land_last_positive = [&](std::vector<Epoch> hist) {
      if (pattern.trailing_guard >= 0) {
        pendings.push_back({t, std::move(hist)});
      } else if (!completed) {
        completed = std::move(hist);
      }
    };

    // 1) Advance live runs (nondeterministically: the source run stays).
    for (Run& run : runs) {
      const Epoch window = pattern.WindowInto(run.next);
      if (window > 0 && t - run.prev > window) {
        run.dead = true;  // Can never advance again.
        continue;
      }
      if (!truth[static_cast<std::size_t>(pattern.positive[run.next])]) {
        continue;
      }
      std::vector<Epoch> hist = run.hist;
      hist.push_back(t);
      if (run.next + 1 == k) {
        land_last_positive(std::move(hist));
      } else {
        spawned.push_back({run.next + 1, t, std::move(hist)});
      }
    }
    // 2) Spawn on a first-step onset past the floor.
    const bool first_holds =
        truth[static_cast<std::size_t>(pattern.positive[0])];
    if (first_holds && (t == bounds.lo || !first_held_before) && t > floor) {
      if (k == 1) {
        land_last_positive({t});
      } else {
        spawned.push_back({1, t, {t}});
      }
    }
    first_held_before = first_holds;
    // 3) Integrate spawns, deduplicating on (next, prev).
    for (Run& run : spawned) {
      const bool exists =
          std::any_of(runs.begin(), runs.end(), [&](const Run& r) {
            return !r.dead && r.next == run.next && r.prev == run.prev;
          });
      if (!exists) runs.push_back(std::move(run));
    }
    // 4) Kill runs whose pending negation holds now (strictly after their
    // last positive: a run spawned this epoch is safe).
    std::erase_if(runs, [&](const Run& run) {
      if (run.dead) return true;
      const int g = pattern.guard[run.next];
      return g >= 0 && run.prev < t && truth[static_cast<std::size_t>(g)];
    });
    // 5) Trailing guard: kill covered pendings, then commit ripe ones.
    if (pattern.trailing_guard >= 0) {
      if (truth[static_cast<std::size_t>(pattern.trailing_guard)]) {
        std::erase_if(pendings, [&](const Pending& pending) {
          return pending.t_k < t && t <= SatAdd(pending.t_k, trailing_window);
        });
      }
      if (!completed) {
        const Pending* ripe = nullptr;
        for (const Pending& pending : pendings) {
          if (SatAdd(pending.t_k, trailing_window) == t &&
              (ripe == nullptr || pending.t_k < ripe->t_k)) {
            ripe = &pending;
          }
        }
        if (ripe != nullptr) completed = ripe->hist;
      }
    }
    if (completed) {
      Match match;
      match.pattern = pattern.name;
      match.binding = binding;
      match.step_epochs = *completed;
      match.completion = pattern.trailing_guard >= 0
                             ? completed->back() + trailing_window
                             : completed->back();
      out->push_back(std::move(match));
      floor = t;  // Next instance must begin strictly later.
      runs.clear();
      pendings.clear();
    }
  }
}

// --------------------------------------------------- interval evaluator

std::vector<Interval> PredIntervals(CompressedLog* log,
                                    const CompiledPredicate& pred,
                                    const std::vector<ObjectId>& binding) {
  std::vector<Interval> out;
  switch (pred.kind) {
    case PredKind::kAt:
      for (const Stay& stay :
           log->TrajectoryOf(binding[static_cast<std::size_t>(pred.var)])) {
        if (std::binary_search(pred.locations.begin(), pred.locations.end(),
                               stay.location)) {
          out.push_back({stay.start, stay.end});
        }
      }
      break;
    case PredKind::kIn:
      for (const Stay& stay : log->ContainmentsOf(
               binding[static_cast<std::size_t>(pred.var)])) {
        if (stay.container == binding[static_cast<std::size_t>(pred.var2)]) {
          out.push_back({stay.start, stay.end});
        }
      }
      break;
    case PredKind::kContains:
      for (const Stay& stay : log->ContainmentsOf(
               binding[static_cast<std::size_t>(pred.var2)])) {
        if (stay.container == binding[static_cast<std::size_t>(pred.var)]) {
          out.push_back({stay.start, stay.end});
        }
      }
      break;
    case PredKind::kMissing:
      for (const MissingReport& report :
           log->MissingOf(binding[static_cast<std::size_t>(pred.var)])) {
        out.push_back({report.since, report.until});
      }
      break;
  }
  return Merged(std::move(out));
}

std::vector<std::uint64_t> CollectProvenance(
    const CompiledPattern& pattern, const CompressedLog& log,
    const std::vector<ObjectId>& binding, const std::vector<Epoch>& witness) {
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < pattern.positive.size(); ++i) {
    const CompiledPredicate& pred =
        pattern.steps[static_cast<std::size_t>(pattern.positive[i])].pred;
    const Epoch t = witness[i];
    std::vector<std::uint64_t> got;
    switch (pred.kind) {
      case PredKind::kAt:
        got = log.SupportingLocationEvents(
            binding[static_cast<std::size_t>(pred.var)], pred.locations, t);
        break;
      case PredKind::kIn:
        got = log.SupportingContainmentEvent(
            binding[static_cast<std::size_t>(pred.var)],
            binding[static_cast<std::size_t>(pred.var2)], t);
        break;
      case PredKind::kContains:
        got = log.SupportingContainmentEvent(
            binding[static_cast<std::size_t>(pred.var2)],
            binding[static_cast<std::size_t>(pred.var)], t);
        break;
      case PredKind::kMissing:
        got = log.SupportingMissingEvent(
            binding[static_cast<std::size_t>(pred.var)], t);
        break;
    }
    ids.insert(ids.end(), got.begin(), got.end());
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

/// Feasible-set evaluation for one binding: per positive step, the set of
/// epochs it can match at is a union of intervals; each transition maps
/// the previous set through the window/negation constraints in one sweep.
void ScanBindingCompressed(const CompiledPattern& pattern, CompressedLog* log,
                           const std::vector<ObjectId>& binding,
                           EvalBounds bounds, std::vector<Match>* out) {
  const std::size_t k = pattern.positive.size();
  const Epoch end_exclusive = SatAdd(bounds.hi, 1);

  // Predicate interval sets. The first positive step keeps its unclipped
  // maximal runs too: onsets are their (clamped) left endpoints.
  std::vector<std::vector<Interval>> pos(k), guards(k);
  std::vector<Interval> first_raw, trailing;
  for (std::size_t i = 0; i < k; ++i) {
    std::vector<Interval> raw = PredIntervals(
        log, pattern.steps[static_cast<std::size_t>(pattern.positive[i])].pred,
        binding);
    if (i == 0) first_raw = raw;
    pos[i] = Clipped(raw, bounds.lo, end_exclusive);
    if (pos[i].empty()) return;
    if (pattern.guard[i] >= 0) {
      guards[i] = Clipped(
          PredIntervals(
              log,
              pattern.steps[static_cast<std::size_t>(pattern.guard[i])].pred,
              binding),
          bounds.lo, end_exclusive);
    }
  }
  Epoch trailing_window = 0;
  if (pattern.trailing_guard >= 0) {
    const CompiledStep& step =
        pattern.steps[static_cast<std::size_t>(pattern.trailing_guard)];
    trailing_window = step.within;
    trailing =
        Clipped(PredIntervals(log, step.pred, binding), bounds.lo,
                end_exclusive);
  }

  Epoch floor = bounds.lo - 1;
  for (;;) {
    // Layer 0: onset points past the floor.
    std::vector<std::vector<Interval>> layers(k);
    for (const Interval& run : first_raw) {
      if (run.end <= bounds.lo) continue;
      const Epoch t = std::max(run.start, bounds.lo);
      if (t > bounds.hi || t <= floor) continue;
      layers[0].push_back({t, t + 1});
    }
    if (layers[0].empty()) return;

    bool empty = false;
    for (std::size_t j = 1; j < k; ++j) {
      const Epoch window = pattern.WindowInto(j);
      std::vector<Interval> raw;
      for (const Interval& prev : layers[j - 1]) {
        const Epoch t_last = prev.end - 1;
        // Reachable t_j from t' in [prev.start, prev.end): the union of
        // (t', U(t')] with U(t') = min(t' + w, first guard epoch > t').
        // Each range is nonempty and consecutive ranges adjoin (U is
        // nondecreasing and U(t') >= t' + 1), so the union is one
        // interval ending at U of the last point.
        Epoch reach = window > 0 ? SatAdd(t_last, window) : kInfiniteEpoch;
        if (!guards[j].empty()) {
          reach = std::min(reach, FirstAfter(guards[j], t_last));
        }
        reach = std::min(reach, bounds.hi);
        if (reach > prev.start) {
          raw.push_back({prev.start + 1, SatAdd(reach, 1)});
        }
      }
      layers[j] = Intersect(Merged(std::move(raw)), pos[j]);
      if (layers[j].empty()) {
        empty = true;
        break;
      }
    }
    if (empty) return;

    // Earliest completion from the feasible t_k set.
    Epoch t_k = kNeverEpoch;
    Epoch completion = kNeverEpoch;
    if (pattern.trailing_guard < 0) {
      t_k = layers[k - 1].front().start;
      completion = t_k;
    } else {
      bool found = false, hopeless = false;
      for (const Interval& run : layers[k - 1]) {
        Epoch t = run.start;
        while (t < run.end) {
          if (SatAdd(t, trailing_window) > bounds.hi) {
            hopeless = true;  // Later candidates only end later.
            break;
          }
          const Epoch next_neg = FirstAfter(trailing, t);
          if (next_neg > SatAdd(t, trailing_window)) {
            t_k = t;
            completion = t + trailing_window;
            found = true;
            break;
          }
          // Skip to where the blocking negation run can no longer reach.
          const Interval* block = Containing(trailing, next_neg);
          t = std::max(t + 1, block->end - 1);
        }
        if (found || hopeless) break;
      }
      if (!found) return;  // A larger floor only shrinks the sets.
    }

    // Witness chain, back to front: the earliest feasible predecessor
    // compatible with the window and the guard's last epoch before t.
    std::vector<Epoch> witness(k, t_k);
    Epoch t = t_k;
    for (std::size_t j = k - 1; j >= 1; --j) {
      const Epoch window = pattern.WindowInto(j);
      Epoch lower = bounds.lo;
      if (window > 0) lower = std::max(lower, t - window);
      if (!guards[j].empty()) {
        lower = std::max(lower, LastBefore(guards[j], t));
      }
      Epoch chosen = kNeverEpoch;
      for (const Interval& prev : layers[j - 1]) {
        if (prev.end <= lower) continue;
        const Epoch candidate = std::max(prev.start, lower);
        if (candidate < t) {
          chosen = candidate;
          break;
        }
      }
      witness[j - 1] = chosen == kNeverEpoch ? t - 1 : chosen;
      t = witness[j - 1];
    }

    Match match;
    match.pattern = pattern.name;
    match.binding = binding;
    match.step_epochs = witness;
    match.completion = completion;
    match.event_ids = CollectProvenance(pattern, *log, binding, witness);
    out->push_back(std::move(match));
    floor = completion;
  }
}

}  // namespace

EvalBounds BoundsOf(const EventLog& log) {
  if (log.first_epoch() == kNeverEpoch) return {0, -1};
  return {log.first_epoch(), log.last_epoch()};
}

EvalBounds BoundsOf(const EventStream& stream) {
  EvalBounds bounds{0, -1};
  bool any = false;
  for (const Event& event : stream) {
    if (!any || event.start < bounds.lo) bounds.lo = event.start;
    any = true;
    bounds.hi = std::max(bounds.hi, event.start);
    if (event.end != kInfiniteEpoch) {
      bounds.hi = std::max(bounds.hi, event.end);
    }
  }
  if (!any) return {0, -1};
  return bounds;
}

std::vector<Match> EvaluateNaive(const CompiledPattern& pattern,
                                 const EventLog& log, EvalBounds bounds) {
  std::vector<Match> out;
  if (bounds.hi < bounds.lo) return out;
  BindingSource source;
  source.ever_at = [&log](const std::vector<LocationId>& locations) {
    std::vector<ObjectId> ids;
    for (LocationId location : locations) {
      std::vector<ObjectId> at = log.ObjectsEverAt(location);
      ids.insert(ids.end(), at.begin(), at.end());
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
  };
  source.ever_missing = [&log]() {
    std::vector<ObjectId> ids;
    for (const MissingReport& report : log.MissingReports()) {
      ids.push_back(report.object);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
  };
  source.pairs = [&log]() { return log.ContainmentPairs(); };
  source.containers_of = [&log](ObjectId object) {
    return log.EverContainersOf(object);
  };
  source.contents_of = [&log](ObjectId container) {
    return log.EverContentsOf(container);
  };
  for (const std::vector<ObjectId>& binding :
       EnumerateBindings(pattern, source)) {
    ScanBindingNaive(pattern, log, binding, bounds, &out);
  }
  SortMatches(&out);
  return out;
}

std::vector<Match> EvaluateCompressed(const CompiledPattern& pattern,
                                      CompressedLog* log, EvalBounds bounds) {
  std::vector<Match> out;
  if (bounds.hi < bounds.lo) return out;
  BindingSource source;
  source.ever_at = [log](const std::vector<LocationId>& locations) {
    return log->CandidatesEverAt(locations);
  };
  source.ever_missing = [log]() { return log->EverMissing(); };
  source.pairs = [log]() { return log->ContainmentPairs(); };
  source.containers_of = [log](ObjectId object) {
    return log->EverContainersOf(object);
  };
  source.contents_of = [log](ObjectId container) {
    return log->EverContentsOf(container);
  };
  for (const std::vector<ObjectId>& binding :
       EnumerateBindings(pattern, source)) {
    ScanBindingCompressed(pattern, log, binding, bounds, &out);
  }
  SortMatches(&out);
  return out;
}

std::string DiffMatchSets(const std::vector<Match>& a,
                          const std::vector<Match>& b,
                          const std::string& a_name,
                          const std::string& b_name) {
  auto render = [](const Match& match) {
    std::ostringstream out;
    out << "(";
    for (std::size_t i = 0; i < match.binding.size(); ++i) {
      out << (i > 0 ? "," : "") << EpcToString(match.binding[i]);
    }
    out << ") @ " << match.completion;
    return out.str();
  };
  std::size_t i = 0, j = 0;
  auto key = [](const Match& m) { return std::tie(m.binding, m.completion); };
  while (i < a.size() && j < b.size()) {
    if (key(a[i]) == key(b[j])) {
      ++i;
      ++j;
      continue;
    }
    std::ostringstream out;
    if (key(a[i]) < key(b[j])) {
      out << a[i].pattern << ": " << a_name << " has " << render(a[i])
          << " missing from " << b_name;
    } else {
      out << b[j].pattern << ": " << b_name << " has " << render(b[j])
          << " missing from " << a_name;
    }
    return out.str();
  }
  if (i < a.size()) {
    return a[i].pattern + ": " + a_name + " has " + render(a[i]) +
           " missing from " + b_name;
  }
  if (j < b.size()) {
    return b[j].pattern + ": " + b_name + " has " + render(b[j]) +
           " missing from " + a_name;
  }
  return "";
}

std::string ToString(const CompiledPattern& pattern, const Match& match) {
  std::ostringstream out;
  out << match.pattern << "(";
  for (std::size_t i = 0; i < match.binding.size(); ++i) {
    if (i > 0) out << ", ";
    out << pattern.vars[i] << "=" << EpcToString(match.binding[i]);
  }
  out << ") steps=[";
  for (std::size_t i = 0; i < match.step_epochs.size(); ++i) {
    out << (i > 0 ? "," : "") << match.step_epochs[i];
  }
  out << "] complete=" << match.completion << " events=[";
  for (std::size_t i = 0; i < match.event_ids.size(); ++i) {
    out << (i > 0 ? "," : "") << match.event_ids[i];
  }
  out << "]";
  return out.str();
}

}  // namespace spire::cep
