// The end-to-end SPIRE substrate (Fig. 2): device-level deduplication,
// stream-driven graph capture, scheduled probabilistic interpretation,
// conflict resolution, and online compression into an output event stream.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "compress/compressor.h"
#include "compress/event.h"
#include "graph/graph.h"
#include "graph/update.h"
#include "inference/conflict.h"
#include "inference/iterative.h"
#include "inference/params.h"
#include "inference/schedule.h"
#include "obs/explain.h"
#include "spire/handoff.h"
#include "stream/dedup.h"
#include "stream/epoch_stream.h"
#include "stream/reader.h"

namespace spire {

class ArchiveWriter;

/// Output compression level (Section V).
enum class CompressionLevel {
  kLevel1 = 1,  ///< Range compression.
  kLevel2 = 2,  ///< Containment-based location suppression.
};

/// When inference runs (Section IV-D; non-default modes are ablations).
enum class InferenceMode {
  /// Complete inference at multiples of the reader-period LCM, partial
  /// inference otherwise (the paper's schedule).
  kScheduled,
  /// Complete inference every epoch (upper bound on freshness and cost).
  kAlwaysComplete,
  /// Complete inference on schedule, nothing in between.
  kCompleteOnly,
};

/// Pipeline configuration.
struct PipelineOptions {
  InferenceParams inference;
  InferenceMode inference_mode = InferenceMode::kScheduled;
  /// Conflict resolution (Table I) can be ablated.
  bool resolve_conflicts = true;
  /// S: capacity of each edge's co-location history register.
  int history_size = 32;
  CompressionLevel level = CompressionLevel::kLevel2;
  CompressorOptions compressor;
  /// Readings of an object retired at an exit door are ignored for this many
  /// epochs, so the remaining interrogations during its exit dwell do not
  /// resurrect its node.
  Epoch exit_grace_epochs = 30;
  /// Entry-door readings warm up the graph model, but no inference results
  /// are output for objects located there (Section VI-A).
  bool suppress_warmup_output = true;
};

/// Wall-clock cost of the last processed epoch (Expt 5 instrumentation).
struct EpochCosts {
  double update_seconds = 0.0;
  double inference_seconds = 0.0;
  double total_seconds() const { return update_seconds + inference_seconds; }
};

/// One SPIRE instance per reader deployment.
class SpirePipeline {
 public:
  SpirePipeline(const ReaderRegistry* registry, PipelineOptions options);

  /// Processes one epoch of raw readings end to end; appends output events.
  /// Epochs must be fed in strictly increasing order.
  void ProcessEpoch(Epoch epoch, EpochReadings readings, EventStream* out);

  /// Closes all open output events (end of stream).
  void Finish(Epoch epoch, EventStream* out);

  /// Cross-site handoff, departure side (src/dist): marks `ids` to depart
  /// during the NEXT ProcessEpoch. After that epoch's inference, each is
  /// reported and retired exactly like an exit-door sighting, and its
  /// captured state (spire/handoff.h) is appended to `sink` in the staged
  /// order; objects without a graph node are skipped. `ids` must be
  /// leaf-up (contents before their containers) so retiring in order never
  /// leaves a container with live children. Several groups may be staged
  /// before one ProcessEpoch; they are processed in call order. `sink`
  /// must outlive that ProcessEpoch call.
  void StageDeparture(const std::vector<ObjectId>& ids,
                      std::vector<ObjectHandoff>* sink);

  /// Cross-site handoff, arrival side: splices a captured object in ahead
  /// of this pipeline's next ProcessEpoch. Recreates the node (seen_at,
  /// confirmed parent), restores the shipped intra-group containment
  /// edges, clears any exit-grace retirement (a round trip may return
  /// within the grace window), forwards the cached estimate + fade
  /// deadline to the inference layer, and marks the node dirty so the next
  /// complete pass recomputes its component — a stale shipped estimate can
  /// never reach the output stream. Implant a hop's handoffs in their
  /// captured order.
  void ImplantHandoff(const ObjectHandoff& handoff);

  /// Mirrors every event emitted from now on into `archive` (not owned;
  /// must outlive the pipeline; pass nullptr to detach). The caller still
  /// Close()s the archive. Append failures latch into archive_status() and
  /// stop further mirroring; the in-memory output is unaffected.
  void SetArchiveSink(ArchiveWriter* archive) { archive_ = archive; }

  /// First archive-sink failure, or OK.
  const Status& archive_status() const { return archive_status_; }

  /// Attaches the explain channel (not owned; must outlive the pipeline;
  /// nullptr to detach). While attached, every event appended to `out` gets
  /// a provenance record in the log and every level-2 location suppression
  /// a suppression record. The attribution indexes events by their position
  /// in the stream `out` passed to ProcessEpoch/Finish, so one log must only
  /// ever see one output stream.
  void SetExplainSink(obs::ExplainLog* log);

  /// The interpretation results of the last epoch, after conflict
  /// resolution (observability / accuracy evaluation).
  const InferenceResult& last_result() const { return last_result_; }

  /// True when the last epoch ran complete inference.
  bool last_epoch_complete() const { return last_result_.complete; }

  const Graph& graph() const { return graph_; }
  Graph& mutable_graph() { return graph_; }
  const PipelineOptions& options() const { return options_; }

  /// The deployment this pipeline interprets. The serving layer (src/serve)
  /// hosts one pipeline per site and uses this to map a pipeline back to
  /// its site's registry; a pipeline instance itself stays single-threaded
  /// — concurrency is achieved by running disjoint instances in parallel.
  const ReaderRegistry* registry() const { return registry_; }

  /// Costs of the last epoch and cumulative totals.
  const EpochCosts& last_costs() const { return last_costs_; }
  const EpochCosts& total_costs() const { return total_costs_; }
  std::size_t epochs_processed() const { return epochs_processed_; }

 private:
  /// Forwards level-2 suppression decisions into the attached explain log.
  struct SuppressionRecorder final : CompressorObserver {
    obs::ExplainLog* log = nullptr;
    void OnLocationSuppressed(ObjectId object, Epoch epoch,
                              ObjectId covering_container) override {
      if (log != nullptr) {
        log->RecordSuppressed(object, epoch, covering_container, "contained");
      }
    }
  };

  /// Objects staged by one StageDeparture call, capturing into `sink`.
  struct DepartureGroup {
    std::vector<ObjectId> ids;
    std::vector<ObjectHandoff>* sink;
  };

  bool IsRetired(ObjectId id, Epoch epoch) const;
  bool IsWarmupLocation(LocationId location) const;
  /// The shared tail of an exit and a departure: final location report,
  /// compressor retire, node removal, exit-grace entry.
  void RetireObject(ObjectId id, Epoch epoch, EventStream* out);
  /// Captures and retires every staged departure group (call order).
  void ProcessDepartures(Epoch epoch, EventStream* out);
  /// Appends out[first, ...) to the archive sink, latching the first error.
  void MirrorToArchive(const EventStream& out, std::size_t first);
  /// Records provenance for out[first, ...) into the explain log (no-op
  /// when detached). `stage_of` labels events by object id.
  void RecordProvenance(const EventStream& out, std::size_t first, Epoch epoch,
                        const char* default_stage);

  const ReaderRegistry* registry_;
  std::vector<LocationId> warmup_locations_;
  PipelineOptions options_;
  Graph graph_;
  GraphUpdater updater_;
  IterativeInference inference_;
  InferenceSchedule schedule_;
  std::unique_ptr<Compressor> compressor_;
  InferenceResult last_result_;
  /// Recently retired objects and their retirement epoch (exit grace).
  std::unordered_map<ObjectId, Epoch> retired_;
  /// Departure groups staged for the next ProcessEpoch.
  std::vector<DepartureGroup> pending_departures_;
  ArchiveWriter* archive_ = nullptr;
  Status archive_status_;
  obs::ExplainLog* explain_ = nullptr;
  SuppressionRecorder suppression_recorder_;
  /// Estimates of objects that exited this epoch, preserved for provenance
  /// after their entries leave last_result_ (cleared each epoch).
  std::unordered_map<ObjectId, ObjectEstimate> exited_estimates_;
  EpochCosts last_costs_;
  EpochCosts total_costs_;
  std::size_t epochs_processed_ = 0;
};

}  // namespace spire
