// Edge inference (Section IV-A): the most likely container of an object.
//
// For every incoming edge of a node, a weight is computed from the edge's
// recent co-location history (Eq. 1), blended with the node's last
// special-reader confirmation (Eq. 2), and normalized into a probability
// distribution over the candidate containers. The unnormalized blend is the
// edge's *confidence*, which also drives graph pruning (Expt 6).
#pragma once

#include <vector>

#include "graph/graph.h"
#include "inference/params.h"

namespace spire {

/// The outcome of edge inference at one node.
struct EdgeInferenceResult {
  /// The argmax incoming edge, or kNoEdge when the node has no parents.
  EdgeId best_edge = kNoEdge;
  ObjectId best_parent = kNoObject;
  double best_prob = 0.0;
  /// Probability of the second-best candidate container; 0 when the node
  /// has fewer than two parents. Feeds the explain channel's posterior gap.
  double runner_up_prob = 0.0;
};

/// Computes Eqs. 1-2 over a graph. The per-edge probabilities of the last
/// call per node are stored in a dense arena (indexed by EdgeId) so that
/// node inference can later read the propagation weight of any edge.
class EdgeInferencer {
 public:
  EdgeInferencer(const Graph* graph, const InferenceParams* params)
      : graph_(graph), params_(params) {}

  /// Eq. 1: the normalized Zipf-weighted co-location weight of an edge.
  /// History is normalized over the observations actually held (at most S),
  /// so a fresh edge with one positive instance has weight 1.
  double Weight(const Edge& edge) const;

  /// Eq. 2 numerator: (1-beta) * m(e) + beta * w(e), before normalization.
  /// `beta` is resolved per node when the adaptive heuristic is enabled.
  double Confidence(const Edge& edge, const Node& child) const;

  /// Runs edge inference over all incoming edges of `node`: fills the edge
  /// probability arena and returns the most likely parent. Optionally
  /// collects the ids of edges whose confidence fell below the pruning
  /// threshold (the caller removes them; pruning never happens here so the
  /// computation stays read-only).
  EdgeInferenceResult InferAt(const Node& node,
                              std::vector<EdgeId>* prunable = nullptr);

  /// The probability assigned to an edge by the last InferAt() on its child
  /// node; 0 for edges not yet visited this pass.
  double ProbabilityOf(EdgeId edge) const {
    return edge < probabilities_.size() ? probabilities_[edge] : 0.0;
  }

  /// Resets the probability arena for a new inference pass.
  void BeginPass();

  /// The effective beta for a node (adaptive heuristic of Expt 1: the
  /// fraction of conflicting observations since the last confirmation).
  double EffectiveBeta(const Node& child) const;

 private:
  const Graph* graph_;
  const InferenceParams* params_;
  std::vector<double> probabilities_;
};

}  // namespace spire
