#include "compress/fold.h"

#include <algorithm>
#include <map>
#include <utility>

namespace spire {

std::vector<RangedEvent> FoldEvents(const EventStream& stream) {
  // Track the open interval per (object, kind) and fold on End*.
  std::map<std::pair<ObjectId, bool>, std::size_t> open;
  std::vector<RangedEvent> folded;
  for (const Event& event : stream) {
    switch (event.type) {
      case EventType::kStartLocation:
      case EventType::kStartContainment: {
        RangedEvent ranged;
        ranged.type = event.type;
        ranged.object = event.object;
        ranged.location = event.location;
        ranged.container = event.container;
        ranged.start = event.start;
        ranged.end = kInfiniteEpoch;
        open[{event.object, IsContainmentEvent(event.type)}] = folded.size();
        folded.push_back(ranged);
        break;
      }
      case EventType::kEndLocation:
      case EventType::kEndContainment: {
        auto it = open.find({event.object, IsContainmentEvent(event.type)});
        if (it != open.end()) {
          folded[it->second].end = event.end;
          open.erase(it);
        }
        break;
      }
      case EventType::kMissing: {
        RangedEvent ranged;
        ranged.type = EventType::kMissing;
        ranged.object = event.object;
        ranged.location = event.location;
        ranged.start = event.start;
        ranged.end = event.end;
        folded.push_back(ranged);
        break;
      }
    }
  }
  std::sort(folded.begin(), folded.end(),
            [](const RangedEvent& a, const RangedEvent& b) {
              if (a.object != b.object) return a.object < b.object;
              if (a.start != b.start) return a.start < b.start;
              return a.type < b.type;
            });
  return folded;
}

}  // namespace spire
