// The coordinator side of the distributed serving protocol.
//
// The coordinator owns the raw workload and the transfer schedule. It
// feeds every node one EpochWork frame per epoch (flow-controlled by the
// nodes' Barrier frames), routes captured Handoff frames from the
// departure node to the arrival node *before* that node's arrival epoch,
// and merges the returned SiteBatch frames with the same EventMerger the
// in-process serving layer uses — so the merged stream is byte-identical
// to a serial per-site run for any node count and transfer schedule.
//
// Deadlock freedom: a node emits all frames of epoch d (batches, captured
// handoffs, barrier) before touching epoch d+1, hops depart strictly
// before they arrive, and the coordinator forwards a hop's handoff on the
// same FIFO connection ahead of the arrival epoch's work — so the handoff
// a node waits for is always already in flight.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "compress/event.h"
#include "dist/transport.h"
#include "obs/registry.h"
#include "serve/workload.h"
#include "sim/transfer.h"
#include "spire/pipeline.h"

namespace spire::dist {

/// Node-count-independent site placement: site -> site mod num_nodes.
inline int NodeOfSite(int site, int num_nodes) { return site % num_nodes; }

/// The global site indexes node `node` owns (ascending).
std::vector<int> SitesOfNode(int node, int num_sites, int num_nodes);

/// Coordinator/run options.
struct DistOptions {
  int num_nodes = 2;
  /// Per-node flow-control window: epochs of work in flight beyond the
  /// node's last barrier.
  std::size_t inflight_epochs = 64;
  /// Stats cadence announced in the coordinator's Hello: nodes ship a
  /// StatsReport every N epochs plus a final one at shutdown (0 = never).
  std::uint32_t stats_interval_epochs = 0;
  PipelineOptions pipeline;
};

/// Outcome of one distributed run.
struct DistResult {
  Status status;
  /// The merged output stream, ordered by (epoch, site).
  EventStream events;
  /// Hops and objects routed through the coordinator.
  std::size_t handoff_hops = 0;
  std::size_t handoff_objects = 0;
  /// Latest StatsReport snapshot per node (indexed by node id); a node
  /// that never reported leaves an empty snapshot. Populated only when
  /// stats_interval_epochs > 0.
  std::vector<obs::RegistrySnapshot> node_stats;
};

/// Runs the coordinator over one connection per node; conns[n] talks to
/// the node owning SitesOfNode(n, ...). `workload` supplies the raw
/// readings and epoch horizon, `hops` the transfer schedule (hops are
/// forwarded in schedule order; hops arriving at or after the horizon are
/// captured but never delivered, exactly like the serial reference).
/// Blocks until every node finished or a protocol/transport error aborted
/// the run.
DistResult RunDistCoordinator(const serve::Workload& workload,
                              const std::vector<TransferHop>& hops,
                              const DistOptions& options,
                              const std::vector<Conn*>& conns);

}  // namespace spire::dist
