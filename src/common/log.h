// Minimal thread-safe logging.
//
// Every module that runs off the main thread (the serving layer in
// particular) logs through this facade. One process-wide mutex serializes
// writes so a log line is always emitted atomically — concurrent shard
// threads never interleave characters. Two output shapes:
//
//   text (default)   [12.345678] I serve: started 4 shards over 4 sites
//   JSON             {"ts_us":12345678,"level":"info","component":"serve",
//                     "msg":"started 4 shards over 4 sites"}
//
// JSON mode is selected with SPIRE_LOG_JSON=1 in the environment (read
// once, overridable in-process for tests); the minimum level with
// SPIRE_LOG_LEVEL=debug|info|warn|error (default info). Timestamps are
// microseconds since the first log call, so lines are diffable across runs.
#pragma once

#include <iosfwd>
#include <string>

namespace spire {

/// Severity of a log line.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Human-readable level name ("debug", "info", ...).
const char* ToString(LogLevel level);

/// Emits one line. Drops the line when `level` is below the minimum.
/// Thread-safe; the line reaches the sink atomically.
void Log(LogLevel level, const std::string& component,
         const std::string& message);

/// Convenience wrappers.
inline void LogDebug(const std::string& component, const std::string& message) {
  Log(LogLevel::kDebug, component, message);
}
inline void LogInfo(const std::string& component, const std::string& message) {
  Log(LogLevel::kInfo, component, message);
}
inline void LogWarn(const std::string& component, const std::string& message) {
  Log(LogLevel::kWarn, component, message);
}
inline void LogError(const std::string& component, const std::string& message) {
  Log(LogLevel::kError, component, message);
}

/// True when lines are emitted as JSON objects (SPIRE_LOG_JSON=1).
bool LogJsonMode();

/// Overrides the environment-selected output shape (tests, embedders).
void SetLogJsonMode(bool json);

/// Minimum emitted level (SPIRE_LOG_LEVEL, default info).
LogLevel MinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Redirects log output; nullptr restores the default (stderr). The caller
/// keeps ownership and must not destroy the sink while logging is possible.
void SetLogSink(std::ostream* sink);

/// Escapes `text` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Shared with the metrics JSON dump.
std::string JsonEscape(const std::string& text);

}  // namespace spire
