// End-to-end integration tests: simulator -> SPIRE pipeline -> compressed
// event stream, checked against the ground truth.
#include <gtest/gtest.h>

#include "common/epc.h"
#include "compress/decompress.h"
#include "compress/well_formed.h"
#include "eval/accuracy.h"
#include "eval/event_accuracy.h"
#include "eval/delay.h"
#include "eval/size_accounting.h"
#include "sim/simulator.h"
#include "spire/pipeline.h"

namespace spire {
namespace {

SimConfig SmallConfig() {
  SimConfig config;
  config.duration_epochs = 1500;
  config.pallet_interval = 250;
  config.min_cases_per_pallet = 2;
  config.max_cases_per_pallet = 3;
  config.items_per_case = 5;
  config.mean_shelf_stay = 400;
  config.shelf_period = 20;
  config.num_shelves = 3;
  return config;
}

struct RunResult {
  EventStream output;
  EventStream truth;
  AccuracyStats accuracy;
  std::size_t raw_readings = 0;
  std::vector<Theft> thefts;
  LocationId entry_door = kUnknownLocation;
};

RunResult RunPipeline(const SimConfig& config, const PipelineOptions& options) {
  auto sim = WarehouseSimulator::Create(config);
  EXPECT_TRUE(sim.ok());
  WarehouseSimulator& s = *sim.value();
  SpirePipeline pipeline(&s.registry(), options);
  RunResult run;
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &run.output);
    if (pipeline.last_epoch_complete()) {
      run.accuracy += EvaluateEstimates(pipeline.last_result(), s.world(),
                                        s.layout().entry_door);
    }
  }
  Epoch end = s.current_epoch() + 1;
  pipeline.Finish(end, &run.output);
  s.FinishTruth();
  run.truth = s.truth_events();
  run.raw_readings = s.total_readings();
  run.thefts = s.thefts();
  run.entry_door = s.layout().entry_door;
  return run;
}

TEST(PipelineTest, OutputAlwaysWellFormed) {
  for (CompressionLevel level :
       {CompressionLevel::kLevel1, CompressionLevel::kLevel2}) {
    PipelineOptions options;
    options.level = level;
    RunResult run = RunPipeline(SmallConfig(), options);
    EXPECT_TRUE(ValidateWellFormed(run.output).ok())
        << "level " << static_cast<int>(level);
    EXPECT_FALSE(run.output.empty());
  }
}

TEST(PipelineTest, HighReadRateIsAccurate) {
  SimConfig config = SmallConfig();
  config.read_rate = 0.95;
  RunResult run = RunPipeline(config, PipelineOptions{});
  EXPECT_LT(run.accuracy.LocationErrorRate(), 0.05);
  EXPECT_LT(run.accuracy.ContainmentErrorRate(), 0.05);
}

TEST(PipelineTest, AccuracyDegradesGracefullyAtLowReadRate) {
  SimConfig config = SmallConfig();
  config.read_rate = 0.5;
  RunResult run = RunPipeline(config, PipelineOptions{});
  // Degraded but far from random.
  EXPECT_LT(run.accuracy.LocationErrorRate(), 0.35);
  EXPECT_GT(run.accuracy.location_total, 0u);
}

TEST(PipelineTest, Level2NoLargerThanLevel1) {
  SimConfig config = SmallConfig();
  PipelineOptions level1;
  level1.level = CompressionLevel::kLevel1;
  PipelineOptions level2;
  level2.level = CompressionLevel::kLevel2;
  RunResult run1 = RunPipeline(config, level1);
  RunResult run2 = RunPipeline(config, level2);
  EXPECT_LE(run2.output.size(), run1.output.size());
  // And both far below the raw stream size.
  EXPECT_LT(CompressionRatio(run1.output, run1.raw_readings), 0.25);
}

TEST(PipelineTest, Level2DecompressesToHighFidelityStream) {
  PipelineOptions options;
  options.level = CompressionLevel::kLevel2;
  RunResult run = RunPipeline(SmallConfig(), options);
  EventStream decompressed = StripLocationEvents(
      Decompressor::DecompressAll(run.output), run.entry_door);
  EXPECT_TRUE(ValidateWellFormed(decompressed, true).ok());
  EventStream truth = StripLocationEvents(run.truth, run.entry_door);
  EventAccuracy f = CompareEventStreams(decompressed, truth, EventClass::kAll);
  EXPECT_GT(f.FMeasure(), 0.9);
}

TEST(PipelineTest, Level1AndLevel2AgreeAfterDecompression) {
  // Level-2 is lossless: its decompressed location facts must cover what
  // level-1 reported (same trace, same inference).
  SimConfig config = SmallConfig();
  PipelineOptions level1;
  level1.level = CompressionLevel::kLevel1;
  PipelineOptions level2;
  level2.level = CompressionLevel::kLevel2;
  RunResult run1 = RunPipeline(config, level1);
  RunResult run2 = RunPipeline(config, level2);
  EventStream decompressed = Decompressor::DecompressAll(run2.output);
  EventAccuracy agree = CompareEventStreams(decompressed, run1.output,
                                            EventClass::kLocationOnly,
                                            /*start_tolerance=*/5);
  EXPECT_GT(agree.FMeasure(), 0.93);
}

TEST(PipelineTest, DetectsThefts) {
  SimConfig config = SmallConfig();
  config.theft_interval = 300;
  config.duration_epochs = 2400;
  RunResult run = RunPipeline(config, PipelineOptions{});
  ASSERT_FALSE(run.thefts.empty());
  DelayStats delay = EvaluateDetectionDelay(run.thefts, run.output,
                                            /*horizon=*/1200);
  EXPECT_GT(delay.DetectionRate(), 0.5);
  EXPECT_GT(delay.detected, 0u);
}

TEST(PipelineTest, NoOutputForWarmupArea) {
  PipelineOptions options;
  RunResult run = RunPipeline(SmallConfig(), options);
  for (const Event& event : run.output) {
    if (!IsContainmentEvent(event.type) &&
        event.type != EventType::kMissing) {
      EXPECT_NE(event.location, run.entry_door);
    }
  }
}

TEST(PipelineTest, ExitReportHonorsWarmupSuppression) {
  // Regression: the exit path reported the exiting object's estimate to the
  // compressor without the warm-up filter. With an exit reader co-located
  // with an entry door (a shared dock door), the final sighting leaked
  // dock-area location events into the output despite
  // suppress_warmup_output keeping every other report quiet there.
  ReaderRegistry registry;
  LocationId dock = registry.AddLocation("dock");
  ReaderInfo r0;
  r0.id = 0;
  r0.location = dock;
  r0.type = ReaderType::kEntryDoor;
  ASSERT_TRUE(registry.AddReader(r0).ok());
  ReaderInfo r1;
  r1.id = 1;
  r1.location = dock;
  r1.type = ReaderType::kExitDoor;
  ASSERT_TRUE(registry.AddReader(r1).ok());
  EpcFields fields;
  fields.level = PackagingLevel::kItem;
  fields.serial = 7;
  const ObjectId tag = EncodeEpcUnchecked(fields);
  auto read = [&](ReaderId reader, Epoch epoch) {
    RfidReading r;
    r.tag = tag;
    r.reader = reader;
    r.epoch = epoch;
    return r;
  };
  SpirePipeline pipeline(&registry, PipelineOptions{});
  EventStream out;
  for (Epoch e = 1; e <= 3; ++e) {
    pipeline.ProcessEpoch(e, {read(0, e)}, &out);
  }
  pipeline.ProcessEpoch(4, {read(1, 4)}, &out);  // Exit read at the dock.
  pipeline.Finish(5, &out);
  for (const Event& event : out) {
    if (!IsContainmentEvent(event.type)) {
      EXPECT_NE(event.location, dock) << event.ToString();
    }
  }
}

TEST(PipelineTest, WarmupSuppressionCanBeDisabled) {
  PipelineOptions options;
  options.suppress_warmup_output = false;
  RunResult run = RunPipeline(SmallConfig(), options);
  bool entry_seen = false;
  for (const Event& event : run.output) {
    entry_seen |= event.type == EventType::kStartLocation &&
                  event.location == run.entry_door;
  }
  EXPECT_TRUE(entry_seen);
}

TEST(PipelineTest, LocationOnlyOutputOption) {
  PipelineOptions options;
  options.compressor.emit_containment = false;
  RunResult run = RunPipeline(SmallConfig(), options);
  for (const Event& event : run.output) {
    EXPECT_FALSE(IsContainmentEvent(event.type));
  }
  EXPECT_FALSE(run.output.empty());
}

TEST(PipelineTest, CostsAreTracked) {
  auto sim = WarehouseSimulator::Create(SmallConfig());
  WarehouseSimulator& s = *sim.value();
  SpirePipeline pipeline(&s.registry(), PipelineOptions{});
  EventStream out;
  for (int i = 0; i < 100 && !s.Done(); ++i) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &out);
  }
  EXPECT_EQ(pipeline.epochs_processed(), 100u);
  EXPECT_GT(pipeline.total_costs().total_seconds(), 0.0);
}

TEST(PipelineTest, GraphDrainsAfterTrafficStops) {
  // All injected objects eventually exit and their nodes are retired.
  SimConfig config = SmallConfig();
  config.duration_epochs = 2500;
  config.pallet_interval = 3000;  // A single pallet (injected at epoch 0).
  config.mean_shelf_stay = 200;
  auto sim = WarehouseSimulator::Create(config);
  WarehouseSimulator& s = *sim.value();
  SpirePipeline pipeline(&s.registry(), PipelineOptions{});
  EventStream out;
  std::size_t peak_nodes = 0;
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &out);
    peak_nodes = std::max(peak_nodes, pipeline.graph().NumNodes());
  }
  EXPECT_GT(peak_nodes, 10u);
  // Everything exited; at most the odd object missed at the exit remains.
  EXPECT_LT(pipeline.graph().NumNodes(), 5u);
}

TEST(PipelineTest, AblationModesStayWellFormed) {
  for (InferenceMode mode : {InferenceMode::kAlwaysComplete,
                             InferenceMode::kCompleteOnly}) {
    PipelineOptions options;
    options.inference_mode = mode;
    RunResult run = RunPipeline(SmallConfig(), options);
    EXPECT_TRUE(ValidateWellFormed(run.output).ok())
        << "mode " << static_cast<int>(mode);
    EXPECT_FALSE(run.output.empty());
  }
  PipelineOptions no_conflicts;
  no_conflicts.resolve_conflicts = false;
  RunResult run = RunPipeline(SmallConfig(), no_conflicts);
  EXPECT_TRUE(ValidateWellFormed(run.output).ok());
}

TEST(PipelineTest, AlwaysCompleteCostsMore) {
  SimConfig config = SmallConfig();
  config.duration_epochs = 600;
  auto run_cost = [&](InferenceMode mode) {
    auto sim = WarehouseSimulator::Create(config);
    WarehouseSimulator& s = *sim.value();
    PipelineOptions options;
    options.inference_mode = mode;
    SpirePipeline pipeline(&s.registry(), options);
    EventStream out;
    while (!s.Done()) {
      EpochReadings readings = s.Step();
      pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &out);
    }
    return pipeline.total_costs().inference_seconds;
  };
  EXPECT_GT(run_cost(InferenceMode::kAlwaysComplete),
            run_cost(InferenceMode::kScheduled));
}

TEST(PipelineTest, DeterministicAcrossRuns) {
  PipelineOptions options;
  RunResult a = RunPipeline(SmallConfig(), options);
  RunResult b = RunPipeline(SmallConfig(), options);
  EXPECT_EQ(a.output, b.output);
}

TEST(PipelineTest, PerfectReadRateNearPerfectEvents) {
  SimConfig config = SmallConfig();
  config.read_rate = 1.0;
  PipelineOptions options;
  options.level = CompressionLevel::kLevel1;
  RunResult run = RunPipeline(config, options);
  // Even at a perfect read rate, an object that just departed is briefly
  // still believed present (the theta tradeoff of Section IV-B), and a case
  // waiting in the packaging area is briefly attributed to a co-located
  // pallet, so small residual errors remain.
  EXPECT_LT(run.accuracy.LocationErrorRate(), 0.05);
  EXPECT_LT(run.accuracy.ContainmentErrorRate(), 0.01);
  EventStream output = StripLocationEvents(run.output, run.entry_door);
  EventStream truth = StripLocationEvents(run.truth, run.entry_door);
  EventAccuracy f = CompareEventStreams(output, truth, EventClass::kAll);
  EXPECT_GT(f.FMeasure(), 0.94);
}

}  // namespace
}  // namespace spire
