// Front ends for distributed runs over a multi-site transfer trace, plus
// the serial reference every distributed execution must match byte for
// byte (the distributed_equivalence oracle).
#pragma once

#include <vector>

#include "common/status.h"
#include "compress/event.h"
#include "dist/coordinator.h"
#include "serve/workload.h"
#include "sim/transfer.h"
#include "spire/pipeline.h"

namespace spire::dist {

/// A transfer trace as a serving workload: site i's registry and epoch
/// stream with cumulative location offsets. Tags are already globally
/// disjoint (the trace generator plants the site index in the EPC company
/// prefix), so this bypasses serve::NormalizeWorkload — it would reject
/// the pre-sited tag spaces. Fails when the combined location id spaces
/// overflow LocationId.
Result<serve::Workload> ToWorkload(const TransferTrace& trace);

/// The serial reference: one pipeline per site, epochs advanced in
/// (epoch, site) order with handoffs captured and spliced in memory at
/// their schedule epochs. Output events are remapped into the global
/// location space and concatenated in (epoch, site) order — the stream
/// every distributed run reproduces exactly, for any node count.
EventStream RunDistReference(const serve::Workload& workload,
                             const std::vector<TransferHop>& hops,
                             const PipelineOptions& options);

/// Runs coordinator plus `options.num_nodes` node threads over loopback
/// connections in this process (deterministic, TSan-clean). The node
/// count is clamped to [1, site count].
DistResult RunDistLoopback(const serve::Workload& workload,
                           const std::vector<TransferHop>& hops,
                           DistOptions options);

/// Runs each node in a forked child process over a socketpair (the
/// coordinator stays in this process). Fork happens before any
/// coordinator thread starts. Not for sanitizer builds that dislike
/// fork-with-threads; node counts are clamped as in RunDistLoopback.
DistResult RunDistProcesses(const serve::Workload& workload,
                            const std::vector<TransferHop>& hops,
                            DistOptions options);

}  // namespace spire::dist
