#include "sim/layout.h"

#include <string>

namespace spire {

namespace {

Status AddReader(ReaderRegistry* registry, ReaderId* out, LocationId location,
                 ReaderType type, Epoch period, const std::string& name) {
  ReaderInfo info;
  info.id = static_cast<ReaderId>(registry->readers().size());
  info.location = location;
  info.type = type;
  info.period_epochs = period;
  info.name = name;
  SPIRE_RETURN_NOT_OK(registry->AddReader(info));
  *out = info.id;
  return Status::OK();
}

}  // namespace

Result<WarehouseLayout> WarehouseLayout::Build(const SimConfig& config) {
  SPIRE_RETURN_NOT_OK(config.Validate());
  WarehouseLayout layout;
  ReaderRegistry& reg = layout.registry;

  layout.entry_door = reg.AddLocation("entry_door");
  layout.receiving_belt = reg.AddLocation("receiving_belt");
  for (int i = 0; i < config.num_shelves; ++i) {
    layout.shelves.push_back(reg.AddLocation("shelf_" + std::to_string(i)));
  }
  layout.packaging = reg.AddLocation("packaging");
  layout.outgoing_belt = reg.AddLocation("outgoing_belt");
  layout.exit_door = reg.AddLocation("exit_door");

  SPIRE_RETURN_NOT_OK(AddReader(&reg, &layout.entry_reader, layout.entry_door,
                                ReaderType::kEntryDoor, 1, "entry"));
  SPIRE_RETURN_NOT_OK(AddReader(&reg, &layout.receiving_belt_reader,
                                layout.receiving_belt,
                                ReaderType::kReceivingBelt, 1, "rcv_belt"));
  for (int i = 0; i < config.num_shelves; ++i) {
    ReaderId id = kNoReader;
    SPIRE_RETURN_NOT_OK(AddReader(&reg, &id, layout.shelves[i],
                                  ReaderType::kShelf, config.shelf_period,
                                  "shelf_" + std::to_string(i)));
    layout.shelf_readers.push_back(id);
  }
  SPIRE_RETURN_NOT_OK(AddReader(&reg, &layout.packaging_reader,
                                layout.packaging, ReaderType::kPackaging, 1,
                                "packaging"));
  SPIRE_RETURN_NOT_OK(AddReader(&reg, &layout.outgoing_belt_reader,
                                layout.outgoing_belt,
                                ReaderType::kOutgoingBelt, 1, "out_belt"));
  SPIRE_RETURN_NOT_OK(AddReader(&reg, &layout.exit_reader, layout.exit_door,
                                ReaderType::kExitDoor, 1, "exit"));
  if (config.patrol_reader) {
    // A mobile reader cycling all shelves (home = the first shelf).
    SPIRE_RETURN_NOT_OK(AddReader(&reg, &layout.patrol_reader,
                                  layout.shelves[0], ReaderType::kMobile, 1,
                                  "patrol"));
    SPIRE_RETURN_NOT_OK(
        reg.SetPatrol(layout.patrol_reader, layout.shelves,
                      config.patrol_dwell));
  }
  return layout;
}

}  // namespace spire
