// Sharded LRU cache of decoded archive blocks, shared by concurrent
// segment-direct query threads (segment_log.h).
//
// The cache sits between ArchiveReader and the block codecs: a hit returns
// the decoded EventStream without touching the segment or paying a decode;
// a miss is decoded by the caller and offered back with Put. Entries are
// handed out as shared_ptr<const EventStream>, so an entry evicted while a
// reader still folds it stays alive until that reader drops it — eviction
// never invalidates an in-flight query.
//
// Keys are (segment tag, block index). Tags come from NextSegmentTag(), a
// process-wide counter, so two opens of the same path — or a segment
// replaced on disk by `compact` — never alias cache entries: a SegmentLog
// is snapshot-isolated from whatever happens to the file after open.
//
// Capacity is in bytes of decoded events, split evenly across the shards;
// each shard orders its entries LRU under its own mutex, so threads hitting
// different shards never contend. Concurrent misses on one key may both
// decode (misses can exceed unique blocks; `decodes <= misses` is the
// reconciliation invariant, with `hits + misses == lookups`) — the second
// Put is a no-op, which keeps the bytes accounting exact.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "compress/event.h"

namespace spire {

class BlockCache {
 public:
  using BlockPtr = std::shared_ptr<const EventStream>;

  /// Aggregate counters across all shards. lookups == hits + misses by
  /// construction; bytes is the current decoded footprint.
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;
    std::uint64_t capacity_bytes = 0;
  };

  /// A cache holding up to `capacity_bytes` of decoded events across
  /// `num_shards` independently locked LRU shards.
  explicit BlockCache(std::uint64_t capacity_bytes,
                      std::size_t num_shards = kDefaultShards);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// The decoded block, or nullptr on a miss (counted). A hit refreshes
  /// the entry's LRU position.
  BlockPtr Get(std::uint64_t segment_tag, std::uint32_t block_index);

  /// Offers a decoded block. No-op when the key is already present (the
  /// loser of a concurrent same-key miss race). May evict LRU entries to
  /// stay within the shard's capacity; the entry just inserted is never
  /// the one evicted, so even a block larger than a whole shard serves
  /// at least its own next lookup.
  void Put(std::uint64_t segment_tag, std::uint32_t block_index,
           BlockPtr block);

  Stats GetStats() const;

  std::uint64_t capacity_bytes() const { return capacity_bytes_; }

  /// Process-wide unique tag for one opened segment view; see file comment.
  static std::uint64_t NextSegmentTag();

  /// Charged per entry on top of the event payload: list + map node and
  /// control-block bookkeeping.
  static constexpr std::uint64_t kEntryOverheadBytes = 96;

 private:
  static constexpr std::size_t kDefaultShards = 8;

  struct Entry {
    BlockPtr block;
    std::uint64_t cost = 0;
    std::list<std::uint64_t>::iterator lru_pos;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<std::uint64_t> lru;  ///< Front = most recently used.
    std::unordered_map<std::uint64_t, Entry> entries;
    std::uint64_t bytes = 0;
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& ShardFor(std::uint64_t key);

  std::uint64_t capacity_bytes_;
  std::uint64_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace spire
