// Per-object interpretation results.
#pragma once

#include <unordered_map>

#include "common/types.h"

namespace spire {

/// The most-likely state of one object, as estimated by iterative inference
/// (Section IV) and possibly amended by conflict resolution (Table I).
struct ObjectEstimate {
  ObjectId object = kNoObject;
  /// argmax_k resides(o, l_k, now); kUnknownLocation when the object is most
  /// likely absent from every known location.
  LocationId location = kUnknownLocation;
  /// Probability of the chosen location.
  double location_prob = 0.0;
  /// Probability of the second-best location candidate (explain channel).
  double location_runner_up = 0.0;
  /// argmax_j contained(o, o_j, *, now); kNoObject when uncontained.
  ObjectId container = kNoObject;
  /// Probability of the chosen container edge.
  double container_prob = 0.0;
  /// Probability of the second-best container edge (explain channel).
  double container_runner_up = 0.0;
  /// True when the object was directly observed this epoch (d = 0).
  bool observed = false;
  /// True when the location result must be withheld from output: partial
  /// inference produced "unknown" from an incomplete view (Section IV-D).
  bool withheld = false;

  bool operator==(const ObjectEstimate&) const = default;
};

/// Results of one inference pass, keyed by object.
struct InferenceResult {
  Epoch epoch = kNeverEpoch;
  /// True for complete inference, false for partial.
  bool complete = false;
  std::unordered_map<ObjectId, ObjectEstimate> estimates;
  /// Edges pruned during this pass.
  std::size_t edges_pruned = 0;
  /// Number of BFS waves the coloring took to converge (explain channel).
  std::size_t waves = 0;
};

}  // namespace spire
