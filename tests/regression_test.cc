// Regression tests for behaviors introduced while calibrating the
// reproduction: opportunity-normalized fading ages, the frequency-aware
// SMURF adaptations, and the pipeline's exit grace window.
#include <gtest/gtest.h>

#include "common/epc.h"
#include "graph/graph.h"
#include "inference/edge_inference.h"
#include "inference/iterative.h"
#include "inference/node_inference.h"
#include "smurf/smurf.h"
#include "spire/pipeline.h"
#include "stream/reader.h"

namespace spire {
namespace {

ObjectId Obj(PackagingLevel level, std::uint32_t serial) {
  EpcFields fields;
  fields.level = level;
  fields.serial = serial;
  return EncodeEpcUnchecked(fields);
}

RfidReading MakeReading(ObjectId tag, ReaderId reader, Epoch epoch) {
  RfidReading r;
  r.tag = tag;
  r.reader = reader;
  r.epoch = epoch;
  return r;
}

// ----------------------------------------------- Normalized fading ages ---

class NormalizedFadingTest : public ::testing::Test {
 protected:
  NormalizedFadingTest()
      : edges_(&graph_, &params_),
        // Location 0 has a fast reader (period 1), location 1 a slow shelf
        // reader (period 60).
        nodes_(&graph_, &params_, &edges_, {1, 60}) {
    graph_.BeginEpoch(1);
  }

  PassColors ObservedOnly() { return PassColors{&graph_}; }

  Graph graph_{8};
  InferenceParams params_;
  EdgeInferencer edges_;
  NodeInferencer nodes_;
};

TEST_F(NormalizedFadingTest, SlowReaderSilenceIsWeakEvidence) {
  Node& node = graph_.GetOrCreateNode(Obj(PackagingLevel::kItem, 1));
  graph_.ColorNode(node, 1);  // Seen at the slow shelf.
  graph_.BeginEpoch(61);      // One missed shelf reading.
  EXPECT_DOUBLE_EQ(nodes_.FadingAge(node, 61), 1.0);
  // Belief barely faded: the object is still believed on the shelf.
  EXPECT_EQ(nodes_.InferAt(node, 61, ObservedOnly()).location, 1);
}

TEST_F(NormalizedFadingTest, FastReaderSilenceIsStrongEvidence) {
  Node& node = graph_.GetOrCreateNode(Obj(PackagingLevel::kItem, 1));
  graph_.ColorNode(node, 0);  // Seen at the fast reader.
  graph_.BeginEpoch(61);      // Sixty missed readings.
  EXPECT_DOUBLE_EQ(nodes_.FadingAge(node, 61), 60.0);
  EXPECT_EQ(nodes_.InferAt(node, 61, ObservedOnly()).location,
            kUnknownLocation);
}

TEST_F(NormalizedFadingTest, ManyMissedOpportunitiesEventuallyFade) {
  Node& node = graph_.GetOrCreateNode(Obj(PackagingLevel::kItem, 1));
  graph_.ColorNode(node, 1);
  graph_.BeginEpoch(601);  // Ten missed shelf readings.
  EXPECT_DOUBLE_EQ(nodes_.FadingAge(node, 601), 10.0);
  EXPECT_EQ(nodes_.InferAt(node, 601, ObservedOnly()).location,
            kUnknownLocation);
}

TEST_F(NormalizedFadingTest, NormalizationCanBeDisabled) {
  params_.normalize_age_by_reader_period = false;
  Node& node = graph_.GetOrCreateNode(Obj(PackagingLevel::kItem, 1));
  graph_.ColorNode(node, 1);
  graph_.BeginEpoch(61);
  EXPECT_DOUBLE_EQ(nodes_.FadingAge(node, 61), 60.0);  // Raw epochs.
}

TEST(LocationPeriodsTest, FastestReaderWinsPerLocation) {
  ReaderRegistry registry;
  LocationId a = registry.AddLocation("a");
  LocationId b = registry.AddLocation("b");
  ReaderInfo slow;
  slow.id = 0;
  slow.location = b;
  slow.period_epochs = 60;
  ReaderInfo fast;
  fast.id = 1;
  fast.location = b;
  fast.period_epochs = 10;
  ReaderInfo plain;
  plain.id = 2;
  plain.location = a;
  plain.period_epochs = 1;
  ASSERT_TRUE(registry.AddReader(slow).ok());
  ASSERT_TRUE(registry.AddReader(fast).ok());
  ASSERT_TRUE(registry.AddReader(plain).ok());
  std::vector<Epoch> periods = LocationPeriods(registry);
  ASSERT_EQ(periods.size(), 2u);
  EXPECT_EQ(periods[a], 1);
  EXPECT_EQ(periods[b], 10);  // The faster of the two shelf readers.
  EXPECT_EQ(IterativeInference::LocationPeriods(&registry), periods);
  EXPECT_TRUE(IterativeInference::LocationPeriods(nullptr).empty());
}

// ------------------------------------------- Frequency-aware SMURF --------

class SlowReaderSmurfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LocationId fast = registry_.AddLocation("fast");
    LocationId shelf = registry_.AddLocation("shelf");
    ReaderInfo fast_reader;
    fast_reader.id = 0;
    fast_reader.location = fast;
    fast_reader.period_epochs = 1;
    ReaderInfo shelf_reader;
    shelf_reader.id = 1;
    shelf_reader.location = shelf;
    shelf_reader.period_epochs = 60;
    ASSERT_TRUE(registry_.AddReader(fast_reader).ok());
    ASSERT_TRUE(registry_.AddReader(shelf_reader).ok());
  }

  static LocationId LocationIn(const std::vector<ObjectStateEstimate>& v,
                               ObjectId tag) {
    for (const auto& e : v) {
      if (e.object == tag) return e.location;
    }
    return kUnknownLocation;
  }

  ReaderRegistry registry_;
};

TEST_F(SlowReaderSmurfTest, NoFlappingBetweenPerfectShelfReads) {
  SmurfCleaner cleaner(&registry_);
  ObjectId tag = Obj(PackagingLevel::kItem, 1);
  // Read at every shelf opportunity (perfect read rate, 1-per-60 cadence).
  std::vector<ObjectStateEstimate> estimates;
  bool always_present = true;
  for (Epoch now = 0; now < 600; ++now) {
    EpochReadings readings;
    if (now % 60 == 0) readings.push_back(MakeReading(tag, 1, now));
    estimates = cleaner.ProcessEpoch(now, readings);
    if (now > 60 && LocationIn(estimates, tag) == kUnknownLocation) {
      always_present = false;
    }
  }
  EXPECT_TRUE(always_present)
      << "a perfectly read tag flapped between slow shelf reads";
}

TEST_F(SlowReaderSmurfTest, FrequencyAwarenessBridgesReaderHandoff) {
  // After a fast-reader -> shelf handoff, the frequency-aware windows reach
  // several shelf periods quickly: once warmed up (one shelf period), the
  // tag never flaps between perfect shelf reads.
  SmurfCleaner aware(&registry_);
  ObjectId tag = Obj(PackagingLevel::kItem, 1);
  Epoch now = 0;
  for (; now < 30; ++now) {
    aware.ProcessEpoch(now, {MakeReading(tag, 0, now)});
  }
  bool aware_flapped = false;
  for (; now < 400; ++now) {
    EpochReadings readings;
    if (now % 60 == 0) readings.push_back(MakeReading(tag, 1, now));
    auto estimates = aware.ProcessEpoch(now, readings);
    if (now > 120 && LocationIn(estimates, tag) == kUnknownLocation) {
      aware_flapped = true;
    }
  }
  EXPECT_FALSE(aware_flapped);
}

TEST_F(SlowReaderSmurfTest, LocationChangeResetsStatistics) {
  SmurfCleaner cleaner(&registry_);
  ObjectId tag = Obj(PackagingLevel::kItem, 1);
  Epoch now = 0;
  for (; now < 30; ++now) {
    cleaner.ProcessEpoch(now, {MakeReading(tag, 0, now)});
  }
  EXPECT_GT(cleaner.WindowOf(tag), 1);
  // Move to the shelf: the per-epoch history must not poison the new
  // per-minute cadence.
  cleaner.ProcessEpoch(now, {MakeReading(tag, 1, now)});
  EXPECT_EQ(cleaner.WindowOf(tag), 1);
}

TEST_F(SlowReaderSmurfTest, MissedShelfReadSmoothedOver) {
  SmurfCleaner cleaner(&registry_);
  ObjectId tag = Obj(PackagingLevel::kItem, 1);
  // Six perfect shelf reads grow the window past one opportunity...
  Epoch now = 0;
  for (; now < 361; ++now) {
    EpochReadings readings;
    if (now % 60 == 0) readings.push_back(MakeReading(tag, 1, now));
    cleaner.ProcessEpoch(now, readings);
  }
  // ...then one missed read (epoch 360 skipped would be here; skip 360-419)
  bool present_through_gap = true;
  for (; now < 420; ++now) {
    auto estimates = cleaner.ProcessEpoch(now, {});
    if (LocationIn(estimates, tag) == kUnknownLocation) {
      present_through_gap = false;
    }
  }
  EXPECT_TRUE(present_through_gap);
}

// ------------------------------------------------- Pipeline exit grace ----

class ExitGraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LocationId dock = registry_.AddLocation("dock");
    LocationId exit = registry_.AddLocation("exit");
    ReaderInfo dock_reader;
    dock_reader.id = 0;
    dock_reader.location = dock;
    dock_reader.type = ReaderType::kPackaging;
    ReaderInfo exit_reader;
    exit_reader.id = 1;
    exit_reader.location = exit;
    exit_reader.type = ReaderType::kExitDoor;
    ASSERT_TRUE(registry_.AddReader(dock_reader).ok());
    ASSERT_TRUE(registry_.AddReader(exit_reader).ok());
  }

  ReaderRegistry registry_;
};

TEST_F(ExitGraceTest, ResidualExitReadingsDoNotResurrect) {
  PipelineOptions options;
  options.exit_grace_epochs = 10;
  SpirePipeline pipeline(&registry_, options);
  ObjectId tag = Obj(PackagingLevel::kItem, 1);
  EventStream out;
  pipeline.ProcessEpoch(1, {MakeReading(tag, 0, 1)}, &out);
  EXPECT_EQ(pipeline.graph().NumNodes(), 1u);
  pipeline.ProcessEpoch(2, {MakeReading(tag, 1, 2)}, &out);  // Exit read.
  EXPECT_EQ(pipeline.graph().NumNodes(), 0u);
  // Residual interrogations during the exit dwell are ignored.
  pipeline.ProcessEpoch(3, {MakeReading(tag, 1, 3)}, &out);
  EXPECT_EQ(pipeline.graph().NumNodes(), 0u);
  // Far beyond the grace the id is fresh again (ids are not recycled in
  // practice, but the substrate must not blacklist forever).
  pipeline.ProcessEpoch(20, {MakeReading(tag, 0, 20)}, &out);
  EXPECT_EQ(pipeline.graph().NumNodes(), 1u);
}

TEST_F(ExitGraceTest, ExitEmitsClosedStayAndRetires) {
  SpirePipeline pipeline(&registry_, PipelineOptions{});
  ObjectId tag = Obj(PackagingLevel::kItem, 1);
  EventStream out;
  pipeline.ProcessEpoch(1, {MakeReading(tag, 0, 1)}, &out);
  pipeline.ProcessEpoch(2, {MakeReading(tag, 1, 2)}, &out);
  // The stream shows: dock stay closed, exit stay opened and closed.
  bool exit_start = false, exit_end = false;
  for (const Event& event : out) {
    if (event.object != tag) continue;
    if (event.type == EventType::kStartLocation && event.location == 1) {
      exit_start = true;
    }
    if (event.type == EventType::kEndLocation && event.location == 1) {
      exit_end = true;
    }
  }
  EXPECT_TRUE(exit_start);
  EXPECT_TRUE(exit_end);
}

}  // namespace
}  // namespace spire
