#include "serve/merger.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "obs/registry.h"
#include "obs/trace.h"
#include "store/archive_writer.h"

namespace spire::serve {

namespace {

/// Global "serve" module aggregates (the per-run numbers live in
/// MergerMetrics).
struct GlobalInstruments {
  obs::Counter* epochs_merged;
  obs::Counter* events_out;
};

const GlobalInstruments* GetGlobalInstruments() {
  if (!obs::Enabled()) return nullptr;
  auto& registry = obs::Registry::Global();
  static const GlobalInstruments instruments{
      registry.GetCounter("serve", "epochs_merged"),
      registry.GetCounter("serve", "events_out"),
  };
  return &instruments;
}

std::uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

Status EventMerger::Drain(const std::vector<BoundedQueue<SiteBatch>*>& queues,
                          const std::vector<std::size_t>& batches_per_queue,
                          EventStream* out, ArchiveWriter* archive) {
  if (queues.size() != batches_per_queue.size()) {
    return Status::InvalidArgument("merger: queue/site-count size mismatch");
  }

  std::vector<SiteBatch> round;
  for (Epoch epoch = 0;; ++epoch) {
    obs::ScopedSpan round_span("serve", "merge_round", epoch);
    round.clear();
    bool finish = false;
    bool first_batch = true;
    for (std::size_t q = 0; q < queues.size(); ++q) {
      for (std::size_t k = 0; k < batches_per_queue[q]; ++k) {
        const auto wait_start = std::chrono::steady_clock::now();
        std::optional<SiteBatch> batch = [&] {
          obs::ScopedSpan span("serve", "merge_wait", epoch);
          return queues[q]->Pop();
        }();
        if (metrics_ != nullptr) {
          metrics_->wait_us.Add(MicrosSince(wait_start));
        }
        if (!batch.has_value()) {
          return Status::Internal(
              "merger: shard queue " + std::to_string(q) +
              " closed before its finish batch (epoch " +
              std::to_string(epoch) + ")");
        }
        if (batch->epoch != epoch) {
          return Status::Internal(
              "merger: expected epoch " + std::to_string(epoch) +
              " from queue " + std::to_string(q) + ", got " +
              std::to_string(batch->epoch));
        }
        // The finish round is uniform: the router flushes every shard at
        // the same epoch, so mixed rounds are a protocol violation.
        if (first_batch) {
          finish = batch->finish;
          first_batch = false;
        } else if (batch->finish != finish) {
          return Status::Internal("merger: mixed finish round at epoch " +
                                  std::to_string(epoch));
        }
        round.push_back(std::move(*batch));
      }
    }

    // The epoch barrier is complete: emit in ascending site order, each
    // site's events in its pipeline's emission order.
    std::sort(round.begin(), round.end(),
              [](const SiteBatch& a, const SiteBatch& b) {
                return a.site < b.site;
              });
    const std::size_t first = out->size();
    for (SiteBatch& batch : round) {
      out->insert(out->end(), batch.events.begin(), batch.events.end());
    }
    if (archive != nullptr && archive_status_.ok()) {
      for (std::size_t i = first; i < out->size(); ++i) {
        Status status = archive->Append((*out)[i]);
        if (!status.ok()) {
          archive_status_ = status;
          break;
        }
      }
    }
    if (metrics_ != nullptr) {
      metrics_->events_out.Add(out->size() - first);
      if (!finish) metrics_->epochs_merged.Add(1);
    }
    if (const GlobalInstruments* global = GetGlobalInstruments()) {
      global->events_out->Add(out->size() - first);
      if (!finish) global->epochs_merged->Add(1);
    }
    if (finish) break;
  }

  // After the finish round every queue must close cleanly.
  for (std::size_t q = 0; q < queues.size(); ++q) {
    if (queues[q]->Pop().has_value()) {
      return Status::Internal("merger: queue " + std::to_string(q) +
                              " delivered batches past the finish round");
    }
  }
  return Status::OK();
}

}  // namespace spire::serve
