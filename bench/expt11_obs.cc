// Expt 11: overhead of the observability layer (DESIGN.md §9).
//
// The obs contract is that a disabled build costs one branch on a pointer
// per instrumented site. This bench runs the same simulated trace through
// the full pipeline three ways — instruments off, instruments on, and
// instruments on with an active trace session plus explain channel — and
// reports wall seconds for each, interleaving the configurations A/B/A/B
// across repetitions so drift hits all arms equally. The number to watch is
// `enabled_over_disabled`: metrics alone should be within noise of off
// (single-digit percent), and full tracing low multiples of that.
//
// The dist leg (dist=true, on by default) repeats the comparison for the
// fleet machinery: a 2-node loopback transfer run with per-epoch
// StatsReport frames, ClockSync, and cross-node handoff spans against the
// same run with everything off. `dist_traced_over_disabled` is gated in CI
// (ci.sh compares against BENCH_obs.json with tools/bench_compare.py).
//
//   ./expt11_obs [full=true] [reps=N] [dist=false] [key=value ...]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench/bench_util.h"
#include "dist/runner.h"
#include "eval/table.h"
#include "obs/explain.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "sim/transfer.h"

using namespace spire;
using namespace spire::bench;

namespace {

struct Arm {
  const char* name;
  bool enabled = false;
  bool traced = false;
  std::vector<double> seconds;
};

/// One full pipeline run; returns wall seconds of the processing loop.
double RunOnce(const SimConfig& sim_config, bool enabled, bool traced,
               const std::string& trace_path) {
  obs::SetEnabled(enabled);
  if (traced) {
    Status status = obs::Tracer::Global().Start(trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  auto sim = WarehouseSimulator::Create(sim_config);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    std::exit(1);
  }
  WarehouseSimulator& s = *sim.value();
  SpirePipeline pipeline(&s.registry(), PipelineOptions{});
  obs::ExplainLog explain;
  if (traced) pipeline.SetExplainSink(&explain);

  EventStream sink;
  const auto start = std::chrono::steady_clock::now();
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &sink);
  }
  pipeline.Finish(s.current_epoch() + 1, &sink);
  const auto end = std::chrono::steady_clock::now();

  if (traced) {
    Status status = obs::Tracer::Global().Stop();
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  obs::SetEnabled(false);
  return std::chrono::duration<double>(end - start).count();
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// One 2-node loopback run over `workload`; with `traced` the full fleet
/// observability stack is live: metrics, per-epoch StatsReport frames,
/// and an active trace session collecting cross-node handoff spans.
double RunDistOnce(const serve::Workload& workload,
                   const std::vector<TransferHop>& hops, bool traced,
                   const std::string& trace_path, EventStream* events) {
  if (traced) {
    obs::SetEnabled(true);
    obs::Registry::Global().Reset();
    Status status = obs::Tracer::Global().Start(trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  dist::DistOptions options;
  options.num_nodes = 2;
  // The statusz default cadence (spire_cli dist stats_every): the oracle
  // leg covers the pathological per-epoch case; this arm measures what a
  // monitored fleet actually pays.
  if (traced) options.stats_interval_epochs = 16;
  const auto start = std::chrono::steady_clock::now();
  dist::DistResult result = dist::RunDistLoopback(workload, hops, options);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (traced) {
    Status status = obs::Tracer::Global().Stop();
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(1);
    }
    obs::SetEnabled(false);
  }
  if (!result.status.ok()) {
    std::fprintf(stderr, "dist leg: %s\n", result.status.ToString().c_str());
    std::exit(1);
  }
  *events = std::move(result.events);
  return wall;
}

}  // namespace

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  const bool full = args.GetBool("full", false).value_or(false);
  const int reps =
      static_cast<int>(args.GetInt("reps", full ? 7 : 5).value_or(5));

  SimConfig sim_config = SweepConfig(full);
  auto overridden = SimConfig::FromConfig(args, sim_config);
  if (overridden.ok()) sim_config = overridden.value();

  const std::string trace_path =
      (std::filesystem::temp_directory_path() / "expt11_obs_trace.json")
          .string();

  PrintHeader("Expt 11: observability overhead",
              "DESIGN.md §9 (disabled = one branch on a pointer)");

  Arm arms[] = {{"obs off", false, false, {}},
                {"metrics on", true, false, {}},
                {"metrics+trace+explain", true, true, {}}};
  // Warm-up run (page cache, allocator) discarded.
  RunOnce(sim_config, false, false, trace_path);
  for (int rep = 0; rep < reps; ++rep) {
    for (Arm& arm : arms) {
      arm.seconds.push_back(
          RunOnce(sim_config, arm.enabled, arm.traced, trace_path));
    }
  }
  std::error_code ec;
  std::filesystem::remove(trace_path, ec);

  const double off = Median(arms[0].seconds);
  TextTable table({"configuration", "median (s)", "vs off"});
  BenchReport report("obs");
  for (const Arm& arm : arms) {
    const double median = Median(arm.seconds);
    table.AddRow({arm.name, TextTable::Num(median, 4),
                  TextTable::Num(off > 0.0 ? median / off : 0.0, 3)});
  }
  table.Print();

  report.Add("reps", reps);
  report.Add("disabled_s", off);
  report.Add("enabled_s", Median(arms[1].seconds));
  report.Add("traced_s", Median(arms[2].seconds));
  report.Add("enabled_over_disabled",
             off > 0.0 ? Median(arms[1].seconds) / off : 0.0);
  report.Add("traced_over_disabled",
             off > 0.0 ? Median(arms[2].seconds) / off : 0.0);

  if (args.GetBool("dist", true).value_or(true)) {
    // Fleet leg: the same overhead question for the distributed runtime,
    // with the stats cadence at its maximum (a StatsReport per node per
    // epoch) and the tracer collecting cross-node handoff spans.
    SimConfig dist_config = sim_config;
    dist_config.transfer_sites = 3;
    dist_config.transfer_interval = 90;
    dist_config.transfer_dwell = 4;
    dist_config.transfer_transit = 6;
    dist_config.transfer_round_trips = 2;
    auto transfer = BuildTransferTrace(dist_config);
    if (!transfer.ok()) {
      std::fprintf(stderr, "%s\n", transfer.status().ToString().c_str());
      return 1;
    }
    auto workload = dist::ToWorkload(transfer.value());
    if (!workload.ok()) {
      std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
      return 1;
    }
    const std::vector<TransferHop>& hops = transfer.value().hops;

    EventStream baseline_events;
    EventStream traced_events;
    std::vector<double> dist_off;
    std::vector<double> dist_traced;
    RunDistOnce(workload.value(), hops, false, trace_path,
                &baseline_events);  // Warm-up, discarded.
    for (int rep = 0; rep < reps; ++rep) {
      dist_off.push_back(RunDistOnce(workload.value(), hops, false,
                                     trace_path, &baseline_events));
      dist_traced.push_back(RunDistOnce(workload.value(), hops, true,
                                        trace_path, &traced_events));
    }
    std::filesystem::remove(trace_path, ec);
    if (traced_events != baseline_events) {
      std::fprintf(stderr,
                   "dist leg: stats+tracing changed the merged stream\n");
      return 1;
    }

    const double dist_disabled_s = Median(dist_off);
    const double dist_traced_s = Median(dist_traced);
    const double over =
        dist_disabled_s > 0.0 ? dist_traced_s / dist_disabled_s : 0.0;
    TextTable dist_table({"configuration", "median (s)", "vs off"});
    dist_table.AddRow({"dist 2-node, obs off",
                       TextTable::Num(dist_disabled_s, 4), "1.000"});
    dist_table.AddRow({"dist 2-node, stats+trace",
                       TextTable::Num(dist_traced_s, 4),
                       TextTable::Num(over, 3)});
    std::printf("\n");
    dist_table.Print();
    report.Add("dist_disabled_s", dist_disabled_s);
    report.Add("dist_traced_s", dist_traced_s);
    report.Add("dist_traced_over_disabled", over);
  }

  Status status = report.Write();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
