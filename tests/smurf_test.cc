// Unit tests for the SMURF baseline (adaptive per-tag smoothing).
#include <gtest/gtest.h>

#include "common/epc.h"
#include "smurf/smurf.h"
#include "smurf/smurf_pipeline.h"
#include "compress/well_formed.h"

namespace spire {
namespace {

ObjectId Tag(std::uint32_t serial) {
  EpcFields fields;
  fields.level = PackagingLevel::kItem;
  fields.serial = serial;
  return EncodeEpcUnchecked(fields);
}

RfidReading MakeReading(ObjectId tag, ReaderId reader, Epoch epoch) {
  RfidReading r;
  r.tag = tag;
  r.reader = reader;
  r.epoch = epoch;
  return r;
}

class SmurfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LocationId a = registry_.AddLocation("a");
    LocationId b = registry_.AddLocation("b");
    ReaderInfo r0;
    r0.id = 0;
    r0.location = a;
    ASSERT_TRUE(registry_.AddReader(r0).ok());
    ReaderInfo r1;
    r1.id = 1;
    r1.location = b;
    ASSERT_TRUE(registry_.AddReader(r1).ok());
  }

  /// The estimate for `tag` in `estimates`; location kUnknownLocation when
  /// absent entirely.
  static LocationId LocationIn(const std::vector<ObjectStateEstimate>& v,
                               ObjectId tag) {
    for (const auto& e : v) {
      if (e.object == tag) return e.location;
    }
    return kUnknownLocation;
  }

  ReaderRegistry registry_;
};

TEST_F(SmurfTest, ReportsTagAtReaderLocation) {
  SmurfCleaner cleaner(&registry_);
  auto estimates = cleaner.ProcessEpoch(1, {MakeReading(Tag(1), 0, 1)});
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_EQ(estimates[0].location, registry_.LocationOf(0));
  EXPECT_EQ(estimates[0].container, kNoObject);  // Never any containment.
}

TEST_F(SmurfTest, SmoothsOverShortGaps) {
  SmurfCleaner cleaner(&registry_);
  ObjectId tag = Tag(1);
  // Reads 4 of 5 epochs (p ~ 0.8): the window grows to w* ~ 4, so a single
  // missed epoch is statistically unremarkable.
  Epoch now = 0;
  for (; now < 40; ++now) {
    EpochReadings readings;
    if (now % 5 != 4) readings.push_back(MakeReading(tag, 0, now));
    cleaner.ProcessEpoch(now, readings);
  }
  EXPECT_GT(cleaner.WindowOf(tag), 1);
  // A missed epoch right after a read: still reported present (that is the
  // smoothing).
  auto estimates = cleaner.ProcessEpoch(now, {});
  EXPECT_EQ(LocationIn(estimates, tag), registry_.LocationOf(0));
}

TEST_F(SmurfTest, ExpiresAfterWindow) {
  SmurfCleaner cleaner(&registry_);
  ObjectId tag = Tag(1);
  Epoch now = 0;
  for (; now < 10; ++now) {
    cleaner.ProcessEpoch(now, {MakeReading(tag, 0, now)});
  }
  // Silence for far longer than any window: reported away.
  std::vector<ObjectStateEstimate> estimates;
  for (; now < 10 + 600; ++now) {
    estimates = cleaner.ProcessEpoch(now, {});
    if (estimates.empty()) break;
    if (LocationIn(estimates, tag) == kUnknownLocation) break;
  }
  EXPECT_EQ(LocationIn(estimates, tag), kUnknownLocation);
}

TEST_F(SmurfTest, WindowShrinksOnSuspectedTransition) {
  SmurfCleaner cleaner(&registry_);
  ObjectId tag = Tag(1);
  Epoch now = 0;
  for (; now < 60; ++now) {
    cleaner.ProcessEpoch(now, {MakeReading(tag, 0, now)});
  }
  int window_before = cleaner.WindowOf(tag);
  ASSERT_GT(window_before, 1);
  // Sudden silence: the binomial test fires and the window halves.
  for (int i = 0; i < 3 && cleaner.WindowOf(tag) >= window_before; ++i) {
    cleaner.ProcessEpoch(now++, {});
  }
  EXPECT_LT(cleaner.WindowOf(tag), window_before);
}

TEST_F(SmurfTest, LocationFollowsMostRecentReader) {
  SmurfCleaner cleaner(&registry_);
  ObjectId tag = Tag(1);
  cleaner.ProcessEpoch(1, {MakeReading(tag, 0, 1)});
  auto estimates = cleaner.ProcessEpoch(2, {MakeReading(tag, 1, 2)});
  EXPECT_EQ(LocationIn(estimates, tag), registry_.LocationOf(1));
}

TEST_F(SmurfTest, ForgetsLongGoneTags) {
  SmurfOptions options;
  options.forget_after = 50;
  SmurfCleaner cleaner(&registry_, options);
  cleaner.ProcessEpoch(1, {MakeReading(Tag(1), 0, 1)});
  EXPECT_EQ(cleaner.tracked_tags(), 1u);
  cleaner.ProcessEpoch(100, {});
  EXPECT_EQ(cleaner.tracked_tags(), 0u);
}

TEST_F(SmurfTest, EstimatesSortedByTag) {
  SmurfCleaner cleaner(&registry_);
  auto estimates = cleaner.ProcessEpoch(
      1, {MakeReading(Tag(5), 0, 1), MakeReading(Tag(2), 0, 1),
          MakeReading(Tag(9), 1, 1)});
  ASSERT_EQ(estimates.size(), 3u);
  EXPECT_LT(estimates[0].object, estimates[1].object);
  EXPECT_LT(estimates[1].object, estimates[2].object);
}

TEST_F(SmurfTest, PipelineProducesWellFormedLocationStream) {
  SmurfPipeline pipeline(&registry_);
  EventStream out;
  ObjectId tag = Tag(1);
  for (Epoch now = 0; now < 30; ++now) {
    EpochReadings readings;
    if (now < 10) readings.push_back(MakeReading(tag, 0, now));
    if (now >= 15 && now < 25) readings.push_back(MakeReading(tag, 1, now));
    pipeline.ProcessEpoch(now, readings, &out);
  }
  pipeline.Finish(30, &out);
  EXPECT_TRUE(ValidateWellFormed(out).ok());
  // The tag was seen at both locations.
  bool at_a = false, at_b = false;
  for (const Event& e : out) {
    if (e.type == EventType::kStartLocation) {
      at_a |= e.location == registry_.LocationOf(0);
      at_b |= e.location == registry_.LocationOf(1);
    }
    EXPECT_FALSE(IsContainmentEvent(e.type));
  }
  EXPECT_TRUE(at_a);
  EXPECT_TRUE(at_b);
}

TEST_F(SmurfTest, WindowBoundaryIsInclusive) {
  // Regression: the presence test used `<` while the window is inclusive at
  // its left edge, so a tag exactly window * period epochs after its last
  // read was dropped one epoch early.
  SmurfOptions options;
  options.min_window = 4;
  options.max_window = 4;
  SmurfCleaner cleaner(&registry_, options);
  ObjectId tag = Tag(1);
  Epoch now = 0;
  for (; now < 20; ++now) {
    cleaner.ProcessEpoch(now, {MakeReading(tag, 0, now)});
  }
  const Epoch last_seen = now - 1;
  // Silence. At exactly last_seen + window * period the tag is still inside
  // [now - w, now] and must be reported present...
  std::vector<ObjectStateEstimate> estimates;
  for (; now <= last_seen + 4; ++now) {
    estimates = cleaner.ProcessEpoch(now, {});
  }
  EXPECT_EQ(LocationIn(estimates, tag), registry_.LocationOf(0));
  // ...and one epoch later it is not.
  estimates = cleaner.ProcessEpoch(now, {});
  EXPECT_EQ(LocationIn(estimates, tag), kUnknownLocation);
}

TEST_F(SmurfTest, WindowCappedAtMax) {
  SmurfOptions options;
  options.max_window = 16;
  SmurfCleaner cleaner(&registry_, options);
  ObjectId tag = Tag(1);
  // Sparse reads (1 in 8): w* would exceed the cap.
  for (Epoch now = 0; now < 400; ++now) {
    EpochReadings readings;
    if (now % 8 == 0) readings.push_back(MakeReading(tag, 0, now));
    cleaner.ProcessEpoch(now, readings);
  }
  EXPECT_LE(cleaner.WindowOf(tag), 16);
  EXPECT_GT(cleaner.WindowOf(tag), 1);
}

}  // namespace
}  // namespace spire
