#include "obs/explain.h"

#include <fstream>
#include <sstream>

namespace spire::obs {

std::string ExplainLog::ToJsonLine(const EventProvenance& record) {
  std::ostringstream out;
  out << "{\"kind\":\"event\",\"id\":" << record.id << ",\"type\":\""
      << record.type << "\",\"object\":" << record.object
      << ",\"location\":" << record.location
      << ",\"container\":" << record.container
      << ",\"start\":" << record.start << ",\"end\":" << record.end
      << ",\"epoch\":" << record.epoch << ",\"complete_inference\":"
      << (record.complete_inference ? "true" : "false")
      << ",\"inference_waves\":" << record.inference_waves
      << ",\"winner_posterior\":" << record.winner_posterior
      << ",\"runner_up_posterior\":" << record.runner_up_posterior
      << ",\"stage\":\"" << record.stage << "\"}";
  return out.str();
}

std::string ExplainLog::ToJsonLine(const SuppressionRecord& record) {
  std::ostringstream out;
  out << "{\"kind\":\"suppressed\",\"object\":" << record.object
      << ",\"epoch\":" << record.epoch
      << ",\"covering_container\":" << record.covering_container
      << ",\"reason\":\"" << record.reason << "\"}";
  return out.str();
}

std::string ExplainLog::ToJsonLine(const MatchRecord& record) {
  std::ostringstream out;
  out << "{\"kind\":\"match\",\"pattern\":\"" << record.pattern
      << "\",\"binding\":{";
  for (std::size_t i = 0; i < record.binding.size(); ++i) {
    const std::string var = i < record.variables.size()
                                ? record.variables[i]
                                : "v" + std::to_string(i);
    out << (i > 0 ? "," : "") << "\"" << var << "\":" << record.binding[i];
  }
  out << "},\"step_epochs\":[";
  for (std::size_t i = 0; i < record.step_epochs.size(); ++i) {
    out << (i > 0 ? "," : "") << record.step_epochs[i];
  }
  out << "],\"completion\":" << record.completion << ",\"event_ids\":[";
  for (std::size_t i = 0; i < record.event_ids.size(); ++i) {
    out << (i > 0 ? "," : "") << record.event_ids[i];
  }
  out << "]}";
  return out.str();
}

Status ExplainLog::WriteJsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  for (const EventProvenance& record : events_) {
    out << ToJsonLine(record) << "\n";
  }
  for (const SuppressionRecord& record : suppressions_) {
    out << ToJsonLine(record) << "\n";
  }
  for (const MatchRecord& record : matches_) {
    out << ToJsonLine(record) << "\n";
  }
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace spire::obs
