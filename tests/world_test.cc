// Unit tests for the ground-truth physical world (src/sim/world).
#include <gtest/gtest.h>

#include "common/epc.h"
#include "sim/world.h"

namespace spire {
namespace {

ObjectId Obj(PackagingLevel level, std::uint32_t serial) {
  EpcFields fields;
  fields.level = level;
  fields.serial = serial;
  return EncodeEpcUnchecked(fields);
}

class WorldTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pallet_ = Obj(PackagingLevel::kPallet, 1);
    case_ = Obj(PackagingLevel::kCase, 2);
    item_ = Obj(PackagingLevel::kItem, 3);
    ASSERT_TRUE(world_.AddObject(pallet_, kDock).ok());
    ASSERT_TRUE(world_.AddObject(case_, kDock).ok());
    ASSERT_TRUE(world_.AddObject(item_, kDock).ok());
  }

  static constexpr LocationId kDock = 0;
  static constexpr LocationId kShelf = 1;

  PhysicalWorld world_;
  ObjectId pallet_, case_, item_;
};

TEST_F(WorldTest, AddAndFind) {
  EXPECT_TRUE(world_.Contains(case_));
  const ObjectState* state = world_.Find(case_);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->level, PackagingLevel::kCase);
  EXPECT_EQ(state->location, kDock);
  EXPECT_EQ(world_.size(), 3u);
}

TEST_F(WorldTest, RejectsDuplicateAdd) {
  EXPECT_FALSE(world_.AddObject(case_, kDock).ok());
}

TEST_F(WorldTest, Resides) {
  EXPECT_TRUE(world_.Resides(case_, kDock));
  EXPECT_FALSE(world_.Resides(case_, kShelf));
  EXPECT_FALSE(world_.Resides(Obj(PackagingLevel::kItem, 99), kDock));
}

TEST_F(WorldTest, ContainmentRequiresCoResidence) {
  ASSERT_TRUE(world_.MoveObject(case_, kShelf).ok());
  EXPECT_FALSE(world_.SetContainment(item_, case_).ok());
  ASSERT_TRUE(world_.MoveObject(case_, kDock).ok());
  EXPECT_TRUE(world_.SetContainment(item_, case_).ok());
}

TEST_F(WorldTest, ContainmentLinksBothSides) {
  ASSERT_TRUE(world_.SetContainment(item_, case_).ok());
  EXPECT_EQ(world_.ParentOf(item_), case_);
  const ObjectState* parent = world_.Find(case_);
  ASSERT_EQ(parent->children.size(), 1u);
  EXPECT_EQ(parent->children[0], item_);
}

TEST_F(WorldTest, RejectsSecondContainer) {
  ASSERT_TRUE(world_.SetContainment(item_, case_).ok());
  EXPECT_FALSE(world_.SetContainment(item_, pallet_).ok());
}

TEST_F(WorldTest, ClearContainmentDetaches) {
  ASSERT_TRUE(world_.SetContainment(item_, case_).ok());
  ASSERT_TRUE(world_.ClearContainment(item_).ok());
  EXPECT_EQ(world_.ParentOf(item_), kNoObject);
  EXPECT_TRUE(world_.Find(case_)->children.empty());
  // Clearing an uncontained object is a no-op.
  EXPECT_TRUE(world_.ClearContainment(item_).ok());
}

TEST_F(WorldTest, MoveCascadesToContents) {
  ASSERT_TRUE(world_.SetContainment(case_, pallet_).ok());
  ASSERT_TRUE(world_.SetContainment(item_, case_).ok());
  ASSERT_TRUE(world_.MoveObject(pallet_, kShelf).ok());
  EXPECT_EQ(world_.LocationOf(pallet_), kShelf);
  EXPECT_EQ(world_.LocationOf(case_), kShelf);
  EXPECT_EQ(world_.LocationOf(item_), kShelf);
}

TEST_F(WorldTest, MovingChildDoesNotMoveParent) {
  ASSERT_TRUE(world_.SetContainment(item_, case_).ok());
  ASSERT_TRUE(world_.MoveObject(item_, kShelf).ok());
  EXPECT_EQ(world_.LocationOf(case_), kDock);
  EXPECT_EQ(world_.LocationOf(item_), kShelf);
}

TEST_F(WorldTest, TopLevelContainer) {
  ASSERT_TRUE(world_.SetContainment(case_, pallet_).ok());
  ASSERT_TRUE(world_.SetContainment(item_, case_).ok());
  EXPECT_EQ(world_.TopLevelContainerOf(item_), pallet_);
  EXPECT_EQ(world_.TopLevelContainerOf(case_), pallet_);
  EXPECT_EQ(world_.TopLevelContainerOf(pallet_), pallet_);
  EXPECT_EQ(world_.TopLevelContainerOf(Obj(PackagingLevel::kItem, 88)),
            kNoObject);
}

TEST_F(WorldTest, StealDetachesAndHides) {
  ASSERT_TRUE(world_.SetContainment(item_, case_).ok());
  ASSERT_TRUE(world_.Steal(item_).ok());
  EXPECT_EQ(world_.LocationOf(item_), kUnknownLocation);
  EXPECT_EQ(world_.ParentOf(item_), kNoObject);
  EXPECT_TRUE(world_.Find(item_)->stolen);
  EXPECT_TRUE(world_.Find(case_)->children.empty());
}

TEST_F(WorldTest, StealTakesContentsAlong) {
  ASSERT_TRUE(world_.SetContainment(item_, case_).ok());
  ASSERT_TRUE(world_.Steal(case_).ok());
  EXPECT_EQ(world_.LocationOf(case_), kUnknownLocation);
  EXPECT_EQ(world_.LocationOf(item_), kUnknownLocation);
  // The item is still inside the stolen case.
  EXPECT_EQ(world_.ParentOf(item_), case_);
  EXPECT_FALSE(world_.Find(item_)->stolen);
}

TEST_F(WorldTest, RemoveSeversLinks) {
  ASSERT_TRUE(world_.SetContainment(item_, case_).ok());
  ASSERT_TRUE(world_.RemoveObject(item_).ok());
  EXPECT_FALSE(world_.Contains(item_));
  EXPECT_TRUE(world_.Find(case_)->children.empty());
  EXPECT_FALSE(world_.RemoveObject(item_).ok());  // Already gone.
}

TEST_F(WorldTest, RemoveParentOrphansChildren) {
  ASSERT_TRUE(world_.SetContainment(item_, case_).ok());
  ASSERT_TRUE(world_.RemoveObject(case_).ok());
  EXPECT_TRUE(world_.Contains(item_));
  EXPECT_EQ(world_.ParentOf(item_), kNoObject);
}

TEST_F(WorldTest, LocationIndexTracksMoves) {
  EXPECT_EQ(world_.ObjectsAt(kDock).size(), 3u);
  ASSERT_TRUE(world_.MoveObject(case_, kShelf).ok());
  EXPECT_EQ(world_.ObjectsAt(kDock).size(), 2u);
  ASSERT_EQ(world_.ObjectsAt(kShelf).size(), 1u);
  EXPECT_EQ(*world_.ObjectsAt(kShelf).begin(), case_);
}

TEST_F(WorldTest, LocationIndexDropsRemovedAndStolen) {
  ASSERT_TRUE(world_.RemoveObject(item_).ok());
  EXPECT_EQ(world_.ObjectsAt(kDock).size(), 2u);
  ASSERT_TRUE(world_.Steal(case_).ok());
  EXPECT_EQ(world_.ObjectsAt(kDock).size(), 1u);
  EXPECT_TRUE(world_.ObjectsAt(kUnknownLocation).empty());  // Not indexed.
}

TEST_F(WorldTest, LocationIndexSorted) {
  // Ascending id order gives deterministic reading generation.
  ObjectId extra = Obj(PackagingLevel::kItem, 1);
  ASSERT_TRUE(world_.AddObject(extra, kDock).ok());
  const auto& at_dock = world_.ObjectsAt(kDock);
  ObjectId last = 0;
  for (ObjectId id : at_dock) {
    EXPECT_GT(id, last);
    last = id;
  }
}

TEST_F(WorldTest, MoveUnknownObjectFails) {
  EXPECT_FALSE(world_.MoveObject(Obj(PackagingLevel::kItem, 77), kDock).ok());
  EXPECT_FALSE(world_.Steal(Obj(PackagingLevel::kItem, 77)).ok());
  EXPECT_FALSE(
      world_.SetContainment(Obj(PackagingLevel::kItem, 77), case_).ok());
}

}  // namespace
}  // namespace spire
