// Bounded multi-producer ring queue with blocking backpressure.
//
// The serving layer's only cross-thread channel. A fixed-capacity ring
// buffer guarded by one mutex and two condition variables:
//
//   * Push on a full queue BLOCKS — backpressure propagates upstream all
//     the way to the router, so a slow shard throttles ingest instead of
//     growing unbounded buffers (TryPush is the non-blocking variant and
//     counts rejections as drops).
//   * Pop on an empty queue blocks until an item or Close().
//   * Close() wakes everyone: further pushes fail, pops drain the items
//     already queued and then return nullopt. Shutdown therefore loses
//     nothing that was accepted.
//
// FIFO overall, hence FIFO per producer — the ordering the merger relies
// on. Optional QueueMetrics record depth high-water, blocked pushes/pops,
// and drops.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "serve/metrics.h"

namespace spire::serve {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` must be >= 1. `metrics` may be nullptr; when given it must
  /// outlive the queue.
  explicit BoundedQueue(std::size_t capacity, QueueMetrics* metrics = nullptr)
      : ring_(capacity < 1 ? 1 : capacity), metrics_(metrics) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full; false iff the queue was closed (item discarded).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (count_ == ring_.size() && !closed_) {
      if (metrics_ != nullptr) metrics_->blocked_pushes.Add(1);
      obs::ScopedSpan span("serve", "queue_wait");
      not_full_.wait(lock, [&] { return count_ < ring_.size() || closed_; });
    }
    if (closed_) return false;
    Enqueue(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Never blocks; false when full (counted as a drop) or closed.
  bool TryPush(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return false;
    if (count_ == ring_.size()) {
      if (metrics_ != nullptr) metrics_->dropped.Add(1);
      return false;
    }
    Enqueue(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty; nullopt iff closed and fully drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (count_ == 0 && !closed_) {
      if (metrics_ != nullptr) metrics_->blocked_pops.Add(1);
      obs::ScopedSpan span("serve", "queue_wait");
      not_empty_.wait(lock, [&] { return count_ > 0 || closed_; });
    }
    if (count_ == 0) return std::nullopt;
    T item = Dequeue();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Never blocks; nullopt when nothing is queued.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (count_ == 0) return std::nullopt;
    T item = Dequeue();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Idempotent. Wakes all blocked producers and consumers.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  std::size_t capacity() const { return ring_.size(); }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  // Callers hold mu_.
  void Enqueue(T item) {
    ring_[(head_ + count_) % ring_.size()] = std::move(item);
    ++count_;
    if (metrics_ != nullptr) metrics_->RecordDepth(count_);
  }

  T Dequeue() {
    T item = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --count_;
    return item;
  }

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
  QueueMetrics* metrics_;
};

}  // namespace spire::serve
