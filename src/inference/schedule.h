// Partial/complete inference scheduling (Section IV-D).
//
// Readers read at different frequencies; in epochs where a slow (shelf)
// reader is silent the graph presents an incomplete view, so running
// complete inference would waste work and emit misleading "unknown"
// verdicts. The schedule computes M, the least common multiple of the
// reader periods (from the deployment configuration), runs complete
// inference in epochs that are a multiple of M, and partial inference
// otherwise.
#pragma once

#include "common/types.h"
#include "stream/reader.h"

namespace spire {

/// Decides the inference mode of each epoch.
class InferenceSchedule {
 public:
  /// `period_lcm` is M, usually ReaderRegistry::PeriodLcm().
  explicit InferenceSchedule(Epoch period_lcm)
      : period_lcm_(period_lcm < 1 ? 1 : period_lcm) {}

  /// Builds the schedule from the deployed readers.
  static InferenceSchedule FromRegistry(const ReaderRegistry& registry) {
    return InferenceSchedule(registry.PeriodLcm());
  }

  /// True when `epoch` warrants complete inference.
  bool IsCompleteEpoch(Epoch epoch) const {
    return period_lcm_ <= 1 || epoch % period_lcm_ == 0;
  }

  Epoch period_lcm() const { return period_lcm_; }

 private:
  Epoch period_lcm_;
};

}  // namespace spire
