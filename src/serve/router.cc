#include "serve/router.h"

namespace spire::serve {

ShardRouter::ShardRouter(const Workload* workload, int num_shards)
    : workload_(workload),
      num_shards_(num_shards < 1 ? 1 : num_shards),
      shard_sites_(static_cast<std::size_t>(num_shards_)) {
  for (int site = 0; site < static_cast<int>(workload_->sites.size());
       ++site) {
    shard_sites_[static_cast<std::size_t>(ShardOf(site))].push_back(site);
  }
}

Epoch ShardRouter::FeedAll(
    const std::vector<BoundedQueue<EpochWork>*>& queues) {
  Epoch fed = 0;
  bool aborted = false;
  while (fed < workload_->num_epochs && !aborted &&
         !stop_.load(std::memory_order_relaxed)) {
    for (int shard = 0; shard < num_shards_ && !aborted; ++shard) {
      EpochWork work;
      work.epoch = fed;
      work.site_readings.reserve(
          shard_sites_[static_cast<std::size_t>(shard)].size());
      for (int site : shard_sites_[static_cast<std::size_t>(shard)]) {
        const SiteWorkload& s = workload_->sites[static_cast<std::size_t>(site)];
        EpochReadings readings =
            fed < static_cast<Epoch>(s.epochs.size())
                ? s.epochs[static_cast<std::size_t>(fed)]
                : EpochReadings{};
        work.site_readings.emplace_back(site, std::move(readings));
      }
      // A failed push means the queue was closed externally (abort path):
      // skip the finish protocol — shards already stopped consuming.
      aborted = !queues[static_cast<std::size_t>(shard)]->Push(std::move(work));
    }
    if (!aborted) ++fed;
  }

  if (!aborted) {
    // Flush: every pipeline closes its open events at the same finish
    // epoch, mirroring SpirePipeline::Finish(last + 1) of the serial path.
    // RequestStop is checked at epoch boundaries only, so all shards have
    // received exactly the epochs [0, fed).
    for (int shard = 0; shard < num_shards_; ++shard) {
      EpochWork finish;
      finish.epoch = fed;
      finish.finish = true;
      // List the owned sites (with no readings) so the shard flushes one
      // pipeline — and emits one finish batch — per site.
      for (int site : shard_sites_[static_cast<std::size_t>(shard)]) {
        finish.site_readings.emplace_back(site, EpochReadings{});
      }
      queues[static_cast<std::size_t>(shard)]->Push(std::move(finish));
    }
  }
  for (BoundedQueue<EpochWork>* queue : queues) queue->Close();
  return fed;
}

}  // namespace spire::serve
