// The built-in warehouse scenario library (DESIGN.md §11).
//
// Named patterns over the location vocabulary the simulator registers for
// every deployment (entry_door, receiving_belt, shelf_*, packaging,
// outgoing_belt, exit_door), so they compile against any generated trace.
// `spire_cli detect patterns=library` runs all of them; the
// pattern_equivalence fuzz oracle holds both evaluators to them.
#pragma once

#include <string>
#include <vector>

#include "cep/pattern.h"
#include "common/status.h"

namespace spire::cep {

/// The built-in patterns, parsed and named:
///   theft                    — Missing(x): an object vanished without an
///                              exit read (the paper's §7.4 anomaly).
///   dock_to_exit             — entry_door to exit_door without touching
///                              receiving_belt within 50 epochs: a case
///                              that skipped check-in.
///   misrouted_case           — entry_door then some shelf while never on
///                              receiving_belt within 200 epochs.
///   shelf_to_exit_direct     — a shelved object at exit_door while never
///                              crossing outgoing_belt within 120 epochs.
///   pallet_left_without_case — a pallet reaches exit_door and a case it
///                              once carried does not follow within 60.
///   flapping_reader          — shelf / missing / shelf / missing churn,
///                              each hop within 150 epochs.
///   packed_for_shipping      — packaging to outgoing_belt within 150
///                              without returning to any shelf (flow
///                              confirmation; fires on healthy traffic).
///   clean_putaway            — receiving_belt to a shelf within 100 with
///                              no missing gap in between (flow
///                              confirmation; fires on healthy traffic).
const std::vector<Pattern>& BuiltinLibrary();

/// The library pattern with that name (not found otherwise).
Result<Pattern> LibraryPattern(const std::string& name);

/// Parses a pattern file: one `name = expression` per line, `#` comments
/// and blank lines skipped.
Result<std::vector<Pattern>> ParsePatternFileLines(const std::string& text);

}  // namespace spire::cep
