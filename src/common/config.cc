#include "common/config.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace spire {

namespace {

std::string Trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace

Result<Config> Config::FromLines(const std::vector<std::string>& lines) {
  Config config;
  for (const std::string& raw : lines) {
    std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("config line missing '=': " + line);
    }
    std::string key = Trim(line.substr(0, eq));
    std::string value = Trim(line.substr(eq + 1));
    if (key.empty()) {
      return Status::InvalidArgument("config line with empty key: " + line);
    }
    config.Set(key, value);
  }
  return config;
}

Result<Config> Config::FromArgs(int argc, const char* const* argv) {
  std::vector<std::string> lines;
  for (int i = 1; i < argc; ++i) {
    lines.emplace_back(argv[i]);
  }
  return FromLines(lines);
}

void Config::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

Result<std::string> Config::GetString(const std::string& key,
                                      const std::string& fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second;
}

Result<std::int64_t> Config::GetInt(const std::string& key,
                                    std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const char* begin = it->second.c_str();
  long long parsed = std::strtoll(begin, &end, 10);
  if (end == begin || *end != '\0') {
    return Status::InvalidArgument("config key '" + key +
                                   "' is not an integer: " + it->second);
  }
  return static_cast<std::int64_t>(parsed);
}

Result<double> Config::GetDouble(const std::string& key,
                                 double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const char* begin = it->second.c_str();
  double parsed = std::strtod(begin, &end);
  if (end == begin || *end != '\0') {
    return Status::InvalidArgument("config key '" + key +
                                   "' is not a number: " + it->second);
  }
  return parsed;
}

Result<bool> Config::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return Status::InvalidArgument("config key '" + key +
                                 "' is not a boolean: " + it->second);
}

std::vector<std::string> Config::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [key, value] : values_) {
    keys.push_back(key);
  }
  return keys;
}

}  // namespace spire
