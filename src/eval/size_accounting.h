// Compression-ratio accounting (Expt 8).
#pragma once

#include <cstddef>

#include "common/wire.h"
#include "compress/event.h"

namespace spire {

/// compression ratio = output event bytes / raw reading bytes.
inline double CompressionRatio(std::size_t output_events,
                               std::size_t raw_readings) {
  if (raw_readings == 0) return 0.0;
  return static_cast<double>(output_events * kEventWireBytes) /
         static_cast<double>(raw_readings * kReadingWireBytes);
}

/// Ratio of a concrete stream against a raw reading count.
inline double CompressionRatio(const EventStream& output,
                               std::size_t raw_readings) {
  return CompressionRatio(output.size(), raw_readings);
}

/// Events of a stream restricted to location messages (incl. Missing) or to
/// containment messages — the paper reports both decompositions.
std::size_t CountLocationMessages(const EventStream& stream);
std::size_t CountContainmentMessages(const EventStream& stream);

}  // namespace spire
