// Multi-site serving workload.
//
// A "site" is one reader deployment running its own full SPIRE pipeline
// (Cao et al.: containment and location inference only couple objects seen
// by the same deployment, so sites are independently processable). A
// Workload is the set of sites plus their raw epoch streams over a common
// global epoch axis.
//
// Sites are authored independently (separate simulations, traces, fuzz
// seeds), so their tag ids and dense location ids collide across sites.
// NormalizeWorkload rewrites both id spaces to be globally disjoint:
//
//   * tags: the site index is planted in the top 6 bits of the EPC
//     company-prefix field (site 0 is the identity mapping), preserving
//     the packaging level the graph layers key on;
//   * locations: site i's dense location ids are shifted by the total
//     location count of sites 0..i-1 — applied to OUTPUT events, not to
//     readings, since readings address readers, which stay site-local.
//
// After normalization the merged output stream is well-formed as a whole:
// per-object event sequences never interleave across sites.
#pragma once

#include <string>
#include <vector>

#include "common/epc.h"
#include "common/status.h"
#include "common/types.h"
#include "stream/reader.h"
#include "stream/reading.h"

namespace spire::serve {

/// Hard cap on sites per workload (the kEpcSiteBits of the company-prefix
/// field).
inline constexpr int kMaxSites = kEpcMaxSites;

/// One reader deployment and its raw epoch stream.
struct SiteWorkload {
  std::string name;
  ReaderRegistry registry;
  /// epochs[e] holds the site's raw readings of global epoch e. Shorter
  /// sites are fed empty epochs up to the workload horizon.
  std::vector<EpochReadings> epochs;
  std::size_t total_readings = 0;
  /// Set by NormalizeWorkload: added to every output event's location id.
  LocationId location_offset = 0;
};

/// A full serving input: sites plus the common epoch horizon.
struct Workload {
  std::vector<SiteWorkload> sites;
  /// Epoch horizon: every site's pipeline runs epochs [0, num_epochs).
  /// Set by NormalizeWorkload to the longest site stream.
  Epoch num_epochs = 0;
};

/// Rewrites tag ids in-place and assigns location offsets so the sites'
/// id spaces are globally disjoint (see file comment); also computes
/// num_epochs and per-site reading totals. Fails when there are more than
/// kMaxSites sites, a company prefix already uses the site bits, or the
/// combined location spaces overflow LocationId.
Status NormalizeWorkload(Workload* workload);

/// The site-normalized form of `tag` for site index `site` (identity for
/// site 0). Exposed for tests and offline tools.
ObjectId NormalizeTag(int site, ObjectId tag);

}  // namespace spire::serve
