// A minimal JSON reader for the observability self-checks.
//
// Parses a full JSON document into a small DOM. Numbers keep their raw
// source text (ids in this codebase exceed 2^53, so a double would corrupt
// them); serialization re-emits exactly that text, which makes
// parse -> serialize -> parse a faithful round-trip test. Used by
// tests/obs_test.cc (trace-file well-formedness), `spire_cli obscheck`
// (the CI obs smoke step), and nothing on any hot path.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace spire::obs {

/// One parsed JSON value. Object member order is preserved.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  /// Raw number text for kNumber; decoded string value for kString.
  std::string text;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool operator==(const JsonValue&) const = default;

  /// First member with `key`, or nullptr (objects only).
  const JsonValue* Find(std::string_view key) const;

  /// Re-renders the value as compact JSON (numbers verbatim).
  std::string Serialize() const;
};

/// Parses one complete JSON document; trailing non-whitespace is an error.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace spire::obs
