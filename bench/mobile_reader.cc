// Mobile-reader extension study (the paper's future work, Section VIII):
// adds a patrolling reader cycling the shelves and measures what the extra
// mobile observations buy across read rates — location/containment error,
// output event accuracy, and theft-detection delay.
//
//   ./mobile_reader [full=true] [key=value ...]
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "eval/table.h"

using namespace spire;
using namespace spire::bench;

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  bool full = args.GetBool("full", false).value_or(false);
  SimConfig base = SweepConfig(full);
  base.theft_interval = 200;
  base.patrol_dwell = 8;
  auto overridden = SimConfig::FromConfig(args, base);
  if (overridden.ok()) base = overridden.value();

  PrintHeader("Extension: a patrolling mobile reader over the shelves",
              "future work of Section VIII (mix of mobile and static readers)");

  TextTable table({"read rate", "loc err", "loc err+patrol", "delay (s)",
                   "delay+patrol", "loc F", "loc F+patrol"});
  for (double read_rate : {0.5, 0.7, 0.85, 1.0}) {
    RunMetrics metrics[2];
    for (int patrol = 0; patrol < 2; ++patrol) {
      RunOptions options;
      options.sim = base;
      options.sim.read_rate = read_rate;
      options.sim.patrol_reader = patrol == 1;
      metrics[patrol] = RunSpireTrace(options);
    }
    table.AddRow({TextTable::Num(read_rate, 2),
                  TextTable::Num(metrics[0].accuracy.LocationErrorRate(), 4),
                  TextTable::Num(metrics[1].accuracy.LocationErrorRate(), 4),
                  TextTable::Num(metrics[0].delay.mean_delay, 0),
                  TextTable::Num(metrics[1].delay.mean_delay, 0),
                  TextTable::Num(metrics[0].f_location.FMeasure(), 4),
                  TextTable::Num(metrics[1].f_location.FMeasure(), 4)});
  }
  table.Print();
  std::printf("\n(patrol dwell %lld epochs per shelf; thefts every %llds)\n",
              static_cast<long long>(base.patrol_dwell),
              static_cast<long long>(base.theft_interval));
  return 0;
}
