// Quickstart: generate a small warehouse trace, run the SPIRE interpretation
// and compression substrate over it, and inspect the output event stream.
//
//   ./quickstart [key=value ...]     e.g. ./quickstart read_rate=0.7
#include <cstdio>

#include "common/config.h"
#include "compress/decompress.h"
#include "compress/well_formed.h"
#include "eval/accuracy.h"
#include "eval/event_accuracy.h"
#include "eval/size_accounting.h"
#include "sim/simulator.h"
#include "spire/pipeline.h"

using namespace spire;

int main(int argc, char** argv) {
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }

  // A 30-minute trace: one pallet (5 cases x 20 items) every 5 minutes,
  // 10-minute shelf stays, shelf readers once every 30 s, read rate 0.85.
  SimConfig sim_config;
  sim_config.duration_epochs = 1800;
  sim_config.pallet_interval = 300;
  sim_config.mean_shelf_stay = 600;
  sim_config.shelf_period = 30;
  auto overridden = SimConfig::FromConfig(config.value(), sim_config);
  if (!overridden.ok()) {
    std::fprintf(stderr, "%s\n", overridden.status().ToString().c_str());
    return 1;
  }
  sim_config = overridden.value();

  auto sim = WarehouseSimulator::Create(sim_config);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return 1;
  }
  WarehouseSimulator& simulator = *sim.value();

  // A SPIRE pipeline with level-2 compression and default inference knobs.
  PipelineOptions options;
  options.level = CompressionLevel::kLevel2;
  SpirePipeline pipeline(&simulator.registry(), options);

  EventStream output;
  AccuracyStats accuracy;
  while (!simulator.Done()) {
    EpochReadings readings = simulator.Step();
    pipeline.ProcessEpoch(simulator.current_epoch(), std::move(readings),
                          &output);
    if (pipeline.last_epoch_complete()) {
      accuracy += EvaluateEstimates(pipeline.last_result(), simulator.world(),
                                    simulator.layout().entry_door);
    }
  }
  Epoch end = simulator.current_epoch() + 1;
  pipeline.Finish(end, &output);
  simulator.FinishTruth();

  Status well_formed = ValidateWellFormed(output);
  // Level-2 compression suppresses contained objects' location events, so
  // accuracy is scored on the (lossless) decompressed level-1 view; the
  // warm-up (entry door) area, for which SPIRE emits no output, is stripped
  // from both streams.
  EventStream decompressed = StripLocationEvents(
      Decompressor::DecompressAll(output), simulator.layout().entry_door);
  EventStream truth = StripLocationEvents(simulator.truth_events(),
                                          simulator.layout().entry_door);
  EventAccuracy f = CompareEventStreams(decompressed, truth, EventClass::kAll);
  EventAccuracy f_loc =
      CompareEventStreams(decompressed, truth, EventClass::kLocationOnly);
  EventAccuracy f_cont =
      CompareEventStreams(decompressed, truth, EventClass::kContainmentOnly);

  std::printf("trace: %lld epochs, %zu objects created, %zu raw readings\n",
              static_cast<long long>(sim_config.duration_epochs),
              simulator.objects_created(), simulator.total_readings());
  std::printf("output: %zu events (%zu location, %zu containment), "
              "well-formed: %s\n",
              output.size(), CountLocationMessages(output),
              CountContainmentMessages(output),
              well_formed.ok() ? "yes" : well_formed.ToString().c_str());
  std::printf("compression ratio: %.4f (output bytes / raw bytes)\n",
              CompressionRatio(output, simulator.total_readings()));
  std::printf("location error rate:    %.4f\n", accuracy.LocationErrorRate());
  std::printf("containment error rate: %.4f\n",
              accuracy.ContainmentErrorRate());
  std::printf("event F-measure vs ground truth: %.4f (P=%.4f R=%.4f)\n",
              f.FMeasure(), f.Precision(), f.Recall());
  std::printf("  location events:    F=%.4f (P=%.4f R=%.4f, out=%zu truth=%zu)\n",
              f_loc.FMeasure(), f_loc.Precision(), f_loc.Recall(),
              f_loc.output_events, f_loc.truth_events);
  std::printf("  containment events: F=%.4f (P=%.4f R=%.4f, out=%zu truth=%zu)\n",
              f_cont.FMeasure(), f_cont.Precision(), f_cont.Recall(),
              f_cont.output_events, f_cont.truth_events);

  std::printf("\nfirst 12 output events:\n");
  for (std::size_t i = 0; i < output.size() && i < 12; ++i) {
    std::printf("  %s\n", output[i].ToString().c_str());
  }
  return 0;
}
