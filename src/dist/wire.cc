#include "dist/wire.h"

#include <cstring>

#include "store/crc32.h"
#include "store/varint.h"

namespace spire::dist {

namespace {

constexpr std::uint8_t kMaxFrameType =
    static_cast<std::uint8_t>(FrameType::kStatsReport);
static_assert(kMaxFrameType + 1 == kNumFrameTypes);

void PutU32LE(std::uint32_t value, std::vector<std::uint8_t>* out) {
  out->push_back(static_cast<std::uint8_t>(value));
  out->push_back(static_cast<std::uint8_t>(value >> 8));
  out->push_back(static_cast<std::uint8_t>(value >> 16));
  out->push_back(static_cast<std::uint8_t>(value >> 24));
}

std::uint32_t GetU32LE(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

void PutEpoch(Epoch epoch, std::vector<std::uint8_t>* out) {
  PutVarint64(ZigzagEncode(epoch), out);
}

void PutBool(bool value, std::vector<std::uint8_t>* out) {
  out->push_back(value ? 1 : 0);
}

void PutDouble(double value, std::vector<std::uint8_t>* out) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

/// Sequential strict decoder over one payload. Every Get* validates range
/// and canonicality; Finish rejects trailing bytes, so a payload has
/// exactly one valid encoding.
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  Status GetU64(std::uint64_t* value) {
    Result<std::uint64_t> result = GetVarint64(buf_, &offset_);
    if (!result.ok()) return result.status();
    *value = result.value();
    return Status::OK();
  }

  Status GetEpoch(Epoch* value) {
    std::uint64_t raw = 0;
    SPIRE_RETURN_NOT_OK(GetU64(&raw));
    *value = ZigzagDecode(raw);
    return Status::OK();
  }

  Status GetBool(bool* value) {
    if (offset_ >= buf_.size()) {
      return Status::Corruption("truncated bool");
    }
    const std::uint8_t byte = buf_[offset_++];
    if (byte > 1) return Status::Corruption("non-boolean flag byte");
    *value = byte != 0;
    return Status::OK();
  }

  Status GetDouble(double* value) {
    if (buf_.size() - offset_ < 8) {
      return Status::Corruption("truncated double");
    }
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(buf_[offset_ + i]) << (8 * i);
    }
    offset_ += 8;
    std::memcpy(value, &bits, sizeof(*value));
    return Status::OK();
  }

  /// A u64 bounded to [0, max]; `what` names the field in errors.
  Status GetBounded(std::uint64_t max, const char* what, std::uint64_t* value) {
    SPIRE_RETURN_NOT_OK(GetU64(value));
    if (*value > max) {
      return Status::Corruption(std::string(what) + " out of range");
    }
    return Status::OK();
  }

  /// An element count: bounded by the bytes left (each element encodes to
  /// at least one byte), so a corrupted count can never drive a huge
  /// allocation.
  Status GetCount(const char* what, std::size_t* count) {
    std::uint64_t raw = 0;
    SPIRE_RETURN_NOT_OK(GetU64(&raw));
    if (raw > buf_.size() - offset_) {
      return Status::Corruption(std::string(what) +
                                " count exceeds payload size");
    }
    *count = static_cast<std::size_t>(raw);
    return Status::OK();
  }

  /// A length-prefixed string; the length is bounded by the bytes left.
  Status GetString(const char* what, std::string* value) {
    std::size_t length = 0;
    SPIRE_RETURN_NOT_OK(GetCount(what, &length));
    value->assign(reinterpret_cast<const char*>(buf_.data()) + offset_,
                  length);
    offset_ += length;
    return Status::OK();
  }

  Status Finish() const {
    if (offset_ != buf_.size()) {
      return Status::Corruption("trailing bytes after payload");
    }
    return Status::OK();
  }

 private:
  const std::vector<std::uint8_t>& buf_;
  std::size_t offset_ = 0;
};

void EncodeObjectHandoff(const ObjectHandoff& handoff,
                         std::vector<std::uint8_t>* out) {
  PutVarint64(handoff.object, out);
  PutEpoch(handoff.seen_at, out);
  PutVarint64(handoff.confirmed.parent, out);
  PutEpoch(handoff.confirmed.confirmed_at, out);
  PutVarint64(static_cast<std::uint64_t>(handoff.confirmed.conflicts), out);
  PutVarint64(static_cast<std::uint64_t>(handoff.confirmed.observations), out);
  PutVarint64(handoff.parent_edges.size(), out);
  for (const HandoffEdge& edge : handoff.parent_edges) {
    PutVarint64(edge.parent, out);
    PutVarint64(edge.colocation_window, out);
    PutVarint64(static_cast<std::uint64_t>(edge.colocation_count), out);
    PutEpoch(edge.update_time, out);
    PutEpoch(edge.created_at, out);
  }
  PutBool(handoff.has_estimate, out);
  if (handoff.has_estimate) {
    const ObjectEstimate& est = handoff.estimate;
    PutVarint64(est.object, out);
    PutVarint64(est.location, out);
    PutDouble(est.location_prob, out);
    PutDouble(est.location_runner_up, out);
    PutVarint64(est.container, out);
    PutDouble(est.container_prob, out);
    PutDouble(est.container_runner_up, out);
    PutBool(est.observed, out);
    PutBool(est.withheld, out);
  }
  PutEpoch(handoff.fade_deadline, out);
}

Status DecodeObjectHandoff(PayloadReader& reader, ObjectHandoff* handoff) {
  SPIRE_RETURN_NOT_OK(reader.GetU64(&handoff->object));
  SPIRE_RETURN_NOT_OK(reader.GetEpoch(&handoff->seen_at));
  SPIRE_RETURN_NOT_OK(reader.GetU64(&handoff->confirmed.parent));
  SPIRE_RETURN_NOT_OK(reader.GetEpoch(&handoff->confirmed.confirmed_at));
  std::uint64_t raw = 0;
  SPIRE_RETURN_NOT_OK(reader.GetBounded(INT32_MAX, "conflicts", &raw));
  handoff->confirmed.conflicts = static_cast<int>(raw);
  SPIRE_RETURN_NOT_OK(reader.GetBounded(INT32_MAX, "observations", &raw));
  handoff->confirmed.observations = static_cast<int>(raw);
  std::size_t edges = 0;
  SPIRE_RETURN_NOT_OK(reader.GetCount("parent edge", &edges));
  handoff->parent_edges.resize(edges);
  for (HandoffEdge& edge : handoff->parent_edges) {
    SPIRE_RETURN_NOT_OK(reader.GetU64(&edge.parent));
    SPIRE_RETURN_NOT_OK(reader.GetU64(&edge.colocation_window));
    SPIRE_RETURN_NOT_OK(reader.GetBounded(64, "co-location count", &raw));
    edge.colocation_count = static_cast<int>(raw);
    SPIRE_RETURN_NOT_OK(reader.GetEpoch(&edge.update_time));
    SPIRE_RETURN_NOT_OK(reader.GetEpoch(&edge.created_at));
  }
  SPIRE_RETURN_NOT_OK(reader.GetBool(&handoff->has_estimate));
  if (handoff->has_estimate) {
    ObjectEstimate& est = handoff->estimate;
    SPIRE_RETURN_NOT_OK(reader.GetU64(&est.object));
    SPIRE_RETURN_NOT_OK(reader.GetBounded(kUnknownLocation, "location", &raw));
    est.location = static_cast<LocationId>(raw);
    SPIRE_RETURN_NOT_OK(reader.GetDouble(&est.location_prob));
    SPIRE_RETURN_NOT_OK(reader.GetDouble(&est.location_runner_up));
    SPIRE_RETURN_NOT_OK(reader.GetU64(&est.container));
    SPIRE_RETURN_NOT_OK(reader.GetDouble(&est.container_prob));
    SPIRE_RETURN_NOT_OK(reader.GetDouble(&est.container_runner_up));
    SPIRE_RETURN_NOT_OK(reader.GetBool(&est.observed));
    SPIRE_RETURN_NOT_OK(reader.GetBool(&est.withheld));
  } else {
    handoff->estimate = ObjectEstimate{};
  }
  SPIRE_RETURN_NOT_OK(reader.GetEpoch(&handoff->fade_deadline));
  return Status::OK();
}

}  // namespace

const char* ToString(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "Hello";
    case FrameType::kEpochWork:
      return "EpochWork";
    case FrameType::kSiteBatch:
      return "SiteBatch";
    case FrameType::kBarrier:
      return "Barrier";
    case FrameType::kHandoff:
      return "Handoff";
    case FrameType::kStatsReport:
      return "StatsReport";
  }
  return "?";
}

std::vector<std::uint8_t> EncodeFrame(
    FrameType type, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32LE(kDistFrameMarker, &out);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(0);  // flags
  out.push_back(static_cast<std::uint8_t>(kDistProtocolVersion));
  out.push_back(static_cast<std::uint8_t>(kDistProtocolVersion >> 8));
  PutU32LE(static_cast<std::uint32_t>(payload.size()), &out);
  std::uint32_t crc = Crc32(out.data(), out.size());
  crc = Crc32(payload.data(), payload.size(), crc);
  PutU32LE(crc, &out);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<FrameHeader> ParseFrameHeader(const std::uint8_t* data,
                                     std::size_t size) {
  if (size < kFrameHeaderBytes) {
    return Status::Corruption("truncated frame header");
  }
  if (GetU32LE(data) != kDistFrameMarker) {
    return Status::Corruption("bad frame marker");
  }
  FrameHeader header;
  if (data[4] > kMaxFrameType) {
    return Status::Corruption("unknown frame type");
  }
  header.type = static_cast<FrameType>(data[4]);
  header.flags = data[5];
  header.version = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(data[6]) |
      static_cast<std::uint16_t>(data[7]) << 8);
  if (header.version != kDistProtocolVersion) {
    return Status::InvalidArgument(
        "protocol version mismatch: peer speaks version " +
        std::to_string(header.version) + ", this build speaks version " +
        std::to_string(kDistProtocolVersion));
  }
  header.payload_bytes = GetU32LE(data + 8);
  if (header.payload_bytes > kMaxFramePayloadBytes) {
    return Status::Corruption("frame payload length out of range");
  }
  header.crc = GetU32LE(data + 12);
  return header;
}

Result<Frame> DecodeFrame(const std::vector<std::uint8_t>& bytes) {
  Result<FrameHeader> header = ParseFrameHeader(bytes.data(), bytes.size());
  if (!header.ok()) return header.status();
  const std::size_t payload_bytes = header.value().payload_bytes;
  if (bytes.size() != kFrameHeaderBytes + payload_bytes) {
    return Status::Corruption("frame length does not match header");
  }
  std::uint32_t crc = Crc32(bytes.data(), 12);
  crc = Crc32(bytes.data() + kFrameHeaderBytes, payload_bytes, crc);
  if (crc != header.value().crc) {
    return Status::Corruption("frame checksum mismatch");
  }
  Frame frame;
  frame.type = header.value().type;
  frame.flags = header.value().flags;
  frame.payload.assign(bytes.begin() + kFrameHeaderBytes, bytes.end());
  return frame;
}

void EncodeHello(const HelloPayload& payload, std::vector<std::uint8_t>* out) {
  PutVarint64(payload.node_id, out);
  PutVarint64(payload.sites.size(), out);
  for (std::uint32_t site : payload.sites) PutVarint64(site, out);
  PutVarint64(payload.steady_now_micros, out);
  PutVarint64(payload.stats_interval_epochs, out);
}

Result<HelloPayload> DecodeHello(const std::vector<std::uint8_t>& payload) {
  PayloadReader reader(payload);
  HelloPayload hello;
  std::uint64_t raw = 0;
  SPIRE_RETURN_NOT_OK(reader.GetBounded(UINT32_MAX, "node id", &raw));
  hello.node_id = static_cast<std::uint32_t>(raw);
  std::size_t count = 0;
  SPIRE_RETURN_NOT_OK(reader.GetCount("site", &count));
  hello.sites.resize(count);
  for (std::uint32_t& site : hello.sites) {
    SPIRE_RETURN_NOT_OK(reader.GetBounded(UINT32_MAX, "site index", &raw));
    site = static_cast<std::uint32_t>(raw);
  }
  SPIRE_RETURN_NOT_OK(reader.GetU64(&hello.steady_now_micros));
  SPIRE_RETURN_NOT_OK(
      reader.GetBounded(UINT32_MAX, "stats interval", &raw));
  hello.stats_interval_epochs = static_cast<std::uint32_t>(raw);
  SPIRE_RETURN_NOT_OK(reader.Finish());
  return hello;
}

void EncodeEpochWork(const EpochWorkPayload& payload,
                     std::vector<std::uint8_t>* out) {
  PutEpoch(payload.epoch, out);
  PutBool(payload.finish, out);
  PutVarint64(payload.site_readings.size(), out);
  for (const auto& [site, readings] : payload.site_readings) {
    PutVarint64(site, out);
    PutVarint64(readings.size(), out);
    for (const RfidReading& reading : readings) {
      PutVarint64(reading.tag, out);
      PutVarint64(reading.reader, out);
      PutVarint64(reading.tick, out);
    }
  }
  PutVarint64(payload.captures.size(), out);
  for (const CaptureOrder& capture : payload.captures) {
    PutVarint64(capture.hop, out);
    PutVarint64(capture.from_site, out);
    PutVarint64(capture.to_site, out);
    PutEpoch(capture.arrive_epoch, out);
    PutVarint64(capture.objects.size(), out);
    for (ObjectId object : capture.objects) PutVarint64(object, out);
  }
}

Result<EpochWorkPayload> DecodeEpochWork(
    const std::vector<std::uint8_t>& payload) {
  PayloadReader reader(payload);
  EpochWorkPayload work;
  SPIRE_RETURN_NOT_OK(reader.GetEpoch(&work.epoch));
  SPIRE_RETURN_NOT_OK(reader.GetBool(&work.finish));
  std::uint64_t raw = 0;
  std::size_t count = 0;
  SPIRE_RETURN_NOT_OK(reader.GetCount("site readings", &count));
  work.site_readings.resize(count);
  for (auto& [site, readings] : work.site_readings) {
    SPIRE_RETURN_NOT_OK(reader.GetBounded(UINT32_MAX, "site index", &raw));
    site = static_cast<std::uint32_t>(raw);
    std::size_t readings_count = 0;
    SPIRE_RETURN_NOT_OK(reader.GetCount("reading", &readings_count));
    readings.resize(readings_count);
    for (RfidReading& reading : readings) {
      SPIRE_RETURN_NOT_OK(reader.GetU64(&reading.tag));
      SPIRE_RETURN_NOT_OK(reader.GetBounded(kNoReader, "reader id", &raw));
      reading.reader = static_cast<ReaderId>(raw);
      SPIRE_RETURN_NOT_OK(reader.GetBounded(UINT16_MAX, "tick", &raw));
      reading.tick = static_cast<std::uint16_t>(raw);
      reading.epoch = work.epoch;
    }
  }
  SPIRE_RETURN_NOT_OK(reader.GetCount("capture order", &count));
  work.captures.resize(count);
  for (CaptureOrder& capture : work.captures) {
    SPIRE_RETURN_NOT_OK(reader.GetU64(&capture.hop));
    SPIRE_RETURN_NOT_OK(reader.GetBounded(UINT32_MAX, "from site", &raw));
    capture.from_site = static_cast<std::uint32_t>(raw);
    SPIRE_RETURN_NOT_OK(reader.GetBounded(UINT32_MAX, "to site", &raw));
    capture.to_site = static_cast<std::uint32_t>(raw);
    SPIRE_RETURN_NOT_OK(reader.GetEpoch(&capture.arrive_epoch));
    std::size_t objects = 0;
    SPIRE_RETURN_NOT_OK(reader.GetCount("capture object", &objects));
    capture.objects.resize(objects);
    for (ObjectId& object : capture.objects) {
      SPIRE_RETURN_NOT_OK(reader.GetU64(&object));
    }
  }
  SPIRE_RETURN_NOT_OK(reader.Finish());
  return work;
}

void EncodeSiteBatch(const SiteBatchPayload& payload,
                     std::vector<std::uint8_t>* out) {
  PutEpoch(payload.epoch, out);
  PutVarint64(payload.site, out);
  PutBool(payload.finish, out);
  PutVarint64(payload.events.size(), out);
  for (const Event& event : payload.events) {
    out->push_back(static_cast<std::uint8_t>(event.type));
    PutVarint64(event.object, out);
    PutVarint64(event.location, out);
    PutVarint64(event.container, out);
    PutEpoch(event.start, out);
    PutEpoch(event.end, out);
  }
}

Result<SiteBatchPayload> DecodeSiteBatch(
    const std::vector<std::uint8_t>& payload) {
  PayloadReader reader(payload);
  SiteBatchPayload batch;
  SPIRE_RETURN_NOT_OK(reader.GetEpoch(&batch.epoch));
  std::uint64_t raw = 0;
  SPIRE_RETURN_NOT_OK(reader.GetBounded(UINT32_MAX, "site index", &raw));
  batch.site = static_cast<std::uint32_t>(raw);
  SPIRE_RETURN_NOT_OK(reader.GetBool(&batch.finish));
  std::size_t count = 0;
  SPIRE_RETURN_NOT_OK(reader.GetCount("event", &count));
  batch.events.resize(count);
  for (Event& event : batch.events) {
    SPIRE_RETURN_NOT_OK(
        reader.GetBounded(static_cast<std::uint64_t>(EventType::kMissing),
                          "event type", &raw));
    event.type = static_cast<EventType>(raw);
    SPIRE_RETURN_NOT_OK(reader.GetU64(&event.object));
    SPIRE_RETURN_NOT_OK(reader.GetBounded(kUnknownLocation, "location", &raw));
    event.location = static_cast<LocationId>(raw);
    SPIRE_RETURN_NOT_OK(reader.GetU64(&event.container));
    SPIRE_RETURN_NOT_OK(reader.GetEpoch(&event.start));
    SPIRE_RETURN_NOT_OK(reader.GetEpoch(&event.end));
  }
  SPIRE_RETURN_NOT_OK(reader.Finish());
  return batch;
}

void EncodeBarrier(const BarrierPayload& payload,
                   std::vector<std::uint8_t>* out) {
  PutEpoch(payload.epoch, out);
  PutBool(payload.finish, out);
  PutVarint64(payload.steady_micros, out);
}

Result<BarrierPayload> DecodeBarrier(const std::vector<std::uint8_t>& payload) {
  PayloadReader reader(payload);
  BarrierPayload barrier;
  SPIRE_RETURN_NOT_OK(reader.GetEpoch(&barrier.epoch));
  SPIRE_RETURN_NOT_OK(reader.GetBool(&barrier.finish));
  SPIRE_RETURN_NOT_OK(reader.GetU64(&barrier.steady_micros));
  SPIRE_RETURN_NOT_OK(reader.Finish());
  return barrier;
}

void EncodeHandoff(const HandoffPayload& payload,
                   std::vector<std::uint8_t>* out) {
  PutVarint64(payload.hop, out);
  PutVarint64(payload.to_site, out);
  PutEpoch(payload.arrive_epoch, out);
  PutVarint64(payload.capture_micros, out);
  PutVarint64(payload.span_id, out);
  PutVarint64(payload.objects.size(), out);
  for (const ObjectHandoff& object : payload.objects) {
    EncodeObjectHandoff(object, out);
  }
}

Result<HandoffPayload> DecodeHandoff(const std::vector<std::uint8_t>& payload) {
  PayloadReader reader(payload);
  HandoffPayload handoff;
  SPIRE_RETURN_NOT_OK(reader.GetU64(&handoff.hop));
  std::uint64_t raw = 0;
  SPIRE_RETURN_NOT_OK(reader.GetBounded(UINT32_MAX, "to site", &raw));
  handoff.to_site = static_cast<std::uint32_t>(raw);
  SPIRE_RETURN_NOT_OK(reader.GetEpoch(&handoff.arrive_epoch));
  SPIRE_RETURN_NOT_OK(reader.GetU64(&handoff.capture_micros));
  SPIRE_RETURN_NOT_OK(reader.GetU64(&handoff.span_id));
  std::size_t count = 0;
  SPIRE_RETURN_NOT_OK(reader.GetCount("handoff object", &count));
  handoff.objects.resize(count);
  for (ObjectHandoff& object : handoff.objects) {
    SPIRE_RETURN_NOT_OK(DecodeObjectHandoff(reader, &object));
  }
  SPIRE_RETURN_NOT_OK(reader.Finish());
  return handoff;
}

void EncodeStatsReport(const StatsReportPayload& payload,
                       std::vector<std::uint8_t>* out) {
  PutVarint64(payload.node_id, out);
  PutEpoch(payload.epoch, out);
  PutBool(payload.final_report, out);
  PutVarint64(payload.snapshot.modules.size(), out);
  for (const auto& [module_name, module] : payload.snapshot.modules) {
    PutVarint64(module_name.size(), out);
    out->insert(out->end(), module_name.begin(), module_name.end());
    PutVarint64(module.counters.size(), out);
    for (const auto& [name, value] : module.counters) {
      PutVarint64(name.size(), out);
      out->insert(out->end(), name.begin(), name.end());
      PutVarint64(value, out);
    }
    PutVarint64(module.gauges.size(), out);
    for (const auto& [name, value] : module.gauges) {
      PutVarint64(name.size(), out);
      out->insert(out->end(), name.begin(), name.end());
      PutVarint64(ZigzagEncode(value), out);
    }
    PutVarint64(module.histograms.size(), out);
    for (const auto& [name, histogram] : module.histograms) {
      PutVarint64(name.size(), out);
      out->insert(out->end(), name.begin(), name.end());
      for (std::uint64_t bucket : histogram.buckets) PutVarint64(bucket, out);
      PutVarint64(histogram.count, out);
      PutVarint64(histogram.total, out);
      PutVarint64(histogram.max, out);
    }
  }
}

Result<StatsReportPayload> DecodeStatsReport(
    const std::vector<std::uint8_t>& payload) {
  PayloadReader reader(payload);
  StatsReportPayload report;
  std::uint64_t raw = 0;
  SPIRE_RETURN_NOT_OK(reader.GetBounded(UINT32_MAX, "node id", &raw));
  report.node_id = static_cast<std::uint32_t>(raw);
  SPIRE_RETURN_NOT_OK(reader.GetEpoch(&report.epoch));
  SPIRE_RETURN_NOT_OK(reader.GetBool(&report.final_report));
  std::size_t modules = 0;
  SPIRE_RETURN_NOT_OK(reader.GetCount("module", &modules));
  for (std::size_t m = 0; m < modules; ++m) {
    std::string module_name;
    SPIRE_RETURN_NOT_OK(reader.GetString("module name", &module_name));
    obs::RegistrySnapshot::Module& module =
        report.snapshot.modules[module_name];
    std::size_t count = 0;
    SPIRE_RETURN_NOT_OK(reader.GetCount("counter", &count));
    for (std::size_t i = 0; i < count; ++i) {
      std::string name;
      SPIRE_RETURN_NOT_OK(reader.GetString("counter name", &name));
      SPIRE_RETURN_NOT_OK(reader.GetU64(&module.counters[name]));
    }
    SPIRE_RETURN_NOT_OK(reader.GetCount("gauge", &count));
    for (std::size_t i = 0; i < count; ++i) {
      std::string name;
      SPIRE_RETURN_NOT_OK(reader.GetString("gauge name", &name));
      SPIRE_RETURN_NOT_OK(reader.GetU64(&raw));
      module.gauges[name] = ZigzagDecode(raw);
    }
    SPIRE_RETURN_NOT_OK(reader.GetCount("histogram", &count));
    for (std::size_t i = 0; i < count; ++i) {
      std::string name;
      SPIRE_RETURN_NOT_OK(reader.GetString("histogram name", &name));
      obs::HistogramSnapshot& histogram = module.histograms[name];
      for (std::uint64_t& bucket : histogram.buckets) {
        SPIRE_RETURN_NOT_OK(reader.GetU64(&bucket));
      }
      SPIRE_RETURN_NOT_OK(reader.GetU64(&histogram.count));
      SPIRE_RETURN_NOT_OK(reader.GetU64(&histogram.total));
      SPIRE_RETURN_NOT_OK(reader.GetU64(&histogram.max));
    }
  }
  SPIRE_RETURN_NOT_OK(reader.Finish());
  return report;
}

}  // namespace spire::dist
