// Tests for the distributed serving layer (src/dist): wire-protocol
// hardening (corruption, truncation, version skew), handoff state serde,
// transfer-schedule invariants, and end-to-end loopback runs that must
// reproduce the serial reference byte for byte.
#include <cstdint>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitvector.h"
#include "common/wire.h"
#include "dist/runner.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "obs/registry.h"
#include "sim/transfer.h"
#include "store/crc32.h"

namespace spire::dist {
namespace {

// ---------------------------------------------------------------------------
// Frame codec

HandoffPayload SampleHandoff() {
  HandoffPayload payload;
  payload.hop = 7;
  payload.to_site = 2;
  payload.arrive_epoch = 123;
  payload.capture_micros = 987654321;
  payload.span_id = 7;
  ObjectHandoff pallet;
  pallet.object = 0x5f80000000000001ull;
  pallet.seen_at = 120;
  pallet.confirmed.parent = kNoObject;
  pallet.confirmed.confirmed_at = kNeverEpoch;
  pallet.has_estimate = true;
  pallet.estimate.object = pallet.object;
  pallet.estimate.location = kUnknownLocation;  // Scrubbed: site-local.
  pallet.estimate.location_prob = 0.25;
  pallet.estimate.container = kNoObject;
  pallet.estimate.observed = true;
  pallet.fade_deadline = 140;
  ObjectHandoff item;
  item.object = 0x1f80000000200001ull;
  item.seen_at = 121;
  item.confirmed.parent = pallet.object;
  item.confirmed.confirmed_at = 100;
  item.confirmed.conflicts = 3;
  item.confirmed.observations = 17;
  HandoffEdge edge;
  edge.parent = pallet.object;
  edge.colocation_window = 0b1011011;
  edge.colocation_count = 7;
  edge.update_time = 121;
  edge.created_at = 95;
  item.parent_edges.push_back(edge);
  item.has_estimate = false;
  payload.objects.push_back(item);
  payload.objects.push_back(pallet);
  return payload;
}

std::vector<std::uint8_t> SampleFrame() {
  std::vector<std::uint8_t> payload;
  EncodeHandoff(SampleHandoff(), &payload);
  return EncodeFrame(FrameType::kHandoff, payload);
}

StatsReportPayload SampleStatsReport() {
  StatsReportPayload report;
  report.node_id = 1;
  report.epoch = 77;
  report.final_report = true;
  obs::RegistrySnapshot::Module& dist = report.snapshot.modules["dist"];
  dist.counters["frames"] = 123;
  dist.counters["bytes"] = 45678;
  dist.gauges["clock_offset_us"] = -321;  // Negative: zigzag path.
  obs::HistogramSnapshot& latency = dist.histograms["handoff_latency_us"];
  latency.buckets[0] = 2;
  latency.buckets[9] = 3;
  latency.count = 5;
  latency.total = 3002;
  latency.max = 1000;
  obs::RegistrySnapshot::Module& graph = report.snapshot.modules["graph"];
  graph.counters["edges"] = 9;
  return report;
}

std::vector<std::uint8_t> SampleStatsFrame() {
  std::vector<std::uint8_t> payload;
  EncodeStatsReport(SampleStatsReport(), &payload);
  return EncodeFrame(FrameType::kStatsReport, payload);
}

/// One representative frame per hardening sweep: the richest v1 frame
/// (Handoff) and the v2 StatsReport frame.
std::vector<std::vector<std::uint8_t>> HardeningFrames() {
  return {SampleFrame(), SampleStatsFrame()};
}

TEST(DistWireTest, FrameRoundTripAllTypes) {
  {
    HelloPayload hello;
    hello.node_id = 3;
    hello.sites = {3, 7, 11};
    hello.steady_now_micros = 987654321098ull;  // ClockSync stamp.
    hello.stats_interval_epochs = 16;
    std::vector<std::uint8_t> payload;
    EncodeHello(hello, &payload);
    auto frame = DecodeFrame(EncodeFrame(FrameType::kHello, payload));
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame.value().type, FrameType::kHello);
    auto decoded = DecodeHello(frame.value().payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().node_id, hello.node_id);
    EXPECT_EQ(decoded.value().sites, hello.sites);
    EXPECT_EQ(decoded.value().steady_now_micros, hello.steady_now_micros);
    EXPECT_EQ(decoded.value().stats_interval_epochs,
              hello.stats_interval_epochs);
  }
  {
    EpochWorkPayload work;
    work.epoch = 42;
    EpochReadings readings;
    RfidReading reading;
    reading.tag = 0x1f80000000200001ull;
    reading.reader = 1;
    reading.epoch = 42;
    reading.tick = 3;
    readings.push_back(reading);
    work.site_readings.emplace_back(1u, readings);
    CaptureOrder order;
    order.hop = 2;
    order.from_site = 1;
    order.to_site = 0;
    order.arrive_epoch = 50;
    order.objects = {0x1f80000000200001ull};
    work.captures.push_back(order);
    std::vector<std::uint8_t> payload;
    EncodeEpochWork(work, &payload);
    auto frame = DecodeFrame(EncodeFrame(FrameType::kEpochWork, payload));
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    auto decoded = DecodeEpochWork(frame.value().payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().epoch, work.epoch);
    EXPECT_FALSE(decoded.value().finish);
    ASSERT_EQ(decoded.value().site_readings.size(), 1u);
    EXPECT_EQ(decoded.value().site_readings[0].second, readings);
    ASSERT_EQ(decoded.value().captures.size(), 1u);
    EXPECT_EQ(decoded.value().captures[0].objects, order.objects);
    EXPECT_EQ(decoded.value().captures[0].arrive_epoch, order.arrive_epoch);
  }
  {
    SiteBatchPayload batch;
    batch.epoch = 9;
    batch.site = 4;
    batch.events.push_back(Event::StartLocation(77, 5, 9));
    batch.events.push_back(Event::EndLocation(77, 5, 3, 9));
    std::vector<std::uint8_t> payload;
    EncodeSiteBatch(batch, &payload);
    auto frame = DecodeFrame(EncodeFrame(FrameType::kSiteBatch, payload));
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    auto decoded = DecodeSiteBatch(frame.value().payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().epoch, batch.epoch);
    EXPECT_EQ(decoded.value().site, batch.site);
    EXPECT_EQ(decoded.value().events, batch.events);
  }
  {
    BarrierPayload barrier;
    barrier.epoch = 13;
    barrier.finish = true;
    barrier.steady_micros = 55555555555ull;  // Heartbeat stamp.
    std::vector<std::uint8_t> payload;
    EncodeBarrier(barrier, &payload);
    auto frame = DecodeFrame(EncodeFrame(FrameType::kBarrier, payload));
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    auto decoded = DecodeBarrier(frame.value().payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().epoch, barrier.epoch);
    EXPECT_TRUE(decoded.value().finish);
    EXPECT_EQ(decoded.value().steady_micros, barrier.steady_micros);
  }
  {
    const HandoffPayload handoff = SampleHandoff();
    auto frame = DecodeFrame(SampleFrame());
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    auto decoded = DecodeHandoff(frame.value().payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().hop, handoff.hop);
    EXPECT_EQ(decoded.value().capture_micros, handoff.capture_micros);
    EXPECT_EQ(decoded.value().span_id, handoff.span_id);
    EXPECT_EQ(decoded.value().objects, handoff.objects);
  }
  {
    const StatsReportPayload report = SampleStatsReport();
    auto frame = DecodeFrame(SampleStatsFrame());
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame.value().type, FrameType::kStatsReport);
    auto decoded = DecodeStatsReport(frame.value().payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().node_id, report.node_id);
    EXPECT_EQ(decoded.value().epoch, report.epoch);
    EXPECT_TRUE(decoded.value().final_report);
    // The whole registry snapshot survives the wire: counters, negative
    // gauges, and histogram bucket arrays.
    EXPECT_EQ(decoded.value().snapshot, report.snapshot);
  }
}

TEST(DistWireTest, EveryByteFlipFailsDecode) {
  for (const std::vector<std::uint8_t>& frame : HardeningFrames()) {
    ASSERT_TRUE(DecodeFrame(frame).ok());
    for (std::size_t i = 0; i < frame.size(); ++i) {
      for (std::uint8_t bit : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
        std::vector<std::uint8_t> corrupted = frame;
        corrupted[i] ^= bit;
        EXPECT_FALSE(DecodeFrame(corrupted).ok())
            << "flip of bit " << int{bit} << " in byte " << i
            << " decoded as a valid frame";
      }
    }
  }
}

TEST(DistWireTest, EveryPrefixTruncationFails) {
  for (const std::vector<std::uint8_t>& frame : HardeningFrames()) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      std::vector<std::uint8_t> truncated(frame.begin(), frame.begin() + len);
      EXPECT_FALSE(DecodeFrame(truncated).ok())
          << "prefix of " << len << " bytes decoded as a valid frame";
    }
  }
}

TEST(DistWireTest, VersionSkewIsNamedInTheError) {
  for (std::vector<std::uint8_t> frame : HardeningFrames()) {
    // Patch a future protocol version in and fix the checksum up, so the
    // version check itself (not the CRC) must reject the frame.
    const std::uint16_t future = kDistProtocolVersion + 1;
    frame[6] = static_cast<std::uint8_t>(future & 0xff);
    frame[7] = static_cast<std::uint8_t>(future >> 8);
    const std::uint32_t crc =
        Crc32(frame.data() + kFrameHeaderBytes,
              frame.size() - kFrameHeaderBytes, Crc32(frame.data(), 12));
    frame[12] = static_cast<std::uint8_t>(crc & 0xff);
    frame[13] = static_cast<std::uint8_t>((crc >> 8) & 0xff);
    frame[14] = static_cast<std::uint8_t>((crc >> 16) & 0xff);
    frame[15] = static_cast<std::uint8_t>(crc >> 24);
    auto decoded = DecodeFrame(frame);
    ASSERT_FALSE(decoded.ok());
    EXPECT_NE(decoded.status().ToString().find("version"), std::string::npos)
        << decoded.status().ToString();
  }
}

TEST(DistWireTest, HandoffRoundTripsSentinelsAndDoubles) {
  HandoffPayload payload;
  payload.hop = 0;
  payload.to_site = 0;
  payload.arrive_epoch = kInfiniteEpoch;
  ObjectHandoff handoff;
  handoff.object = ~std::uint64_t{0} - 1;
  handoff.seen_at = kNeverEpoch;
  handoff.confirmed.parent = kNoObject;
  handoff.confirmed.confirmed_at = kNeverEpoch;
  handoff.has_estimate = true;
  handoff.estimate.object = handoff.object;
  handoff.estimate.location = kUnknownLocation;
  handoff.estimate.location_prob = 0.1 + 0.2;  // Not exactly 0.3.
  handoff.estimate.location_runner_up = 1e-300;
  handoff.estimate.container_prob = 0.9999999999999999;
  handoff.fade_deadline = kInfiniteEpoch;
  HandoffEdge edge;
  edge.parent = kNoObject - 1;
  edge.colocation_window = ~std::uint64_t{0};
  edge.colocation_count = ShiftRegister::kMaxCapacity;
  edge.update_time = kNeverEpoch;
  edge.created_at = kNeverEpoch;
  handoff.parent_edges.push_back(edge);
  payload.objects.push_back(handoff);

  std::vector<std::uint8_t> bytes;
  EncodeHandoff(payload, &bytes);
  auto decoded = DecodeHandoff(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().arrive_epoch, kInfiniteEpoch);
  ASSERT_EQ(decoded.value().objects.size(), 1u);
  EXPECT_EQ(decoded.value().objects[0], handoff);
}

TEST(DistWireTest, ShiftRegisterRestoreIsIndistinguishable) {
  ShiftRegister source(16);
  for (int i = 0; i < 40; ++i) source.Push(i % 3 == 0);
  ShiftRegister restored(16);
  restored.Restore(source.Window(), source.size());
  EXPECT_EQ(restored.size(), source.size());
  EXPECT_EQ(restored.Window(), source.Window());
  EXPECT_EQ(restored.PopCount(), source.PopCount());
  for (int i = 0; i < source.size(); ++i) {
    EXPECT_EQ(restored.Get(i), source.Get(i)) << "bit " << i;
  }
}

// ---------------------------------------------------------------------------
// Transfer schedule

SimConfig TransferConfig() {
  SimConfig sim;
  sim.seed = 5;
  sim.duration_epochs = 120;
  sim.transfer_sites = 3;
  sim.transfer_interval = 25;
  sim.transfer_dwell = 2;
  sim.transfer_transit = 3;
  sim.transfer_round_trips = 2;
  sim.transfer_cases = 1;
  sim.transfer_items = 2;
  return sim;
}

TEST(TransferTraceTest, ScheduleInvariantsHold) {
  auto trace = BuildTransferTrace(TransferConfig());
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  const TransferTrace& t = trace.value();
  EXPECT_EQ(t.sites.size(), 3u);
  EXPECT_FALSE(t.hops.empty());
  for (const TransferHop& hop : t.hops) {
    EXPECT_GE(hop.from_site, 0);
    EXPECT_LT(hop.from_site, 3);
    EXPECT_GE(hop.to_site, 0);
    EXPECT_LT(hop.to_site, 3);
    EXPECT_NE(hop.from_site, hop.to_site);
    // The feed protocol forwards a handoff between the departure epoch and
    // the arrival epoch; the gap must be strictly positive.
    EXPECT_LT(hop.depart_epoch, hop.arrive_epoch);
    EXPECT_GE(hop.depart_epoch, 0);
    ASSERT_FALSE(hop.objects.empty());
    // Leaf-up capture order: the pallet (the group's root, smallest serial
    // in its tag space) is staged last so retiring in order never leaves a
    // container with live children. All cargo tags carry the reserved
    // transfer site index, outside every real site's tag space.
    for (ObjectId object : hop.objects) {
      EXPECT_EQ(DecodeEpc(object).company_prefix >> kEpcSitePrefixBits,
                static_cast<std::uint32_t>(kTransferTagSite))
          << "object 0x" << std::hex << object;
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end loopback vs serial reference

TEST(DistRunnerTest, LoopbackMatchesReferenceAtAnyNodeCount) {
  auto trace = BuildTransferTrace(TransferConfig());
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  auto workload = ToWorkload(trace.value());
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  for (CompressionLevel level :
       {CompressionLevel::kLevel1, CompressionLevel::kLevel2}) {
    PipelineOptions pipeline;
    pipeline.level = level;
    const EventStream reference =
        RunDistReference(workload.value(), trace.value().hops, pipeline);
    EXPECT_FALSE(reference.empty());
    for (int nodes : {1, 2, 3}) {
      DistOptions options;
      options.num_nodes = nodes;
      options.pipeline = pipeline;
      DistResult result =
          RunDistLoopback(workload.value(), trace.value().hops, options);
      ASSERT_TRUE(result.status.ok())
          << "nodes=" << nodes << ": " << result.status.ToString();
      EXPECT_EQ(result.events, reference)
          << "nodes=" << nodes << " level=" << static_cast<int>(level);
      EXPECT_GT(result.handoff_objects, 0u);
    }
  }
}

TEST(DistRunnerTest, ObsInstrumentsCountTraffic) {
  obs::SetEnabled(true);
  auto& registry = obs::Registry::Global();
  registry.Reset();

  auto trace = BuildTransferTrace(TransferConfig());
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  auto workload = ToWorkload(trace.value());
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  DistOptions options;
  options.num_nodes = 2;
  DistResult result =
      RunDistLoopback(workload.value(), trace.value().hops, options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  EXPECT_GT(registry.GetCounter("dist", "frames")->value(), 0u);
  EXPECT_GT(registry.GetCounter("dist", "bytes")->value(), 0u);
  EXPECT_EQ(registry.GetCounter("dist", "handoffs")->value(),
            result.handoff_objects);
  // One latency sample per delivered hop (objects in a hop share the ship).
  EXPECT_EQ(registry.GetHistogram("dist", "handoff_latency_us")->count(),
            result.handoff_hops);

  registry.Reset();
  obs::SetEnabled(false);
}

TEST(DistRunnerTest, PerTypeTrafficCountersSumToTotals) {
  obs::SetEnabled(true);
  auto& registry = obs::Registry::Global();
  registry.Reset();

  auto trace = BuildTransferTrace(TransferConfig());
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  auto workload = ToWorkload(trace.value());
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  DistOptions options;
  options.num_nodes = 2;
  options.stats_interval_epochs = 8;
  DistResult result =
      RunDistLoopback(workload.value(), trace.value().hops, options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  // Every frame lands in exactly one per-type counter, so the breakdowns
  // must tile the totals.
  static constexpr const char* kSuffixes[] = {
      "hello", "epoch_work", "site_batch", "barrier", "handoff",
      "stats_report",
  };
  static_assert(std::size(kSuffixes) == kNumFrameTypes);
  std::uint64_t frames_sum = 0;
  std::uint64_t bytes_sum = 0;
  for (const char* suffix : kSuffixes) {
    const std::uint64_t frames =
        registry.GetCounter("dist", std::string("frames_") + suffix)->value();
    const std::uint64_t bytes =
        registry.GetCounter("dist", std::string("bytes_") + suffix)->value();
    EXPECT_LE(frames, bytes) << suffix;  // Every frame has a header.
    frames_sum += frames;
    bytes_sum += bytes;
  }
  EXPECT_EQ(registry.GetCounter("dist", "frames")->value(), frames_sum);
  EXPECT_EQ(registry.GetCounter("dist", "bytes")->value(), bytes_sum);
  EXPECT_GT(registry.GetCounter("dist", "frames_epoch_work")->value(), 0u);
  EXPECT_GT(registry.GetCounter("dist", "frames_handoff")->value(), 0u);
  EXPECT_GT(registry.GetCounter("dist", "frames_stats_report")->value(), 0u);

  // The stats cadence left the coordinator a snapshot from every node.
  ASSERT_EQ(result.node_stats.size(), 2u);
  for (const obs::RegistrySnapshot& snapshot : result.node_stats) {
    EXPECT_FALSE(snapshot.empty());
    EXPECT_NE(snapshot.modules.find("dist"), snapshot.modules.end());
  }

  registry.Reset();
  obs::SetEnabled(false);
}

}  // namespace
}  // namespace spire::dist
