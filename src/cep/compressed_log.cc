#include "cep/compressed_log.h"

#include <algorithm>

#include "compress/well_formed.h"

namespace spire::cep {

const std::vector<Stay> CompressedLog::kNoStays;

namespace {

void SortUnique(std::vector<ObjectId>* ids) {
  std::sort(ids->begin(), ids->end());
  ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
}

}  // namespace

Result<CompressedLog> CompressedLog::Build(const EventStream& stream) {
  SPIRE_RETURN_NOT_OK(ValidateWellFormed(stream, /*allow_open_at_end=*/true));
  CompressedLog log;
  log.stream_ = stream;
  for (std::size_t i = 0; i < log.stream_.size(); ++i) {
    const Event& event = log.stream_[i];
    log.events_of_[event.object].push_back(static_cast<std::uint32_t>(i));
    switch (event.type) {
      case EventType::kStartContainment:
        log.parents_of_[event.object].push_back(event.container);
        log.children_of_[event.container].push_back(event.object);
        log.containment_pairs_.emplace_back(event.object, event.container);
        break;
      case EventType::kStartLocation:
        log.explicit_at_[event.location].push_back(event.object);
        break;
      case EventType::kMissing:
        log.ever_missing_.push_back(event.object);
        break;
      default:
        break;
    }
  }
  for (auto& [object, parents] : log.parents_of_) SortUnique(&parents);
  for (auto& [object, children] : log.children_of_) SortUnique(&children);
  for (auto& [location, objects] : log.explicit_at_) SortUnique(&objects);
  SortUnique(&log.ever_missing_);
  std::sort(log.containment_pairs_.begin(), log.containment_pairs_.end());
  log.containment_pairs_.erase(
      std::unique(log.containment_pairs_.begin(), log.containment_pairs_.end()),
      log.containment_pairs_.end());
  return log;
}

std::vector<ObjectId> CompressedLog::AncestorClosure(ObjectId object) const {
  std::vector<ObjectId> closure = {object};
  // The containment forest is acyclic by construction; the visited check
  // bounds malformed inputs anyway.
  for (std::size_t i = 0; i < closure.size(); ++i) {
    auto it = parents_of_.find(closure[i]);
    if (it == parents_of_.end()) continue;
    for (ObjectId parent : it->second) {
      if (std::find(closure.begin(), closure.end(), parent) == closure.end()) {
        closure.push_back(parent);
      }
    }
  }
  return closure;
}

const EventLog& CompressedLog::ClusterLogFor(ObjectId object) {
  auto cached = cluster_of_.find(object);
  if (cached != cluster_of_.end()) return *cached->second;

  const std::vector<ObjectId> closure = AncestorClosure(object);
  std::vector<std::uint32_t> indices;
  for (ObjectId member : closure) {
    auto it = events_of_.find(member);
    if (it == events_of_.end()) continue;
    indices.insert(indices.end(), it->second.begin(), it->second.end());
  }
  // Stream order is emission order, which the decompressor requires.
  std::sort(indices.begin(), indices.end());
  EventStream subset;
  subset.reserve(indices.size());
  for (std::uint32_t i : indices) subset.push_back(stream_[i]);

  // The whole stream is well-formed and validity is per-object, so the
  // ancestor-closed subset decompresses cleanly; an empty log otherwise.
  auto built = EventLog::Build(subset, /*decompress=*/true);
  if (!built.ok()) built = EventLog::Build(EventStream{});
  auto shared = std::make_shared<const EventLog>(std::move(built).value());
  for (ObjectId member : closure) cluster_of_.emplace(member, shared);
  replayed_events_ += subset.size();
  clusters_built_ += 1;
  return *cluster_of_.find(object)->second;
}

const std::vector<Stay>& CompressedLog::TrajectoryOf(ObjectId object) {
  if (!events_of_.contains(object)) return kNoStays;
  return ClusterLogFor(object).TrajectoryOf(object);
}

const std::vector<Stay>& CompressedLog::ContainmentsOf(ObjectId object) {
  if (!events_of_.contains(object)) return kNoStays;
  return ClusterLogFor(object).ContainmentsOf(object);
}

std::vector<MissingReport> CompressedLog::MissingOf(ObjectId object) {
  std::vector<MissingReport> out;
  if (!events_of_.contains(object)) return out;
  for (const MissingReport& report : ClusterLogFor(object).MissingReports()) {
    if (report.object == object) out.push_back(report);
  }
  return out;
}

std::vector<ObjectId> CompressedLog::AllObjects() const {
  std::vector<ObjectId> out;
  out.reserve(events_of_.size());
  for (const auto& [object, indices] : events_of_) out.push_back(object);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ObjectId> CompressedLog::CandidatesEverAt(
    const std::vector<LocationId>& locations) const {
  std::vector<ObjectId> out;
  for (LocationId location : locations) {
    auto it = explicit_at_.find(location);
    if (it == explicit_at_.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  // Derived stays of a contained object always originate from an ancestor's
  // explicit stay at the same location, so the ever-descendants of the
  // explicit residents complete the superset.
  for (std::size_t i = 0; i < out.size(); ++i) {
    auto it = children_of_.find(out[i]);
    if (it == children_of_.end()) continue;
    for (ObjectId child : it->second) {
      if (std::find(out.begin(), out.end(), child) == out.end()) {
        out.push_back(child);
      }
    }
  }
  SortUnique(&out);
  return out;
}

std::vector<ObjectId> CompressedLog::EverMissing() const {
  return ever_missing_;
}

std::vector<ObjectId> CompressedLog::EverContainersOf(ObjectId object) const {
  auto it = parents_of_.find(object);
  return it == parents_of_.end() ? std::vector<ObjectId>{} : it->second;
}

std::vector<ObjectId> CompressedLog::EverContentsOf(ObjectId container) const {
  auto it = children_of_.find(container);
  return it == children_of_.end() ? std::vector<ObjectId>{} : it->second;
}

std::vector<std::uint64_t> CompressedLog::SupportingLocationEvents(
    ObjectId object, const std::vector<LocationId>& locations,
    Epoch at) const {
  std::vector<std::uint64_t> best;
  Epoch best_start = kNeverEpoch;
  for (ObjectId member : AncestorClosure(object)) {
    auto it = events_of_.find(member);
    if (it == events_of_.end()) continue;
    for (std::uint32_t i : it->second) {
      const Event& event = stream_[i];
      if (event.type != EventType::kStartLocation || event.start > at) {
        continue;
      }
      if (std::find(locations.begin(), locations.end(), event.location) ==
          locations.end()) {
        continue;
      }
      if (best.empty() || event.start >= best_start) {
        best = {i};
        best_start = event.start;
      }
    }
  }
  return best;
}

std::vector<std::uint64_t> CompressedLog::SupportingContainmentEvent(
    ObjectId child, ObjectId container, Epoch at) const {
  std::vector<std::uint64_t> best;
  auto it = events_of_.find(child);
  if (it == events_of_.end()) return best;
  for (std::uint32_t i : it->second) {
    const Event& event = stream_[i];
    if (event.type == EventType::kStartContainment &&
        event.container == container && event.start <= at) {
      best = {i};
    }
  }
  return best;
}

std::vector<std::uint64_t> CompressedLog::SupportingMissingEvent(
    ObjectId object, Epoch at) const {
  std::vector<std::uint64_t> best;
  auto it = events_of_.find(object);
  if (it == events_of_.end()) return best;
  for (std::uint32_t i : it->second) {
    const Event& event = stream_[i];
    if (event.type == EventType::kMissing && event.start <= at) {
      best = {i};
    }
  }
  return best;
}

}  // namespace spire::cep
