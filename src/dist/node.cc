#include "dist/node.h"

#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <utility>

#include "obs/registry.h"
#include "obs/trace.h"

namespace spire::dist {

namespace {

struct NodeInstruments {
  obs::Counter* handoffs;
  obs::Histogram* handoff_latency_us;
};

const NodeInstruments* GetInstruments() {
  if (!obs::Enabled()) return nullptr;
  auto& registry = obs::Registry::Global();
  static const NodeInstruments instruments{
      registry.GetCounter("dist", "handoffs"),
      registry.GetHistogram("dist", "handoff_latency_us"),
  };
  return &instruments;
}

std::uint64_t NowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Shifts site-local output locations into the global id space (the same
/// mapping serve's shards and reference runner apply).
void RemapLocations(EventStream* events, LocationId offset) {
  if (offset == 0) return;
  for (Event& event : *events) {
    if (event.location != kUnknownLocation) {
      event.location = static_cast<LocationId>(event.location + offset);
    }
  }
}

/// One hop captured this epoch; lives in a deque so the sink address
/// handed to StageDeparture stays stable.
struct HopCapture {
  CaptureOrder order;
  std::vector<ObjectHandoff> objects;
};

}  // namespace

Status RunDistNode(const NodeConfig& config, Conn* conn) {
  if (config.workload == nullptr) {
    return Status::InvalidArgument("node has no workload");
  }
  const serve::Workload& workload = *config.workload;
  for (int site : config.sites) {
    if (site < 0 || site >= static_cast<int>(workload.sites.size())) {
      return Status::InvalidArgument("node owns out-of-range site");
    }
  }

  std::vector<std::unique_ptr<SpirePipeline>> pipelines;
  pipelines.reserve(config.sites.size());
  for (int site : config.sites) {
    pipelines.push_back(std::make_unique<SpirePipeline>(
        &workload.sites[static_cast<std::size_t>(site)].registry,
        config.pipeline));
  }

  // Hello exchange: announce identity, require a same-version coordinator.
  // Doubles as the ClockSync handshake: bracketing the round trip with t0
  // and t1 puts the coordinator's stamp at roughly the midpoint, so
  // coord_stamp - (t0 + t1) / 2 estimates this node's offset onto the
  // coordinator clock (the NTP half-round-trip estimate; ~0 on one
  // machine, where the steady clock is shared).
  std::uint32_t stats_interval = 0;
  {
    const std::uint64_t t0 = NowMicros();
    HelloPayload hello;
    hello.node_id = static_cast<std::uint32_t>(config.node_id);
    for (int site : config.sites) {
      hello.sites.push_back(static_cast<std::uint32_t>(site));
    }
    hello.steady_now_micros = t0;
    std::vector<std::uint8_t> payload;
    EncodeHello(hello, &payload);
    SPIRE_RETURN_NOT_OK(SendFrame(conn, FrameType::kHello, payload));

    Frame frame;
    bool eof = false;
    SPIRE_RETURN_NOT_OK(RecvFrame(conn, &frame, &eof));
    if (eof) return Status::Internal("connection closed before hello");
    if (frame.type != FrameType::kHello) {
      return Status::Internal(std::string("expected Hello, got ") +
                              ToString(frame.type));
    }
    Result<HelloPayload> peer = DecodeHello(frame.payload);
    if (!peer.ok()) return peer.status();
    const std::uint64_t t1 = NowMicros();

    // The coordinator's stats cadence turns metrics on before the first
    // instrumented work (and before the instrument fetch below).
    stats_interval = peer.value().stats_interval_epochs;
    if (stats_interval > 0) obs::SetEnabled(true);

    const std::int64_t offset_us =
        static_cast<std::int64_t>(peer.value().steady_now_micros) -
        static_cast<std::int64_t>((t0 + t1) / 2);
    if (obs::Enabled()) {
      obs::Registry::Global()
          .GetGauge("dist", "clock_offset_us")
          ->Set(offset_us);
    }
    if (obs::Tracer::Global().active()) {
      obs::Tracer::Global().SetClockOffsetMicros(offset_us);
    }
  }

  const NodeInstruments* obs = GetInstruments();

  // One cumulative registry snapshot per cadence tick, plus the final
  // report just before the finish barrier.
  auto send_stats = [&](Epoch epoch, bool final_report) -> Status {
    StatsReportPayload report;
    report.node_id = static_cast<std::uint32_t>(config.node_id);
    report.epoch = epoch;
    report.final_report = final_report;
    report.snapshot = obs::Registry::Global().TakeSnapshot();
    std::vector<std::uint8_t> payload;
    EncodeStatsReport(report, &payload);
    return SendFrame(conn, FrameType::kStatsReport, payload);
  };

  // Handoffs stashed until their (arrival site, arrival epoch) comes up,
  // in arrival (frame) order.
  std::map<std::pair<int, Epoch>, std::deque<HandoffPayload>> stash;

  Epoch next_epoch = 0;
  EventStream scratch;
  for (;;) {
    Frame frame;
    bool eof = false;
    SPIRE_RETURN_NOT_OK(RecvFrame(conn, &frame, &eof));
    if (eof) {
      return Status::Internal("connection closed before finish");
    }

    if (frame.type == FrameType::kHandoff) {
      Result<HandoffPayload> handoff = DecodeHandoff(frame.payload);
      if (!handoff.ok()) return handoff.status();
      const int site = static_cast<int>(handoff.value().to_site);
      stash[{site, handoff.value().arrive_epoch}].push_back(
          std::move(handoff.value()));
      continue;
    }
    if (frame.type != FrameType::kEpochWork) {
      return Status::Internal(std::string("unexpected ") +
                              ToString(frame.type) + " frame");
    }

    Result<EpochWorkPayload> decoded = DecodeEpochWork(frame.payload);
    if (!decoded.ok()) return decoded.status();
    EpochWorkPayload& work = decoded.value();

    if (work.finish) {
      for (std::size_t i = 0; i < config.sites.size(); ++i) {
        const int site = config.sites[i];
        scratch.clear();
        pipelines[i]->Finish(work.epoch, &scratch);
        RemapLocations(
            &scratch,
            workload.sites[static_cast<std::size_t>(site)].location_offset);
        SiteBatchPayload batch;
        batch.epoch = work.epoch;
        batch.site = static_cast<std::uint32_t>(site);
        batch.finish = true;
        batch.events = std::move(scratch);
        std::vector<std::uint8_t> payload;
        EncodeSiteBatch(batch, &payload);
        SPIRE_RETURN_NOT_OK(SendFrame(conn, FrameType::kSiteBatch, payload));
        scratch = std::move(batch.events);
      }
      if (stats_interval > 0) {
        SPIRE_RETURN_NOT_OK(send_stats(work.epoch, /*final_report=*/true));
      }
      BarrierPayload barrier;
      barrier.epoch = work.epoch;
      barrier.finish = true;
      barrier.steady_micros = NowMicros();
      std::vector<std::uint8_t> payload;
      EncodeBarrier(barrier, &payload);
      return SendFrame(conn, FrameType::kBarrier, payload);
    }

    if (work.epoch != next_epoch) {
      return Status::Internal("epoch work out of order");
    }
    ++next_epoch;

    std::deque<HopCapture> captured;
    for (std::size_t i = 0; i < config.sites.size(); ++i) {
      const int site = config.sites[i];
      SpirePipeline& pipeline = *pipelines[i];

      // Arrivals first: splice shipped objects in ahead of this epoch.
      auto arrivals = stash.find({site, work.epoch});
      if (arrivals != stash.end()) {
        const std::uint64_t now_us = NowMicros();
        for (const HandoffPayload& handoff : arrivals->second) {
          for (const ObjectHandoff& object : handoff.objects) {
            pipeline.ImplantHandoff(object);
          }
          if (obs::Tracer::Global().active()) {
            // Close the hop's end-to-end span opened at capture on the
            // departure node; merge-traces pairs the two by span id.
            obs::Tracer::Global().RecordAsync("handoff", "hop", 'e',
                                              handoff.span_id, work.epoch);
          }
          if (obs != nullptr) {
            obs->handoffs->Add(handoff.objects.size());
            obs->handoff_latency_us->Record(
                now_us > handoff.capture_micros
                    ? now_us - handoff.capture_micros
                    : 0);
          }
        }
        stash.erase(arrivals);
      }

      // Departures: stage this epoch's capture orders for this site.
      for (CaptureOrder& order : work.captures) {
        if (static_cast<int>(order.from_site) != site) continue;
        captured.push_back(HopCapture{std::move(order), {}});
        pipeline.StageDeparture(captured.back().order.objects,
                                &captured.back().objects);
        if (obs::Tracer::Global().active()) {
          // Open the hop's end-to-end span: capture here, splice on the
          // arrival node. The global hop index is the span id.
          obs::Tracer::Global().RecordAsync("handoff", "hop", 'b',
                                            captured.back().order.hop,
                                            work.epoch);
        }
      }

      EpochReadings readings;
      for (auto& [reading_site, site_readings] : work.site_readings) {
        if (static_cast<int>(reading_site) == site) {
          readings = std::move(site_readings);
          break;
        }
      }
      scratch.clear();
      pipeline.ProcessEpoch(work.epoch, std::move(readings), &scratch);
      RemapLocations(
          &scratch,
          workload.sites[static_cast<std::size_t>(site)].location_offset);

      SiteBatchPayload batch;
      batch.epoch = work.epoch;
      batch.site = static_cast<std::uint32_t>(site);
      batch.events = std::move(scratch);
      std::vector<std::uint8_t> payload;
      EncodeSiteBatch(batch, &payload);
      SPIRE_RETURN_NOT_OK(SendFrame(conn, FrameType::kSiteBatch, payload));
      scratch = std::move(batch.events);
    }

    // Ship this epoch's captures, then the barrier.
    for (HopCapture& capture : captured) {
      HandoffPayload handoff;
      handoff.hop = capture.order.hop;
      handoff.to_site = capture.order.to_site;
      handoff.arrive_epoch = capture.order.arrive_epoch;
      handoff.capture_micros = NowMicros();
      handoff.span_id = capture.order.hop;
      handoff.objects = std::move(capture.objects);
      std::vector<std::uint8_t> payload;
      EncodeHandoff(handoff, &payload);
      SPIRE_RETURN_NOT_OK(SendFrame(conn, FrameType::kHandoff, payload));
    }
    if (stats_interval > 0 && (work.epoch + 1) % stats_interval == 0) {
      SPIRE_RETURN_NOT_OK(send_stats(work.epoch, /*final_report=*/false));
    }
    BarrierPayload barrier;
    barrier.epoch = work.epoch;
    barrier.steady_micros = NowMicros();
    std::vector<std::uint8_t> payload;
    EncodeBarrier(barrier, &payload);
    SPIRE_RETURN_NOT_OK(SendFrame(conn, FrameType::kBarrier, payload));
  }
}

}  // namespace spire::dist
