#include "store/segment.h"

#include <cstring>
#include <fstream>

#include "store/block.h"
#include "store/crc32.h"
#include "store/little_endian.h"

namespace spire {

namespace {

/// Bounds-checked cursor over the index sidecar's body.
class Cursor {
 public:
  explicit Cursor(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  bool Take(std::size_t size, const std::uint8_t** out) {
    if (offset_ + size > bytes_.size()) return false;
    *out = bytes_.data() + offset_;
    offset_ += size;
    return true;
  }
  bool U32(std::uint32_t* out) {
    const std::uint8_t* p = nullptr;
    if (!Take(4, &p)) return false;
    *out = GetLE32(p);
    return true;
  }
  bool U64(std::uint64_t* out) {
    const std::uint8_t* p = nullptr;
    if (!Take(8, &p)) return false;
    *out = GetLE64(p);
    return true;
  }
  bool AtEnd() const { return offset_ == bytes_.size(); }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t offset_ = 0;
};

Status CheckFileHeader(const std::uint8_t* header, const char* magic,
                       std::uint16_t version, const std::string& what) {
  if (std::memcmp(header, magic, kMagicBytes) != 0) {
    return Status::Corruption("not a " + what + " (bad magic)");
  }
  if (GetLE16(header + kMagicBytes) != version) {
    return Status::NotSupported("unsupported " + what + " version");
  }
  return Status::OK();
}

void AppendFileHeader(const char* magic, std::uint16_t version,
                      std::vector<std::uint8_t>* out) {
  for (std::size_t i = 0; i < kMagicBytes; ++i) {
    out->push_back(static_cast<std::uint8_t>(magic[i]));
  }
  PutLE16(version, out);
  PutLE16(0, out);  // Reserved.
}

void AddPostings(const EventStream& block_events, std::uint32_t block_index,
                 std::map<ObjectId, std::vector<std::uint32_t>>* postings) {
  for (const Event& event : block_events) {
    std::vector<std::uint32_t>& list = (*postings)[event.object];
    if (list.empty() || list.back() != block_index) {
      list.push_back(block_index);
    }
  }
}

}  // namespace

Result<SegmentInfo> ScanSegment(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open archive segment: " + path);
  in.seekg(0, std::ios::end);
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);

  std::uint8_t header[kArchiveHeaderBytes] = {};
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in.good()) {
    return Status::Corruption("not a SPIRE archive (too short): " + path);
  }
  SPIRE_RETURN_NOT_OK(CheckFileHeader(header, kArchiveMagic, kArchiveVersion,
                                      "SPIRE archive"));

  SegmentInfo info;
  info.file_bytes = file_bytes;
  info.valid_bytes = kArchiveHeaderBytes;

  std::vector<std::uint8_t> payload;
  std::uint64_t pos = kArchiveHeaderBytes;
  while (pos + kBlockHeaderBytes <= file_bytes) {
    std::uint8_t block_header[kBlockHeaderBytes] = {};
    in.seekg(static_cast<std::streamoff>(pos));
    in.read(reinterpret_cast<char*>(block_header), sizeof(block_header));
    if (!in.good()) break;
    // Any validation failure below means the tail is torn: stop scanning.
    if (GetLE32(block_header) != kArchiveBlockMarker) break;
    if (Crc32(block_header, kBlockHeaderBytes - 4) !=
        GetLE32(block_header + 32)) {
      break;
    }
    const std::uint32_t count = GetLE32(block_header + 4);
    const std::uint32_t payload_size = GetLE32(block_header + 24);
    if (count == 0 || payload_size > kMaxBlockPayloadBytes) break;
    if (pos + kBlockHeaderBytes + payload_size > file_bytes) break;
    payload.resize(payload_size);
    in.read(reinterpret_cast<char*>(payload.data()), payload_size);
    if (!in.good()) break;
    if (Crc32(payload.data(), payload.size()) != GetLE32(block_header + 28)) {
      break;
    }
    EventStream decoded;
    if (!DecodeBlock(payload, count, &decoded).ok()) break;

    BlockMeta meta;
    meta.offset = pos;
    meta.count = count;
    meta.min_epoch = static_cast<Epoch>(GetLE64(block_header + 8));
    meta.max_epoch = static_cast<Epoch>(GetLE64(block_header + 16));
    AddPostings(decoded, static_cast<std::uint32_t>(info.blocks.size()),
                &info.postings);
    info.blocks.push_back(meta);
    info.events += count;
    pos += kBlockHeaderBytes + payload_size;
    info.valid_bytes = pos;
  }
  return info;
}

std::string IndexPathFor(const std::string& segment_path) {
  return segment_path + ".spix";
}

Status WriteIndexFile(const std::string& segment_path,
                      const SegmentInfo& info) {
  std::vector<std::uint8_t> body;
  PutLE64(info.valid_bytes, &body);
  PutLE64(info.blocks.size(), &body);
  for (const BlockMeta& block : info.blocks) {
    PutLE64(block.offset, &body);
    PutLE32(block.count, &body);
    PutLE64(static_cast<std::uint64_t>(block.min_epoch), &body);
    PutLE64(static_cast<std::uint64_t>(block.max_epoch), &body);
  }
  PutLE64(info.postings.size(), &body);
  for (const auto& [object, blocks] : info.postings) {
    PutLE64(object, &body);
    PutLE32(static_cast<std::uint32_t>(blocks.size()), &body);
    for (std::uint32_t index : blocks) PutLE32(index, &body);
  }

  std::vector<std::uint8_t> bytes;
  bytes.reserve(kArchiveHeaderBytes + body.size() + 4);
  AppendFileHeader(kArchiveIndexMagic, kArchiveIndexVersion, &bytes);
  bytes.insert(bytes.end(), body.begin(), body.end());
  PutLE32(Crc32(body.data(), body.size()), &bytes);

  const std::string path = IndexPathFor(segment_path);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<SegmentInfo> ReadIndexFile(const std::string& segment_path,
                                  std::uint64_t segment_bytes) {
  const std::string path = IndexPathFor(segment_path);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no archive index sidecar: " + path);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (bytes.size() < kArchiveHeaderBytes + 4) {
    return Status::Corruption("archive index too short: " + path);
  }
  SPIRE_RETURN_NOT_OK(CheckFileHeader(bytes.data(), kArchiveIndexMagic,
                                      kArchiveIndexVersion,
                                      "SPIRE archive index"));
  const std::vector<std::uint8_t> body(bytes.begin() + kArchiveHeaderBytes,
                                       bytes.end() - 4);
  if (Crc32(body.data(), body.size()) != GetLE32(&bytes[bytes.size() - 4])) {
    return Status::Corruption("archive index checksum mismatch: " + path);
  }

  Cursor cursor(body);
  SegmentInfo info;
  std::uint64_t block_count = 0;
  if (!cursor.U64(&info.valid_bytes) || !cursor.U64(&block_count)) {
    return Status::Corruption("archive index directory truncated: " + path);
  }
  if (info.valid_bytes != segment_bytes) {
    return Status::Corruption("archive index is stale (covers " +
                              std::to_string(info.valid_bytes) + " of " +
                              std::to_string(segment_bytes) + " bytes): " +
                              path);
  }
  for (std::uint64_t i = 0; i < block_count; ++i) {
    BlockMeta block;
    std::uint64_t min_epoch = 0;
    std::uint64_t max_epoch = 0;
    if (!cursor.U64(&block.offset) || !cursor.U32(&block.count) ||
        !cursor.U64(&min_epoch) || !cursor.U64(&max_epoch)) {
      return Status::Corruption("archive index directory truncated: " + path);
    }
    block.min_epoch = static_cast<Epoch>(min_epoch);
    block.max_epoch = static_cast<Epoch>(max_epoch);
    info.blocks.push_back(block);
    info.events += block.count;
  }
  std::uint64_t num_objects = 0;
  if (!cursor.U64(&num_objects)) {
    return Status::Corruption("archive index postings truncated: " + path);
  }
  for (std::uint64_t i = 0; i < num_objects; ++i) {
    std::uint64_t object = 0;
    std::uint32_t posting_count = 0;
    if (!cursor.U64(&object) || !cursor.U32(&posting_count)) {
      return Status::Corruption("archive index postings truncated: " + path);
    }
    std::vector<std::uint32_t>& list = info.postings[object];
    list.reserve(posting_count);
    for (std::uint32_t j = 0; j < posting_count; ++j) {
      std::uint32_t index = 0;
      if (!cursor.U32(&index)) {
        return Status::Corruption("archive index postings truncated: " + path);
      }
      if (index >= info.blocks.size()) {
        return Status::Corruption("archive index posting out of range: " +
                                  path);
      }
      list.push_back(index);
    }
  }
  if (!cursor.AtEnd()) {
    return Status::Corruption("trailing bytes in archive index: " + path);
  }
  info.file_bytes = segment_bytes;
  return info;
}

}  // namespace spire
