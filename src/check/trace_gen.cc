#include "check/trace_gen.h"

#include <algorithm>
#include <unordered_set>

#include "common/random.h"
#include "sim/simulator.h"

namespace spire {

Epoch FuzzCase::EffectiveEpochs() const {
  if (max_epochs <= 0) return sim.duration_epochs;
  return std::min<Epoch>(max_epochs, sim.duration_epochs);
}

FuzzCase CaseFromSeed(std::uint64_t seed) {
  // A distinct stream id decouples the parameter draw from the simulator's
  // own PCG sequence (both are seeded with `seed`).
  Pcg32 rng(seed, 0x5eedc0de5eedc0deULL);
  FuzzCase out;
  SimConfig& sim = out.sim;
  sim.seed = seed;
  sim.duration_epochs = 160 + rng.NextBounded(240);
  sim.pallet_interval = 40 + rng.NextBounded(120);
  sim.min_cases_per_pallet = 1 + rng.NextBounded(2);
  sim.max_cases_per_pallet =
      sim.min_cases_per_pallet + rng.NextBounded(2);
  sim.items_per_case = 2 + rng.NextBounded(4);
  sim.read_rate = rng.NextBool(0.25) ? 1.0 : 0.5 + 0.5 * rng.NextDouble();
  sim.nonshelf_ticks_per_epoch = 1 + rng.NextBounded(2);
  sim.shelf_period = 1 + rng.NextBounded(30);
  sim.num_shelves = 1 + rng.NextBounded(3);
  sim.mean_shelf_stay = 40 + rng.NextBounded(160);
  sim.entry_dwell = 2 + rng.NextBounded(8);
  sim.belt_dwell = 1 + rng.NextBounded(4);
  sim.packaging_dwell = 5 + rng.NextBounded(20);
  sim.exit_dwell = 1 + rng.NextBounded(4);
  sim.packaging_timeout = 60 + rng.NextBounded(200);
  sim.transit_time = 1 + rng.NextBounded(5);
  sim.theft_interval = rng.NextBool(0.5) ? 30 + rng.NextBounded(120) : 0;
  sim.patrol_reader = rng.NextBool(0.25);
  sim.patrol_dwell = 3 + rng.NextBounded(10);
  // Cross-site trucks (sim/transfer.h) on a minority of cases. Drawn last,
  // so single-site cases consume exactly the draw sequence they always did.
  if (rng.NextBool(0.3)) {
    sim.transfer_sites = 2 + static_cast<int>(rng.NextBounded(2));
    sim.transfer_interval = 30 + rng.NextBounded(60);
    sim.transfer_dwell = 2 + rng.NextBounded(6);
    sim.transfer_transit = 1 + rng.NextBounded(8);
    sim.transfer_round_trips = 1 + static_cast<int>(rng.NextBounded(2));
    sim.transfer_cases = 1 + static_cast<int>(rng.NextBounded(2));
    sim.transfer_items = 1 + static_cast<int>(rng.NextBounded(3));
  }
  return out;
}

Result<TransferTrace> GenerateTransferTrace(const FuzzCase& fuzz_case) {
  if (fuzz_case.sim.transfer_sites < 2) {
    return Status::InvalidArgument("not a transfer case");
  }
  auto built = BuildTransferTrace(fuzz_case.sim);
  if (!built.ok()) return built.status();
  TransferTrace trace = std::move(built.value());

  const Epoch limit = fuzz_case.EffectiveEpochs();
  if (limit < trace.num_epochs) {
    trace.num_epochs = limit;
    for (SiteTrace& site : trace.sites) {
      if (static_cast<Epoch>(site.epochs.size()) > limit) {
        site.epochs.resize(static_cast<std::size_t>(limit));
      }
    }
    // Hops that no longer depart within the horizon vanish; hops that
    // depart but never arrive stay (captured, never delivered).
    std::erase_if(trace.hops, [&](const TransferHop& hop) {
      return hop.depart_epoch >= limit;
    });
  }

  if (!fuzz_case.excluded_tags.empty()) {
    const std::unordered_set<ObjectId> excluded(
        fuzz_case.excluded_tags.begin(), fuzz_case.excluded_tags.end());
    for (SiteTrace& site : trace.sites) {
      std::size_t total = 0;
      for (EpochReadings& readings : site.epochs) {
        std::erase_if(readings, [&](const RfidReading& r) {
          return excluded.contains(r.tag);
        });
        total += readings.size();
      }
      site.total_readings = total;
    }
    for (TransferHop& hop : trace.hops) {
      std::erase_if(hop.objects,
                    [&](ObjectId id) { return excluded.contains(id); });
    }
  }
  return trace;
}

Result<RecordedTrace> GenerateTrace(const FuzzCase& fuzz_case) {
  if (fuzz_case.sim.transfer_sites >= 2) {
    auto transfer = GenerateTransferTrace(fuzz_case);
    if (!transfer.ok()) return transfer.status();
    auto merged = MergeToSingleDeployment(transfer.value());
    if (!merged.ok()) return merged.status();
    RecordedTrace trace;
    trace.registry = std::move(merged.value().registry);
    trace.entry_door = merged.value().entry_door;
    trace.epochs = std::move(merged.value().epochs);
    trace.total_readings = merged.value().total_readings;
    return trace;
  }
  auto sim = WarehouseSimulator::Create(fuzz_case.sim);
  if (!sim.ok()) return sim.status();
  WarehouseSimulator& s = *sim.value();
  const std::unordered_set<ObjectId> excluded(
      fuzz_case.excluded_tags.begin(), fuzz_case.excluded_tags.end());
  const Epoch limit = fuzz_case.EffectiveEpochs();

  RecordedTrace trace;
  trace.registry = s.registry();
  trace.entry_door = s.layout().entry_door;
  trace.epochs.reserve(static_cast<std::size_t>(limit));
  while (!s.Done() && static_cast<Epoch>(trace.epochs.size()) < limit) {
    EpochReadings readings = s.Step();
    if (!excluded.empty()) {
      std::erase_if(readings, [&](const RfidReading& r) {
        return excluded.contains(r.tag);
      });
    }
    trace.total_readings += readings.size();
    trace.epochs.push_back(std::move(readings));
  }
  return trace;
}

std::vector<ObjectId> TagsInTrace(const RecordedTrace& trace) {
  std::unordered_set<ObjectId> seen;
  for (const EpochReadings& readings : trace.epochs) {
    for (const RfidReading& reading : readings) seen.insert(reading.tag);
  }
  std::vector<ObjectId> tags(seen.begin(), seen.end());
  std::sort(tags.begin(), tags.end());
  return tags;
}

}  // namespace spire
