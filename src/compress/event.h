// The compressed output event model (Section V-A).
//
// A compressed stream carries location and containment events with validity
// intervals [V_s, V_e]. Five message kinds exist; Start* messages leave V_e
// open (infinity), End* messages close it, and Missing is a singleton whose
// interval collapses to a point. A stream is *well-formed* when, per object,
// every start message has a matching end message and Missing appears only
// outside start-end location pairs (see compress/well_formed.h).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/wire.h"

namespace spire {

/// Message kind of an output event.
enum class EventType : std::uint8_t {
  kStartLocation = 0,
  kEndLocation = 1,
  kStartContainment = 2,
  kEndContainment = 3,
  kMissing = 4,
};

/// Human-readable event type name.
const char* ToString(EventType type);

/// True for the two containment message kinds.
inline bool IsContainmentEvent(EventType type) {
  return type == EventType::kStartContainment ||
         type == EventType::kEndContainment;
}

/// One output message. Location messages use `location` and leave
/// `container` = kNoObject; containment messages do the opposite. For a
/// Missing message, `location` is the location the object went missing from.
struct Event {
  EventType type = EventType::kStartLocation;
  ObjectId object = kNoObject;
  LocationId location = kUnknownLocation;
  ObjectId container = kNoObject;
  Epoch start = kNeverEpoch;              ///< V_s.
  Epoch end = kInfiniteEpoch;             ///< V_e; infinity while open.

  bool operator==(const Event&) const = default;

  /// Convenience constructors.
  static Event StartLocation(ObjectId object, LocationId location, Epoch start);
  static Event EndLocation(ObjectId object, LocationId location, Epoch start,
                           Epoch end);
  static Event StartContainment(ObjectId object, ObjectId container,
                                Epoch start);
  static Event EndContainment(ObjectId object, ObjectId container, Epoch start,
                              Epoch end);
  static Event Missing(ObjectId object, LocationId missing_from, Epoch at);

  /// Wire size of one serialized message (see common/wire.h).
  static constexpr std::size_t WireBytes() { return kEventWireBytes; }

  /// Debug form, e.g. "StartLocation(case:1.2.3, loc 4, [10, inf))".
  std::string ToString() const;
};

/// An ordered sequence of events (by emission time).
using EventStream = std::vector<Event>;

/// A stay that survived churn cancellation but had its recorded start moved
/// back to `start` (the End/Start pair between was spliced out); the caller
/// must update its own open-stay bookkeeping to match.
struct ChurnSplice {
  ObjectId object = kNoObject;
  LocationId location = kUnknownLocation;
  Epoch start = kNeverEpoch;
};

/// Removes meaningless same-epoch location churn from the slice
/// [first, events->size()), which must hold one epoch's events:
///  1. a zero-length stay superseded by another StartLocation of the same
///     object at the same epoch — an object has one location per epoch, so
///     such a stay is a bookkeeping transient, not a visit;
///  2. an EndLocation whose next location message for that object is a
///     StartLocation continuing the stay seamlessly at the same location —
///     the stay never ended. If the reopened stay closed again within the
///     slice the surviving End inherits the original start; otherwise the
///     still-open stay is returned as a splice.
/// A Missing message blocks cancellation — a real departure is kept.
/// Shared by the compressor (per emitted epoch) and the decompressor (per
/// reconstructed epoch) so both sides agree on the churn-free form
/// (Section V-C duplicate suppression).
std::vector<ChurnSplice> CancelLocationChurn(EventStream* events,
                                             std::size_t first);

/// Total wire bytes of a stream.
inline std::size_t WireBytes(const EventStream& stream) {
  return stream.size() * kEventWireBytes;
}

}  // namespace spire
