#include "inference/iterative.h"

#include <algorithm>
#include <cassert>

#include "obs/registry.h"
#include "obs/trace.h"

namespace spire {

namespace {

struct Instruments {
  obs::Counter* passes_complete;
  obs::Counter* passes_partial;
  obs::Counter* waves;
  obs::Counter* edges_pruned;
  obs::Counter* estimates;
  obs::Counter* dirty_nodes;
  obs::Counter* fade_wakeups;
  obs::Counter* cache_hits;
  obs::Counter* nodes_reinferred;
};

const Instruments* GetInstruments() {
  if (!obs::Enabled()) return nullptr;
  auto& registry = obs::Registry::Global();
  static const Instruments instruments{
      registry.GetCounter("inference", "passes_complete"),
      registry.GetCounter("inference", "passes_partial"),
      registry.GetCounter("inference", "waves"),
      registry.GetCounter("inference", "edges_pruned"),
      registry.GetCounter("inference", "estimates"),
      registry.GetCounter("inference", "dirty_nodes"),
      registry.GetCounter("inference", "fade_wakeups"),
      registry.GetCounter("inference", "cache_hits"),
      registry.GetCounter("inference", "nodes_reinferred"),
  };
  return &instruments;
}

}  // namespace

// ------------------------------------------------------------- FadeWheel ---

void IterativeInference::FadeWheel::Resize(std::size_t slots) {
  if (wake_.size() < slots) wake_.resize(slots, kNeverEpoch);
}

void IterativeInference::FadeWheel::Schedule(NodeId slot, Epoch deadline) {
  wake_[slot] = deadline;
  if (deadline == kNeverEpoch) return;
  ring_[static_cast<std::size_t>(deadline) & (kBuckets - 1)].push_back(
      Entry{deadline, slot});
}

void IterativeInference::FadeWheel::Drain(std::vector<Entry>& bucket,
                                          Epoch now,
                                          std::vector<NodeId>* out) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    const Entry entry = bucket[i];
    if (entry.deadline > now) {
      bucket[kept++] = entry;
      continue;
    }
    // Due, or stale (superseded by a later Schedule). Only the entry that
    // matches the authoritative wake-up fires; either way it leaves the
    // ring.
    if (wake_[entry.slot] == entry.deadline) {
      wake_[entry.slot] = kNeverEpoch;
      out->push_back(entry.slot);
    }
  }
  bucket.resize(kept);
}

void IterativeInference::FadeWheel::Collect(Epoch prev, Epoch now,
                                            std::vector<NodeId>* out) {
  if (now <= prev) return;
  if (now - prev >= static_cast<Epoch>(kBuckets)) {
    for (auto& bucket : ring_) Drain(bucket, now, out);
    return;
  }
  // Any deadline in (prev, now] hashes into one of these consecutive
  // buckets; earlier deadlines were collected by earlier calls.
  for (Epoch e = prev + 1; e <= now; ++e) {
    Drain(ring_[static_cast<std::size_t>(e) & (kBuckets - 1)], now, out);
  }
}

void IterativeInference::FadeWheel::Clear() {
  for (auto& bucket : ring_) bucket.clear();
  std::fill(wake_.begin(), wake_.end(), kNeverEpoch);
}

// -------------------------------------------------------------- Inference ---

std::vector<Epoch> IterativeInference::LocationPeriods(
    const ReaderRegistry* registry) {
  if (registry == nullptr) return {};
  return spire::LocationPeriods(*registry);
}

void IterativeInference::EnsureScratch() {
  const std::size_t slots = graph_->NodeSlots();
  if (visited_stamp_.size() >= slots) return;
  visited_stamp_.resize(slots, 0);
  known_stamp_.resize(slots, 0);
  known_value_.resize(slots, kUnknownLocation);
  reach_stamp_.resize(slots, 0);
  cache_.resize(slots);
  cache_valid_.resize(slots, 0);
  wheel_.Resize(slots);
}

EdgeInferenceResult IterativeInference::InferEdgesAndPrune(
    const Node& node, InferenceResult* result) {
  std::vector<EdgeId> prunable;
  EdgeInferenceResult inferred = edge_inferencer_.InferAt(node, &prunable);
  for (EdgeId id : prunable) {
    if (id == inferred.best_edge) {
      // The chosen edge itself fell below the threshold: the containment
      // evidence is too weak to keep.
      inferred.best_edge = kNoEdge;
      inferred.best_parent = kNoObject;
      inferred.best_prob = 0.0;
      inferred.runner_up_prob = 0.0;
    }
    graph_->RemoveEdge(id);
    ++result->edges_pruned;
  }
  return inferred;
}

void IterativeInference::StoreCache(NodeId slot,
                                    const ObjectEstimate& estimate,
                                    const ScoreModel* model, Epoch now) {
  if (!store_cache_) return;
  cache_[slot] = estimate;
  cache_valid_[slot] = 1;
  Epoch deadline = kNeverEpoch;
  if (model != nullptr) {
    deadline = NextArgmaxFlip(*model, now, now + kFadeHorizon);
  }
  wheel_.Schedule(slot, deadline);
}

bool IterativeInference::CaptureHandoff(NodeId slot, ObjectEstimate* estimate,
                                        Epoch* deadline) const {
  *deadline = wheel_.ScheduledAt(slot);
  // The validity check mirrors the incremental pass's cache-hole safety
  // net: a slot may have been recycled since the entry was stored.
  if (slot >= cache_valid_.size() || cache_valid_[slot] == 0) return false;
  if (cache_[slot].object != graph_->node(slot).id) return false;
  *estimate = cache_[slot];
  return true;
}

void IterativeInference::ImplantHandoff(NodeId slot,
                                        const ObjectEstimate& estimate,
                                        Epoch deadline) {
  // The slot belongs to a node the caller just created, so EnsureScratch
  // covers it. Implanting is unconditional (not gated on store_cache_):
  // with incremental inference off the entry is simply never read.
  EnsureScratch();
  cache_[slot] = estimate;
  cache_valid_[slot] = 1;
  wheel_.Schedule(slot, deadline);
}

InferenceResult IterativeInference::RunPass(
    Epoch now, bool complete, const std::vector<NodeId>* restrict_to) {
  InferenceResult result;
  result.epoch = now;
  result.complete = complete;
  edge_inferencer_.BeginPass();
  EnsureScratch();
  ++pass_;
  const std::uint64_t pass = pass_;
  if (complete) result.estimates.reserve(graph_->NumNodes());

  PassColors colors;
  colors.graph = graph_;
  colors.known_stamp = known_stamp_.data();
  colors.known_value = known_value_.data();
  colors.pass = pass;

  // Wave d = 0: the observed nodes. Edge inference estimates their most
  // likely containers; their location is the observed color. In a
  // restricted pass every colored node is a seed (coloring marks dirty), so
  // wave 0 — and with it the whole BFS — is identical to the full pass's.
  wave_.clear();
  for (NodeId slot : graph_->ColoredSlots()) {
    visited_stamp_[slot] = pass;
    wave_.push_back(slot);
  }
  for (NodeId slot : wave_) {
    Node& node = graph_->node(slot);
    EdgeInferenceResult edges = InferEdgesAndPrune(node, &result);
    ObjectEstimate estimate;
    estimate.object = node.id;
    estimate.location = node.recent_color;
    estimate.location_prob = 1.0;
    estimate.container = edges.best_parent;
    estimate.container_prob = edges.best_prob;
    estimate.container_runner_up = edges.runner_up_prob;
    estimate.observed = true;
    result.estimates[node.id] = estimate;
    known_stamp_[slot] = pass;
    known_value_[slot] = node.recent_color;
    if (complete) StoreCache(slot, estimate, nullptr, now);
  }

  // Waves d = 1, 2, ...: uncolored nodes in increasing distance.
  int distance = 0;
  while (!wave_.empty()) {
    ++distance;
    if (!complete && distance > params_.partial_hops) break;
    obs::ScopedSpan wave_span("inference", "wave", now);

    // Collect the next wave from the (post-pruning) adjacency of this one.
    next_.clear();
    for (NodeId slot : wave_) {
      const Node& node = graph_->node(slot);
      auto discover = [&](NodeId neighbor) {
        if (visited_stamp_[neighbor] != pass) {
          visited_stamp_[neighbor] = pass;
          next_.push_back(neighbor);
        }
      };
      for (EdgeId e : node.parent_edges) discover(graph_->edge(e).parent_node);
      for (EdgeId e : node.child_edges) discover(graph_->edge(e).child_node);
    }
    if (next_.empty()) break;

    // Edge inference (with pruning) for the whole wave first...
    wave_edges_.clear();
    for (NodeId slot : next_) {
      wave_edges_.push_back(InferEdgesAndPrune(graph_->node(slot), &result));
    }
    // ...then node inference, seeing only colors from earlier waves.
    pending_.clear();
    wave_models_.resize(next_.size());
    for (std::size_t i = 0; i < next_.size(); ++i) {
      const Node& node = graph_->node(next_[i]);
      const EdgeInferenceResult& edges = wave_edges_[i];
      NodeInferenceResult location = node_inferencer_.InferAt(
          node, now, colors, complete ? &wave_models_[i] : nullptr);
      ObjectEstimate estimate;
      estimate.object = node.id;
      estimate.location = location.location;
      estimate.location_prob = location.probability;
      estimate.location_runner_up = location.runner_up;
      estimate.container = edges.best_parent;
      estimate.container_prob = edges.best_prob;
      estimate.container_runner_up = edges.runner_up_prob;
      estimate.observed = false;
      estimate.withheld = !complete && location.location == kUnknownLocation;
      pending_.push_back(estimate);
    }
    // Commit the wave: later waves may now use these colors.
    for (std::size_t i = 0; i < next_.size(); ++i) {
      const ObjectEstimate& estimate = pending_[i];
      result.estimates[estimate.object] = estimate;
      if (estimate.location != kUnknownLocation) {
        known_stamp_[next_[i]] = pass;
        known_value_[next_[i]] = estimate.location;
      }
      if (complete) StoreCache(next_[i], estimate, &wave_models_[i], now);
    }
    result.waves = static_cast<std::size_t>(distance);
    wave_.swap(next_);
  }

  if (complete) {
    // Nodes unreachable from any colored node ("d = infinity"): no color can
    // propagate to them; infer from their fading colors alone.
    rest_.clear();
    if (restrict_to == nullptr) {
      const std::size_t slots = graph_->NodeSlots();
      for (NodeId slot = 0; slot < slots; ++slot) {
        if (!graph_->NodeAlive(slot)) continue;
        if (visited_stamp_[slot] == pass) continue;
        rest_.push_back(slot);
      }
    } else {
      for (NodeId slot : *restrict_to) {
        if (visited_stamp_[slot] == pass) continue;
        rest_.push_back(slot);
      }
    }
    std::sort(rest_.begin(), rest_.end(), [&](NodeId a, NodeId b) {
      return graph_->node(a).id < graph_->node(b).id;
    });
    ScoreModel model;
    for (NodeId slot : rest_) {
      const Node& node = graph_->node(slot);
      EdgeInferenceResult edges = InferEdgesAndPrune(node, &result);
      NodeInferenceResult location =
          node_inferencer_.InferAt(node, now, colors, &model);
      ObjectEstimate estimate;
      estimate.object = node.id;
      estimate.location = location.location;
      estimate.location_prob = location.probability;
      estimate.location_runner_up = location.runner_up;
      estimate.container = edges.best_parent;
      estimate.container_prob = edges.best_prob;
      estimate.container_runner_up = edges.runner_up_prob;
      estimate.observed = false;
      result.estimates[node.id] = estimate;
      StoreCache(slot, estimate, &model, now);
    }
  }
  return result;
}

InferenceResult IterativeInference::RunPartial(Epoch now) {
  store_cache_ = false;
  InferenceResult result = RunPass(now, false, nullptr);
  if (const Instruments* instruments = GetInstruments()) {
    instruments->passes_partial->Add(1);
    instruments->waves->Add(result.waves);
    instruments->edges_pruned->Add(result.edges_pruned);
    instruments->estimates->Add(result.estimates.size());
  }
  return result;
}

InferenceResult IterativeInference::RunFullComplete(Epoch now) {
  // Cache maintenance (and its deadline computations) only pays off when
  // incremental passes will consume it.
  store_cache_ = params_.incremental;
  if (store_cache_) {
    EnsureScratch();
    wheel_.Clear();
  }
  // Consume the dirty set *before* the pass: edges pruned mid-pass re-dirty
  // their endpoints, and those marks must survive into the next epoch's
  // seeds (the pass's cached estimates saw the pre-pruning structure).
  graph_->ClearDirty();
  InferenceResult result = RunPass(now, true, nullptr);
  cache_primed_ = store_cache_;
  passes_since_full_ = 0;
  last_complete_ = now;
  if (const Instruments* instruments = GetInstruments()) {
    instruments->passes_complete->Add(1);
    instruments->waves->Add(result.waves);
    instruments->edges_pruned->Add(result.edges_pruned);
    instruments->estimates->Add(result.estimates.size());
    instruments->nodes_reinferred->Add(result.estimates.size());
  }
  return result;
}

InferenceResult IterativeInference::RunIncrementalComplete(Epoch now) {
  EnsureScratch();
  store_cache_ = true;
  ++reach_round_;
  const std::uint64_t round = reach_round_;

  // Seeds: nodes whose inputs changed (dirty) or whose fade deadline
  // arrived (due). Dead slots may linger on either list; skip them.
  reach_.clear();
  auto seed = [&](NodeId slot) {
    if (!graph_->NodeAlive(slot)) return;
    if (reach_stamp_[slot] == round) return;
    reach_stamp_[slot] = round;
    reach_.push_back(slot);
  };
  for (NodeId slot : graph_->DirtyNodes()) seed(slot);
  const std::size_t dirty_seeds = reach_.size();
  // Seeds are consumed; marks set from here on (mid-pass pruning) are next
  // epoch's seeds.
  graph_->ClearDirty();
  due_.clear();
  wheel_.Collect(last_complete_, now, &due_);
  for (NodeId slot : due_) seed(slot);

  // The recompute set is the union of the seeds' connected components:
  // estimates are a per-component function, so recomputing whole components
  // (and nothing less) reproduces the full pass bit-for-bit.
  auto close_reach = [&](std::size_t from) {
    for (std::size_t i = from; i < reach_.size(); ++i) {
      const Node& node = graph_->node(reach_[i]);
      auto grow = [&](NodeId neighbor) {
        if (reach_stamp_[neighbor] != round) {
          reach_stamp_[neighbor] = round;
          reach_.push_back(neighbor);
        }
      };
      for (EdgeId e : node.parent_edges) grow(graph_->edge(e).parent_node);
      for (EdgeId e : node.child_edges) grow(graph_->edge(e).child_node);
    }
  };
  close_reach(0);

  // Safety net: every untouched node must have a valid cached estimate. A
  // hole (which the seeding rules are designed to make impossible) extends
  // the recompute set *before* the pass runs, so a fallback never mixes
  // with a partially pruned graph.
  const std::size_t slots = graph_->NodeSlots();
  for (NodeId slot = 0; slot < slots; ++slot) {
    if (!graph_->NodeAlive(slot) || reach_stamp_[slot] == round) continue;
    if (cache_valid_[slot] && cache_[slot].object == graph_->node(slot).id) {
      continue;
    }
    const std::size_t from = reach_.size();
    reach_stamp_[slot] = round;
    reach_.push_back(slot);
    close_reach(from);
  }

  InferenceResult result = RunPass(now, true, &reach_);
  const std::size_t reinferred = result.estimates.size();

  // Untouched components: replay the cached estimates. Their (location,
  // container, observed, withheld) equal what a full pass would recompute;
  // the posteriors may lag (explain channel only, see DESIGN.md §10).
  for (NodeId slot = 0; slot < slots; ++slot) {
    if (!graph_->NodeAlive(slot) || reach_stamp_[slot] == round) continue;
    result.estimates.emplace(cache_[slot].object, cache_[slot]);
  }
  const std::size_t cache_hits = result.estimates.size() - reinferred;

  ++passes_since_full_;
  last_complete_ = now;
  if (const Instruments* instruments = GetInstruments()) {
    instruments->passes_complete->Add(1);
    instruments->waves->Add(result.waves);
    instruments->edges_pruned->Add(result.edges_pruned);
    instruments->estimates->Add(result.estimates.size());
    instruments->dirty_nodes->Add(dirty_seeds);
    instruments->fade_wakeups->Add(due_.size());
    instruments->cache_hits->Add(cache_hits);
    instruments->nodes_reinferred->Add(reinferred);
  }
  return result;
}

InferenceResult IterativeInference::RunComplete(Epoch now) {
  const bool resync_due = params_.full_resync_passes > 0 &&
                          passes_since_full_ >= params_.full_resync_passes;
  if (!params_.incremental || !cache_primed_ || resync_due) {
    return RunFullComplete(now);
  }
  return RunIncrementalComplete(now);
}

}  // namespace spire
