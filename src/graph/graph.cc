#include "graph/graph.h"

#include <algorithm>
#include <cassert>

namespace spire {

Graph::Graph(int history_size) : history_size_(history_size) {
  assert(history_size >= 1 && history_size <= ShiftRegister::kMaxCapacity);
}

void Graph::BeginEpoch(Epoch now) {
  assert(now > now_);
  now_ = now;
  // Losing the epoch color changes a node's next estimate (observed ->
  // inferred), so last epoch's colored nodes are change candidates.
  for (NodeId slot : colored_slots_) {
    if (NodeAlive(slot)) MarkDirty(node(slot));
  }
  for (const auto& [layer, color] : touched_colors_) {
    colored_index_[layer][color].clear();
  }
  touched_colors_.clear();
  colored_nodes_.clear();
  colored_slots_.clear();
}

NodeId Graph::AllocateSlot() {
  if (!free_nodes_.empty()) {
    NodeId slot = free_nodes_.back();
    free_nodes_.pop_back();
    return slot;
  }
  const NodeId slot = static_cast<NodeId>(node_slots_);
  if ((node_slots_ & (kNodeChunkSize - 1)) == 0) {
    node_chunks_.push_back(std::make_unique<Node[]>(kNodeChunkSize));
  }
  ++node_slots_;
  return slot;
}

Node& Graph::GetOrCreateNode(ObjectId id) {
  auto [it, inserted] = node_ids_.try_emplace(id, kNoNode);
  if (!inserted) return node(it->second);
  const NodeId slot = AllocateSlot();
  it->second = slot;
  Node& n = node(slot);
  // Reset fields individually: clear() keeps the adjacency vectors'
  // capacity on slot reuse, and the dirty flag stays in sync with the
  // dirty list (the freed slot may still be queued there).
  n.id = id;
  n.self = slot;
  n.layer = EpcLayer(id);
  n.recent_color = kUnknownLocation;
  n.seen_at = kNeverEpoch;
  n.colored_epoch = kNeverEpoch;
  n.confirmed = ConfirmedParent{};
  n.parent_edges.clear();
  n.child_edges.clear();
  ++num_alive_nodes_;
  return n;
}

void Graph::ColorNode(Node& node, LocationId color) {
  if (IsColored(node) && node.recent_color == color) return;
  // A new color or a refreshed seen_at both change the node's estimate.
  MarkDirty(node);
  node.recent_color = color;
  node.seen_at = now_;
  if (node.colored_epoch != now_) {
    node.colored_epoch = now_;
    colored_nodes_.push_back(node.id);
    colored_slots_.push_back(node.self);
  }
  auto& by_color = colored_index_[node.layer];
  if (color >= by_color.size()) by_color.resize(color + 1);
  if (by_color[color].empty()) touched_colors_.emplace_back(node.layer, color);
  by_color[color].push_back(node.id);
}

Node* Graph::FindNode(ObjectId id) {
  auto it = node_ids_.find(id);
  return it == node_ids_.end() ? nullptr : &node(it->second);
}

const Node* Graph::FindNode(ObjectId id) const {
  auto it = node_ids_.find(id);
  return it == node_ids_.end() ? nullptr : &node(it->second);
}

void Graph::ClearDirty() {
  for (NodeId slot : dirty_nodes_) node(slot).dirty = false;
  dirty_nodes_.clear();
}

EdgeId Graph::AddEdge(ObjectId parent, ObjectId child) {
  EdgeId existing = FindEdge(parent, child);
  if (existing != kNoEdge) return existing;

  EdgeId id;
  if (!free_edges_.empty()) {
    id = free_edges_.back();
    free_edges_.pop_back();
  } else {
    id = static_cast<EdgeId>(edges_.size());
    edges_.emplace_back();
  }
  // Node references stay valid across both GetOrCreateNode calls: the
  // chunked arena never moves existing nodes.
  Node& parent_node = GetOrCreateNode(parent);
  Node& child_node = GetOrCreateNode(child);
  Edge& e = edges_[id];
  e = Edge{};
  e.parent = parent;
  e.child = child;
  e.parent_node = parent_node.self;
  e.child_node = child_node.self;
  e.recent_colocations = ShiftRegister(history_size_);
  e.created_at = now_;
  e.alive = true;

  parent_node.child_edges.push_back(id);
  child_node.parent_edges.push_back(id);
  MarkDirty(parent_node);
  MarkDirty(child_node);
  ++num_alive_edges_;
  return id;
}

EdgeId Graph::FindEdge(ObjectId parent, ObjectId child) const {
  const Node* child_node = FindNode(child);
  if (child_node == nullptr) return kNoEdge;
  for (EdgeId id : child_node->parent_edges) {
    if (edges_[id].parent == parent) return id;
  }
  return kNoEdge;
}

void Graph::RemoveEdge(EdgeId id) {
  Edge& e = edges_[id];
  assert(e.alive);
  if (Node* parent = NodeAt(e.parent_node)) {
    DetachFromAdjacency(parent->child_edges, id);
    MarkDirty(*parent);
  }
  if (Node* child = NodeAt(e.child_node)) {
    DetachFromAdjacency(child->parent_edges, id);
    MarkDirty(*child);
  }
  e.alive = false;
  free_edges_.push_back(id);
  --num_alive_edges_;
}

void Graph::RemoveNode(ObjectId id) {
  Node* node = FindNode(id);
  if (node == nullptr) return;
  // Copy: RemoveEdge mutates the adjacency lists. Removal dirties every
  // former neighbor (via RemoveEdge), which is what re-seeds inference in
  // the region the node left.
  std::vector<EdgeId> incident = node->parent_edges;
  incident.insert(incident.end(), node->child_edges.begin(),
                  node->child_edges.end());
  for (EdgeId e : incident) RemoveEdge(e);
  // The per-epoch color index may still reference the node; uncolor lazily
  // is not possible for removed ids, so purge it eagerly.
  if (node->colored_epoch == now_) {
    auto& by_color = colored_index_[node->layer];
    if (node->recent_color < by_color.size()) {
      auto& vec = by_color[node->recent_color];
      vec.erase(std::remove(vec.begin(), vec.end(), id), vec.end());
    }
    colored_nodes_.erase(
        std::remove(colored_nodes_.begin(), colored_nodes_.end(), id),
        colored_nodes_.end());
    colored_slots_.erase(
        std::remove(colored_slots_.begin(), colored_slots_.end(), node->self),
        colored_slots_.end());
  }
  node_ids_.erase(id);
  free_nodes_.push_back(node->self);
  node->id = kNoObject;
  --num_alive_nodes_;
}

const std::vector<ObjectId>& Graph::ColoredAt(LocationId color,
                                              int layer) const {
  static const std::vector<ObjectId> kEmpty;
  assert(layer >= 0 && layer < kNumPackagingLevels);
  const auto& by_color = colored_index_[layer];
  return color < by_color.size() ? by_color[color] : kEmpty;
}

std::size_t Graph::MemoryUsage() const {
  std::size_t bytes = 0;
  // Arena node storage: whole chunks, plus the id map's entry payload with
  // an assumed bucket/control overhead of two pointers per entry.
  bytes += node_chunks_.size() * kNodeChunkSize * sizeof(Node);
  bytes += node_ids_.size() *
           (sizeof(std::pair<ObjectId, NodeId>) + 2 * sizeof(void*));
  for (NodeId slot = 0; slot < node_slots_; ++slot) {
    const Node& n = node(slot);
    bytes += n.parent_edges.capacity() * sizeof(EdgeId);
    bytes += n.child_edges.capacity() * sizeof(EdgeId);
  }
  bytes += free_nodes_.capacity() * sizeof(NodeId);
  bytes += edges_.capacity() * sizeof(Edge);
  bytes += free_edges_.capacity() * sizeof(EdgeId);
  bytes += colored_nodes_.capacity() * sizeof(ObjectId);
  bytes += colored_slots_.capacity() * sizeof(NodeId);
  bytes += dirty_nodes_.capacity() * sizeof(NodeId);
  for (const auto& layer_index : colored_index_) {
    bytes += layer_index.capacity() * sizeof(std::vector<ObjectId>);
    for (const auto& cell : layer_index) {
      bytes += cell.capacity() * sizeof(ObjectId);
    }
  }
  return bytes;
}

void Graph::DetachFromAdjacency(std::vector<EdgeId>& list, EdgeId id) {
  auto it = std::find(list.begin(), list.end(), id);
  if (it != list.end()) {
    *it = list.back();
    list.pop_back();
  }
}

}  // namespace spire
