// Segment-file scanning and the index sidecar (shared by ArchiveWriter's
// crash recovery and ArchiveReader's open path).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/format.h"

namespace spire {

/// Everything the directory knows about one segment: the validated block
/// directory, per-object posting lists of block indexes, and how far the
/// valid prefix reaches.
struct SegmentInfo {
  std::vector<BlockMeta> blocks;
  std::map<ObjectId, std::vector<std::uint32_t>> postings;
  std::uint64_t events = 0;
  /// Bytes of the valid prefix (file header + every block that validates).
  std::uint64_t valid_bytes = 0;
  /// Actual on-disk size; > valid_bytes exactly when the tail is torn.
  std::uint64_t file_bytes = 0;
};

/// Scans a segment file front to back, validating every block's header CRC,
/// marker, and payload CRC, and decoding payloads to build the posting
/// lists. Stops at the first block that fails validation (the torn tail) —
/// that is the recovery rule, not an error. Fails only when the file cannot
/// be opened or its 8-byte file header is not a SPIRE archive.
Result<SegmentInfo> ScanSegment(const std::string& path);

/// Path of the index sidecar: `<segment_path>.spix` (sparkey-style pair).
std::string IndexPathFor(const std::string& segment_path);

/// Writes the sidecar for a segment whose valid prefix is
/// `info.valid_bytes` bytes.
Status WriteIndexFile(const std::string& segment_path, const SegmentInfo& info);

/// Reads the sidecar back. Fails when it is missing or malformed, or when
/// it covers a different byte count than `segment_bytes` (stale after a
/// crash or an unclosed append session) — callers then fall back to
/// ScanSegment.
Result<SegmentInfo> ReadIndexFile(const std::string& segment_path,
                                  std::uint64_t segment_bytes);

}  // namespace spire
