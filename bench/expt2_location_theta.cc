// Expt 2 (Fig. 9(c)): location inference error versus theta — the fading
// exponent on the belief in an object's continued presence at its last
// observed location — for several shelf-reader frequencies.
//
//   ./expt2_location_theta [full=true] [key=value ...]
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "eval/table.h"

using namespace spire;
using namespace spire::bench;

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  bool full = args.GetBool("full", false).value_or(false);
  SimConfig base = SweepConfig(full);
  auto overridden = SimConfig::FromConfig(args, base);
  if (overridden.ok()) base = overridden.value();

  PrintHeader("Expt 2: location inference vs theta", "Fig. 9(c)");

  const std::vector<Epoch> shelf_periods{1, 10, 30, 60};
  const std::vector<double> thetas{0.05, 0.15, 0.35, 0.75, 1.0,
                                   1.25, 1.5,  2.0,  3.0,  4.0};

  // Two read rates: at the default 0.85 conflict resolution rescues most
  // over-eager "unknown" verdicts, so the high-theta penalty of Fig. 9(c)
  // shows most clearly at a lower read rate.
  for (double read_rate : {base.read_rate, 0.6}) {
    TextTable table([&] {
      std::vector<std::string> header{"theta"};
      for (Epoch period : shelf_periods) {
        header.push_back("shelf 1/" + std::to_string(period) + "s");
      }
      return header;
    }());
    for (double theta : thetas) {
      std::vector<std::string> row{TextTable::Num(theta, 2)};
      for (Epoch period : shelf_periods) {
        RunOptions options;
        options.sim = base;
        options.sim.read_rate = read_rate;
        options.sim.shelf_period = period;
        options.pipeline.inference.theta = theta;
        row.push_back(TextTable::Num(
            RunSpireTrace(options).accuracy.LocationErrorRate(), 4));
      }
      table.AddRow(row);
    }
    std::printf("location error rate vs theta (read rate %.2f):\n",
                read_rate);
    table.Print();
    std::printf("\n");
  }
  return 0;
}
