#include "sim/sim_config.h"

namespace spire {

namespace {

#define SPIRE_LOAD_INT(field)                                     \
  do {                                                            \
    auto r = config.GetInt(#field, out.field);                    \
    if (!r.ok()) return r.status();                               \
    out.field = r.value();                                        \
  } while (0)

#define SPIRE_LOAD_DOUBLE(field)                                  \
  do {                                                            \
    auto r = config.GetDouble(#field, out.field);                 \
    if (!r.ok()) return r.status();                               \
    out.field = r.value();                                        \
  } while (0)

}  // namespace

Result<SimConfig> SimConfig::FromConfig(const Config& config) {
  return FromConfig(config, SimConfig());
}

Result<SimConfig> SimConfig::FromConfig(const Config& config,
                                        const SimConfig& base) {
  SimConfig out = base;
  SPIRE_LOAD_INT(duration_epochs);
  SPIRE_LOAD_INT(pallet_interval);
  SPIRE_LOAD_INT(min_cases_per_pallet);
  SPIRE_LOAD_INT(max_cases_per_pallet);
  SPIRE_LOAD_INT(items_per_case);
  SPIRE_LOAD_DOUBLE(read_rate);
  SPIRE_LOAD_INT(nonshelf_ticks_per_epoch);
  SPIRE_LOAD_INT(shelf_period);
  SPIRE_LOAD_INT(num_shelves);
  SPIRE_LOAD_INT(mean_shelf_stay);
  SPIRE_LOAD_INT(entry_dwell);
  SPIRE_LOAD_INT(belt_dwell);
  SPIRE_LOAD_INT(packaging_dwell);
  SPIRE_LOAD_INT(exit_dwell);
  SPIRE_LOAD_INT(packaging_timeout);
  SPIRE_LOAD_INT(transit_time);
  SPIRE_LOAD_INT(theft_interval);
  SPIRE_LOAD_INT(patrol_dwell);
  SPIRE_LOAD_INT(transfer_sites);
  SPIRE_LOAD_INT(transfer_interval);
  SPIRE_LOAD_INT(transfer_dwell);
  SPIRE_LOAD_INT(transfer_transit);
  SPIRE_LOAD_INT(transfer_round_trips);
  SPIRE_LOAD_INT(transfer_cases);
  SPIRE_LOAD_INT(transfer_items);
  {
    auto r = config.GetBool("patrol_reader", out.patrol_reader);
    if (!r.ok()) return r.status();
    out.patrol_reader = r.value();
  }
  {
    auto r = config.GetInt("seed", static_cast<std::int64_t>(out.seed));
    if (!r.ok()) return r.status();
    out.seed = static_cast<std::uint64_t>(r.value());
  }
  SPIRE_RETURN_NOT_OK(out.Validate());
  return out;
}

Status SimConfig::Validate() const {
  if (duration_epochs < 1) {
    return Status::InvalidArgument("duration_epochs must be >= 1");
  }
  if (pallet_interval < 1) {
    return Status::InvalidArgument("pallet_interval must be >= 1");
  }
  if (min_cases_per_pallet < 1 || max_cases_per_pallet < min_cases_per_pallet) {
    return Status::InvalidArgument("invalid cases-per-pallet range");
  }
  if (items_per_case < 0) {
    return Status::InvalidArgument("items_per_case must be >= 0");
  }
  if (read_rate < 0.0 || read_rate > 1.0) {
    return Status::InvalidArgument("read_rate must be in [0, 1]");
  }
  if (nonshelf_ticks_per_epoch < 1) {
    return Status::InvalidArgument("nonshelf_ticks_per_epoch must be >= 1");
  }
  if (shelf_period < 1) {
    return Status::InvalidArgument("shelf_period must be >= 1");
  }
  if (num_shelves < 1) {
    return Status::InvalidArgument("num_shelves must be >= 1");
  }
  if (mean_shelf_stay < 1) {
    return Status::InvalidArgument("mean_shelf_stay must be >= 1");
  }
  if (entry_dwell < 1 || belt_dwell < 1 || packaging_dwell < 1 ||
      exit_dwell < 1) {
    return Status::InvalidArgument("stage dwell times must be >= 1");
  }
  if (transit_time < 0) {
    return Status::InvalidArgument("transit_time must be >= 0");
  }
  if (packaging_timeout < 1) {
    return Status::InvalidArgument("packaging_timeout must be >= 1");
  }
  if (patrol_dwell < 1) {
    return Status::InvalidArgument("patrol_dwell must be >= 1");
  }
  if (theft_interval < 0) {
    return Status::InvalidArgument("theft_interval must be >= 0");
  }
  // 16 real sites is far below the tag space's kEpcMaxSites; the headroom
  // keeps the reserved truck-tag site index (sim/transfer.h) collision-free.
  if (transfer_sites < 1 || transfer_sites > 16) {
    return Status::InvalidArgument("transfer_sites must be in [1, 16]");
  }
  if (transfer_sites > 1) {
    if (transfer_interval < 1) {
      return Status::InvalidArgument("transfer_interval must be >= 1");
    }
    if (transfer_dwell < 1) {
      return Status::InvalidArgument("transfer_dwell must be >= 1");
    }
    if (transfer_transit < 1) {
      return Status::InvalidArgument("transfer_transit must be >= 1");
    }
    if (transfer_round_trips < 1) {
      return Status::InvalidArgument("transfer_round_trips must be >= 1");
    }
    if (transfer_cases < 0 || transfer_items < 0) {
      return Status::InvalidArgument("transfer cargo counts must be >= 0");
    }
  }
  return Status::OK();
}

}  // namespace spire
