// Compression round trip: level-2 output, on-demand decompression, and a
// point query against the reconstructed stream.
//
// Demonstrates the Section V workflow: SPIRE emits a level-2 stream (child
// locations suppressed while containment is stable); a query processor
// front end decompresses it back to a queriable level-1 stream; a "where
// was object X at time T" query is answered from the reconstruction and
// verified against the simulator's ground truth.
//
//   ./compression_roundtrip [key=value ...]
#include <cstdio>
#include <map>

#include "common/config.h"
#include "compress/decompress.h"
#include "compress/well_formed.h"
#include "eval/event_accuracy.h"
#include "eval/size_accounting.h"
#include "sim/simulator.h"
#include "spire/pipeline.h"

using namespace spire;

namespace {

/// Answers resides(object, ?, epoch) from a folded level-1 stream.
LocationId LocationAt(const std::vector<RangedEvent>& folded, ObjectId object,
                      Epoch epoch) {
  for (const RangedEvent& event : folded) {
    if (event.type != EventType::kStartLocation || event.object != object) {
      continue;
    }
    if (event.start <= epoch && epoch < event.end) return event.location;
  }
  return kUnknownLocation;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = Config::FromArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  SimConfig sim_config;
  sim_config.duration_epochs = 2400;
  sim_config.pallet_interval = 400;
  sim_config.items_per_case = 8;
  sim_config.mean_shelf_stay = 800;
  sim_config.shelf_period = 30;
  auto overridden = SimConfig::FromConfig(args.value(), sim_config);
  if (!overridden.ok()) {
    std::fprintf(stderr, "%s\n", overridden.status().ToString().c_str());
    return 1;
  }
  sim_config = overridden.value();

  auto sim = WarehouseSimulator::Create(sim_config);
  WarehouseSimulator& s = *sim.value();
  PipelineOptions options;
  options.level = CompressionLevel::kLevel2;
  SpirePipeline pipeline(&s.registry(), options);

  // Record the true location of a probe object at a probe time, mid-trace.
  EventStream level2;
  std::map<Epoch, std::map<ObjectId, LocationId>> probes;
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &level2);
    if (s.current_epoch() % 600 == 599) {
      auto& snapshot = probes[s.current_epoch()];
      for (const auto& [id, state] : s.world().objects()) {
        snapshot[id] = state.location;
      }
    }
  }
  pipeline.Finish(s.current_epoch() + 1, &level2);
  s.FinishTruth();

  std::printf("level-2 stream: %zu events (%zu bytes vs %zu raw bytes, "
              "ratio %.4f)\n",
              level2.size(), WireBytes(level2),
              s.total_readings() * kReadingWireBytes,
              CompressionRatio(level2, s.total_readings()));

  // On-demand decompression in front of a query processor.
  EventStream level1 = Decompressor::DecompressAll(level2);
  Status well_formed = ValidateWellFormed(level1, /*allow_open_at_end=*/true);
  std::printf("decompressed:   %zu events, well-formed: %s\n", level1.size(),
              well_formed.ok() ? "yes" : well_formed.ToString().c_str());

  // Point queries: where was each object at the probe epochs?
  auto folded = FoldEvents(level1);
  std::size_t queries = 0, agree = 0, printed = 0;
  for (const auto& [epoch, snapshot] : probes) {
    for (const auto& [object, truth_location] : snapshot) {
      LocationId answer = LocationAt(folded, object, epoch);
      ++queries;
      if (answer == truth_location) ++agree;
      if (printed < 6 && EpcLevel(object) == PackagingLevel::kItem) {
        ++printed;
        std::printf("  query resides(%s, t=%lld): %s (truth: %s)\n",
                    EpcToString(object).c_str(),
                    static_cast<long long>(epoch),
                    s.registry().LocationName(answer).c_str(),
                    s.registry().LocationName(truth_location).c_str());
      }
    }
  }
  std::printf("point queries answered from the decompressed stream: "
              "%zu/%zu consistent with the ground truth (%.1f%%)\n",
              agree, queries, 100.0 * agree / (queries == 0 ? 1 : queries));
  return 0;
}
