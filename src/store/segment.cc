#include "store/segment.h"

#include <cstring>
#include <fstream>
#include <limits>
#include <type_traits>

#include "store/block.h"
#include "store/crc32.h"
#include "store/little_endian.h"

namespace spire {

namespace {

/// Bounds-checked cursor over the index sidecar's body.
class Cursor {
 public:
  explicit Cursor(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  bool Take(std::size_t size, const std::uint8_t** out) {
    if (offset_ + size > bytes_.size()) return false;
    *out = bytes_.data() + offset_;
    offset_ += size;
    return true;
  }
  bool U32(std::uint32_t* out) {
    const std::uint8_t* p = nullptr;
    if (!Take(4, &p)) return false;
    *out = GetLE32(p);
    return true;
  }
  bool U64(std::uint64_t* out) {
    const std::uint8_t* p = nullptr;
    if (!Take(8, &p)) return false;
    *out = GetLE64(p);
    return true;
  }
  bool AtEnd() const { return offset_ == bytes_.size(); }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t offset_ = 0;
};

void AppendFileHeader(const char* magic, std::uint16_t version,
                      std::vector<std::uint8_t>* out) {
  for (std::size_t i = 0; i < kMagicBytes; ++i) {
    out->push_back(static_cast<std::uint8_t>(magic[i]));
  }
  PutLE16(version, out);
  PutLE16(0, out);  // Reserved.
}

template <typename Key>
void AddPosting(Key key, std::uint32_t block_index,
                std::map<Key, std::vector<std::uint32_t>>* postings) {
  std::vector<std::uint32_t>& list = (*postings)[key];
  if (list.empty() || list.back() != block_index) {
    list.push_back(block_index);
  }
}

/// Serializes one posting map as u64 count, then per key: u64 key, u32 list
/// length, u32 block indexes (LocationId keys widen losslessly to u64).
template <typename Key>
void AppendPostings(const std::map<Key, std::vector<std::uint32_t>>& postings,
                    std::vector<std::uint8_t>* body) {
  PutLE64(postings.size(), body);
  for (const auto& [key, blocks] : postings) {
    PutLE64(static_cast<std::uint64_t>(key), body);
    PutLE32(static_cast<std::uint32_t>(blocks.size()), body);
    for (std::uint32_t index : blocks) PutLE32(index, body);
  }
}

/// Reads a segment's 8-byte file header and returns its format version.
Result<std::uint16_t> ReadSegmentVersion(std::ifstream* in,
                                         const std::string& path) {
  std::uint8_t header[kArchiveHeaderBytes] = {};
  in->read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in->good()) {
    return Status::Corruption("not a SPIRE archive (too short): " + path);
  }
  if (std::memcmp(header, kArchiveMagic, kMagicBytes) != 0) {
    return Status::Corruption("not a SPIRE archive (bad magic): " + path);
  }
  const std::uint16_t version = GetLE16(header + kMagicBytes);
  if (version != kArchiveVersion && version != kArchiveVersionV1) {
    return Status::NotSupported("unsupported SPIRE archive version " +
                                std::to_string(version) + ": " + path);
  }
  return version;
}

/// The sidecar's tail fingerprint: the last valid block header's own CRC
/// field, which digests every other header field (count, epoch bounds,
/// payload size, payload CRC). Zero when the segment has no blocks.
///
/// Deliberately NOT a CRC over the whole header: CRC-32 of a message
/// concatenated with its own CRC is the fixed residue 0x2144df1c, so that
/// "fingerprint" would be identical for every valid header and match any
/// rewritten tail.
Result<std::uint32_t> TailFingerprint(const std::string& segment_path,
                                      std::uint16_t version,
                                      const std::vector<BlockMeta>& blocks) {
  if (blocks.empty()) return std::uint32_t{0};
  std::ifstream in(segment_path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open archive segment: " + segment_path);
  }
  const std::size_t header_bytes = BlockHeaderBytes(version);
  std::uint8_t header[kBlockHeaderBytesV2] = {};
  in.seekg(static_cast<std::streamoff>(blocks.back().offset));
  in.read(reinterpret_cast<char*>(header),
          static_cast<std::streamsize>(header_bytes));
  if (!in.good()) {
    return Status::Corruption("cannot read tail block header: " +
                              segment_path);
  }
  return GetLE32(header + header_bytes - 4);
}

}  // namespace

void AddBlockPostings(const EventStream& block_events,
                      std::uint32_t block_index, SegmentInfo* info) {
  for (const Event& event : block_events) {
    AddPosting(event.object, block_index, &info->postings);
    if (IsContainmentEvent(event.type)) {
      AddPosting(event.container, block_index, &info->container_postings);
    } else {
      // Location-kind events (Start/EndLocation, Missing) post under the
      // location they name, so ObjectsAt can prune to this list.
      AddPosting(event.location, block_index, &info->location_postings);
    }
  }
}

Result<SegmentInfo> ScanSegment(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open archive segment: " + path);
  in.seekg(0, std::ios::end);
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);

  auto version = ReadSegmentVersion(&in, path);
  if (!version.ok()) return version.status();

  SegmentInfo info;
  info.version = version.value();
  info.file_bytes = file_bytes;
  info.valid_bytes = kArchiveHeaderBytes;

  const std::size_t header_bytes = BlockHeaderBytes(info.version);
  std::vector<std::uint8_t> payload;
  std::uint64_t pos = kArchiveHeaderBytes;
  while (pos + header_bytes <= file_bytes) {
    std::uint8_t block_header[kBlockHeaderBytesV2] = {};
    in.seekg(static_cast<std::streamoff>(pos));
    in.read(reinterpret_cast<char*>(block_header),
            static_cast<std::streamsize>(header_bytes));
    if (!in.good()) break;
    // Any validation failure below means the tail is torn: stop scanning.
    auto header = ParseBlockHeader(block_header, info.version);
    if (!header.ok()) break;
    if (pos + header_bytes + header.value().payload_size > file_bytes) break;
    payload.resize(header.value().payload_size);
    in.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
    if (!in.good()) break;
    if (Crc32(payload.data(), payload.size()) != header.value().payload_crc) {
      break;
    }
    EventStream decoded;
    if (!DecodeBlock(payload.data(), payload.size(), header.value().count,
                     header.value().codec, &decoded)
             .ok()) {
      break;
    }
    // The header's epoch range must be exactly the decoded events' bounds;
    // a wider (or sentinel) range would poison the range-scan skip test.
    Epoch min_epoch = kNeverEpoch;
    Epoch max_epoch = kNeverEpoch;
    for (const Event& event : decoded) {
      const Epoch primary = PrimaryEpoch(event);
      if (min_epoch == kNeverEpoch || primary < min_epoch) {
        min_epoch = primary;
      }
      if (max_epoch == kNeverEpoch || primary > max_epoch) {
        max_epoch = primary;
      }
    }
    if (min_epoch != header.value().min_epoch ||
        max_epoch != header.value().max_epoch) {
      break;
    }

    BlockMeta meta;
    meta.offset = pos;
    meta.count = header.value().count;
    meta.codec = header.value().codec;
    meta.min_epoch = min_epoch;
    meta.max_epoch = max_epoch;
    AddBlockPostings(decoded, static_cast<std::uint32_t>(info.blocks.size()),
                     &info);
    info.blocks.push_back(meta);
    info.events += meta.count;
    pos += header_bytes + header.value().payload_size;
    info.valid_bytes = pos;
  }
  return info;
}

std::string IndexPathFor(const std::string& segment_path) {
  return segment_path + ".spix";
}

Status WriteIndexFile(const std::string& segment_path,
                      const SegmentInfo& info) {
  auto tail_crc = TailFingerprint(segment_path, info.version, info.blocks);
  if (!tail_crc.ok()) return tail_crc.status();

  std::vector<std::uint8_t> body;
  PutLE64(info.valid_bytes, &body);
  PutLE64(info.blocks.size(), &body);
  PutLE16(info.version, &body);
  PutLE16(0, &body);  // Reserved.
  PutLE32(tail_crc.value(), &body);
  for (const BlockMeta& block : info.blocks) {
    PutLE64(block.offset, &body);
    PutLE32(block.count, &body);
    PutLE32(static_cast<std::uint32_t>(block.codec), &body);
    PutLE64(static_cast<std::uint64_t>(block.min_epoch), &body);
    PutLE64(static_cast<std::uint64_t>(block.max_epoch), &body);
  }
  AppendPostings(info.postings, &body);
  AppendPostings(info.location_postings, &body);
  AppendPostings(info.container_postings, &body);

  std::vector<std::uint8_t> bytes;
  bytes.reserve(kArchiveHeaderBytes + body.size() + 4);
  AppendFileHeader(kArchiveIndexMagic, kArchiveIndexVersion, &bytes);
  bytes.insert(bytes.end(), body.begin(), body.end());
  PutLE32(Crc32(body.data(), body.size()), &bytes);

  const std::string path = IndexPathFor(segment_path);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<SegmentInfo> ReadIndexFile(const std::string& segment_path,
                                  std::uint64_t segment_bytes) {
  const std::string path = IndexPathFor(segment_path);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no archive index sidecar: " + path);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (bytes.size() < kArchiveHeaderBytes + 4) {
    return Status::Corruption("archive index too short: " + path);
  }
  if (std::memcmp(bytes.data(), kArchiveIndexMagic, kMagicBytes) != 0) {
    return Status::Corruption("not a SPIRE archive index (bad magic): " +
                              path);
  }
  if (GetLE16(bytes.data() + kMagicBytes) != kArchiveIndexVersion) {
    // Older (or newer) sidecars are rebuildable caches, not data: callers
    // rebuild by scanning and Close() rewrites the current version.
    return Status::NotSupported("unsupported archive index version: " + path);
  }
  const std::vector<std::uint8_t> body(bytes.begin() + kArchiveHeaderBytes,
                                       bytes.end() - 4);
  if (Crc32(body.data(), body.size()) != GetLE32(&bytes[bytes.size() - 4])) {
    return Status::Corruption("archive index checksum mismatch: " + path);
  }

  Cursor cursor(body);
  SegmentInfo info;
  std::uint64_t block_count = 0;
  std::uint32_t segment_version = 0;
  std::uint32_t tail_crc = 0;
  if (!cursor.U64(&info.valid_bytes) || !cursor.U64(&block_count) ||
      !cursor.U32(&segment_version) || !cursor.U32(&tail_crc)) {
    return Status::Corruption("archive index directory truncated: " + path);
  }
  const std::uint16_t version =
      static_cast<std::uint16_t>(segment_version & 0xffff);
  if (version != kArchiveVersion && version != kArchiveVersionV1) {
    return Status::Corruption("archive index names an unknown segment "
                              "version: " + path);
  }
  info.version = version;
  if (info.valid_bytes != segment_bytes) {
    // Covers both directions: a segment that grew past the sidecar (append
    // without Close) and one that shrank below it (post-crash logical
    // truncation) — either way the directory describes a different prefix.
    return Status::Corruption("archive index is stale (covers " +
                              std::to_string(info.valid_bytes) + " of " +
                              std::to_string(segment_bytes) + " bytes): " +
                              path);
  }
  const std::size_t header_bytes = BlockHeaderBytes(info.version);
  std::uint64_t min_next_offset = kArchiveHeaderBytes;
  for (std::uint64_t i = 0; i < block_count; ++i) {
    BlockMeta block;
    std::uint32_t codec = 0;
    std::uint64_t min_epoch = 0;
    std::uint64_t max_epoch = 0;
    if (!cursor.U64(&block.offset) || !cursor.U32(&block.count) ||
        !cursor.U32(&codec) || !cursor.U64(&min_epoch) ||
        !cursor.U64(&max_epoch)) {
      return Status::Corruption("archive index directory truncated: " + path);
    }
    block.codec = static_cast<BlockCodec>(codec);
    block.min_epoch = static_cast<Epoch>(min_epoch);
    block.max_epoch = static_cast<Epoch>(max_epoch);
    // The same invariants ParseBlockHeader enforces on the segment side: a
    // directory with empty, codec-unknown, sentinel-epoch, or out-of-place
    // blocks must not steer scans. The sidecar carries no payload sizes,
    // so exact block contiguity is rechecked against the real header at
    // decode time; here offsets must be in-bounds and strictly advancing
    // past each predecessor's header.
    if (block.count == 0 || codec > 0xff ||
        !KnownBlockCodec(static_cast<std::uint8_t>(codec)) ||
        block.min_epoch < 0 || block.max_epoch < block.min_epoch ||
        block.offset < min_next_offset ||
        block.offset + header_bytes > segment_bytes) {
      return Status::Corruption("archive index directory entry invalid: " +
                                path);
    }
    min_next_offset = block.offset + header_bytes;
    info.blocks.push_back(block);
    info.events += block.count;
  }
  // The three posting sections share one layout; LocationId keys must fit
  // their 16-bit type when narrowed back from the u64 on disk.
  auto parse_postings = [&](auto* postings) -> Status {
    using Key = typename std::decay_t<decltype(*postings)>::key_type;
    std::uint64_t num_keys = 0;
    if (!cursor.U64(&num_keys)) {
      return Status::Corruption("archive index postings truncated: " + path);
    }
    for (std::uint64_t i = 0; i < num_keys; ++i) {
      std::uint64_t key = 0;
      std::uint32_t posting_count = 0;
      if (!cursor.U64(&key) || !cursor.U32(&posting_count)) {
        return Status::Corruption("archive index postings truncated: " + path);
      }
      if (key > std::numeric_limits<Key>::max()) {
        return Status::Corruption("archive index posting key out of range: " +
                                  path);
      }
      std::vector<std::uint32_t>& list = (*postings)[static_cast<Key>(key)];
      list.reserve(posting_count);
      for (std::uint32_t j = 0; j < posting_count; ++j) {
        std::uint32_t index = 0;
        if (!cursor.U32(&index)) {
          return Status::Corruption("archive index postings truncated: " +
                                    path);
        }
        if (index >= info.blocks.size()) {
          return Status::Corruption("archive index posting out of range: " +
                                    path);
        }
        list.push_back(index);
      }
    }
    return Status::OK();
  };
  SPIRE_RETURN_NOT_OK(parse_postings(&info.postings));
  SPIRE_RETURN_NOT_OK(parse_postings(&info.location_postings));
  SPIRE_RETURN_NOT_OK(parse_postings(&info.container_postings));
  if (!cursor.AtEnd()) {
    return Status::Corruption("trailing bytes in archive index: " + path);
  }

  // The covered-bytes equality above cannot tell a segment apart from a
  // different one of the same size (truncated and re-appended); the tail
  // fingerprint can.
  auto fingerprint = TailFingerprint(segment_path, info.version, info.blocks);
  if (!fingerprint.ok()) return fingerprint.status();
  if (fingerprint.value() != tail_crc) {
    return Status::Corruption("archive index tail fingerprint mismatch "
                              "(segment rewritten since indexing): " + path);
  }
  info.file_bytes = segment_bytes;
  return info;
}

}  // namespace spire
