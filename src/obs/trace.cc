#include "obs/trace.h"

#include <fstream>
#include <sstream>

namespace spire::obs {

namespace {

/// Small dense per-thread id: Perfetto tracks sort and label nicely.
int ThisThreadId() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void AppendEvent(std::ostream& out, const TraceEvent& event) {
  out << "{\"name\":\"" << event.name << "\",\"cat\":\"" << event.category
      << "\",\"ph\":\"X\",\"ts\":" << event.ts_us << ",\"dur\":" << event.dur_us
      << ",\"pid\":1,\"tid\":" << event.tid;
  if (event.epoch >= 0) {
    out << ",\"args\":{\"epoch\":" << event.epoch << "}";
  }
  out << "}";
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* instance = new Tracer();  // Never destroyed (see Registry).
  return *instance;
}

Status Tracer::Start(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("tracer: session already active");
  }
  events_.clear();
  path_ = path;
  origin_ = std::chrono::steady_clock::now();
  active_.store(true, std::memory_order_release);
  return Status::OK();
}

Status Tracer::Stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_.load(std::memory_order_acquire)) return Status::OK();
  active_.store(false, std::memory_order_release);
  std::ofstream out(path_);
  if (!out) {
    events_.clear();
    return Status::NotFound("cannot open for writing: " + path_);
  }
  out << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) out << ",\n";
    AppendEvent(out, events_[i]);
  }
  out << "]}\n";
  events_.clear();
  if (!out.good()) return Status::Internal("write failed: " + path_);
  return Status::OK();
}

void Tracer::Record(const char* category, const char* name,
                    std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end,
                    std::int64_t epoch) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.tid = ThisThreadId();
  event.epoch = epoch;
  std::lock_guard<std::mutex> lock(mutex_);
  // The session may have stopped between the span's start and end; spans
  // racing a Stop() are dropped rather than written into the next session.
  if (!active_.load(std::memory_order_acquire)) return;
  // A span armed under a previous session can outlive it into this one;
  // clamp so the timestamp math never underflows.
  if (start < origin_) start = origin_;
  if (end < start) end = start;
  event.ts_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(start - origin_)
          .count());
  event.dur_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count());
  events_.push_back(event);
}

std::string Tracer::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) out << ",\n";
    AppendEvent(out, events_[i]);
  }
  out << "]}";
  return out.str();
}

std::size_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

}  // namespace spire::obs
