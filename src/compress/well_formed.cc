#include "compress/well_formed.h"

#include <string>
#include <unordered_map>

#include "common/epc.h"

namespace spire {

namespace {

struct OpenState {
  bool location_open = false;
  LocationId location = kUnknownLocation;
  Epoch location_start = kNeverEpoch;
  bool containment_open = false;
  ObjectId container = kNoObject;
  Epoch containment_start = kNeverEpoch;
};

Status Violation(const Event& event, const std::string& why) {
  return Status::Corruption(why + ": " + event.ToString());
}

}  // namespace

Status ValidateWellFormed(const EventStream& stream, bool allow_open_at_end) {
  std::unordered_map<ObjectId, OpenState> open;
  for (const Event& event : stream) {
    OpenState& state = open[event.object];
    switch (event.type) {
      case EventType::kStartLocation:
        if (state.location_open) {
          return Violation(event, "nested StartLocation");
        }
        if (event.location == kUnknownLocation) {
          return Violation(event, "StartLocation at the unknown location");
        }
        if (event.end != kInfiniteEpoch) {
          return Violation(event, "StartLocation must leave V_e open");
        }
        state.location_open = true;
        state.location = event.location;
        state.location_start = event.start;
        break;
      case EventType::kEndLocation:
        if (!state.location_open) {
          return Violation(event, "EndLocation without matching start");
        }
        if (event.location != state.location) {
          return Violation(event, "EndLocation location mismatch");
        }
        if (event.start != state.location_start) {
          return Violation(event, "EndLocation V_s mismatch");
        }
        if (event.end < event.start) {
          return Violation(event, "EndLocation with V_e < V_s");
        }
        state.location_open = false;
        break;
      case EventType::kStartContainment:
        if (state.containment_open) {
          return Violation(event, "nested StartContainment");
        }
        if (event.container == kNoObject) {
          return Violation(event, "StartContainment without container");
        }
        if (event.end != kInfiniteEpoch) {
          return Violation(event, "StartContainment must leave V_e open");
        }
        state.containment_open = true;
        state.container = event.container;
        state.containment_start = event.start;
        break;
      case EventType::kEndContainment:
        if (!state.containment_open) {
          return Violation(event, "EndContainment without matching start");
        }
        if (event.container != state.container) {
          return Violation(event, "EndContainment container mismatch");
        }
        if (event.start != state.containment_start) {
          return Violation(event, "EndContainment V_s mismatch");
        }
        if (event.end < event.start) {
          return Violation(event, "EndContainment with V_e < V_s");
        }
        state.containment_open = false;
        break;
      case EventType::kMissing:
        if (state.location_open) {
          return Violation(event, "Missing inside a start-end location pair");
        }
        if (event.end != event.start) {
          return Violation(event, "Missing must have V_e == V_s");
        }
        break;
    }
  }
  if (!allow_open_at_end) {
    for (const auto& [object, state] : open) {
      if (state.location_open) {
        return Status::Corruption("stream ends with open location event for " +
                                  EpcToString(object));
      }
      if (state.containment_open) {
        return Status::Corruption(
            "stream ends with open containment event for " +
            EpcToString(object));
      }
    }
  }
  return Status::OK();
}

}  // namespace spire
