#include "compress/compressor.h"

#include <algorithm>
#include <vector>

#include "obs/registry.h"

namespace spire {

namespace {

struct Instruments {
  obs::Counter* reports;
  obs::Counter* retires;
  obs::Counter* suppressed_locations;
};

const Instruments* GetInstruments() {
  if (!obs::Enabled()) return nullptr;
  auto& registry = obs::Registry::Global();
  static const Instruments instruments{
      registry.GetCounter("compress", "reports"),
      registry.GetCounter("compress", "retires"),
      registry.GetCounter("compress", "suppressed_locations"),
  };
  return &instruments;
}

}  // namespace

Compressor::Compressor(CompressorOptions options) : options_(options) {}

void Compressor::Report(const ObjectStateEstimate& state, Epoch epoch,
                        EventStream* out) {
  if (const Instruments* instruments = GetInstruments()) {
    instruments->reports->Add(1);
  }
  Tracked& tracked = tracked_[state.object];
  const LocationId before = EffectiveLocation(tracked);
  EmitContainmentChange(tracked, state, epoch, out);
  EmitLocationChange(tracked, state, epoch, out);
  // The emitted stream must keep a contained object's stay in lockstep with
  // its container's: the decompressor copies a container's location events
  // down to its transitive contents, so level 1 has to show the same moves
  // explicitly even when inference never re-estimated the children this
  // epoch. Triggered by a transition of this object's *effective* location —
  // explicit or derived — exactly the transitions that propagate on the
  // decompression side (an explicit move, or a derived stay rebuilt under a
  // new root after a containment change).
  const LocationId after = EffectiveLocation(tracked);
  if (after != before) {
    // One exception: a Missing message does not propagate on the
    // decompression side — it closes only the missing object's own stay.
    // The children's fate arrives with their own reports.
    if (after != kUnknownLocation || !tracked.missing_reported) {
      PropagateLocation(state.object, after, epoch, out);
    }
  }
}

void Compressor::PropagateLocation(ObjectId parent, LocationId location,
                                   Epoch epoch, EventStream* out) {
  auto it = children_.find(parent);
  if (it == children_.end()) return;
  // std::set keeps the children in ascending id order -> deterministic output.
  for (ObjectId child : it->second) {
    auto tracked_it = tracked_.find(child);
    if (tracked_it == tracked_.end()) continue;
    Tracked& child_tracked = tracked_it->second;
    // A child inferred missing stays missing until it is sighted again; the
    // decompressor skips missing-marked children the same way.
    if (child_tracked.missing_reported) continue;
    if (SuppressContainedLocation(child_tracked)) {
      if (location == kUnknownLocation) {
        // A container departing with no destination only takes *derived*
        // stays with it (the decompressor's End propagation skips explicit
        // ones); an explicitly tracked child keeps its stay until its own
        // report settles it, so no close is emitted here either way.
        if (child_tracked.open_location == kUnknownLocation &&
            child_tracked.derived_open) {
          child_tracked.derived_open = false;
          child_tracked.location_start = kNeverEpoch;
        }
        PropagateLocation(child, location, epoch, out);
        continue;
      }
      // The decompressor rebuilds the stay of a previously located
      // suppressed child under the moved root (or re-derives one it had
      // closed); mirror that belief so the child's own agreeing reports
      // stay silent.
      if (child_tracked.open_location == kUnknownLocation &&
          child_tracked.last_known_location != kUnknownLocation) {
        if (!child_tracked.derived_open ||
            location != child_tracked.last_known_location) {
          child_tracked.location_start = epoch;
        }
        child_tracked.derived_open = true;
      }
    }
    ObjectStateEstimate follow;
    follow.object = child;
    follow.location = location;
    follow.container = child_tracked.open_container;
    follow.missing = false;
    EmitLocationChange(child_tracked, follow, epoch, out);
    PropagateLocation(child, location, epoch, out);
  }
}

void Compressor::EmitContainmentChange(Tracked& tracked,
                                       const ObjectStateEstimate& state,
                                       Epoch epoch, EventStream* out) {
  if (state.container == tracked.open_container) return;
  const bool had_derived = tracked.derived_open;
  const Epoch derived_start = tracked.location_start;
  CloseContainment(state.object, tracked, epoch, out);
  // Ending a containment ends the derived stay it carried (the decompressor
  // closes it together with the EndContainment message). Whether derivation
  // resumes under a new chain depends on the new container below.
  if (had_derived) tracked.derived_open = false;
  if (state.container != kNoObject) {
    if (options_.emit_containment) {
      out->push_back(Event::StartContainment(state.object, state.container,
                                             epoch));
    }
    tracked.open_container = state.container;
    tracked.containment_start = epoch;
    children_[state.container].insert(state.object);
    // Level 2: entering containment closes the explicit stay exactly once;
    // from here on the container's events imply this object's location. Only
    // sound when decompression would derive the very same location — the
    // root of the containment chain has an open stay at the object's
    // reported location. Otherwise the stay stays explicit (suppression
    // would lose, not defer, the information).
    if (SuppressContainedLocation(tracked) &&
        state.location != kUnknownLocation &&
        DerivedRootLocation(tracked) == state.location &&
        tracked.open_location != kUnknownLocation) {
      const Epoch stay_start = tracked.location_start;
      CloseLocation(state.object, tracked, epoch, out);
      tracked.derived_open = true;
      // The derived stay keeps the interval: the decompressor re-derives it
      // at this epoch and duplicate suppression splices the start back.
      tracked.location_start = stay_start;
      suppress_closed_.push_back(state.object);
    } else if (had_derived && SuppressContainedLocation(tracked) &&
               tracked.open_location == kUnknownLocation &&
               !tracked.missing_reported &&
               !(state.location == kUnknownLocation && state.missing)) {
      // (A vanishing report is excluded: the Missing singleton emitted right
      // after must carry the stay's own last location, and the decompressor
      // never re-derives a missing object under the new chain.)
      // A derived stay moving between containers: the decompressor closes
      // it with the old containment and re-derives it under the new chain
      // root, so derivation can continue without an explicit resume. Like a
      // suppress-close this is a bet on the root's end-of-epoch stay;
      // CancelEpochChurn re-checks it.
      const LocationId root = DerivedRootLocation(tracked);
      if (root != kUnknownLocation) {
        tracked.derived_open = true;
        if (root == tracked.last_known_location) {
          tracked.location_start = derived_start;  // Interval splices through.
        } else {
          tracked.location_start = epoch;
          tracked.last_known_location = root;
        }
      } else {
        // Root not (yet) located: leave the belief pending; the repair pass
        // either confirms a late-arriving root stay or resumes explicitly.
        tracked.location_start = derived_start;
      }
      suppress_closed_.push_back(state.object);
    }
  }
}

LocationId Compressor::EffectiveLocation(const Tracked& tracked) const {
  if (tracked.open_location != kUnknownLocation) return tracked.open_location;
  if (tracked.missing_reported) return kUnknownLocation;
  // Without a derived stay there is nothing to show: the decompressor gives
  // a derived stay only to objects it has seen a location for (first
  // sightings are always explicit).
  if (!tracked.derived_open) return kUnknownLocation;
  if (SuppressContainedLocation(tracked)) return DerivedRootLocation(tracked);
  return kUnknownLocation;
}

LocationId Compressor::DerivedRootLocation(const Tracked& tracked) const {
  ObjectId parent = tracked.open_container;
  while (parent != kNoObject) {
    auto it = tracked_.find(parent);
    if (it == tracked_.end()) return kUnknownLocation;
    if (it->second.open_container == kNoObject) {
      return it->second.open_location;
    }
    parent = it->second.open_container;
  }
  return kUnknownLocation;
}

void Compressor::EmitLocationChange(Tracked& tracked,
                                    const ObjectStateEstimate& state,
                                    Epoch epoch, EventStream* out) {
  if (SuppressContainedLocation(tracked) &&
      DerivedRootLocation(tracked) != kUnknownLocation) {
    if (state.location != kUnknownLocation) {
      if (tracked.missing_reported ||
          tracked.open_location != kUnknownLocation ||
          !tracked.derived_open ||
          state.location != DerivedRootLocation(tracked)) {
        // Explicit tracking inside an intact containment, for four causes:
        // a reappearance after Missing (the singleton interrupted the
        // derived location), an already-explicit stay, the absence of a
        // derived stay to lean on (first sightings are always explicit — a
        // bare containment edge cannot tell a suppressed location from an
        // object that never had one), or a location that disagrees with
        // what decompression would derive from the chain's root. The stay
        // keeps emitting explicitly until the end-of-epoch handover returns
        // it to derivation or the object vanishes again.
        tracked.missing_reported = false;
        if (state.location != tracked.open_location) {
          CloseLocation(state.object, tracked, epoch, out);
          if (options_.emit_location) {
            out->push_back(
                Event::StartLocation(state.object, state.location, epoch));
          }
          tracked.open_location = state.location;
          tracked.location_start = epoch;
          tracked.derived_open = false;
        }
      } else {
        // The report agrees with the derived chain-root location: level-2
        // suppression proper — nothing reaches the stream.
        if (const Instruments* instruments = GetInstruments()) {
          instruments->suppressed_locations->Add(1);
        }
        if (observer_ != nullptr) {
          observer_->OnLocationSuppressed(state.object, epoch,
                                          tracked.open_container);
        }
      }
      tracked.last_known_location = state.location;
      return;
    }
    if (state.missing) {
      // A contained object can still be reported missing; the containment
      // pair encloses the Missing singleton (Section V-A).
      CloseLocation(state.object, tracked, epoch, out);
      EmitMissing(state.object, tracked, epoch, out);
    } else {
      CloseLocation(state.object, tracked, epoch, out);
    }
    return;
  }

  if (state.location != kUnknownLocation) {
    tracked.missing_reported = false;
    if (state.location == tracked.open_location) return;
    CloseLocation(state.object, tracked, epoch, out);
    if (options_.emit_location) {
      out->push_back(Event::StartLocation(state.object, state.location, epoch));
    }
    tracked.open_location = state.location;
    tracked.location_start = epoch;
    tracked.last_known_location = state.location;
    tracked.derived_open = false;
    return;
  }

  // The object is away from every known location: close the open stay and,
  // for an anomaly, flag it with a Missing singleton.
  CloseLocation(state.object, tracked, epoch, out);
  if (state.missing) EmitMissing(state.object, tracked, epoch, out);
}

void Compressor::EmitMissing(ObjectId object, Tracked& tracked, Epoch epoch,
                             EventStream* out) {
  if (tracked.missing_reported) return;
  // An object that was never located has no location to be missing *from*;
  // the Missing singleton is withheld until a first sighting gives it one.
  if (tracked.last_known_location == kUnknownLocation) return;
  if (options_.emit_location) {
    out->push_back(
        Event::Missing(object, tracked.last_known_location, epoch));
  }
  tracked.missing_reported = true;
  // The Missing singleton closes any derived stay on the decompression side.
  tracked.derived_open = false;
  tracked.location_start = kNeverEpoch;
}

void Compressor::CloseLocation(ObjectId object, Tracked& tracked, Epoch epoch,
                               EventStream* out) {
  if (tracked.open_location == kUnknownLocation) return;
  if (options_.emit_location) {
    out->push_back(Event::EndLocation(object, tracked.open_location,
                                      tracked.location_start, epoch));
  }
  tracked.open_location = kUnknownLocation;
  tracked.location_start = kNeverEpoch;
}

void Compressor::CloseContainment(ObjectId object, Tracked& tracked,
                                  Epoch epoch, EventStream* out) {
  if (tracked.open_container == kNoObject) return;
  if (options_.emit_containment) {
    out->push_back(Event::EndContainment(object, tracked.open_container,
                                         tracked.containment_start, epoch));
  }
  auto it = children_.find(tracked.open_container);
  if (it != children_.end()) {
    it->second.erase(object);
    if (it->second.empty()) children_.erase(it);
  }
  tracked.open_container = kNoObject;
  tracked.containment_start = kNeverEpoch;
}

void Compressor::Retire(ObjectId object, Epoch epoch, EventStream* out) {
  auto it = tracked_.find(object);
  if (it == tracked_.end()) return;
  if (const Instruments* instruments = GetInstruments()) {
    instruments->retires->Add(1);
  }
  ReleaseChildren(object, epoch, out);
  CloseContainment(object, it->second, epoch, out);
  CloseLocation(object, it->second, epoch, out);
  tracked_.erase(it);
}

void Compressor::ReleaseChildren(ObjectId object, Epoch epoch,
                                 EventStream* out) {
  auto children_it = children_.find(object);
  if (children_it == children_.end()) return;
  // Closing a child's containment mutates children_[object]; snapshot first.
  // The std::set gives ascending id order, so the output is deterministic.
  std::vector<ObjectId> kids(children_it->second.begin(),
                             children_it->second.end());
  for (ObjectId child : kids) {
    auto tracked_it = tracked_.find(child);
    if (tracked_it == tracked_.end()) continue;
    Tracked& child_tracked = tracked_it->second;
    const bool was_suppressed = SuppressContainedLocation(child_tracked);
    CloseContainment(child, child_tracked, epoch, out);
    // A suppressed child's stay was derived from this container; once the
    // container retires, nothing carries it any more, so the stay resumes
    // explicitly at its last derived location. Missing children stay missing.
    if (was_suppressed && child_tracked.open_location == kUnknownLocation &&
        !child_tracked.missing_reported && child_tracked.derived_open) {
      if (options_.emit_location) {
        out->push_back(Event::StartLocation(
            child, child_tracked.last_known_location, epoch));
      }
      child_tracked.open_location = child_tracked.last_known_location;
      child_tracked.location_start = epoch;
      child_tracked.derived_open = false;
    }
  }
}

void Compressor::CancelEpochChurn(Epoch epoch, EventStream* out,
                                  std::size_t first) {
  // A suppress-close at containment entry bet that the decompressor could
  // re-derive the stay from the chain root. If the root's own stay closed
  // later in the same epoch, nothing on the decompression side rebuilds the
  // child's stay — so it must not have closed: resume it explicitly; the
  // churn pass below then splices the End/Start pair back together.
  for (ObjectId object : suppress_closed_) {
    auto it = tracked_.find(object);
    if (it == tracked_.end()) continue;  // Retired later this epoch.
    Tracked& tracked = it->second;
    if (tracked.open_location != kUnknownLocation) continue;
    if (tracked.missing_reported) continue;
    if (tracked.last_known_location == kUnknownLocation) continue;
    if (SuppressContainedLocation(tracked) &&
        DerivedRootLocation(tracked) == tracked.last_known_location) {
      tracked.derived_open = true;  // The bet held; derivation carries on.
      continue;
    }
    if (options_.emit_location) {
      out->push_back(
          Event::StartLocation(object, tracked.last_known_location, epoch));
    }
    tracked.open_location = tracked.last_known_location;
    tracked.location_start = epoch;
    tracked.derived_open = false;
  }
  suppress_closed_.clear();
  for (const ChurnSplice& splice : CancelLocationChurn(out, first)) {
    // The stay never ended; its bookkeeping must regain the original start
    // so a future close emits the spliced interval.
    auto it = tracked_.find(splice.object);
    if (it != tracked_.end() && it->second.open_location == splice.location) {
      it->second.location_start = splice.start;
    }
  }
  // End-of-epoch handover (Section V-C): an explicit stay whose location
  // provably equals what decompression derives from its chain root carries
  // no information any more — close it and let derivation take over. The
  // matching End makes the decompressor re-derive the stay in place, and
  // its duplicate suppression splices the interval back together, so this
  // object's later location updates can be suppressed entirely. Emitted
  // after the churn pass on purpose: the close must survive into the
  // stream even when the stay opened this same epoch.
  std::vector<ObjectId> handover;
  for (const auto& [object, tracked] : tracked_) {
    if (tracked.open_location == kUnknownLocation) continue;
    if (!SuppressContainedLocation(tracked)) continue;
    if (DerivedRootLocation(tracked) != tracked.open_location) continue;
    handover.push_back(object);
  }
  std::sort(handover.begin(), handover.end());
  for (ObjectId object : handover) {
    Tracked& tracked = tracked_.at(object);
    const LocationId location = tracked.open_location;
    const Epoch start = tracked.location_start;
    CloseLocation(object, tracked, epoch, out);
    tracked.last_known_location = location;
    tracked.derived_open = true;
    tracked.location_start = start;  // The derived stay keeps the interval.
  }
}

void Compressor::Finish(Epoch epoch, EventStream* out) {
  std::vector<ObjectId> objects;
  objects.reserve(tracked_.size());
  for (const auto& [id, tracked] : tracked_) objects.push_back(id);
  std::sort(objects.begin(), objects.end());
  for (ObjectId id : objects) Retire(id, epoch, out);
}

}  // namespace spire
