// Expt 1 (Fig. 9(a) + the S / alpha discussion): containment inference
// error versus beta, for several shelf-reader frequencies, plus the
// adaptive-beta heuristic; side tables sweep the history size S and the
// Zipf exponent alpha.
//
//   ./expt1_containment_beta [full=true] [key=value ...]
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "eval/table.h"

using namespace spire;
using namespace spire::bench;

namespace {

double ContainmentError(const SimConfig& sim, double beta, bool adaptive,
                        int history, double alpha) {
  RunOptions options;
  options.sim = sim;
  options.pipeline.inference.beta = beta;
  options.pipeline.inference.adaptive_beta = adaptive;
  options.pipeline.inference.alpha = alpha;
  options.pipeline.history_size = history;
  return RunSpireTrace(options).accuracy.ContainmentErrorRate();
}

}  // namespace

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  bool full = args.GetBool("full", false).value_or(false);
  SimConfig base = SweepConfig(full);
  auto overridden = SimConfig::FromConfig(args, base);
  if (overridden.ok()) base = overridden.value();

  PrintHeader("Expt 1: containment inference vs beta",
              "Fig. 9(a); text on S and alpha (Section VI-B)");

  const std::vector<Epoch> shelf_periods{1, 10, 30, 60};
  const std::vector<double> betas{0.0, 0.1, 0.2, 0.4,  0.6,
                                  0.7, 0.85, 0.95, 1.0};

  TextTable beta_table([&] {
    std::vector<std::string> header{"beta"};
    for (Epoch period : shelf_periods) {
      header.push_back("shelf 1/" + std::to_string(period) + "s");
    }
    return header;
  }());
  for (double beta : betas) {
    std::vector<std::string> row{TextTable::Num(beta, 2)};
    for (Epoch period : shelf_periods) {
      SimConfig sim = base;
      sim.shelf_period = period;
      row.push_back(
          TextTable::Num(ContainmentError(sim, beta, false, 32, 0.0), 4));
    }
    beta_table.AddRow(row);
  }
  {
    std::vector<std::string> row{"adaptive"};
    for (Epoch period : shelf_periods) {
      SimConfig sim = base;
      sim.shelf_period = period;
      row.push_back(
          TextTable::Num(ContainmentError(sim, 0.4, true, 32, 0.0), 4));
    }
    beta_table.AddRow(row);
  }
  std::printf("containment error rate vs beta:\n");
  beta_table.Print();

  // S and alpha only matter when the recent history carries the decision,
  // so these sensitivity tables run in pure-history mode (beta = 1) under a
  // noisier workload. Expected shape (Section VI-B text): small S caps
  // accuracy, no benefit beyond 32; alpha = 0 is best.
  SimConfig noisy = base;
  noisy.read_rate = 0.7;
  noisy.shelf_period = 10;

  std::printf("\ncontainment error rate vs history size S "
              "(beta=1, read rate 0.7, shelf 1/10s):\n");
  TextTable s_table({"S", "error"});
  for (int history : {4, 8, 16, 32, 64}) {
    s_table.AddRow({std::to_string(history),
                    TextTable::Num(
                        ContainmentError(noisy, 1.0, false, history, 0.0), 4)});
  }
  s_table.Print();

  std::printf("\ncontainment error rate vs alpha "
              "(S=32, beta=1, read rate 0.7, shelf 1/10s):\n");
  TextTable alpha_table({"alpha", "error"});
  for (double alpha : {0.0, 0.5, 1.0, 2.0}) {
    alpha_table.AddRow({TextTable::Num(alpha, 1),
                        TextTable::Num(
                            ContainmentError(noisy, 1.0, false, 32, alpha),
                            4)});
  }
  alpha_table.Print();
  return 0;
}
