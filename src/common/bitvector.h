// A fixed-capacity shift-register bit vector.
//
// Each graph edge keeps a `recent_co-locations` history (Section III-A):
// every time the edge's statistics are updated, the history is right-shifted
// and the newest observation is recorded at index 0. Index i therefore holds
// the i-th most recent observation. The register also tracks how many
// observations have been pushed so far so that weight normalization
// (inference Eq. 1) can be restricted to bits that actually carry history.
#pragma once

#include <cassert>
#include <cstdint>

namespace spire {

/// Shift-register of up to 64 boolean observations, newest at index 0.
class ShiftRegister {
 public:
  static constexpr int kMaxCapacity = 64;

  /// Creates a register holding `capacity` most-recent observations.
  explicit ShiftRegister(int capacity = 32) : capacity_(capacity) {
    assert(capacity >= 1 && capacity <= kMaxCapacity);
  }

  /// Pushes the newest observation; the oldest one falls off the end.
  void Push(bool value) {
    bits_ <<= 1;
    bits_ |= value ? 1u : 0u;
    if (count_ < capacity_) ++count_;
  }

  /// Overwrites the newest observation (index 0) without shifting. Used when
  /// several readers contribute evidence for the same edge within one epoch:
  /// the slot for the current epoch was already pushed and is amended.
  void SetNewest(bool value) {
    assert(count_ > 0);
    if (value) {
      bits_ |= 1u;
    } else {
      bits_ &= ~std::uint64_t{1};
    }
  }

  /// The i-th most recent observation; i must be < size().
  bool Get(int i) const {
    assert(i >= 0 && i < count_);
    return (bits_ >> i) & 1u;
  }

  /// Number of observations currently held (<= capacity).
  int size() const { return count_; }

  /// Maximum number of observations held.
  int capacity() const { return capacity_; }

  bool empty() const { return count_ == 0; }

  /// Number of `true` observations currently held.
  int PopCount() const { return __builtin_popcountll(Window()); }

  /// Reinstates a history captured from another register (dist handoff):
  /// `window` must be the source's Window() and `count` its size(). Bits
  /// past `count` are cleared, so a restored register is indistinguishable
  /// from the source to every reader (Get/PopCount/Window).
  void Restore(std::uint64_t window, int count) {
    assert(count >= 0 && count <= capacity_);
    count_ = count;
    const std::uint64_t mask =
        count >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << count) - 1);
    bits_ = window & mask;
  }

  /// Drops all history.
  void Clear() {
    bits_ = 0;
    count_ = 0;
  }

  /// Raw bits, newest in the least-significant position (testing hook).
  std::uint64_t raw() const { return bits_; }

  /// The visible window: raw bits masked to the observations actually held.
  /// Two registers with equal Window() and size() are indistinguishable to
  /// every reader (Get/PopCount), even when their raw() differ in bits that
  /// already shifted past the capacity.
  std::uint64_t Window() const {
    const std::uint64_t mask =
        count_ >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << count_) - 1);
    return bits_ & mask;
  }

 private:
  std::uint64_t bits_ = 0;
  int count_ = 0;
  int capacity_;
};

}  // namespace spire
