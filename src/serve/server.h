// SpireServer: the concurrent multi-site serving facade.
//
//   Workload (sites) ──► ShardRouter ──► N PipelineShards ──► EventMerger
//                         (feeder         (worker threads,      (caller
//                          thread)         bounded queues)       thread)
//
// Run() drives one workload to completion: the router streams epochs into
// the shard input queues from a feeder thread, each shard runs its sites'
// pipelines, and the merger assembles the globally ordered output stream
// on the calling thread, optionally mirroring into an archive sink. All
// queues are bounded, so memory stays O(shards * queue_capacity) and a
// slow stage throttles the whole chain instead of buffering it.
//
// The output is deterministic: byte-identical for any shard count, and
// byte-identical to RunServeReference — the serial single-threaded
// execution of the same workload (DESIGN.md §8).
#pragma once

#include <string>

#include "common/status.h"
#include "compress/event.h"
#include "serve/metrics.h"
#include "serve/router.h"
#include "serve/workload.h"
#include "spire/pipeline.h"

namespace spire {
class ArchiveWriter;
}  // namespace spire

namespace spire::serve {

/// Serving-layer configuration.
struct ServeOptions {
  /// Worker shard count; sites are assigned site mod num_shards.
  int num_shards = 1;
  /// Capacity of each shard's input and output queue, in epoch units —
  /// bounds how far ingest may run ahead of the slowest shard.
  std::size_t queue_capacity = 64;
  /// Pipeline configuration shared by every site.
  PipelineOptions pipeline;
};

/// Outcome of one Run().
struct ServeResult {
  /// The merged, globally ordered output stream.
  EventStream events;
  /// First failure (merge protocol or archive sink); OK on success.
  Status status;
  Epoch epochs_processed = 0;
  double wall_seconds = 0.0;
};

class SpireServer {
 public:
  /// `workload` must be normalized (NormalizeWorkload) and outlive the
  /// server.
  SpireServer(const Workload* workload, ServeOptions options);

  /// Processes the whole workload; blocking. `archive` (optional, caller-
  /// owned, caller still Close()s it) receives the merged stream.
  ServeResult Run(ArchiveWriter* archive = nullptr);

  /// Stops ingest at the next epoch boundary; in-flight epochs complete
  /// and every pipeline flushes its open events before Run() returns.
  /// Callable from any thread.
  void RequestStop() { router_.RequestStop(); }

  const Metrics& metrics() const { return metrics_; }

  /// The metrics registry rendered as JSON (`wall_seconds` from the last
  /// Run, 0 before).
  std::string MetricsJson() const;

 private:
  const Workload* workload_;
  ServeOptions options_;
  Metrics metrics_;
  ShardRouter router_;
  double wall_seconds_ = 0.0;
};

/// The serial reference: runs every site's pipeline on the calling thread
/// over the same global epoch axis and merges identically — the stream
/// `serve` must reproduce byte-for-byte at any shard count. For a one-site
/// workload this is exactly the plain single-pipeline run.
EventStream RunServeReference(const Workload& workload,
                              const PipelineOptions& options);

}  // namespace spire::serve
