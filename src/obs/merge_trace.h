// Fleet trace merging: stitches the per-process Perfetto trace files of a
// distributed run (coordinator + one per node, each written by Tracer with
// a "spire" clock metadata block) into one Chrome trace_event JSON
// document on a single fleet-aligned timeline (DESIGN.md §9).
//
// Each input file's events carry timestamps relative to that process's
// session origin; the "spire" block supplies the origin (steady-clock
// microseconds) and the process's estimated offset onto the coordinator
// clock (the ClockSync Hello exchange of dist/node.cc). The merge rebases
// every event to origin + offset - min(origin + offset over all inputs),
// assigns each input file its own pid with a process_name metadata event,
// and keeps async 'b'/'e' handoff spans intact so a hop's
// capture-at-departure and splice-at-arrival show up as one cross-process
// span in Perfetto.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace spire::obs {

/// Merges parsed trace documents (JSON text, one per process). `labels[i]`
/// names input i's process row; an empty label falls back to the input's
/// own "spire" process label, then to "process<i>". Returns the merged
/// document as JSON text.
Result<std::string> MergeTraceJson(const std::vector<std::string>& texts,
                                   const std::vector<std::string>& labels);

/// File front end: reads every input trace, merges, writes `out_path`.
Status MergeTraceFiles(const std::vector<std::string>& paths,
                       const std::string& out_path);

}  // namespace spire::obs
