#!/usr/bin/env bash
# Local CI: configure, build, and run the full test suite twice — once
# plain, once under ASan+UBSan (SPIRE_SANITIZE=ON). Any warning is an error
# in both configurations (-Werror is always on).
#
#   tools/ci.sh            # both configurations
#   tools/ci.sh plain      # plain only
#   tools/ci.sh sanitize   # sanitized only
set -euo pipefail

cd "$(dirname "$0")/.."
mode="${1:-all}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] test ==="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

case "$mode" in
  plain) run_config plain build ;;
  sanitize) run_config sanitize build-sanitize -DSPIRE_SANITIZE=ON ;;
  all)
    run_config plain build
    run_config sanitize build-sanitize -DSPIRE_SANITIZE=ON
    ;;
  *)
    echo "usage: tools/ci.sh [plain|sanitize|all]" >&2
    exit 2
    ;;
esac

echo "=== CI OK ($mode) ==="
