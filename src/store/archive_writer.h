// Append-only writer for the block-compressed event archive.
//
// Events are buffered and sealed into self-contained blocks of
// `ArchiveOptions::block_events` events; each block is appended to the
// segment file behind a CRC-protected header (store/format.h). Close()
// writes the index sidecar. Opening an existing segment recovers from a
// torn tail: the file is truncated to the last block whose CRCs validate
// and appending continues from there — a crash loses at most the block
// that was being written (plus any still-buffered events).
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "common/status.h"
#include "compress/event.h"
#include "store/segment.h"

namespace spire {

/// Archive writer knobs.
struct ArchiveOptions {
  /// Events per block. Larger blocks compress better (longer delta chains)
  /// but make time-range and per-object scans decode more.
  std::size_t block_events = 4096;
  /// Payload codec of newly sealed blocks (format v2 names it per block,
  /// so a segment may mix codecs across append sessions). kVarint is the
  /// size-optimal default; kBitpack trades a larger payload (delta columns
  /// pay each 128-value miniblock's worst-case width) for word-at-a-time
  /// decode and structurally skippable columns — the right choice for
  /// scan-heavy segments, e.g. via `spire_cli compact`.
  BlockCodec codec = BlockCodec::kVarint;
  /// Segment format version for newly created files: kArchiveVersion, or
  /// kArchiveVersionV1 for compatibility (which only carries kVarint
  /// blocks). Appending to an existing segment adopts the file's version —
  /// a v1 segment silently coerces `codec` back to kVarint.
  std::uint16_t format_version = kArchiveVersion;
};

/// What ArchiveWriter::Open found (and did) on an existing segment.
struct RecoveryInfo {
  std::uint64_t recovered_events = 0;  ///< Events in the valid prefix.
  std::size_t recovered_blocks = 0;    ///< Blocks in the valid prefix.
  std::uint64_t truncated_bytes = 0;   ///< Torn-tail bytes discarded.
};

/// One writer per segment file; not thread-safe.
class ArchiveWriter {
 public:
  /// Creates `path` (plus its sidecar on Close), or re-opens an existing
  /// segment for appending after validating and truncating its tail. Any
  /// existing sidecar is deleted up front: once appending starts it
  /// describes a stale prefix, and a crash before Close must not leave it
  /// behind to be trusted by a later reader.
  static Result<std::unique_ptr<ArchiveWriter>> Open(const std::string& path,
                                                     ArchiveOptions options =
                                                         {});

  /// Flushes nothing on destruction: an abandoned writer's segment is
  /// recoverable up to its last sealed block, exactly like a crash.
  ~ArchiveWriter() = default;

  /// Buffers one event; seals a block when the buffer is full. Fails on
  /// events no block can represent (see ValidateArchivable).
  Status Append(const Event& event);

  /// Buffers a whole stream.
  Status Append(const EventStream& events);

  /// Seals the buffered events into a (possibly short) block and flushes
  /// the segment file. A no-op on an empty buffer.
  Status Flush();

  /// Flush + write the index sidecar. The writer is unusable afterwards.
  Status Close();

  // --- Accounting ---------------------------------------------------------

  std::uint64_t events_written() const {
    return info_.events + buffer_.size();
  }
  std::size_t num_blocks() const { return info_.blocks.size(); }
  /// Segment bytes written so far (excludes the still-buffered events).
  std::uint64_t segment_bytes() const { return info_.valid_bytes; }
  /// Segment format version in effect (the file's, once it exists).
  std::uint16_t format_version() const { return info_.version; }
  /// Codec newly sealed blocks use (options_, possibly coerced by a v1
  /// segment).
  BlockCodec codec() const { return options_.codec; }
  const RecoveryInfo& recovery() const { return recovery_; }
  const std::string& path() const { return path_; }

 private:
  ArchiveWriter(std::string path, ArchiveOptions options);

  Status SealBlock();

  std::string path_;
  ArchiveOptions options_;
  std::ofstream out_;
  SegmentInfo info_;
  RecoveryInfo recovery_;
  EventStream buffer_;
  bool closed_ = false;
};

}  // namespace spire
