#include "store/block.h"

#include <limits>

#include "store/bitpack.h"
#include "store/varint.h"

namespace spire {

/// Archive-representability check; mirrors EventEncoder's validation but
/// without the flat format's 32-bit timestamp ceiling.
Status ValidateArchivable(const Event& event) {
  const Epoch primary = PrimaryEpoch(event);
  if (primary < 0) {
    return Status::InvalidArgument("negative event timestamp: " +
                                   event.ToString());
  }
  switch (event.type) {
    case EventType::kStartLocation:
    case EventType::kStartContainment:
      if (event.end != kInfiniteEpoch) {
        return Status::InvalidArgument("Start event with a closed interval: " +
                                       event.ToString());
      }
      break;
    case EventType::kEndLocation:
    case EventType::kEndContainment:
      if (event.start < 0 || event.end < event.start) {
        return Status::InvalidArgument(
            "End event without a reconstructed interval: " + event.ToString());
      }
      break;
    case EventType::kMissing:
      if (event.start != event.end) {
        return Status::InvalidArgument("Missing event is not a point: " +
                                       event.ToString());
      }
      break;
    default:
      return Status::InvalidArgument("unknown event type");
  }
  return Status::OK();
}

namespace {

inline bool IsEndType(EventType type) {
  return type == EventType::kEndLocation || type == EventType::kEndContainment;
}

/// The numeric columns of one block as flat zigzag-delta (and, for
/// durations, plain) u64 arrays — the codec-independent intermediate both
/// payload layouts serialize.
struct Columns {
  std::vector<std::uint64_t> objects;    // zigzag deltas
  std::vector<std::uint64_t> targets;    // zigzag deltas, two chains
  std::vector<std::uint64_t> epochs;     // zigzag deltas
  std::vector<std::uint64_t> durations;  // plain, one per End event
};

/// Wraparound-safe delta: the decoder adds the zigzag delta back modulo
/// 2^64, so id spaces near the top of the range (kNoObject) are fine.
inline std::uint64_t NextDelta(std::uint64_t value, std::uint64_t* prev) {
  const std::uint64_t delta =
      ZigzagEncode(static_cast<std::int64_t>(value - *prev));
  *prev = value;
  return delta;
}

Columns BuildColumns(const EventStream& events, std::size_t first,
                     std::size_t count) {
  Columns columns;
  columns.objects.reserve(count);
  columns.targets.reserve(count);
  columns.epochs.reserve(count);
  std::uint64_t prev_object = 0;
  std::uint64_t prev_container = 0;
  std::uint64_t prev_location = 0;
  std::uint64_t prev_epoch = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const Event& event = events[first + i];
    columns.objects.push_back(NextDelta(event.object, &prev_object));
    if (IsContainmentEvent(event.type)) {
      columns.targets.push_back(NextDelta(event.container, &prev_container));
    } else {
      columns.targets.push_back(NextDelta(event.location, &prev_location));
    }
    columns.epochs.push_back(NextDelta(
        static_cast<std::uint64_t>(PrimaryEpoch(event)), &prev_epoch));
    if (IsEndType(event.type)) {
      // V_e - V_s >= 0 by validation.
      columns.durations.push_back(
          static_cast<std::uint64_t>(event.end - event.start));
    }
  }
  return columns;
}

void PutVarintColumn(const std::vector<std::uint64_t>& values,
                     std::vector<std::uint8_t>* out) {
  for (std::uint64_t value : values) PutVarint64(value, out);
}

Status GetVarintColumn(const std::uint8_t* in, std::size_t size,
                       std::size_t* offset, std::size_t count,
                       std::vector<std::uint64_t>* out) {
  out->resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto value = GetVarint64(in, size, offset);
    if (!value.ok()) return value.status();
    (*out)[i] = value.value();
  }
  return Status::OK();
}

/// Undoes the zigzag-delta map in place: deltas -> absolute values.
void PrefixDecode(std::vector<std::uint64_t>* values) {
  std::uint64_t prev = 0;
  for (std::uint64_t& value : *values) {
    prev += static_cast<std::uint64_t>(ZigzagDecode(value));
    value = prev;
  }
}

/// Targets interleave two independent delta chains (container ids for
/// containment events, location ids otherwise), so decoding picks the
/// chain per event by its type.
void PrefixDecodeTargets(const std::vector<EventType>& types,
                         std::vector<std::uint64_t>* values) {
  std::uint64_t prev_container = 0;
  std::uint64_t prev_location = 0;
  for (std::size_t i = 0; i < values->size(); ++i) {
    std::uint64_t& prev =
        IsContainmentEvent(types[i]) ? prev_container : prev_location;
    prev += static_cast<std::uint64_t>(ZigzagDecode((*values)[i]));
    (*values)[i] = prev;
  }
}

/// Materializes events from fully decoded columns, applying the value
/// checks both codecs share. `objects`, `targets`, `epochs` hold absolute
/// values; `durations` is consumed in End-event order.
Status MaterializeEvents(const std::vector<EventType>& types,
                         const std::vector<std::uint64_t>& objects,
                         const std::vector<std::uint64_t>& targets,
                         const std::vector<std::uint64_t>& epochs,
                         const std::vector<std::uint64_t>& durations,
                         EventStream* out) {
  const std::size_t count = types.size();
  std::size_t next_duration = 0;
  const std::size_t base = out->size();
  out->resize(base + count);
  for (std::size_t i = 0; i < count; ++i) {
    Event& event = (*out)[base + i];
    event.type = types[i];
    event.object = objects[i];
    if (IsContainmentEvent(types[i])) {
      event.container = targets[i];
    } else {
      if (targets[i] > std::numeric_limits<LocationId>::max()) {
        return Status::Corruption("location id out of range in block");
      }
      event.location = static_cast<LocationId>(targets[i]);
    }
    const Epoch primary = static_cast<Epoch>(epochs[i]);
    if (primary < 0) {
      return Status::Corruption("negative event timestamp in block");
    }
    switch (types[i]) {
      case EventType::kStartLocation:
      case EventType::kStartContainment:
        event.start = primary;
        event.end = kInfiniteEpoch;
        break;
      case EventType::kEndLocation:
      case EventType::kEndContainment: {
        const std::uint64_t start = static_cast<std::uint64_t>(primary) -
                                    durations[next_duration++];
        event.end = primary;
        event.start = static_cast<Epoch>(start);
        if (event.start < 0 || event.start > event.end) {
          return Status::Corruption("End event duration out of range in block");
        }
        break;
      }
      case EventType::kMissing:
        event.start = primary;
        event.end = primary;
        break;
    }
  }
  return Status::OK();
}

Status DecodeTypes(const std::uint8_t* payload, std::size_t payload_size,
                   std::uint32_t count, std::vector<EventType>* types,
                   std::size_t* num_ends) {
  if (payload_size < count) {
    return Status::Corruption("block payload shorter than its type column");
  }
  types->resize(count);
  *num_ends = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t byte = payload[i];
    if (byte > static_cast<std::uint8_t>(EventType::kMissing)) {
      return Status::Corruption("unknown event type byte in block");
    }
    (*types)[i] = static_cast<EventType>(byte);
    if (IsEndType((*types)[i])) ++*num_ends;
  }
  return Status::OK();
}

}  // namespace

Result<EncodedBlock> EncodeBlock(const EventStream& events, std::size_t first,
                                 std::size_t count, BlockCodec codec) {
  if (first + count > events.size()) {
    return Status::InvalidArgument("block range exceeds the stream");
  }
  if (count == 0 ||
      count > std::numeric_limits<std::uint32_t>::max()) {
    return Status::InvalidArgument("block event count out of range");
  }
  EncodedBlock block;
  block.count = static_cast<std::uint32_t>(count);
  block.codec = codec;

  // Types column (plus validation and the epoch bounds).
  for (std::size_t i = 0; i < count; ++i) {
    const Event& event = events[first + i];
    SPIRE_RETURN_NOT_OK(ValidateArchivable(event));
    const Epoch primary = PrimaryEpoch(event);
    if (block.min_epoch == kNeverEpoch || primary < block.min_epoch) {
      block.min_epoch = primary;
    }
    if (block.max_epoch == kNeverEpoch || primary > block.max_epoch) {
      block.max_epoch = primary;
    }
    block.payload.push_back(static_cast<std::uint8_t>(event.type));
  }

  const Columns columns = BuildColumns(events, first, count);
  switch (codec) {
    case BlockCodec::kVarint:
      PutVarintColumn(columns.objects, &block.payload);
      PutVarintColumn(columns.targets, &block.payload);
      PutVarintColumn(columns.epochs, &block.payload);
      PutVarintColumn(columns.durations, &block.payload);
      break;
    case BlockCodec::kBitpack:
      PackColumn(columns.objects.data(), columns.objects.size(),
                 &block.payload);
      PackColumn(columns.targets.data(), columns.targets.size(),
                 &block.payload);
      PackColumn(columns.epochs.data(), columns.epochs.size(),
                 &block.payload);
      PackColumn(columns.durations.data(), columns.durations.size(),
                 &block.payload);
      block.payload.insert(block.payload.end(), kBitpackPadBytes, 0);
      break;
  }
  return block;
}

Status DecodeBlock(const std::uint8_t* payload, std::size_t payload_size,
                   std::uint32_t count, BlockCodec codec, EventStream* out) {
  std::vector<EventType> types;
  std::size_t num_ends = 0;
  SPIRE_RETURN_NOT_OK(DecodeTypes(payload, payload_size, count, &types,
                                  &num_ends));
  std::size_t offset = count;

  Columns columns;
  switch (codec) {
    case BlockCodec::kVarint:
      SPIRE_RETURN_NOT_OK(GetVarintColumn(payload, payload_size, &offset,
                                          count, &columns.objects));
      SPIRE_RETURN_NOT_OK(GetVarintColumn(payload, payload_size, &offset,
                                          count, &columns.targets));
      SPIRE_RETURN_NOT_OK(GetVarintColumn(payload, payload_size, &offset,
                                          count, &columns.epochs));
      SPIRE_RETURN_NOT_OK(GetVarintColumn(payload, payload_size, &offset,
                                          num_ends, &columns.durations));
      if (offset != payload_size) {
        return Status::Corruption("trailing bytes after the block columns");
      }
      break;
    case BlockCodec::kBitpack: {
      columns.objects.resize(count);
      columns.targets.resize(count);
      columns.epochs.resize(count);
      columns.durations.resize(num_ends);
      SPIRE_RETURN_NOT_OK(UnpackColumn(payload, payload_size, &offset, count,
                                       columns.objects.data()));
      SPIRE_RETURN_NOT_OK(UnpackColumn(payload, payload_size, &offset, count,
                                       columns.targets.data()));
      SPIRE_RETURN_NOT_OK(UnpackColumn(payload, payload_size, &offset, count,
                                       columns.epochs.data()));
      SPIRE_RETURN_NOT_OK(UnpackColumn(payload, payload_size, &offset,
                                       num_ends, columns.durations.data()));
      if (offset + kBitpackPadBytes != payload_size) {
        return Status::Corruption("trailing bytes after the block columns");
      }
      for (std::size_t i = offset; i < payload_size; ++i) {
        if (payload[i] != 0) {
          return Status::Corruption("nonzero bitpack payload pad");
        }
      }
      break;
    }
    default:
      return Status::Corruption("unknown block codec");
  }
  PrefixDecode(&columns.objects);
  PrefixDecodeTargets(types, &columns.targets);
  PrefixDecode(&columns.epochs);
  return MaterializeEvents(types, columns.objects, columns.targets,
                           columns.epochs, columns.durations, out);
}

Status DecodeBlockEpochs(const std::uint8_t* payload,
                         std::size_t payload_size, std::uint32_t count,
                         BlockCodec codec, std::vector<Epoch>* out) {
  if (payload_size < count) {
    return Status::Corruption("block payload shorter than its type column");
  }
  std::size_t offset = count;  // Types carry no epoch data; jump them.
  // Unpack the zigzag deltas straight into the output tail and transform
  // them in place (Epoch and uint64_t share size, and signed/unsigned
  // aliasing of the same width is well-defined), so the hot path pays no
  // per-block scratch allocation or copy pass.
  const std::size_t base = out->size();
  out->resize(base + count);
  auto* deltas = reinterpret_cast<std::uint64_t*>(out->data() + base);
  switch (codec) {
    case BlockCodec::kVarint:
      // Varint columns have no skip structure: reaching the epoch column
      // means walking every object/target byte's continuation bit.
      for (std::uint32_t i = 0; i < 2 * count; ++i) {
        SPIRE_RETURN_NOT_OK(SkipVarint64(payload, payload_size, &offset));
      }
      for (std::uint32_t i = 0; i < count; ++i) {
        auto value = GetVarint64(payload, payload_size, &offset);
        if (!value.ok()) return value.status();
        deltas[i] = value.value();
      }
      break;
    case BlockCodec::kBitpack:
      SPIRE_RETURN_NOT_OK(SkipColumn(payload, payload_size, &offset, count));
      SPIRE_RETURN_NOT_OK(SkipColumn(payload, payload_size, &offset, count));
      SPIRE_RETURN_NOT_OK(
          UnpackColumn(payload, payload_size, &offset, count, deltas));
      break;
    default:
      return Status::Corruption("unknown block codec");
  }
  std::uint64_t prev = 0;
  std::uint64_t sign = 0;  // Accumulated sign bits: branch-free range check.
  for (std::uint32_t i = 0; i < count; ++i) {
    prev += static_cast<std::uint64_t>(ZigzagDecode(deltas[i]));
    sign |= prev;
    deltas[i] = prev;
  }
  if ((sign >> 63) != 0) {
    return Status::Corruption("negative event timestamp in block");
  }
  return Status::OK();
}

}  // namespace spire
