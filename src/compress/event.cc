#include "compress/event.h"

#include <sstream>

#include "common/epc.h"

namespace spire {

const char* ToString(EventType type) {
  switch (type) {
    case EventType::kStartLocation:
      return "StartLocation";
    case EventType::kEndLocation:
      return "EndLocation";
    case EventType::kStartContainment:
      return "StartContainment";
    case EventType::kEndContainment:
      return "EndContainment";
    case EventType::kMissing:
      return "Missing";
  }
  return "invalid";
}

Event Event::StartLocation(ObjectId object, LocationId location, Epoch start) {
  Event e;
  e.type = EventType::kStartLocation;
  e.object = object;
  e.location = location;
  e.start = start;
  e.end = kInfiniteEpoch;
  return e;
}

Event Event::EndLocation(ObjectId object, LocationId location, Epoch start,
                         Epoch end) {
  Event e;
  e.type = EventType::kEndLocation;
  e.object = object;
  e.location = location;
  e.start = start;
  e.end = end;
  return e;
}

Event Event::StartContainment(ObjectId object, ObjectId container,
                              Epoch start) {
  Event e;
  e.type = EventType::kStartContainment;
  e.object = object;
  e.container = container;
  e.start = start;
  e.end = kInfiniteEpoch;
  return e;
}

Event Event::EndContainment(ObjectId object, ObjectId container, Epoch start,
                            Epoch end) {
  Event e;
  e.type = EventType::kEndContainment;
  e.object = object;
  e.container = container;
  e.start = start;
  e.end = end;
  return e;
}

Event Event::Missing(ObjectId object, LocationId missing_from, Epoch at) {
  Event e;
  e.type = EventType::kMissing;
  e.object = object;
  e.location = missing_from;
  e.start = at;
  e.end = at;
  return e;
}

std::string Event::ToString() const {
  std::ostringstream out;
  out << spire::ToString(type) << "(" << EpcToString(object);
  if (IsContainmentEvent(type)) {
    out << ", in " << EpcToString(container);
  } else {
    out << ", loc " << location;
  }
  out << ", [" << start << ", ";
  if (end == kInfiniteEpoch) {
    out << "inf";
  } else {
    out << end;
  }
  out << "))";
  return out.str();
}

}  // namespace spire
