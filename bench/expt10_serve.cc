// Parallel serving throughput (beyond the paper): epochs/s of the sharded
// serving layer (src/serve) at 1, 2, and 4 shards over a multi-site
// workload, against the serial reference. Sites are independent warehouse
// simulations, so the work parallelizes site-by-site; ideal scaling is
// min(shards, sites, hardware threads). Results land in BENCH_serve.json
// (throughput per shard count, speedups, merge latency percentiles, peak
// RSS) so the perf trajectory is tracked across PRs.
//
//   ./expt10_serve [sites=4] [shards=1,2,4] [duration=1200] [queue=64]
//                  [full=true] [key=value ...]
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "eval/table.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "sim/simulator.h"

using namespace spire;
using namespace spire::bench;

namespace {

/// Simulates one independent warehouse site.
serve::SiteWorkload SimulateSite(SimConfig config, int site) {
  config.seed = config.seed + static_cast<std::uint64_t>(site);
  auto sim = WarehouseSimulator::Create(config);
  if (!sim.ok()) {
    std::fprintf(stderr, "simulator: %s\n", sim.status().ToString().c_str());
    std::exit(1);
  }
  WarehouseSimulator& s = *sim.value();
  serve::SiteWorkload workload;
  workload.name = "site-" + std::to_string(site);
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    const auto epoch = static_cast<std::size_t>(s.current_epoch());
    if (epoch >= workload.epochs.size()) workload.epochs.resize(epoch + 1);
    workload.epochs[epoch] = std::move(readings);
  }
  workload.registry = s.registry();
  return workload;
}

}  // namespace

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  const bool full = args.GetBool("full", false).value_or(false);
  const int sites = static_cast<int>(args.GetInt("sites", 4).value_or(4));
  const auto duration =
      args.GetInt("duration", full ? 5400 : 1200).value_or(1200);
  const auto queue = static_cast<std::size_t>(
      args.GetInt("queue", 64).value_or(64));

  SimConfig sim_config = SweepConfig(full);
  sim_config.duration_epochs = duration;
  auto overridden = SimConfig::FromConfig(args, sim_config);
  if (overridden.ok()) sim_config = overridden.value();

  PrintHeader("Expt 10: parallel serving throughput",
              "beyond the paper (src/serve scaling)");
  std::printf("%d site(s), %lld epochs each, %u hardware thread(s)\n\n",
              sites, static_cast<long long>(sim_config.duration_epochs),
              std::thread::hardware_concurrency());

  serve::Workload workload;
  for (int site = 0; site < sites; ++site) {
    workload.sites.push_back(SimulateSite(sim_config, site));
  }
  Status status = serve::NormalizeWorkload(&workload);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // Serial reference first: the stream every sharded run must reproduce.
  const auto ref_start = std::chrono::steady_clock::now();
  EventStream reference = serve::RunServeReference(workload, PipelineOptions{});
  const double ref_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ref_start)
          .count();
  const double ref_eps =
      ref_seconds > 0.0
          ? static_cast<double>(workload.num_epochs) / ref_seconds
          : 0.0;

  BenchReport report("serve");
  report.Add("sites", sites);
  report.Add("epochs", static_cast<double>(workload.num_epochs));
  report.Add("hardware_threads", std::thread::hardware_concurrency());
  report.Add("reference_epochs_per_sec", ref_eps);

  TextTable table({"config", "wall (s)", "epochs/s", "speedup vs 1 shard",
                   "events", "identical"});
  table.AddRow({"serial reference", TextTable::Num(ref_seconds, 3),
                TextTable::Num(ref_eps, 1), "-",
                std::to_string(reference.size()), "-"});

  double one_shard_eps = 0.0;
  for (int shards : {1, 2, 4}) {
    serve::ServeOptions options;
    options.num_shards = shards;
    options.queue_capacity = queue;
    serve::SpireServer server(&workload, options);
    serve::ServeResult result = server.Run();
    if (!result.status.ok()) {
      std::fprintf(stderr, "serve(%d): %s\n", shards,
                   result.status.ToString().c_str());
      return 1;
    }
    const double eps =
        result.wall_seconds > 0.0
            ? static_cast<double>(result.epochs_processed) /
                  result.wall_seconds
            : 0.0;
    if (shards == 1) one_shard_eps = eps;
    const bool identical = result.events == reference;
    table.AddRow({std::to_string(shards) + " shard(s)",
                  TextTable::Num(result.wall_seconds, 3),
                  TextTable::Num(eps, 1),
                  TextTable::Num(one_shard_eps > 0.0 ? eps / one_shard_eps
                                                     : 0.0,
                                 2),
                  std::to_string(result.events.size()),
                  identical ? "yes" : "NO"});
    const std::string prefix = "shards_" + std::to_string(shards) + ".";
    report.Add(prefix + "wall_seconds", result.wall_seconds);
    report.Add(prefix + "epochs_per_sec", eps);
    report.Add(prefix + "speedup_vs_1_shard",
               one_shard_eps > 0.0 ? eps / one_shard_eps : 0.0);
    report.Add(prefix + "events", static_cast<double>(result.events.size()));
    report.Add(prefix + "identical_to_reference", identical ? 1.0 : 0.0);
    const serve::ShardMetrics& shard0 = server.metrics().shard(0);
    report.Add(prefix + "p50_process_us",
               shard0.process_latency.Quantile(0.50));
    report.Add(prefix + "p95_process_us",
               shard0.process_latency.Quantile(0.95));
    report.Add(prefix + "p99_process_us",
               shard0.process_latency.Quantile(0.99));
    if (!identical) {
      std::fprintf(stderr,
                   "serve(%d shards) diverged from the serial reference\n",
                   shards);
      return 1;
    }
  }
  table.Print();

  status = report.Write();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
