// Fundamental identifier and time types shared by every SPIRE module.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace spire {

/// A 64-bit object identifier. In SPIRE an ObjectId is the compact form of an
/// EPC tag id (see common/epc.h); the packaging level is recoverable from it.
using ObjectId = std::uint64_t;

/// Sentinel meaning "no object" (e.g. an object without a container).
inline constexpr ObjectId kNoObject = std::numeric_limits<ObjectId>::max();

/// Identifier of a fixed, pre-defined location (aisle, belt, shelf, door...).
/// Location ids are small dense integers assigned by the warehouse layout.
using LocationId = std::uint16_t;

/// The special "unknown" location of Section II: an object is in the unknown
/// location when it is in transit between locations or has improperly left
/// the physical world (e.g. was stolen).
inline constexpr LocationId kUnknownLocation =
    std::numeric_limits<LocationId>::max();

/// Identifier of a physical RFID reader.
using ReaderId = std::uint16_t;

/// Sentinel meaning "no reader".
inline constexpr ReaderId kNoReader = std::numeric_limits<ReaderId>::max();

/// Discrete time. SPIRE divides time into fixed-length epochs (1 second in
/// the paper's evaluation); an Epoch is the index of one such interval.
using Epoch = std::int64_t;

/// Sentinel for "never" / "not yet".
inline constexpr Epoch kNeverEpoch = -1;

/// Sentinel for an open-ended validity interval (V_e = infinity).
inline constexpr Epoch kInfiniteEpoch = std::numeric_limits<Epoch>::max();

/// EPC packaging levels mandated by the EPCglobal tag data standard: every
/// tagged object is an item, a case, or a pallet, and the level is encoded
/// in the tag id. The graph model uses the level as the node's layer.
enum class PackagingLevel : std::uint8_t {
  kItem = 0,
  kCase = 1,
  kPallet = 2,
};

/// Number of distinct packaging levels.
inline constexpr int kNumPackagingLevels = 3;

/// Human-readable name of a packaging level.
inline const char* ToString(PackagingLevel level) {
  switch (level) {
    case PackagingLevel::kItem:
      return "item";
    case PackagingLevel::kCase:
      return "case";
    case PackagingLevel::kPallet:
      return "pallet";
  }
  return "invalid";
}

}  // namespace spire
