// Unit tests for the time-varying colored graph and the stream-driven
// update procedure (Fig. 4).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/epc.h"
#include "graph/graph.h"
#include "graph/update.h"
#include "stream/reader.h"

namespace spire {
namespace {

ObjectId Obj(PackagingLevel level, std::uint32_t serial) {
  EpcFields fields;
  fields.level = level;
  fields.serial = serial;
  return EncodeEpcUnchecked(fields);
}

// A registry with one regular "dock", one regular "shelf", one belt reader,
// and one exit reader.
class GraphUpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dock_ = registry_.AddLocation("dock");
    shelf_ = registry_.AddLocation("shelf");
    belt_ = registry_.AddLocation("belt");
    exit_ = registry_.AddLocation("exit");
    AddReader(0, dock_, ReaderType::kPackaging);
    AddReader(1, shelf_, ReaderType::kShelf);
    AddReader(2, belt_, ReaderType::kReceivingBelt);
    AddReader(3, exit_, ReaderType::kExitDoor);
    updater_ = std::make_unique<GraphUpdater>(&graph_, &registry_);
  }

  void AddReader(ReaderId id, LocationId location, ReaderType type) {
    ReaderInfo info;
    info.id = id;
    info.location = location;
    info.type = type;
    info.period_epochs = 1;
    ASSERT_TRUE(registry_.AddReader(info).ok());
  }

  ReaderBatch Batch(ReaderId reader, std::vector<ObjectId> tags) {
    ReaderBatch batch;
    batch.reader = reader;
    batch.tags = std::move(tags);
    return batch;
  }

  ReaderRegistry registry_;
  Graph graph_{8};
  std::unique_ptr<GraphUpdater> updater_;
  LocationId dock_, shelf_, belt_, exit_;
};

// ----------------------------------------------------------- Graph model --

TEST(GraphTest, NodesCarryEpcLayer) {
  Graph graph;
  Node& item = graph.GetOrCreateNode(Obj(PackagingLevel::kItem, 1));
  Node& pallet = graph.GetOrCreateNode(Obj(PackagingLevel::kPallet, 2));
  EXPECT_EQ(item.layer, 0);
  EXPECT_EQ(pallet.layer, 2);
  EXPECT_EQ(graph.NumNodes(), 2u);
}

TEST(GraphTest, ColoringIsPerEpoch) {
  Graph graph;
  graph.BeginEpoch(1);
  Node& node = graph.GetOrCreateNode(Obj(PackagingLevel::kItem, 1));
  graph.ColorNode(node, 4);
  EXPECT_TRUE(graph.IsColored(node));
  EXPECT_EQ(graph.ColorOf(node), 4);
  EXPECT_EQ(node.seen_at, 1);

  graph.BeginEpoch(2);
  EXPECT_FALSE(graph.IsColored(node));
  EXPECT_EQ(graph.ColorOf(node), kUnknownLocation);
  // Uncolored nodes remember (recent color, seen at).
  EXPECT_EQ(node.recent_color, 4);
  EXPECT_EQ(node.seen_at, 1);
}

TEST(GraphTest, ColoredIndexTracksLayerAndColor) {
  Graph graph;
  graph.BeginEpoch(1);
  ObjectId item = Obj(PackagingLevel::kItem, 1);
  ObjectId pallet = Obj(PackagingLevel::kPallet, 2);
  graph.ColorNode(graph.GetOrCreateNode(item), 7);
  graph.ColorNode(graph.GetOrCreateNode(pallet), 7);
  EXPECT_EQ(graph.ColoredAt(7, 0).size(), 1u);
  EXPECT_EQ(graph.ColoredAt(7, 2).size(), 1u);
  EXPECT_TRUE(graph.ColoredAt(7, 1).empty());
  EXPECT_TRUE(graph.ColoredAt(9, 0).empty());
  EXPECT_EQ(graph.ColoredNodes().size(), 2u);
  graph.BeginEpoch(2);
  EXPECT_TRUE(graph.ColoredAt(7, 0).empty());
  EXPECT_TRUE(graph.ColoredNodes().empty());
}

TEST(GraphTest, DoubleColorSameEpochIsIdempotent) {
  Graph graph;
  graph.BeginEpoch(1);
  Node& node = graph.GetOrCreateNode(Obj(PackagingLevel::kItem, 1));
  graph.ColorNode(node, 3);
  graph.ColorNode(node, 3);
  EXPECT_EQ(graph.ColoredNodes().size(), 1u);
  EXPECT_EQ(graph.ColoredAt(3, 0).size(), 1u);
}

TEST(GraphTest, AddEdgeDeduplicates) {
  Graph graph;
  graph.BeginEpoch(1);
  ObjectId parent = Obj(PackagingLevel::kCase, 1);
  ObjectId child = Obj(PackagingLevel::kItem, 2);
  EdgeId first = graph.AddEdge(parent, child);
  EdgeId second = graph.AddEdge(parent, child);
  EXPECT_EQ(first, second);
  EXPECT_EQ(graph.NumEdges(), 1u);
  EXPECT_EQ(graph.FindEdge(parent, child), first);
  EXPECT_EQ(graph.FindEdge(child, parent), kNoEdge);  // Directed.
}

TEST(GraphTest, EdgeAdjacency) {
  Graph graph;
  graph.BeginEpoch(1);
  ObjectId parent = Obj(PackagingLevel::kCase, 1);
  ObjectId child = Obj(PackagingLevel::kItem, 2);
  EdgeId edge = graph.AddEdge(parent, child);
  EXPECT_EQ(graph.FindNode(parent)->child_edges.size(), 1u);
  EXPECT_EQ(graph.FindNode(child)->parent_edges.size(), 1u);
  EXPECT_EQ(graph.OtherEnd(graph.edge(edge), parent), child);
  EXPECT_EQ(graph.OtherEnd(graph.edge(edge), child), parent);
}

TEST(GraphTest, RemoveEdgeFreesSlotForReuse) {
  Graph graph;
  graph.BeginEpoch(1);
  ObjectId a = Obj(PackagingLevel::kCase, 1);
  ObjectId b = Obj(PackagingLevel::kItem, 2);
  EdgeId edge = graph.AddEdge(a, b);
  graph.RemoveEdge(edge);
  EXPECT_EQ(graph.NumEdges(), 0u);
  EXPECT_TRUE(graph.FindNode(a)->child_edges.empty());
  EXPECT_TRUE(graph.FindNode(b)->parent_edges.empty());
  EdgeId reused = graph.AddEdge(a, b);
  EXPECT_EQ(reused, edge);  // Slot recycled.
  EXPECT_EQ(graph.EdgeCapacity(), 1u);
}

TEST(GraphTest, RemoveNodeDropsIncidentEdgesAndIndex) {
  Graph graph;
  graph.BeginEpoch(1);
  ObjectId pallet = Obj(PackagingLevel::kPallet, 1);
  ObjectId case1 = Obj(PackagingLevel::kCase, 2);
  ObjectId item = Obj(PackagingLevel::kItem, 3);
  graph.AddEdge(pallet, case1);
  graph.AddEdge(case1, item);
  graph.ColorNode(*graph.FindNode(case1), 5);
  graph.RemoveNode(case1);
  EXPECT_EQ(graph.NumNodes(), 2u);
  EXPECT_EQ(graph.NumEdges(), 0u);
  EXPECT_TRUE(graph.ColoredAt(5, 1).empty());
  EXPECT_TRUE(graph.ColoredNodes().empty());
  EXPECT_TRUE(graph.FindNode(pallet)->child_edges.empty());
  EXPECT_TRUE(graph.FindNode(item)->parent_edges.empty());
}

TEST(GraphTest, NodeArenaRecyclesSlotsAfterRemove) {
  Graph graph;
  graph.BeginEpoch(1);
  ObjectId a = Obj(PackagingLevel::kItem, 1);
  ObjectId b = Obj(PackagingLevel::kItem, 2);
  NodeId slot_a = graph.GetOrCreateNode(a).self;
  graph.GetOrCreateNode(b);
  const std::size_t slots = graph.NodeSlots();
  graph.RemoveNode(a);
  EXPECT_FALSE(graph.NodeAlive(slot_a));
  EXPECT_EQ(graph.NodeAt(slot_a), nullptr);
  EXPECT_EQ(graph.FindNodeId(a), kNoNode);
  // A new object takes the freed slot instead of growing the arena.
  ObjectId c = Obj(PackagingLevel::kItem, 3);
  Node& reused = graph.GetOrCreateNode(c);
  EXPECT_EQ(reused.self, slot_a);
  EXPECT_EQ(graph.NodeSlots(), slots);
  EXPECT_EQ(graph.FindNodeId(c), slot_a);
  EXPECT_EQ(graph.NodeAt(slot_a)->id, c);
}

TEST(GraphTest, NodeReferencesStayValidAcrossArenaGrowth) {
  // The chunked arena must never move a live node: update code holds Node&
  // across calls that create further nodes.
  Graph graph;
  graph.BeginEpoch(1);
  Node& first = graph.GetOrCreateNode(Obj(PackagingLevel::kItem, 0));
  Node* first_address = &first;
  for (std::uint32_t i = 1; i < 5000; ++i) {
    graph.GetOrCreateNode(Obj(PackagingLevel::kItem, i));
  }
  EXPECT_EQ(graph.FindNode(Obj(PackagingLevel::kItem, 0)), first_address);
  EXPECT_EQ(first_address->self, graph.FindNodeId(Obj(PackagingLevel::kItem, 0)));
}

TEST(GraphTest, EdgeCapacityBoundedByPeakAliveEdges) {
  Graph graph;
  graph.BeginEpoch(1);
  ObjectId c1 = Obj(PackagingLevel::kCase, 1);
  // Churn: one alive edge at a time, many times over.
  for (std::uint32_t i = 0; i < 64; ++i) {
    EdgeId e = graph.AddEdge(c1, Obj(PackagingLevel::kItem, 10 + i));
    graph.RemoveEdge(e);
  }
  EXPECT_EQ(graph.NumEdges(), 0u);
  EXPECT_EQ(graph.EdgeCapacity(), 1u);  // Free list reused one slot.
}

TEST(GraphTest, DirtySetTracksColorAdjacencyAndLoss) {
  Graph graph;
  graph.BeginEpoch(1);
  ObjectId case1 = Obj(PackagingLevel::kCase, 1);
  ObjectId item = Obj(PackagingLevel::kItem, 2);
  Node& case_node = graph.GetOrCreateNode(case1);
  graph.ColorNode(case_node, 3);
  EXPECT_EQ(graph.DirtyNodes().size(), 1u);
  EXPECT_EQ(graph.DirtyNodes()[0], case_node.self);
  graph.ClearDirty();
  EXPECT_TRUE(graph.DirtyNodes().empty());
  EXPECT_FALSE(case_node.dirty);

  // Adjacency changes dirty both endpoints.
  EdgeId e = graph.AddEdge(case1, item);
  EXPECT_EQ(graph.DirtyNodes().size(), 2u);
  graph.ClearDirty();
  graph.RemoveEdge(e);
  EXPECT_EQ(graph.DirtyNodes().size(), 2u);
  graph.ClearDirty();

  // Losing the color at the epoch boundary dirties the node again: its
  // estimate flips from observed to inferred.
  graph.BeginEpoch(2);
  ASSERT_FALSE(graph.DirtyNodes().empty());
  EXPECT_EQ(graph.DirtyNodes()[0], case_node.self);

  // Re-dirtying an already-dirty node does not duplicate the entry.
  graph.MarkDirty(case_node);
  graph.MarkDirty(case_node);
  EXPECT_EQ(graph.DirtyNodes().size(), 1u);
}

TEST(GraphTest, RemoveNodeDirtiesFormerNeighbors) {
  Graph graph;
  graph.BeginEpoch(1);
  ObjectId pallet = Obj(PackagingLevel::kPallet, 1);
  ObjectId case1 = Obj(PackagingLevel::kCase, 2);
  ObjectId item = Obj(PackagingLevel::kItem, 3);
  graph.AddEdge(pallet, case1);
  graph.AddEdge(case1, item);
  graph.ClearDirty();
  graph.RemoveNode(case1);
  // Both ex-neighbors must be re-inferred: their adjacency changed. The
  // removed node's own slot may linger on the list; consumers skip dead
  // slots.
  std::vector<NodeId> alive_dirty;
  for (NodeId slot : graph.DirtyNodes()) {
    if (graph.NodeAlive(slot)) alive_dirty.push_back(slot);
  }
  ASSERT_EQ(alive_dirty.size(), 2u);
  std::sort(alive_dirty.begin(), alive_dirty.end());
  EXPECT_EQ(graph.NodeAt(alive_dirty[0])->id, pallet);
  EXPECT_EQ(graph.NodeAt(alive_dirty[1])->id, item);
}

TEST(GraphTest, MemoryUsageGrowsWithContent) {
  Graph graph;
  graph.BeginEpoch(1);
  std::size_t empty = graph.MemoryUsage();
  for (std::uint32_t i = 0; i < 100; ++i) {
    graph.GetOrCreateNode(Obj(PackagingLevel::kItem, i));
  }
  std::size_t with_nodes = graph.MemoryUsage();
  EXPECT_GT(with_nodes, empty);
  for (std::uint32_t i = 0; i < 99; ++i) {
    graph.AddEdge(Obj(PackagingLevel::kItem, i), Obj(PackagingLevel::kItem, i + 1));
  }
  EXPECT_GT(graph.MemoryUsage(), with_nodes);
}

// ------------------------------------------------- Update: steps 1 and 2 --

TEST_F(GraphUpdateTest, Step1CreatesAndColorsNodes) {
  updater_->BeginEpoch(1);
  ObjectId item = Obj(PackagingLevel::kItem, 1);
  UpdateStats stats = updater_->ApplyReaderBatch(Batch(0, {item}));
  EXPECT_EQ(stats.nodes_created, 1u);
  EXPECT_EQ(stats.readings, 1u);
  const Node* node = graph_.FindNode(item);
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(graph_.IsColored(*node));
  EXPECT_EQ(node->recent_color, dock_);
}

TEST_F(GraphUpdateTest, Step2ConnectsAdjacentLayersSameColor) {
  ObjectId item = Obj(PackagingLevel::kItem, 1);
  ObjectId case1 = Obj(PackagingLevel::kCase, 2);
  ObjectId case2 = Obj(PackagingLevel::kCase, 3);
  ObjectId pallet = Obj(PackagingLevel::kPallet, 4);
  updater_->BeginEpoch(1);
  UpdateStats stats =
      updater_->ApplyReaderBatch(Batch(0, {item, case1, case2, pallet}));
  // item <- case1, item <- case2, case1 <- pallet, case2 <- pallet.
  EXPECT_EQ(stats.edges_created, 4u);
  EXPECT_NE(graph_.FindEdge(case1, item), kNoEdge);
  EXPECT_NE(graph_.FindEdge(case2, item), kNoEdge);
  EXPECT_NE(graph_.FindEdge(pallet, case1), kNoEdge);
  EXPECT_NE(graph_.FindEdge(pallet, case2), kNoEdge);
  // No cross-layer pallet->item edge: the case layer was present.
  EXPECT_EQ(graph_.FindEdge(pallet, item), kNoEdge);
}

TEST_F(GraphUpdateTest, Step2CrossesLayersWhenMiddleEmpty) {
  ObjectId item = Obj(PackagingLevel::kItem, 1);
  ObjectId pallet = Obj(PackagingLevel::kPallet, 2);
  updater_->BeginEpoch(1);
  updater_->ApplyReaderBatch(Batch(0, {item, pallet}));
  // No case present: the edge may skip the case layer (Section III-A).
  EXPECT_NE(graph_.FindEdge(pallet, item), kNoEdge);
}

TEST_F(GraphUpdateTest, Step2OnlyForNewColors) {
  ObjectId item = Obj(PackagingLevel::kItem, 1);
  ObjectId case1 = Obj(PackagingLevel::kCase, 2);
  updater_->BeginEpoch(1);
  updater_->ApplyReaderBatch(Batch(0, {item, case1}));
  EXPECT_EQ(graph_.NumEdges(), 1u);
  graph_.RemoveEdge(graph_.FindEdge(case1, item));
  // Same color re-observed: no new color, no edge re-creation.
  updater_->BeginEpoch(2);
  UpdateStats stats = updater_->ApplyReaderBatch(Batch(0, {item, case1}));
  EXPECT_EQ(stats.edges_created, 0u);
  EXPECT_EQ(graph_.NumEdges(), 0u);
}

TEST_F(GraphUpdateTest, MovedNodeGetsNewColorAndEdges) {
  ObjectId item = Obj(PackagingLevel::kItem, 1);
  ObjectId case1 = Obj(PackagingLevel::kCase, 2);
  updater_->BeginEpoch(1);
  updater_->ApplyReaderBatch(Batch(1, {case1}));  // Case on the shelf.
  updater_->BeginEpoch(2);
  updater_->ApplyReaderBatch(Batch(1, {case1, item}));  // Item arrives.
  EXPECT_NE(graph_.FindEdge(case1, item), kNoEdge);
}

// ------------------------------------------------------- Update: step 3 ---

TEST_F(GraphUpdateTest, Step3DropsEdgeOnColorDivergence) {
  ObjectId item = Obj(PackagingLevel::kItem, 1);
  ObjectId case1 = Obj(PackagingLevel::kCase, 2);
  updater_->BeginEpoch(1);
  updater_->ApplyReaderBatch(Batch(0, {item, case1}));
  ASSERT_NE(graph_.FindEdge(case1, item), kNoEdge);
  // Next epoch the two objects appear in different locations.
  updater_->BeginEpoch(2);
  updater_->ApplyReaderBatch(Batch(0, {item}));
  UpdateStats stats = updater_->ApplyReaderBatch(Batch(1, {case1}));
  EXPECT_EQ(stats.edges_removed, 1u);
  EXPECT_EQ(graph_.FindEdge(case1, item), kNoEdge);
}

TEST_F(GraphUpdateTest, Step3KeepsEdgeWhenOtherEndUnobserved) {
  ObjectId item = Obj(PackagingLevel::kItem, 1);
  ObjectId case1 = Obj(PackagingLevel::kCase, 2);
  updater_->BeginEpoch(1);
  updater_->ApplyReaderBatch(Batch(0, {item, case1}));
  updater_->BeginEpoch(2);
  updater_->ApplyReaderBatch(Batch(0, {item}));  // Case missed.
  EXPECT_NE(graph_.FindEdge(case1, item), kNoEdge);
}

TEST_F(GraphUpdateTest, EdgeCreatedThisEpochSurvivesStep3) {
  // Fig. 4 line 15 guards removal with "created in a previous epoch".
  ObjectId item = Obj(PackagingLevel::kItem, 1);
  ObjectId case1 = Obj(PackagingLevel::kCase, 2);
  updater_->BeginEpoch(1);
  updater_->ApplyReaderBatch(Batch(0, {item, case1}));
  EXPECT_NE(graph_.FindEdge(case1, item), kNoEdge);
  EXPECT_EQ(graph_.NumEdges(), 1u);
}

// --------------------------------------- Update: belt confirmation (3&4) --

TEST_F(GraphUpdateTest, BeltConfirmsContainment) {
  ObjectId item = Obj(PackagingLevel::kItem, 1);
  ObjectId case1 = Obj(PackagingLevel::kCase, 2);
  updater_->BeginEpoch(1);
  UpdateStats stats = updater_->ApplyReaderBatch(Batch(2, {case1, item}));
  EXPECT_EQ(stats.confirmations, 1u);
  const Node* node = graph_.FindNode(item);
  EXPECT_EQ(node->confirmed.parent, case1);
  EXPECT_EQ(node->confirmed.confirmed_at, 1);
}

TEST_F(GraphUpdateTest, BeltDropsCompetingParentEdges) {
  ObjectId item = Obj(PackagingLevel::kItem, 1);
  ObjectId case1 = Obj(PackagingLevel::kCase, 2);
  ObjectId case2 = Obj(PackagingLevel::kCase, 3);
  updater_->BeginEpoch(1);
  updater_->ApplyReaderBatch(Batch(0, {item, case1, case2}));
  ASSERT_NE(graph_.FindEdge(case2, item), kNoEdge);
  // The belt scans case1 + item alone: case2's claim on the item dies.
  updater_->BeginEpoch(2);
  updater_->ApplyReaderBatch(Batch(2, {case1, item}));
  EXPECT_EQ(graph_.FindEdge(case2, item), kNoEdge);
  EXPECT_NE(graph_.FindEdge(case1, item), kNoEdge);
}

TEST_F(GraphUpdateTest, BeltDropsParentEdgesOfTopLevelContainer) {
  ObjectId case1 = Obj(PackagingLevel::kCase, 1);
  ObjectId pallet = Obj(PackagingLevel::kPallet, 2);
  updater_->BeginEpoch(1);
  updater_->ApplyReaderBatch(Batch(0, {case1, pallet}));
  ASSERT_NE(graph_.FindEdge(pallet, case1), kNoEdge);
  // The belt confirms case1 is top-level: its parent edge is dropped.
  updater_->BeginEpoch(2);
  updater_->ApplyReaderBatch(Batch(2, {case1}));
  EXPECT_EQ(graph_.FindEdge(pallet, case1), kNoEdge);
}

TEST_F(GraphUpdateTest, NoConfirmationWithTwoTopLevelObjects) {
  ObjectId case1 = Obj(PackagingLevel::kCase, 1);
  ObjectId case2 = Obj(PackagingLevel::kCase, 2);
  ObjectId item = Obj(PackagingLevel::kItem, 3);
  updater_->BeginEpoch(1);
  UpdateStats stats =
      updater_->ApplyReaderBatch(Batch(2, {case1, case2, item}));
  EXPECT_EQ(stats.confirmations, 0u);
  EXPECT_EQ(graph_.FindNode(item)->confirmed.parent, kNoObject);
}

TEST_F(GraphUpdateTest, NoConfirmationForItemsOnly) {
  ObjectId item = Obj(PackagingLevel::kItem, 1);
  updater_->BeginEpoch(1);
  UpdateStats stats = updater_->ApplyReaderBatch(Batch(2, {item}));
  EXPECT_EQ(stats.confirmations, 0u);
}

TEST_F(GraphUpdateTest, PalletScanConfirmsCasesButNotItems) {
  ObjectId pallet = Obj(PackagingLevel::kPallet, 1);
  ObjectId case1 = Obj(PackagingLevel::kCase, 2);
  ObjectId item = Obj(PackagingLevel::kItem, 3);
  updater_->BeginEpoch(1);
  updater_->ApplyReaderBatch(Batch(2, {pallet, case1, item}));
  EXPECT_EQ(graph_.FindNode(case1)->confirmed.parent, pallet);
  // The item's direct container is unknown from a pallet-level scan.
  EXPECT_EQ(graph_.FindNode(item)->confirmed.parent, kNoObject);
}

// ------------------------------------------------------- Update: step 4 ---

TEST_F(GraphUpdateTest, Step4RecordsColocationHistory) {
  ObjectId item = Obj(PackagingLevel::kItem, 1);
  ObjectId case1 = Obj(PackagingLevel::kCase, 2);
  updater_->BeginEpoch(1);
  updater_->ApplyReaderBatch(Batch(0, {item, case1}));
  EdgeId edge = graph_.FindEdge(case1, item);
  ASSERT_NE(edge, kNoEdge);
  EXPECT_EQ(graph_.edge(edge).recent_colocations.size(), 1);
  EXPECT_TRUE(graph_.edge(edge).recent_colocations.Get(0));

  updater_->BeginEpoch(2);
  updater_->ApplyReaderBatch(Batch(0, {item}));  // Case missed.
  EXPECT_EQ(graph_.edge(edge).recent_colocations.size(), 2);
  EXPECT_FALSE(graph_.edge(edge).recent_colocations.Get(0));
  EXPECT_TRUE(graph_.edge(edge).recent_colocations.Get(1));
}

TEST_F(GraphUpdateTest, Step4UpdatesEdgeOncePerEpoch) {
  ObjectId item = Obj(PackagingLevel::kItem, 1);
  ObjectId case1 = Obj(PackagingLevel::kCase, 2);
  updater_->BeginEpoch(1);
  updater_->ApplyReaderBatch(Batch(0, {item, case1}));
  EdgeId edge = graph_.FindEdge(case1, item);
  // Both endpoints colored: the edge is visited from the case (higher
  // layer) only, so exactly one observation was pushed.
  EXPECT_EQ(graph_.edge(edge).recent_colocations.size(), 1);
  EXPECT_EQ(graph_.edge(edge).update_time, 1);
}

TEST_F(GraphUpdateTest, ConflictsCountedAgainstConfirmation) {
  ObjectId item = Obj(PackagingLevel::kItem, 1);
  ObjectId case1 = Obj(PackagingLevel::kCase, 2);
  updater_->BeginEpoch(1);
  updater_->ApplyReaderBatch(Batch(2, {case1, item}));  // Confirmed.
  // Two epochs where only the item is read: the confirmed edge records
  // one-sided observations as conflicts.
  updater_->BeginEpoch(2);
  updater_->ApplyReaderBatch(Batch(0, {item}));
  updater_->BeginEpoch(3);
  UpdateStats stats = updater_->ApplyReaderBatch(Batch(0, {item}));
  EXPECT_EQ(stats.conflicts_recorded, 1u);
  const ConfirmedParent& confirmed = graph_.FindNode(item)->confirmed;
  EXPECT_EQ(confirmed.conflicts, 2);
  EXPECT_EQ(confirmed.observations, 2);
}

TEST_F(GraphUpdateTest, ReconfirmationResetsConflicts) {
  ObjectId item = Obj(PackagingLevel::kItem, 1);
  ObjectId case1 = Obj(PackagingLevel::kCase, 2);
  updater_->BeginEpoch(1);
  updater_->ApplyReaderBatch(Batch(2, {case1, item}));
  updater_->BeginEpoch(2);
  updater_->ApplyReaderBatch(Batch(0, {item}));  // One conflict.
  updater_->BeginEpoch(3);
  updater_->ApplyReaderBatch(Batch(2, {case1, item}));  // Re-confirmed.
  const ConfirmedParent& confirmed = graph_.FindNode(item)->confirmed;
  EXPECT_EQ(confirmed.conflicts, 0);
  EXPECT_EQ(confirmed.confirmed_at, 3);
}

// --------------------------------------------------------- Epoch driving --

TEST_F(GraphUpdateTest, ApplyEpochProcessesAllReaders) {
  ObjectId a = Obj(PackagingLevel::kItem, 1);
  ObjectId b = Obj(PackagingLevel::kItem, 2);
  EpochBatch batch;
  batch.epoch = 1;
  batch.per_reader.push_back(Batch(0, {a}));
  batch.per_reader.push_back(Batch(1, {b}));
  UpdateStats stats = updater_->ApplyEpoch(batch);
  EXPECT_EQ(stats.readings, 2u);
  EXPECT_EQ(graph_.NumNodes(), 2u);
  EXPECT_EQ(graph_.ColorOf(*graph_.FindNode(a)), dock_);
  EXPECT_EQ(graph_.ColorOf(*graph_.FindNode(b)), shelf_);
}

TEST_F(GraphUpdateTest, ExitReadingsCollected) {
  ObjectId a = Obj(PackagingLevel::kItem, 1);
  updater_->BeginEpoch(1);
  updater_->ApplyReaderBatch(Batch(3, {a}));
  ASSERT_EQ(updater_->exited_this_epoch().size(), 1u);
  EXPECT_EQ(updater_->exited_this_epoch()[0], a);
  updater_->BeginEpoch(2);
  EXPECT_TRUE(updater_->exited_this_epoch().empty());
}

TEST_F(GraphUpdateTest, UnknownReaderBatchIgnored) {
  updater_->BeginEpoch(1);
  UpdateStats stats =
      updater_->ApplyReaderBatch(Batch(42, {Obj(PackagingLevel::kItem, 1)}));
  EXPECT_EQ(stats.readings, 0u);
  EXPECT_EQ(graph_.NumNodes(), 0u);
}

TEST_F(GraphUpdateTest, IncrementalConsistencyAcrossReaderOrder) {
  // The update is incremental: reader order within an epoch must not change
  // the final node colors or the surviving edge set.
  ObjectId item = Obj(PackagingLevel::kItem, 1);
  ObjectId case1 = Obj(PackagingLevel::kCase, 2);

  Graph g1(8), g2(8);
  GraphUpdater u1(&g1, &registry_), u2(&g2, &registry_);
  // Seed both graphs with a co-located pair.
  for (GraphUpdater* u : {&u1, &u2}) {
    u->BeginEpoch(1);
    u->ApplyReaderBatch(Batch(0, {item, case1}));
  }
  // Epoch 2: item at dock, case at shelf — in both reader orders.
  u1.BeginEpoch(2);
  u1.ApplyReaderBatch(Batch(0, {item}));
  u1.ApplyReaderBatch(Batch(1, {case1}));
  u2.BeginEpoch(2);
  u2.ApplyReaderBatch(Batch(1, {case1}));
  u2.ApplyReaderBatch(Batch(0, {item}));

  EXPECT_EQ(g1.FindEdge(case1, item), kNoEdge);
  EXPECT_EQ(g2.FindEdge(case1, item), kNoEdge);
  EXPECT_EQ(g1.ColorOf(*g1.FindNode(item)), g2.ColorOf(*g2.FindNode(item)));
  EXPECT_EQ(g1.ColorOf(*g1.FindNode(case1)),
            g2.ColorOf(*g2.FindNode(case1)));
}

}  // namespace
}  // namespace spire
