// Epoch-scoped tracing: scoped-span timers emitted as Chrome trace_event
// JSON, loadable in Perfetto / chrome://tracing (DESIGN.md §9).
//
// One process-wide Tracer buffers complete ("ph":"X") events while a
// session is active; Stop() writes the whole buffer as one JSON file.
// Spans are recorded with RAII:
//
//   { obs::ScopedSpan span("pipeline", "graph_update", epoch); ... }
//
// When no session is active the constructor reads one atomic flag and does
// nothing else — span names must therefore be string literals so a disabled
// span costs no allocation. Thread ids are small dense integers assigned on
// first use, which keeps Perfetto's track names stable across runs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace spire::obs {

/// One recorded event. `ts_us`/`dur_us` are microseconds relative to the
/// session start; `epoch` < 0 means "no epoch argument". `phase` is the
/// Chrome trace_event ph: 'X' complete spans (the ScopedSpan output), or
/// 'b'/'e' async begin/end pairs correlated by `async_id` across threads
/// and — after merge-traces — across processes (the cross-node handoff
/// spans of dist/node.cc).
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  int tid = 0;
  std::int64_t epoch = -1;
  char phase = 'X';
  std::uint64_t async_id = 0;
};

/// The process-wide span collector. Thread-safe.
class Tracer {
 public:
  static Tracer& Global();

  /// Begins a session that will be written to `path` on Stop(). Fails when
  /// a session is already active.
  Status Start(const std::string& path);

  bool active() const { return active_.load(std::memory_order_acquire); }

  /// Ends the session and writes the buffered events as Chrome trace JSON
  /// ({"traceEvents":[...]}); clears the buffer. No-op when inactive.
  Status Stop();

  /// Records one completed span (called by ScopedSpan's destructor).
  void Record(const char* category, const char* name,
              std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end, std::int64_t epoch);

  /// Records one async begin ('b') or end ('e') instant at now. The
  /// (category, id) pair correlates begin with end; ids must be unique per
  /// category within a fleet run (dist uses the global hop index). No-op
  /// when inactive.
  void RecordAsync(const char* category, const char* name, char phase,
                   std::uint64_t id, std::int64_t epoch);

  /// Labels this process's row in a merged fleet timeline (written into
  /// the "spire" metadata block; merge-traces turns it into a Perfetto
  /// process_name). Applies to the current session only — Start() resets
  /// it.
  void SetProcessLabel(const std::string& label);

  /// Offset (microseconds) translating this process's steady clock onto
  /// the fleet coordinator's: the node-side estimate from the ClockSync
  /// Hello exchange (dist/node.cc). merge-traces adds origin + offset to
  /// every timestamp, so per-node files line up on one timeline. Start()
  /// resets it to 0.
  void SetClockOffsetMicros(std::int64_t offset_us);

  /// The buffered events rendered as trace JSON (tests; Stop() writes the
  /// same shape): {"traceEvents":[..],"spire":{"origin_us":..,
  /// "offset_us":..,"process":".."}}. The "spire" block carries the
  /// steady-clock session origin, the fleet clock offset, and the process
  /// label; Perfetto ignores the unknown key, merge-traces consumes it.
  std::string ToJson() const;

  std::size_t num_events() const;

 private:
  void AppendJson(std::ostream& out) const;  // Requires mutex_ held.

  std::atomic<bool> active_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::string path_;
  std::chrono::steady_clock::time_point origin_;
  std::string process_label_;
  std::int64_t clock_offset_us_ = 0;
};

/// RAII span: times its scope and records into the global tracer. All
/// constructor arguments must outlive the span (string literals).
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name, std::int64_t epoch = -1)
      : category_(category),
        name_(name),
        epoch_(epoch),
        armed_(Tracer::Global().active()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (armed_) {
      Tracer::Global().Record(category_, name_, start_,
                              std::chrono::steady_clock::now(), epoch_);
    }
  }

 private:
  const char* category_;
  const char* name_;
  std::int64_t epoch_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace spire::obs
