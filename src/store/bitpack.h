// Bit-packed integer columns for the archive's codec 1 (BlockCodec::kBitpack).
//
// A column of n 64-bit values is split into miniblocks of 128 values (the
// SIMD-BP128 idiom of Lemire/Boytsov, "Decoding billions of integers per
// second through vectorization"): each miniblock stores one width byte b,
// then its values packed LSB-first into ceil(m*b/8) bytes. The width is the
// *minimal* width of the miniblock (some value uses bit b-1; b = 0 iff all
// values are zero), and unused bits of the final packed byte are zero — so,
// like the canonical-varint rule, every byte sequence has at most one
// decoding and the fuzz oracles can demand byte-identical re-encodes.
//
// Decoding reads the bit stream through unaligned 64-bit loads (memcpy, so
// ASan/UBSan stay clean on any alignment and the loop auto-vectorizes
// instead of chasing per-byte continuation branches the way varint decode
// must). Loads may run up to 8 bytes past the last packed byte; codec-1
// payloads therefore end with kBitpackPadBytes zero bytes (enforced by the
// block decoder) so every load stays inside the payload — which is what
// makes decoding straight out of an mmapped segment safe.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/status.h"

namespace spire {

/// Values per miniblock; a multiple of every SIMD lane count that matters.
inline constexpr std::size_t kMiniblockValues = 128;

/// Zero bytes every codec-1 payload carries at its end so word-wise decode
/// loads never leave the payload.
inline constexpr std::size_t kBitpackPadBytes = 8;

namespace bitpack_internal {

inline std::uint64_t LoadWord(const std::uint8_t* p) {
  std::uint64_t word;
  std::memcpy(&word, p, sizeof(word));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  word = __builtin_bswap64(word);
#endif
  return word;
}

inline constexpr std::uint64_t Mask(unsigned width) {
  return width >= 64 ? ~0ull : (1ull << width) - 1;
}

}  // namespace bitpack_internal

/// Appends `values[0, n)` as bit-packed miniblocks. The caller owns column
/// framing (n is not stored) and the trailing payload pad.
inline void PackColumn(const std::uint64_t* values, std::size_t n,
                       std::vector<std::uint8_t>* out) {
  for (std::size_t first = 0; first < n; first += kMiniblockValues) {
    const std::size_t m = std::min(kMiniblockValues, n - first);
    std::uint64_t ored = 0;
    for (std::size_t i = 0; i < m; ++i) ored |= values[first + i];
    const unsigned width = static_cast<unsigned>(std::bit_width(ored));
    out->push_back(static_cast<std::uint8_t>(width));

    std::uint64_t acc = 0;
    unsigned bits = 0;
    for (std::size_t i = 0; i < m; ++i) {
      acc |= values[first + i] << bits;
      const unsigned total = bits + width;
      if (total >= 64) {
        for (int k = 0; k < 8; ++k) {
          out->push_back(static_cast<std::uint8_t>(acc));
          acc >>= 8;
        }
        acc = bits == 0 ? 0 : values[first + i] >> (64 - bits);
        bits = total - 64;
      } else {
        bits = total;
      }
    }
    while (bits > 0) {
      out->push_back(static_cast<std::uint8_t>(acc));
      acc >>= 8;
      bits -= bits < 8 ? bits : 8;
    }
  }
}

/// Decodes `n` values from the miniblocks starting at `in[*offset]`,
/// advancing `*offset` past them. `in[0, size)` must retain at least
/// kBitpackPadBytes readable bytes after the packed data (the payload pad).
/// Strict: rejects truncation, a non-minimal width byte, and nonzero bits
/// in the unused tail of a miniblock's final byte.
inline Status UnpackColumn(const std::uint8_t* in, std::size_t size,
                           std::size_t* offset, std::size_t n,
                           std::uint64_t* out) {
  using bitpack_internal::LoadWord;
  using bitpack_internal::Mask;
  for (std::size_t first = 0; first < n; first += kMiniblockValues) {
    const std::size_t m = std::min(kMiniblockValues, n - first);
    if (*offset >= size) return Status::Corruption("truncated bitpack column");
    const unsigned width = in[(*offset)++];
    if (width > 64) return Status::Corruption("bitpack width exceeds 64");
    const std::size_t packed_bytes = (m * width + 7) / 8;
    // The +kBitpackPadBytes keeps every 64-bit load below inside `in`.
    if (*offset + packed_bytes + kBitpackPadBytes > size) {
      return Status::Corruption("truncated bitpack miniblock");
    }
    const std::uint8_t* base = in + *offset;
    std::uint64_t ored = 0;
    if (width == 0) {
      for (std::size_t i = 0; i < m; ++i) out[first + i] = 0;
    } else if (width <= 57) {
      // One load per value: shift-in (<= 7) plus width (<= 57) fits a word.
      const std::uint64_t mask = Mask(width);
      std::size_t bit = 0;
      for (std::size_t i = 0; i < m; ++i) {
        const std::uint64_t value =
            (LoadWord(base + (bit >> 3)) >> (bit & 7)) & mask;
        out[first + i] = value;
        ored |= value;
        bit += width;
      }
    } else {
      const std::uint64_t mask = Mask(width);
      std::size_t bit = 0;
      for (std::size_t i = 0; i < m; ++i) {
        std::uint64_t value = LoadWord(base + (bit >> 3)) >> (bit & 7);
        const unsigned got = 64 - (bit & 7);
        if (got < width) {
          value |= static_cast<std::uint64_t>(base[(bit >> 3) + 8]) << got;
        }
        value &= mask;
        out[first + i] = value;
        ored |= value;
        bit += width;
      }
    }
    if (width > 0 &&
        static_cast<unsigned>(std::bit_width(ored)) != width) {
      return Status::Corruption("non-minimal bitpack width");
    }
    const std::size_t used_bits = m * width;
    if (used_bits % 8 != 0 &&
        (base[packed_bytes - 1] >> (used_bits % 8)) != 0) {
      return Status::Corruption("nonzero bits in bitpack tail byte");
    }
    *offset += packed_bytes;
  }
  return Status::OK();
}

/// Advances `*offset` past `n` packed values without decoding them (column
/// skip: one width-byte read per 128 values). Length-checked only.
inline Status SkipColumn(const std::uint8_t* in, std::size_t size,
                         std::size_t* offset, std::size_t n) {
  for (std::size_t first = 0; first < n; first += kMiniblockValues) {
    const std::size_t m = std::min(kMiniblockValues, n - first);
    if (*offset >= size) return Status::Corruption("truncated bitpack column");
    const unsigned width = in[(*offset)++];
    if (width > 64) return Status::Corruption("bitpack width exceeds 64");
    const std::size_t packed_bytes = (m * width + 7) / 8;
    if (*offset + packed_bytes + kBitpackPadBytes > size) {
      return Status::Corruption("truncated bitpack miniblock");
    }
    *offset += packed_bytes;
  }
  return Status::OK();
}

}  // namespace spire
