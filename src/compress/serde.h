// Binary serialization of compressed event streams.
//
// The on-the-wire message layout (kEventWireBytes = 26 bytes, see
// common/wire.h):
//
//   offset  size  field
//   0       1     message type (EventType)
//   1       12    object EPC (96-bit: 4 zero bytes + the 64-bit compact id)
//   13      8     target: container EPC compact id, or location id zero-
//                 padded, or the Missing message's locationMissingFrom
//   21      4     timestamp: V_s for Start*/Missing, V_e for End*
//   25      1     flags (bit 0: the target is a container)
//
// Exactly as in the paper's stream model, a Start* message carries only V_s
// (V_e is implicitly infinity) and an End* message carries only V_e — the
// decoder reconstructs the matching V_s by tracking open events, so decoding
// is stateful and the stream must be well-formed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "compress/event.h"

namespace spire {

/// Serializes events into a byte buffer. Stateless; append-only.
class EventEncoder {
 public:
  /// Appends one message (kEventWireBytes bytes) to `out`. Fails on events
  /// that cannot be represented (negative or > 32-bit timestamps).
  static Status Encode(const Event& event, std::vector<std::uint8_t>* out);

  /// Appends a whole stream.
  static Status EncodeStream(const EventStream& stream,
                             std::vector<std::uint8_t>* out);
};

/// Reconstructs events from bytes. Stateful: End* messages recover their
/// V_s from the open event they close, so feed messages in stream order.
class EventDecoder {
 public:
  /// Decodes exactly `bytes.size() / kEventWireBytes` messages; fails on a
  /// partial record, an unknown message type, or an End* without a
  /// matching open event.
  Result<EventStream> DecodeStream(const std::vector<std::uint8_t>& bytes);

  /// Decodes a single record starting at `offset`.
  Result<Event> DecodeOne(const std::vector<std::uint8_t>& bytes,
                          std::size_t offset);

 private:
  /// Open (object, is-containment) interval starts for V_s reconstruction.
  std::map<std::pair<ObjectId, bool>, Epoch> open_;
};

/// Writes a stream as an event file: kEventFileMagic ("SPEV"), u16 version,
/// u64 record count (version >= 2), then the 26-byte records. The count
/// makes truncation at a record boundary detectable on read.
Status WriteEventFile(const std::string& path, const EventStream& events);

/// Reads an event file written by WriteEventFile (current or legacy
/// version). Every malformed input yields a descriptive non-OK Status.
Result<EventStream> ReadEventFile(const std::string& path);

}  // namespace spire
