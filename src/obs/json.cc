#include "obs/json.h"

#include <cctype>
#include <sstream>

namespace spire::obs {

namespace {

/// Recursive-descent parser over one string_view. Depth-limited so a
/// corrupt file cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    auto value = ParseValue(0);
    if (!value.ok()) return value.status();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status::Corruption("json: " + message + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return value;
    for (;;) {
      SkipWhitespace();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      auto member = ParseValue(depth + 1);
      if (!member.ok()) return member.status();
      value.object.emplace_back(std::move(key.value().text),
                                std::move(member).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return value;
    for (;;) {
      auto element = ParseValue(depth + 1);
      if (!element.ok()) return element.status();
      value.array.push_back(std::move(element).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    JsonValue value;
    value.type = JsonValue::Type::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        value.text.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': value.text.push_back('"'); break;
        case '\\': value.text.push_back('\\'); break;
        case '/': value.text.push_back('/'); break;
        case 'b': value.text.push_back('\b'); break;
        case 'f': value.text.push_back('\f'); break;
        case 'n': value.text.push_back('\n'); break;
        case 'r': value.text.push_back('\r'); break;
        case 't': value.text.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return Error("bad \\u escape");
            }
          }
          // The checkers only need validity, not codepoint decoding: keep
          // the escape verbatim so serialization reproduces it.
          value.text.append("\\u");
          value.text.append(text_.substr(pos_, 4));
          pos_ += 4;
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    if (!ConsumeDigits()) return Error("expected digits in number");
    if (Consume('.')) {
      if (!ConsumeDigits()) return Error("expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!ConsumeDigits()) return Error("expected exponent digits");
    }
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.text = std::string(text_.substr(start, pos_ - start));
    return value;
  }

  bool ConsumeDigits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    return pos_ > start;
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.type = JsonValue::Type::kBool;
    if (text_.substr(pos_, 4) == "true") {
      value.bool_value = true;
      pos_ += 4;
      return value;
    }
    if (text_.substr(pos_, 5) == "false") {
      value.bool_value = false;
      pos_ += 5;
      return value;
    }
    return Error("expected 'true' or 'false'");
  }

  Result<JsonValue> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue{};
    }
    return Error("expected 'null'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void EscapeInto(std::ostream& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
}

void SerializeInto(std::ostream& out, const JsonValue& value) {
  switch (value.type) {
    case JsonValue::Type::kNull:
      out << "null";
      break;
    case JsonValue::Type::kBool:
      out << (value.bool_value ? "true" : "false");
      break;
    case JsonValue::Type::kNumber:
      out << value.text;
      break;
    case JsonValue::Type::kString:
      out << '"';
      EscapeInto(out, value.text);
      out << '"';
      break;
    case JsonValue::Type::kArray: {
      out << '[';
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        if (i > 0) out << ',';
        SerializeInto(out, value.array[i]);
      }
      out << ']';
      break;
    }
    case JsonValue::Type::kObject: {
      out << '{';
      for (std::size_t i = 0; i < value.object.size(); ++i) {
        if (i > 0) out << ',';
        out << '"';
        EscapeInto(out, value.object[i].first);
        out << "\":";
        SerializeInto(out, value.object[i].second);
      }
      out << '}';
      break;
    }
  }
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, member] : object) {
    if (name == key) return &member;
  }
  return nullptr;
}

std::string JsonValue::Serialize() const {
  std::ostringstream out;
  SerializeInto(out, *this);
  return out.str();
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace spire::obs
