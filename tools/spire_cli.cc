// spire_cli — offline driver for the SPIRE substrate.
//
//   spire_cli generate   out=trace.sptr deployment=dep.txt [truth=t.spev]
//                        [any SimConfig key=value]
//   spire_cli process    in=trace.sptr deployment=dep.txt out=events.spev
//                        [level=1|2] [beta=..] [gamma=..] [theta=..]
//   spire_cli decompress in=level2.spev out=level1.spev
//   spire_cli validate   in=events.spev
//   spire_cli stats      in=events.spev
//   spire_cli query      in=events.spev epoch=<t> [object=<id>]
//                        [decompress=true]
//   spire_cli archive    in=events.spev out=events.sparc [block=<events>]
//   spire_cli scan       in=events.sparc [from=<t>] [to=<t>] [object=<id>]
//                        [out=subset.spev]
//   spire_cli compact    in=events.sparc out=packed.sparc [block=<events>]
//   spire_cli serve      in=<t1,t2,..> deployment=<d1,d2,..> out=events.spev
//                        [shards=N] [queue=C] [level=1|2] [--stats]
//                        [stats_out=metrics.json]
//   spire_cli serve      sites=N seed=S out=events.spev [shards=N] [...]
//
// `serve` runs the concurrent sharded serving layer (src/serve): one SPIRE
// pipeline per site on N worker shards with an ordered merge. Sites come
// either from per-site trace/deployment file pairs (comma-separated, same
// count) or from the differential-checking trace generator (`sites=N`
// expands seeds S..S+N-1). `--stats` dumps the runtime metrics registry as
// JSON on stdout at shutdown.
//
// Trace files use the binary format of stream/trace_io.h; event files are
// "SPEV" + u16 version + u64 record count + the 26-byte records of
// compress/serde.h; archives are the segmented block format of
// store/format.h with a ".spix" index sidecar.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/trace_gen.h"
#include "common/config.h"
#include "compress/decompress.h"
#include "compress/fold.h"
#include "compress/serde.h"
#include "compress/well_formed.h"
#include "query/event_log.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "sim/simulator.h"
#include "spire/pipeline.h"
#include "store/archive_reader.h"
#include "store/archive_writer.h"
#include "store/segment.h"
#include "stream/deployment.h"
#include "stream/trace_io.h"

using namespace spire;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int FailText(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

Status SaveLines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  for (const std::string& line : lines) out << line << "\n";
  return out.good() ? Status::OK() : Status::Internal("write failed: " + path);
}

Result<std::vector<std::string>> LoadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------- generate

int RunGenerate(const Config& args) {
  auto out_path = args.GetString("out", "").value_or("");
  auto deployment_path = args.GetString("deployment", "").value_or("");
  if (out_path.empty() || deployment_path.empty()) {
    return FailText("generate needs out=<trace> deployment=<file>");
  }
  auto sim_config = SimConfig::FromConfig(args);
  if (!sim_config.ok()) return Fail(sim_config.status());
  auto sim = WarehouseSimulator::Create(sim_config.value());
  if (!sim.ok()) return Fail(sim.status());
  WarehouseSimulator& s = *sim.value();

  std::ofstream out(out_path, std::ios::binary);
  if (!out) return FailText("cannot open for writing: " + out_path);
  TraceWriter writer(&out);
  Status status = writer.WriteHeader();
  if (!status.ok()) return Fail(status);
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    status = writer.WriteEpoch(s.current_epoch(), readings);
    if (!status.ok()) return Fail(status);
  }
  s.FinishTruth();

  status = SaveLines(deployment_path, SerializeDeployment(s.registry()));
  if (!status.ok()) return Fail(status);

  auto truth_path = args.GetString("truth", "").value_or("");
  if (!truth_path.empty()) {
    status = WriteEventFile(truth_path, s.truth_events());
    if (!status.ok()) return Fail(status);
  }
  std::printf("wrote %zu readings over %lld epochs to %s\n",
              s.total_readings(),
              static_cast<long long>(s.current_epoch() + 1), out_path.c_str());
  return 0;
}

// ----------------------------------------------------------------- process

int RunProcess(const Config& args) {
  auto in_path = args.GetString("in", "").value_or("");
  auto deployment_path = args.GetString("deployment", "").value_or("");
  auto out_path = args.GetString("out", "").value_or("");
  if (in_path.empty() || deployment_path.empty() || out_path.empty()) {
    return FailText("process needs in=<trace> deployment=<file> out=<events>");
  }
  auto lines = LoadLines(deployment_path);
  if (!lines.ok()) return Fail(lines.status());
  auto registry = ParseDeployment(lines.value());
  if (!registry.ok()) return Fail(registry.status());

  PipelineOptions options;
  options.level = args.GetInt("level", 2).value_or(2) == 1
                      ? CompressionLevel::kLevel1
                      : CompressionLevel::kLevel2;
  options.inference.beta =
      args.GetDouble("beta", options.inference.beta).value_or(0.4);
  options.inference.gamma =
      args.GetDouble("gamma", options.inference.gamma).value_or(0.45);
  options.inference.theta =
      args.GetDouble("theta", options.inference.theta).value_or(1.25);
  SpirePipeline pipeline(&registry.value(), options);

  std::ifstream in(in_path, std::ios::binary);
  if (!in) return FailText("cannot open: " + in_path);
  TraceReader reader(&in);
  Status status = reader.ReadHeader();
  if (!status.ok()) return Fail(status);

  EventStream events;
  Epoch epoch = kNeverEpoch;
  Epoch last = kNeverEpoch;
  EpochReadings readings;
  std::size_t total_readings = 0;
  for (;;) {
    auto more = reader.NextEpoch(&epoch, &readings);
    if (!more.ok()) return Fail(more.status());
    if (!more.value()) break;
    total_readings += readings.size();
    pipeline.ProcessEpoch(epoch, std::move(readings), &events);
    last = epoch;
  }
  pipeline.Finish(last + 1, &events);

  status = WriteEventFile(out_path, events);
  if (!status.ok()) return Fail(status);
  std::printf("processed %zu readings -> %zu events (level %d), "
              "compression ratio %.4f\n",
              total_readings, events.size(),
              options.level == CompressionLevel::kLevel1 ? 1 : 2,
              total_readings == 0
                  ? 0.0
                  : static_cast<double>(events.size() * kEventWireBytes) /
                        static_cast<double>(total_readings *
                                            kReadingWireBytes));
  return 0;
}

// ------------------------------------------------------- small subcommands

int RunDecompress(const Config& args) {
  auto in_path = args.GetString("in", "").value_or("");
  auto out_path = args.GetString("out", "").value_or("");
  if (in_path.empty() || out_path.empty()) {
    return FailText("decompress needs in=<events> out=<events>");
  }
  auto events = ReadEventFile(in_path);
  if (!events.ok()) return Fail(events.status());
  EventStream level1 = Decompressor::DecompressAll(events.value());
  Status status = WriteEventFile(out_path, level1);
  if (!status.ok()) return Fail(status);
  std::printf("decompressed %zu -> %zu events\n", events.value().size(),
              level1.size());
  return 0;
}

int RunValidate(const Config& args) {
  auto in_path = args.GetString("in", "").value_or("");
  if (in_path.empty()) return FailText("validate needs in=<events>");
  auto events = ReadEventFile(in_path);
  if (!events.ok()) return Fail(events.status());
  Status status =
      ValidateWellFormed(events.value(), /*allow_open_at_end=*/true);
  if (!status.ok()) return Fail(status);
  std::printf("%zu events, well-formed\n", events.value().size());
  return 0;
}

int RunStats(const Config& args) {
  auto in_path = args.GetString("in", "").value_or("");
  if (in_path.empty()) return FailText("stats needs in=<events>");
  auto events = ReadEventFile(in_path);
  if (!events.ok()) return Fail(events.status());
  auto log = EventLog::Build(events.value());
  if (!log.ok()) return Fail(log.status());
  std::size_t counts[5] = {};
  for (const Event& event : events.value()) {
    ++counts[static_cast<int>(event.type)];
  }
  std::printf("events: %zu (%zu bytes on the wire)\n", events.value().size(),
              WireBytes(events.value()));
  for (int type = 0; type < 5; ++type) {
    std::printf("  %-16s %zu\n", ToString(static_cast<EventType>(type)),
                counts[type]);
  }
  std::printf("objects: %zu, epochs [%lld, %lld], missing reports: %zu\n",
              log.value().num_objects(),
              static_cast<long long>(log.value().first_epoch()),
              static_cast<long long>(log.value().last_epoch()),
              log.value().MissingReports().size());
  return 0;
}

int RunQuery(const Config& args) {
  auto in_path = args.GetString("in", "").value_or("");
  if (in_path.empty()) return FailText("query needs in=<events> epoch=<t>");
  auto events = ReadEventFile(in_path);
  if (!events.ok()) return Fail(events.status());
  bool decompress = args.GetBool("decompress", false).value_or(false);
  auto log = EventLog::Build(events.value(), decompress);
  if (!log.ok()) return Fail(log.status());
  Epoch epoch = args.GetInt("epoch", 0).value_or(0);
  auto object_arg = args.GetInt("object", -1).value_or(-1);
  if (object_arg >= 0) {
    ObjectId object = static_cast<ObjectId>(object_arg);
    LocationId location = log.value().LocationAt(object, epoch);
    ObjectId container = log.value().ContainerAt(object, epoch);
    std::printf("%s @ t=%lld: location=%d container=%s missing=%s\n",
                EpcToString(object).c_str(), static_cast<long long>(epoch),
                static_cast<int>(location),
                container == kNoObject ? "none"
                                       : EpcToString(container).c_str(),
                log.value().IsMissingAt(object, epoch) ? "yes" : "no");
    return 0;
  }
  // No object: summarize the world at the epoch.
  std::size_t located = 0;
  for (const auto& event : FoldEvents(events.value())) {
    if (event.type == EventType::kStartLocation && event.start <= epoch &&
        epoch < event.end) {
      ++located;
    }
  }
  std::printf("t=%lld: %zu objects at known locations\n",
              static_cast<long long>(epoch), located);
  return 0;
}

// ------------------------------------------------------- archive commands

int RunArchive(const Config& args) {
  auto in_path = args.GetString("in", "").value_or("");
  auto out_path = args.GetString("out", "").value_or("");
  if (in_path.empty() || out_path.empty()) {
    return FailText("archive needs in=<events> out=<archive>");
  }
  auto events = ReadEventFile(in_path);
  if (!events.ok()) return Fail(events.status());

  ArchiveOptions options;
  options.block_events = static_cast<std::size_t>(
      args.GetInt("block", static_cast<std::int64_t>(options.block_events))
          .value_or(4096));
  auto writer = ArchiveWriter::Open(out_path, options);
  if (!writer.ok()) return Fail(writer.status());
  ArchiveWriter& w = *writer.value();
  if (w.recovery().recovered_events > 0 || w.recovery().truncated_bytes > 0) {
    std::printf("recovered %llu events in %zu blocks (truncated %llu torn "
                "bytes); appending\n",
                static_cast<unsigned long long>(w.recovery().recovered_events),
                w.recovery().recovered_blocks,
                static_cast<unsigned long long>(w.recovery().truncated_bytes));
  }
  Status status = w.Append(events.value());
  if (!status.ok()) return Fail(status);
  status = w.Close();
  if (!status.ok()) return Fail(status);

  const std::size_t flat_bytes = WireBytes(events.value());
  std::printf("archived %llu events in %zu blocks, %llu bytes "
              "(flat SPEV records: %zu bytes, %.1f%%)\n",
              static_cast<unsigned long long>(w.events_written()),
              w.num_blocks(),
              static_cast<unsigned long long>(w.segment_bytes()), flat_bytes,
              flat_bytes == 0 ? 0.0
                              : 100.0 * static_cast<double>(w.segment_bytes()) /
                                    static_cast<double>(flat_bytes));
  return 0;
}

int RunScan(const Config& args) {
  auto in_path = args.GetString("in", "").value_or("");
  if (in_path.empty()) return FailText("scan needs in=<archive>");
  auto reader = ArchiveReader::Open(in_path);
  if (!reader.ok()) return Fail(reader.status());
  const ArchiveReader& r = reader.value();
  if (r.index_rebuilt()) {
    std::printf("index sidecar missing or stale; directory rebuilt by scan\n");
  }

  const Epoch from = args.GetInt("from", 0).value_or(0);
  const Epoch to = args.GetInt("to", kInfiniteEpoch).value_or(kInfiniteEpoch);
  const auto object_arg = args.GetInt("object", -1).value_or(-1);
  const bool ranged = from != 0 || to != kInfiniteEpoch;

  Result<EventStream> scanned = Status::Internal("unreachable");
  std::size_t blocks_decoded = 0;
  if (object_arg >= 0) {
    scanned = r.ScanObject(static_cast<ObjectId>(object_arg));
    blocks_decoded = r.BlocksForObject(static_cast<ObjectId>(object_arg));
    if (scanned.ok() && ranged) {
      std::erase_if(scanned.value(), [&](const Event& event) {
        const Epoch primary = (event.type == EventType::kEndLocation ||
                               event.type == EventType::kEndContainment)
                                  ? event.end
                                  : event.start;
        return primary < from || primary > to;
      });
    }
  } else if (ranged) {
    scanned = r.ScanRange(from, to);
    blocks_decoded = r.BlocksInRange(from, to);
  } else {
    scanned = r.ScanAll();
    blocks_decoded = r.num_blocks();
  }
  if (!scanned.ok()) return Fail(scanned.status());

  std::printf("%zu events from %zu of %zu blocks (%llu events total)\n",
              scanned.value().size(), blocks_decoded, r.num_blocks(),
              static_cast<unsigned long long>(r.num_events()));

  auto out_path = args.GetString("out", "").value_or("");
  if (!out_path.empty()) {
    // Restricted selections can open with unmatched End messages; repair
    // them so the flat file decodes standalone.
    Status status =
        WriteEventFile(out_path, RepairRestrictedStream(scanned.value()));
    if (!status.ok()) return Fail(status);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int RunCompact(const Config& args) {
  auto in_path = args.GetString("in", "").value_or("");
  auto out_path = args.GetString("out", "").value_or("");
  if (in_path.empty() || out_path.empty() || in_path == out_path) {
    return FailText("compact needs distinct in=<archive> out=<archive>");
  }
  auto reader = ArchiveReader::Open(in_path);
  if (!reader.ok()) return Fail(reader.status());
  auto events = reader.value().ScanAll();
  if (!events.ok()) return Fail(events.status());

  std::error_code ec;
  std::filesystem::remove(out_path, ec);
  std::filesystem::remove(IndexPathFor(out_path), ec);
  ArchiveOptions options;
  options.block_events = static_cast<std::size_t>(
      args.GetInt("block", static_cast<std::int64_t>(options.block_events))
          .value_or(4096));
  auto writer = ArchiveWriter::Open(out_path, options);
  if (!writer.ok()) return Fail(writer.status());
  Status status = writer.value()->Append(events.value());
  if (!status.ok()) return Fail(status);
  status = writer.value()->Close();
  if (!status.ok()) return Fail(status);

  std::printf("compacted %zu blocks (%llu bytes) -> %zu blocks (%llu bytes), "
              "%zu events\n",
              reader.value().num_blocks(),
              static_cast<unsigned long long>(reader.value().segment_bytes()),
              writer.value()->num_blocks(),
              static_cast<unsigned long long>(writer.value()->segment_bytes()),
              events.value().size());
  return 0;
}

// --------------------------------------------------------------- serve

std::vector<std::string> SplitCommaList(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t from = 0;
  while (from <= text.size()) {
    const std::size_t comma = text.find(',', from);
    if (comma == std::string::npos) {
      if (from < text.size()) parts.push_back(text.substr(from));
      break;
    }
    if (comma > from) parts.push_back(text.substr(from, comma - from));
    from = comma + 1;
  }
  return parts;
}

/// Reads one (trace, deployment) pair into a site, indexing readings by
/// epoch (trace files may skip silent epochs).
Result<serve::SiteWorkload> LoadSite(const std::string& trace_path,
                                     const std::string& deployment_path) {
  serve::SiteWorkload site;
  site.name = trace_path;
  auto lines = LoadLines(deployment_path);
  if (!lines.ok()) return lines.status();
  auto registry = ParseDeployment(lines.value());
  if (!registry.ok()) return registry.status();
  site.registry = std::move(registry).value();

  std::ifstream in(trace_path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + trace_path);
  TraceReader reader(&in);
  SPIRE_RETURN_NOT_OK(reader.ReadHeader());
  Epoch epoch = kNeverEpoch;
  EpochReadings readings;
  for (;;) {
    auto more = reader.NextEpoch(&epoch, &readings);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    if (epoch < 0) return Status::Corruption("negative epoch in " + trace_path);
    if (static_cast<std::size_t>(epoch) >= site.epochs.size()) {
      site.epochs.resize(static_cast<std::size_t>(epoch) + 1);
    }
    site.epochs[static_cast<std::size_t>(epoch)] = std::move(readings);
  }
  return site;
}

/// Builds the workload from file pairs or fuzz seeds (see usage).
Result<serve::Workload> BuildServeWorkload(const Config& args) {
  serve::Workload workload;
  auto in_list = SplitCommaList(args.GetString("in", "").value_or(""));
  auto dep_list =
      SplitCommaList(args.GetString("deployment", "").value_or(""));
  const auto num_sites = args.GetInt("sites", 0).value_or(0);
  if (!in_list.empty()) {
    if (in_list.size() != dep_list.size()) {
      return Status::InvalidArgument(
          "serve needs one deployment per trace (got " +
          std::to_string(in_list.size()) + " traces, " +
          std::to_string(dep_list.size()) + " deployments)");
    }
    for (std::size_t i = 0; i < in_list.size(); ++i) {
      auto site = LoadSite(in_list[i], dep_list[i]);
      if (!site.ok()) return site.status();
      workload.sites.push_back(std::move(site).value());
    }
  } else if (num_sites > 0) {
    const auto seed = args.GetInt("seed", 1).value_or(1);
    for (std::int64_t i = 0; i < num_sites; ++i) {
      FuzzCase fuzz_case =
          CaseFromSeed(static_cast<std::uint64_t>(seed + i));
      auto trace = GenerateTrace(fuzz_case);
      if (!trace.ok()) return trace.status();
      serve::SiteWorkload site;
      site.name = "fuzz-seed-" + std::to_string(seed + i);
      site.registry = std::move(trace.value().registry);
      site.epochs = std::move(trace.value().epochs);
      workload.sites.push_back(std::move(site));
    }
  } else {
    return Status::InvalidArgument(
        "serve needs in=<t1,t2,..> deployment=<d1,d2,..> or sites=N seed=S");
  }
  SPIRE_RETURN_NOT_OK(serve::NormalizeWorkload(&workload));
  return workload;
}

int RunServe(const Config& args) {
  auto out_path = args.GetString("out", "").value_or("");
  if (out_path.empty()) return FailText("serve needs out=<events>");
  auto workload = BuildServeWorkload(args);
  if (!workload.ok()) return Fail(workload.status());

  serve::ServeOptions options;
  options.num_shards =
      static_cast<int>(args.GetInt("shards", 1).value_or(1));
  options.queue_capacity = static_cast<std::size_t>(
      args.GetInt("queue", 64).value_or(64));
  options.pipeline.level = args.GetInt("level", 2).value_or(2) == 1
                               ? CompressionLevel::kLevel1
                               : CompressionLevel::kLevel2;

  serve::SpireServer server(&workload.value(), options);
  serve::ServeResult result = server.Run();
  if (!result.status.ok()) return Fail(result.status);

  Status status = WriteEventFile(out_path, result.events);
  if (!status.ok()) return Fail(status);

  std::size_t total_readings = 0;
  for (const auto& site : workload.value().sites) {
    total_readings += site.total_readings;
  }
  std::printf("served %zu site(s) on %d shard(s): %zu readings over %lld "
              "epochs -> %zu events in %.3fs (%.0f epochs/s)\n",
              workload.value().sites.size(), options.num_shards,
              total_readings,
              static_cast<long long>(result.epochs_processed),
              result.events.size(), result.wall_seconds,
              result.wall_seconds > 0.0
                  ? static_cast<double>(result.epochs_processed) /
                        result.wall_seconds
                  : 0.0);

  const bool stats = args.GetBool("stats", false).value_or(false);
  auto stats_out = args.GetString("stats_out", "").value_or("");
  if (stats || !stats_out.empty()) {
    const std::string json = server.MetricsJson();
    if (stats) std::printf("%s\n", json.c_str());
    if (!stats_out.empty()) {
      std::ofstream stats_file(stats_out);
      if (!stats_file) return FailText("cannot open: " + stats_out);
      stats_file << json << "\n";
      if (!stats_file.good()) return FailText("write failed: " + stats_out);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s generate|process|decompress|validate|stats|query|"
                 "archive|scan|compact|serve [key=value ...]\n",
                 argv[0]);
    return 1;
  }
  std::string command = argv[1];
  // `--stats` is sugar for `stats=true` (the one flag-style option).
  std::vector<std::string> arg_strings;
  for (int i = 1; i < argc; ++i) {
    arg_strings.push_back(std::strcmp(argv[i], "--stats") == 0 ? "stats=true"
                                                               : argv[i]);
  }
  std::vector<const char*> arg_ptrs;
  for (const std::string& arg : arg_strings) arg_ptrs.push_back(arg.c_str());
  auto args = Config::FromArgs(static_cast<int>(arg_ptrs.size()),
                               arg_ptrs.data());
  if (!args.ok()) return Fail(args.status());
  if (command == "generate") return RunGenerate(args.value());
  if (command == "process") return RunProcess(args.value());
  if (command == "decompress") return RunDecompress(args.value());
  if (command == "validate") return RunValidate(args.value());
  if (command == "stats") return RunStats(args.value());
  if (command == "query") return RunQuery(args.value());
  if (command == "archive") return RunArchive(args.value());
  if (command == "scan") return RunScan(args.value());
  if (command == "compact") return RunCompact(args.value());
  if (command == "serve") return RunServe(args.value());
  return FailText("unknown command: " + command);
}
