// spire_fuzz — seeded property-based differential checking of the SPIRE
// substrate (src/check).
//
//   spire_fuzz --seeds <N|corpus-file> [--start-seed S] [--budget 30s]
//              [--out-dir DIR] [--min-cases N] [--shrink-attempts N]
//              [--no-shrink] [--max-failures N]
//   spire_fuzz --replay <repro-file>
//
// Each seed expands into a deterministic random warehouse trace which is
// run through the pipeline at compression levels 1 and 2 and judged by the
// oracle battery of check/oracles.h: well-formedness, level-2 -> level-1
// recovery, archive and SPEV round-trips, and bit-exact determinism. On a
// violation the trace is minimized (epochs, then tags) and a replayable
// repro file is archived; the repro path is printed to stdout. Exit code 0
// iff every oracle stayed green.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "check/oracles.h"
#include "check/repro.h"
#include "check/trace_gen.h"
#include "compress/decompress.h"

using namespace spire;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: spire_fuzz --seeds <N|corpus-file> [--start-seed S]\n"
      "                  [--budget 30s] [--out-dir DIR] [--min-cases N]\n"
      "                  [--shrink-attempts N] [--no-shrink]\n"
      "                  [--max-failures N]\n"
      "       spire_fuzz --replay <repro-file>\n");
  return 2;
}

/// Parses "30", "30s", "2m" into seconds; negative on error.
double ParseBudget(const std::string& text) {
  if (text.empty()) return -1.0;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value < 0.0) return -1.0;
  if (*end == '\0' || std::strcmp(end, "s") == 0) return value;
  if (std::strcmp(end, "m") == 0) return value * 60.0;
  if (std::strcmp(end, "h") == 0) return value * 3600.0;
  return -1.0;
}

/// `--seeds` accepts a count (expanded from --start-seed) or a corpus file
/// with one seed per line ('#' comments).
bool LoadSeeds(const std::string& spec, std::uint64_t start_seed,
               std::vector<std::uint64_t>* seeds) {
  char* end = nullptr;
  const std::uint64_t count = std::strtoull(spec.c_str(), &end, 10);
  if (end != spec.c_str() && *end == '\0') {
    for (std::uint64_t i = 0; i < count; ++i) {
      seeds->push_back(start_seed + i);
    }
    return true;
  }
  std::ifstream in(spec);
  if (!in) {
    std::fprintf(stderr, "error: cannot open seed corpus: %s\n", spec.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t from = line.find_first_not_of(" \t");
    if (from == std::string::npos || line[from] == '#') continue;
    seeds->push_back(std::strtoull(line.c_str() + from, nullptr, 0));
  }
  return true;
}

void DumpStream(const char* name, const EventStream& stream) {
  std::printf("--- %s (%zu events) ---\n", name, stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    std::printf("  [%3zu] %s\n", i, stream[i].ToString().c_str());
  }
}

int RunReplay(const std::string& path, bool dump) {
  auto fuzz_case = LoadReproFile(path);
  if (!fuzz_case.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 fuzz_case.status().ToString().c_str());
    return 2;
  }
  std::printf("replaying %s: %lld epochs, seed %llu, %zu excluded tag(s)\n",
              path.c_str(),
              static_cast<long long>(fuzz_case.value().EffectiveEpochs()),
              static_cast<unsigned long long>(fuzz_case.value().sim.seed),
              fuzz_case.value().excluded_tags.size());
  if (dump) {
    auto trace = GenerateTrace(fuzz_case.value());
    if (!trace.ok()) {
      std::fprintf(stderr, "error: %s\n", trace.status().ToString().c_str());
      return 2;
    }
    EventStream level1 =
        RunPipelineOnTrace(trace.value(), CompressionLevel::kLevel1);
    EventStream level2 =
        RunPipelineOnTrace(trace.value(), CompressionLevel::kLevel2);
    DumpStream("level1", level1);
    DumpStream("level2", level2);
    DumpStream("decompress(level2)", Decompressor::DecompressAll(level2));
  }
  DifferentialChecker checker;
  CheckStats stats;
  auto failure = checker.Check(fuzz_case.value(), &stats);
  const auto seed =
      static_cast<unsigned long long>(fuzz_case.value().sim.seed);
  if (failure) {
    // Name the oracle and the seed in the exit message itself, so a replay
    // failure is actionable without re-running under --dump.
    std::printf("%s\n", failure->detail.c_str());
    std::printf("replay FAILED: oracle '%s' violated (seed %llu, %lld "
                "epochs, %zu excluded tags) — re-run with --dump for the "
                "full streams\n",
                failure->oracle.c_str(), seed,
                static_cast<long long>(fuzz_case.value().EffectiveEpochs()),
                fuzz_case.value().excluded_tags.size());
    return 1;
  }
  std::printf("replay OK: all oracles green for seed %llu (%zu pipeline "
              "traces) — repro is fixed\n",
              seed, stats.traces_run);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string seeds_spec;
  std::string replay_path;
  bool dump = false;
  FuzzOptions options;
  options.repro_dir = "fuzz-repros";
  std::uint64_t start_seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* value = next();
      if (value == nullptr) return Usage();
      seeds_spec = value;
    } else if (arg == "--replay") {
      const char* value = next();
      if (value == nullptr) return Usage();
      replay_path = value;
    } else if (arg == "--start-seed") {
      const char* value = next();
      if (value == nullptr) return Usage();
      start_seed = std::strtoull(value, nullptr, 0);
    } else if (arg == "--budget") {
      const char* value = next();
      if (value == nullptr) return Usage();
      options.budget_seconds = ParseBudget(value);
      if (options.budget_seconds < 0.0) return Usage();
    } else if (arg == "--out-dir") {
      const char* value = next();
      if (value == nullptr) return Usage();
      options.repro_dir = value;
    } else if (arg == "--min-cases") {
      const char* value = next();
      if (value == nullptr) return Usage();
      options.min_cases = std::strtoull(value, nullptr, 10);
    } else if (arg == "--shrink-attempts") {
      const char* value = next();
      if (value == nullptr) return Usage();
      options.shrink_attempts = std::atoi(value);
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--no-shrink") {
      options.shrink_attempts = 0;
    } else if (arg == "--max-failures") {
      const char* value = next();
      if (value == nullptr) return Usage();
      options.max_failures = std::strtoull(value, nullptr, 10);
    } else {
      std::fprintf(stderr, "error: unknown argument: %s\n", arg.c_str());
      return Usage();
    }
  }

  if (!replay_path.empty()) return RunReplay(replay_path, dump);
  if (seeds_spec.empty()) return Usage();
  if (!LoadSeeds(seeds_spec, start_seed, &options.seeds)) return 2;
  if (options.seeds.empty()) {
    std::fprintf(stderr, "error: empty seed corpus\n");
    return 2;
  }

  DifferentialChecker checker;
  FuzzStats stats = Fuzz(options, checker, stdout);
  return stats.failures == 0 ? 0 : 1;
}
