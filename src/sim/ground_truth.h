// Ground-truth event recording.
//
// The F-measure evaluation (Expt 7) compares SPIRE's output against "a
// compressed event stream of the ground truth". GroundTruthRecorder builds
// exactly that: the true per-epoch states are fed through a level-1 range
// compressor, so the reference stream contains one ranged event per true
// state change (plus Missing singletons for thefts).
#pragma once

#include <set>
#include <vector>

#include "compress/compressor.h"
#include "compress/event.h"
#include "sim/world.h"

namespace spire {

/// Records the ground-truth event stream from world snapshots.
class GroundTruthRecorder {
 public:
  GroundTruthRecorder() = default;

  /// Full diff: reports the state of every alive object (ascending id) and
  /// retires objects that disappeared. O(world size) per call; the reference
  /// implementation used in tests.
  void Observe(const PhysicalWorld& world, Epoch epoch);

  /// Incremental diff: reports only the given (possibly duplicated) ids.
  /// Ids no longer in the world are retired. The simulator calls this with
  /// the set of objects it touched in the epoch.
  void ObserveTouched(const PhysicalWorld& world,
                      const std::vector<ObjectId>& touched, Epoch epoch);

  /// Retires one object (proper exit) at `epoch`.
  void Retire(ObjectId id, Epoch epoch);

  /// Closes all open events.
  void Finish(Epoch epoch);

  /// The recorded ground-truth stream so far.
  const EventStream& events() const { return events_; }

 private:
  void ReportOne(const PhysicalWorld& world, ObjectId id, Epoch epoch);

  RangeCompressor compressor_;
  EventStream events_;
  std::set<ObjectId> known_;
};

}  // namespace spire
