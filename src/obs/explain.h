// The inference explain channel (DESIGN.md §9).
//
// When a pipeline has an ExplainLog attached, every event it emits gets a
// provenance record — the triggering epoch, whether complete or partial
// inference produced it, the inference iteration (wave) count, and the
// winning posterior vs. its runner-up — and every level-2 location update
// it *suppresses* gets a suppression record naming the covering
// containment. Records are queryable offline (`spire_cli explain
// <event-id>` over the `.spexp` sidecar written by `spire_cli run
// explain_out=`) and checked online by the explain-consistency fuzz oracle
// (src/check).
//
// This header deliberately depends only on common/ types: event fields are
// carried as plain ids plus a type name, so obs sits below compress in the
// module graph.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace spire::obs {

/// Provenance of one emitted event. `id` is the event's index in the
/// output stream the pipeline appended to.
struct EventProvenance {
  std::uint64_t id = 0;
  std::string type;  ///< Event type name ("StartLocation", ...).
  ObjectId object = kNoObject;
  LocationId location = kUnknownLocation;
  ObjectId container = kNoObject;
  Epoch start = kNeverEpoch;
  Epoch end = kNeverEpoch;

  /// The epoch whose processing emitted the event.
  Epoch epoch = kNeverEpoch;
  /// True when complete inference ran that epoch, false for partial.
  bool complete_inference = false;
  /// BFS waves the inference pass committed (0 for non-inference stages).
  int inference_waves = 0;
  /// Posterior of the winning location/container choice and its runner-up
  /// (0 when the stage carries no posterior, e.g. retire/finish closes).
  double winner_posterior = 0.0;
  double runner_up_posterior = 0.0;
  /// Pipeline stage that emitted the event: "report" (regular per-epoch
  /// output), "exit" (object retired at an exit door this epoch), or
  /// "finish" (end-of-stream closes).
  std::string stage;
};

/// One suppressed level-2 location update: the object's location at `epoch`
/// was absorbed by derivation from `covering_container`'s events.
struct SuppressionRecord {
  ObjectId object = kNoObject;
  Epoch epoch = kNeverEpoch;
  ObjectId covering_container = kNoObject;
  std::string reason;  ///< "contained" for level-2 derivation.
};

/// One complex-event pattern detection (src/cep): which binding matched,
/// the witness epoch per positive step, and the ids of the compressed
/// stream events that support the match (so `spire_cli explain` can chain
/// a detection back to its provenance records).
struct MatchRecord {
  std::string pattern;
  std::vector<std::string> variables;  ///< Pattern variables, in order.
  std::vector<ObjectId> binding;       ///< Parallel to `variables`.
  std::vector<Epoch> step_epochs;      ///< One per positive step.
  Epoch completion = kNeverEpoch;
  std::vector<std::uint64_t> event_ids;  ///< Supporting event ids.
};

/// Collects provenance for one pipeline. Not thread-safe: each pipeline is
/// single-threaded and owns (at most) one log.
class ExplainLog {
 public:
  void RecordEvent(EventProvenance record) {
    events_.push_back(std::move(record));
  }
  void RecordSuppressed(ObjectId object, Epoch epoch,
                        ObjectId covering_container, std::string reason) {
    suppressions_.push_back(
        {object, epoch, covering_container, std::move(reason)});
  }
  void RecordMatch(MatchRecord record) {
    matches_.push_back(std::move(record));
  }

  const std::vector<EventProvenance>& events() const { return events_; }
  const std::vector<SuppressionRecord>& suppressions() const {
    return suppressions_;
  }
  const std::vector<MatchRecord>& matches() const { return matches_; }

  void Clear() {
    events_.clear();
    suppressions_.clear();
    matches_.clear();
  }

  /// Writes the log as JSON lines: one {"kind":"event",...} object per
  /// provenance record, one {"kind":"suppressed",...} per suppression, and
  /// one {"kind":"match",...} per pattern detection, in that order.
  /// `spire_cli explain` scans this file by id.
  Status WriteJsonl(const std::string& path) const;

  /// One provenance record rendered as its JSONL line (tests + CLI).
  static std::string ToJsonLine(const EventProvenance& record);
  static std::string ToJsonLine(const SuppressionRecord& record);
  static std::string ToJsonLine(const MatchRecord& record);

 private:
  std::vector<EventProvenance> events_;
  std::vector<SuppressionRecord> suppressions_;
  std::vector<MatchRecord> matches_;
};

}  // namespace spire::obs
