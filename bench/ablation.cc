// Ablation study of the design choices DESIGN.md calls out: conflict
// resolution (Table I), the partial/complete inference schedule (Section
// IV-D), containment-based color propagation (gamma), opportunity-
// normalized fading ages, edge pruning, and adaptive beta. Each row removes
// one mechanism from the full system and reports accuracy, output quality,
// and inference cost on the same trace.
//
//   ./ablation [full=true] [key=value ...]
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "eval/table.h"

using namespace spire;
using namespace spire::bench;

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  bool full = args.GetBool("full", false).value_or(false);
  SimConfig sim = SweepConfig(full);
  sim.read_rate = 0.7;  // Noisy enough that every mechanism matters.
  sim.theft_interval = 200;
  auto overridden = SimConfig::FromConfig(args, sim);
  if (overridden.ok()) sim = overridden.value();

  PrintHeader("Ablation: removing one mechanism at a time",
              "design choices of Sections IV-B/C/D/E (DESIGN.md)");

  struct Variant {
    std::string name;
    std::function<void(PipelineOptions*)> tweak;
  };
  const std::vector<Variant> variants = {
      {"full system", [](PipelineOptions*) {}},
      {"no conflict resolution",
       [](PipelineOptions* o) { o->resolve_conflicts = false; }},
      {"no partial inference",
       [](PipelineOptions* o) {
         o->inference_mode = InferenceMode::kCompleteOnly;
       }},
      {"always-complete inference",
       [](PipelineOptions* o) {
         o->inference_mode = InferenceMode::kAlwaysComplete;
       }},
      {"no color propagation (gamma=0)",
       [](PipelineOptions* o) { o->inference.gamma = 0.0; }},
      {"raw-epoch fading ages",
       [](PipelineOptions* o) {
         o->inference.normalize_age_by_reader_period = false;
       }},
      {"no edge pruning",
       [](PipelineOptions* o) { o->inference.prune_threshold = 0.0; }},
      {"adaptive beta",
       [](PipelineOptions* o) { o->inference.adaptive_beta = true; }},
  };

  TextTable table({"variant", "loc err", "cont err", "loc F", "delay (s)",
                   "events", "inference s"});
  for (const Variant& variant : variants) {
    RunOptions options;
    options.sim = sim;
    variant.tweak(&options.pipeline);
    RunMetrics metrics = RunSpireTrace(options);
    table.AddRow({variant.name,
                  TextTable::Num(metrics.accuracy.LocationErrorRate(), 4),
                  TextTable::Num(metrics.accuracy.ContainmentErrorRate(), 4),
                  TextTable::Num(metrics.f_location.FMeasure(), 4),
                  TextTable::Num(metrics.delay.mean_delay, 0),
                  std::to_string(metrics.output_events),
                  TextTable::Num(metrics.inference_seconds, 3)});
  }
  table.Print();
  std::printf("\n(read rate %.2f, thefts every %llds; level-2 output)\n",
              sim.read_rate, static_cast<long long>(sim.theft_interval));
  return 0;
}
