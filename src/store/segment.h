// Segment-file scanning and the index sidecar (shared by ArchiveWriter's
// crash recovery and ArchiveReader's open path).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/format.h"

namespace spire {

/// Everything the directory knows about one segment: the validated block
/// directory, per-object posting lists of block indexes, and how far the
/// valid prefix reaches.
struct SegmentInfo {
  /// Segment format version (kArchiveVersionV1 or kArchiveVersion); decides
  /// the block-header layout.
  std::uint16_t version = kArchiveVersion;
  std::vector<BlockMeta> blocks;
  std::map<ObjectId, std::vector<std::uint32_t>> postings;
  /// Blocks holding location-kind events (Start/EndLocation, Missing) at a
  /// location, keyed by `event.location` — the ObjectsAt pruning index.
  std::map<LocationId, std::vector<std::uint32_t>> location_postings;
  /// Blocks holding containment events inside a container, keyed by
  /// `event.container` (the child posts under `postings`) — the ContentsAt
  /// pruning index.
  std::map<ObjectId, std::vector<std::uint32_t>> container_postings;
  std::uint64_t events = 0;
  /// Bytes of the valid prefix (file header + every block that validates).
  std::uint64_t valid_bytes = 0;
  /// Actual on-disk size; > valid_bytes exactly when the tail is torn.
  std::uint64_t file_bytes = 0;
};

/// Scans a segment file front to back, validating every block's header
/// (marker, CRC, codec id, epoch-range sanity) and payload (CRC, decode,
/// and that the header's min/max epochs are exactly the decoded events'
/// primary-timestamp bounds), and decoding payloads to build the posting
/// lists. Stops at the first block that fails validation (the torn tail) —
/// that is the recovery rule, not an error. Fails only when the file cannot
/// be opened or its 8-byte file header is not a SPIRE archive of a
/// supported version.
Result<SegmentInfo> ScanSegment(const std::string& path);

/// Appends block `block_index`'s events to every posting list they belong
/// on (object, location, container). Shared by ScanSegment and
/// ArchiveWriter::SealBlock so both build identical indexes.
void AddBlockPostings(const EventStream& block_events,
                      std::uint32_t block_index, SegmentInfo* info);

/// Path of the index sidecar: `<segment_path>.spix` (sparkey-style pair).
std::string IndexPathFor(const std::string& segment_path);

/// Writes the sidecar for a segment whose valid prefix is
/// `info.valid_bytes` bytes. Reads the segment's last block header back to
/// record the tail fingerprint that ties the sidecar to this exact prefix.
Status WriteIndexFile(const std::string& segment_path, const SegmentInfo& info);

/// Reads the sidecar back. Fails when it is missing or malformed, when it
/// covers a different byte count than `segment_bytes` (stale after a crash
/// or an unclosed append session — including a segment *shrunk* below the
/// covered bytes by post-crash logical truncation), or when the segment's
/// last block header no longer matches the recorded tail fingerprint (a
/// same-size segment with different contents, e.g. truncated and
/// re-appended). Callers then fall back to ScanSegment.
Result<SegmentInfo> ReadIndexFile(const std::string& segment_path,
                                  std::uint64_t segment_bytes);

}  // namespace spire
