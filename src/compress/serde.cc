#include "compress/serde.h"

#include <cstring>
#include <fstream>
#include <limits>

#include "common/wire.h"

namespace spire {

namespace {

constexpr std::uint8_t kContainerFlag = 0x01;

void PutU64(std::uint64_t value, std::vector<std::uint8_t>* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void PutU32(std::uint32_t value, std::vector<std::uint8_t>* out) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out->push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value = value << 8 | p[i];
  return value;
}

std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value = value << 8 | p[i];
  return value;
}

bool FitsTimestamp(Epoch epoch) {
  return epoch >= 0 && epoch <= std::numeric_limits<std::uint32_t>::max();
}

}  // namespace

Status EventEncoder::Encode(const Event& event,
                            std::vector<std::uint8_t>* out) {
  const bool is_containment = IsContainmentEvent(event.type);
  const Epoch timestamp = (event.type == EventType::kEndLocation ||
                           event.type == EventType::kEndContainment)
                              ? event.end
                              : event.start;
  if (!FitsTimestamp(timestamp)) {
    return Status::InvalidArgument("event timestamp exceeds 32 bits: " +
                                   event.ToString());
  }
  out->reserve(out->size() + kEventWireBytes);
  out->push_back(static_cast<std::uint8_t>(event.type));
  // 96-bit EPC: four leading zero bytes, then the compact 64-bit id.
  PutU32(0, out);
  PutU64(event.object, out);
  if (is_containment) {
    PutU64(event.container, out);
  } else {
    PutU64(static_cast<std::uint64_t>(event.location), out);
  }
  PutU32(static_cast<std::uint32_t>(timestamp), out);
  out->push_back(is_containment ? kContainerFlag : 0);
  return Status::OK();
}

Status EventEncoder::EncodeStream(const EventStream& stream,
                                  std::vector<std::uint8_t>* out) {
  out->reserve(out->size() + stream.size() * kEventWireBytes);
  for (const Event& event : stream) {
    SPIRE_RETURN_NOT_OK(Encode(event, out));
  }
  return Status::OK();
}

Result<Event> EventDecoder::DecodeOne(const std::vector<std::uint8_t>& bytes,
                                      std::size_t offset) {
  if (offset + kEventWireBytes > bytes.size()) {
    return Status::Corruption("truncated event record");
  }
  const std::uint8_t* p = bytes.data() + offset;
  if (p[0] > static_cast<std::uint8_t>(EventType::kMissing)) {
    return Status::Corruption("unknown event type byte");
  }
  Event event;
  event.type = static_cast<EventType>(p[0]);
  if (GetU32(p + 1) != 0) {
    return Status::Corruption("nonzero EPC header bytes");
  }
  event.object = GetU64(p + 5);
  const std::uint64_t target = GetU64(p + 13);
  const Epoch timestamp = static_cast<Epoch>(GetU32(p + 21));
  if ((p[25] & ~kContainerFlag) != 0) {
    return Status::Corruption("unknown flag bits set");
  }
  const bool container_flag = (p[25] & kContainerFlag) != 0;
  if (container_flag != IsContainmentEvent(event.type)) {
    return Status::Corruption("container flag inconsistent with type");
  }

  const bool is_containment = IsContainmentEvent(event.type);
  if (is_containment) {
    event.container = target;
  } else {
    if (target > std::numeric_limits<LocationId>::max()) {
      return Status::Corruption("location id out of range");
    }
    event.location = static_cast<LocationId>(target);
  }

  switch (event.type) {
    case EventType::kStartLocation:
    case EventType::kStartContainment: {
      event.start = timestamp;
      event.end = kInfiniteEpoch;
      open_[{event.object, is_containment}] = timestamp;
      break;
    }
    case EventType::kEndLocation:
    case EventType::kEndContainment: {
      auto it = open_.find({event.object, is_containment});
      if (it == open_.end()) {
        return Status::Corruption("End message without a matching open event");
      }
      event.start = it->second;
      event.end = timestamp;
      open_.erase(it);
      break;
    }
    case EventType::kMissing:
      event.start = timestamp;
      event.end = timestamp;
      break;
  }
  return event;
}

Status WriteEventFile(const std::string& path, const EventStream& events) {
  std::vector<std::uint8_t> bytes;
  for (std::size_t i = 0; i < kMagicBytes; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(kEventFileMagic[i]));
  }
  bytes.push_back(static_cast<std::uint8_t>(kEventFileVersion >> 8));
  bytes.push_back(static_cast<std::uint8_t>(kEventFileVersion & 0xff));
  // Version 2: a record count, so truncation at a record boundary — which
  // the fixed-size records alone cannot reveal — is detected on read.
  PutU64(events.size(), &bytes);
  SPIRE_RETURN_NOT_OK(EventEncoder::EncodeStream(events, &bytes));
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<EventStream> ReadEventFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  char header[kMagicBytes + 2] = {};
  in.read(header, sizeof(header));
  if (!in.good() ||
      std::memcmp(header, kEventFileMagic, kMagicBytes) != 0) {
    return Status::Corruption("not a SPIRE event file: " + path);
  }
  std::uint16_t version = static_cast<std::uint16_t>(
      static_cast<std::uint8_t>(header[4]) << 8 |
      static_cast<std::uint8_t>(header[5]));
  if (version != kEventFileVersion && version != kEventFileLegacyVersion) {
    return Status::NotSupported("unsupported event-file version " +
                                std::to_string(version) + ": " + path);
  }
  std::uint64_t expected_records = 0;
  if (version == kEventFileVersion) {
    std::uint8_t count[8] = {};
    in.read(reinterpret_cast<char*>(count), sizeof(count));
    if (!in.good()) {
      return Status::Corruption("event-file header truncated: " + path);
    }
    expected_records = GetU64(count);
  }
  std::vector<std::uint8_t> records(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (version == kEventFileVersion &&
      (records.size() % kEventWireBytes != 0 ||
       records.size() / kEventWireBytes != expected_records)) {
    return Status::Corruption(
        "event file truncated: header promises " +
        std::to_string(expected_records) + " records, found " +
        std::to_string(records.size()) + " bytes: " + path);
  }
  EventDecoder decoder;
  return decoder.DecodeStream(records);
}

Result<EventStream> EventDecoder::DecodeStream(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() % kEventWireBytes != 0) {
    return Status::Corruption("byte count is not a multiple of the record size");
  }
  EventStream stream;
  stream.reserve(bytes.size() / kEventWireBytes);
  for (std::size_t offset = 0; offset < bytes.size();
       offset += kEventWireBytes) {
    auto event = DecodeOne(bytes, offset);
    if (!event.ok()) return event.status();
    stream.push_back(event.value());
  }
  return stream;
}

}  // namespace spire
