// Per-object inference state shipped with a cross-site transfer.
//
// When the simulator moves an object out-belt@A -> entry-door@B, site A's
// pipeline retires it exactly like an exit-door sighting — but first
// captures the state below, which site B splices in before the arrival
// epoch. The captured pieces are precisely the per-object inputs the
// interpretation layer reads: the graph node's (seen_at, confirmed parent),
// the containment edges *within the departing group* (evidence binding the
// object to anything left behind dies with the departure), and the
// incremental-inference cache entry + fade-wheel deadline. Locations are
// site-local ids, so the cached estimate travels with its location
// scrubbed; the destination recomputes it on the first complete pass after
// the splice (the implanted node is always marked dirty).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "inference/estimate.h"

namespace spire {

/// One containment edge captured with a departing object; `parent` departs
/// in the same hop. The co-location history ships as its visible window
/// (ShiftRegister::Window/size), which restores a register
/// indistinguishable from the source.
struct HandoffEdge {
  ObjectId parent = kNoObject;
  std::uint64_t colocation_window = 0;
  int colocation_count = 0;
  Epoch update_time = kNeverEpoch;
  Epoch created_at = kNeverEpoch;

  bool operator==(const HandoffEdge&) const = default;
};

/// Everything the destination pipeline needs to splice one object in.
struct ObjectHandoff {
  ObjectId object = kNoObject;
  /// Node state: last-sighting epoch and the confirmed containment.
  Epoch seen_at = kNeverEpoch;
  ConfirmedParent confirmed;
  /// Edges to parents departing in the same hop, sorted by parent id.
  std::vector<HandoffEdge> parent_edges;
  /// Cached complete-pass estimate (location scrubbed — site-local) and
  /// the node's scheduled fade-flip deadline. has_estimate is false when
  /// the source held no valid cache entry for the node.
  bool has_estimate = false;
  ObjectEstimate estimate;
  Epoch fade_deadline = kNeverEpoch;

  bool operator==(const ObjectHandoff&) const = default;
};

}  // namespace spire
