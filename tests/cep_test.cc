// Tests for the complex-event pattern subsystem (src/cep): parser
// round-trips and rejections, Compile's structural validation and NFA
// layout, negation-window edge cases on hand-built streams (both
// evaluators must agree everywhere), the built-in scenario library, and
// explain provenance on a simulated level-2 trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "cep/compressed_log.h"
#include "cep/library.h"
#include "cep/nfa.h"
#include "cep/pattern.h"
#include "common/epc.h"
#include "obs/explain.h"
#include "query/event_log.h"
#include "sim/simulator.h"
#include "spire/pipeline.h"

namespace spire {
namespace {

ObjectId Obj(PackagingLevel level, std::uint32_t serial) {
  EpcFields fields;
  fields.level = level;
  fields.serial = serial;
  return EncodeEpcUnchecked(fields);
}

const ObjectId kX = Obj(PackagingLevel::kItem, 1);
const ObjectId kY = Obj(PackagingLevel::kItem, 2);
const ObjectId kCase = Obj(PackagingLevel::kCase, 3);
const ObjectId kPallet = Obj(PackagingLevel::kPallet, 4);

/// Parses + compiles (null registry: numeric locations only), runs both
/// evaluators over the stream, asserts they agree, returns the matches.
std::vector<cep::Match> RunBoth(const std::string& text,
                                const EventStream& stream) {
  auto pattern = cep::ParsePattern(text);
  EXPECT_TRUE(pattern.ok()) << pattern.status().ToString();
  if (!pattern.ok()) return {};
  auto compiled = cep::Compile(pattern.value(), nullptr);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  if (!compiled.ok()) return {};
  auto naive_log = EventLog::Build(stream, /*decompress=*/true);
  auto interval_log = cep::CompressedLog::Build(stream);
  EXPECT_TRUE(naive_log.ok() && interval_log.ok());
  if (!naive_log.ok() || !interval_log.ok()) return {};
  const cep::EvalBounds bounds = cep::BoundsOf(stream);
  auto interval =
      cep::EvaluateCompressed(compiled.value(), &interval_log.value(), bounds);
  auto naive = cep::EvaluateNaive(compiled.value(), naive_log.value(), bounds);
  EXPECT_EQ(cep::DiffMatchSets(interval, naive, "interval", "naive"), "")
      << text;
  return interval;
}

std::vector<Epoch> Completions(const std::vector<cep::Match>& matches) {
  std::vector<Epoch> out;
  for (const cep::Match& match : matches) out.push_back(match.completion);
  std::sort(out.begin(), out.end());
  return out;
}

// --- Parser ----------------------------------------------------------------

TEST(CepParser, RoundTripsTheGrammar) {
  const std::vector<std::string> expressions = {
      "Missing(x)",
      "At(x, 4)",
      "SEQ(At(x, entry_door), !At(x, receiving_belt) WITHIN 50, "
      "At(x, exit_door))",
      "SEQ(Contains(p, c), At(p, exit_door), !At(c, exit_door) WITHIN 60)",
      "SEQ(At(x, shelf_*), Missing(x) WITHIN 150, At(x, shelf_*) WITHIN 150, "
      "Missing(x) WITHIN 150)",
      "SEQ(In(c, p), !Missing(c) WITHIN 10, At(c, 7))",
  };
  for (const std::string& text : expressions) {
    auto parsed = cep::ParsePattern(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    auto reparsed = cep::ParsePattern(parsed.value().ToString());
    ASSERT_TRUE(reparsed.ok()) << parsed.value().ToString();
    EXPECT_EQ(parsed.value(), reparsed.value()) << text;
  }
}

TEST(CepParser, ParsesStepStructure) {
  auto parsed = cep::ParsePattern(
      "SEQ(At(x, entry_door), !At(x, receiving_belt) WITHIN 50, "
      "At(x, exit_door))");
  ASSERT_TRUE(parsed.ok());
  const cep::Pattern& pattern = parsed.value();
  ASSERT_EQ(pattern.steps.size(), 3u);
  EXPECT_FALSE(pattern.steps[0].negated);
  EXPECT_EQ(pattern.steps[0].pred.kind, cep::PredKind::kAt);
  EXPECT_EQ(pattern.steps[0].pred.var, "x");
  EXPECT_EQ(pattern.steps[0].pred.loc_spec, "entry_door");
  EXPECT_EQ(pattern.steps[0].within, 0);
  EXPECT_TRUE(pattern.steps[1].negated);
  EXPECT_EQ(pattern.steps[1].within, 50);
  EXPECT_FALSE(pattern.steps[2].negated);
}

TEST(CepParser, RejectsMalformedInput) {
  const std::vector<std::string> bad = {
      "",
      "SEQ()",
      "At(x)",
      "At(x, 4) trailing",
      "SEQ(At(x, 4),",
      "Near(x, 4)",
      "At(x, 4) WITHIN 0",
      "!At(x, 4) WITHIN",
      "SEQ(At(x, 4) At(x, 5))",
  };
  for (const std::string& text : bad) {
    EXPECT_FALSE(cep::ParsePattern(text).ok()) << text;
  }
}

// --- Compile ---------------------------------------------------------------

Result<cep::CompiledPattern> CompileText(const std::string& text) {
  auto parsed = cep::ParsePattern(text);
  if (!parsed.ok()) return parsed.status();
  return cep::Compile(parsed.value(), nullptr);
}

TEST(CepCompile, RejectsInvalidStructure) {
  const std::vector<std::string> bad = {
      "!Missing(x) WITHIN 5",                                // First negative.
      "At(x, 4) WITHIN 5",                                   // Window on p_1.
      "SEQ(At(x, 4), !Missing(x) WITHIN 5, !At(x, 5) WITHIN 5, At(x, 6))",
      "SEQ(At(x, 4), !Missing(x))",        // Trailing negation needs WITHIN.
      "SEQ(At(x, 4), At(y, 5))",           // New variable in a later At.
      "SEQ(At(x, 4), !In(y, x) WITHIN 3, At(x, 5))",  // New var in negation.
      "At(x, dock_door)",                  // Name needs a registry.
  };
  for (const std::string& text : bad) {
    EXPECT_FALSE(CompileText(text).ok()) << text;
  }
}

TEST(CepCompile, LaysOutGuardsAndWindows) {
  auto compiled =
      CompileText("SEQ(At(x, 4), !At(x, 5) WITHIN 7, Missing(x) WITHIN 9)");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const cep::CompiledPattern& pattern = compiled.value();
  EXPECT_EQ(pattern.vars, std::vector<std::string>{"x"});
  EXPECT_EQ(pattern.positive, (std::vector<int>{0, 2}));
  EXPECT_EQ(pattern.guard, (std::vector<int>{-1, 1}));
  EXPECT_EQ(pattern.trailing_guard, -1);
  // The tighter of the step's own WITHIN (9) and its guard's (7).
  EXPECT_EQ(pattern.WindowInto(1), 7);

  auto trailing = CompileText("SEQ(At(x, 4), !Missing(x) WITHIN 6)");
  ASSERT_TRUE(trailing.ok());
  EXPECT_EQ(trailing.value().positive, std::vector<int>{0});
  EXPECT_EQ(trailing.value().trailing_guard, 1);

  // New variables may enter later steps through In/Contains on a bound one.
  auto chained = CompileText("SEQ(In(c, p), Contains(p, q))");
  ASSERT_TRUE(chained.ok()) << chained.status().ToString();
  EXPECT_EQ(chained.value().vars, (std::vector<std::string>{"c", "p", "q"}));
}

// --- Evaluation edge cases -------------------------------------------------

TEST(CepEval, WindowBoundaryIsInclusive) {
  // Second stay starts exactly at the window bound: t_2 - t_1 == 10 <= 10.
  EventStream at_bound = {
      Event::StartLocation(kX, 4, 0),
      Event::EndLocation(kX, 4, 0, 10),
      Event::StartLocation(kX, 5, 10),
      Event::EndLocation(kX, 5, 10, 20),
  };
  auto matches = RunBoth("SEQ(At(x, 4), At(x, 5) WITHIN 10)", at_bound);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].step_epochs, (std::vector<Epoch>{0, 10}));
  EXPECT_EQ(matches[0].completion, 10);

  // One epoch later and the window can no longer be met.
  EventStream past_bound = {
      Event::StartLocation(kX, 4, 0),
      Event::EndLocation(kX, 4, 0, 10),
      Event::StartLocation(kX, 5, 11),
      Event::EndLocation(kX, 5, 11, 20),
  };
  EXPECT_TRUE(RunBoth("SEQ(At(x, 4), At(x, 5) WITHIN 10)", past_bound).empty());
}

TEST(CepEval, BetweenNegationForbidsStrictlyBetween) {
  // x passes through location 7 between 4 and 5: the guard kills the run.
  EventStream via7 = {
      Event::StartLocation(kX, 4, 0),  Event::EndLocation(kX, 4, 0, 3),
      Event::StartLocation(kX, 7, 3),  Event::EndLocation(kX, 7, 3, 5),
      Event::StartLocation(kX, 5, 5),  Event::EndLocation(kX, 5, 5, 9),
  };
  const std::string pattern = "SEQ(At(x, 4), !At(x, 7) WITHIN 10, At(x, 5))";
  EXPECT_TRUE(RunBoth(pattern, via7).empty());

  // Same chain without touching 7: the guard is satisfied.
  EventStream direct = {
      Event::StartLocation(kX, 4, 0), Event::EndLocation(kX, 4, 0, 3),
      Event::StartLocation(kX, 5, 5), Event::EndLocation(kX, 5, 5, 9),
  };
  auto matches = RunBoth(pattern, direct);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].completion, 5);
}

TEST(CepEval, TrailingNegationWindowBoundaries) {
  const std::string pattern = "SEQ(At(x, 4), !Missing(x) WITHIN 5)";
  // The absence span (0, 5] fits exactly: hi == t_k + w. Completes at 5.
  EventStream fits = {
      Event::StartLocation(kX, 4, 0), Event::EndLocation(kX, 4, 0, 1),
      Event::StartLocation(kY, 9, 0), Event::EndLocation(kY, 9, 0, 5),
  };
  auto matches = RunBoth(pattern, fits);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].step_epochs, std::vector<Epoch>{0});
  EXPECT_EQ(matches[0].completion, 5);

  // One epoch shorter and the absence is not fully observed: no match.
  EventStream short_tail = {
      Event::StartLocation(kX, 4, 0), Event::EndLocation(kX, 4, 0, 1),
      Event::StartLocation(kY, 9, 0), Event::EndLocation(kY, 9, 0, 4),
  };
  EXPECT_TRUE(RunBoth(pattern, short_tail).empty());

  // A Missing report exactly at t_k + w lands inside (t_k, t_k + w]: killed.
  EventStream missing_at_bound = {
      Event::StartLocation(kX, 4, 0), Event::EndLocation(kX, 4, 0, 1),
      Event::Missing(kX, 4, 5),
      Event::StartLocation(kY, 9, 0), Event::EndLocation(kY, 9, 0, 10),
  };
  EXPECT_TRUE(RunBoth(pattern, missing_at_bound).empty());

  // One epoch past the window and the match completes untouched.
  EventStream missing_after = {
      Event::StartLocation(kX, 4, 0), Event::EndLocation(kX, 4, 0, 1),
      Event::Missing(kX, 4, 6),
      Event::StartLocation(kY, 9, 0), Event::EndLocation(kY, 9, 0, 10),
  };
  matches = RunBoth(pattern, missing_after);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].completion, 5);
}

TEST(CepEval, OpenTrailingIntervals) {
  // x's final stay never closes; it extends to the stream's horizon.
  EventStream open_stay = {
      Event::StartLocation(kY, 9, 0), Event::EndLocation(kY, 9, 0, 20),
      Event::StartLocation(kX, 4, 5),
  };
  auto matches = RunBoth("At(x, 4)", open_stay);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].completion, 5);

  // Trailing negation observed over the open tail: completes at t_k + w.
  matches = RunBoth("SEQ(At(x, 4), !At(x, 9) WITHIN 6)", open_stay);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].completion, 11);

  // An open Missing report behaves the same way.
  EventStream open_missing = {
      Event::StartLocation(kY, 9, 0), Event::EndLocation(kY, 9, 0, 20),
      Event::StartLocation(kX, 4, 0), Event::EndLocation(kX, 4, 0, 3),
      Event::Missing(kX, 4, 3),
  };
  matches = RunBoth("Missing(x)", open_missing);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].completion, 3);
}

TEST(CepEval, SkipTillNextMatchDetectsEachOnset) {
  EventStream two_runs = {
      Event::StartLocation(kX, 4, 0),  Event::EndLocation(kX, 4, 0, 5),
      Event::StartLocation(kX, 4, 8),  Event::EndLocation(kX, 4, 8, 12),
  };
  EXPECT_EQ(Completions(RunBoth("At(x, 4)", two_runs)),
            (std::vector<Epoch>{0, 8}));
}

TEST(CepEval, ContainmentBindingOrderAndMatch) {
  EventStream stream = {
      Event::StartContainment(kCase, kPallet, 2),
      Event::StartLocation(kPallet, 9, 4),
      Event::EndContainment(kCase, kPallet, 2, 6),
      Event::EndLocation(kPallet, 9, 4, 10),
  };
  auto matches = RunBoth("SEQ(Contains(p, c), At(p, 9))", stream);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].binding, (std::vector<ObjectId>{kPallet, kCase}));
  EXPECT_EQ(matches[0].step_epochs, (std::vector<Epoch>{2, 4}));
}

// --- Library + provenance on a simulated trace -----------------------------

class CepLibraryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SimConfig config;
    config.duration_epochs = 1200;
    config.pallet_interval = 240;
    config.min_cases_per_pallet = 3;
    config.max_cases_per_pallet = 3;
    config.items_per_case = 4;
    config.read_rate = 0.9;
    config.shelf_period = 30;
    config.mean_shelf_stay = 400;
    config.theft_interval = 300;
    auto sim = WarehouseSimulator::Create(config);
    ASSERT_TRUE(sim.ok());
    sim_ = sim.value().release();
    PipelineOptions options;
    options.level = CompressionLevel::kLevel2;
    SpirePipeline pipeline(&sim_->registry(), options);
    stream_ = new EventStream;
    while (!sim_->Done()) {
      EpochReadings readings = sim_->Step();
      pipeline.ProcessEpoch(sim_->current_epoch(), std::move(readings),
                            stream_);
    }
    pipeline.Finish(sim_->current_epoch() + 1, stream_);
  }
  static void TearDownTestSuite() {
    delete sim_;
    delete stream_;
    sim_ = nullptr;
    stream_ = nullptr;
  }
  static WarehouseSimulator* sim_;
  static EventStream* stream_;
};

WarehouseSimulator* CepLibraryTest::sim_ = nullptr;
EventStream* CepLibraryTest::stream_ = nullptr;

TEST_F(CepLibraryTest, AllLibraryPatternsParseAndCompile) {
  const std::vector<cep::Pattern>& library = cep::BuiltinLibrary();
  ASSERT_EQ(library.size(), 8u);
  std::set<std::string> names;
  for (const cep::Pattern& pattern : library) {
    EXPECT_TRUE(names.insert(pattern.name).second) << pattern.name;
    auto compiled = cep::Compile(pattern, &sim_->registry());
    EXPECT_TRUE(compiled.ok())
        << pattern.name << ": " << compiled.status().ToString();
    auto reparsed = cep::ParsePattern(pattern.ToString(), pattern.name);
    ASSERT_TRUE(reparsed.ok()) << pattern.name;
    EXPECT_EQ(reparsed.value(), pattern) << pattern.name;
  }
  EXPECT_TRUE(cep::LibraryPattern("theft").ok());
  EXPECT_FALSE(cep::LibraryPattern("no_such_pattern").ok());
}

TEST_F(CepLibraryTest, ParsesPatternFiles) {
  auto parsed = cep::ParsePatternFileLines(
      "# comment\n"
      "\n"
      "gone = Missing(x)\n"
      "stored = SEQ(At(x, 4), At(x, 5) WITHIN 9)\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0].name, "gone");
  EXPECT_EQ(parsed.value()[1].name, "stored");
  EXPECT_FALSE(cep::ParsePatternFileLines("no equals sign\n").ok());
  EXPECT_FALSE(cep::ParsePatternFileLines("= Missing(x)\n").ok());
}

TEST_F(CepLibraryTest, EvaluatorsAgreeWithProvenanceOnSimTrace) {
  auto interval_log = cep::CompressedLog::Build(*stream_);
  auto naive_log = EventLog::Build(*stream_, /*decompress=*/true);
  ASSERT_TRUE(interval_log.ok() && naive_log.ok());
  const cep::EvalBounds bounds = cep::BoundsOf(*stream_);
  std::size_t patterns_with_matches = 0;
  for (const cep::Pattern& pattern : cep::BuiltinLibrary()) {
    auto compiled = cep::Compile(pattern, &sim_->registry());
    ASSERT_TRUE(compiled.ok()) << pattern.name;
    auto interval = cep::EvaluateCompressed(compiled.value(),
                                            &interval_log.value(), bounds);
    auto naive =
        cep::EvaluateNaive(compiled.value(), naive_log.value(), bounds);
    EXPECT_EQ(cep::DiffMatchSets(interval, naive, "interval", "naive"), "")
        << pattern.name;
    if (!interval.empty()) ++patterns_with_matches;
    for (const cep::Match& match : interval) {
      // Every detection carries provenance into the compressed stream: the
      // witness chain and at least one supporting event per match.
      EXPECT_EQ(match.step_epochs.size(), compiled.value().positive.size());
      ASSERT_FALSE(match.event_ids.empty()) << pattern.name;
      for (std::uint64_t id : match.event_ids) {
        EXPECT_LT(id, stream_->size()) << pattern.name;
      }
      EXPECT_GE(match.completion, match.step_epochs.back()) << pattern.name;
    }
  }
  // The healthy-flow confirmations and the theft detector all fire on a
  // trace with thefts enabled.
  EXPECT_GE(patterns_with_matches, 3u);
}

TEST_F(CepLibraryTest, MatchesFlowIntoTheExplainChannel) {
  auto interval_log = cep::CompressedLog::Build(*stream_);
  ASSERT_TRUE(interval_log.ok());
  auto compiled = cep::Compile(cep::LibraryPattern("theft").value(),
                               &sim_->registry());
  ASSERT_TRUE(compiled.ok());
  obs::ExplainLog explain;
  for (const cep::Match& match : cep::EvaluateCompressed(
           compiled.value(), &interval_log.value(), cep::BoundsOf(*stream_))) {
    explain.RecordMatch({match.pattern, compiled.value().vars, match.binding,
                         match.step_epochs, match.completion,
                         match.event_ids});
  }
  ASSERT_FALSE(explain.matches().empty());
  const std::string line = obs::ExplainLog::ToJsonLine(explain.matches()[0]);
  EXPECT_NE(line.find("\"kind\":\"match\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"pattern\":\"theft\""), std::string::npos) << line;
}

}  // namespace
}  // namespace spire
