#include "sim/simulator.h"

#include <algorithm>

#include "common/epc.h"

namespace spire {

namespace {

/// Company prefix used for all generated tags.
constexpr std::uint32_t kCompanyPrefix = 1000;

}  // namespace

Result<std::unique_ptr<WarehouseSimulator>> WarehouseSimulator::Create(
    const SimConfig& config) {
  SPIRE_RETURN_NOT_OK(config.Validate());
  auto layout = WarehouseLayout::Build(config);
  if (!layout.ok()) return layout.status();
  return std::unique_ptr<WarehouseSimulator>(
      new WarehouseSimulator(config, std::move(layout).value()));
}

WarehouseSimulator::WarehouseSimulator(const SimConfig& config,
                                       WarehouseLayout layout)
    : config_(config), layout_(std::move(layout)), rng_(config.seed) {}

EpochReadings WarehouseSimulator::Step() {
  ++epoch_;
  touched_.clear();
  if (epoch_ % config_.pallet_interval == 0) InjectPallet();
  StepInboundPallets();
  StepBeltQueue();
  StepCases();
  StepOutboundBatches();
  StepTheft();
  truth_.ObserveTouched(world_, touched_, epoch_);

  EpochReadings readings;
  EmitReadings(&readings);
  return readings;
}

ObjectId WarehouseSimulator::NewEpc(PackagingLevel level) {
  EpcFields fields;
  fields.level = level;
  fields.company_prefix = kCompanyPrefix;
  // Split a wide counter across the serial (21 bits) and item-reference
  // fields so ids never collide over long simulations.
  fields.serial = next_serial_ & ((1u << 21) - 1);
  fields.item_reference = next_serial_ >> 21;
  ++next_serial_;
  ++objects_created_;
  return EncodeEpcUnchecked(fields);
}

void WarehouseSimulator::Touch(ObjectId id) { touched_.push_back(id); }

void WarehouseSimulator::TouchCase(const CaseUnit& unit) {
  Touch(unit.id);
  for (ObjectId item : unit.items) Touch(item);
}

bool WarehouseSimulator::IsGone(ObjectId id) const {
  const ObjectState* state = world_.Find(id);
  return state == nullptr || state->stolen;
}

void WarehouseSimulator::InjectPallet() {
  ObjectId pallet = NewEpc(PackagingLevel::kPallet);
  (void)world_.AddObject(pallet, layout_.entry_door);
  Touch(pallet);

  InboundPallet inbound;
  inbound.id = pallet;
  inbound.until = epoch_ + config_.entry_dwell;

  int num_cases = static_cast<int>(rng_.NextInRange(
      config_.min_cases_per_pallet, config_.max_cases_per_pallet));
  for (int c = 0; c < num_cases; ++c) {
    CaseUnit unit;
    unit.id = NewEpc(PackagingLevel::kCase);
    (void)world_.AddObject(unit.id, layout_.entry_door);
    (void)world_.SetContainment(unit.id, pallet);
    for (int i = 0; i < config_.items_per_case; ++i) {
      ObjectId item = NewEpc(PackagingLevel::kItem);
      (void)world_.AddObject(item, layout_.entry_door);
      (void)world_.SetContainment(item, unit.id);
      unit.items.push_back(item);
    }
    TouchCase(unit);
    inbound.case_indices.push_back(cases_.size());
    cases_.push_back(std::move(unit));
  }
  inbound_.push_back(std::move(inbound));
}

void WarehouseSimulator::StepInboundPallets() {
  for (InboundPallet& pallet : inbound_) {
    if (pallet.stage == Stage::kDone || epoch_ < pallet.until) continue;
    if (IsGone(pallet.id)) {
      // The pallet was stolen before unpacking; its cases are trapped inside.
      for (std::size_t idx : pallet.case_indices) {
        cases_[idx].stage = Stage::kDone;
      }
      pallet.stage = Stage::kDone;
      continue;
    }
    switch (pallet.stage) {
      case Stage::kAtEntry:
        // Unpack: sever case-pallet containment, queue cases for the belt,
        // and route the emptied pallet to the exit.
        for (std::size_t idx : pallet.case_indices) {
          CaseUnit& unit = cases_[idx];
          if (IsGone(unit.id)) continue;
          (void)world_.ClearContainment(unit.id);
          Touch(unit.id);
          belt_queue_.push_back(idx);
        }
        (void)world_.MoveObject(pallet.id, kUnknownLocation);
        Touch(pallet.id);
        pallet.stage = Stage::kTransitToExit;
        pallet.until = epoch_ + config_.transit_time;
        break;
      case Stage::kTransitToExit:
        (void)world_.MoveObject(pallet.id, layout_.exit_door);
        Touch(pallet.id);
        pallet.stage = Stage::kAtExit;
        pallet.until = epoch_ + config_.exit_dwell;
        break;
      case Stage::kAtExit:
        Touch(pallet.id);
        (void)world_.RemoveObject(pallet.id);
        pallet.stage = Stage::kDone;
        break;
      default:
        break;
    }
  }
}

void WarehouseSimulator::StepBeltQueue() {
  // The receiving belt is a special reader: it scans one case at a time, so
  // case launches are serialized on the belt's next-free epoch.
  while (!belt_queue_.empty()) {
    std::size_t idx = belt_queue_.front();
    CaseUnit& unit = cases_[idx];
    if (IsGone(unit.id)) {
      belt_queue_.pop_front();
      continue;
    }
    Epoch arrival = epoch_ + config_.transit_time;
    if (arrival < belt_next_free_) break;
    belt_queue_.pop_front();
    MoveCase(unit, kUnknownLocation);
    unit.stage = Stage::kTransitToBelt;
    unit.until = arrival;
    belt_next_free_ = arrival + config_.belt_dwell;
  }
}

void WarehouseSimulator::MoveCase(CaseUnit& unit, LocationId location) {
  (void)world_.MoveObject(unit.id, location);
  TouchCase(unit);
}

void WarehouseSimulator::StepCases() {
  for (std::size_t idx = 0; idx < cases_.size(); ++idx) {
    CaseUnit& unit = cases_[idx];
    if (unit.stage == Stage::kDone || unit.stage == Stage::kAtEntry ||
        unit.stage == Stage::kInPackaging) {
      continue;
    }
    if (epoch_ < unit.until) continue;
    if (IsGone(unit.id)) {
      unit.stage = Stage::kDone;
      continue;
    }
    switch (unit.stage) {
      case Stage::kTransitToBelt:
        MoveCase(unit, layout_.receiving_belt);
        unit.stage = Stage::kOnBelt;
        unit.until = epoch_ + config_.belt_dwell;
        break;
      case Stage::kOnBelt: {
        unit.shelf = layout_.shelves[rng_.NextBounded(
            static_cast<std::uint32_t>(layout_.shelves.size()))];
        Epoch lo = std::max<Epoch>(1, config_.mean_shelf_stay / 2);
        Epoch hi = std::max<Epoch>(lo, config_.mean_shelf_stay * 3 / 2);
        unit.shelf_stay = rng_.NextInRange(lo, hi);
        MoveCase(unit, kUnknownLocation);
        unit.stage = Stage::kTransitToShelf;
        unit.until = epoch_ + config_.transit_time;
        break;
      }
      case Stage::kTransitToShelf:
        MoveCase(unit, unit.shelf);
        unit.stage = Stage::kOnShelf;
        unit.until = epoch_ + unit.shelf_stay;
        break;
      case Stage::kOnShelf:
        MoveCase(unit, kUnknownLocation);
        unit.stage = Stage::kTransitToPackaging;
        unit.until = epoch_ + config_.transit_time;
        break;
      case Stage::kTransitToPackaging: {
        MoveCase(unit, layout_.packaging);
        unit.stage = Stage::kInPackaging;
        unit.in_out_batch = true;
        if (open_batch_ < 0) {
          OutboundBatch batch;
          batch.target_size = static_cast<int>(rng_.NextInRange(
              config_.min_cases_per_pallet, config_.max_cases_per_pallet));
          open_batch_ = static_cast<int>(outbound_.size());
          outbound_.push_back(std::move(batch));
        }
        OutboundBatch& batch = outbound_[static_cast<std::size_t>(open_batch_)];
        if (batch.first_join == kNeverEpoch) batch.first_join = epoch_;
        batch.case_indices.push_back(idx);
        if (static_cast<int>(batch.case_indices.size()) >= batch.target_size) {
          batch.sealed_at = epoch_;
          batch.until = epoch_ + config_.packaging_dwell;
          open_batch_ = -1;
        }
        break;
      }
      default:
        break;
    }
  }
}

void WarehouseSimulator::StepOutboundBatches() {
  for (OutboundBatch& batch : outbound_) {
    if (batch.stage == Stage::kDone) continue;
    if (batch.stage == Stage::kInPackaging) {
      // Seal an under-filled batch whose first case has waited too long.
      if (batch.sealed_at == kNeverEpoch && batch.first_join != kNeverEpoch &&
          epoch_ - batch.first_join >= config_.packaging_timeout) {
        batch.sealed_at = epoch_;
        batch.until = epoch_ + config_.packaging_dwell;
        if (open_batch_ >= 0 &&
            &outbound_[static_cast<std::size_t>(open_batch_)] == &batch) {
          open_batch_ = -1;
        }
      }
      if (batch.sealed_at == kNeverEpoch || epoch_ < batch.until) continue;
      // Assemble the new pallet from the batch's surviving cases.
      std::vector<std::size_t> alive;
      for (std::size_t idx : batch.case_indices) {
        if (!IsGone(cases_[idx].id) &&
            cases_[idx].stage == Stage::kInPackaging) {
          alive.push_back(idx);
        }
      }
      if (alive.empty()) {
        batch.stage = Stage::kDone;
        continue;
      }
      batch.case_indices = alive;
      batch.pallet = NewEpc(PackagingLevel::kPallet);
      (void)world_.AddObject(batch.pallet, layout_.packaging);
      Touch(batch.pallet);
      for (std::size_t idx : batch.case_indices) {
        (void)world_.SetContainment(cases_[idx].id, batch.pallet);
        Touch(cases_[idx].id);
        cases_[idx].stage = Stage::kDone;  // The batch drives it from here.
      }
      batch.stage = Stage::kWaitOutBelt;
      continue;
    }
    if (batch.pallet != kNoObject && IsGone(batch.pallet)) {
      batch.stage = Stage::kDone;
      continue;
    }
    switch (batch.stage) {
      case Stage::kWaitOutBelt: {
        Epoch arrival = epoch_ + config_.transit_time;
        if (arrival < out_belt_next_free_) break;
        (void)world_.MoveObject(batch.pallet, kUnknownLocation);
        for (std::size_t idx : batch.case_indices) TouchCase(cases_[idx]);
        Touch(batch.pallet);
        batch.stage = Stage::kTransitToOutBelt;
        batch.until = arrival;
        out_belt_next_free_ = arrival + config_.belt_dwell;
        break;
      }
      case Stage::kTransitToOutBelt:
        if (epoch_ < batch.until) break;
        (void)world_.MoveObject(batch.pallet, layout_.outgoing_belt);
        for (std::size_t idx : batch.case_indices) TouchCase(cases_[idx]);
        Touch(batch.pallet);
        batch.stage = Stage::kOnOutBelt;
        batch.until = epoch_ + config_.belt_dwell;
        break;
      case Stage::kOnOutBelt:
        if (epoch_ < batch.until) break;
        (void)world_.MoveObject(batch.pallet, kUnknownLocation);
        for (std::size_t idx : batch.case_indices) TouchCase(cases_[idx]);
        Touch(batch.pallet);
        batch.stage = Stage::kTransitToExit;
        batch.until = epoch_ + config_.transit_time;
        break;
      case Stage::kTransitToExit:
        if (epoch_ < batch.until) break;
        (void)world_.MoveObject(batch.pallet, layout_.exit_door);
        for (std::size_t idx : batch.case_indices) TouchCase(cases_[idx]);
        Touch(batch.pallet);
        batch.stage = Stage::kAtExit;
        batch.until = epoch_ + config_.exit_dwell;
        break;
      case Stage::kAtExit:
        if (epoch_ < batch.until) break;
        RemoveGroup(batch);
        batch.stage = Stage::kDone;
        break;
      default:
        break;
    }
  }
}

void WarehouseSimulator::RemoveGroup(OutboundBatch& batch) {
  // Proper exit through the exit door: remove items first, then cases, then
  // the pallet, so containment links are severed bottom-up.
  for (std::size_t idx : batch.case_indices) {
    CaseUnit& unit = cases_[idx];
    if (IsGone(unit.id)) continue;
    // A case stolen mid-flight was detached by Steal(); only members still
    // contained in this pallet exit here.
    if (world_.ParentOf(unit.id) != batch.pallet) continue;
    for (ObjectId item : unit.items) {
      if (IsGone(item)) continue;
      Touch(item);
      (void)world_.RemoveObject(item);
    }
    Touch(unit.id);
    (void)world_.RemoveObject(unit.id);
  }
  Touch(batch.pallet);
  (void)world_.RemoveObject(batch.pallet);
}

void WarehouseSimulator::StepTheft() {
  if (config_.theft_interval <= 0) return;
  if (epoch_ == 0 || epoch_ % config_.theft_interval != 0) return;
  // Uniform selection among alive, not-yet-stolen objects, in sorted order
  // for determinism.
  std::vector<ObjectId> candidates;
  candidates.reserve(world_.size());
  for (const auto& [id, state] : world_.objects()) {
    if (!state.stolen) candidates.push_back(id);
  }
  if (candidates.empty()) return;
  std::sort(candidates.begin(), candidates.end());
  ObjectId victim = candidates[rng_.NextBounded(
      static_cast<std::uint32_t>(candidates.size()))];

  // Touch the victim and everything it contains (they vanish with it).
  std::vector<ObjectId> group{victim};
  for (std::size_t i = 0; i < group.size(); ++i) {
    const ObjectState* state = world_.Find(group[i]);
    if (state == nullptr) continue;
    for (ObjectId child : state->children) group.push_back(child);
  }
  Theft theft;
  theft.object = victim;
  theft.epoch = epoch_;
  theft.from = world_.LocationOf(victim);
  thefts_.push_back(theft);
  (void)world_.Steal(victim);
  for (ObjectId id : group) Touch(id);
}

void WarehouseSimulator::EmitReadings(EpochReadings* out) {
  for (const ReaderInfo& reader : layout_.registry.readers()) {
    if (epoch_ % reader.period_epochs != 0) continue;
    int ticks = reader.type == ReaderType::kShelf
                    ? 1
                    : config_.nonshelf_ticks_per_epoch;
    LocationId where = layout_.registry.LocationAt(reader.id, epoch_);
    for (ObjectId id : world_.ObjectsAt(where)) {
      for (int tick = 0; tick < ticks; ++tick) {
        if (!rng_.NextBool(config_.read_rate)) continue;
        RfidReading reading;
        reading.tag = id;
        reading.reader = reader.id;
        reading.epoch = epoch_;
        reading.tick = static_cast<std::uint16_t>(tick);
        out->push_back(reading);
        ++total_readings_;
      }
    }
  }
}

}  // namespace spire
