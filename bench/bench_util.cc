#include "bench/bench_util.h"

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "compress/decompress.h"
#include "compress/well_formed.h"
#include "eval/size_accounting.h"
#include "sim/simulator.h"
#include "smurf/smurf_pipeline.h"

namespace spire::bench {

namespace {

/// Shared scoring of an output stream against a finished simulator.
void ScoreOutput(const EventStream& output, bool decompress,
                 const WarehouseSimulator& sim, RunMetrics* metrics) {
  metrics->raw_readings = sim.total_readings();
  metrics->output_events = output.size();
  metrics->location_messages = CountLocationMessages(output);
  metrics->containment_messages = CountContainmentMessages(output);
  metrics->ratio = CompressionRatio(output, sim.total_readings());
  metrics->location_ratio =
      CompressionRatio(metrics->location_messages, sim.total_readings());

  EventStream comparable = decompress
                               ? Decompressor::DecompressAll(output)
                               : output;
  comparable = StripLocationEvents(comparable, sim.layout().entry_door);
  EventStream truth =
      StripLocationEvents(sim.truth_events(), sim.layout().entry_door);
  metrics->f_all = CompareEventStreams(comparable, truth, EventClass::kAll);
  metrics->f_location =
      CompareEventStreams(comparable, truth, EventClass::kLocationOnly);
  metrics->delay = EvaluateDetectionDelay(sim.thefts(), output);
}

}  // namespace

RunMetrics RunSpireTrace(const RunOptions& options) {
  auto sim = WarehouseSimulator::Create(options.sim);
  if (!sim.ok()) {
    std::fprintf(stderr, "simulator: %s\n", sim.status().ToString().c_str());
    std::exit(1);
  }
  WarehouseSimulator& s = *sim.value();
  SpirePipeline pipeline(&s.registry(), options.pipeline);

  RunMetrics metrics;
  EventStream output;
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &output);
    if (pipeline.last_epoch_complete() &&
        s.current_epoch() >= options.eval_start) {
      metrics.accuracy += EvaluateEstimates(
          pipeline.last_result(), s.world(), s.layout().entry_door);
    }
    metrics.peak_nodes =
        std::max(metrics.peak_nodes, pipeline.graph().NumNodes());
    metrics.peak_memory_bytes =
        std::max(metrics.peak_memory_bytes, pipeline.graph().MemoryUsage());
  }
  pipeline.Finish(s.current_epoch() + 1, &output);
  s.FinishTruth();

  metrics.update_seconds = pipeline.total_costs().update_seconds;
  metrics.inference_seconds = pipeline.total_costs().inference_seconds;
  metrics.epochs = pipeline.epochs_processed();
  metrics.final_edges = pipeline.graph().NumEdges();
  ScoreOutput(output,
              options.pipeline.level == CompressionLevel::kLevel2, s,
              &metrics);
  if (options.capture_output != nullptr) *options.capture_output = output;
  if (options.capture_thefts != nullptr) *options.capture_thefts = s.thefts();
  return metrics;
}

RunMetrics RunSmurfTrace(const SimConfig& sim_config, SmurfOptions smurf) {
  auto sim = WarehouseSimulator::Create(sim_config);
  if (!sim.ok()) {
    std::fprintf(stderr, "simulator: %s\n", sim.status().ToString().c_str());
    std::exit(1);
  }
  WarehouseSimulator& s = *sim.value();
  SmurfPipeline pipeline(&s.registry(), smurf);

  RunMetrics metrics;
  EventStream output;
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &output);
  }
  pipeline.Finish(s.current_epoch() + 1, &output);
  s.FinishTruth();
  metrics.epochs = static_cast<std::size_t>(s.current_epoch() + 1);
  ScoreOutput(output, /*decompress=*/false, s, &metrics);
  return metrics;
}

SimConfig PaperAccuracyConfig() {
  SimConfig config;
  config.duration_epochs = 3 * 3600;
  config.pallet_interval = 600;  // 6 pallets per hour.
  config.min_cases_per_pallet = 5;
  config.max_cases_per_pallet = 5;
  config.items_per_case = 20;
  config.read_rate = 0.85;
  config.shelf_period = 60;
  config.mean_shelf_stay = 3600;
  return config;
}

SimConfig PaperOutputConfig(bool full) {
  SimConfig config = PaperAccuracyConfig();
  config.duration_epochs = (full ? 16 : 6) * 3600;
  config.pallet_interval = 300;
  config.mean_shelf_stay = 3600;
  return config;
}

SimConfig SweepConfig(bool full) {
  if (full) return PaperAccuracyConfig();
  SimConfig config = PaperAccuracyConfig();
  config.duration_epochs = 2700;
  config.pallet_interval = 300;
  config.items_per_case = 10;
  config.mean_shelf_stay = 900;
  return config;
}

Config ParseArgs(int argc, char** argv) {
  auto config = Config::FromArgs(argc, argv);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\nusage: %s [key=value ...]\n",
                 config.status().ToString().c_str(), argv[0]);
    std::exit(1);
  }
  return std::move(config).value();
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n\n", paper_ref.c_str());
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::Add(const std::string& key, double value) {
  metrics_.emplace_back(key, value);
}

std::string BenchReport::ToJson() const {
  std::ostringstream out;
  out << "{\"bench\":\"" << name_ << "\"";
  for (const auto& [key, value] : metrics_) {
    out << ",\"" << key << "\":" << value;
  }
  out << ",\"peak_rss_bytes\":" << PeakRssBytes()
      << ",\"hardware_threads\":" << std::thread::hardware_concurrency()
      << "}";
  return out.str();
}

std::string BenchReport::path() const {
  const char* dir = std::getenv("SPIRE_BENCH_DIR");
  std::string prefix = dir != nullptr && dir[0] != '\0'
                           ? std::string(dir) + "/"
                           : std::string();
  return prefix + "BENCH_" + name_ + ".json";
}

Status BenchReport::Write() const {
  const std::string out_path = path();
  std::ofstream out(out_path);
  if (!out) return Status::NotFound("cannot open for writing: " + out_path);
  out << ToJson() << "\n";
  if (!out.good()) return Status::Internal("write failed: " + out_path);
  std::printf("wrote %s\n", out_path.c_str());
  return Status::OK();
}

std::size_t PeakRssBytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss units differ by platform: Linux reports kilobytes, macOS
  // bytes. Normalize to bytes either way so `peak_rss_bytes` means what it
  // says in every BENCH_*.json.
#ifdef __APPLE__
  return static_cast<std::size_t>(usage.ru_maxrss);
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#endif
}

}  // namespace spire::bench
