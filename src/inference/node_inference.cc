#include "inference/node_inference.h"

#include <cmath>
#include <map>

namespace spire {

double NodeInferencer::FadingAge(const Node& node, Epoch now) const {
  double age = static_cast<double>(now - node.seen_at);
  if (params_->normalize_age_by_reader_period &&
      node.recent_color < location_periods_.size()) {
    // Measure absence in missed reading opportunities: a silent slow reader
    // carries less evidence per epoch than a silent fast one.
    Epoch period = location_periods_[node.recent_color];
    if (period > 1) age /= static_cast<double>(period);
  }
  return age < 1.0 ? 1.0 : age;
}

double ScoreModel::FadeAt(Epoch t) const {
  if (!fades) return 0.0;
  double age = static_cast<double>(t - seen_at);
  if (period_divisor > 1.0) age /= period_divisor;
  if (age < 1.0) age = 1.0;
  return 1.0 / std::pow(age, theta);
}

NodeInferenceResult ScoreModel::EvaluateFade(double fade) const {
  // "unknown" opens as the incumbent, then candidates in ascending color
  // order with strict > — the exact selection semantics of the original
  // std::map sweep.
  const double unknown_score = fade_unit * (1.0 - fade);  // Eq. 4.
  NodeInferenceResult result;
  result.location = kUnknownLocation;
  result.probability = unknown_score;
  double total = 0.0;
  for (const auto& [color, constant] : base) {
    const double score =
        color == recent ? constant + fade_unit * fade : constant;
    total += score;
    if (score > result.probability) {
      result.runner_up = result.probability;
      result.probability = score;
      result.location = color;
    } else if (score > result.runner_up) {
      result.runner_up = score;
    }
  }
  total += unknown_score;
  if (total > 0.0) {
    result.probability /= total;
    result.runner_up /= total;
  }
  return result;
}

Epoch NextArgmaxFlip(const ScoreModel& model, Epoch now, Epoch horizon) {
  const LocationId winner = model.ArgmaxAt(now);
  // "unknown" only gains ground over time; once it wins it wins forever.
  if (winner == kUnknownLocation) return kNeverEpoch;
  if (model.ArgmaxAt(horizon) == winner) {
    // Stable through the horizon. If the winner also holds in the fade -> 0
    // limit, monotonicity makes it stable forever; otherwise the flip is
    // somewhere past the horizon — recheck there rather than search an
    // unbounded range.
    return model.EvaluateFade(0.0).location == winner ? kNeverEpoch : horizon;
  }
  // Invariant: argmax == winner at lo, != winner at hi.
  Epoch lo = now, hi = horizon;
  while (hi - lo > 1) {
    const Epoch mid = lo + (hi - lo) / 2;
    if (model.ArgmaxAt(mid) == winner) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

NodeInferenceResult NodeInferencer::InferAt(const Node& node, Epoch now,
                                            const PassColors& colors,
                                            ScoreModel* model) const {
  const double gamma = params_->gamma;

  // Colors propagated through the edges: sum of edge probabilities per
  // color, normalized by Z2 over all propagating edges (Eq. 3).
  std::map<LocationId, double> propagated;
  double z2 = 0.0;
  auto consider = [&](EdgeId id, NodeId neighbor_slot) {
    const Node& neighbor = graph_->node(neighbor_slot);
    LocationId color = colors.ColorOf(neighbor);
    if (color == kUnknownLocation) return;
    const double p = edges_->ProbabilityOf(id);
    if (p <= 0.0) return;
    propagated[color] += p;
    z2 += p;
  };
  for (EdgeId id : node.parent_edges) {
    consider(id, graph_->edge(id).parent_node);
  }
  for (EdgeId id : node.child_edges) {
    consider(id, graph_->edge(id).child_node);
  }

  // Assemble the model: per-color scores that do not move with time, plus
  // the fading term on the recent color added at evaluation. When no edge
  // propagates a color, the gamma mass is unavailable and the remaining
  // terms are compared directly (renormalization does not change the
  // argmax).
  std::map<LocationId, double> constant_scores;
  if (node.recent_color != kUnknownLocation) {
    constant_scores[node.recent_color] += 0.0;
  }
  if (z2 > 0.0) {
    for (const auto& [color, mass] : propagated) {
      constant_scores[color] += gamma * mass / z2;
    }
  }

  ScoreModel local;
  ScoreModel& m = model != nullptr ? *model : local;
  m.base.assign(constant_scores.begin(), constant_scores.end());
  m.fade_unit = 1.0 - gamma;
  m.recent = node.recent_color;
  // Nodes are created on first observation, so seen_at is always valid and
  // (now - seen_at) >= 1 for an uncolored node; the guard covers synthetic
  // test nodes.
  m.fades =
      node.seen_at != kNeverEpoch && node.recent_color != kUnknownLocation;
  m.seen_at = node.seen_at;
  m.theta = params_->theta;
  m.period_divisor = 1.0;
  if (params_->normalize_age_by_reader_period &&
      node.recent_color < location_periods_.size()) {
    Epoch period = location_periods_[node.recent_color];
    if (period > 1) m.period_divisor = static_cast<double>(period);
  }
  return m.EvaluateAt(now);
}

}  // namespace spire
