// SGTIN-96-style EPC tag codec.
//
// The EPCglobal tag data standard requires every supply-chain object to carry
// a packaging level (item / case / pallet) encoded in its tag id; SPIRE's
// graph model reads the level straight from the id to place the node in the
// right layer (Section III-A). We encode a compact SGTIN-96-like layout into
// a 64-bit ObjectId:
//
//   bits 62..61  packaging level (the SGTIN "filter value")
//   bits 60..41  company prefix  (20 bits)
//   bits 40..21  item reference  (20 bits)
//   bits 20..0   serial number   (21 bits)
//
// The wire representation of a full EPC tag is 96 bits (12 bytes); the size
// constant lives in common/wire.h.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/types.h"

namespace spire {

/// Decomposed fields of an EPC tag id.
struct EpcFields {
  PackagingLevel level = PackagingLevel::kItem;
  std::uint32_t company_prefix = 0;  ///< 20 bits.
  std::uint32_t item_reference = 0;  ///< 20 bits.
  std::uint32_t serial = 0;          ///< 21 bits.

  bool operator==(const EpcFields&) const = default;
};

/// Encodes EPC fields into a compact ObjectId. Fields wider than their slot
/// are rejected.
Result<ObjectId> EncodeEpc(const EpcFields& fields);

/// Encodes without validation; out-of-range fields are masked. Intended for
/// generators that already guarantee ranges.
ObjectId EncodeEpcUnchecked(const EpcFields& fields);

/// Decodes an ObjectId back into its EPC fields.
EpcFields DecodeEpc(ObjectId id);

/// The packaging level encoded in the id (cheap; no full decode).
PackagingLevel EpcLevel(ObjectId id);

/// Layer index used by the graph: item=0, case=1, pallet=2.
inline int EpcLayer(ObjectId id) { return static_cast<int>(EpcLevel(id)); }

/// "urn:epc:sgtin:<company>.<itemref>.<serial>" style display form with the
/// packaging level spelled out, e.g. "case:42.7.12345".
std::string EpcToString(ObjectId id);

/// Multi-deployment tag spaces (serve/dist): a site index planted in the
/// top kEpcSiteBits of the company-prefix field keeps independently
/// authored per-site tag spaces globally disjoint while preserving the
/// packaging level the graph layers key on. Site 0 is the identity mapping
/// for prefixes that fit kEpcSitePrefixMask.
inline constexpr std::uint32_t kEpcSiteBits = 6;
inline constexpr std::uint32_t kEpcSitePrefixBits = 20 - kEpcSiteBits;
inline constexpr std::uint32_t kEpcSitePrefixMask =
    (std::uint32_t{1} << kEpcSitePrefixBits) - 1;
inline constexpr int kEpcMaxSites = 1 << kEpcSiteBits;

/// Plants `site` into the top kEpcSiteBits of `tag`'s company prefix,
/// keeping the low kEpcSitePrefixBits (kNoObject passes through).
ObjectId PlantEpcSite(int site, ObjectId tag);

}  // namespace spire
