#include "check/oracles.h"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <tuple>

#include "cep/compressed_log.h"
#include "cep/library.h"
#include "cep/nfa.h"
#include "common/random.h"
#include "compress/decompress.h"
#include "dist/runner.h"
#include "compress/fold.h"
#include "compress/serde.h"
#include "compress/well_formed.h"
#include "obs/explain.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "query/event_log.h"
#include "query/segment_log.h"
#include "store/archive_reader.h"
#include "store/archive_writer.h"
#include "store/segment.h"

namespace spire {

namespace {

/// The epoch an event is emitted at: V_e for End* messages, V_s otherwise
/// (the same grouping rule the decompressor uses).
Epoch EmissionEpoch(const Event& event) {
  switch (event.type) {
    case EventType::kEndLocation:
    case EventType::kEndContainment:
      return event.end;
    default:
      return event.start;
  }
}

/// A fixed total order inside one emission epoch. Any total order works:
/// equality of the sorted forms is multiset equality per epoch.
auto CanonicalKey(const Event& event) {
  return std::make_tuple(EmissionEpoch(event), event.object,
                         static_cast<int>(event.type), event.location,
                         event.container, event.start, event.end);
}

std::string Excerpt(const EventStream& stream, std::size_t center) {
  std::ostringstream out;
  const std::size_t from = center >= 2 ? center - 2 : 0;
  const std::size_t to = std::min(stream.size(), center + 3);
  for (std::size_t i = from; i < to; ++i) {
    out << (i == center ? "  > " : "    ") << "[" << i << "] "
        << stream[i].ToString() << "\n";
  }
  return out.str();
}

}  // namespace

EventStream Canonicalized(const EventStream& stream) {
  EventStream out = stream;
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    return CanonicalKey(a) < CanonicalKey(b);
  });
  return out;
}

std::string DiffStreams(const EventStream& a, const EventStream& b,
                        const std::string& a_name, const std::string& b_name) {
  const std::size_t common = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < common && a[i] == b[i]) ++i;
  if (i == common && a.size() == b.size()) return "";
  std::ostringstream out;
  out << a_name << " (" << a.size() << " events) and " << b_name << " ("
      << b.size() << " events) diverge at index " << i << "\n";
  out << a_name << ":\n" << Excerpt(a, i);
  out << b_name << ":\n" << Excerpt(b, i);
  return out.str();
}

EventStream RunPipelineOnTrace(const RecordedTrace& trace,
                               CompressionLevel level) {
  PipelineOptions options;
  options.level = level;
  return RunPipelineOnTrace(trace, options);
}

EventStream RunPipelineOnTrace(const RecordedTrace& trace,
                               const PipelineOptions& options) {
  SpirePipeline pipeline(&trace.registry, options);
  EventStream out;
  for (std::size_t epoch = 0; epoch < trace.epochs.size(); ++epoch) {
    pipeline.ProcessEpoch(static_cast<Epoch>(epoch), trace.epochs[epoch],
                          &out);
  }
  pipeline.Finish(static_cast<Epoch>(trace.epochs.size()), &out);
  return out;
}

DifferentialChecker::DifferentialChecker(CheckOptions options)
    : options_(std::move(options)) {}

std::string DifferentialChecker::ScratchPath(const std::string& label) const {
  namespace fs = std::filesystem;
  fs::path dir = options_.scratch_dir.empty()
                     ? fs::temp_directory_path() / "spire_check"
                     : fs::path(options_.scratch_dir);
  std::error_code ec;
  fs::create_directories(dir, ec);
  return (dir / (label + ".sparc")).string();
}

std::optional<OracleFailure> DifferentialChecker::CheckWellFormed(
    const EventStream& level1, const EventStream& level2) {
  if (Status status = ValidateWellFormed(level1); !status.ok()) {
    return OracleFailure{"well_formed", "level-1 output: " + status.ToString()};
  }
  if (Status status = ValidateWellFormed(level2); !status.ok()) {
    return OracleFailure{"well_formed", "level-2 output: " + status.ToString()};
  }
  return std::nullopt;
}

std::optional<OracleFailure> DifferentialChecker::CheckLevel2Recovery(
    const EventStream& level1, const EventStream& level2) {
  EventStream decompressed = Decompressor::DecompressAll(level2);
  if (Status status = ValidateWellFormed(decompressed); !status.ok()) {
    return OracleFailure{"level2_recovery",
                         "decompressed level-2 stream ill-formed: " +
                             status.ToString()};
  }
  std::string diff = DiffStreams(Canonicalized(level1),
                                 Canonicalized(decompressed), "level1",
                                 "decompress(level2)");
  if (!diff.empty()) return OracleFailure{"level2_recovery", diff};
  return std::nullopt;
}

std::optional<OracleFailure> DifferentialChecker::CheckIncrementalEquivalence(
    const RecordedTrace& trace, const EventStream& level1,
    const EventStream& level2, CheckStats* stats) {
  // Leg 1: the scheduled-inference runs (what `level1` / `level2` are), with
  // delta-driven scheduling off. Raw DiffStreams — not canonicalized — since
  // the claim is bit-identity, not mere state equivalence.
  PipelineOptions options;
  options.inference.incremental = false;
  for (CompressionLevel level :
       {CompressionLevel::kLevel1, CompressionLevel::kLevel2}) {
    options.level = level;
    EventStream full = RunPipelineOnTrace(trace, options);
    if (stats != nullptr) stats->traces_run += 1;
    const EventStream& incremental =
        level == CompressionLevel::kLevel1 ? level1 : level2;
    std::string diff = DiffStreams(incremental, full, "incremental", "full");
    if (!diff.empty()) {
      return OracleFailure{"incremental_equivalence",
                           (level == CompressionLevel::kLevel1 ? "level1: "
                                                               : "level2: ") +
                               diff};
    }
  }
  // Leg 2: a complete pass every epoch — every epoch exercises the seed /
  // reach / cache-replay machinery, including resync boundaries.
  options.level = CompressionLevel::kLevel2;
  options.inference_mode = InferenceMode::kAlwaysComplete;
  options.inference.incremental = true;
  options.inference.full_resync_passes = 7;  // Hit resync boundaries often.
  EventStream always_incremental = RunPipelineOnTrace(trace, options);
  options.inference.incremental = false;
  EventStream always_full = RunPipelineOnTrace(trace, options);
  if (stats != nullptr) stats->traces_run += 2;
  std::string diff = DiffStreams(always_incremental, always_full,
                                 "incremental", "full");
  if (!diff.empty()) {
    return OracleFailure{"incremental_equivalence",
                         "always-complete level2: " + diff};
  }
  return std::nullopt;
}

std::optional<OracleFailure> DifferentialChecker::CheckSerdeRoundTrip(
    const EventStream& stream, const std::string& label) {
  std::vector<std::uint8_t> bytes;
  if (Status status = EventEncoder::EncodeStream(stream, &bytes);
      !status.ok()) {
    return OracleFailure{"serde_roundtrip",
                         label + ": encode failed: " + status.ToString()};
  }
  EventDecoder decoder;
  auto decoded = decoder.DecodeStream(bytes);
  if (!decoded.ok()) {
    return OracleFailure{"serde_roundtrip", label + ": decode failed: " +
                                                decoded.status().ToString()};
  }
  std::string diff =
      DiffStreams(stream, decoded.value(), label, label + " after round-trip");
  if (!diff.empty()) return OracleFailure{"serde_roundtrip", diff};
  return std::nullopt;
}

std::optional<OracleFailure> DifferentialChecker::CheckArchiveRoundTrip(
    const EventStream& stream, const std::string& label) const {
  namespace fs = std::filesystem;
  const std::string path = ScratchPath(label);
  std::error_code ec;

  auto cleanup = [&] {
    fs::remove(path, ec);
    fs::remove(IndexPathFor(path), ec);
  };
  auto fail = [&](const std::string& detail) {
    cleanup();
    return OracleFailure{"archive_roundtrip", label + ": " + detail};
  };

  // Writes `stream` with `options`, re-reads it, and diffs. Returns the
  // archived stream through `out` for chained (compaction) stages.
  auto round_trip = [&](ArchiveOptions options, const std::string& stage,
                        EventStream* out) -> std::optional<std::string> {
    cleanup();
    auto writer = ArchiveWriter::Open(path, options);
    if (!writer.ok()) {
      return stage + ": open failed: " + writer.status().ToString();
    }
    if (Status status = (*writer.value()).Append(stream); !status.ok()) {
      return stage + ": append failed: " + status.ToString();
    }
    if (Status status = (*writer.value()).Close(); !status.ok()) {
      return stage + ": close failed: " + status.ToString();
    }
    auto reader = ArchiveReader::Open(path);
    if (!reader.ok()) {
      return stage + ": reader open failed: " + reader.status().ToString();
    }
    auto scanned = reader.value().ScanAll();
    if (!scanned.ok()) {
      return stage + ": scan failed: " + scanned.status().ToString();
    }
    std::string diff = DiffStreams(stream, scanned.value(), label,
                                   label + " after " + stage);
    if (!diff.empty()) return diff;
    // The epoch-column fast path must agree with the full decode.
    auto epochs = reader.value().ScanEpochColumn();
    if (!epochs.ok()) {
      return stage + ": epoch column failed: " + epochs.status().ToString();
    }
    if (epochs.value().size() != scanned.value().size()) {
      return stage + ": epoch column count mismatch";
    }
    for (std::size_t i = 0; i < epochs.value().size(); ++i) {
      if (epochs.value()[i] != PrimaryEpoch(scanned.value()[i])) {
        return stage + ": epoch column diverges at event " +
               std::to_string(i);
      }
    }
    if (out != nullptr) *out = std::move(scanned).value();
    return std::nullopt;
  };

  // Small blocks force multi-block segments even on shrunk traces, so the
  // codec's block-boundary paths are always exercised — through every
  // codec id the format knows.
  ArchiveOptions archive_options;
  archive_options.block_events = 256;
  for (BlockCodec codec : {BlockCodec::kVarint, BlockCodec::kBitpack}) {
    archive_options.codec = codec;
    if (auto diff = round_trip(archive_options,
                               std::string("archive round-trip (") +
                                   ToString(codec) + ")",
                               nullptr)) {
      return fail(*diff);
    }
  }

  // The v1-written / v2-compacted path: archive as format v1 (varint-only),
  // then re-archive what it decodes to as v2 bitpack — the `spire_cli
  // compact` transcode shape. Reconstruction must stay byte-identical
  // (DiffStreams compares full Event values) across the version hop.
  ArchiveOptions v1_options;
  v1_options.block_events = 256;
  v1_options.format_version = kArchiveVersionV1;
  EventStream recovered;
  if (auto diff = round_trip(v1_options, "v1 archive round-trip",
                             &recovered)) {
    return fail(*diff);
  }
  cleanup();
  ArchiveOptions v2_options;
  v2_options.block_events = 256;
  v2_options.codec = BlockCodec::kBitpack;
  auto writer = ArchiveWriter::Open(path, v2_options);
  if (!writer.ok()) {
    return fail("compact open failed: " + writer.status().ToString());
  }
  if (Status status = (*writer.value()).Append(recovered); !status.ok()) {
    return fail("compact append failed: " + status.ToString());
  }
  if (Status status = (*writer.value()).Close(); !status.ok()) {
    return fail("compact close failed: " + status.ToString());
  }
  auto reader = ArchiveReader::Open(path);
  if (!reader.ok()) {
    return fail("compact reader open failed: " + reader.status().ToString());
  }
  auto compacted = reader.value().ScanAll();
  if (!compacted.ok()) {
    return fail("compact scan failed: " + compacted.status().ToString());
  }
  std::string diff = DiffStreams(stream, compacted.value(), label,
                                 label + " after v1->v2 compaction");
  cleanup();
  if (!diff.empty()) return OracleFailure{"archive_roundtrip", diff};
  return std::nullopt;
}

namespace {

std::string StaysToString(const std::vector<Stay>& stays) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < stays.size(); ++i) {
    if (i > 0) out << ",";
    out << stays[i].start << ":" << stays[i].end << "@" << stays[i].location;
  }
  out << "]";
  return out.str();
}

std::string IdsToString(const std::vector<ObjectId>& ids) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out << ",";
    out << ids[i];
  }
  out << "]";
  return out.str();
}

}  // namespace

std::optional<OracleFailure> DifferentialChecker::CheckQueryEquivalence(
    const EventStream& stream, const std::string& label) const {
  namespace fs = std::filesystem;
  const std::string path = ScratchPath(label + "_query");
  std::error_code ec;
  auto cleanup = [&] {
    fs::remove(path, ec);
    fs::remove(IndexPathFor(path), ec);
  };
  auto fail = [&](const std::string& detail) {
    cleanup();
    return OracleFailure{"query_equivalence", label + ": " + detail};
  };

  // Small blocks keep the candidate-prefix logic multi-block even on
  // shrunk traces; the tiny cache forces evictions mid-probe.
  cleanup();
  ArchiveOptions archive_options;
  archive_options.block_events = 256;
  archive_options.codec = BlockCodec::kBitpack;
  auto writer = ArchiveWriter::Open(path, archive_options);
  if (!writer.ok()) {
    return fail("archive open failed: " + writer.status().ToString());
  }
  if (Status status = (*writer.value()).Append(stream); !status.ok()) {
    return fail("archive append failed: " + status.ToString());
  }
  if (Status status = (*writer.value()).Close(); !status.ok()) {
    return fail("archive close failed: " + status.ToString());
  }

  auto cache = std::make_shared<BlockCache>(32 * 1024);
  auto segment_log = SegmentLog::Open(path, ReaderOptions{}, cache);
  if (!segment_log.ok()) {
    return fail("segment log open failed: " +
                segment_log.status().ToString());
  }
  const SegmentLog& direct = *segment_log.value();
  auto materialized =
      EventLog::FromArchive(direct.reader(), 0, kInfiniteEpoch, false);
  if (!materialized.ok()) {
    return fail("materialized baseline failed: " +
                materialized.status().ToString());
  }
  const EventLog& log = materialized.value();

  const std::vector<ObjectId> objects = log.Objects();
  std::vector<LocationId> locations;
  for (const auto& [location, blocks] :
       direct.reader().location_postings()) {
    locations.push_back(location);
  }
  if (objects.empty()) {
    cleanup();
    return std::nullopt;  // Nothing archived; nothing to probe.
  }

  // Deterministic probes at random (object, epoch) points, plus the edge
  // epochs where coverage flips: before the stream, at the first and last
  // epochs, and just past the end.
  Pcg32 rng(0x517e'91ull ^ stream.size());
  std::vector<Epoch> probe_epochs = {-1, 0, log.first_epoch(),
                                     log.last_epoch(),
                                     log.last_epoch() + 1};
  for (int i = 0; i < 24; ++i) {
    probe_epochs.push_back(
        rng.NextInRange(log.first_epoch(), log.last_epoch() + 1));
  }

  for (int probe = 0; probe < 64; ++probe) {
    const ObjectId object = objects[rng.NextBounded(
        static_cast<std::uint32_t>(objects.size()))];
    const Epoch epoch =
        probe_epochs[rng.NextBounded(
            static_cast<std::uint32_t>(probe_epochs.size()))];
    const std::string at = " object=" + std::to_string(object) +
                           " epoch=" + std::to_string(epoch);

    auto location_at = direct.LocationAt(object, epoch);
    if (!location_at.ok()) {
      return fail("LocationAt failed: " + location_at.status().ToString());
    }
    if (location_at.value() != log.LocationAt(object, epoch)) {
      return fail("LocationAt diverges" + at);
    }
    auto container_at = direct.ContainerAt(object, epoch);
    if (!container_at.ok()) {
      return fail("ContainerAt failed: " + container_at.status().ToString());
    }
    if (container_at.value() != log.ContainerAt(object, epoch)) {
      return fail("ContainerAt diverges" + at);
    }
    auto missing_at = direct.IsMissingAt(object, epoch);
    if (!missing_at.ok()) {
      return fail("IsMissingAt failed: " + missing_at.status().ToString());
    }
    if (missing_at.value() != log.IsMissingAt(object, epoch)) {
      return fail("IsMissingAt diverges" + at);
    }
    auto trajectory = direct.TrajectoryOf(object);
    if (!trajectory.ok()) {
      return fail("TrajectoryOf failed: " + trajectory.status().ToString());
    }
    if (trajectory.value() != log.TrajectoryOf(object)) {
      return fail("TrajectoryOf diverges" + at + ": direct " +
                  StaysToString(trajectory.value()) + " vs materialized " +
                  StaysToString(log.TrajectoryOf(object)));
    }
    for (bool transitive : {false, true}) {
      auto contents = direct.ContentsAt(object, epoch, transitive);
      if (!contents.ok()) {
        return fail("ContentsAt failed: " + contents.status().ToString());
      }
      if (contents.value() != log.ContentsAt(object, epoch, transitive)) {
        return fail(std::string("ContentsAt") +
                    (transitive ? " (transitive)" : "") + " diverges" + at +
                    ": direct " + IdsToString(contents.value()) +
                    " vs materialized " +
                    IdsToString(log.ContentsAt(object, epoch, transitive)));
      }
    }
    if (!locations.empty()) {
      const LocationId location = locations[rng.NextBounded(
          static_cast<std::uint32_t>(locations.size()))];
      auto objects_at = direct.ObjectsAt(location, epoch);
      if (!objects_at.ok()) {
        return fail("ObjectsAt failed: " + objects_at.status().ToString());
      }
      if (objects_at.value() != log.ObjectsAt(location, epoch)) {
        return fail("ObjectsAt diverges at location=" +
                    std::to_string(location) + " epoch=" +
                    std::to_string(epoch) + ": direct " +
                    IdsToString(objects_at.value()) + " vs materialized " +
                    IdsToString(log.ObjectsAt(location, epoch)));
      }
    }
  }

  // The serving invariants must reconcile after the probe storm.
  const BlockCache::Stats stats = cache->GetStats();
  if (stats.hits + stats.misses != stats.lookups) {
    return fail("cache counters do not reconcile: hits + misses != lookups");
  }
  if (direct.blocks_decoded() > stats.misses) {
    return fail("cache counters do not reconcile: decodes > misses");
  }
  cleanup();
  return std::nullopt;
}

std::optional<OracleFailure> DifferentialChecker::CheckExplainConsistency(
    const RecordedTrace& trace, const EventStream& level2) {
  auto fail = [](const std::string& detail) {
    return OracleFailure{"explain_consistency", detail};
  };

  PipelineOptions options;
  options.level = CompressionLevel::kLevel2;
  SpirePipeline pipeline(&trace.registry, options);
  obs::ExplainLog log;
  pipeline.SetExplainSink(&log);
  EventStream out;
  for (std::size_t epoch = 0; epoch < trace.epochs.size(); ++epoch) {
    pipeline.ProcessEpoch(static_cast<Epoch>(epoch), trace.epochs[epoch],
                          &out);
  }
  pipeline.Finish(static_cast<Epoch>(trace.epochs.size()), &out);

  if (std::string diff = DiffStreams(level2, out, "level2 without explain",
                                     "level2 with explain");
      !diff.empty()) {
    return fail("attaching the explain channel changed the output\n" + diff);
  }
  if (log.events().size() != out.size()) {
    return fail(std::to_string(out.size()) + " events but " +
                std::to_string(log.events().size()) + " provenance records");
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    const obs::EventProvenance& record = log.events()[i];
    const Event& event = out[i];
    const std::string at = "record " + std::to_string(i);
    if (record.id != i) {
      return fail(at + " carries id " + std::to_string(record.id));
    }
    if (record.type != ToString(event.type) ||
        record.object != event.object || record.location != event.location ||
        record.container != event.container || record.start != event.start ||
        record.end != event.end) {
      return fail(at + " does not match its event " + event.ToString());
    }
    if (record.stage != "report" && record.stage != "exit" &&
        record.stage != "finish") {
      return fail(at + " has unknown stage '" + record.stage + "'");
    }
    if (record.winner_posterior < 0.0 ||
        record.winner_posterior > 1.0 + 1e-9 ||
        record.runner_up_posterior < 0.0 ||
        record.runner_up_posterior > record.winner_posterior + 1e-9) {
      return fail(at + " has implausible posteriors " +
                  std::to_string(record.winner_posterior) + " / " +
                  std::to_string(record.runner_up_posterior));
    }
  }

  // Every suppressed level-2 location update must name a containment that
  // the output stream itself shows open at the suppression epoch.
  const std::vector<RangedEvent> folded = FoldEvents(out);
  for (const obs::SuppressionRecord& record : log.suppressions()) {
    if (record.reason != "contained") {
      return fail("suppression with unknown reason '" + record.reason + "'");
    }
    bool covered = false;
    for (const RangedEvent& ranged : folded) {
      if (ranged.type == EventType::kStartContainment &&
          ranged.object == record.object &&
          ranged.container == record.covering_container &&
          ranged.start <= record.epoch && record.epoch <= ranged.end) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return fail("suppression of object " + std::to_string(record.object) +
                  " at epoch " + std::to_string(record.epoch) +
                  " names container " +
                  std::to_string(record.covering_container) +
                  " with no covering containment in the output");
    }
  }
  return std::nullopt;
}

std::optional<OracleFailure> DifferentialChecker::CheckPatternEquivalence(
    const ReaderRegistry& registry, const EventStream& level1,
    const EventStream& level2) {
  auto fail = [](const std::string& detail) {
    return OracleFailure{"pattern_equivalence", detail};
  };
  auto naive_log = EventLog::Build(level1);
  if (!naive_log.ok()) {
    return fail("level1 EventLog: " + naive_log.status().ToString());
  }
  auto compressed_log = cep::CompressedLog::Build(level2);
  if (!compressed_log.ok()) {
    return fail("level2 CompressedLog: " + compressed_log.status().ToString());
  }
  // Both evaluators must agree under identical bounds; take them from the
  // level-1 view (the decompressed ground truth).
  const cep::EvalBounds bounds = cep::BoundsOf(naive_log.value());
  for (const cep::Pattern& pattern : cep::BuiltinLibrary()) {
    auto compiled = cep::Compile(pattern, &registry);
    if (!compiled.ok()) {
      // Library names that this deployment does not register (possible for
      // shrunken layouts) make the pattern vacuous, not a failure.
      continue;
    }
    const std::vector<cep::Match> naive =
        cep::EvaluateNaive(compiled.value(), naive_log.value(), bounds);
    const std::vector<cep::Match> interval = cep::EvaluateCompressed(
        compiled.value(), &compressed_log.value(), bounds);
    const std::string diff =
        cep::DiffMatchSets(interval, naive, "interval(level2)",
                           "naive(level1)");
    if (!diff.empty()) return fail(pattern.name + ": " + diff);
  }
  return std::nullopt;
}

std::optional<OracleFailure> DifferentialChecker::CheckDistributedEquivalence(
    const FuzzCase& fuzz_case, CheckStats* stats) {
  if (fuzz_case.sim.transfer_sites < 2) return std::nullopt;
  auto fail = [](const std::string& detail) {
    return OracleFailure{"distributed_equivalence", detail};
  };

  auto trace = GenerateTransferTrace(fuzz_case);
  if (!trace.ok()) {
    return fail("transfer expansion failed: " + trace.status().ToString());
  }
  auto workload = dist::ToWorkload(trace.value());
  if (!workload.ok()) {
    return fail("workload conversion failed: " + workload.status().ToString());
  }

  PipelineOptions options;
  options.level = CompressionLevel::kLevel2;
  const EventStream reference =
      dist::RunDistReference(workload.value(), trace.value().hops, options);
  options.level = CompressionLevel::kLevel1;
  const EventStream reference_level1 =
      dist::RunDistReference(workload.value(), trace.value().hops, options);
  if (stats != nullptr) stats->traces_run += 2;

  if (auto failure = CheckWellFormed(reference_level1, reference)) {
    return fail("serial reference: " + failure->detail);
  }
  if (auto failure = CheckLevel2Recovery(reference_level1, reference)) {
    return fail("serial reference: " + failure->detail);
  }

  // Bit-identity — raw DiffStreams, not canonicalized: the distributed
  // merge must reproduce the serial stream exactly, for any node count.
  for (int nodes : {1, 2}) {
    dist::DistOptions dist_options;
    dist_options.num_nodes = nodes;
    dist_options.pipeline.level = CompressionLevel::kLevel2;
    dist::DistResult result = dist::RunDistLoopback(
        workload.value(), trace.value().hops, dist_options);
    if (stats != nullptr) stats->traces_run += 1;
    if (!result.status.ok()) {
      return fail(std::to_string(nodes) +
                  "-node run failed: " + result.status.ToString());
    }
    std::string diff =
        DiffStreams(reference, result.events, "serial reference",
                    std::to_string(nodes) + "-node distributed");
    if (!diff.empty()) return fail(diff);
  }

  // Observer-effect leg: the fleet observability machinery — per-epoch
  // StatsReport frames, ClockSync, and cross-node handoff trace spans —
  // must never change a single byte of the merged output stream.
  {
    const bool was_enabled = obs::Enabled();
    obs::SetEnabled(true);
    const std::string trace_path =
        (std::filesystem::temp_directory_path() /
         ("spire_oracle_trace_" + std::to_string(fuzz_case.sim.seed) +
          ".json"))
            .string();
    obs::Tracer& tracer = obs::Tracer::Global();
    const bool tracing = tracer.Start(trace_path).ok();

    dist::DistOptions dist_options;
    dist_options.num_nodes = 2;
    dist_options.pipeline.level = CompressionLevel::kLevel2;
    dist_options.stats_interval_epochs = 1;  // Maximum cadence pressure.
    dist::DistResult result = dist::RunDistLoopback(
        workload.value(), trace.value().hops, dist_options);
    if (stats != nullptr) stats->traces_run += 1;

    if (tracing) {
      (void)tracer.Stop();
      std::error_code ec;
      std::filesystem::remove(trace_path, ec);
    }
    obs::SetEnabled(was_enabled);

    if (!result.status.ok()) {
      return fail("observed 2-node run failed: " + result.status.ToString());
    }
    std::string diff = DiffStreams(reference, result.events,
                                   "serial reference",
                                   "2-node distributed with stats+tracing");
    if (!diff.empty()) {
      return fail("observability changed the output: " + diff);
    }
  }
  return std::nullopt;
}

std::optional<OracleFailure> DifferentialChecker::Check(
    const FuzzCase& fuzz_case, CheckStats* stats) const {
  auto trace = GenerateTrace(fuzz_case);
  if (!trace.ok()) {
    return OracleFailure{"generate", trace.status().ToString()};
  }
  EventStream level1 = RunPipelineOnTrace(trace.value(), CompressionLevel::kLevel1);
  EventStream level2 = RunPipelineOnTrace(trace.value(), CompressionLevel::kLevel2);
  if (stats != nullptr) stats->traces_run += 2;

  if (auto failure = CheckWellFormed(level1, level2)) return failure;
  if (auto failure = CheckLevel2Recovery(level1, level2)) return failure;
  if (auto failure =
          CheckIncrementalEquivalence(trace.value(), level1, level2, stats)) {
    return failure;
  }
  if (auto failure = CheckArchiveRoundTrip(level2, "level2")) return failure;
  if (auto failure = CheckArchiveRoundTrip(level1, "level1")) return failure;
  if (auto failure = CheckQueryEquivalence(level2, "level2")) return failure;
  if (auto failure = CheckQueryEquivalence(level1, "level1")) return failure;
  if (auto failure = CheckSerdeRoundTrip(level1, "level1")) return failure;
  if (auto failure = CheckSerdeRoundTrip(level2, "level2")) return failure;
  if (auto failure = CheckExplainConsistency(trace.value(), level2)) {
    return failure;
  }
  if (stats != nullptr) stats->traces_run += 1;
  if (auto failure = CheckPatternEquivalence(trace.value().registry, level1,
                                             level2)) {
    return failure;
  }
  if (auto failure = CheckDistributedEquivalence(fuzz_case, stats)) {
    return failure;
  }

  // Determinism: the whole path — simulator, dedup, inference, compression —
  // must reproduce bit-identically from the same case.
  auto trace_again = GenerateTrace(fuzz_case);
  if (!trace_again.ok()) {
    return OracleFailure{"determinism", "second trace generation failed: " +
                                            trace_again.status().ToString()};
  }
  EventStream level1_again =
      RunPipelineOnTrace(trace_again.value(), CompressionLevel::kLevel1);
  EventStream level2_again =
      RunPipelineOnTrace(trace_again.value(), CompressionLevel::kLevel2);
  if (stats != nullptr) stats->traces_run += 2;
  if (std::string diff =
          DiffStreams(level1, level1_again, "level1 run A", "level1 run B");
      !diff.empty()) {
    return OracleFailure{"determinism", diff};
  }
  if (std::string diff =
          DiffStreams(level2, level2_again, "level2 run A", "level2 run B");
      !diff.empty()) {
    return OracleFailure{"determinism", diff};
  }
  return std::nullopt;
}

}  // namespace spire
