// The raw RFID stream element.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace spire {

/// A raw RFID reading: the triplet <tag id, reader id, timestamp> of
/// Section I. `timestamp` is a fine-grained intra-epoch tick (readers can
/// interrogate several times per epoch); `epoch` is the enclosing epoch.
struct RfidReading {
  ObjectId tag = kNoObject;
  ReaderId reader = kNoReader;
  Epoch epoch = kNeverEpoch;
  /// Intra-epoch interrogation tick; higher = more recent within the epoch.
  /// Deduplication keeps the reading with the highest tick.
  std::uint16_t tick = 0;

  bool operator==(const RfidReading&) const = default;
};

/// All readings produced in one epoch, in arrival order.
using EpochReadings = std::vector<RfidReading>;

}  // namespace spire
