#include "obs/merge_trace.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/json.h"

namespace spire::obs {

namespace {

JsonValue* FindMut(JsonValue& value, std::string_view key) {
  if (value.type != JsonValue::Type::kObject) return nullptr;
  for (auto& [name, member] : value.object) {
    if (name == key) return &member;
  }
  return nullptr;
}

JsonValue MakeNumber(std::int64_t v) {
  JsonValue out;
  out.type = JsonValue::Type::kNumber;
  out.text = std::to_string(v);
  return out;
}

/// One input trace, parsed: its events plus the "spire" clock metadata.
struct InputTrace {
  JsonValue doc;
  JsonValue* events = nullptr;   // The traceEvents array inside `doc`.
  std::int64_t base_us = 0;      // origin_us + offset_us; 0 when absent.
  bool has_base = false;
  std::string process;           // "spire".process label, may be empty.
};

Status ParseInput(const std::string& text, std::size_t index,
                  InputTrace* out) {
  auto parsed = ParseJson(text);
  if (!parsed.ok()) {
    return Status::Corruption("merge-traces: input " + std::to_string(index) +
                              ": " + parsed.status().message());
  }
  out->doc = std::move(parsed).value();
  out->events = FindMut(out->doc, "traceEvents");
  if (out->events == nullptr ||
      out->events->type != JsonValue::Type::kArray) {
    return Status::Corruption("merge-traces: input " + std::to_string(index) +
                              ": missing traceEvents array");
  }
  if (const JsonValue* spire = out->doc.Find("spire")) {
    std::int64_t origin_us = 0;
    std::int64_t offset_us = 0;
    if (const JsonValue* v = spire->Find("origin_us");
        v != nullptr && v->type == JsonValue::Type::kNumber) {
      origin_us = std::strtoll(v->text.c_str(), nullptr, 10);
      out->has_base = true;
    }
    if (const JsonValue* v = spire->Find("offset_us");
        v != nullptr && v->type == JsonValue::Type::kNumber) {
      offset_us = std::strtoll(v->text.c_str(), nullptr, 10);
    }
    out->base_us = origin_us + offset_us;
    if (const JsonValue* v = spire->Find("process");
        v != nullptr && v->type == JsonValue::Type::kString) {
      out->process = v->text;
    }
  }
  return Status::OK();
}

void AppendProcessNameEvent(std::ostream& out, int pid,
                            const std::string& label) {
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"name\":\"" << label << "\"}}";
}

}  // namespace

Result<std::string> MergeTraceJson(const std::vector<std::string>& texts,
                                   const std::vector<std::string>& labels) {
  if (texts.empty()) {
    return Status::InvalidArgument("merge-traces: no input traces");
  }
  std::vector<InputTrace> inputs(texts.size());
  for (std::size_t i = 0; i < texts.size(); ++i) {
    SPIRE_RETURN_NOT_OK(ParseInput(texts[i], i, &inputs[i]));
  }

  // The fleet timeline starts at the earliest aligned session origin, so
  // the merged file keeps small human-readable timestamps. Inputs without
  // clock metadata (hand-made or foreign traces) keep their timestamps
  // unshifted.
  std::int64_t min_base = std::numeric_limits<std::int64_t>::max();
  for (const InputTrace& input : inputs) {
    if (input.has_base) min_base = std::min(min_base, input.base_us);
  }

  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    std::string label =
        i < labels.size() && !labels[i].empty() ? labels[i] : inputs[i].process;
    if (label.empty()) label = "process" + std::to_string(i);
    if (!first) out << ",\n";
    first = false;
    AppendProcessNameEvent(out, static_cast<int>(i) + 1, label);
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    InputTrace& input = inputs[i];
    const std::int64_t shift =
        input.has_base ? input.base_us - min_base : 0;
    for (JsonValue& event : input.events->array) {
      if (event.type != JsonValue::Type::kObject) {
        return Status::Corruption("merge-traces: input " + std::to_string(i) +
                                  ": non-object trace event");
      }
      if (JsonValue* ts = FindMut(event, "ts");
          ts != nullptr && ts->type == JsonValue::Type::kNumber) {
        const std::int64_t value = std::strtoll(ts->text.c_str(), nullptr, 10);
        ts->text = std::to_string(value + shift);
      }
      if (JsonValue* pid = FindMut(event, "pid")) {
        *pid = MakeNumber(static_cast<std::int64_t>(i) + 1);
      } else {
        event.object.emplace_back("pid",
                                  MakeNumber(static_cast<std::int64_t>(i) + 1));
      }
      out << ",\n" << event.Serialize();
    }
  }
  out << "]}";
  return out.str();
}

Status MergeTraceFiles(const std::vector<std::string>& paths,
                       const std::string& out_path) {
  std::vector<std::string> texts;
  std::vector<std::string> labels(paths.size());  // Labels come from inputs.
  texts.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("merge-traces: cannot open: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    texts.push_back(buffer.str());
  }
  auto merged = MergeTraceJson(texts, labels);
  if (!merged.ok()) return merged.status();
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    return Status::NotFound("merge-traces: cannot open for writing: " +
                            out_path);
  }
  out << merged.value() << "\n";
  if (!out.good()) return Status::Internal("merge-traces: write failed");
  return Status::OK();
}

}  // namespace spire::obs
