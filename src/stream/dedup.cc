#include "stream/dedup.h"

#include <unordered_map>

#include "obs/registry.h"

namespace spire {

namespace {

struct Instruments {
  obs::Counter* readings_in;
  obs::Counter* duplicates_dropped;
};

const Instruments* GetInstruments() {
  if (!obs::Enabled()) return nullptr;
  static const Instruments instruments{
      obs::Registry::Global().GetCounter("stream", "readings_in"),
      obs::Registry::Global().GetCounter("stream", "duplicates_dropped"),
  };
  return &instruments;
}

}  // namespace

DedupStats Deduplicate(EpochReadings* readings) {
  DedupStats stats;
  stats.input_readings = readings->size();
  const Instruments* instruments = GetInstruments();
  if (instruments != nullptr) {
    instruments->readings_in->Add(stats.input_readings);
  }
  if (readings->size() <= 1) return stats;

  // First pass: for each (epoch, tag), find the index of the winning reading
  // (highest tick; later arrival wins a tie).
  struct Winner {
    std::size_t index;
    std::uint16_t tick;
  };
  std::unordered_map<ObjectId, Winner> winners;
  winners.reserve(readings->size());
  for (std::size_t i = 0; i < readings->size(); ++i) {
    const RfidReading& r = (*readings)[i];
    auto [it, inserted] = winners.try_emplace(r.tag, Winner{i, r.tick});
    if (!inserted && r.tick >= it->second.tick) {
      it->second = Winner{i, r.tick};
    }
  }

  // Second pass: keep only the winners, preserving arrival order.
  EpochReadings kept;
  kept.reserve(winners.size());
  for (std::size_t i = 0; i < readings->size(); ++i) {
    if (winners.at((*readings)[i].tag).index == i) {
      kept.push_back((*readings)[i]);
    }
  }
  stats.duplicates_dropped = readings->size() - kept.size();
  if (instruments != nullptr) {
    instruments->duplicates_dropped->Add(stats.duplicates_dropped);
  }
  *readings = std::move(kept);
  return stats;
}

}  // namespace spire
