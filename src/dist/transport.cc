#include "dist/transport.h"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

#include "obs/registry.h"

namespace spire::dist {

namespace {

/// Per-type traffic counter suffixes, indexed by FrameType value.
constexpr const char* kFrameTypeSuffix[kNumFrameTypes] = {
    "hello", "epoch_work", "site_batch", "barrier", "handoff", "stats_report",
};

struct TransportInstruments {
  obs::Counter* frames;
  obs::Counter* bytes;
  obs::Counter* frames_by_type[kNumFrameTypes];
  obs::Counter* bytes_by_type[kNumFrameTypes];
};

const TransportInstruments* GetInstruments() {
  if (!obs::Enabled()) return nullptr;
  auto& registry = obs::Registry::Global();
  static const TransportInstruments instruments = [&registry] {
    TransportInstruments out;
    out.frames = registry.GetCounter("dist", "frames");
    out.bytes = registry.GetCounter("dist", "bytes");
    for (int i = 0; i < kNumFrameTypes; ++i) {
      const std::string suffix = kFrameTypeSuffix[i];
      out.frames_by_type[i] = registry.GetCounter("dist", "frames_" + suffix);
      out.bytes_by_type[i] = registry.GetCounter("dist", "bytes_" + suffix);
    }
    return out;
  }();
  return &instruments;
}

/// Counts one frame into the totals and its type's breakdown, so
/// dist/frames == sum(dist/frames_*) and likewise for bytes (asserted in
/// tests/dist_test.cc).
void CountFrame(FrameType type, std::size_t bytes) {
  if (const TransportInstruments* obs = GetInstruments()) {
    obs->frames->Add(1);
    obs->bytes->Add(bytes);
    const auto index = static_cast<std::size_t>(type);
    if (index < kNumFrameTypes) {
      obs->frames_by_type[index]->Add(1);
      obs->bytes_by_type[index]->Add(bytes);
    }
  }
}

/// One direction of a loopback pair.
struct LoopbackQueue {
  std::mutex mu;
  std::condition_variable ready;
  std::deque<std::vector<std::uint8_t>> frames;
  bool closed = false;
};

class LoopbackConn final : public Conn {
 public:
  LoopbackConn(std::shared_ptr<LoopbackQueue> send,
               std::shared_ptr<LoopbackQueue> recv)
      : send_(std::move(send)), recv_(std::move(recv)) {}

  ~LoopbackConn() override { Close(); }

  Status Send(const std::vector<std::uint8_t>& frame) override {
    {
      std::lock_guard<std::mutex> lock(send_->mu);
      if (send_->closed) {
        return Status::Internal("send on closed connection");
      }
      send_->frames.push_back(frame);
    }
    send_->ready.notify_one();
    return Status::OK();
  }

  Status Recv(std::vector<std::uint8_t>* frame, bool* eof) override {
    std::unique_lock<std::mutex> lock(recv_->mu);
    recv_->ready.wait(lock,
                      [&] { return !recv_->frames.empty() || recv_->closed; });
    if (recv_->frames.empty()) {
      *eof = true;
      return Status::OK();
    }
    *frame = std::move(recv_->frames.front());
    recv_->frames.pop_front();
    return Status::OK();
  }

  void Close() override {
    for (const std::shared_ptr<LoopbackQueue>& queue : {send_, recv_}) {
      {
        std::lock_guard<std::mutex> lock(queue->mu);
        queue->closed = true;
      }
      queue->ready.notify_all();
    }
  }

 private:
  std::shared_ptr<LoopbackQueue> send_;
  std::shared_ptr<LoopbackQueue> recv_;
};

class FdConn final : public Conn {
 public:
  explicit FdConn(int fd) : fd_(fd) {}

  ~FdConn() override { Close(); }

  Status Send(const std::vector<std::uint8_t>& frame) override {
    const int fd = fd_.load();
    if (fd < 0) return Status::Internal("send on closed connection");
    const std::uint8_t* data = frame.data();
    std::size_t left = frame.size();
    while (left > 0) {
      const ssize_t n = ::write(fd, data, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(std::string("frame write failed: ") +
                                std::strerror(errno));
      }
      data += n;
      left -= static_cast<std::size_t>(n);
    }
    return Status::OK();
  }

  Status Recv(std::vector<std::uint8_t>* frame, bool* eof) override {
    std::uint8_t header[kFrameHeaderBytes];
    bool at_start = true;
    SPIRE_RETURN_NOT_OK(ReadFully(header, sizeof(header), &at_start));
    if (at_start) {
      *eof = true;
      return Status::OK();
    }
    Result<FrameHeader> parsed = ParseFrameHeader(header, sizeof(header));
    if (!parsed.ok()) return parsed.status();
    frame->resize(kFrameHeaderBytes + parsed.value().payload_bytes);
    std::memcpy(frame->data(), header, kFrameHeaderBytes);
    bool unused = false;
    return ReadFully(frame->data() + kFrameHeaderBytes,
                     parsed.value().payload_bytes, &unused);
  }

  void Close() override {
    // Thread-safe and idempotent: an abort may close the connection while
    // another thread blocks in read(); shutdown() wakes that read before
    // the descriptor goes away (no-op with ENOTSOCK on plain pipes).
    const int fd = fd_.exchange(-1);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }

 private:
  /// Reads exactly `size` bytes. A stream end before the first byte sets
  /// *clean_eof (when it arrives true); a later one is a truncation error.
  Status ReadFully(std::uint8_t* data, std::size_t size, bool* clean_eof) {
    const int fd = fd_.load();
    if (fd < 0) {
      if (*clean_eof) return Status::OK();
      return Status::Corruption("connection closed mid-frame");
    }
    std::size_t got = 0;
    while (got < size) {
      const ssize_t n = ::read(fd, data + got, size - got);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(std::string("frame read failed: ") +
                                std::strerror(errno));
      }
      if (n == 0) {
        if (got == 0 && *clean_eof) return Status::OK();
        return Status::Corruption("connection closed mid-frame");
      }
      got += static_cast<std::size_t>(n);
      *clean_eof = false;
    }
    *clean_eof = false;
    return Status::OK();
  }

  std::atomic<int> fd_;
};

}  // namespace

std::pair<std::unique_ptr<Conn>, std::unique_ptr<Conn>> MakeLoopbackPair() {
  auto forward = std::make_shared<LoopbackQueue>();
  auto backward = std::make_shared<LoopbackQueue>();
  return {std::make_unique<LoopbackConn>(forward, backward),
          std::make_unique<LoopbackConn>(backward, forward)};
}

std::unique_ptr<Conn> MakeFdConn(int fd) {
  return std::make_unique<FdConn>(fd);
}

Status SendFrame(Conn* conn, FrameType type,
                 const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> frame = EncodeFrame(type, payload);
  CountFrame(type, frame.size());
  return conn->Send(frame);
}

Status RecvFrame(Conn* conn, Frame* frame, bool* eof) {
  std::vector<std::uint8_t> bytes;
  *eof = false;
  SPIRE_RETURN_NOT_OK(conn->Recv(&bytes, eof));
  if (*eof) return Status::OK();
  Result<Frame> decoded = DecodeFrame(bytes);
  if (!decoded.ok()) return decoded.status();
  // Counted after decode so the type breakdown is trustworthy (a frame
  // that fails validation is not traffic of any type).
  CountFrame(decoded.value().type, bytes.size());
  *frame = std::move(decoded.value());
  return Status::OK();
}

}  // namespace spire::dist
