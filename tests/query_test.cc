// Tests for the query engine (src/query/event_log) — point, set, and
// timeline queries over level-1 and level-2 streams, plus an end-to-end
// check against the simulator's ground truth.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/epc.h"
#include "query/event_log.h"
#include "sim/simulator.h"
#include "spire/pipeline.h"
#include "store/archive_reader.h"
#include "store/archive_writer.h"

namespace spire {
namespace {

ObjectId Obj(PackagingLevel level, std::uint32_t serial) {
  EpcFields fields;
  fields.level = level;
  fields.serial = serial;
  return EncodeEpcUnchecked(fields);
}

const ObjectId kItem = Obj(PackagingLevel::kItem, 1);
const ObjectId kItem2 = Obj(PackagingLevel::kItem, 2);
const ObjectId kCase = Obj(PackagingLevel::kCase, 3);
const ObjectId kPallet = Obj(PackagingLevel::kPallet, 4);

/// A small hand-built level-1 stream:
///   item: loc 4 [10,20), loc 7 [25,50), missing at 20..25 and after 50
///   case: loc 4 [10,60)
///   containment: item in case [12,40), case in pallet [15,30)
EventStream SampleStream() {
  return {
      Event::StartLocation(kItem, 4, 10),
      Event::StartLocation(kCase, 4, 10),
      Event::StartContainment(kItem, kCase, 12),
      Event::StartContainment(kCase, kPallet, 15),
      Event::EndLocation(kItem, 4, 10, 20),
      Event::Missing(kItem, 4, 20),
      Event::StartLocation(kItem, 7, 25),
      Event::EndContainment(kCase, kPallet, 15, 30),
      Event::EndContainment(kItem, kCase, 12, 40),
      Event::EndLocation(kItem, 7, 25, 50),
      Event::Missing(kItem, 7, 50),
      Event::EndLocation(kCase, 4, 10, 60),
  };
}

class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto built = EventLog::Build(SampleStream());
    ASSERT_TRUE(built.ok());
    log_ = std::make_unique<EventLog>(std::move(built).value());
  }
  std::unique_ptr<EventLog> log_;
};

TEST_F(EventLogTest, LocationAt) {
  EXPECT_EQ(log_->LocationAt(kItem, 9), kUnknownLocation);
  EXPECT_EQ(log_->LocationAt(kItem, 10), 4);
  EXPECT_EQ(log_->LocationAt(kItem, 19), 4);
  EXPECT_EQ(log_->LocationAt(kItem, 20), kUnknownLocation);  // End exclusive.
  EXPECT_EQ(log_->LocationAt(kItem, 30), 7);
  EXPECT_EQ(log_->LocationAt(kItem, 55), kUnknownLocation);
  EXPECT_EQ(log_->LocationAt(Obj(PackagingLevel::kItem, 99), 30),
            kUnknownLocation);
}

TEST_F(EventLogTest, ContainerAt) {
  EXPECT_EQ(log_->ContainerAt(kItem, 11), kNoObject);
  EXPECT_EQ(log_->ContainerAt(kItem, 12), kCase);
  EXPECT_EQ(log_->ContainerAt(kItem, 39), kCase);
  EXPECT_EQ(log_->ContainerAt(kItem, 40), kNoObject);
}

TEST_F(EventLogTest, TopLevelContainerWalksTheChain) {
  EXPECT_EQ(log_->TopLevelContainerAt(kItem, 20), kPallet);  // item<case<pallet
  EXPECT_EQ(log_->TopLevelContainerAt(kItem, 35), kCase);    // pallet ended
  EXPECT_EQ(log_->TopLevelContainerAt(kItem, 45), kItem);    // uncontained
  EXPECT_EQ(log_->TopLevelContainerAt(Obj(PackagingLevel::kItem, 99), 20),
            kNoObject);
}

TEST_F(EventLogTest, MissingIntervals) {
  EXPECT_FALSE(log_->IsMissingAt(kItem, 19));
  EXPECT_TRUE(log_->IsMissingAt(kItem, 20));
  EXPECT_TRUE(log_->IsMissingAt(kItem, 24));
  EXPECT_FALSE(log_->IsMissingAt(kItem, 25));  // Reappeared.
  EXPECT_TRUE(log_->IsMissingAt(kItem, 99));   // Never seen again.
  ASSERT_EQ(log_->MissingReports().size(), 2u);
  EXPECT_EQ(log_->MissingReports()[0].until, 25);
  EXPECT_EQ(log_->MissingReports()[1].until, kInfiniteEpoch);
}

TEST_F(EventLogTest, ContentsAt) {
  EXPECT_EQ(log_->ContentsAt(kCase, 20), std::vector<ObjectId>{kItem});
  EXPECT_EQ(log_->ContentsAt(kPallet, 20), std::vector<ObjectId>{kCase});
  std::vector<ObjectId> transitive = log_->ContentsAt(kPallet, 20, true);
  ASSERT_EQ(transitive.size(), 2u);  // Case and, through it, the item.
  EXPECT_TRUE(log_->ContentsAt(kPallet, 35).empty());
}

TEST_F(EventLogTest, ObjectsAt) {
  std::vector<ObjectId> at4 = log_->ObjectsAt(4, 15);
  ASSERT_EQ(at4.size(), 2u);
  EXPECT_EQ(at4[0], kItem);
  EXPECT_EQ(at4[1], kCase);
  EXPECT_EQ(log_->ObjectsAt(4, 25), std::vector<ObjectId>{kCase});
  EXPECT_TRUE(log_->ObjectsAt(9, 15).empty());
}

TEST_F(EventLogTest, Timelines) {
  const std::vector<Stay>& trajectory = log_->TrajectoryOf(kItem);
  ASSERT_EQ(trajectory.size(), 2u);
  EXPECT_EQ(trajectory[0].location, 4);
  EXPECT_EQ(trajectory[1].location, 7);
  EXPECT_EQ(log_->ContainmentsOf(kItem).size(), 1u);
  EXPECT_TRUE(log_->TrajectoryOf(Obj(PackagingLevel::kItem, 99)).empty());
}

TEST_F(EventLogTest, Metadata) {
  EXPECT_EQ(log_->num_objects(), 2u);  // Objects with location stays.
  EXPECT_EQ(log_->first_epoch(), 10);
  EXPECT_EQ(log_->last_epoch(), 60);
}

TEST(EventLogBuildTest, RejectsIllFormedStreams) {
  EventStream bad{Event::EndLocation(kItem, 4, 1, 2)};
  EXPECT_FALSE(EventLog::Build(bad).ok());
}

TEST(EventLogBuildTest, AcceptsOpenTrailingEvents) {
  EventStream open{Event::StartLocation(kItem, 4, 10)};
  auto log = EventLog::Build(open);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log.value().LocationAt(kItem, 1000), 4);  // Open-ended stay.
}

TEST(EventLogInverseIndexTest, NestedContainmentAcrossReopenedStays) {
  // The case sits in the pallet twice ([5,15) and [25,35)); the item enters
  // the SAME case twice ([10,20) and [30,40)). Inverse indexes must track
  // each stay independently.
  EventStream stream{
      Event::StartLocation(kPallet, 4, 5),
      Event::StartLocation(kCase, 4, 5),
      Event::StartContainment(kCase, kPallet, 5),
      Event::StartLocation(kItem, 4, 10),
      Event::StartContainment(kItem, kCase, 10),
      Event::EndContainment(kCase, kPallet, 5, 15),
      Event::EndContainment(kItem, kCase, 10, 20),
      Event::StartContainment(kCase, kPallet, 25),
      Event::StartContainment(kItem, kCase, 30),
      Event::EndContainment(kCase, kPallet, 25, 35),
      Event::EndContainment(kItem, kCase, 30, 40),
      Event::EndLocation(kItem, 4, 10, 40),
      Event::EndLocation(kPallet, 4, 5, 45),
      Event::EndLocation(kCase, 4, 5, 50),
  };
  auto built = EventLog::Build(stream);
  ASSERT_TRUE(built.ok());
  const EventLog& log = built.value();

  // Direct contents around the first stay, the gap, and the re-entry into
  // the same container.
  EXPECT_EQ(log.ContentsAt(kCase, 12), std::vector<ObjectId>{kItem});
  EXPECT_TRUE(log.ContentsAt(kCase, 22).empty());
  EXPECT_EQ(log.ContentsAt(kCase, 31), std::vector<ObjectId>{kItem});
  EXPECT_TRUE(log.ContentsAt(kCase, 40).empty());  // End exclusive.

  // Transitive contents of the pallet across both of its stays.
  std::vector<ObjectId> first = log.ContentsAt(kPallet, 12, true);
  ASSERT_EQ(first.size(), 2u);  // Case plus, through it, the item.
  // During the second pallet stay but before the item re-enters the case.
  EXPECT_EQ(log.ContentsAt(kPallet, 27, true), std::vector<ObjectId>{kCase});
  std::vector<ObjectId> second = log.ContentsAt(kPallet, 32, true);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(log.TopLevelContainerAt(kItem, 32), kPallet);
  EXPECT_EQ(log.TopLevelContainerAt(kItem, 38), kCase);  // Pallet stay over.

  // Location inverse index with all three objects co-located.
  EXPECT_EQ(log.ObjectsAt(4, 12).size(), 3u);
  EXPECT_EQ(log.ObjectsAt(4, 47), std::vector<ObjectId>{kCase});
  EXPECT_TRUE(log.ObjectsAt(4, 50).empty());
}

TEST(EventLogArchiveTest, FromArchiveRestrictedWindow) {
  const std::string path = ::testing::TempDir() + "/query_archive.sparc";
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(IndexPathFor(path), ec);
  auto writer = ArchiveWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(SampleStream()).ok());
  ASSERT_TRUE(writer.value()->Close().ok());
  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok());

  // Unrestricted: answers match a log built straight from the stream.
  auto full = EventLog::FromArchive(reader.value(), 0, kInfiniteEpoch);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().LocationAt(kItem, 15), 4);
  EXPECT_EQ(full.value().ContainerAt(kItem, 20), kCase);
  EXPECT_EQ(full.value().TopLevelContainerAt(kItem, 20), kPallet);

  // Restricted to [35, 60]: only End/Missing messages fall inside, and the
  // repair re-materializes their Starts so intervals overlapping the window
  // remain queryable...
  auto windowed = EventLog::FromArchive(reader.value(), 35, 60);
  ASSERT_TRUE(windowed.ok());
  const EventLog& log = windowed.value();
  EXPECT_EQ(log.ContainerAt(kItem, 38), kCase);  // Stay [12,40).
  EXPECT_EQ(log.LocationAt(kItem, 40), 7);       // Stay [25,50).
  EXPECT_EQ(log.LocationAt(kCase, 45), 4);       // Stay [10,60).
  EXPECT_TRUE(log.IsMissingAt(kItem, 55));
  // ...while history that closed before the window is absent.
  EXPECT_EQ(log.LocationAt(kItem, 15), kUnknownLocation);
  EXPECT_EQ(log.ContainerAt(kCase, 20), kNoObject);
}

TEST(EventLogEndToEndTest, QueriesMatchGroundTruth) {
  // Run SPIRE at a perfect read rate over a small trace; the level-2 log
  // (decompressed on build) must answer resides/contained queries in
  // agreement with the simulator's world away from transition moments.
  SimConfig config;
  config.duration_epochs = 1500;
  config.pallet_interval = 400;
  config.min_cases_per_pallet = 2;
  config.max_cases_per_pallet = 2;
  config.items_per_case = 4;
  config.mean_shelf_stay = 400;
  config.shelf_period = 20;
  config.read_rate = 1.0;
  auto sim = WarehouseSimulator::Create(config);
  WarehouseSimulator& s = *sim.value();
  PipelineOptions options;
  options.level = CompressionLevel::kLevel2;
  SpirePipeline pipeline(&s.registry(), options);
  EventStream level2;
  // Snapshot the truth at a few probe epochs.
  std::map<Epoch, std::map<ObjectId, std::pair<LocationId, ObjectId>>> probes;
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &level2);
    if (s.current_epoch() % 500 == 499) {
      auto& snapshot = probes[s.current_epoch()];
      for (const auto& [id, state] : s.world().objects()) {
        snapshot[id] = {state.location, state.parent};
      }
    }
  }
  pipeline.Finish(s.current_epoch() + 1, &level2);

  auto log = EventLog::Build(level2, /*decompress=*/true);
  ASSERT_TRUE(log.ok());
  std::size_t queries = 0, agree = 0;
  LocationId entry = s.layout().entry_door;
  for (const auto& [epoch, snapshot] : probes) {
    for (const auto& [object, truth] : snapshot) {
      const auto& [location, parent] = truth;
      if (location == entry) continue;  // No output for the warm-up area.
      ++queries;
      if (log.value().LocationAt(object, epoch) == location &&
          log.value().ContainerAt(object, epoch) == parent) {
        ++agree;
      }
    }
  }
  ASSERT_GT(queries, 20u);
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(queries), 0.9);
}

}  // namespace
}  // namespace spire
