// Expt 4 (Fig. 9(e) and 9(f)): accuracy and delay of anomaly detection.
// Objects are removed unexpectedly (one theft every 100 s in the paper);
// the sweep varies theta and reports the location-inference error rate and
// the delay until the first Missing event for each stolen object, for two
// shelf-reader frequencies.
//
//   ./expt4_anomaly [full=true] [key=value ...]
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "eval/table.h"

using namespace spire;
using namespace spire::bench;

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  bool full = args.GetBool("full", false).value_or(false);
  SimConfig base = SweepConfig(full);
  base.theft_interval = 100;
  auto overridden = SimConfig::FromConfig(args, base);
  if (overridden.ok()) base = overridden.value();

  PrintHeader("Expt 4: anomaly detection vs theta",
              "Fig. 9(e) error rate, Fig. 9(f) detection delay");

  const std::vector<Epoch> shelf_periods{1, 60};
  const std::vector<double> thetas{0.15, 0.35, 0.75, 1.0, 1.25,
                                   1.5,  2.0,  3.0,  4.0};

  TextTable table([&] {
    std::vector<std::string> header{"theta"};
    for (Epoch period : shelf_periods) {
      std::string label = "1/" + std::to_string(period) + "s";
      header.push_back("err " + label);
      header.push_back("delay " + label);
      header.push_back("detected " + label);
    }
    return header;
  }());

  for (double theta : thetas) {
    std::vector<std::string> row{TextTable::Num(theta, 2)};
    for (Epoch period : shelf_periods) {
      RunOptions options;
      options.sim = base;
      options.sim.shelf_period = period;
      options.pipeline.inference.theta = theta;
      RunMetrics metrics = RunSpireTrace(options);
      row.push_back(TextTable::Num(metrics.accuracy.LocationErrorRate(), 4));
      row.push_back(TextTable::Num(metrics.delay.mean_delay, 1));
      row.push_back(TextTable::Num(metrics.delay.DetectionRate(), 2));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n(delay in epochs = seconds; thefts every %lld s)\n",
              static_cast<long long>(base.theft_interval));
  return 0;
}
