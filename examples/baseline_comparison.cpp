// Side-by-side comparison of SPIRE against the SMURF smoothing baseline on
// the same trace (the Section VI-D methodology in miniature): event
// accuracy, output volume, and what SMURF structurally cannot provide —
// containment.
//
//   ./baseline_comparison [key=value ...]    e.g. read_rate=0.6
#include <cstdio>

#include "common/config.h"
#include "compress/decompress.h"
#include "eval/event_accuracy.h"
#include "eval/size_accounting.h"
#include "sim/simulator.h"
#include "smurf/smurf_pipeline.h"
#include "spire/pipeline.h"

using namespace spire;

namespace {

SimConfig ScenarioConfig(const Config& args) {
  SimConfig config;
  config.duration_epochs = 3600;
  config.pallet_interval = 400;
  config.items_per_case = 10;
  config.mean_shelf_stay = 1200;
  config.shelf_period = 60;
  config.read_rate = 0.7;
  auto overridden = SimConfig::FromConfig(args, config);
  if (!overridden.ok()) {
    std::fprintf(stderr, "%s\n", overridden.status().ToString().c_str());
    std::exit(1);
  }
  return overridden.value();
}

}  // namespace

int main(int argc, char** argv) {
  auto args = Config::FromArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  SimConfig sim_config = ScenarioConfig(args.value());

  // Identical traces for both systems (same seed).
  auto spire_sim = WarehouseSimulator::Create(sim_config);
  auto smurf_sim = WarehouseSimulator::Create(sim_config);
  WarehouseSimulator& sa = *spire_sim.value();
  WarehouseSimulator& sb = *smurf_sim.value();

  PipelineOptions options;
  options.level = CompressionLevel::kLevel2;
  SpirePipeline spire_pipeline(&sa.registry(), options);
  SmurfPipeline smurf_pipeline(&sb.registry());

  EventStream spire_out, smurf_out;
  while (!sa.Done()) {
    EpochReadings ra = sa.Step();
    spire_pipeline.ProcessEpoch(sa.current_epoch(), std::move(ra), &spire_out);
    EpochReadings rb = sb.Step();
    smurf_pipeline.ProcessEpoch(sb.current_epoch(), std::move(rb), &smurf_out);
  }
  spire_pipeline.Finish(sa.current_epoch() + 1, &spire_out);
  smurf_pipeline.Finish(sb.current_epoch() + 1, &smurf_out);
  sa.FinishTruth();
  sb.FinishTruth();

  LocationId entry = sa.layout().entry_door;
  EventStream truth = StripLocationEvents(sa.truth_events(), entry);
  EventStream spire_cmp =
      StripLocationEvents(Decompressor::DecompressAll(spire_out), entry);
  EventStream smurf_cmp = StripLocationEvents(smurf_out, entry);

  EventAccuracy spire_f =
      CompareEventStreams(spire_cmp, truth, EventClass::kLocationOnly);
  EventAccuracy smurf_f =
      CompareEventStreams(smurf_cmp, truth, EventClass::kLocationOnly);
  EventAccuracy spire_cont =
      CompareEventStreams(spire_cmp, truth, EventClass::kContainmentOnly);

  std::printf("trace: read rate %.2f, %zu raw readings\n", sim_config.read_rate,
              sa.total_readings());
  std::printf("\n                         SPIRE      SMURF\n");
  std::printf("location F-measure       %.4f     %.4f\n", spire_f.FMeasure(),
              smurf_f.FMeasure());
  std::printf("location precision       %.4f     %.4f\n", spire_f.Precision(),
              smurf_f.Precision());
  std::printf("location recall          %.4f     %.4f\n", spire_f.Recall(),
              smurf_f.Recall());
  std::printf("output events            %zu       %zu\n", spire_out.size(),
              smurf_out.size());
  std::printf("compression ratio        %.4f     %.4f\n",
              CompressionRatio(spire_out, sa.total_readings()),
              CompressionRatio(smurf_out, sb.total_readings()));
  std::printf("containment F-measure    %.4f     (not supported)\n",
              spire_cont.FMeasure());
  return 0;
}
