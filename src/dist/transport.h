// Frame transports for the distributed serving protocol.
//
// A Conn moves whole frames (dist/wire.h) between a coordinator and one
// node. Two implementations:
//
//   * Loopback — an in-process pair of FIFO frame queues, for
//     deterministic tests and single-machine threaded runs (TSan-clean).
//   * FdConn — a byte-stream file descriptor (socketpair/pipe), for
//     node-per-process runs. Frames are delimited by their fixed header;
//     Recv reads the header, validates it, then reads exactly the payload.
//
// Send is safe to call from one thread while Recv runs on another; neither
// end may have two concurrent senders or two concurrent receivers.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "dist/wire.h"

namespace spire::dist {

/// One end of a frame pipe.
class Conn {
 public:
  virtual ~Conn() = default;

  /// Sends one encoded frame. Fails once the connection is closed.
  virtual Status Send(const std::vector<std::uint8_t>& frame) = 0;

  /// Receives the next whole frame. On clean end-of-stream sets *eof and
  /// returns OK with `frame` untouched; mid-frame stream ends are errors.
  virtual Status Recv(std::vector<std::uint8_t>* frame, bool* eof) = 0;

  /// Signals end-of-stream to the peer; pending frames still drain.
  /// Idempotent.
  virtual void Close() = 0;
};

/// A connected pair of in-process ends: frames sent on one pop out of the
/// other, FIFO, unbounded (flow control is the protocol's barrier window).
std::pair<std::unique_ptr<Conn>, std::unique_ptr<Conn>> MakeLoopbackPair();

/// A Conn over a byte-stream fd (socketpair, pipe pair). Takes ownership
/// of the descriptor and closes it on destruction.
std::unique_ptr<Conn> MakeFdConn(int fd);

/// Encodes and sends one typed frame, counting dist/frames and dist/bytes.
Status SendFrame(Conn* conn, FrameType type,
                 const std::vector<std::uint8_t>& payload);

/// Receives and decodes (validates) one frame; sets *eof on clean stream
/// end. Counts dist/frames and dist/bytes.
Status RecvFrame(Conn* conn, Frame* frame, bool* eof);

}  // namespace spire::dist
