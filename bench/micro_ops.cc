// Google-benchmark micro-benchmarks for the hot operations: deduplication,
// graph update, iterative inference (complete and partial), compression,
// and decompression.
#include <benchmark/benchmark.h>

#include "compress/compressor.h"
#include "compress/decompress.h"
#include "graph/update.h"
#include "inference/iterative.h"
#include "sim/simulator.h"
#include "smurf/smurf.h"
#include "spire/pipeline.h"
#include "stream/dedup.h"
#include "stream/epoch_stream.h"

namespace spire {
namespace {

SimConfig BenchSimConfig(int scale) {
  SimConfig config;
  config.duration_epochs = 1000000;
  config.pallet_interval = 20;
  config.belt_dwell = 1;
  config.transit_time = 1;
  config.min_cases_per_pallet = 5;
  config.max_cases_per_pallet = 5;
  config.items_per_case = 20;
  config.num_shelves = 16;
  config.shelf_period = 60;
  config.mean_shelf_stay = 1000000;
  config.duration_epochs = 1000000;
  config.seed = 7;
  (void)scale;
  return config;
}

/// A simulator grown to ~`nodes` alive objects with its pipeline attached.
struct GrownPipeline {
  std::unique_ptr<WarehouseSimulator> sim;
  std::unique_ptr<SpirePipeline> pipeline;

  explicit GrownPipeline(std::size_t nodes) {
    sim = std::move(WarehouseSimulator::Create(BenchSimConfig(1))).value();
    pipeline = std::make_unique<SpirePipeline>(&sim->registry(),
                                               PipelineOptions{});
    EventStream sink;
    while (sim->objects_alive() < nodes && !sim->Done()) {
      EpochReadings readings = sim->Step();
      pipeline->ProcessEpoch(sim->current_epoch(), std::move(readings), &sink);
      sink.clear();
    }
  }
};

void BM_Deduplicate(benchmark::State& state) {
  // Readings with ~2x duplication across readers.
  EpochReadings base;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    EpcFields fields;
    fields.serial = i % 500;
    RfidReading r;
    r.tag = EncodeEpcUnchecked(fields);
    r.reader = static_cast<ReaderId>(i % 4);
    r.epoch = 1;
    r.tick = static_cast<std::uint16_t>(i % 3);
    base.push_back(r);
  }
  for (auto _ : state) {
    EpochReadings copy = base;
    DedupStats stats = Deduplicate(&copy);
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(base.size()));
}
BENCHMARK(BM_Deduplicate);

void BM_PipelineEpoch(benchmark::State& state) {
  GrownPipeline grown(static_cast<std::size_t>(state.range(0)));
  EventStream sink;
  for (auto _ : state) {
    EpochReadings readings = grown.sim->Step();
    grown.pipeline->ProcessEpoch(grown.sim->current_epoch(),
                                 std::move(readings), &sink);
    sink.clear();
  }
  state.counters["nodes"] =
      static_cast<double>(grown.pipeline->graph().NumNodes());
}
BENCHMARK(BM_PipelineEpoch)->Arg(5000)->Arg(20000)->Unit(benchmark::kMicrosecond);

void BM_CompleteInference(benchmark::State& state) {
  GrownPipeline grown(static_cast<std::size_t>(state.range(0)));
  Graph& graph = grown.pipeline->mutable_graph();
  InferenceParams params;
  params.prune_threshold = 0.0;  // Keep the graph stable across iterations.
  IterativeInference inference(&graph, params);
  Epoch epoch = grown.sim->current_epoch();
  for (auto _ : state) {
    InferenceResult result = inference.RunComplete(++epoch);
    benchmark::DoNotOptimize(result);
    graph.BeginEpoch(++epoch);
  }
  state.counters["nodes"] = static_cast<double>(graph.NumNodes());
}
BENCHMARK(BM_CompleteInference)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_RangeCompression(benchmark::State& state) {
  // Alternating stays: worst-ish case for the change detector.
  std::vector<ObjectStateEstimate> estimates;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    EpcFields fields;
    fields.serial = i;
    ObjectStateEstimate estimate;
    estimate.object = EncodeEpcUnchecked(fields);
    estimate.location = static_cast<LocationId>(i % 4);
    estimates.push_back(estimate);
  }
  RangeCompressor compressor;
  EventStream out;
  Epoch epoch = 0;
  for (auto _ : state) {
    ++epoch;
    for (auto& estimate : estimates) {
      if (epoch % 10 == 0) {
        estimate.location = static_cast<LocationId>((estimate.location + 1) % 4);
      }
      compressor.Report(estimate, epoch, &out);
    }
    out.clear();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_RangeCompression);

void BM_Decompress(benchmark::State& state) {
  // A level-2 stream from a real trace.
  SimConfig config;
  config.duration_epochs = 1800;
  config.pallet_interval = 300;
  config.mean_shelf_stay = 600;
  config.shelf_period = 30;
  auto sim = std::move(WarehouseSimulator::Create(config)).value();
  PipelineOptions options;
  options.level = CompressionLevel::kLevel2;
  SpirePipeline pipeline(&sim->registry(), options);
  EventStream level2;
  while (!sim->Done()) {
    EpochReadings readings = sim->Step();
    pipeline.ProcessEpoch(sim->current_epoch(), std::move(readings), &level2);
  }
  pipeline.Finish(sim->current_epoch() + 1, &level2);
  for (auto _ : state) {
    EventStream out = Decompressor::DecompressAll(level2);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(level2.size()));
}
BENCHMARK(BM_Decompress);

/// A standalone graph with `n` nodes chained pallet->case->item style and a
/// sprinkle of colored slots — the shape the inference wave loop walks.
Graph MakeGraph(std::uint32_t n) {
  Graph graph;
  graph.BeginEpoch(1);
  for (std::uint32_t i = 0; i < n; ++i) {
    EpcFields fields;
    fields.serial = i;
    ObjectId id = EncodeEpcUnchecked(fields);
    Node& node = graph.GetOrCreateNode(id);
    if (i % 8 != 0) {
      EpcFields parent_fields;
      parent_fields.serial = i - i % 8;
      (void)graph.AddEdge(EncodeEpcUnchecked(parent_fields), id);
    } else if (i % 64 == 0) {
      graph.ColorNode(node, static_cast<LocationId>(1 + i % 4));
    }
  }
  return graph;
}

void BM_GraphFindNode(benchmark::State& state) {
  // The ObjectId -> NodeId hash hop, paid once per reading at ingest.
  Graph graph = MakeGraph(static_cast<std::uint32_t>(state.range(0)));
  std::vector<ObjectId> ids;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(state.range(0));
       ++i) {
    EpcFields fields;
    fields.serial = i;
    ids.push_back(EncodeEpcUnchecked(fields));
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    const Node* node = graph.FindNode(ids[cursor]);
    benchmark::DoNotOptimize(node);
    if (++cursor == ids.size()) cursor = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GraphFindNode)->Arg(4096)->Arg(65536);

void BM_GraphNodeAt(benchmark::State& state) {
  // The dense-slot hop the wave loops use instead of the hash.
  Graph graph = MakeGraph(static_cast<std::uint32_t>(state.range(0)));
  const NodeId slots = static_cast<NodeId>(graph.NodeSlots());
  NodeId cursor = 0;
  for (auto _ : state) {
    const Node& node = graph.node(cursor);
    benchmark::DoNotOptimize(&node);
    if (++cursor == slots) cursor = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GraphNodeAt)->Arg(4096)->Arg(65536);

void BM_GraphEdgeChurn(benchmark::State& state) {
  // Add + remove one containment edge: the pruning-path cost.
  Graph graph = MakeGraph(1024);
  EpcFields parent_fields;
  parent_fields.serial = 2048;
  EpcFields child_fields;
  child_fields.serial = 2049;
  ObjectId parent = EncodeEpcUnchecked(parent_fields);
  ObjectId child = EncodeEpcUnchecked(child_fields);
  graph.GetOrCreateNode(parent);
  graph.GetOrCreateNode(child);
  for (auto _ : state) {
    EdgeId edge = graph.AddEdge(parent, child);
    graph.RemoveEdge(edge);
    graph.ClearDirty();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GraphEdgeChurn);

void BM_GraphColoredScan(benchmark::State& state) {
  // Wave 0 seeding: walk the flat colored index, touch each node.
  Graph graph = MakeGraph(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    std::size_t colored = 0;
    for (NodeId slot : graph.ColoredSlots()) {
      if (graph.NodeAlive(slot)) ++colored;
    }
    benchmark::DoNotOptimize(colored);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(graph.ColoredSlots().size()));
}
BENCHMARK(BM_GraphColoredScan)->Arg(4096)->Arg(65536);

void BM_SmurfEpoch(benchmark::State& state) {
  ReaderRegistry registry;
  LocationId loc = registry.AddLocation("a");
  ReaderInfo info;
  info.id = 0;
  info.location = loc;
  (void)registry.AddReader(info);
  SmurfCleaner cleaner(&registry);
  Pcg32 rng(3);
  Epoch epoch = 0;
  for (auto _ : state) {
    ++epoch;
    EpochReadings readings;
    for (std::uint32_t i = 0; i < 2000; ++i) {
      if (!rng.NextBool(0.85)) continue;
      EpcFields fields;
      fields.serial = i;
      RfidReading r;
      r.tag = EncodeEpcUnchecked(fields);
      r.reader = 0;
      r.epoch = epoch;
      readings.push_back(r);
    }
    auto estimates = cleaner.ProcessEpoch(epoch, readings);
    benchmark::DoNotOptimize(estimates);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_SmurfEpoch);

}  // namespace
}  // namespace spire

BENCHMARK_MAIN();
