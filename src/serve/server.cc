#include "serve/server.h"

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/log.h"
#include "serve/merger.h"
#include "serve/shard.h"

namespace spire::serve {

SpireServer::SpireServer(const Workload* workload, ServeOptions options)
    : workload_(workload),
      options_(options),
      metrics_(options.num_shards < 1 ? 1 : options.num_shards),
      router_(workload, options.num_shards) {
  options_.num_shards = router_.num_shards();
}

ServeResult SpireServer::Run(ArchiveWriter* archive) {
  const auto wall_start = std::chrono::steady_clock::now();
  LogInfo("serve",
          "starting " + std::to_string(options_.num_shards) + " shard(s) over " +
              std::to_string(workload_->sites.size()) + " site(s), " +
              std::to_string(workload_->num_epochs) + " epochs, queue depth " +
              std::to_string(options_.queue_capacity));

  std::vector<std::unique_ptr<PipelineShard>> shards;
  std::vector<BoundedQueue<EpochWork>*> inputs;
  std::vector<BoundedQueue<SiteBatch>*> outputs;
  std::vector<std::size_t> batches_per_queue;
  shards.reserve(static_cast<std::size_t>(options_.num_shards));
  for (int shard = 0; shard < options_.num_shards; ++shard) {
    const std::vector<int>& sites =
        router_.shard_sites()[static_cast<std::size_t>(shard)];
    shards.push_back(std::make_unique<PipelineShard>(
        shard, workload_, sites, options_.pipeline, options_.queue_capacity,
        &metrics_.shard(shard)));
    inputs.push_back(&shards.back()->input());
    outputs.push_back(&shards.back()->output());
    batches_per_queue.push_back(sites.size());
  }
  for (auto& shard : shards) shard->Start();

  ServeResult result;
  std::thread feeder(
      [&] { result.epochs_processed = router_.FeedAll(inputs); });

  EventMerger merger(&metrics_.merger());
  result.status = merger.Drain(outputs, batches_per_queue, &result.events,
                               archive);
  if (result.status.ok() && !merger.archive_status().ok()) {
    result.status = merger.archive_status();
  }
  if (!result.status.ok()) {
    // Abort: unwedge the feeder and the shards, whatever they block on.
    for (BoundedQueue<EpochWork>* queue : inputs) queue->Close();
    for (BoundedQueue<SiteBatch>* queue : outputs) queue->Close();
  }

  feeder.join();
  for (auto& shard : shards) shard->Join();

  wall_seconds_ = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
  result.wall_seconds = wall_seconds_;
  LogInfo("serve",
          (result.status.ok() ? std::string("completed ")
                              : "FAILED (" + result.status.ToString() +
                                    ") after ") +
              std::to_string(result.epochs_processed) + " epochs, " +
              std::to_string(result.events.size()) + " events in " +
              std::to_string(result.wall_seconds) + "s");
  return result;
}

std::string SpireServer::MetricsJson() const {
  return metrics_.ToJson(wall_seconds_,
                         static_cast<int>(workload_->sites.size()));
}

EventStream RunServeReference(const Workload& workload,
                              const PipelineOptions& options) {
  std::vector<std::unique_ptr<SpirePipeline>> pipelines;
  pipelines.reserve(workload.sites.size());
  for (const SiteWorkload& site : workload.sites) {
    pipelines.push_back(
        std::make_unique<SpirePipeline>(&site.registry, options));
  }

  EventStream out;
  EventStream scratch;
  auto emit_site = [&](std::size_t site_index) {
    const SiteWorkload& site = workload.sites[site_index];
    if (site.location_offset != 0) {
      for (Event& event : scratch) {
        if (event.location != kUnknownLocation) {
          event.location =
              static_cast<LocationId>(event.location + site.location_offset);
        }
      }
    }
    out.insert(out.end(), scratch.begin(), scratch.end());
    scratch.clear();
  };

  for (Epoch epoch = 0; epoch < workload.num_epochs; ++epoch) {
    for (std::size_t site = 0; site < workload.sites.size(); ++site) {
      const SiteWorkload& s = workload.sites[site];
      EpochReadings readings =
          epoch < static_cast<Epoch>(s.epochs.size())
              ? s.epochs[static_cast<std::size_t>(epoch)]
              : EpochReadings{};
      pipelines[site]->ProcessEpoch(epoch, std::move(readings), &scratch);
      emit_site(site);
    }
  }
  for (std::size_t site = 0; site < workload.sites.size(); ++site) {
    pipelines[site]->Finish(workload.num_epochs, &scratch);
    emit_site(site);
  }
  return out;
}

}  // namespace spire::serve
