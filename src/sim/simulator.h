// The warehouse trace generator (Section VI-A).
//
// Emulates the paper's evaluation deployment: pallets arrive at the entry
// door, are unpacked, their cases are scanned one at a time on the receiving
// belt, shelved for a dwell period, repackaged onto new pallets, rescanned
// on the outgoing belt, and finally read at the exit door. Six reader groups
// observe the flow; present tags answer each interrogation with probability
// `read_rate`. Optionally, objects are stolen (removed without a proper
// exit) at a fixed rate. The simulator maintains the ground truth
// (PhysicalWorld) and the ground-truth event stream alongside the noisy
// reading stream it emits.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "sim/ground_truth.h"
#include "sim/layout.h"
#include "sim/sim_config.h"
#include "sim/world.h"
#include "stream/reading.h"

namespace spire {

/// Record of one injected anomaly.
struct Theft {
  ObjectId object = kNoObject;
  Epoch epoch = kNeverEpoch;
  LocationId from = kUnknownLocation;
};

/// Deterministic, epoch-stepped warehouse simulator.
class WarehouseSimulator {
 public:
  /// Builds a simulator; fails on invalid configs.
  static Result<std::unique_ptr<WarehouseSimulator>> Create(
      const SimConfig& config);

  /// Advances the ground truth by one epoch (arrivals, moves, thefts) and
  /// returns the raw readings generated in that epoch (all interrogation
  /// ticks, before deduplication).
  EpochReadings Step();

  /// The epoch of the most recent Step() (kNeverEpoch before the first).
  Epoch current_epoch() const { return epoch_; }

  /// True once `duration_epochs` steps have been taken.
  bool Done() const { return epoch_ + 1 >= config_.duration_epochs; }

  /// Closes all open ground-truth events. Call after the last Step().
  void FinishTruth() { truth_.Finish(epoch_ + 1); }

  const SimConfig& config() const { return config_; }
  const PhysicalWorld& world() const { return world_; }
  const WarehouseLayout& layout() const { return layout_; }
  const ReaderRegistry& registry() const { return layout_.registry; }

  /// Ground-truth event stream recorded so far.
  const EventStream& truth_events() const { return truth_.events(); }

  /// All thefts injected so far.
  const std::vector<Theft>& thefts() const { return thefts_; }

  /// Raw readings emitted so far (all ticks; the compression-ratio
  /// denominator is this count times kReadingWireBytes).
  std::size_t total_readings() const { return total_readings_; }

  /// Objects ever created / currently alive.
  std::size_t objects_created() const { return objects_created_; }
  std::size_t objects_alive() const { return world_.size(); }

 private:
  /// Lifecycle stage of a case unit or an outgoing pallet group.
  enum class Stage : std::uint8_t {
    kAtEntry,
    kTransitToBelt,
    kOnBelt,
    kTransitToShelf,
    kOnShelf,
    kTransitToPackaging,
    kInPackaging,
    kWaitOutBelt,
    kTransitToOutBelt,
    kOnOutBelt,
    kTransitToExit,
    kAtExit,
    kDone,
  };

  /// A case and its items, tracked from unpacking to repackaging.
  struct CaseUnit {
    ObjectId id = kNoObject;
    std::vector<ObjectId> items;
    Stage stage = Stage::kAtEntry;
    Epoch until = kNeverEpoch;
    LocationId shelf = kUnknownLocation;
    Epoch shelf_stay = 0;
    bool in_out_batch = false;
  };

  /// An arriving pallet waiting to be unpacked, then routed to the exit.
  struct InboundPallet {
    ObjectId id = kNoObject;
    std::vector<std::size_t> case_indices;
    Stage stage = Stage::kAtEntry;
    Epoch until = kNeverEpoch;
  };

  /// A batch of cases being assembled onto a new outgoing pallet.
  struct OutboundBatch {
    ObjectId pallet = kNoObject;
    std::vector<std::size_t> case_indices;
    int target_size = 0;
    Epoch first_join = kNeverEpoch;
    Epoch sealed_at = kNeverEpoch;
    Stage stage = Stage::kInPackaging;
    Epoch until = kNeverEpoch;
  };

  explicit WarehouseSimulator(const SimConfig& config, WarehouseLayout layout);

  void InjectPallet();
  void StepInboundPallets();
  void StepBeltQueue();
  void StepCases();
  void StepOutboundBatches();
  void StepTheft();
  void EmitReadings(EpochReadings* out);

  ObjectId NewEpc(PackagingLevel level);
  void Touch(ObjectId id);
  void TouchCase(const CaseUnit& unit);
  bool IsGone(ObjectId id) const;
  void RemoveGroup(OutboundBatch& batch);
  void MoveCase(CaseUnit& unit, LocationId location);

  SimConfig config_;
  WarehouseLayout layout_;
  PhysicalWorld world_;
  GroundTruthRecorder truth_;
  Pcg32 rng_;

  Epoch epoch_ = kNeverEpoch;
  std::vector<CaseUnit> cases_;
  std::vector<InboundPallet> inbound_;
  std::vector<OutboundBatch> outbound_;
  std::deque<std::size_t> belt_queue_;
  Epoch belt_next_free_ = 0;
  Epoch out_belt_next_free_ = 0;
  int open_batch_ = -1;

  std::vector<ObjectId> touched_;
  std::vector<Theft> thefts_;
  std::size_t total_readings_ = 0;
  std::size_t objects_created_ = 0;
  std::uint32_t next_serial_ = 1;
};

}  // namespace spire
