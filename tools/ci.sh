#!/usr/bin/env bash
# Local CI: configure, build, and run the full test suite twice — once
# plain, once under ASan+UBSan (SPIRE_SANITIZE=ON). Any warning is an error
# in both configurations (-Werror is always on). After ctest, each
# configuration replays the spire_fuzz seed corpus (tools/fuzz_seeds.txt)
# through the differential oracle battery (DESIGN.md §7); an oracle
# violation fails the build and leaves the minimized repro under
# <build-dir>/fuzz-repros/ (its path is printed on stdout).
#
#   tools/ci.sh            # both configurations
#   tools/ci.sh plain      # plain only
#   tools/ci.sh sanitize   # sanitized only
set -euo pipefail

cd "$(dirname "$0")/.."
mode="${1:-all}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] test ==="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  echo "=== [$name] fuzz (differential oracles) ==="
  "$dir/tools/spire_fuzz" --seeds tools/fuzz_seeds.txt --budget 30s \
    --out-dir "$dir/fuzz-repros"
}

case "$mode" in
  plain) run_config plain build ;;
  sanitize) run_config sanitize build-sanitize -DSPIRE_SANITIZE=ON ;;
  all)
    run_config plain build
    run_config sanitize build-sanitize -DSPIRE_SANITIZE=ON
    ;;
  *)
    echo "usage: tools/ci.sh [plain|sanitize|all]" >&2
    exit 2
    ;;
esac

echo "=== CI OK ($mode) ==="
