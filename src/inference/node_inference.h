// Node inference (Section IV-B): the most likely location of an unobserved
// object, or its absence from every known location.
//
// A probability distribution is built over (1) the node's most recent color,
// faded by (now - seen_at)^-theta, (2) colors propagated through incident
// edges from neighbors whose color is known (observed, or inferred in an
// earlier wave), weighted by the edges' inference probabilities, and (3) the
// special color "unknown" (Eqs. 3-4).
//
// InferAt factors the distribution into a ScoreModel: per-color scores that
// are constant in time plus the single fading term on the recent color. The
// model is what the incremental scheduler interrogates — since fade is the
// only time-dependent input, the first epoch at which a cached node's argmax
// could change is computable in closed form (NextArgmaxFlip), and the node
// can sleep until then.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "inference/edge_inference.h"
#include "inference/params.h"

namespace spire {

/// The outcome of node inference at one node.
struct NodeInferenceResult {
  /// argmax color; kUnknownLocation when "unknown" wins.
  LocationId location = kUnknownLocation;
  double probability = 0.0;
  /// Probability of the second-best candidate (including "unknown"); feeds
  /// the explain channel's posterior gap.
  double runner_up = 0.0;
};

/// The colors known at one point of an inference pass: observed colors from
/// the graph plus estimates committed by earlier waves, the latter held in
/// the pass's epoch-stamped scratch arrays (indexed by Node::self). With
/// null arrays only observed colors are visible — the oracle unit tests
/// use.
struct PassColors {
  const Graph* graph = nullptr;
  const std::uint64_t* known_stamp = nullptr;
  const LocationId* known_value = nullptr;
  std::uint64_t pass = 0;

  LocationId ColorOf(const Node& node) const {
    if (graph->IsColored(node)) return node.recent_color;
    if (known_stamp != nullptr && known_stamp[node.self] == pass) {
      return known_value[node.self];
    }
    return kUnknownLocation;
  }
};

/// One node's Eq. 3-4 distribution, split into time-constant per-color
/// scores and the fading term. Evaluating the model at the pass epoch is
/// exactly InferAt's answer; evaluating it at future epochs predicts when
/// the argmax flips (all other inputs are constant until the graph around
/// the node changes, which re-seeds inference anyway).
struct ScoreModel {
  /// Time-constant score per candidate color, ascending by LocationId (the
  /// same order the former std::map iteration established).
  std::vector<std::pair<LocationId, double>> base;
  /// (1 - gamma): the coefficient of both the fade term and "unknown".
  double fade_unit = 0.0;
  LocationId recent = kUnknownLocation;
  /// Whether a fading term exists (valid seen_at and a known recent color).
  bool fades = false;
  Epoch seen_at = kNeverEpoch;
  /// Reader-period normalization divisor of the fading age (1 = raw epochs).
  double period_divisor = 1.0;
  double theta = 1.0;

  /// The fade 1/age^theta at epoch t (0 when no fading term exists),
  /// mirroring NodeInferencer::FadingAge exactly.
  double FadeAt(Epoch t) const;

  /// Winner selection over the distribution with the given fade value; one
  /// code path shared by "evaluate now" and "evaluate in the future", so
  /// the two can never disagree.
  NodeInferenceResult EvaluateFade(double fade) const;

  NodeInferenceResult EvaluateAt(Epoch t) const {
    return EvaluateFade(FadeAt(t));
  }
  LocationId ArgmaxAt(Epoch t) const { return EvaluateAt(t).location; }
};

/// The first epoch in (now, horizon] at which the model's argmax differs
/// from its value at `now`; kNeverEpoch when it is stable through `horizon`
/// *and* in the fade -> 0 limit (i.e. stable forever absent graph changes).
/// When the argmax is stable through the horizon but flips in the limit,
/// `horizon` itself is returned as a recheck point. Relies on the winner's
/// pairwise leads being monotone in t: the winner's score never increases
/// (fade decays), "unknown" never decreases, and propagated scores are
/// constant.
Epoch NextArgmaxFlip(const ScoreModel& model, Epoch now, Epoch horizon);

/// Computes Eqs. 3-4. The caller supplies the pass's known colors.
class NodeInferencer {
 public:
  /// `location_periods[l]` is the reading period of the reader at location
  /// l, used to normalize the fading age into missed reading opportunities
  /// (see InferenceParams::normalize_age_by_reader_period). An empty vector
  /// means raw epoch ages.
  NodeInferencer(const Graph* graph, const InferenceParams* params,
                 const EdgeInferencer* edges,
                 std::vector<Epoch> location_periods = {})
      : graph_(graph),
        params_(params),
        edges_(edges),
        location_periods_(std::move(location_periods)) {}

  /// Runs node inference at an uncolored node. When `model` is non-null it
  /// receives the node's score model (for fade-deadline scheduling); the
  /// returned result is always the model evaluated at `now`.
  NodeInferenceResult InferAt(const Node& node, Epoch now,
                              const PassColors& colors,
                              ScoreModel* model = nullptr) const;

  /// The fading age used for a node: epochs since last observation, divided
  /// by the reading period of its last location when normalization is on.
  double FadingAge(const Node& node, Epoch now) const;

 private:
  const Graph* graph_;
  const InferenceParams* params_;
  const EdgeInferencer* edges_;
  std::vector<Epoch> location_periods_;
};

}  // namespace spire
