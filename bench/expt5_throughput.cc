// Expt 5 (Table III): per-epoch costs of graph update and inference for
// graphs of increasing size. Pallets are injected at a high rate and parked
// on shelves so the graph keeps growing; at each node-count checkpoint the
// costs are averaged over a measurement window.
//
// Absolute seconds differ from the paper's (Java on a 2.33 GHz Xeon); the
// shape to check is sub-second epochs with inference dominating update and
// both growing roughly linearly in the object count.
//
//   ./expt5_throughput [full=true] [key=value ...]
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "eval/table.h"
#include "sim/simulator.h"

using namespace spire;
using namespace spire::bench;

int main(int argc, char** argv) {
  Config args = ParseArgs(argc, argv);
  bool full = args.GetBool("full", false).value_or(false);

  SimConfig sim_config;
  // High-rate injection (paper: up to one pallet per 4 s) tuned so the
  // receiving belt keeps up; objects accumulate on many shelves.
  sim_config.pallet_interval = 8;
  sim_config.belt_dwell = 1;
  sim_config.transit_time = 1;
  sim_config.min_cases_per_pallet = 5;
  sim_config.max_cases_per_pallet = 8;
  sim_config.items_per_case = 20;
  sim_config.num_shelves = 64;
  sim_config.shelf_period = 60;
  sim_config.mean_shelf_stay = 1000000;  // Park: the graph only grows.
  sim_config.duration_epochs = 1000000;  // Bounded by the target list below.
  auto overridden = SimConfig::FromConfig(args, sim_config);
  if (overridden.ok()) sim_config = overridden.value();

  std::vector<std::size_t> targets =
      full ? std::vector<std::size_t>{25000, 55000, 75000, 95000, 135000,
                                      155000, 175000}
           : std::vector<std::size_t>{5000, 15000, 25000, 40000};
  constexpr Epoch kWindow = 120;  // Two complete-inference passes.

  PrintHeader("Expt 5: processing cost vs graph size", "Table III");

  auto sim = WarehouseSimulator::Create(sim_config);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return 1;
  }
  WarehouseSimulator& s = *sim.value();
  SpirePipeline pipeline(&s.registry(), PipelineOptions{});
  EventStream sink;

  TextTable table({"objects", "edges", "update (s/epoch)",
                   "inference (s/epoch)", "complete inf (s)", "total (s/epoch)"});
  BenchReport report("throughput");
  std::size_t next_target = 0;
  while (next_target < targets.size() && !s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &sink);
    sink.clear();
    if (s.objects_alive() < targets[next_target]) continue;

    // Measurement window at this size.
    double update = 0.0, inference = 0.0, complete = 0.0;
    int complete_count = 0;
    for (Epoch i = 0; i < kWindow; ++i) {
      EpochReadings window_readings = s.Step();
      pipeline.ProcessEpoch(s.current_epoch(), std::move(window_readings),
                            &sink);
      sink.clear();
      update += pipeline.last_costs().update_seconds;
      inference += pipeline.last_costs().inference_seconds;
      if (pipeline.last_epoch_complete()) {
        complete += pipeline.last_costs().inference_seconds;
        ++complete_count;
      }
    }
    double per_epoch_update = update / kWindow;
    double per_epoch_inference = inference / kWindow;
    table.AddRow({std::to_string(pipeline.graph().NumNodes()),
                  std::to_string(pipeline.graph().NumEdges()),
                  TextTable::Num(per_epoch_update, 6),
                  TextTable::Num(per_epoch_inference, 6),
                  TextTable::Num(complete_count > 0
                                     ? complete / complete_count
                                     : 0.0,
                                 6),
                  TextTable::Num(per_epoch_update + per_epoch_inference, 6)});
    const double total = per_epoch_update + per_epoch_inference;
    const std::string prefix =
        "objects_" + std::to_string(targets[next_target]) + ".";
    report.Add(prefix + "update_s_per_epoch", per_epoch_update);
    report.Add(prefix + "inference_s_per_epoch", per_epoch_inference);
    report.Add(prefix + "epochs_per_sec", total > 0.0 ? 1.0 / total : 0.0);
    ++next_target;
  }
  table.Print();
  Status status = report.Write();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
