#include "spire/pipeline.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "common/epc.h"
#include "obs/trace.h"
#include "store/archive_writer.h"

namespace spire {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

SpirePipeline::SpirePipeline(const ReaderRegistry* registry,
                             PipelineOptions options)
    : registry_(registry),
      options_(options),
      graph_(options.history_size),
      updater_(&graph_, registry),
      inference_(&graph_, options.inference, registry),
      schedule_(InferenceSchedule::FromRegistry(*registry)) {
  if (options_.level == CompressionLevel::kLevel1) {
    compressor_ = std::make_unique<RangeCompressor>(options_.compressor);
  } else {
    compressor_ = std::make_unique<ContainmentCompressor>(options_.compressor);
  }
  if (options_.suppress_warmup_output) {
    for (const ReaderInfo& reader : registry_->readers()) {
      if (reader.type == ReaderType::kEntryDoor) {
        warmup_locations_.push_back(reader.location);
      }
    }
  }
}

bool SpirePipeline::IsWarmupLocation(LocationId location) const {
  return std::find(warmup_locations_.begin(), warmup_locations_.end(),
                   location) != warmup_locations_.end();
}

bool SpirePipeline::IsRetired(ObjectId id, Epoch epoch) const {
  auto it = retired_.find(id);
  return it != retired_.end() &&
         epoch - it->second <= options_.exit_grace_epochs;
}

void SpirePipeline::SetExplainSink(obs::ExplainLog* log) {
  explain_ = log;
  suppression_recorder_.log = log;
  compressor_->SetObserver(log == nullptr ? nullptr : &suppression_recorder_);
}

void SpirePipeline::RecordProvenance(const EventStream& out, std::size_t first,
                                     Epoch epoch, const char* default_stage) {
  if (explain_ == nullptr) return;
  for (std::size_t i = first; i < out.size(); ++i) {
    const Event& event = out[i];
    obs::EventProvenance record;
    record.id = i;
    record.type = ToString(event.type);
    record.object = event.object;
    record.location = event.location;
    record.container = event.container;
    record.start = event.start;
    record.end = event.end;
    record.epoch = epoch;
    record.complete_inference = last_result_.complete;
    record.inference_waves = static_cast<int>(last_result_.waves);
    const ObjectEstimate* estimate = nullptr;
    const char* stage = default_stage;
    if (auto it = last_result_.estimates.find(event.object);
        it != last_result_.estimates.end()) {
      estimate = &it->second;
    } else if (auto exited = exited_estimates_.find(event.object);
               exited != exited_estimates_.end()) {
      estimate = &exited->second;
      stage = "exit";
    }
    if (estimate != nullptr) {
      if (IsContainmentEvent(event.type)) {
        record.winner_posterior = estimate->container_prob;
        record.runner_up_posterior = estimate->container_runner_up;
      } else {
        record.winner_posterior = estimate->location_prob;
        record.runner_up_posterior = estimate->location_runner_up;
      }
    }
    record.stage = stage;
    explain_->RecordEvent(std::move(record));
  }
}

void SpirePipeline::MirrorToArchive(const EventStream& out,
                                    std::size_t first) {
  obs::ScopedSpan span("pipeline", "archive_append");
  if (archive_ == nullptr || !archive_status_.ok()) return;
  for (std::size_t i = first; i < out.size(); ++i) {
    Status status = archive_->Append(out[i]);
    if (!status.ok()) {
      archive_status_ = status;
      return;
    }
  }
}

void SpirePipeline::RetireObject(ObjectId id, Epoch epoch, EventStream* out) {
  // Report the final sighting first so the output stream (like the
  // physical truth) shows the stay at the exit before it closes. The exit
  // ends any containment, which also resumes the object's own location
  // output under level-2 compression — otherwise the final stay of a
  // contained object would be unrecoverable once its container retires.
  auto it = last_result_.estimates.find(id);
  if (it != last_result_.estimates.end() && !it->second.withheld &&
      !IsWarmupLocation(it->second.location)) {
    ObjectStateEstimate state;
    state.object = id;
    state.location = it->second.location;
    state.container = kNoObject;
    // An exit sighting is a definite read, never a disappearance; leaving
    // the flag implicit would let a stale estimate smuggle a Missing
    // singleton into the stream right before the Retire closes it.
    state.missing = false;
    compressor_->Report(state, epoch, out);
  }
  if (it != last_result_.estimates.end()) {
    exited_estimates_.emplace(id, it->second);
    last_result_.estimates.erase(it);
  }
  compressor_->Retire(id, epoch, out);
  graph_.RemoveNode(id);
  retired_[id] = epoch;
}

void SpirePipeline::StageDeparture(const std::vector<ObjectId>& ids,
                                   std::vector<ObjectHandoff>* sink) {
  pending_departures_.push_back(DepartureGroup{ids, sink});
}

void SpirePipeline::ProcessDepartures(Epoch epoch, EventStream* out) {
  for (DepartureGroup& group : pending_departures_) {
    // Capture the whole group before retiring any member: removing one
    // node destroys the intra-group edges the others still need to read.
    const std::unordered_set<ObjectId> members(group.ids.begin(),
                                               group.ids.end());
    for (ObjectId id : group.ids) {
      const Node* node = graph_.FindNode(id);
      // Never sighted here (or already organically exited this epoch):
      // nothing to ship, and nothing to retire below either.
      if (node == nullptr) continue;
      ObjectHandoff handoff;
      handoff.object = id;
      handoff.seen_at = node->seen_at;
      handoff.confirmed = node->confirmed;
      for (EdgeId edge_id : node->parent_edges) {
        const Edge& edge = graph_.edge(edge_id);
        if (!edge.alive || members.count(edge.parent) == 0) continue;
        HandoffEdge shipped;
        shipped.parent = edge.parent;
        shipped.colocation_window = edge.recent_colocations.Window();
        shipped.colocation_count = edge.recent_colocations.size();
        shipped.update_time = edge.update_time;
        shipped.created_at = edge.created_at;
        handoff.parent_edges.push_back(shipped);
      }
      // Adjacency-list order depends on update history; sort for a
      // canonical wire form.
      std::sort(handoff.parent_edges.begin(), handoff.parent_edges.end(),
                [](const HandoffEdge& a, const HandoffEdge& b) {
                  return a.parent < b.parent;
                });
      handoff.has_estimate = inference_.CaptureHandoff(
          node->self, &handoff.estimate, &handoff.fade_deadline);
      if (handoff.has_estimate) {
        // Location ids are site-local; the destination recomputes them on
        // its first complete pass after the splice.
        handoff.estimate.location = kUnknownLocation;
        handoff.estimate.location_prob = 0.0;
        handoff.estimate.location_runner_up = 0.0;
      }
      group.sink->push_back(std::move(handoff));
    }
    // Retire in the staged leaf-up order: contents go before their
    // containers, so Retire never releases a still-live child (which would
    // splice resume events into the stream).
    for (ObjectId id : group.ids) {
      if (graph_.FindNode(id) == nullptr) continue;
      RetireObject(id, epoch, out);
    }
  }
  pending_departures_.clear();
}

void SpirePipeline::ImplantHandoff(const ObjectHandoff& handoff) {
  // A round trip may return within the exit grace window; the arrival must
  // not be swallowed by the retirement filter.
  retired_.erase(handoff.object);
  Node& node = graph_.GetOrCreateNode(handoff.object);
  node.seen_at = handoff.seen_at;
  node.confirmed = handoff.confirmed;
  for (const HandoffEdge& shipped : handoff.parent_edges) {
    // AddEdge creates the parent's node if its own handoff has not been
    // implanted yet (hops are captured leaf-up, so children come first);
    // the parent's implant then fills in its node state.
    const EdgeId edge_id = graph_.AddEdge(shipped.parent, handoff.object);
    Edge& edge = graph_.edge(edge_id);
    edge.recent_colocations.Restore(shipped.colocation_window,
                                    shipped.colocation_count);
    edge.update_time = shipped.update_time;
    edge.created_at = shipped.created_at;
  }
  // Always recompute the implanted component on the next complete pass:
  // the shipped estimate must never be replayed into the output.
  graph_.MarkDirty(node);
  if (handoff.has_estimate) {
    inference_.ImplantHandoff(node.self, handoff.estimate,
                              handoff.fade_deadline);
  }
}

void SpirePipeline::ProcessEpoch(Epoch epoch, EpochReadings readings,
                                 EventStream* out) {
  ++epochs_processed_;
  exited_estimates_.clear();
  obs::ScopedSpan epoch_span("pipeline", "epoch", epoch);
  const std::size_t first_output = out->size();

  // Device-level cleaning: deduplicate multi-reader/multi-tick readings and
  // drop readings of objects inside their exit grace window.
  EpochBatch batch = [&] {
    obs::ScopedSpan span("pipeline", "smooth", epoch);
    Deduplicate(&readings);
    std::erase_if(readings, [&](const RfidReading& r) {
      return IsRetired(r.tag, epoch);
    });
    return GroupByReader(readings, epoch);
  }();

  // Data capture: stream-driven graph update.
  auto t0 = std::chrono::steady_clock::now();
  {
    obs::ScopedSpan span("pipeline", "graph_update", epoch);
    updater_.ApplyEpoch(batch);
  }
  last_costs_.update_seconds = SecondsSince(t0);

  // Interpretation: complete inference when every reader group read this
  // epoch, partial inference otherwise; then conflict resolution.
  auto t1 = std::chrono::steady_clock::now();
  const bool complete =
      options_.inference_mode == InferenceMode::kAlwaysComplete ||
      schedule_.IsCompleteEpoch(epoch);
  {
    obs::ScopedSpan span("pipeline", "inference", epoch);
    if (complete) {
      last_result_ = inference_.RunComplete(epoch);
    } else if (options_.inference_mode == InferenceMode::kCompleteOnly) {
      last_result_ = InferenceResult{};
      last_result_.epoch = epoch;
    } else {
      last_result_ = inference_.RunPartial(epoch);
    }
  }
  if (options_.resolve_conflicts) {
    obs::ScopedSpan span("pipeline", "conflict", epoch);
    ResolveConflicts(&last_result_);
  }
  last_costs_.inference_seconds = SecondsSince(t1);
  total_costs_.update_seconds += last_costs_.update_seconds;
  total_costs_.inference_seconds += last_costs_.inference_seconds;

  {
    obs::ScopedSpan span("pipeline", "compress", epoch);
    // Proper exits: close the objects' events and drop their nodes.
    for (ObjectId id : updater_.exited_this_epoch()) {
      RetireObject(id, epoch, out);
    }

    // Cross-site departures behave like exits, but capture the objects'
    // inference state first (spire/handoff.h).
    if (!pending_departures_.empty()) ProcessDepartures(epoch, out);

    // Output: report every non-withheld estimate; the compressor discards
    // everything that does not change the reported state. Report order matters
    // for stream equivalence across compression levels:
    //  * an object whose open containment terminates this epoch goes first, so
    //    its own location resumes before the former container's updates would
    //    (wrongly) propagate to it;
    //  * then higher packaging layers before their contents, so a container's
    //    location is on the stream before a child's containment opens — that
    //    is what lets level 2 suppress the child's location from the start.
    // The sort keys (containment-ends flag, layer) are precomputed once per
    // id — OpenContainerOf is a compressor-state lookup, far too heavy to
    // re-evaluate inside a comparator.
    struct ReportEntry {
      ObjectId id;
      const ObjectEstimate* estimate;
      bool ends_containment;
      int layer;
    };
    std::vector<ReportEntry> entries;
    entries.reserve(last_result_.estimates.size());
    for (const auto& [id, estimate] : last_result_.estimates) {
      if (estimate.withheld) continue;
      // No inference output for objects in the warm-up (entry door) area.
      if (IsWarmupLocation(estimate.location)) continue;
      const ObjectId open = compressor_->OpenContainerOf(id);
      entries.push_back(ReportEntry{
          id, &estimate, open != kNoObject && estimate.container != open,
          EpcLayer(id)});
    }
    std::sort(entries.begin(), entries.end(),
              [](const ReportEntry& a, const ReportEntry& b) {
                if (a.ends_containment != b.ends_containment) {
                  return a.ends_containment;
                }
                if (a.layer != b.layer) return a.layer > b.layer;
                return a.id < b.id;
              });
    for (const ReportEntry& entry : entries) {
      const ObjectId id = entry.id;
      const ObjectEstimate& estimate = *entry.estimate;
      ObjectStateEstimate state;
      state.object = id;
      state.location = estimate.location;
      // Inference ran before the exit handling above, so an estimate may still
      // name a container that retired this epoch (or within its grace window).
      // A departed object cannot contain anything; dropping the stale edge
      // also keeps the compressor from re-opening a containment under a
      // container whose own events just closed.
      state.container =
          IsRetired(estimate.container, epoch) ? kNoObject : estimate.container;
      compressor_->Report(state, epoch, out);
    }

    // Expire old entries of the retirement set to bound its size.
    if (epochs_processed_ % 1024 == 0) {
      std::erase_if(retired_, [&](const auto& entry) {
        return epoch - entry.second > options_.exit_grace_epochs;
      });
    }

    // Per-epoch duplicate suppression: propagation may have closed a stay
    // that a later report of the same epoch re-opened in place.
    compressor_->CancelEpochChurn(epoch, out, first_output);
  }

  // Provenance is attributed after churn cancellation so the recorded ids
  // are the indexes of the events that actually survived into the stream.
  RecordProvenance(*out, first_output, epoch, "report");

  MirrorToArchive(*out, first_output);
}

void SpirePipeline::Finish(Epoch epoch, EventStream* out) {
  const std::size_t first_output = out->size();
  compressor_->Finish(epoch, out);
  RecordProvenance(*out, first_output, epoch, "finish");
  MirrorToArchive(*out, first_output);
}

}  // namespace spire
