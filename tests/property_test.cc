// Property-based tests.
//
// 1. Compression is lossless: for a random world history, replaying the
//    level-1 stream (or the decompressed level-2 stream) reproduces every
//    reported (location, containment) state at every epoch.
// 2. Pipeline invariants hold across the (read rate x shelf period x level)
//    grid: well-formed output, ratio < 1, warm-up suppression, determinism.
// 3. Graph-update invariants hold on random reading streams: the color
//    constraint, cross-layer direction, and adjacency consistency.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "common/epc.h"
#include "common/random.h"
#include "compress/compressor.h"
#include "compress/decompress.h"
#include "common/wire.h"
#include "compress/serde.h"
#include "compress/well_formed.h"
#include "eval/event_accuracy.h"
#include "eval/size_accounting.h"
#include "graph/graph.h"
#include "graph/update.h"
#include "sim/simulator.h"
#include "sim/world.h"
#include "spire/pipeline.h"

namespace spire {
namespace {

ObjectId Obj(PackagingLevel level, std::uint32_t serial) {
  EpcFields fields;
  fields.level = level;
  fields.serial = serial;
  return EncodeEpcUnchecked(fields);
}

// ------------------------------------------------ Lossless replay property --

/// One recorded world snapshot: object -> (location, container).
using Snapshot = std::map<ObjectId, std::pair<LocationId, ObjectId>>;

/// Replays a (level-1 style) stream: the per-object location/containment at
/// every queried epoch, derived from the stays covering that epoch.
class StreamReplay {
 public:
  explicit StreamReplay(const EventStream& stream) {
    for (const RangedEvent& event : FoldEvents(stream)) {
      if (event.type == EventType::kStartLocation) {
        locations_[event.object].push_back(event);
      } else if (event.type == EventType::kStartContainment) {
        containments_[event.object].push_back(event);
      }
    }
  }

  LocationId LocationAt(ObjectId object, Epoch epoch) const {
    auto it = locations_.find(object);
    if (it == locations_.end()) return kUnknownLocation;
    for (const RangedEvent& stay : it->second) {
      if (stay.start <= epoch && epoch < stay.end) return stay.location;
    }
    return kUnknownLocation;
  }

  ObjectId ContainerAt(ObjectId object, Epoch epoch) const {
    auto it = containments_.find(object);
    if (it == containments_.end()) return kNoObject;
    for (const RangedEvent& stay : it->second) {
      if (stay.start <= epoch && epoch < stay.end) return stay.container;
    }
    return kNoObject;
  }

 private:
  std::map<ObjectId, std::vector<RangedEvent>> locations_;
  std::map<ObjectId, std::vector<RangedEvent>> containments_;
};

/// Drives a random but physically consistent world: objects enter, move,
/// get packed/unpacked, and occasionally vanish. Every epoch the full truth
/// is reported to the compressor under test.
class RandomWorldDriver {
 public:
  explicit RandomWorldDriver(std::uint64_t seed) : rng_(seed) {
    for (std::uint32_t i = 0; i < 2; ++i) {
      pallets_.push_back(Obj(PackagingLevel::kPallet, i));
    }
    for (std::uint32_t i = 0; i < 3; ++i) {
      cases_.push_back(Obj(PackagingLevel::kCase, i));
    }
    for (std::uint32_t i = 0; i < 6; ++i) {
      items_.push_back(Obj(PackagingLevel::kItem, i));
    }
    all_.insert(all_.end(), pallets_.begin(), pallets_.end());
    all_.insert(all_.end(), cases_.begin(), cases_.end());
    all_.insert(all_.end(), items_.begin(), items_.end());
    for (ObjectId id : all_) {
      EXPECT_TRUE(world_.AddObject(id, rng_.NextBounded(kLocations)).ok());
    }
  }

  static constexpr LocationId kLocations = 5;

  void Mutate() {
    ObjectId victim = all_[rng_.NextBounded((std::uint32_t)all_.size())];
    const ObjectState* state = world_.Find(victim);
    switch (rng_.NextBounded(4)) {
      case 0: {  // Move a top-level object (contents follow).
        if (state->parent != kNoObject) break;
        (void)world_.MoveObject(victim, rng_.NextBounded(kLocations));
        break;
      }
      case 1: {  // Contain it in a random higher-level co-resident object.
        if (state->parent != kNoObject || state->stolen) break;
        const std::vector<ObjectId>& pool =
            state->level == PackagingLevel::kItem ? cases_ : pallets_;
        if (state->level == PackagingLevel::kPallet) break;
        ObjectId parent = pool[rng_.NextBounded((std::uint32_t)pool.size())];
        const ObjectState* parent_state = world_.Find(parent);
        if (parent_state == nullptr || parent_state->stolen) break;
        if (parent_state->location != state->location) break;
        (void)world_.SetContainment(victim, parent);
        break;
      }
      case 2:  // Release it.
        (void)world_.ClearContainment(victim);
        break;
      case 3:  // Rarely, it disappears.
        if (!state->stolen && rng_.NextBool(0.05)) {
          (void)world_.Steal(victim);
        }
        break;
    }
  }

  /// Runs one epoch: a few random mutations, then reports the full truth.
  Snapshot StepAndReport(Epoch epoch, Compressor* compressor,
                         EventStream* out) {
    int mutations = static_cast<int>(rng_.NextBounded(4));
    for (int i = 0; i < mutations; ++i) Mutate();
    Snapshot snapshot;
    for (ObjectId id : all_) {
      const ObjectState* state = world_.Find(id);
      ObjectStateEstimate estimate;
      estimate.object = id;
      estimate.location = state->location;
      estimate.container = state->parent;
      compressor->Report(estimate, epoch, out);
      snapshot[id] = {state->location, state->parent};
    }
    return snapshot;
  }

 private:
  PhysicalWorld world_;
  Pcg32 rng_;
  std::vector<ObjectId> pallets_, cases_, items_, all_;
  std::vector<Snapshot> history_;
};

class CompressorLosslessProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(CompressorLosslessProperty, ReplayReproducesEveryReportedState) {
  auto [seed, level] = GetParam();
  RandomWorldDriver driver(seed);
  std::unique_ptr<Compressor> compressor;
  if (level == 1) {
    compressor = std::make_unique<RangeCompressor>();
  } else {
    compressor = std::make_unique<ContainmentCompressor>();
  }
  EventStream stream;
  std::vector<Snapshot> history;
  constexpr Epoch kEpochs = 160;
  for (Epoch epoch = 0; epoch < kEpochs; ++epoch) {
    history.push_back(driver.StepAndReport(epoch, compressor.get(), &stream));
  }
  compressor->Finish(kEpochs, &stream);
  ASSERT_TRUE(ValidateWellFormed(stream).ok());

  EventStream replayable =
      level == 1 ? stream : Decompressor::DecompressAll(stream);
  if (level == 2) {
    ASSERT_TRUE(ValidateWellFormed(replayable, true).ok());
  }
  StreamReplay replay(replayable);
  for (Epoch epoch = 0; epoch < kEpochs; ++epoch) {
    for (const auto& [object, state] : history[epoch]) {
      const auto& [location, container] = state;
      ASSERT_EQ(replay.LocationAt(object, epoch), location)
          << "object " << EpcToString(object) << " at epoch " << epoch
          << " (seed " << seed << ", level " << level << ")";
      ASSERT_EQ(replay.ContainerAt(object, epoch), container)
          << "object " << EpcToString(object) << " at epoch " << epoch
          << " (seed " << seed << ", level " << level << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CompressorLosslessProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                       ::testing::Values(1, 2)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_level" +
             std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------------- Pipeline invariants ---

struct PipelineGridParam {
  double read_rate;
  Epoch shelf_period;
  CompressionLevel level;
};

class PipelineInvariants
    : public ::testing::TestWithParam<PipelineGridParam> {};

TEST_P(PipelineInvariants, HoldAcrossParameterGrid) {
  const PipelineGridParam& param = GetParam();
  SimConfig config;
  config.duration_epochs = 900;
  config.pallet_interval = 300;
  config.min_cases_per_pallet = 2;
  config.max_cases_per_pallet = 2;
  config.items_per_case = 4;
  config.mean_shelf_stay = 250;
  config.num_shelves = 2;
  config.read_rate = param.read_rate;
  config.shelf_period = param.shelf_period;
  auto sim = WarehouseSimulator::Create(config);
  ASSERT_TRUE(sim.ok());
  WarehouseSimulator& s = *sim.value();
  PipelineOptions options;
  options.level = param.level;
  SpirePipeline pipeline(&s.registry(), options);
  EventStream out;
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &out);
  }
  pipeline.Finish(s.current_epoch() + 1, &out);
  s.FinishTruth();

  // Invariant 1: well-formed output and truth.
  EXPECT_TRUE(ValidateWellFormed(out).ok());
  EXPECT_TRUE(ValidateWellFormed(s.truth_events()).ok());
  // Invariant 2: genuine compression.
  if (s.total_readings() > 0) {
    EXPECT_LT(CompressionRatio(out, s.total_readings()), 1.0);
  }
  // Invariant 3: no location events for the warm-up area.
  for (const Event& event : out) {
    if (event.type == EventType::kStartLocation ||
        event.type == EventType::kEndLocation) {
      EXPECT_NE(event.location, s.layout().entry_door);
    }
  }
  // Invariant 4: decompression keeps the stream well-formed.
  EventStream decompressed = Decompressor::DecompressAll(out);
  EXPECT_TRUE(ValidateWellFormed(decompressed, true).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineInvariants,
    ::testing::Values(
        PipelineGridParam{1.0, 1, CompressionLevel::kLevel1},
        PipelineGridParam{1.0, 30, CompressionLevel::kLevel2},
        PipelineGridParam{0.85, 1, CompressionLevel::kLevel2},
        PipelineGridParam{0.85, 15, CompressionLevel::kLevel1},
        PipelineGridParam{0.85, 30, CompressionLevel::kLevel2},
        PipelineGridParam{0.7, 20, CompressionLevel::kLevel1},
        PipelineGridParam{0.7, 20, CompressionLevel::kLevel2},
        PipelineGridParam{0.5, 10, CompressionLevel::kLevel2},
        PipelineGridParam{0.5, 30, CompressionLevel::kLevel1},
        PipelineGridParam{0.3, 30, CompressionLevel::kLevel2}),
    [](const auto& info) {
      const PipelineGridParam& p = info.param;
      return "rr" + std::to_string(static_cast<int>(p.read_rate * 100)) +
             "_shelf" + std::to_string(p.shelf_period) + "_level" +
             std::to_string(static_cast<int>(p.level));
    });

// ------------------------------------------- Serialization round trips ----

class SerdeRoundTripProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(SerdeRoundTripProperty, PipelineOutputSurvivesEncodeDecode) {
  auto [seed, level] = GetParam();
  SimConfig config;
  config.duration_epochs = 700;
  config.pallet_interval = 250;
  config.min_cases_per_pallet = 2;
  config.max_cases_per_pallet = 2;
  config.items_per_case = 3;
  config.mean_shelf_stay = 200;
  config.shelf_period = 20;
  config.num_shelves = 2;
  config.theft_interval = 150;
  config.seed = seed;
  auto sim = WarehouseSimulator::Create(config);
  ASSERT_TRUE(sim.ok());
  WarehouseSimulator& s = *sim.value();
  PipelineOptions options;
  options.level = level == 1 ? CompressionLevel::kLevel1
                             : CompressionLevel::kLevel2;
  SpirePipeline pipeline(&s.registry(), options);
  EventStream stream;
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    pipeline.ProcessEpoch(s.current_epoch(), std::move(readings), &stream);
  }
  pipeline.Finish(s.current_epoch() + 1, &stream);

  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(EventEncoder::EncodeStream(stream, &bytes).ok());
  EXPECT_EQ(bytes.size(), stream.size() * kEventWireBytes);
  EventDecoder decoder;
  auto decoded = decoder.DecodeStream(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), stream);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SerdeRoundTripProperty,
    ::testing::Combine(::testing::Values(11u, 12u, 13u, 14u),
                       ::testing::Values(1, 2)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_level" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------- Graph-update fuzzing ----

class GraphUpdateFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphUpdateFuzz, InvariantsHoldOnRandomStreams) {
  Pcg32 rng(GetParam());
  ReaderRegistry registry;
  constexpr int kReaders = 4;
  for (int i = 0; i < kReaders; ++i) {
    LocationId loc = registry.AddLocation("loc" + std::to_string(i));
    ReaderInfo info;
    info.id = static_cast<ReaderId>(i);
    info.location = loc;
    info.type = i == 2 ? ReaderType::kReceivingBelt : ReaderType::kShelf;
    ASSERT_TRUE(registry.AddReader(info).ok());
  }
  // A pool of objects across the three layers.
  std::vector<ObjectId> pool;
  for (std::uint32_t i = 0; i < 6; ++i) {
    pool.push_back(Obj(PackagingLevel::kItem, i));
  }
  for (std::uint32_t i = 0; i < 3; ++i) {
    pool.push_back(Obj(PackagingLevel::kCase, i));
  }
  for (std::uint32_t i = 0; i < 2; ++i) {
    pool.push_back(Obj(PackagingLevel::kPallet, i));
  }

  Graph graph(8);
  GraphUpdater updater(&graph, &registry);
  for (Epoch epoch = 1; epoch <= 120; ++epoch) {
    updater.BeginEpoch(epoch);
    // Each reader observes a random subset; an object reaches at most one
    // reader per epoch (the dedup layer guarantees this upstream).
    std::vector<int> assigned(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      assigned[i] = static_cast<int>(rng.NextBounded(kReaders + 2)) - 2;
    }
    for (int reader = 0; reader < kReaders; ++reader) {
      ReaderBatch batch;
      batch.reader = static_cast<ReaderId>(reader);
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (assigned[i] == reader) batch.tags.push_back(pool[i]);
      }
      if (!batch.tags.empty()) updater.ApplyReaderBatch(batch);
    }

    // Invariant A: no edge connects two nodes observed at different
    // locations this epoch.
    for (NodeId slot = 0; slot < graph.NodeSlots(); ++slot) {
      const Node* np = graph.NodeAt(slot);
      if (np == nullptr) continue;
      const Node& node = *np;
      for (EdgeId e : node.parent_edges) {
        const Edge& edge = graph.edge(e);
        ASSERT_TRUE(edge.alive);
        const Node* parent = graph.FindNode(edge.parent);
        const Node* child = graph.FindNode(edge.child);
        ASSERT_NE(parent, nullptr);
        ASSERT_NE(child, nullptr);
        if (graph.IsColored(*parent) && graph.IsColored(*child)) {
          ASSERT_EQ(parent->recent_color, child->recent_color)
              << "color constraint violated at epoch " << epoch;
        }
        // Invariant B: edges point from higher to lower layers.
        ASSERT_GT(parent->layer, child->layer);
      }
    }
    // Invariant C: adjacency lists are consistent with edge endpoints.
    std::size_t from_parents = 0, from_children = 0;
    for (NodeId slot = 0; slot < graph.NodeSlots(); ++slot) {
      const Node* np = graph.NodeAt(slot);
      if (np == nullptr) continue;
      for (EdgeId e : np->parent_edges) {
        ASSERT_EQ(graph.edge(e).child, np->id);
        ++from_parents;
      }
      for (EdgeId e : np->child_edges) {
        ASSERT_EQ(graph.edge(e).parent, np->id);
        ++from_children;
      }
    }
    ASSERT_EQ(from_parents, graph.NumEdges());
    ASSERT_EQ(from_children, graph.NumEdges());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphUpdateFuzz,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace spire
