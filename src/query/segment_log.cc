#include "query/segment_log.h"

#include <algorithm>

#include "compress/fold.h"
#include "obs/registry.h"

namespace spire {

namespace {

struct Instruments {
  obs::Counter* queries;
  obs::Counter* blocks_decoded;
};

const Instruments* GetInstruments() {
  if (!spire::obs::Enabled()) return nullptr;
  auto& registry = obs::Registry::Global();
  static const Instruments instruments{
      registry.GetCounter("query", "queries"),
      registry.GetCounter("query", "blocks_decoded"),
  };
  return &instruments;
}

void CountQuery() {
  if (const Instruments* instruments = GetInstruments()) {
    instruments->queries->Add(1);
  }
}

bool IsLocationKind(const Event& event) {
  return !IsContainmentEvent(event.type);
}

}  // namespace

SegmentLog::SegmentLog(ArchiveReader reader, std::shared_ptr<BlockCache> cache)
    : reader_(std::move(reader)), cache_(std::move(cache)) {
  segment_tag_ = BlockCache::NextSegmentTag();
  monotone_min_epochs_ = true;
  const std::vector<BlockMeta>& blocks = reader_.blocks();
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    if (blocks[i].min_epoch < blocks[i - 1].min_epoch) {
      monotone_min_epochs_ = false;
      break;
    }
  }
}

Result<std::unique_ptr<SegmentLog>> SegmentLog::Open(
    const std::string& path, ReaderOptions options,
    std::shared_ptr<BlockCache> cache) {
  auto reader = ArchiveReader::Open(path, options);
  if (!reader.ok()) return reader.status();
  return std::unique_ptr<SegmentLog>(
      new SegmentLog(std::move(reader).value(), std::move(cache)));
}

std::vector<std::uint32_t> SegmentLog::CandidateBlocks(
    const std::vector<std::uint32_t>& postings, Epoch epoch) const {
  const std::vector<BlockMeta>& blocks = reader_.blocks();
  if (monotone_min_epochs_) {
    // min-epochs are monotone over the directory, hence over any posting
    // list (a subsequence), so the candidates are a binary-searched prefix.
    auto end = std::partition_point(
        postings.begin(), postings.end(), [&](std::uint32_t index) {
          return blocks[index].min_epoch <= epoch;
        });
    return {postings.begin(), end};
  }
  std::vector<std::uint32_t> selected;
  for (std::uint32_t index : postings) {
    if (blocks[index].min_epoch <= epoch) selected.push_back(index);
  }
  return selected;
}

Result<BlockCache::BlockPtr> SegmentLog::FetchBlock(
    std::uint32_t index) const {
  if (cache_ != nullptr) {
    if (BlockCache::BlockPtr hit = cache_->Get(segment_tag_, index)) {
      return hit;
    }
  }
  auto decoded = reader_.DecodeOneBlock(index);
  if (!decoded.ok()) return decoded.status();
  blocks_decoded_.fetch_add(1, std::memory_order_relaxed);
  if (const Instruments* instruments = GetInstruments()) {
    instruments->blocks_decoded->Add(1);
  }
  auto block =
      std::make_shared<const EventStream>(std::move(decoded).value());
  if (cache_ != nullptr) cache_->Put(segment_tag_, index, block);
  return block;
}

template <typename Keep>
Result<EventStream> SegmentLog::Collect(
    const std::vector<std::uint32_t>& blocks, Keep keep) const {
  EventStream selected;
  for (std::uint32_t index : blocks) {
    auto block = FetchBlock(index);
    if (!block.ok()) return block.status();
    for (const Event& event : *block.value()) {
      if (keep(event)) selected.push_back(event);
    }
  }
  return selected;
}

Result<LocationId> SegmentLog::LocationAt(ObjectId object,
                                          Epoch epoch) const {
  CountQuery();
  const std::vector<std::uint32_t>* postings =
      reader_.PostingsForObject(object);
  if (postings == nullptr) return kUnknownLocation;
  auto selected =
      Collect(CandidateBlocks(*postings, epoch), [&](const Event& event) {
        return event.object == object &&
               (event.type == EventType::kStartLocation ||
                event.type == EventType::kEndLocation);
      });
  if (!selected.ok()) return selected.status();
  // Folded events are start-sorted; at most one location stay covers any
  // epoch (well-formedness forbids nested Starts), mirroring CoveringStay.
  for (const RangedEvent& stay : FoldEvents(selected.value())) {
    if (stay.type != EventType::kStartLocation) continue;
    if (stay.start <= epoch && epoch < stay.end) return stay.location;
    if (stay.start > epoch) break;
  }
  return kUnknownLocation;
}

Result<ObjectId> SegmentLog::ContainerAt(ObjectId object, Epoch epoch) const {
  CountQuery();
  const std::vector<std::uint32_t>* postings =
      reader_.PostingsForObject(object);
  if (postings == nullptr) return kNoObject;
  auto selected =
      Collect(CandidateBlocks(*postings, epoch), [&](const Event& event) {
        return event.object == object && IsContainmentEvent(event.type);
      });
  if (!selected.ok()) return selected.status();
  for (const RangedEvent& stay : FoldEvents(selected.value())) {
    if (stay.type != EventType::kStartContainment) continue;
    if (stay.start <= epoch && epoch < stay.end) return stay.container;
    if (stay.start > epoch) break;
  }
  return kNoObject;
}

Status SegmentLog::AppendContents(ObjectId container, Epoch epoch,
                                  bool transitive, std::vector<ObjectId>* out,
                                  std::vector<ObjectId>* visited) const {
  const std::vector<std::uint32_t>* postings =
      reader_.PostingsForContainer(container);
  if (postings == nullptr) return Status::OK();
  auto selected =
      Collect(CandidateBlocks(*postings, epoch), [&](const Event& event) {
        return IsContainmentEvent(event.type) && event.container == container;
      });
  if (!selected.ok()) return selected.status();
  std::vector<ObjectId> direct;
  for (const RangedEvent& stay : FoldEvents(selected.value())) {
    if (stay.type != EventType::kStartContainment) continue;
    if (stay.start <= epoch && epoch < stay.end) direct.push_back(stay.object);
  }
  out->insert(out->end(), direct.begin(), direct.end());
  if (!transitive) return Status::OK();
  for (ObjectId child : direct) {
    // The containment forest is acyclic on well-formed data; the visited
    // set guards malformed cycles and skips DAG re-visits (the final
    // sort+unique makes the result a set either way).
    if (std::find(visited->begin(), visited->end(), child) != visited->end()) {
      continue;
    }
    visited->push_back(child);
    SPIRE_RETURN_NOT_OK(AppendContents(child, epoch, true, out, visited));
  }
  return Status::OK();
}

Result<std::vector<ObjectId>> SegmentLog::ContentsAt(ObjectId container,
                                                     Epoch epoch,
                                                     bool transitive) const {
  CountQuery();
  std::vector<ObjectId> contents;
  std::vector<ObjectId> visited{container};
  SPIRE_RETURN_NOT_OK(
      AppendContents(container, epoch, transitive, &contents, &visited));
  std::sort(contents.begin(), contents.end());
  contents.erase(std::unique(contents.begin(), contents.end()),
                 contents.end());
  return contents;
}

Result<std::vector<ObjectId>> SegmentLog::ObjectsAt(LocationId location,
                                                    Epoch epoch) const {
  CountQuery();
  std::vector<ObjectId> objects;
  const std::vector<std::uint32_t>* postings =
      reader_.PostingsForLocation(location);
  if (postings == nullptr) return objects;
  auto selected =
      Collect(CandidateBlocks(*postings, epoch), [&](const Event& event) {
        return IsLocationKind(event) && event.location == location;
      });
  if (!selected.ok()) return selected.status();
  for (const RangedEvent& stay : FoldEvents(selected.value())) {
    if (stay.type != EventType::kStartLocation) continue;
    if (stay.start <= epoch && epoch < stay.end) {
      objects.push_back(stay.object);
    }
  }
  std::sort(objects.begin(), objects.end());
  return objects;
}

Result<std::vector<Stay>> SegmentLog::TrajectoryOf(ObjectId object) const {
  CountQuery();
  std::vector<Stay> trajectory;
  const std::vector<std::uint32_t>* postings =
      reader_.PostingsForObject(object);
  if (postings == nullptr) return trajectory;
  // Timeline query: no epoch cut — every posting block participates.
  auto selected = Collect(*postings, [&](const Event& event) {
    return event.object == object &&
           (event.type == EventType::kStartLocation ||
            event.type == EventType::kEndLocation);
  });
  if (!selected.ok()) return selected.status();
  for (const RangedEvent& folded : FoldEvents(selected.value())) {
    if (folded.type != EventType::kStartLocation) continue;
    Stay stay;
    stay.start = folded.start;
    stay.end = folded.end;
    stay.location = folded.location;
    trajectory.push_back(stay);
  }
  return trajectory;
}

Result<bool> SegmentLog::IsMissingAt(ObjectId object, Epoch epoch) const {
  CountQuery();
  const std::vector<std::uint32_t>* postings =
      reader_.PostingsForObject(object);
  if (postings == nullptr) return false;
  // Missing reports close at the object's next location stay, so the fold
  // needs both kinds of location events.
  auto selected =
      Collect(CandidateBlocks(*postings, epoch), [&](const Event& event) {
        return event.object == object && IsLocationKind(event);
      });
  if (!selected.ok()) return selected.status();
  const std::vector<RangedEvent> folded = FoldEvents(selected.value());
  for (const RangedEvent& report : folded) {
    if (report.type != EventType::kMissing) continue;
    if (report.start > epoch) break;  // Start-sorted; no later report covers.
    // The report runs until the object's next sighting: the first location
    // stay starting at or after `since` (EventLog's closing rule). A
    // sighting past the candidate prefix starts after `epoch`, so the
    // answer at `epoch` is unchanged by the cut.
    Epoch until = kInfiniteEpoch;
    for (const RangedEvent& stay : folded) {
      if (stay.type != EventType::kStartLocation) continue;
      if (stay.start >= report.start) {
        until = stay.start;
        break;
      }
    }
    if (report.start <= epoch && epoch < until) return true;
  }
  return false;
}

}  // namespace spire
