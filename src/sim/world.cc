#include "sim/world.h"

#include <algorithm>

namespace spire {

Status PhysicalWorld::AddObject(ObjectId id, LocationId location) {
  auto [it, inserted] = objects_.try_emplace(id);
  if (!inserted) {
    return Status::AlreadyExists("object already in world: " + EpcToString(id));
  }
  ObjectState& state = it->second;
  state.id = id;
  state.level = EpcLevel(id);
  state.location = location;
  Reindex(id, kUnknownLocation, location);
  return Status::OK();
}

Status PhysicalWorld::RemoveObject(ObjectId id) {
  ObjectState* state = FindMutable(id);
  if (state == nullptr) {
    return Status::NotFound("object not in world: " + EpcToString(id));
  }
  if (state->parent != kNoObject) {
    SPIRE_RETURN_NOT_OK(ClearContainment(id));
  }
  // Orphan any remaining children (callers normally remove whole groups).
  for (ObjectId child : std::vector<ObjectId>(state->children)) {
    SPIRE_RETURN_NOT_OK(ClearContainment(child));
  }
  Reindex(id, state->location, kUnknownLocation);
  objects_.erase(id);
  return Status::OK();
}

Status PhysicalWorld::MoveObject(ObjectId id, LocationId location) {
  ObjectState* state = FindMutable(id);
  if (state == nullptr) {
    return Status::NotFound("object not in world: " + EpcToString(id));
  }
  MoveRecursive(*state, location);
  return Status::OK();
}

Status PhysicalWorld::SetContainment(ObjectId child, ObjectId parent) {
  ObjectState* child_state = FindMutable(child);
  ObjectState* parent_state = FindMutable(parent);
  if (child_state == nullptr || parent_state == nullptr) {
    return Status::NotFound("containment endpoints must both be in the world");
  }
  if (child_state->parent != kNoObject) {
    return Status::InvalidArgument("child already has a container: " +
                                   EpcToString(child));
  }
  if (child_state->location != parent_state->location) {
    return Status::InvalidArgument(
        "containment requires co-residence (Section II)");
  }
  child_state->parent = parent;
  parent_state->children.push_back(child);
  return Status::OK();
}

Status PhysicalWorld::ClearContainment(ObjectId child) {
  ObjectState* child_state = FindMutable(child);
  if (child_state == nullptr) {
    return Status::NotFound("object not in world: " + EpcToString(child));
  }
  if (child_state->parent == kNoObject) return Status::OK();
  ObjectState* parent_state = FindMutable(child_state->parent);
  if (parent_state != nullptr) {
    auto& siblings = parent_state->children;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), child),
                   siblings.end());
  }
  child_state->parent = kNoObject;
  return Status::OK();
}

Status PhysicalWorld::Steal(ObjectId id) {
  ObjectState* state = FindMutable(id);
  if (state == nullptr) {
    return Status::NotFound("object not in world: " + EpcToString(id));
  }
  SPIRE_RETURN_NOT_OK(ClearContainment(id));
  MoveRecursive(*state, kUnknownLocation);
  state->stolen = true;
  return Status::OK();
}

bool PhysicalWorld::Resides(ObjectId id, LocationId location) const {
  const ObjectState* state = Find(id);
  return state != nullptr && state->location == location;
}

LocationId PhysicalWorld::LocationOf(ObjectId id) const {
  const ObjectState* state = Find(id);
  return state == nullptr ? kUnknownLocation : state->location;
}

ObjectId PhysicalWorld::ParentOf(ObjectId id) const {
  const ObjectState* state = Find(id);
  return state == nullptr ? kNoObject : state->parent;
}

ObjectId PhysicalWorld::TopLevelContainerOf(ObjectId id) const {
  const ObjectState* state = Find(id);
  if (state == nullptr) return kNoObject;
  while (state->parent != kNoObject) {
    const ObjectState* parent = Find(state->parent);
    if (parent == nullptr) break;
    state = parent;
  }
  return state->id;
}

const ObjectState* PhysicalWorld::Find(ObjectId id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

ObjectState* PhysicalWorld::FindMutable(ObjectId id) {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

const std::set<ObjectId>& PhysicalWorld::ObjectsAt(LocationId location) const {
  static const std::set<ObjectId> kEmpty;
  if (location == kUnknownLocation) return kEmpty;
  auto it = by_location_.find(location);
  return it == by_location_.end() ? kEmpty : it->second;
}

void PhysicalWorld::MoveRecursive(ObjectState& state, LocationId location) {
  Reindex(state.id, state.location, location);
  state.location = location;
  for (ObjectId child : state.children) {
    ObjectState* child_state = FindMutable(child);
    if (child_state != nullptr) {
      MoveRecursive(*child_state, location);
    }
  }
}

void PhysicalWorld::Reindex(ObjectId id, LocationId from, LocationId to) {
  if (from == to) return;
  if (from != kUnknownLocation) {
    auto it = by_location_.find(from);
    if (it != by_location_.end()) it->second.erase(id);
  }
  if (to != kUnknownLocation) {
    by_location_[to].insert(id);
  }
}

}  // namespace spire
