// LEB128 varint and zigzag coding for the archive block codec.
//
// The archive encodes event columns as deltas: epochs are near-sorted and
// object ids cluster by packaging level, so successive differences are small
// and a 64-bit value usually fits in one or two bytes (the Sparkey /
// Simple8b-style integer-coding idiom). Deltas can be negative, so signed
// values ride through the zigzag map first.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace spire {

/// Maximum encoded size of one 64-bit varint.
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Appends `value` as a little-endian base-128 varint.
inline void PutVarint64(std::uint64_t value, std::vector<std::uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(value));
}

/// Decodes one varint from `in[*offset, size)`, advancing `*offset` past the
/// encoding. Strict: every decodable byte sequence is the unique encoding
/// PutVarint64 produces. Fails on
///   - truncation or an encoding longer than 10 bytes;
///   - a 10th byte carrying bits beyond bit 63 (the 9 prior bytes supply 63
///     bits, so only its lowest bit is payload — anything else would be
///     silently shifted out);
///   - non-canonical padding (a trailing 0x00 continuation target, e.g.
///     0x80 0x00 for zero): the final byte of a multi-byte encoding must be
///     nonzero, or a shorter encoding of the same value exists.
inline Result<std::uint64_t> GetVarint64(const std::uint8_t* in,
                                         std::size_t size,
                                         std::size_t* offset) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
    if (*offset >= size) {
      return Status::Corruption("truncated varint");
    }
    const std::uint8_t byte = in[(*offset)++];
    if (i == kMaxVarintBytes - 1 && byte > 1) {
      return Status::Corruption("varint overflows 64 bits");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7f) << (7 * i);
    if ((byte & 0x80) == 0) {
      if (byte == 0 && i > 0) {
        return Status::Corruption("non-canonical varint padding");
      }
      return value;
    }
  }
  return Status::Corruption("varint longer than 10 bytes");
}

inline Result<std::uint64_t> GetVarint64(const std::vector<std::uint8_t>& in,
                                         std::size_t* offset) {
  return GetVarint64(in.data(), in.size(), offset);
}

/// Advances `*offset` past one varint without decoding it (column skip);
/// applies the same length bound, but not the canonicality checks — the
/// full-decode path is the validator.
inline Status SkipVarint64(const std::uint8_t* in, std::size_t size,
                           std::size_t* offset) {
  for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
    if (*offset >= size) return Status::Corruption("truncated varint");
    if ((in[(*offset)++] & 0x80) == 0) return Status::OK();
  }
  return Status::Corruption("varint longer than 10 bytes");
}

/// Maps signed to unsigned so small-magnitude values (either sign) encode
/// short: 0,-1,1,-2,... -> 0,1,2,3,...
inline std::uint64_t ZigzagEncode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

/// Inverse of ZigzagEncode.
inline std::int64_t ZigzagDecode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

}  // namespace spire
