#include "eval/delay.h"

#include <algorithm>
#include <unordered_map>

namespace spire {

DelayStats EvaluateDetectionDelay(const std::vector<Theft>& thefts,
                                  const EventStream& output, Epoch horizon) {
  // Missing-event epochs per object, ascending.
  std::unordered_map<ObjectId, std::vector<Epoch>> missing_at;
  for (const Event& event : output) {
    if (event.type == EventType::kMissing) {
      missing_at[event.object].push_back(event.start);
    }
  }
  for (auto& [id, epochs] : missing_at) {
    std::sort(epochs.begin(), epochs.end());
  }

  DelayStats stats;
  stats.thefts = thefts.size();
  std::vector<Epoch> delays;
  for (const Theft& theft : thefts) {
    auto it = missing_at.find(theft.object);
    if (it == missing_at.end()) continue;
    auto first = std::lower_bound(it->second.begin(), it->second.end(),
                                  theft.epoch);
    if (first == it->second.end()) continue;
    Epoch delay = *first - theft.epoch;
    if (delay > horizon) continue;
    delays.push_back(delay);
  }
  stats.detected = delays.size();
  if (!delays.empty()) {
    std::sort(delays.begin(), delays.end());
    double sum = 0.0;
    for (Epoch d : delays) sum += static_cast<double>(d);
    stats.mean_delay = sum / static_cast<double>(delays.size());
    stats.median_delay =
        static_cast<double>(delays[delays.size() / 2]);
    stats.max_delay = delays.back();
  }
  return stats;
}

}  // namespace spire
