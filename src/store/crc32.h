// CRC-32 (IEEE 802.3 polynomial) checksums for archive block integrity.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spire {

/// CRC-32 of `size` bytes, continuing from `seed` (0 for a fresh checksum),
/// so a header-plus-payload checksum can be computed in two calls.
std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

}  // namespace spire
