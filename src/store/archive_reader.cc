#include "store/archive_reader.h"

#include <filesystem>
#include <fstream>
#include <set>
#include <system_error>
#include <utility>

#include "store/block.h"
#include "store/crc32.h"
#include "store/little_endian.h"

namespace spire {

namespace {

/// Cross-checks a parsed, CRC-valid block header against its directory
/// entry. The directory (sidecar or rebuild scan) is what scans trust for
/// skipping; a header that disagrees means segment and directory have
/// diverged — corruption, never a fallback.
Status CheckHeaderAgainstMeta(const BlockHeader& header, const BlockMeta& meta,
                              const std::string& path) {
  if (header.count != meta.count || header.codec != meta.codec ||
      header.min_epoch != meta.min_epoch ||
      header.max_epoch != meta.max_epoch) {
    return Status::Corruption("block header disagrees with the directory: " +
                              path);
  }
  return Status::OK();
}

}  // namespace

ArchiveReader::ArchiveReader(std::string path, SegmentInfo info,
                             bool index_rebuilt,
                             std::shared_ptr<MappedFile> map)
    : path_(std::move(path)),
      info_(std::move(info)),
      index_rebuilt_(index_rebuilt),
      map_(std::move(map)) {
  if (map_ != nullptr && !info_.blocks.empty()) {
    payload_ok_.reset(new std::atomic<std::uint8_t>[info_.blocks.size()]());
  }
}

Result<ArchiveReader> ArchiveReader::Open(const std::string& path,
                                          ReaderOptions options) {
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) return Status::NotFound("cannot open archive segment: " + path);

  SegmentInfo info;
  bool rebuilt = false;
  auto indexed = ReadIndexFile(path, size);
  if (indexed.ok()) {
    info = std::move(indexed).value();
  } else {
    auto scanned = ScanSegment(path);
    if (!scanned.ok()) return scanned.status();
    info = std::move(scanned).value();
    rebuilt = true;
  }

  // Map only the validated prefix: a torn tail beyond valid_bytes stays
  // invisible to zero-copy scans, same as to the buffered path.
  std::shared_ptr<MappedFile> map;
  if (options.use_mmap) {
    auto mapped = MappedFile::Open(path, info.valid_bytes);
    if (mapped.ok()) map = std::move(mapped).value();
    // Any failure (platform without mmap, exotic filesystem) falls back to
    // buffered reads — never an open error.
  }
  return ArchiveReader(std::move(path), std::move(info), rebuilt,
                       std::move(map));
}

Status ArchiveReader::DecodeBlockSet(const std::vector<std::uint32_t>& indexes,
                                     bool epochs_only, EventStream* events_out,
                                     std::vector<Epoch>* epochs_out) const {
  if (indexes.empty()) return Status::OK();
  const std::size_t header_bytes = BlockHeaderBytes(info_.version);

  std::ifstream in;
  if (map_ == nullptr) {
    in.open(path_, std::ios::binary);
    if (!in) return Status::NotFound("cannot open archive segment: " + path_);
  }

  std::vector<std::uint8_t> buffer;  // Header + payload (buffered path only).
  for (std::uint32_t index : indexes) {
    if (index >= info_.blocks.size()) {
      return Status::Internal("block index out of range");
    }
    const BlockMeta& meta = info_.blocks[index];

    const std::uint8_t* block_bytes = nullptr;
    if (map_ != nullptr) {
      // Zero-copy: the block must lie inside the mapped valid prefix.
      if (meta.offset > map_->size() ||
          map_->size() - meta.offset < header_bytes) {
        return Status::Corruption("block header past the valid prefix: " +
                                  path_);
      }
      block_bytes = map_->data() + meta.offset;
    } else {
      buffer.resize(header_bytes);
      in.seekg(static_cast<std::streamoff>(meta.offset));
      in.read(reinterpret_cast<char*>(buffer.data()),
              static_cast<std::streamsize>(header_bytes));
      if (!in.good()) {
        return Status::Corruption("truncated block header in " + path_);
      }
      block_bytes = buffer.data();
    }

    auto parsed = ParseBlockHeader(block_bytes, info_.version);
    if (!parsed.ok()) return parsed.status();
    const BlockHeader header = parsed.value();
    SPIRE_RETURN_NOT_OK(CheckHeaderAgainstMeta(header, meta, path_));

    const std::uint8_t* payload = nullptr;
    if (map_ != nullptr) {
      if (map_->size() - meta.offset - header_bytes < header.payload_size) {
        return Status::Corruption("block payload past the valid prefix: " +
                                  path_);
      }
      payload = block_bytes + header_bytes;
    } else {
      buffer.resize(header_bytes + header.payload_size);
      in.read(reinterpret_cast<char*>(buffer.data() + header_bytes),
              static_cast<std::streamsize>(header.payload_size));
      if (!in.good()) {
        return Status::Corruption("truncated block payload in " + path_);
      }
      payload = buffer.data() + header_bytes;
    }
    // Mapped payloads pay the checksum once per reader: the mapping pins
    // the bytes, so a passed check cannot be invalidated. The buffered
    // path re-reads from the file each scan and therefore re-checks.
    const bool crc_cached =
        payload_ok_ != nullptr &&
        payload_ok_[index].load(std::memory_order_acquire) != 0;
    if (!crc_cached) {
      if (Crc32(payload, header.payload_size) != header.payload_crc) {
        return Status::Corruption("block payload checksum mismatch in " +
                                  path_);
      }
      if (payload_ok_ != nullptr) {
        payload_ok_[index].store(1, std::memory_order_release);
      }
    }

    if (epochs_only) {
      SPIRE_RETURN_NOT_OK(DecodeBlockEpochs(payload, header.payload_size,
                                            header.count, header.codec,
                                            epochs_out));
    } else {
      SPIRE_RETURN_NOT_OK(DecodeBlock(payload, header.payload_size,
                                      header.count, header.codec, events_out));
    }
  }
  return Status::OK();
}

Result<EventStream> ArchiveReader::DecodeBlocks(
    const std::vector<std::uint32_t>& indexes) const {
  EventStream events;
  SPIRE_RETURN_NOT_OK(
      DecodeBlockSet(indexes, /*epochs_only=*/false, &events, nullptr));
  return events;
}

std::vector<std::uint32_t> ArchiveReader::AllBlockIndexes() const {
  std::vector<std::uint32_t> all(info_.blocks.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<std::uint32_t>(i);
  }
  return all;
}

Result<EventStream> ArchiveReader::ScanAll() const {
  return DecodeBlocks(AllBlockIndexes());
}

Result<std::vector<Epoch>> ArchiveReader::ScanEpochColumn() const {
  std::vector<Epoch> epochs;
  epochs.reserve(info_.events);
  SPIRE_RETURN_NOT_OK(DecodeBlockSet(AllBlockIndexes(), /*epochs_only=*/true,
                                     nullptr, &epochs));
  return epochs;
}

Result<EventStream> ArchiveReader::ScanRange(Epoch lo, Epoch hi) const {
  std::vector<std::uint32_t> selected;
  for (std::size_t i = 0; i < info_.blocks.size(); ++i) {
    if (info_.blocks[i].Intersects(lo, hi)) {
      selected.push_back(static_cast<std::uint32_t>(i));
    }
  }
  auto decoded = DecodeBlocks(selected);
  if (!decoded.ok()) return decoded.status();
  EventStream events;
  for (const Event& event : decoded.value()) {
    const Epoch primary = PrimaryEpoch(event);
    if (lo <= primary && primary <= hi) events.push_back(event);
  }
  return events;
}

Result<EventStream> ArchiveReader::ScanObject(ObjectId object) const {
  auto it = info_.postings.find(object);
  if (it == info_.postings.end()) return EventStream{};
  auto decoded = DecodeBlocks(it->second);
  if (!decoded.ok()) return decoded.status();
  EventStream events;
  for (const Event& event : decoded.value()) {
    if (event.object == object) events.push_back(event);
  }
  return events;
}

Result<EventStream> ArchiveReader::ScanObjectRange(ObjectId object, Epoch lo,
                                                   Epoch hi) const {
  auto it = info_.postings.find(object);
  if (it == info_.postings.end()) return EventStream{};
  std::vector<std::uint32_t> selected;
  for (std::uint32_t index : it->second) {
    if (info_.blocks[index].Intersects(lo, hi)) selected.push_back(index);
  }
  auto decoded = DecodeBlocks(selected);
  if (!decoded.ok()) return decoded.status();
  EventStream events;
  for (const Event& event : decoded.value()) {
    if (event.object != object) continue;
    const Epoch primary = PrimaryEpoch(event);
    if (lo <= primary && primary <= hi) events.push_back(event);
  }
  return events;
}

Result<EventStream> ArchiveReader::DecodeOneBlock(std::uint32_t index) const {
  if (index >= info_.blocks.size()) {
    return Status::InvalidArgument("block index out of range");
  }
  return DecodeBlocks({index});
}

EventStream RepairRestrictedStream(const EventStream& selection) {
  EventStream repaired;
  repaired.reserve(selection.size());
  std::set<std::pair<ObjectId, bool>> open;
  for (const Event& event : selection) {
    const bool containment = IsContainmentEvent(event.type);
    switch (event.type) {
      case EventType::kStartLocation:
      case EventType::kStartContainment:
        open.insert({event.object, containment});
        break;
      case EventType::kEndLocation:
      case EventType::kEndContainment: {
        auto it = open.find({event.object, containment});
        if (it == open.end()) {
          Event start = event;
          start.type = containment ? EventType::kStartContainment
                                   : EventType::kStartLocation;
          start.end = kInfiniteEpoch;
          repaired.push_back(start);
        } else {
          open.erase(it);
        }
        break;
      }
      case EventType::kMissing:
        break;
    }
    repaired.push_back(event);
  }
  return repaired;
}

std::size_t ArchiveReader::BlocksInRange(Epoch lo, Epoch hi) const {
  std::size_t count = 0;
  for (const BlockMeta& block : info_.blocks) {
    if (block.Intersects(lo, hi)) ++count;
  }
  return count;
}

std::size_t ArchiveReader::BlocksForObject(ObjectId object) const {
  auto it = info_.postings.find(object);
  return it == info_.postings.end() ? 0 : it->second.size();
}

std::size_t ArchiveReader::BlocksForObjectInRange(ObjectId object, Epoch lo,
                                                  Epoch hi) const {
  auto it = info_.postings.find(object);
  if (it == info_.postings.end()) return 0;
  std::size_t count = 0;
  for (std::uint32_t index : it->second) {
    if (info_.blocks[index].Intersects(lo, hi)) ++count;
  }
  return count;
}

const std::vector<std::uint32_t>* ArchiveReader::PostingsForObject(
    ObjectId object) const {
  auto it = info_.postings.find(object);
  return it == info_.postings.end() ? nullptr : &it->second;
}

const std::vector<std::uint32_t>* ArchiveReader::PostingsForLocation(
    LocationId location) const {
  auto it = info_.location_postings.find(location);
  return it == info_.location_postings.end() ? nullptr : &it->second;
}

const std::vector<std::uint32_t>* ArchiveReader::PostingsForContainer(
    ObjectId container) const {
  auto it = info_.container_postings.find(container);
  return it == info_.container_postings.end() ? nullptr : &it->second;
}

}  // namespace spire
