#include "graph/update.h"

#include <algorithm>
#include <array>

#include "obs/registry.h"

namespace spire {

namespace {

struct Instruments {
  obs::Counter* epochs_applied;
  obs::Counter* readings;
  obs::Counter* nodes_created;
  obs::Counter* edges_created;
  obs::Counter* edges_removed;
  obs::Counter* confirmations;
  obs::Counter* conflicts_recorded;
};

const Instruments* GetInstruments() {
  if (!obs::Enabled()) return nullptr;
  auto& registry = obs::Registry::Global();
  static const Instruments instruments{
      registry.GetCounter("graph", "epochs_applied"),
      registry.GetCounter("graph", "readings"),
      registry.GetCounter("graph", "nodes_created"),
      registry.GetCounter("graph", "edges_created"),
      registry.GetCounter("graph", "edges_removed"),
      registry.GetCounter("graph", "confirmations"),
      registry.GetCounter("graph", "conflicts_recorded"),
  };
  return &instruments;
}

}  // namespace

UpdateStats& UpdateStats::operator+=(const UpdateStats& other) {
  readings += other.readings;
  nodes_created += other.nodes_created;
  edges_created += other.edges_created;
  edges_removed += other.edges_removed;
  colocations_recorded += other.colocations_recorded;
  confirmations += other.confirmations;
  conflicts_recorded += other.conflicts_recorded;
  return *this;
}

void GraphUpdater::BeginEpoch(Epoch now) {
  graph_->BeginEpoch(now);
  exited_.clear();
}

UpdateStats GraphUpdater::ApplyEpoch(const EpochBatch& batch) {
  BeginEpoch(batch.epoch);
  UpdateStats stats;
  for (const ReaderBatch& reader_batch : batch.per_reader) {
    stats += ApplyReaderBatch(reader_batch);
  }
  if (const Instruments* instruments = GetInstruments()) {
    instruments->epochs_applied->Add(1);
    instruments->readings->Add(stats.readings);
    instruments->nodes_created->Add(stats.nodes_created);
    instruments->edges_created->Add(stats.edges_created);
    instruments->edges_removed->Add(stats.edges_removed);
    instruments->confirmations->Add(stats.confirmations);
    instruments->conflicts_recorded->Add(stats.conflicts_recorded);
  }
  return stats;
}

GraphUpdater::Confirmation GraphUpdater::ComputeConfirmation(
    const ReaderBatch& batch) const {
  Confirmation confirmation;
  // Domain knowledge (Section III-B): a belt reader scans one top-level
  // container at a time. When the batch contains exactly one object at its
  // highest packaging level, that object is the confirmed top-level
  // container and every adjacent-layer object in the batch is confirmed to
  // be directly contained in it. (Objects two layers down — items under a
  // scanned pallet — are not confirmed: their direct container is unknown.)
  int top_layer = -1;
  int top_count = 0;
  for (ObjectId tag : batch.tags) {
    int layer = EpcLayer(tag);
    if (layer > top_layer) {
      top_layer = layer;
      top_count = 1;
      confirmation.top = tag;
    } else if (layer == top_layer) {
      ++top_count;
    }
  }
  if (top_count != 1 || top_layer <= 0) return confirmation;
  confirmation.active = true;
  for (ObjectId tag : batch.tags) {
    if (EpcLayer(tag) == top_layer - 1) confirmation.children.insert(tag);
  }
  return confirmation;
}

UpdateStats GraphUpdater::ApplyReaderBatch(const ReaderBatch& batch) {
  UpdateStats stats;
  auto reader = registry_->GetReader(batch.reader);
  if (!reader.ok() || batch.tags.empty()) return stats;
  // Mobile readers resolve to their patrol stop for this epoch.
  const LocationId color = registry_->LocationAt(batch.reader, graph_->now());
  const bool special = IsSpecialReader(reader.value().type);
  const bool exit = IsExitReader(reader.value().type);

  // Step 1: create and color nodes; remember which gained a *new* color
  // (just created, or observed at a different location than their most
  // recent color) — only those spawn edges in step 2.
  std::unordered_set<ObjectId> new_color;
  std::array<std::vector<NodeId>, kNumPackagingLevels> by_layer;
  for (ObjectId tag : batch.tags) {
    // One hash lookup per reading: the arena slot from here on.
    Node* existing = graph_->FindNode(tag);
    if (existing == nullptr) {
      ++stats.nodes_created;
      new_color.insert(tag);
    } else if (existing->recent_color != color) {
      new_color.insert(tag);
    }
    Node& node =
        existing != nullptr ? *existing : graph_->GetOrCreateNode(tag);
    graph_->ColorNode(node, color);
    by_layer[static_cast<std::size_t>(node.layer)].push_back(node.self);
    ++stats.readings;
    if (exit) exited_.push_back(tag);
  }

  Confirmation confirmation =
      special ? ComputeConfirmation(batch) : Confirmation{};

  // Steps 2-4, packaging levels bottom-up (Fig. 4 line 7).
  for (int layer = 0; layer < kNumPackagingLevels; ++layer) {
    for (NodeId slot : by_layer[static_cast<std::size_t>(layer)]) {
      Node& v = graph_->node(slot);
      const ObjectId tag = v.id;

      // Step 2: connect a newly colored node to same-colored nodes in the
      // closest layer above and below (edges may cross layers when the
      // adjacent layer has no node of this color).
      if (new_color.contains(tag)) {
        for (int above = layer + 1; above < kNumPackagingLevels; ++above) {
          const auto& candidates = graph_->ColoredAt(color, above);
          if (candidates.empty()) continue;
          for (ObjectId parent : candidates) {
            if (graph_->FindEdge(parent, tag) == kNoEdge) {
              graph_->AddEdge(parent, tag);
              ++stats.edges_created;
            }
          }
          break;
        }
        for (int below = layer - 1; below >= 0; --below) {
          const auto& candidates = graph_->ColoredAt(color, below);
          if (candidates.empty()) continue;
          for (ObjectId child : candidates) {
            if (graph_->FindEdge(tag, child) == kNoEdge) {
              graph_->AddEdge(tag, child);
              ++stats.edges_created;
            }
          }
          break;
        }
      }

      // Steps 3-4: examine every incident edge once per epoch.
      ProcessIncidentEdges(v, color, confirmation, &stats);
    }
  }
  return stats;
}

void GraphUpdater::ProcessIncidentEdges(Node& v, LocationId color,
                                        const Confirmation& confirmation,
                                        UpdateStats* stats) {
  const Epoch now = graph_->now();
  // Copy: edge removal mutates the adjacency lists.
  std::vector<EdgeId> incident = v.parent_edges;
  incident.insert(incident.end(), v.child_edges.begin(), v.child_edges.end());

  for (EdgeId id : incident) {
    Edge& e = graph_->edge(id);
    if (!e.alive) continue;
    Node* other = graph_->NodeAt(graph_->OtherEndNode(e, v.self));
    if (other == nullptr) continue;

    const bool other_colored = graph_->IsColored(*other);
    const bool same_color = other_colored && other->recent_color == color;
    // When both endpoints are colored alike this epoch, the edge is handled
    // once, from the higher packaging level (cost analysis, Section III-B).
    if (same_color && other->layer > v.layer) continue;

    // Step 3: remove outdated edges.
    bool drop = false;
    if (e.created_at < now && other_colored && !same_color) {
      // Two previously co-located objects now report different locations.
      drop = true;
    }
    if (!drop && confirmation.active) {
      if (e.child == confirmation.top) {
        // The child is a confirmed top-level container: it has no parent.
        drop = true;
      } else if (confirmation.children.contains(e.child) &&
                 e.parent != confirmation.top) {
        // The child's container is confirmed to be `top`; competing parent
        // edges are eliminated.
        drop = true;
      }
    }
    if (drop) {
      graph_->RemoveEdge(id);
      ++stats->edges_removed;
      continue;
    }

    // Step 4: update edge statistics once per epoch.
    if (e.update_time < now) {
      UpdateEdgeStats(e, same_color, confirmation, stats);
      e.update_time = now;
    }
  }
}

void GraphUpdater::UpdateEdgeStats(Edge& e, bool same_color,
                                   const Confirmation& confirmation,
                                   UpdateStats* stats) {
  const Epoch now = graph_->now();
  // Right-shift the history and record the newest observation. The push
  // only dirties the endpoints when it changes the register's *visible*
  // window — a saturated all-alike history absorbing one more identical
  // observation leaves every edge weight (and thus every estimate) as it
  // was, so the incremental pass may keep the region cached.
  const std::uint64_t window_before = e.recent_colocations.Window();
  const int count_before = e.recent_colocations.size();
  e.recent_colocations.Push(same_color);
  if (e.recent_colocations.Window() != window_before ||
      e.recent_colocations.size() != count_before) {
    if (Node* parent = graph_->NodeAt(e.parent_node)) graph_->MarkDirty(*parent);
    if (Node* child = graph_->NodeAt(e.child_node)) graph_->MarkDirty(*child);
  }
  if (same_color) ++stats->colocations_recorded;

  Node* child = graph_->NodeAt(e.child_node);
  if (child == nullptr) return;

  if (same_color && confirmation.active && e.parent == confirmation.top &&
      confirmation.children.contains(e.child)) {
    // A special reader confirmed this containment.
    child->confirmed.parent = e.parent;
    child->confirmed.confirmed_at = now;
    child->confirmed.conflicts = 0;
    child->confirmed.observations = 0;
    graph_->MarkDirty(*child);
    ++stats->confirmations;
    return;
  }

  if (child->confirmed.parent == e.parent &&
      child->confirmed.confirmed_at != kNeverEpoch) {
    // The confirmed edge was exercised: track agreement/conflict for the
    // adaptive-beta heuristic and the conflict count of Section III-A.
    ++child->confirmed.observations;
    graph_->MarkDirty(*child);
    if (!same_color) {
      ++child->confirmed.conflicts;
      ++stats->conflicts_recorded;
    }
  }
}

}  // namespace spire
