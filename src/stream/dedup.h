// Low-level deduplication (the device data-cleaning layer of Fig. 2).
//
// When readers are deployed in close proximity, one tag can be read by
// several readers within the same epoch. Per Section II, the only
// functionality SPIRE requires from the device-cleaning layer is
// deduplication: at each time step, detect tags read by several readers and
// assign each tag to the reader that read it most recently.
#pragma once

#include <vector>

#include "stream/reading.h"

namespace spire {

/// Removes duplicate readings of the same tag within one epoch, keeping the
/// most recent interrogation (highest tick; ties broken by the later
/// position in arrival order). The relative arrival order of the surviving
/// readings is preserved. Readings must all belong to the same epoch;
/// readings from other epochs are passed through untouched but counted in
/// the returned struct for observability.
struct DedupStats {
  std::size_t input_readings = 0;
  std::size_t duplicates_dropped = 0;
};

/// Deduplicates in place; returns statistics.
DedupStats Deduplicate(EpochReadings* readings);

}  // namespace spire
