// spire_cli — offline driver for the SPIRE substrate.
//
//   spire_cli generate   out=trace.sptr deployment=dep.txt [truth=t.spev]
//                        [any SimConfig key=value]
//   spire_cli process    in=trace.sptr deployment=dep.txt out=events.spev
//                        [level=1|2] [beta=..] [gamma=..] [theta=..]
//                        [incremental=0|1] [mode=scheduled|always|complete_only]
//   spire_cli decompress in=level2.spev out=level1.spev
//   spire_cli validate   in=events.spev
//   spire_cli stats      in=events.spev
//   spire_cli query      in=events.spev epoch=<t> [object=<id>]
//                        [decompress=true]
//   spire_cli archive    in=events.spev out=events.sparc [block=<events>]
//                        [codec=varint|bitpack] [format=1|2]
//   spire_cli scan       in=events.sparc [from=<t>] [to=<t>] [object=<id>]
//                        [out=subset.spev] [mmap=0|1]
//   spire_cli compact    in=events.sparc out=packed.sparc [block=<events>]
//                        [codec=varint|bitpack] [format=1|2]
//   spire_cli queryserve in=events.sparc [requests=req.txt | count=N seed=S]
//                        [threads=N] [passes=N] [cache_mb=M] [check=0|1]
//                        [mmap=0|1] [stats_out=metrics.json]
//                        [statusz=text|json]
//   spire_cli serve      in=<t1,t2,..> deployment=<d1,d2,..> out=events.spev
//                        [shards=N] [queue=C] [level=1|2] [--stats]
//                        [stats_out=metrics.json] [trace_out=trace.json]
//                        [statusz=text|json]
//   spire_cli serve      sites=N seed=S out=events.spev [shards=N] [...]
//   spire_cli dist       seed=S [sites=N] [nodes=N] [mode=loopback|spawn]
//                        [check=0|1] [out=events.spev] [level=1|2]
//                        [statusz=text|json] [--stats]
//                        [stats_out=metrics.json] [stats_every=E]
//                        [trace_out=trace.json] [any SimConfig key=value]
//   spire_cli node       node_id=I nodes=N fd=F seed=S [sites=N] [level=1|2]
//                        [trace_out=trace.json] [any SimConfig key=value]
//   spire_cli run        in=trace.sptr deployment=dep.txt | seed=S
//                        [out=events.spev] [trace_out=trace.json]
//                        [explain_out=run.spexp] [archive_out=run.sparc]
//                        [statusz=text|json] [level=1|2] [beta=..] [...]
//   spire_cli statusz    [seed=S] [json=true]
//   spire_cli explain    <event-id> in=run.spexp
//   spire_cli obscheck   [trace=trace.json] [metrics=metrics.json]
//                        [explain=run.spexp] [require=span1,span2,..]
//   spire_cli merge-traces in=a.json,b.json,.. out=merged.json
//   spire_cli detect     pattern=<expr> | patterns=library|<file>
//                        seed=S | in=trace.sptr deployment=dep.txt |
//                        in=events.spev [deployment=dep.txt] |
//                        archive=events.sparc [from=<t>] [to=<t>]
//                        [eval=interval|naive|check] [print=N]
//                        [explain_out=matches.spexp] [require_matches=true]
//
// `dist` runs the distributed serving runtime (src/dist) over a generated
// truck-transfer workload: `nodes=N` pipelines-per-node behind a
// coordinator, over in-process loopback connections (`mode=loopback`) or
// forked `spire_cli node` processes talking the wire protocol over
// socketpairs (`mode=spawn`). `check=1` (the default) re-runs the serial
// per-site reference and fails unless the merged stream is byte-identical.
// `node` is the spawned per-process entry point; it re-derives the shared
// workload from the forwarded args and serves its sites over fd=F.
// With metrics on, nodes ship their registries to the coordinator in
// StatsReport frames every `stats_every` epochs and `statusz=json` emits
// the distributed statusz (per-node + fleet-aggregate registries);
// `trace_out=` writes one fleet-aligned Perfetto trace (spawn mode traces
// every process and merges, see `merge-traces`).
//
// `queryserve` serves historical point queries segment-direct (src/query
// segment_log + block_cache, DESIGN.md §13): requests come from a file
// (`requests=`, one `<kind> <id> <epoch>` line each) or a generated mixed
// workload (`count=`/`seed=` over the archive's own object/location
// universes), run on `threads=` concurrent workers sharing one
// `cache_mb=`-sized decoded-block LRU. `check=1` replays every request
// against the materialized EventLog baseline and fails on any divergence;
// `passes=` repeats the workload (warm-cache demos). Per-kind latency
// histograms and the cache counters land in `stats_out=`/`statusz`.
//
// `serve` runs the concurrent sharded serving layer (src/serve): one SPIRE
// pipeline per site on N worker shards with an ordered merge. Sites come
// either from per-site trace/deployment file pairs (comma-separated, same
// count) or from the differential-checking trace generator (`sites=N`
// expands seeds S..S+N-1). `--stats` dumps the runtime metrics registry as
// JSON on stdout at shutdown.
//
// The observability entry points (DESIGN.md §9): `run` processes one site
// single-threaded with instruments on — optionally writing a Chrome trace
// (`trace_out=`, load in Perfetto), an explain-channel JSONL sidecar
// (`explain_out=`), and an archive mirror (`archive_out=`). `statusz`
// exercises every module on a fuzz-seed workload and dumps the metrics
// registry. `explain` looks one emitted event's provenance up in a .spexp
// sidecar. `obscheck` validates trace/metrics/explain artifacts (the CI obs
// smoke step).
//
// Trace files use the binary format of stream/trace_io.h; event files are
// "SPEV" + u16 version + u64 record count + the 26-byte records of
// compress/serde.h; archives are the segmented block format of
// store/format.h with a ".spix" index sidecar.
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cep/compressed_log.h"
#include "cep/library.h"
#include "cep/nfa.h"
#include "cep/pattern.h"
#include "check/oracles.h"
#include "check/trace_gen.h"
#include "common/config.h"
#include "common/random.h"
#include "compress/decompress.h"
#include "compress/fold.h"
#include "compress/serde.h"
#include "compress/well_formed.h"
#include "dist/coordinator.h"
#include "dist/node.h"
#include "dist/runner.h"
#include "dist/transport.h"
#include "obs/explain.h"
#include "obs/json.h"
#include "obs/merge_trace.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "query/event_log.h"
#include "query/segment_log.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "sim/simulator.h"
#include "smurf/smurf.h"
#include "spire/pipeline.h"
#include "store/archive_reader.h"
#include "store/archive_writer.h"
#include "store/segment.h"
#include "stream/deployment.h"
#include "stream/trace_io.h"

using namespace spire;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int FailText(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

Status SaveLines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  for (const std::string& line : lines) out << line << "\n";
  return out.good() ? Status::OK() : Status::Internal("write failed: " + path);
}

Result<std::vector<std::string>> LoadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------- generate

int RunGenerate(const Config& args) {
  auto out_path = args.GetString("out", "").value_or("");
  auto deployment_path = args.GetString("deployment", "").value_or("");
  if (out_path.empty() || deployment_path.empty()) {
    return FailText("generate needs out=<trace> deployment=<file>");
  }
  auto sim_config = SimConfig::FromConfig(args);
  if (!sim_config.ok()) return Fail(sim_config.status());
  auto sim = WarehouseSimulator::Create(sim_config.value());
  if (!sim.ok()) return Fail(sim.status());
  WarehouseSimulator& s = *sim.value();

  std::ofstream out(out_path, std::ios::binary);
  if (!out) return FailText("cannot open for writing: " + out_path);
  TraceWriter writer(&out);
  Status status = writer.WriteHeader();
  if (!status.ok()) return Fail(status);
  while (!s.Done()) {
    EpochReadings readings = s.Step();
    status = writer.WriteEpoch(s.current_epoch(), readings);
    if (!status.ok()) return Fail(status);
  }
  s.FinishTruth();

  status = SaveLines(deployment_path, SerializeDeployment(s.registry()));
  if (!status.ok()) return Fail(status);

  auto truth_path = args.GetString("truth", "").value_or("");
  if (!truth_path.empty()) {
    status = WriteEventFile(truth_path, s.truth_events());
    if (!status.ok()) return Fail(status);
  }
  std::printf("wrote %zu readings over %lld epochs to %s\n",
              s.total_readings(),
              static_cast<long long>(s.current_epoch() + 1), out_path.c_str());
  return 0;
}

// ----------------------------------------------------------------- process

/// Pipeline knobs shared by `process` and `run`.
PipelineOptions PipelineOptionsFromArgs(const Config& args) {
  PipelineOptions options;
  options.level = args.GetInt("level", 2).value_or(2) == 1
                      ? CompressionLevel::kLevel1
                      : CompressionLevel::kLevel2;
  options.inference.beta =
      args.GetDouble("beta", options.inference.beta).value_or(0.4);
  options.inference.gamma =
      args.GetDouble("gamma", options.inference.gamma).value_or(0.45);
  options.inference.theta =
      args.GetDouble("theta", options.inference.theta).value_or(1.25);
  // incremental=0 forces full recomputation every complete pass (the output
  // is identical either way; the knob exists for A/B timing and debugging).
  options.inference.incremental =
      args.GetInt("incremental", options.inference.incremental ? 1 : 0)
          .value_or(1) != 0;
  const std::string mode =
      args.GetString("mode", "scheduled").value_or("scheduled");
  if (mode == "always") {
    options.inference_mode = InferenceMode::kAlwaysComplete;
  } else if (mode == "complete_only") {
    options.inference_mode = InferenceMode::kCompleteOnly;
  }
  return options;
}

int RunProcess(const Config& args) {
  auto in_path = args.GetString("in", "").value_or("");
  auto deployment_path = args.GetString("deployment", "").value_or("");
  auto out_path = args.GetString("out", "").value_or("");
  if (in_path.empty() || deployment_path.empty() || out_path.empty()) {
    return FailText("process needs in=<trace> deployment=<file> out=<events>");
  }
  auto lines = LoadLines(deployment_path);
  if (!lines.ok()) return Fail(lines.status());
  auto registry = ParseDeployment(lines.value());
  if (!registry.ok()) return Fail(registry.status());

  PipelineOptions options = PipelineOptionsFromArgs(args);
  SpirePipeline pipeline(&registry.value(), options);

  std::ifstream in(in_path, std::ios::binary);
  if (!in) return FailText("cannot open: " + in_path);
  TraceReader reader(&in);
  Status status = reader.ReadHeader();
  if (!status.ok()) return Fail(status);

  EventStream events;
  Epoch epoch = kNeverEpoch;
  Epoch last = kNeverEpoch;
  EpochReadings readings;
  std::size_t total_readings = 0;
  for (;;) {
    auto more = reader.NextEpoch(&epoch, &readings);
    if (!more.ok()) return Fail(more.status());
    if (!more.value()) break;
    total_readings += readings.size();
    pipeline.ProcessEpoch(epoch, std::move(readings), &events);
    last = epoch;
  }
  pipeline.Finish(last + 1, &events);

  status = WriteEventFile(out_path, events);
  if (!status.ok()) return Fail(status);
  std::printf("processed %zu readings -> %zu events (level %d), "
              "compression ratio %.4f\n",
              total_readings, events.size(),
              options.level == CompressionLevel::kLevel1 ? 1 : 2,
              total_readings == 0
                  ? 0.0
                  : static_cast<double>(events.size() * kEventWireBytes) /
                        static_cast<double>(total_readings *
                                            kReadingWireBytes));
  return 0;
}

// ------------------------------------------------------- small subcommands

int RunDecompress(const Config& args) {
  auto in_path = args.GetString("in", "").value_or("");
  auto out_path = args.GetString("out", "").value_or("");
  if (in_path.empty() || out_path.empty()) {
    return FailText("decompress needs in=<events> out=<events>");
  }
  auto events = ReadEventFile(in_path);
  if (!events.ok()) return Fail(events.status());
  EventStream level1 = Decompressor::DecompressAll(events.value());
  Status status = WriteEventFile(out_path, level1);
  if (!status.ok()) return Fail(status);
  std::printf("decompressed %zu -> %zu events\n", events.value().size(),
              level1.size());
  return 0;
}

int RunValidate(const Config& args) {
  auto in_path = args.GetString("in", "").value_or("");
  if (in_path.empty()) return FailText("validate needs in=<events>");
  auto events = ReadEventFile(in_path);
  if (!events.ok()) return Fail(events.status());
  Status status =
      ValidateWellFormed(events.value(), /*allow_open_at_end=*/true);
  if (!status.ok()) return Fail(status);
  std::printf("%zu events, well-formed\n", events.value().size());
  return 0;
}

int RunStats(const Config& args) {
  auto in_path = args.GetString("in", "").value_or("");
  if (in_path.empty()) return FailText("stats needs in=<events>");
  auto events = ReadEventFile(in_path);
  if (!events.ok()) return Fail(events.status());
  auto log = EventLog::Build(events.value());
  if (!log.ok()) return Fail(log.status());
  std::size_t counts[5] = {};
  for (const Event& event : events.value()) {
    ++counts[static_cast<int>(event.type)];
  }
  std::printf("events: %zu (%zu bytes on the wire)\n", events.value().size(),
              WireBytes(events.value()));
  for (int type = 0; type < 5; ++type) {
    std::printf("  %-16s %zu\n", ToString(static_cast<EventType>(type)),
                counts[type]);
  }
  std::printf("objects: %zu, epochs [%lld, %lld], missing reports: %zu\n",
              log.value().num_objects(),
              static_cast<long long>(log.value().first_epoch()),
              static_cast<long long>(log.value().last_epoch()),
              log.value().MissingReports().size());
  return 0;
}

int RunQuery(const Config& args) {
  auto in_path = args.GetString("in", "").value_or("");
  if (in_path.empty()) return FailText("query needs in=<events> epoch=<t>");
  auto events = ReadEventFile(in_path);
  if (!events.ok()) return Fail(events.status());
  bool decompress = args.GetBool("decompress", false).value_or(false);
  auto log = EventLog::Build(events.value(), decompress);
  if (!log.ok()) return Fail(log.status());
  Epoch epoch = args.GetInt("epoch", 0).value_or(0);
  auto object_arg = args.GetInt("object", -1).value_or(-1);
  if (object_arg >= 0) {
    ObjectId object = static_cast<ObjectId>(object_arg);
    LocationId location = log.value().LocationAt(object, epoch);
    ObjectId container = log.value().ContainerAt(object, epoch);
    std::printf("%s @ t=%lld: location=%d container=%s missing=%s\n",
                EpcToString(object).c_str(), static_cast<long long>(epoch),
                static_cast<int>(location),
                container == kNoObject ? "none"
                                       : EpcToString(container).c_str(),
                log.value().IsMissingAt(object, epoch) ? "yes" : "no");
    return 0;
  }
  // No object: summarize the world at the epoch.
  std::size_t located = 0;
  for (const auto& event : FoldEvents(events.value())) {
    if (event.type == EventType::kStartLocation && event.start <= epoch &&
        epoch < event.end) {
      ++located;
    }
  }
  std::printf("t=%lld: %zu objects at known locations\n",
              static_cast<long long>(epoch), located);
  return 0;
}

// ------------------------------------------------------- archive commands

/// Applies the shared archive-writer arguments: `block=<events>`,
/// `codec=varint|bitpack`, and `format=1|2`.
Status ParseArchiveWriterArgs(const Config& args, ArchiveOptions* options) {
  options->block_events = static_cast<std::size_t>(
      args.GetInt("block", static_cast<std::int64_t>(options->block_events))
          .value_or(4096));
  const std::string codec = args.GetString("codec", "").value_or("");
  if (codec == "varint") {
    options->codec = BlockCodec::kVarint;
  } else if (codec == "bitpack") {
    options->codec = BlockCodec::kBitpack;
  } else if (!codec.empty()) {
    return Status::InvalidArgument("unknown codec '" + codec +
                                   "' (expected varint or bitpack)");
  }
  const std::int64_t format =
      args.GetInt("format", options->format_version)
          .value_or(options->format_version);
  if (format != kArchiveVersion && format != kArchiveVersionV1) {
    return Status::InvalidArgument("unknown archive format version " +
                                   std::to_string(format) +
                                   " (expected 1 or 2)");
  }
  options->format_version = static_cast<std::uint16_t>(format);
  return Status::OK();
}

int RunArchive(const Config& args) {
  auto in_path = args.GetString("in", "").value_or("");
  auto out_path = args.GetString("out", "").value_or("");
  if (in_path.empty() || out_path.empty()) {
    return FailText("archive needs in=<events> out=<archive>");
  }
  auto events = ReadEventFile(in_path);
  if (!events.ok()) return Fail(events.status());

  ArchiveOptions options;
  if (Status status = ParseArchiveWriterArgs(args, &options); !status.ok()) {
    return Fail(status);
  }
  auto writer = ArchiveWriter::Open(out_path, options);
  if (!writer.ok()) return Fail(writer.status());
  ArchiveWriter& w = *writer.value();
  if (w.recovery().recovered_events > 0 || w.recovery().truncated_bytes > 0) {
    std::printf("recovered %llu events in %zu blocks (truncated %llu torn "
                "bytes); appending\n",
                static_cast<unsigned long long>(w.recovery().recovered_events),
                w.recovery().recovered_blocks,
                static_cast<unsigned long long>(w.recovery().truncated_bytes));
  }
  Status status = w.Append(events.value());
  if (!status.ok()) return Fail(status);
  status = w.Close();
  if (!status.ok()) return Fail(status);

  const std::size_t flat_bytes = WireBytes(events.value());
  std::printf("archived %llu events in %zu blocks (v%u %s), %llu bytes "
              "(flat SPEV records: %zu bytes, %.1f%%)\n",
              static_cast<unsigned long long>(w.events_written()),
              w.num_blocks(), w.format_version(), ToString(w.codec()),
              static_cast<unsigned long long>(w.segment_bytes()), flat_bytes,
              flat_bytes == 0 ? 0.0
                              : 100.0 * static_cast<double>(w.segment_bytes()) /
                                    static_cast<double>(flat_bytes));
  return 0;
}

int RunScan(const Config& args) {
  auto in_path = args.GetString("in", "").value_or("");
  if (in_path.empty()) return FailText("scan needs in=<archive>");
  ReaderOptions reader_options;
  reader_options.use_mmap = args.GetInt("mmap", 1).value_or(1) != 0;
  auto reader = ArchiveReader::Open(in_path, reader_options);
  if (!reader.ok()) return Fail(reader.status());
  const ArchiveReader& r = reader.value();
  if (r.index_rebuilt()) {
    std::printf("index sidecar missing or stale; directory rebuilt by scan\n");
  }

  const Epoch from = args.GetInt("from", 0).value_or(0);
  const Epoch to = args.GetInt("to", kInfiniteEpoch).value_or(kInfiniteEpoch);
  const auto object_arg = args.GetInt("object", -1).value_or(-1);
  const bool ranged = from != 0 || to != kInfiniteEpoch;

  Result<EventStream> scanned = Status::Internal("unreachable");
  std::size_t blocks_decoded = 0;
  if (object_arg >= 0) {
    const ObjectId object = static_cast<ObjectId>(object_arg);
    if (ranged) {
      // Posting-list and epoch pruning compose: only the object's blocks
      // that also intersect [from, to] are decoded.
      scanned = r.ScanObjectRange(object, from, to);
      blocks_decoded = r.BlocksForObjectInRange(object, from, to);
    } else {
      scanned = r.ScanObject(object);
      blocks_decoded = r.BlocksForObject(object);
    }
  } else if (ranged) {
    scanned = r.ScanRange(from, to);
    blocks_decoded = r.BlocksInRange(from, to);
  } else {
    scanned = r.ScanAll();
    blocks_decoded = r.num_blocks();
  }
  if (!scanned.ok()) return Fail(scanned.status());

  std::printf("%zu events from %zu of %zu blocks (%llu events total)\n",
              scanned.value().size(), blocks_decoded, r.num_blocks(),
              static_cast<unsigned long long>(r.num_events()));

  auto out_path = args.GetString("out", "").value_or("");
  if (!out_path.empty()) {
    // Restricted selections can open with unmatched End messages; repair
    // them so the flat file decodes standalone.
    Status status =
        WriteEventFile(out_path, RepairRestrictedStream(scanned.value()));
    if (!status.ok()) return Fail(status);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int RunCompact(const Config& args) {
  auto in_path = args.GetString("in", "").value_or("");
  auto out_path = args.GetString("out", "").value_or("");
  if (in_path.empty() || out_path.empty() || in_path == out_path) {
    return FailText("compact needs distinct in=<archive> out=<archive>");
  }
  auto reader = ArchiveReader::Open(in_path);
  if (!reader.ok()) return Fail(reader.status());
  auto events = reader.value().ScanAll();
  if (!events.ok()) return Fail(events.status());

  std::error_code ec;
  std::filesystem::remove(out_path, ec);
  std::filesystem::remove(IndexPathFor(out_path), ec);
  // Compaction rewrites every block anyway, so default to the
  // scan-optimized codec; codec=varint opts back into the smaller one.
  // This is also the v1 -> v2 upgrade path: compacting a v1 segment writes
  // a current-format segment unless format=1 is forced.
  ArchiveOptions options;
  options.codec = BlockCodec::kBitpack;
  if (Status status = ParseArchiveWriterArgs(args, &options); !status.ok()) {
    return Fail(status);
  }
  auto writer = ArchiveWriter::Open(out_path, options);
  if (!writer.ok()) return Fail(writer.status());
  Status status = writer.value()->Append(events.value());
  if (!status.ok()) return Fail(status);
  status = writer.value()->Close();
  if (!status.ok()) return Fail(status);

  std::printf("compacted %zu blocks (v%u, %llu bytes) -> %zu blocks "
              "(v%u %s, %llu bytes), %zu events\n",
              reader.value().num_blocks(), reader.value().format_version(),
              static_cast<unsigned long long>(reader.value().segment_bytes()),
              writer.value()->num_blocks(), writer.value()->format_version(),
              ToString(writer.value()->codec()),
              static_cast<unsigned long long>(writer.value()->segment_bytes()),
              events.value().size());
  return 0;
}

// ----------------------------------------------------------- queryserve

/// One historical query against an archive segment.
struct QueryRequest {
  enum class Kind {
    kLocationAt,
    kContainerAt,
    kContentsAt,
    kObjectsAt,
    kTrajectoryOf,
    kIsMissingAt,
  };
  Kind kind = Kind::kLocationAt;
  std::uint64_t id = 0;  ///< Object id, or location id for kObjectsAt.
  Epoch epoch = 0;       ///< Ignored by kTrajectoryOf.
};

const char* QueryKindName(QueryRequest::Kind kind) {
  switch (kind) {
    case QueryRequest::Kind::kLocationAt:
      return "location_at";
    case QueryRequest::Kind::kContainerAt:
      return "container_at";
    case QueryRequest::Kind::kContentsAt:
      return "contents_at";
    case QueryRequest::Kind::kObjectsAt:
      return "objects_at";
    case QueryRequest::Kind::kTrajectoryOf:
      return "trajectory_of";
    case QueryRequest::Kind::kIsMissingAt:
      return "is_missing_at";
  }
  return "unknown";
}

/// Parses a request file: one `<kind> <id> <epoch>` line each (kind as in
/// QueryKindName; trajectory_of lines may omit the epoch). '#' comments and
/// blank lines are skipped.
Result<std::vector<QueryRequest>> ParseRequestLines(
    const std::vector<std::string>& lines) {
  std::vector<QueryRequest> requests;
  for (const std::string& line : lines) {
    std::istringstream tokens(line);
    std::string kind;
    if (!(tokens >> kind) || kind.empty() || kind[0] == '#') continue;
    QueryRequest request;
    if (kind == "location_at") {
      request.kind = QueryRequest::Kind::kLocationAt;
    } else if (kind == "container_at") {
      request.kind = QueryRequest::Kind::kContainerAt;
    } else if (kind == "contents_at") {
      request.kind = QueryRequest::Kind::kContentsAt;
    } else if (kind == "objects_at") {
      request.kind = QueryRequest::Kind::kObjectsAt;
    } else if (kind == "trajectory_of") {
      request.kind = QueryRequest::Kind::kTrajectoryOf;
    } else if (kind == "is_missing_at") {
      request.kind = QueryRequest::Kind::kIsMissingAt;
    } else {
      return Status::InvalidArgument("unknown query kind '" + kind + "'");
    }
    if (!(tokens >> request.id)) {
      return Status::InvalidArgument("query line needs an id: " + line);
    }
    long long epoch = 0;
    if (tokens >> epoch) {
      request.epoch = static_cast<Epoch>(epoch);
    } else if (request.kind != QueryRequest::Kind::kTrajectoryOf) {
      return Status::InvalidArgument("query line needs an epoch: " + line);
    }
    requests.push_back(request);
  }
  return requests;
}

/// Draws a mixed workload over the archive's own universes: objects and
/// locations come from the sidecar posting indexes, epochs span the block
/// directory's range. Deterministic in `seed`.
std::vector<QueryRequest> GenerateRequests(const ArchiveReader& reader,
                                           std::size_t count,
                                           std::uint64_t seed) {
  std::vector<ObjectId> objects;
  for (const auto& [object, blocks] : reader.object_postings()) {
    objects.push_back(object);
  }
  std::vector<LocationId> locations;
  for (const auto& [location, blocks] : reader.location_postings()) {
    locations.push_back(location);
  }
  Epoch lo = 0;
  Epoch hi = 0;
  for (const BlockMeta& block : reader.blocks()) {
    lo = std::min(lo, block.min_epoch);
    hi = std::max(hi, block.max_epoch);
  }
  std::vector<QueryRequest> requests;
  if (objects.empty()) return requests;
  Pcg32 rng(seed);
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    QueryRequest request;
    request.kind = static_cast<QueryRequest::Kind>(rng.NextBounded(6));
    if (request.kind == QueryRequest::Kind::kObjectsAt) {
      if (locations.empty()) request.kind = QueryRequest::Kind::kLocationAt;
    }
    request.id =
        request.kind == QueryRequest::Kind::kObjectsAt
            ? locations[rng.NextBounded(
                  static_cast<std::uint32_t>(locations.size()))]
            : objects[rng.NextBounded(
                  static_cast<std::uint32_t>(objects.size()))];
    request.epoch = rng.NextInRange(lo, hi);
    requests.push_back(request);
  }
  return requests;
}

std::string IdListString(const std::vector<ObjectId>& ids) {
  std::string text = "[";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) text += ",";
    text += std::to_string(ids[i]);
  }
  return text + "]";
}

std::string StayListString(const std::vector<Stay>& stays) {
  std::string text = "[";
  for (std::size_t i = 0; i < stays.size(); ++i) {
    if (i > 0) text += ",";
    text += std::to_string(stays[i].start) + ":" +
            std::to_string(stays[i].end) + "@" +
            std::to_string(stays[i].location);
  }
  return text + "]";
}

/// Answers one request segment-direct; the canonical string makes answers
/// byte-comparable against the materialized baseline.
Result<std::string> AnswerSegmentDirect(const SegmentLog& log,
                                        const QueryRequest& request) {
  switch (request.kind) {
    case QueryRequest::Kind::kLocationAt: {
      auto answer = log.LocationAt(request.id, request.epoch);
      if (!answer.ok()) return answer.status();
      return std::to_string(answer.value());
    }
    case QueryRequest::Kind::kContainerAt: {
      auto answer = log.ContainerAt(request.id, request.epoch);
      if (!answer.ok()) return answer.status();
      return std::to_string(answer.value());
    }
    case QueryRequest::Kind::kContentsAt: {
      auto answer = log.ContentsAt(request.id, request.epoch);
      if (!answer.ok()) return answer.status();
      return IdListString(answer.value());
    }
    case QueryRequest::Kind::kObjectsAt: {
      auto answer =
          log.ObjectsAt(static_cast<LocationId>(request.id), request.epoch);
      if (!answer.ok()) return answer.status();
      return IdListString(answer.value());
    }
    case QueryRequest::Kind::kTrajectoryOf: {
      auto answer = log.TrajectoryOf(request.id);
      if (!answer.ok()) return answer.status();
      return StayListString(answer.value());
    }
    case QueryRequest::Kind::kIsMissingAt: {
      auto answer = log.IsMissingAt(request.id, request.epoch);
      if (!answer.ok()) return answer.status();
      return std::string(answer.value() ? "true" : "false");
    }
  }
  return Status::Internal("unknown query kind");
}

/// The same request against the fully materialized EventLog.
std::string AnswerMaterialized(const EventLog& log,
                               const QueryRequest& request) {
  switch (request.kind) {
    case QueryRequest::Kind::kLocationAt:
      return std::to_string(log.LocationAt(request.id, request.epoch));
    case QueryRequest::Kind::kContainerAt:
      return std::to_string(log.ContainerAt(request.id, request.epoch));
    case QueryRequest::Kind::kContentsAt:
      return IdListString(log.ContentsAt(request.id, request.epoch));
    case QueryRequest::Kind::kObjectsAt:
      return IdListString(
          log.ObjectsAt(static_cast<LocationId>(request.id), request.epoch));
    case QueryRequest::Kind::kTrajectoryOf:
      return StayListString(log.TrajectoryOf(request.id));
    case QueryRequest::Kind::kIsMissingAt:
      return log.IsMissingAt(request.id, request.epoch) ? "true" : "false";
  }
  return "";
}

int RunQueryserve(const Config& args) {
  auto in_path = args.GetString("in", "").value_or("");
  if (in_path.empty()) return FailText("queryserve needs in=<archive>");

  // queryserve is a metrics-centric command: instruments (cache counters,
  // per-kind latency histograms) are always on, like `statusz`.
  obs::SetEnabled(true);
  obs::Registry::Global().Reset();
  obs::Registry::Global().GetCounter("common", "cli_invocations")->Add(1);

  ReaderOptions reader_options;
  reader_options.use_mmap = args.GetInt("mmap", 1).value_or(1) != 0;
  const auto cache_mb = args.GetInt("cache_mb", 64).value_or(64);
  std::shared_ptr<BlockCache> cache;
  if (cache_mb > 0) {
    cache = std::make_shared<BlockCache>(
        static_cast<std::uint64_t>(cache_mb) * 1024 * 1024);
  }
  auto log = SegmentLog::Open(in_path, reader_options, cache);
  if (!log.ok()) return Fail(log.status());
  const SegmentLog& segment_log = *log.value();

  std::vector<QueryRequest> requests;
  const auto requests_path = args.GetString("requests", "").value_or("");
  if (!requests_path.empty()) {
    auto lines = LoadLines(requests_path);
    if (!lines.ok()) return Fail(lines.status());
    auto parsed = ParseRequestLines(lines.value());
    if (!parsed.ok()) return Fail(parsed.status());
    requests = std::move(parsed).value();
  } else {
    const auto count = args.GetInt("count", 10000).value_or(10000);
    const auto seed = args.GetInt("seed", 1).value_or(1);
    requests = GenerateRequests(segment_log.reader(),
                                static_cast<std::size_t>(count),
                                static_cast<std::uint64_t>(seed));
  }
  if (requests.empty()) return FailText("no requests to serve");

  const int threads =
      std::max(1, static_cast<int>(args.GetInt("threads", 1).value_or(1)));
  const int passes =
      std::max(1, static_cast<int>(args.GetInt("passes", 1).value_or(1)));

  std::vector<std::string> answers(requests.size());
  std::vector<Status> worker_status(static_cast<std::size_t>(threads));
  const auto wall_start = std::chrono::steady_clock::now();
  for (int pass = 0; pass < passes; ++pass) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t]() {
        auto& registry = obs::Registry::Global();
        for (std::size_t i = static_cast<std::size_t>(t);
             i < requests.size(); i += static_cast<std::size_t>(threads)) {
          const auto start = std::chrono::steady_clock::now();
          auto answer = AnswerSegmentDirect(segment_log, requests[i]);
          const std::chrono::duration<double> elapsed =
              std::chrono::steady_clock::now() - start;
          if (!answer.ok()) {
            worker_status[static_cast<std::size_t>(t)] = answer.status();
            return;
          }
          registry.GetHistogram("query", QueryKindName(requests[i].kind))
              ->RecordSeconds(elapsed.count());
          answers[i] = std::move(answer).value();
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    for (const Status& status : worker_status) {
      if (!status.ok()) return Fail(status);
    }
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  const double total_queries =
      static_cast<double>(requests.size()) * passes;

  std::printf("served %zu requests x %d pass(es) on %d thread(s) in %.3fs "
              "(%.0f queries/s)\n",
              requests.size(), passes, threads, wall.count(),
              wall.count() > 0.0 ? total_queries / wall.count() : 0.0);
  if (cache != nullptr) {
    const BlockCache::Stats stats = cache->GetStats();
    std::printf("cache: %llu lookups, %llu hits, %llu misses, %llu "
                "evictions, %llu/%llu bytes; %llu blocks decoded\n",
                static_cast<unsigned long long>(stats.lookups),
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.evictions),
                static_cast<unsigned long long>(stats.bytes),
                static_cast<unsigned long long>(stats.capacity_bytes),
                static_cast<unsigned long long>(
                    segment_log.blocks_decoded()));
    // The serving invariants: every lookup is a hit or a miss, and only
    // misses decode (concurrent same-key misses may both decode, so
    // decodes <= misses rather than ==).
    if (stats.hits + stats.misses != stats.lookups) {
      return FailText("cache counters do not reconcile: hits + misses != "
                      "lookups");
    }
    if (segment_log.blocks_decoded() > stats.misses) {
      return FailText("cache counters do not reconcile: decodes > misses");
    }
  }

  if (args.GetBool("check", false).value_or(false)) {
    auto baseline = EventLog::FromArchive(segment_log.reader(), 0,
                                          kInfiniteEpoch, false);
    if (!baseline.ok()) return Fail(baseline.status());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const std::string expected =
          AnswerMaterialized(baseline.value(), requests[i]);
      if (answers[i] != expected) {
        return FailText(std::string("answer diverges from materialized "
                                    "baseline for ") +
                        QueryKindName(requests[i].kind) + " id=" +
                        std::to_string(requests[i].id) + " epoch=" +
                        std::to_string(requests[i].epoch) + ": got " +
                        answers[i] + ", want " + expected);
      }
    }
    std::printf("checked %zu answers against the materialized baseline: "
                "all identical\n",
                requests.size());
  }

  auto stats_out = args.GetString("stats_out", "").value_or("");
  if (!stats_out.empty()) {
    std::ofstream stats_file(stats_out);
    if (!stats_file) return FailText("cannot open: " + stats_out);
    stats_file << obs::Registry::Global().ToJson() << "\n";
    if (!stats_file.good()) return FailText("write failed: " + stats_out);
  }
  const auto statusz = args.GetString("statusz", "").value_or("");
  if (statusz == "json") {
    std::printf("%s\n", obs::Registry::Global().ToJson().c_str());
  } else if (!statusz.empty()) {
    std::printf("%s", obs::Registry::Global().ToText().c_str());
  }
  return 0;
}

// --------------------------------------------------------------- serve

std::vector<std::string> SplitCommaList(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t from = 0;
  while (from <= text.size()) {
    const std::size_t comma = text.find(',', from);
    if (comma == std::string::npos) {
      if (from < text.size()) parts.push_back(text.substr(from));
      break;
    }
    if (comma > from) parts.push_back(text.substr(from, comma - from));
    from = comma + 1;
  }
  return parts;
}

/// Reads one (trace, deployment) pair into a site, indexing readings by
/// epoch (trace files may skip silent epochs).
Result<serve::SiteWorkload> LoadSite(const std::string& trace_path,
                                     const std::string& deployment_path) {
  serve::SiteWorkload site;
  site.name = trace_path;
  auto lines = LoadLines(deployment_path);
  if (!lines.ok()) return lines.status();
  auto registry = ParseDeployment(lines.value());
  if (!registry.ok()) return registry.status();
  site.registry = std::move(registry).value();

  std::ifstream in(trace_path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + trace_path);
  TraceReader reader(&in);
  SPIRE_RETURN_NOT_OK(reader.ReadHeader());
  Epoch epoch = kNeverEpoch;
  EpochReadings readings;
  for (;;) {
    auto more = reader.NextEpoch(&epoch, &readings);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    if (epoch < 0) return Status::Corruption("negative epoch in " + trace_path);
    if (static_cast<std::size_t>(epoch) >= site.epochs.size()) {
      site.epochs.resize(static_cast<std::size_t>(epoch) + 1);
    }
    site.epochs[static_cast<std::size_t>(epoch)] = std::move(readings);
  }
  return site;
}

/// Builds the workload from file pairs or fuzz seeds (see usage).
Result<serve::Workload> BuildServeWorkload(const Config& args) {
  serve::Workload workload;
  auto in_list = SplitCommaList(args.GetString("in", "").value_or(""));
  auto dep_list =
      SplitCommaList(args.GetString("deployment", "").value_or(""));
  const auto num_sites = args.GetInt("sites", 0).value_or(0);
  if (!in_list.empty()) {
    if (in_list.size() != dep_list.size()) {
      return Status::InvalidArgument(
          "serve needs one deployment per trace (got " +
          std::to_string(in_list.size()) + " traces, " +
          std::to_string(dep_list.size()) + " deployments)");
    }
    for (std::size_t i = 0; i < in_list.size(); ++i) {
      auto site = LoadSite(in_list[i], dep_list[i]);
      if (!site.ok()) return site.status();
      workload.sites.push_back(std::move(site).value());
    }
  } else if (num_sites > 0) {
    const auto seed = args.GetInt("seed", 1).value_or(1);
    for (std::int64_t i = 0; i < num_sites; ++i) {
      FuzzCase fuzz_case =
          CaseFromSeed(static_cast<std::uint64_t>(seed + i));
      // NormalizeWorkload plants the site bits itself, so each site must be
      // a raw single-site trace; a transfer case's merged view already uses
      // them.
      fuzz_case.sim.transfer_sites = 1;
      auto trace = GenerateTrace(fuzz_case);
      if (!trace.ok()) return trace.status();
      serve::SiteWorkload site;
      site.name = "fuzz-seed-" + std::to_string(seed + i);
      site.registry = std::move(trace.value().registry);
      site.epochs = std::move(trace.value().epochs);
      workload.sites.push_back(std::move(site));
    }
  } else {
    return Status::InvalidArgument(
        "serve needs in=<t1,t2,..> deployment=<d1,d2,..> or sites=N seed=S");
  }
  SPIRE_RETURN_NOT_OK(serve::NormalizeWorkload(&workload));
  return workload;
}

int RunServe(const Config& args) {
  auto out_path = args.GetString("out", "").value_or("");
  if (out_path.empty()) return FailText("serve needs out=<events>");
  auto workload = BuildServeWorkload(args);
  if (!workload.ok()) return Fail(workload.status());

  const auto trace_out = args.GetString("trace_out", "").value_or("");
  const auto statusz = args.GetString("statusz", "").value_or("");
  if (!trace_out.empty() || !statusz.empty()) {
    obs::SetEnabled(true);
    obs::Registry::Global().GetCounter("common", "cli_invocations")->Add(1);
  }
  if (!trace_out.empty()) {
    Status status = obs::Tracer::Global().Start(trace_out);
    if (!status.ok()) return Fail(status);
  }

  serve::ServeOptions options;
  options.num_shards =
      static_cast<int>(args.GetInt("shards", 1).value_or(1));
  options.queue_capacity = static_cast<std::size_t>(
      args.GetInt("queue", 64).value_or(64));
  options.pipeline.level = args.GetInt("level", 2).value_or(2) == 1
                               ? CompressionLevel::kLevel1
                               : CompressionLevel::kLevel2;

  serve::SpireServer server(&workload.value(), options);
  serve::ServeResult result = server.Run();
  if (!result.status.ok()) return Fail(result.status);

  if (!trace_out.empty()) {
    Status status = obs::Tracer::Global().Stop();
    if (!status.ok()) return Fail(status);
  }

  Status status = WriteEventFile(out_path, result.events);
  if (!status.ok()) return Fail(status);

  std::size_t total_readings = 0;
  for (const auto& site : workload.value().sites) {
    total_readings += site.total_readings;
  }
  std::printf("served %zu site(s) on %d shard(s): %zu readings over %lld "
              "epochs -> %zu events in %.3fs (%.0f epochs/s)\n",
              workload.value().sites.size(), options.num_shards,
              total_readings,
              static_cast<long long>(result.epochs_processed),
              result.events.size(), result.wall_seconds,
              result.wall_seconds > 0.0
                  ? static_cast<double>(result.epochs_processed) /
                        result.wall_seconds
                  : 0.0);

  const bool stats = args.GetBool("stats", false).value_or(false);
  auto stats_out = args.GetString("stats_out", "").value_or("");
  if (stats || !stats_out.empty()) {
    const std::string json = server.MetricsJson();
    if (stats) std::printf("%s\n", json.c_str());
    if (!stats_out.empty()) {
      std::ofstream stats_file(stats_out);
      if (!stats_file) return FailText("cannot open: " + stats_out);
      stats_file << json << "\n";
      if (!stats_file.good()) return FailText("write failed: " + stats_out);
    }
  }
  if (statusz == "json") {
    std::printf("%s\n", obs::Registry::Global().ToJson().c_str());
  } else if (!statusz.empty()) {
    std::printf("%s", obs::Registry::Global().ToText().c_str());
  }
  return 0;
}

// -------------------------------------------------------------- dist

/// The transfer scenario behind one `dist`/`node` run. Both commands must
/// derive the identical workload from the same args, so the node fleet can
/// be spawned with nothing but the coordinator's argument list. Starts from
/// the fuzz case of `seed`, applies any SimConfig key=value overrides, and
/// forces cross-site traffic (`sites=N` is sugar for `transfer_sites=N`).
Result<SimConfig> DistSimConfig(const Config& args) {
  const auto seed = args.GetInt("seed", 1).value_or(1);
  FuzzCase fuzz_case = CaseFromSeed(static_cast<std::uint64_t>(seed));
  auto sim = SimConfig::FromConfig(args, fuzz_case.sim);
  if (!sim.ok()) return sim.status();
  SimConfig config = sim.value();
  const auto sites = args.GetInt("sites", 0).value_or(0);
  if (sites > 0) config.transfer_sites = static_cast<int>(sites);
  if (config.transfer_sites < 2) {
    // The fuzz case drew a single-site scenario; a distributed run always
    // needs cross-site traffic, so fall back to a three-site shuttle.
    config.transfer_sites = 3;
  }
  return config;
}

struct DistWorkload {
  serve::Workload workload;
  std::vector<TransferHop> hops;
};

Result<DistWorkload> BuildDistWorkload(const Config& args) {
  auto config = DistSimConfig(args);
  if (!config.ok()) return config.status();
  auto trace = BuildTransferTrace(config.value());
  if (!trace.ok()) return trace.status();
  auto workload = dist::ToWorkload(trace.value());
  if (!workload.ok()) return workload.status();
  DistWorkload out;
  out.workload = std::move(workload).value();
  out.hops = std::move(trace.value().hops);
  return out;
}

PipelineOptions DistPipelineOptions(const Config& args) {
  PipelineOptions pipeline;
  pipeline.level = args.GetInt("level", 2).value_or(2) == 1
                       ? CompressionLevel::kLevel1
                       : CompressionLevel::kLevel2;
  return pipeline;
}

int RunNode(const Config& args) {
  const auto node_id = args.GetInt("node_id", -1).value_or(-1);
  const auto nodes = args.GetInt("nodes", 0).value_or(0);
  const auto fd = args.GetInt("fd", -1).value_or(-1);
  if (node_id < 0 || nodes <= 0 || node_id >= nodes || fd < 0) {
    return FailText(
        "node needs node_id=I nodes=N fd=F (plus the dist run's workload "
        "args)");
  }
  // A spawned node traces into its own file (the parent appends
  // trace_out=<base>.node<N>.json) and labels its process row; the
  // ClockSync offset from the Hello exchange aligns it onto the
  // coordinator's timeline at merge.
  const auto trace_out = args.GetString("trace_out", "").value_or("");
  if (!trace_out.empty()) {
    Status status = obs::Tracer::Global().Start(trace_out);
    if (!status.ok()) return Fail(status);
    obs::Tracer::Global().SetProcessLabel("node" +
                                          std::to_string(node_id));
  }
  auto built = BuildDistWorkload(args);
  if (!built.ok()) return Fail(built.status());
  dist::NodeConfig config;
  config.node_id = static_cast<int>(node_id);
  config.sites = dist::SitesOfNode(
      config.node_id, static_cast<int>(built.value().workload.sites.size()),
      static_cast<int>(nodes));
  config.workload = &built.value().workload;
  config.pipeline = DistPipelineOptions(args);
  auto conn = dist::MakeFdConn(static_cast<int>(fd));
  Status status = dist::RunDistNode(config, conn.get());
  conn->Close();
  if (!trace_out.empty()) {
    Status stop = obs::Tracer::Global().Stop();
    if (status.ok()) status = stop;
  }
  if (!status.ok()) return Fail(status);
  return 0;
}

/// Coordinator-side keys that must not leak into a spawned node's argument
/// list (everything else — seed, sim overrides, level — defines the shared
/// workload and is forwarded verbatim).
bool IsCoordinatorOnlyArg(const std::string& arg) {
  for (const char* prefix :
       {"out=", "check=", "mode=", "stats=", "stats_out=", "statusz=",
        "stats_every=", "trace_out=", "nodes=", "node_id=", "fd="}) {
    if (arg.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

/// Runs the node fleet as separate spire_cli processes: one socketpair per
/// node, fork, exec `/proc/self/exe node ...` with the workload-defining
/// arguments forwarded verbatim, then the coordinator over the parent ends.
dist::DistResult SpawnDistProcesses(const std::vector<std::string>& raw_args,
                                    const DistWorkload& built,
                                    dist::DistOptions options,
                                    const std::string& trace_base) {
  dist::DistResult result;
  const int num_sites = static_cast<int>(built.workload.sites.size());
  options.num_nodes = std::max(1, std::min(options.num_nodes, num_sites));

  std::vector<std::array<int, 2>> pairs(
      static_cast<std::size_t>(options.num_nodes), {-1, -1});
  for (auto& sv : pairs) {
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv.data()) != 0) {
      result.status = Status::Internal("socketpair failed");
      for (auto& open_pair : pairs) {
        for (int fd : open_pair) {
          if (fd >= 0) ::close(fd);
        }
      }
      return result;
    }
  }

  std::vector<pid_t> children;
  for (int n = 0; n < options.num_nodes; ++n) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      result.status = Status::Internal("fork failed");
      break;
    }
    if (pid == 0) {
      // Child: keep only this node's end, exec the `node` front end. The
      // child re-derives the identical workload from the forwarded args.
      for (int m = 0; m < options.num_nodes; ++m) {
        ::close(pairs[static_cast<std::size_t>(m)][0]);
        if (m != n) ::close(pairs[static_cast<std::size_t>(m)][1]);
      }
      std::vector<std::string> child_args;
      child_args.push_back("/proc/self/exe");
      child_args.push_back("node");
      for (std::size_t i = 1; i < raw_args.size(); ++i) {
        if (!IsCoordinatorOnlyArg(raw_args[i])) {
          child_args.push_back(raw_args[i]);
        }
      }
      child_args.push_back("nodes=" + std::to_string(options.num_nodes));
      child_args.push_back("node_id=" + std::to_string(n));
      child_args.push_back(
          "fd=" + std::to_string(pairs[static_cast<std::size_t>(n)][1]));
      if (!trace_base.empty()) {
        child_args.push_back("trace_out=" + trace_base + ".node" +
                             std::to_string(n) + ".json");
      }
      std::vector<char*> argv;
      for (std::string& arg : child_args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv("/proc/self/exe", argv.data());
      std::fprintf(stderr, "error: exec of node %d failed\n", n);
      ::_exit(127);
    }
    children.push_back(pid);
    ::close(pairs[static_cast<std::size_t>(n)][1]);
    pairs[static_cast<std::size_t>(n)][1] = -1;
  }

  if (result.status.ok()) {
    std::vector<std::unique_ptr<dist::Conn>> conns;
    std::vector<dist::Conn*> conn_ptrs;
    for (int n = 0; n < options.num_nodes; ++n) {
      conns.push_back(
          dist::MakeFdConn(pairs[static_cast<std::size_t>(n)][0]));
      pairs[static_cast<std::size_t>(n)][0] = -1;
      conn_ptrs.push_back(conns.back().get());
    }
    result =
        dist::RunDistCoordinator(built.workload, built.hops, options,
                                 conn_ptrs);
    for (auto& conn : conns) conn->Close();
  } else {
    for (auto& sv : pairs) {
      for (int fd : sv) {
        if (fd >= 0) ::close(fd);
      }
    }
  }

  for (pid_t pid : children) {
    int wstatus = 0;
    if (::waitpid(pid, &wstatus, 0) == pid) {
      const bool clean = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
      if (!clean && result.status.ok()) {
        result.status = Status::Internal(
            "node process exited with status " + std::to_string(wstatus));
      }
    }
  }
  return result;
}

/// The distributed statusz document: the coordinator's own registry, each
/// node's latest StatsReport snapshot, and the fleet aggregate (counters
/// add, gauges take the worst node, histograms merge bucket-wise).
/// `merge_nodes` is false for loopback runs, where every node thread
/// records into this process's registry — the coordinator snapshot already
/// covers the whole fleet and merging the near-duplicate node reports
/// would double-count.
std::string FleetStatsJson(const dist::DistResult& result, bool merge_nodes) {
  const obs::RegistrySnapshot coordinator =
      obs::Registry::Global().TakeSnapshot();
  obs::RegistrySnapshot fleet = coordinator;
  if (merge_nodes) {
    for (const obs::RegistrySnapshot& node : result.node_stats) {
      fleet.Merge(node);
    }
  }
  std::ostringstream out;
  out << "{\"coordinator\":" << coordinator.ToJson() << ",\"nodes\":[";
  for (std::size_t n = 0; n < result.node_stats.size(); ++n) {
    if (n > 0) out << ",";
    // Splice a "node" id into the snapshot's {"modules":..} object.
    out << "{\"node\":" << n << ","
        << result.node_stats[n].ToJson().substr(1);
  }
  out << "],\"fleet\":" << fleet.ToJson() << "}";
  return out.str();
}

int RunDist(const Config& args, const std::vector<std::string>& raw_args) {
  auto built = BuildDistWorkload(args);
  if (!built.ok()) return Fail(built.status());
  const serve::Workload& workload = built.value().workload;
  const std::vector<TransferHop>& hops = built.value().hops;

  const auto statusz = args.GetString("statusz", "").value_or("");
  const bool stats = args.GetBool("stats", false).value_or(false);
  const auto stats_out = args.GetString("stats_out", "").value_or("");
  const auto trace_out = args.GetString("trace_out", "").value_or("");
  const bool wants_obs = !statusz.empty() || stats || !stats_out.empty();
  if (wants_obs) {
    obs::SetEnabled(true);
    obs::Registry::Global().GetCounter("common", "cli_invocations")->Add(1);
  }

  dist::DistOptions options;
  options.num_nodes = static_cast<int>(args.GetInt("nodes", 2).value_or(2));
  options.num_nodes = std::max(
      1, std::min(options.num_nodes, static_cast<int>(workload.sites.size())));
  options.pipeline = DistPipelineOptions(args);
  const auto mode = args.GetString("mode", "loopback").value_or("loopback");
  if (mode != "loopback" && mode != "spawn") {
    return FailText("mode must be loopback or spawn");
  }

  // Stats cadence: any metrics output turns on StatsReport frames every
  // stats_every epochs (plus the final report); stats_every=N alone also
  // enables them.
  const auto stats_every =
      args.GetInt("stats_every", wants_obs ? 16 : 0).value_or(0);
  if (stats_every > 0) {
    obs::SetEnabled(true);
    options.stats_interval_epochs = static_cast<std::uint32_t>(stats_every);
  }

  // Tracing: a loopback run is one process, so one session writes
  // trace_out directly. A spawn run gives the coordinator and every node
  // process its own file, merged onto the fleet timeline afterwards.
  std::vector<std::string> trace_parts;
  if (!trace_out.empty()) {
    const std::string coordinator_trace =
        mode == "spawn" ? trace_out + ".coord.json" : trace_out;
    Status status = obs::Tracer::Global().Start(coordinator_trace);
    if (!status.ok()) return Fail(status);
    obs::Tracer::Global().SetProcessLabel(mode == "spawn" ? "coordinator"
                                                          : "dist");
    trace_parts.push_back(coordinator_trace);
    if (mode == "spawn") {
      for (int n = 0; n < options.num_nodes; ++n) {
        trace_parts.push_back(trace_out + ".node" + std::to_string(n) +
                              ".json");
      }
    }
  }

  const auto start = std::chrono::steady_clock::now();
  dist::DistResult result;
  if (mode == "loopback") {
    result = dist::RunDistLoopback(workload, hops, options);
  } else {
    result = SpawnDistProcesses(raw_args, built.value(), options,
                                trace_out.empty() ? "" : trace_out);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!trace_out.empty()) {
    Status status = obs::Tracer::Global().Stop();
    if (!status.ok()) return Fail(status);
  }
  if (!result.status.ok()) return Fail(result.status);
  if (!trace_out.empty() && mode == "spawn") {
    // Node files are complete: SpawnDistProcesses waited for every child.
    Status status = obs::MergeTraceFiles(trace_parts, trace_out);
    if (!status.ok()) return Fail(status);
    std::error_code ec;
    for (const std::string& part : trace_parts) {
      std::filesystem::remove(part, ec);
    }
  }

  // Snapshot the fleet metrics before the reference check below runs the
  // whole workload again through this process's registry.
  std::string metrics_json;
  if (wants_obs) {
    metrics_json = options.stats_interval_epochs > 0
                       ? FleetStatsJson(result, mode == "spawn")
                       : obs::Registry::Global().ToJson();
  }

  std::printf(
      "dist (%s): %zu site(s) on %d node(s), %lld epochs -> %zu events, "
      "%zu handoff(s) carrying %zu object(s) in %.3fs\n",
      mode.c_str(), workload.sites.size(), options.num_nodes,
      static_cast<long long>(workload.num_epochs), result.events.size(),
      result.handoff_hops, result.handoff_objects, wall);

  if (args.GetBool("check", true).value_or(true)) {
    const EventStream reference =
        dist::RunDistReference(workload, hops, options.pipeline);
    if (result.events != reference) {
      std::fprintf(stderr, "%s\n",
                   DiffStreams(result.events, reference, "dist",
                               "serial reference")
                       .c_str());
      return FailText("distributed stream diverges from the serial reference");
    }
    std::printf("check: byte-identical to the serial reference (%zu events)\n",
                reference.size());
  }

  const auto out_path = args.GetString("out", "").value_or("");
  if (!out_path.empty()) {
    Status status = WriteEventFile(out_path, result.events);
    if (!status.ok()) return Fail(status);
  }
  if (stats || !stats_out.empty()) {
    if (stats) std::printf("%s\n", metrics_json.c_str());
    if (!stats_out.empty()) {
      std::ofstream stats_file(stats_out);
      if (!stats_file) return FailText("cannot open: " + stats_out);
      stats_file << metrics_json << "\n";
      if (!stats_file.good()) return FailText("write failed: " + stats_out);
    }
  }
  if (statusz == "json") {
    std::printf("%s\n", metrics_json.c_str());
  } else if (!statusz.empty()) {
    std::printf("%s", obs::Registry::Global().ToText().c_str());
    for (std::size_t n = 0; n < result.node_stats.size(); ++n) {
      std::printf("node %zu: %zu module(s) reported\n", n,
                  result.node_stats[n].modules.size());
    }
  }
  return 0;
}

// ------------------------------------------------------- observability

/// One site for `run`: a (trace, deployment) file pair or a fuzz-seed case
/// from the differential checker's generator.
struct RunWorkload {
  ReaderRegistry registry;
  std::vector<EpochReadings> epochs;  ///< Dense, indexed by epoch.
};

Result<RunWorkload> BuildRunWorkload(const Config& args) {
  RunWorkload load;
  const auto in_path = args.GetString("in", "").value_or("");
  const auto deployment_path = args.GetString("deployment", "").value_or("");
  const auto seed = args.GetInt("seed", 0).value_or(0);
  if (!in_path.empty() && !deployment_path.empty()) {
    auto site = LoadSite(in_path, deployment_path);
    if (!site.ok()) return site.status();
    load.registry = std::move(site.value().registry);
    load.epochs = std::move(site.value().epochs);
  } else if (seed > 0) {
    auto trace = GenerateTrace(CaseFromSeed(static_cast<std::uint64_t>(seed)));
    if (!trace.ok()) return trace.status();
    load.registry = std::move(trace.value().registry);
    load.epochs = std::move(trace.value().epochs);
  } else {
    return Status::InvalidArgument(
        "run needs in=<trace> deployment=<file> or seed=S");
  }
  return load;
}

/// The CLI is the instrumentation site of the "common" module: the config
/// layer itself sits below obs in the module graph and cannot register.
void RecordCommonInstruments(const Config& args) {
  auto& registry = obs::Registry::Global();
  registry.GetCounter("common", "cli_invocations")->Add(1);
  registry.GetCounter("common", "config_keys")
      ->Add(args.Keys().size());
}

int RunRun(const Config& args) {
  obs::SetEnabled(true);
  obs::Registry::Global().Reset();
  RecordCommonInstruments(args);

  const auto trace_out = args.GetString("trace_out", "").value_or("");
  if (!trace_out.empty()) {
    Status status = obs::Tracer::Global().Start(trace_out);
    if (!status.ok()) return Fail(status);
  }

  auto workload = BuildRunWorkload(args);
  if (!workload.ok()) return Fail(workload.status());
  std::vector<EpochReadings>& epochs = workload.value().epochs;

  SpirePipeline pipeline(&workload.value().registry,
                         PipelineOptionsFromArgs(args));
  obs::ExplainLog explain;
  pipeline.SetExplainSink(&explain);

  std::unique_ptr<ArchiveWriter> archive;
  const auto archive_out = args.GetString("archive_out", "").value_or("");
  if (!archive_out.empty()) {
    auto writer = ArchiveWriter::Open(archive_out, {});
    if (!writer.ok()) return Fail(writer.status());
    archive = std::move(writer).value();
    pipeline.SetArchiveSink(archive.get());
  }

  EventStream events;
  std::size_t total_readings = 0;
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    total_readings += epochs[i].size();
    pipeline.ProcessEpoch(static_cast<Epoch>(i), std::move(epochs[i]),
                          &events);
  }
  pipeline.Finish(static_cast<Epoch>(epochs.size()), &events);
  if (archive != nullptr) {
    if (!pipeline.archive_status().ok()) return Fail(pipeline.archive_status());
    Status status = archive->Close();
    if (!status.ok()) return Fail(status);
  }

  const auto out_path = args.GetString("out", "").value_or("");
  if (!out_path.empty()) {
    Status status = WriteEventFile(out_path, events);
    if (!status.ok()) return Fail(status);
  }
  const auto explain_out = args.GetString("explain_out", "").value_or("");
  if (!explain_out.empty()) {
    Status status = explain.WriteJsonl(explain_out);
    if (!status.ok()) return Fail(status);
  }
  std::size_t trace_spans = 0;
  if (!trace_out.empty()) {
    trace_spans = obs::Tracer::Global().num_events();
    Status status = obs::Tracer::Global().Stop();
    if (!status.ok()) return Fail(status);
  }

  std::printf("ran %zu epochs: %zu readings -> %zu events, %zu provenance "
              "records, %zu suppressions, %zu trace spans\n",
              epochs.size(), total_readings, events.size(),
              explain.events().size(), explain.suppressions().size(),
              trace_spans);
  const auto statusz = args.GetString("statusz", "").value_or("");
  if (statusz == "json") {
    std::printf("%s\n", obs::Registry::Global().ToJson().c_str());
  } else if (!statusz.empty()) {
    std::printf("%s", obs::Registry::Global().ToText().c_str());
  }
  return 0;
}

int RunStatusz(const Config& args) {
  obs::SetEnabled(true);
  auto& metrics = obs::Registry::Global();
  metrics.Reset();
  RecordCommonInstruments(args);

  const auto seed = args.GetInt("seed", 1).value_or(1);
  auto trace = GenerateTrace(CaseFromSeed(static_cast<std::uint64_t>(seed)));
  if (!trace.ok()) return Fail(trace.status());
  ReaderRegistry& site_registry = trace.value().registry;
  std::vector<EpochReadings>& epochs = trace.value().epochs;

  // SMURF pass over the same readings, so the comparison system's
  // instruments see traffic too.
  SmurfCleaner smurf(&site_registry);
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    smurf.ProcessEpoch(static_cast<Epoch>(i), epochs[i]);
  }

  // SPIRE pass mirrored into a throwaway archive (store instruments).
  std::error_code ec;
  const std::string archive_path =
      (std::filesystem::temp_directory_path(ec) / "spire_statusz.sparc")
          .string();
  std::filesystem::remove(archive_path, ec);
  std::filesystem::remove(IndexPathFor(archive_path), ec);
  auto writer = ArchiveWriter::Open(archive_path, {});
  if (!writer.ok()) return Fail(writer.status());

  SpirePipeline pipeline(&site_registry, PipelineOptionsFromArgs(args));
  pipeline.SetArchiveSink(writer.value().get());
  EventStream events;
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    pipeline.ProcessEpoch(static_cast<Epoch>(i), std::move(epochs[i]),
                          &events);
  }
  pipeline.Finish(static_cast<Epoch>(epochs.size()), &events);
  if (!pipeline.archive_status().ok()) return Fail(pipeline.archive_status());
  Status status = writer.value()->Close();
  if (!status.ok()) return Fail(status);
  std::filesystem::remove(archive_path, ec);
  std::filesystem::remove(IndexPathFor(archive_path), ec);

  if (args.GetBool("json", false).value_or(false)) {
    std::printf("%s\n", metrics.ToJson().c_str());
  } else {
    std::printf("%s", metrics.ToText().c_str());
  }
  return 0;
}

int RunExplain(const Config& args) {
  const auto in_path = args.GetString("in", "").value_or("");
  const auto id = args.GetInt("id", -1).value_or(-1);
  if (in_path.empty() || id < 0) {
    return FailText("explain needs <event-id> (or id=N) and in=<log.spexp>");
  }
  auto lines = LoadLines(in_path);
  if (!lines.ok()) return Fail(lines.status());
  const std::string id_text = std::to_string(id);
  for (const std::string& line : lines.value()) {
    if (line.empty()) continue;
    auto parsed = obs::ParseJson(line);
    if (!parsed.ok()) return Fail(parsed.status());
    const obs::JsonValue& record = parsed.value();
    const obs::JsonValue* kind = record.Find("kind");
    const obs::JsonValue* record_id = record.Find("id");
    if (kind == nullptr || kind->text != "event" || record_id == nullptr ||
        record_id->text != id_text) {
      continue;
    }
    auto text_of = [&record](const char* key) -> std::string {
      const obs::JsonValue* value = record.Find(key);
      return value == nullptr ? std::string("?") : value->text;
    };
    const obs::JsonValue* complete = record.Find("complete_inference");
    std::printf("%s\n", record.Serialize().c_str());
    std::printf(
        "event %lld: %s object=%s location=%s container=%s [%s, %s)\n"
        "  emitted by stage '%s' at epoch %s after %s inference "
        "(%s waves)\n"
        "  winning posterior %s vs runner-up %s\n",
        static_cast<long long>(id), text_of("type").c_str(),
        text_of("object").c_str(), text_of("location").c_str(),
        text_of("container").c_str(), text_of("start").c_str(),
        text_of("end").c_str(), text_of("stage").c_str(),
        text_of("epoch").c_str(),
        (complete != nullptr && complete->bool_value) ? "complete" : "partial",
        text_of("inference_waves").c_str(),
        text_of("winner_posterior").c_str(),
        text_of("runner_up_posterior").c_str());
    return 0;
  }
  std::fprintf(stderr, "no provenance record for event %lld in %s\n",
               static_cast<long long>(id), in_path.c_str());
  return 1;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return Status::Internal("read failed: " + path);
  return buffer.str();
}

/// `merge-traces in=a.json,b.json[,..] out=merged.json` — stitches
/// per-process fleet trace files onto one timeline (obs/merge_trace.h).
int RunMergeTraces(const Config& args) {
  const auto in = args.GetString("in", "").value_or("");
  const auto out = args.GetString("out", "").value_or("");
  if (in.empty() || out.empty()) {
    return FailText("merge-traces needs in=a.json,b.json,.. out=merged.json");
  }
  const std::vector<std::string> paths = SplitCommaList(in);
  Status status = obs::MergeTraceFiles(paths, out);
  if (!status.ok()) return Fail(status);
  std::printf("merged %zu trace(s) -> %s\n", paths.size(), out.c_str());
  return 0;
}

int RunObscheck(const Config& args) {
  const auto trace_path = args.GetString("trace", "").value_or("");
  const auto metrics_path = args.GetString("metrics", "").value_or("");
  const auto explain_path = args.GetString("explain", "").value_or("");
  if (trace_path.empty() && metrics_path.empty() && explain_path.empty()) {
    return FailText(
        "obscheck needs trace=<trace.json>, metrics=<metrics.json>, and/or "
        "explain=<log.spexp>");
  }

  if (!trace_path.empty()) {
    auto text = ReadWholeFile(trace_path);
    if (!text.ok()) return Fail(text.status());
    auto parsed = obs::ParseJson(text.value());
    if (!parsed.ok()) return Fail(parsed.status());
    const obs::JsonValue* events = parsed.value().Find("traceEvents");
    if (events == nullptr || events->type != obs::JsonValue::Type::kArray ||
        events->array.empty()) {
      return FailText(trace_path + ": no traceEvents");
    }
    std::set<std::string> names;
    for (const obs::JsonValue& event : events->array) {
      const obs::JsonValue* name = event.Find("name");
      const obs::JsonValue* phase = event.Find("ph");
      if (name == nullptr || name->type != obs::JsonValue::Type::kString ||
          phase == nullptr ||
          phase->type != obs::JsonValue::Type::kString) {
        return FailText(trace_path + ": malformed trace event");
      }
      // Three shapes are valid: complete spans ('X'), the async 'b'/'e'
      // pairs of cross-node handoff spans, and the process_name metadata
      // ('M') a merged fleet trace carries.
      if (phase->text == "X") {
        if (event.Find("ts") == nullptr || event.Find("dur") == nullptr ||
            event.Find("pid") == nullptr || event.Find("tid") == nullptr) {
          return FailText(trace_path + ": malformed complete span");
        }
      } else if (phase->text == "b" || phase->text == "e") {
        if (event.Find("ts") == nullptr || event.Find("pid") == nullptr ||
            event.Find("tid") == nullptr || event.Find("id") == nullptr) {
          return FailText(trace_path + ": malformed async span event");
        }
      } else if (phase->text == "M") {
        if (event.Find("pid") == nullptr || event.Find("args") == nullptr) {
          return FailText(trace_path + ": malformed metadata event");
        }
        continue;  // Metadata names (process_name) are not span names.
      } else {
        return FailText(trace_path + ": unknown event phase '" +
                        phase->text + "'");
      }
      names.insert(name->text);
    }
    // Every single-pipeline stage by default; `require=` overrides (e.g.
    // serve traces carry shard/merge spans but no archive_append).
    std::vector<std::string> required = {
        "epoch",    "smooth",   "graph_update", "inference",
        "conflict", "compress", "archive_append"};
    const auto require_arg = args.GetString("require", "").value_or("");
    if (!require_arg.empty()) required = SplitCommaList(require_arg);
    for (const std::string& name : required) {
      if (names.count(name) == 0) {
        return FailText(trace_path + ": missing span '" + name + "'");
      }
    }
    std::printf("trace ok: %s (%zu events, %zu span names)\n",
                trace_path.c_str(), events->array.size(), names.size());
  }

  if (!metrics_path.empty()) {
    auto text = ReadWholeFile(metrics_path);
    if (!text.ok()) return Fail(text.status());
    auto parsed = obs::ParseJson(text.value());
    if (!parsed.ok()) return Fail(parsed.status());
    const obs::JsonValue* modules = parsed.value().Find("modules");
    if (modules != nullptr &&
        (modules->type != obs::JsonValue::Type::kObject ||
         modules->object.empty())) {
      return FailText(metrics_path + ": empty modules object");
    }
    // The distributed statusz shape: a fleet aggregate plus per-node
    // registries, each carrying its own modules object.
    const obs::JsonValue* fleet = parsed.value().Find("fleet");
    const obs::JsonValue* nodes = parsed.value().Find("nodes");
    std::string shape;
    if (fleet != nullptr || nodes != nullptr) {
      const obs::JsonValue* fleet_modules =
          fleet == nullptr ? nullptr : fleet->Find("modules");
      if (fleet_modules == nullptr ||
          fleet_modules->type != obs::JsonValue::Type::kObject ||
          fleet_modules->object.empty()) {
        return FailText(metrics_path + ": fleet without modules");
      }
      if (nodes == nullptr || nodes->type != obs::JsonValue::Type::kArray) {
        return FailText(metrics_path + ": fleet metrics without nodes array");
      }
      for (const obs::JsonValue& node : nodes->array) {
        const obs::JsonValue* node_modules = node.Find("modules");
        if (node.Find("node") == nullptr || node_modules == nullptr ||
            node_modules->type != obs::JsonValue::Type::kObject) {
          return FailText(metrics_path + ": malformed node registry entry");
        }
      }
      shape = "fleet + " + std::to_string(nodes->array.size()) + " nodes";
    } else {
      shape = modules != nullptr
                  ? std::to_string(modules->object.size()) + " modules"
                  : std::string("no modules key");
    }
    auto round_trip = obs::ParseJson(parsed.value().Serialize());
    if (!round_trip.ok()) return Fail(round_trip.status());
    if (!(round_trip.value() == parsed.value())) {
      return FailText(metrics_path + ": parse -> serialize -> parse mismatch");
    }
    std::printf("metrics ok: %s (%s, round-trips)\n", metrics_path.c_str(),
                shape.c_str());
  }

  if (!explain_path.empty()) {
    auto lines = LoadLines(explain_path);
    if (!lines.ok()) return Fail(lines.status());
    std::size_t events = 0, suppressions = 0, matches = 0;
    for (const std::string& line : lines.value()) {
      if (line.empty()) continue;
      auto parsed = obs::ParseJson(line);
      if (!parsed.ok()) return Fail(parsed.status());
      const obs::JsonValue* kind = parsed.value().Find("kind");
      if (kind == nullptr || kind->type != obs::JsonValue::Type::kString) {
        return FailText(explain_path + ": record without kind");
      }
      if (kind->text == "event") {
        ++events;
      } else if (kind->text == "suppressed") {
        ++suppressions;
      } else if (kind->text == "match") {
        const obs::JsonValue* pattern = parsed.value().Find("pattern");
        const obs::JsonValue* ids = parsed.value().Find("event_ids");
        if (pattern == nullptr ||
            pattern->type != obs::JsonValue::Type::kString || ids == nullptr ||
            ids->type != obs::JsonValue::Type::kArray) {
          return FailText(explain_path + ": malformed match record");
        }
        ++matches;
      } else {
        return FailText(explain_path + ": unknown kind '" + kind->text + "'");
      }
    }
    std::printf("explain ok: %s (%zu events, %zu suppressions, %zu matches)\n",
                explain_path.c_str(), events, suppressions, matches);
  }
  return 0;
}

// ---------------------------------------------------------------- detect

Result<std::vector<cep::Pattern>> DetectPatterns(const Config& args) {
  const auto expr = args.GetString("pattern", "").value_or("");
  const auto file = args.GetString("patterns", "").value_or("");
  if (expr.empty() == file.empty()) {
    return Status::InvalidArgument(
        "detect needs exactly one of pattern=<expr> or "
        "patterns=library|<file>");
  }
  if (!expr.empty()) {
    auto parsed = cep::ParsePattern(expr, "pattern");
    if (!parsed.ok()) return parsed.status();
    return std::vector<cep::Pattern>{std::move(parsed).value()};
  }
  if (file == "library") return cep::BuiltinLibrary();
  auto text = ReadWholeFile(file);
  if (!text.ok()) return text.status();
  return cep::ParsePatternFileLines(text.value());
}

/// The stream to detect over, its evaluation bounds, and (when a
/// deployment or generated trace supplies one) the registry resolving the
/// patterns' location names.
struct DetectInput {
  EventStream events;
  std::optional<ReaderRegistry> registry;
  cep::EvalBounds bounds;
  std::string source;
};

Result<DetectInput> BuildDetectInput(const Config& args) {
  DetectInput input;
  const auto seed = args.GetInt("seed", 0).value_or(0);
  const auto in_path = args.GetString("in", "").value_or("");
  const auto archive_path = args.GetString("archive", "").value_or("");
  const bool run_pipeline =
      seed > 0 || (!in_path.empty() && in_path.ends_with(".sptr"));

  if (run_pipeline) {
    auto workload = BuildRunWorkload(args);
    if (!workload.ok()) return workload.status();
    SpirePipeline pipeline(&workload.value().registry,
                           PipelineOptionsFromArgs(args));
    std::vector<EpochReadings>& epochs = workload.value().epochs;
    for (std::size_t i = 0; i < epochs.size(); ++i) {
      pipeline.ProcessEpoch(static_cast<Epoch>(i), std::move(epochs[i]),
                            &input.events);
    }
    pipeline.Finish(static_cast<Epoch>(epochs.size()), &input.events);
    input.registry = std::move(workload.value().registry);
    input.source = seed > 0 ? "seed " + std::to_string(seed) : in_path;
    input.bounds = cep::BoundsOf(input.events);
    return input;
  }

  const auto deployment_path = args.GetString("deployment", "").value_or("");
  if (!deployment_path.empty()) {
    auto lines = LoadLines(deployment_path);
    if (!lines.ok()) return lines.status();
    auto registry = ParseDeployment(lines.value());
    if (!registry.ok()) return registry.status();
    input.registry = std::move(registry).value();
  }

  if (!archive_path.empty()) {
    auto reader = ArchiveReader::Open(archive_path);
    if (!reader.ok()) return reader.status();
    const Epoch from = args.GetInt("from", 0).value_or(0);
    const Epoch to =
        args.GetInt("to", kInfiniteEpoch).value_or(kInfiniteEpoch);
    Result<EventStream> scanned = (from != 0 || to != kInfiniteEpoch)
                                      ? reader.value().ScanRange(from, to)
                                      : reader.value().ScanAll();
    if (!scanned.ok()) return scanned.status();
    // Range restriction can orphan End messages; repair keeps the subset
    // well-formed so it indexes like a live stream.
    input.events = RepairRestrictedStream(scanned.value());
    input.bounds = cep::BoundsOf(input.events);
    input.bounds.lo = std::max(input.bounds.lo, from);
    input.bounds.hi = std::min(input.bounds.hi, to);
    input.source = archive_path;
    return input;
  }

  if (in_path.empty()) {
    return Status::InvalidArgument(
        "detect needs seed=S, in=<trace.sptr> deployment=<file>, "
        "in=<events.spev>, or archive=<events.sparc>");
  }
  auto events = ReadEventFile(in_path);
  if (!events.ok()) return events.status();
  input.events = std::move(events).value();
  input.bounds = cep::BoundsOf(input.events);
  input.source = in_path;
  return input;
}

int RunDetect(const Config& args) {
  auto patterns = DetectPatterns(args);
  if (!patterns.ok()) return Fail(patterns.status());
  auto input = BuildDetectInput(args);
  if (!input.ok()) return Fail(input.status());
  const ReaderRegistry* registry =
      input.value().registry ? &*input.value().registry : nullptr;

  const auto eval = args.GetString("eval", "interval").value_or("interval");
  if (eval != "interval" && eval != "naive" && eval != "check") {
    return FailText("eval must be interval, naive, or check");
  }
  const auto print_limit = args.GetInt("print", 5).value_or(5);

  // The interval evaluator works on the compressed stream as-is; the naive
  // reference needs the decompressed per-epoch view.
  std::optional<cep::CompressedLog> compressed;
  std::optional<EventLog> naive_log;
  if (eval != "naive") {
    auto built = cep::CompressedLog::Build(input.value().events);
    if (!built.ok()) return Fail(built.status());
    compressed = std::move(built).value();
  }
  if (eval != "interval") {
    auto built = EventLog::Build(input.value().events, /*decompress=*/true);
    if (!built.ok()) return Fail(built.status());
    naive_log = std::move(built).value();
  }

  obs::ExplainLog explain;
  std::size_t total = 0;
  for (const cep::Pattern& pattern : patterns.value()) {
    auto compiled = cep::Compile(pattern, registry);
    if (!compiled.ok()) return Fail(compiled.status());
    std::vector<cep::Match> matches;
    if (eval != "naive") {
      matches = cep::EvaluateCompressed(compiled.value(), &*compressed,
                                        input.value().bounds);
    }
    if (eval != "interval") {
      std::vector<cep::Match> naive = cep::EvaluateNaive(
          compiled.value(), *naive_log, input.value().bounds);
      if (eval == "naive") {
        matches = std::move(naive);
      } else {
        const std::string diff =
            cep::DiffMatchSets(matches, naive, "interval", "naive");
        if (!diff.empty()) {
          return FailText("evaluator divergence on '" + pattern.name +
                          "': " + diff);
        }
      }
    }
    std::printf("%s: %zu match(es)\n", pattern.name.c_str(), matches.size());
    for (std::size_t i = 0;
         i < matches.size() && i < static_cast<std::size_t>(print_limit);
         ++i) {
      std::printf("  %s\n",
                  cep::ToString(compiled.value(), matches[i]).c_str());
    }
    for (const cep::Match& match : matches) {
      explain.RecordMatch({match.pattern, compiled.value().vars,
                           match.binding, match.step_epochs, match.completion,
                           match.event_ids});
    }
    total += matches.size();
  }

  const auto explain_out = args.GetString("explain_out", "").value_or("");
  if (!explain_out.empty()) {
    Status status = explain.WriteJsonl(explain_out);
    if (!status.ok()) return Fail(status);
  }
  std::printf("total_matches=%zu over %s%s\n", total,
              input.value().source.c_str(),
              eval == "check" ? " (evaluators agree)" : "");
  if (args.GetBool("require_matches", false).value_or(false) && total == 0) {
    return FailText("require_matches=true but no pattern matched");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s generate|process|decompress|validate|stats|query|"
                 "archive|scan|compact|queryserve|serve|dist|node|run|statusz|"
                 "explain|obscheck|merge-traces|detect [key=value ...]\n",
                 argv[0]);
    return 1;
  }
  std::string command = argv[1];
  // `--stats` is sugar for `stats=true` (the one flag-style option);
  // `explain <event-id>` accepts the id as a bare integer.
  std::vector<std::string> arg_strings;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--stats") {
      arg = "stats=true";
    } else if (command == "explain" && i >= 2 && !arg.empty() &&
               arg.find_first_not_of("0123456789") == std::string::npos) {
      arg = "id=" + arg;
    }
    arg_strings.push_back(std::move(arg));
  }
  std::vector<const char*> arg_ptrs;
  for (const std::string& arg : arg_strings) arg_ptrs.push_back(arg.c_str());
  auto args = Config::FromArgs(static_cast<int>(arg_ptrs.size()),
                               arg_ptrs.data());
  if (!args.ok()) return Fail(args.status());
  if (command == "generate") return RunGenerate(args.value());
  if (command == "process") return RunProcess(args.value());
  if (command == "decompress") return RunDecompress(args.value());
  if (command == "validate") return RunValidate(args.value());
  if (command == "stats") return RunStats(args.value());
  if (command == "query") return RunQuery(args.value());
  if (command == "archive") return RunArchive(args.value());
  if (command == "scan") return RunScan(args.value());
  if (command == "compact") return RunCompact(args.value());
  if (command == "queryserve") return RunQueryserve(args.value());
  if (command == "serve") return RunServe(args.value());
  if (command == "dist") return RunDist(args.value(), arg_strings);
  if (command == "node") return RunNode(args.value());
  if (command == "run") return RunRun(args.value());
  if (command == "statusz") return RunStatusz(args.value());
  if (command == "explain") return RunExplain(args.value());
  if (command == "obscheck") return RunObscheck(args.value());
  if (command == "merge-traces") return RunMergeTraces(args.value());
  if (command == "detect") return RunDetect(args.value());
  return FailText("unknown command: " + command);
}
